package snpu_test

// Godoc examples for the public API. These run under `go test` and
// anchor the README's snippets to code that actually compiles.

import (
	"bytes"
	"fmt"
	"log"

	snpu "repro"
)

// Boot a protected system and run a public model.
func Example() {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunModel("yololite")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Model, res.Cycles > 0)
	// Output: yololite true
}

// Run a confidential model through the NPU Monitor: the sealed weights
// never appear in plaintext outside the secure world.
func ExampleSystem_RunSecure() {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	key := bytes.Repeat([]byte{7}, snpu.SealKeySize)
	if err := sys.ProvisionKey("owner", key); err != nil {
		log.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("weights"))
	if err != nil {
		log.Fatal(err)
	}
	task, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunSecure(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Model, res.Cycles > 0)
	// Output: yololite true
}

// Compare sNPU's ID-isolated time sharing against flushing.
func ExampleSystem_TimeShare() {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.TimeShare("yololite", "yololite", snpu.FlushPerTile, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flush cycles with ID isolation:", res.FlushCycles)
	// Output: flush cycles with ID isolation: 0
}

// List the built-in evaluation workloads.
func ExampleWorkloads() {
	fmt.Println(snpu.Workloads())
	// Output: [googlenet alexnet yololite mobilenet resnet bert]
}
