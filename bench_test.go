package snpu

// The benchmark harness: one testing.B target per table/figure of the
// paper's evaluation (§VI). Each bench regenerates its experiment's
// data on the simulated SoC and reports the headline numbers as
// custom metrics, so `go test -bench=. -benchmem` reproduces the
// whole evaluation. EXPERIMENTS.md records the paper-vs-measured
// comparison; cmd/snpu-bench prints the full tables.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hwcost"
	"repro/internal/npu"
	"repro/internal/workload"
)

// metricName builds a ReportMetric unit (no whitespace allowed).
func metricName(unit, param string) string {
	return strings.ReplaceAll(unit+"/"+param, " ", "_")
}

// benchModels returns the evaluation set; -short trims it so quick
// runs stay quick.
func benchModels(b *testing.B) []workload.Workload {
	if testing.Short() {
		var out []workload.Workload
		for _, n := range []string{"alexnet", "yololite"} {
			w, err := workload.ByName(n)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, w)
		}
		return out
	}
	return workload.All()
}

// BenchmarkFig01Utilization regenerates Fig. 1: FLOPS utilization of
// single inference workloads (< 50% for most models).
func BenchmarkFig01Utilization(b *testing.B) {
	cfg := npu.DefaultConfig()
	models := benchModels(b)
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig1(models, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range res.Rows {
		b.ReportMetric(r.Utilization*100, "util%/"+r.Model)
		sum += r.Utilization
	}
	b.ReportMetric(sum/float64(len(res.Rows))*100, "util%/mean")
}

// BenchmarkTable01IsolationMechanisms regenerates Table I's measured
// columns (partition vs flush vs sNPU).
func BenchmarkTable01IsolationMechanisms(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.MeasuredOverheadPct, "overhead%/"+r.Mechanism)
	}
}

// BenchmarkFig13aAccessControl regenerates Fig. 13(a): normalized
// performance under IOMMU (IOTLB-4..32) vs NPU Guarder.
func BenchmarkFig13aAccessControl(b *testing.B) {
	cfg := npu.DefaultConfig()
	models := benchModels(b)
	var res *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig13(models, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	agg := map[string][]float64{}
	for _, r := range res.Rows {
		agg[r.Mechanism] = append(agg[r.Mechanism], r.Slowdown())
	}
	for mech, vals := range agg {
		var max float64
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max, "max-slowdown%/"+mech)
	}
}

// BenchmarkFig13bCheckingRequests regenerates Fig. 13(b): Guarder
// translation requests as a fraction of the IOMMU's.
func BenchmarkFig13bCheckingRequests(b *testing.B) {
	cfg := npu.DefaultConfig()
	models := benchModels(b)
	var res *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig13(models, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.Mechanism == "guarder" {
			b.ReportMetric(r.RequestsVsIOMMU*100, "req-vs-iommu%/"+r.Model)
		}
	}
}

// BenchmarkFig14FlushGranularity regenerates Fig. 14: time-shared
// execution under tile / layer / 5-layer flushing.
func BenchmarkFig14FlushGranularity(b *testing.B) {
	cfg := npu.DefaultConfig()
	models := benchModels(b)
	var res *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig14(models, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	agg := map[string][]float64{}
	for _, r := range res.Rows {
		agg[r.Granularity] = append(agg[r.Granularity], (r.Normalized-1)*100)
	}
	for gran, vals := range agg {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		b.ReportMetric(sum/float64(len(vals)), "overhead%/"+gran)
	}
}

// BenchmarkFig15ScratchpadIsolation regenerates Fig. 15: static
// partition vs ID-based dynamic allocation on paired workloads.
func BenchmarkFig15ScratchpadIsolation(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		worst := r.Trusted.Normalized
		if r.Untrusted.Normalized > worst {
			worst = r.Untrusted.Normalized
		}
		b.ReportMetric(worst, "makespan-norm/"+r.Group+"/"+r.Policy)
	}
}

// BenchmarkFig16NoCMicro regenerates Fig. 16: transfer cost over the
// software NoC, unauthorized NoC, and peephole NoC.
func BenchmarkFig16NoCMicro(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig16(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.Lines == 1024 {
			b.ReportMetric(r.BandwidthBPC, "B-per-cycle/"+r.Method)
		}
	}
}

// BenchmarkFig17NoCApp regenerates Fig. 17: pipelined multi-core
// inference with NoC vs shared-memory transfers.
func BenchmarkFig17NoCApp(b *testing.B) {
	cfg := npu.DefaultConfig()
	models := benchModels(b)
	var res *experiments.Fig17Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig17(models, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	agg := map[string][]float64{}
	for _, r := range res.Rows {
		agg[r.Method] = append(agg[r.Method], r.Normalized)
	}
	for method, vals := range agg {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		b.ReportMetric(sum/float64(len(vals)), "norm-time/"+method)
	}
}

// BenchmarkFig18HardwareCost regenerates Fig. 18: extra FPGA
// resources per protection mechanism.
func BenchmarkFig18HardwareCost(b *testing.B) {
	p := hwcost.DefaultParams()
	var res *experiments.Fig18Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig18(p)
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.ExtraRAMPct, "extra-ram%/"+r.Config)
		b.ReportMetric(r.ExtraLUTPct, "extra-lut%/"+r.Config)
	}
}

// BenchmarkTCBSize regenerates the §VI-F TCB analysis over this
// repository's packages.
func BenchmarkTCBSize(b *testing.B) {
	var res *experiments.TCBResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.TCB()
		if err != nil {
			b.Fatal(err)
		}
	}
	trusted, untrusted := res.Totals()
	b.ReportMetric(float64(trusted), "tcb-loc")
	b.ReportMetric(float64(untrusted), "untrusted-loc")
}

// BenchmarkAblationIOTLBSweep extends the Fig. 13(a) entry sweep.
func BenchmarkAblationIOTLBSweep(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationIOTLBSweep("yololite", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationSpadBudget sweeps scratchpad budget vs. traffic
// (the Fig. 15 mechanism).
func BenchmarkAblationSpadBudget(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationSpadBudget("alexnet", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationMultiDomain scales §VII's ID-bit width.
func BenchmarkAblationMultiDomain(b *testing.B) {
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationMultiDomain()
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationL2 toggles the shared L2 in the DMA path.
func BenchmarkAblationL2(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationL2("alexnet", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationPreemption quantifies the SLA column of Table I.
func BenchmarkAblationPreemption(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationPreemption("yololite", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationCheckingEnergy backs Fig. 13(b)'s energy argument
// with the first-order energy model.
func BenchmarkAblationCheckingEnergy(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationCheckingEnergy("yololite", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationMulticast compares unicast vs tree-multicast
// all-gather among a 2x2 block.
func BenchmarkAblationMulticast(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationMulticast(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkAblationBandwidth sweeps DRAM bandwidth.
func BenchmarkAblationBandwidth(b *testing.B) {
	cfg := npu.DefaultConfig()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationBandwidth("alexnet", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Value, metricName(r.Unit, r.Param))
	}
}

// BenchmarkDecodeServing regenerates the decode sweep (beyond-paper)
// and reports each batch point's token throughput and inter-token
// tail as custom metrics.
func BenchmarkDecodeServing(b *testing.B) {
	var res *DecodeBenchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = DecodeBench(1, DecodeBenchConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		param := "batch" + strconv.Itoa(row.MaxBatch)
		b.ReportMetric(row.TokensPerSec, metricName("tok-per-sec", param))
		b.ReportMetric(float64(row.P99ITL), metricName("p99-itl-cyc", param))
	}
}

// BenchmarkEndToEndInference measures the facade's whole-system path
// (boot + compile + map + run) per model.
func BenchmarkEndToEndInference(b *testing.B) {
	for _, name := range []string{"yololite", "alexnet"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := New(DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.RunModel(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
