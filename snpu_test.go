package snpu

import (
	"bytes"
	"testing"

	"repro/internal/spad"
	"repro/internal/workload"
)

func TestNewBootsProtectedSystem(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Monitor() == nil {
		t.Fatal("protected system has no monitor")
	}
	if !sys.Machine().Secured() {
		t.Fatal("machine not secure-booted")
	}
	if len(sys.NPU().Cores()) != 10 {
		t.Fatalf("cores = %d", len(sys.NPU().Cores()))
	}
}

func TestBaselineHasNoMonitor(t *testing.T) {
	sys, err := New(BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Monitor() != nil {
		t.Fatal("baseline grew a monitor")
	}
	if _, err := sys.SubmitSecure("alexnet", "k", nil); err == nil {
		t.Fatal("secure submit on baseline succeeded")
	}
	if err := sys.ProvisionKey("k", make([]byte, SealKeySize)); err == nil {
		t.Fatal("key provisioning on baseline succeeded")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 6 {
		t.Fatalf("workloads = %v", names)
	}
}

func TestRunModelNonSecure(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunModel("yololite")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.MACs <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization >= 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
	if _, err := sys.RunModel("nonexistent"); err == nil {
		t.Fatal("unknown model ran")
	}
}

func TestRunCustomWorkload(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Workload{
		Name: "custom",
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g", M: 64, K: 64, N: 64}}},
		},
	}
	res, err := sys.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "custom" || res.Cycles <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestSecureLifecycle(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{5}, SealKeySize)
	if err := sys.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSecure(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("secure run: %+v", res)
	}
	// After unload the core is back in the normal world.
	core, _ := sys.NPU().Core(0)
	if core.Domain() != spad.NonSecure {
		t.Fatal("core left in secure domain after RunSecure")
	}
	// Tampered sealed model is rejected at submit.
	sealed[len(sealed)-1] ^= 1
	if _, err := sys.SubmitSecure("yololite", "owner", sealed); err == nil {
		t.Fatal("tampered model accepted")
	}
}

func TestSecureAndNonSecureRunsCoexist(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{1}, SealKeySize)
	if err := sys.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "k", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunSecure(h); err != nil {
		t.Fatal(err)
	}
	// A non-secure run still works afterwards (contexts were reset).
	if _, err := sys.RunModel("yololite"); err != nil {
		t.Fatalf("non-secure run after secure run: %v", err)
	}
}

func TestTimeShareFlushVsNoFlush(t *testing.T) {
	run := func(flush bool) TimeShareResult {
		sys, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.TimeShare("yololite", "yololite", FlushPerTile, flush)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	flushed := run(true)
	clean := run(false)
	if clean.FlushCycles != 0 {
		t.Fatal("no-flush run paid flush cycles")
	}
	if flushed.FlushCycles <= 0 {
		t.Fatal("flushed run paid nothing")
	}
	if flushed.Makespan() <= clean.Makespan() {
		t.Fatalf("flushing not slower: %d vs %d", flushed.Makespan(), clean.Makespan())
	}
}
