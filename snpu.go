// Package snpu is the public API of the sNPU reproduction (ISCA 2024:
// "sNPU: Trusted Execution Environments on Integrated NPUs"). It
// assembles the full simulated SoC — a multi-core systolic-array NPU
// with scratchpads and a NoC, TrustZone-style two-world memory, the
// three sNPU security mechanisms of §IV (NPU Guarder, NPU Isolator,
// NPU Monitor), the untrusted driver stack, and the six §VI evaluation
// workloads — behind one constructor.
//
//	sys, err := snpu.New(snpu.DefaultConfig())
//	res, err := sys.RunModel("resnet")
//	fmt.Printf("%d cycles, %.0f%% utilization\n", res.Cycles, res.Utilization*100)
//
// Secure inference goes through the NPU Monitor's trampoline:
//
//	key := make([]byte, snpu.SealKeySize) // owner's model key
//	sealed, _ := snpu.SealModel(key, modelBytes)
//	task, _ := sys.SubmitSecure("bert", "owner-key", sealed)
//	res, _ := sys.RunSecure(task)
package snpu

import (
	"fmt"
	"io"

	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/guarder"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xlate"
)

// Config selects the SoC parameters. The zero value is not valid; use
// DefaultConfig (Table II of the paper) and adjust.
type Config struct {
	// NPU is the accelerator configuration (systolic dimension,
	// scratchpad size, tile count, mesh, DRAM).
	NPU npu.Config
	// Protected selects the sNPU security mechanisms; false builds the
	// unprotected baseline ("Normal NPU").
	Protected bool
}

// DefaultConfig mirrors the paper's evaluation SoC with all sNPU
// protections enabled. IDBits is widened beyond the two-world minimum
// so the monitor can tag resident KV-cache windows with per-task
// domains (monitor/kv.go); the tag width is timing-neutral.
func DefaultConfig() Config {
	cfg := npu.DefaultConfig()
	cfg.IDBits = 4
	return Config{NPU: cfg, Protected: true}
}

// BaselineConfig builds the unprotected comparison system.
func BaselineConfig() Config {
	cfg := npu.DefaultConfig()
	cfg.Isolated = false
	cfg.Peephole = false
	return Config{NPU: cfg, Protected: false}
}

// SealKeySize is the model-sealing key size (AES-256).
const SealKeySize = monitor.KeySize

// SealModel encrypts a model under the owner's key for submission
// through the untrusted driver (the user-side helper).
func SealModel(key, model []byte) ([]byte, error) {
	return monitor.SealModel(key, model)
}

// System is one booted SoC instance. It is not safe for concurrent
// use: the simulation clock is shared state.
type System struct {
	cfg      Config
	phys     *mem.Physical
	machine  *tee.Machine
	stats    *sim.Stats
	acc      *npu.NPU
	guarders map[int]*guarder.Guarder
	drv      *driver.Driver
	mon      *monitor.Monitor
	// next translation-register slot per core for non-secure windows
	nextSlot map[int]int
	// inj is the armed fault injector (nil without a plan).
	inj *fault.Injector
	// obs is the attached observability layer (nil = off, the default).
	obs *obs.Observer
}

// New boots a system: memory regions, secure-boot chain, NPU cores
// (with per-core Guarders when protected), driver, and monitor.
func New(cfg Config) (*System, error) {
	phys := mem.NewPhysical()
	for _, r := range []mem.Region{
		{Name: "normal", Base: experiments.NormalBase, Size: experiments.NormalSize, Owner: mem.Normal, CrossPerm: mem.PermRW},
		{Name: "npu-reserved", Base: experiments.ReservedBase, Size: experiments.ReservedSize, Owner: mem.Normal, CrossPerm: mem.PermRW},
		{Name: "secure", Base: experiments.SecureBase, Size: experiments.SecureSize, Owner: mem.Secure},
	} {
		if err := phys.AddRegion(r); err != nil {
			return nil, err
		}
	}
	machine := tee.NewMachine(phys)
	blobs := [][]byte{[]byte("trusted-loader"), []byte("trusted-firmware"), []byte("teeos"), []byte("npu-monitor")}
	for i, name := range []string{"trusted-loader", "trusted-firmware", "teeos", "npu-monitor"} {
		machine.BootChain().AddStage(name, tee.MeasureBytes(blobs[i]))
	}
	if err := machine.Boot(blobs); err != nil {
		return nil, err
	}

	stats := sim.NewStats()
	guarders := make(map[int]*guarder.Guarder)
	makeXlate := func(core int) xlate.Translator {
		if !cfg.Protected {
			return xlate.NewIdentity(stats)
		}
		g := guarder.NewDefault(stats)
		guarders[core] = g
		return g
	}
	acc, err := npu.New(cfg.NPU, phys, stats, makeXlate)
	if err != nil {
		return nil, err
	}
	experiments.RecordSoCStats(stats)
	sys := &System{
		cfg:      cfg,
		phys:     phys,
		machine:  machine,
		stats:    stats,
		acc:      acc,
		guarders: guarders,
		drv:      driver.New(cfg.NPU, experiments.ReservedBase, experiments.ReservedSize, stats),
		nextSlot: make(map[int]int),
	}
	if cfg.Protected {
		mon, err := monitor.New(machine, acc, guarders, experiments.SecureBase, experiments.SecureSize, stats)
		if err != nil {
			return nil, err
		}
		if err := mon.SetupPlatform(experiments.ReservedBase, experiments.ReservedSize,
			experiments.SecureBase, experiments.SecureSize); err != nil {
			return nil, err
		}
		sys.mon = mon
	}
	return sys, nil
}

// Stats exposes the system-wide counters.
func (s *System) Stats() *sim.Stats { return s.stats }

// Reset power-cycles the system back to its just-booted state so it
// can be reused by another benchmark cell (arena-style pooling; see
// DESIGN.md §13). Everything observable is scrubbed — the accelerator
// (pipelines, DRAM channel, L2 contents, scratchpad payload/tags/
// valid/parity, mesh state, core domains, boot translators restored),
// backing DRAM pages and ECC damage, every Guarder register file, the
// driver's allocator and task IDs, the monitor's keys/tasks/queue/
// allocator (with the platform's static checking windows reprogrammed
// exactly as New does), fault injectors, observability attachments,
// and all counters. Capacity (slices, maps, resolved counter handles)
// stays warm; that reuse is the entire point.
//
// The contract, pinned by the fresh-vs-pooled differential tests: any
// run on a Reset system is byte-identical — cycles, decision logs,
// stats — to the same run on a fresh New(cfg) system, and no prior
// tenant's bytes are observable afterwards.
func (s *System) Reset() error {
	s.acc.Reset()
	s.phys.Reset()
	s.stats.Reset()
	for _, g := range s.guarders {
		g.Reset()
	}
	s.drv.Reset()
	clear(s.nextSlot)
	s.inj = nil
	s.obs = nil
	if s.mon != nil {
		s.mon.Reset()
		if err := s.mon.SetupPlatform(experiments.ReservedBase, experiments.ReservedSize,
			experiments.SecureBase, experiments.SecureSize); err != nil {
			return err
		}
	}
	return nil
}

// EnableObservability arms the unified observability layer across the
// whole SoC: the metrics registry aggregates the system counters plus
// per-component instruments (NoC stall histograms, DMA latency, IOTLB
// walks, Monitor call/abort/reject counts), executors record spans on
// the observer's timeline, and profiling hooks sample link occupancy
// and channel backlog on a fixed cycle cadence. Every canonical
// hardware counter is materialized up front so a metrics dump always
// covers the full component namespace, zeros included.
//
// Observability is passive — enabling it does not change a single
// simulated cycle — and stays attached for the system's lifetime.
func (s *System) EnableObservability(cfg obs.Config) *obs.Observer {
	o := obs.NewObserver(cfg)
	for _, name := range sim.CanonicalCounters() {
		s.stats.Counter(name)
	}
	o.Registry().AttachStats(s.stats)
	s.acc.AttachObserver(o)
	if s.mon != nil {
		s.mon.AttachObserver(o)
	}
	s.inj.AttachTrace(o.Trace())
	s.obs = o
	return o
}

// Observer returns the attached observability layer (nil until
// EnableObservability).
func (s *System) Observer() *obs.Observer { return s.obs }

// NPU exposes the accelerator (cores, mesh, channel).
func (s *System) NPU() *npu.NPU { return s.acc }

// Driver exposes the untrusted driver stack.
func (s *System) Driver() *driver.Driver { return s.drv }

// Monitor exposes the NPU Monitor (nil on the unprotected baseline).
func (s *System) Monitor() *monitor.Monitor { return s.mon }

// Machine exposes the trust anchor (for examples that demonstrate the
// privilege gate; real untrusted code never holds the secure context).
func (s *System) Machine() *tee.Machine { return s.machine }

// InferenceResult reports one completed inference.
type InferenceResult struct {
	Model string
	// Cycles is the end-to-end runtime at 1 GHz (cycles == ns).
	Cycles sim.Cycle
	// Utilization is achieved over peak MACs/cycle on the core used.
	Utilization float64
	// MACs is the arithmetic work performed.
	MACs int64
}

// Workloads lists the six built-in evaluation models.
func Workloads() []string {
	names := make([]string, 0, 6)
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// ExtraWorkloads lists the additional models beyond the paper's
// evaluation set (vgg16, gpt-decode, dlrm).
func ExtraWorkloads() []string {
	var names []string
	for _, w := range workload.Extras() {
		names = append(names, w.Name)
	}
	return names
}

// RunModel runs one non-secure inference of a built-in model on core
// 0: the driver compiles and allocates it, asks the monitor (via the
// trampoline) to program the core's translation window, and executes.
func (s *System) RunModel(name string) (InferenceResult, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return InferenceResult{}, err
	}
	return s.RunWorkload(w)
}

// RunWorkload is RunModel for a caller-provided workload description.
// Each measured run starts on an idle SoC: the simulated DRAM channel
// is reset so back-to-back calls do not queue behind each other's
// history (use TimeShare or the NPU's lower-level API for genuinely
// concurrent execution).
func (s *System) RunWorkload(w workload.Workload) (InferenceResult, error) {
	s.acc.ResetTiming()
	task, err := s.drv.Submit(w, 0, false)
	if err != nil {
		return InferenceResult{}, err
	}
	defer func() { _ = s.drv.Release(task) }()
	core, err := s.acc.Core(0)
	if err != nil {
		return InferenceResult{}, err
	}
	if err := s.mapNonSecure(0, task); err != nil {
		return InferenceResult{}, err
	}
	cycles, err := s.drv.RunSolo(core, task)
	if err != nil {
		return InferenceResult{}, err
	}
	return InferenceResult{
		Model:       w.Name,
		Cycles:      cycles,
		Utilization: npu.Utilization(task.Program, cycles, s.cfg.NPU.SystolicDim),
		MACs:        task.Program.TotalMACs,
	}, nil
}

// mapNonSecure installs a task's translation window through the
// monitor trampoline (protected systems) or not at all (baseline:
// identity translation needs no window — but then the task's VAs must
// equal PAs, so the baseline rewrites nothing and simply runs).
func (s *System) mapNonSecure(core int, task *driver.Task) error {
	if s.mon == nil {
		return nil
	}
	lo, hi := task.Program.VASpan()
	vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
	slot := s.nextSlot[core]%(guarder.DefaultTransRegs-1) + 1 // slot 0 is reserved for secure tasks
	s.nextSlot[core]++
	rep := s.mon.Dispatch(monitor.Call{
		Func: monitor.FnMapNonSecure,
		Args: []uint64{uint64(core), uint64(slot), uint64(vbase), uint64(task.Chunk), size},
	})
	return rep.Err
}

// RunModelTraced runs a non-secure inference like RunModel and
// additionally writes a Chrome-trace JSON timeline (DMA batches,
// compute tiles, stores) to w — open it in chrome://tracing or
// Perfetto.
func (s *System) RunModelTraced(name string, w io.Writer) (InferenceResult, error) {
	wl, err := workload.Lookup(name)
	if err != nil {
		return InferenceResult{}, err
	}
	return s.RunWorkloadTraced(wl, w)
}

// RunWorkloadTraced is RunModelTraced for a caller-provided workload
// (e.g. one lowered from a graph-IR file).
func (s *System) RunWorkloadTraced(wl workload.Workload, w io.Writer) (InferenceResult, error) {
	s.acc.ResetTiming()
	task, err := s.drv.Submit(wl, 0, false)
	if err != nil {
		return InferenceResult{}, err
	}
	defer func() { _ = s.drv.Release(task) }()
	core, err := s.acc.Core(0)
	if err != nil {
		return InferenceResult{}, err
	}
	if err := s.mapNonSecure(0, task); err != nil {
		return InferenceResult{}, err
	}
	// With span-recording observability enabled, reuse its recorder so
	// component spans (noc.send, dma.mvin, iotlb.walk, ...) land on the
	// same Chrome timeline as the op events.
	rec := s.obs.Trace()
	if rec == nil {
		rec = trace.New(1 << 20)
	}
	cycles, err := s.drv.RunSoloTraced(core, task, rec)
	if err != nil {
		return InferenceResult{}, err
	}
	if err := rec.ExportChrome(w); err != nil {
		return InferenceResult{}, err
	}
	return InferenceResult{
		Model:       wl.Name,
		Cycles:      cycles,
		Utilization: npu.Utilization(task.Program, cycles, s.cfg.NPU.SystolicDim),
		MACs:        task.Program.TotalMACs,
	}, nil
}

// SecureTaskHandle identifies a verified secure task. It keeps the
// submission inputs so the recovery path can resubmit the task after a
// fail-closed abort.
type SecureTaskHandle struct {
	ID    int
	Cores []int
	prog  *workloadProg
	keyID string
	// sealed is the still-encrypted model blob — resubmission after an
	// abort re-verifies and re-decrypts it; no plaintext outlives the
	// abort outside the monitor.
	sealed []byte
}

type workloadProg struct {
	w    workload.Workload
	prog *npu.Program
}

// ProvisionKey installs a model owner's sealing key into the monitor
// (standing in for the attested key-exchange channel).
func (s *System) ProvisionKey(keyID string, key []byte) error {
	if s.mon == nil {
		return fmt.Errorf("snpu: baseline system has no monitor")
	}
	return s.mon.ProvisionKey(keyID, key)
}

// MapWindow asks the monitor to program a Guarder translation window
// on one core: VA [va, va+size) onto NPU-reserved memory at the given
// offset. Slots 1..15 are available (slot 0 is reserved for secure
// task loads). The monitor refuses windows into secure-owned memory.
// On the unprotected baseline there is nothing to program.
func (s *System) MapWindow(coreID, slot int, va uint64, reservedOff, size uint64) error {
	if s.mon == nil {
		return nil
	}
	if reservedOff+size > experiments.ReservedSize {
		return fmt.Errorf("snpu: window [%#x,+%#x) exceeds reserved memory", reservedOff, size)
	}
	return s.mon.MapNonSecure(coreID, slot, mem.VirtAddr(va),
		experiments.ReservedBase+mem.PhysAddr(reservedOff), size)
}

// AttestationReport re-exports the TEE quote type.
type AttestationReport = tee.Report

// Attest produces a Root-of-Trust quote binding the secure-boot chain
// to a task's code measurement, for the model owner's verifier. The
// monitor requests the quote on behalf of a submitted secure task.
func (s *System) Attest(h *SecureTaskHandle, nonce uint64) (AttestationReport, error) {
	if s.mon == nil {
		return AttestationReport{}, fmt.Errorf("snpu: baseline system has no monitor")
	}
	if h == nil || h.prog == nil {
		return AttestationReport{}, fmt.Errorf("snpu: nil task handle")
	}
	return s.machine.Attest(s.machine.SecureContext(), tee.Measurement(h.prog.prog.Measurement()), nonce)
}

// VerifyAttestation is the model owner's check: the report must carry
// the expected boot chain, the expected program measurement, and the
// fresh nonce. Owners call this before provisioning their sealing key.
func (s *System) VerifyAttestation(r AttestationReport, expectedTask [32]byte, nonce uint64) error {
	return s.machine.VerifyReport(r, s.machine.BootChain().Attestation(), tee.Measurement(expectedTask), nonce)
}

// SubmitSecure compiles a built-in model as a secure task and submits
// it through the monitor: the code verifier checks the measurement,
// the sealed model decrypts inside the secure world, and the task
// queues for loading.
func (s *System) SubmitSecure(name, keyID string, sealedModel []byte) (*SecureTaskHandle, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.SubmitSecureWorkload(w, keyID, sealedModel)
}

// SubmitSecureWorkload is SubmitSecure for a caller-provided workload —
// typically one lowered from a graph-IR document (internal/graph). The
// compiled program's measurement covers the workload's canonical
// digest, so the attestation quote binds the exact submitted graph,
// not just its display name.
func (s *System) SubmitSecureWorkload(w workload.Workload, keyID string, sealedModel []byte) (*SecureTaskHandle, error) {
	if s.mon == nil {
		return nil, fmt.Errorf("snpu: baseline system has no monitor")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	prog, _, err := npu.CompileCached(w, s.cfg.NPU, 0, npu.DefaultLayout)
	if err != nil {
		return nil, err
	}
	rep := s.mon.Dispatch(monitor.Call{
		Func:     monitor.FnSubmit,
		Shared:   sealedModel,
		Program:  prog,
		Expected: prog.Measurement(),
		KeyID:    keyID,
	})
	if rep.Err != nil {
		return nil, rep.Err
	}
	return &SecureTaskHandle{
		ID:     int(rep.Value),
		prog:   &workloadProg{w: w, prog: prog},
		keyID:  keyID,
		sealed: append([]byte(nil), sealedModel...),
	}, nil
}

// RunSecure loads the task onto core 0 (flipping it into the secure
// domain, programming its Guarder) and executes it, then unloads —
// scrubbing secure scratchpad lines and returning the core to the
// normal world.
func (s *System) RunSecure(h *SecureTaskHandle) (InferenceResult, error) {
	if s.mon == nil {
		return InferenceResult{}, fmt.Errorf("snpu: baseline system has no monitor")
	}
	const core = 0
	s.acc.ResetTiming()
	spadLines := s.cfg.NPU.SpadLines()
	rep := s.mon.Dispatch(monitor.Call{
		Func: monitor.FnLoad,
		Args: []uint64{uint64(h.ID), 0, uint64(spadLines), core},
	})
	if rep.Err != nil {
		return InferenceResult{}, rep.Err
	}
	h.Cores = []int{core}
	c, err := s.acc.Core(core)
	if err != nil {
		return InferenceResult{}, err
	}
	ex := npu.NewExec(c, h.prog.prog, h.ID+10000)
	cycles, err := ex.Run(0)
	if err != nil {
		return InferenceResult{}, err
	}
	if rep := s.mon.Dispatch(monitor.Call{Func: monitor.FnUnload, Args: []uint64{uint64(h.ID)}}); rep.Err != nil {
		return InferenceResult{}, rep.Err
	}
	return InferenceResult{
		Model:       h.prog.w.Name,
		Cycles:      cycles,
		Utilization: npu.Utilization(h.prog.prog, cycles, s.cfg.NPU.SystolicDim),
		MACs:        h.prog.prog.TotalMACs,
	}, nil
}

// TransferMode re-exports the multi-core activation transfer modes.
type TransferMode = npu.TransferMode

// Transfer modes for RunModelParallel.
const (
	TransferNoC          = npu.TransferNoC
	TransferSharedMemory = npu.TransferSharedMemory
)

// ModelParallelResult re-exports the multi-core run report.
type ModelParallelResult = npu.ModelParallelResult

// shmWindowVA is the shared-memory bounce buffer used by software-NoC
// transfers, identity-translated into the normal region.
const shmWindowVA = mem.VirtAddr(0x8100_0000)

// RunModelParallel runs one inference of a built-in model split across
// the given cores (a contiguous mesh block), exchanging activations
// per mode. On protected systems the monitor programs each core's
// Guarder with the slice's window plus the shared-memory window.
func (s *System) RunModelParallel(name string, cores []int, mode TransferMode) (ModelParallelResult, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return ModelParallelResult{}, err
	}
	s.acc.ResetTiming()
	var mapWindow npu.MapWindow
	if s.mon != nil {
		mapWindow = func(coreID int, prog *npu.Program) error {
			lo, hi := prog.VASpan()
			vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
			size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
			// Slice window onto a per-core cut of reserved memory.
			pa := experiments.ReservedBase + mem.PhysAddr(uint64(coreID)*(experiments.ReservedSize/16))
			if err := s.mon.MapNonSecure(coreID, 1, vbase, pa, size); err != nil {
				return err
			}
			// Shared-memory bounce buffer (software NoC), carved from
			// the tail of NPU-reserved memory so the platform checking
			// registers cover it.
			shmPA := experiments.ReservedBase + mem.PhysAddr(experiments.ReservedSize-(32<<20))
			return s.mon.MapNonSecure(coreID, 2, shmWindowVA, shmPA, 16<<20)
		}
	}
	return s.acc.RunModelParallel(w, cores, mode, shmWindowVA, mapWindow)
}

// TimeShareResult re-exports the driver's time-sharing report.
type TimeShareResult = driver.TimeShareResult

// FlushGranularity re-exports the scratchpad flush granularities.
type FlushGranularity = spad.FlushGranularity

// Flush granularities for TimeShare.
const (
	FlushNone       = spad.FlushNone
	FlushPerTile    = spad.FlushPerTile
	FlushPerLayer   = spad.FlushPerLayer
	FlushPer5Layers = spad.FlushPer5Layers
)

// NewScheduler builds a multi-tenant secure task scheduler over this
// system's NPU, monitor, and driver (§IV-B context switching under a
// serving workload). The scheduler owns the listed cores for one
// deterministic Run episode; see internal/sched for the model. An
// attached observability layer (EnableObservability) is wired in
// automatically.
func (s *System) NewScheduler(cfg sched.Config) (*sched.Scheduler, error) {
	sc, err := sched.New(sched.Deps{
		NPU:     s.acc,
		Monitor: s.mon,
		Driver:  s.drv,
		Cfg:     s.cfg.NPU,
		Stats:   s.stats,
	}, cfg)
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sc.AttachObserver(s.obs)
	}
	return sc, nil
}

// TimeShare runs two built-in models time-shared on core 0 at the
// given granularity. With flush=false it is sNPU's ID-isolated
// sharing; with flush=true it is the TrustZone-NPU strawman paying
// save/restore on every switch.
func (s *System) TimeShare(nameA, nameB string, gran FlushGranularity, flush bool) (TimeShareResult, error) {
	wa, err := workload.Lookup(nameA)
	if err != nil {
		return TimeShareResult{}, err
	}
	wb, err := workload.Lookup(nameB)
	if err != nil {
		return TimeShareResult{}, err
	}
	ta, err := s.drv.Submit(wa, 0, true)
	if err != nil {
		return TimeShareResult{}, err
	}
	defer func() { _ = s.drv.Release(ta) }()
	tb, err := s.drv.Submit(wb, 0, false)
	if err != nil {
		return TimeShareResult{}, err
	}
	defer func() { _ = s.drv.Release(tb) }()
	s.acc.ResetTiming()
	core, err := s.acc.Core(0)
	if err != nil {
		return TimeShareResult{}, err
	}
	for _, task := range []*driver.Task{ta, tb} {
		if err := s.mapNonSecure(0, task); err != nil {
			return TimeShareResult{}, err
		}
	}
	return s.drv.RunTimeShared(core, []*driver.Task{ta, tb}, gran, flush)
}
