package snpu

import (
	"sync"

	"repro/internal/experiments"
)

// System pooling for the root-level benchmark sweeps (serve,
// resilience, chaos): each cell used to boot a full protected SoC —
// regions, boot chain, NPU, guarders, monitor — per load point, and
// that churn is what the GC turned into negative parallel scaling.
// Released systems are scrubbed by System.Reset and reused by the next
// cell with the same Config.
//
// The pool honors the same global switches as the experiment-cell SoC
// pool: experiments.SetPooling(false) forces fresh boots (the
// differential tests use this), and an open -metrics-dir collection
// window disables reuse because collection registers one counter sink
// per boot.
var sysPool = struct {
	sync.Mutex
	buckets map[Config][]*System
	hits    uint64
	misses  uint64
}{buckets: make(map[Config][]*System)}

// sysPoolMax caps each bucket; see the experiment pool for rationale.
const sysPoolMax = 16

func sysPoolActive() bool {
	return experiments.PoolingEnabled() && !experiments.CollectingSoCStats()
}

// acquireSystem returns a ready System for cfg — recycled when one is
// pooled, freshly booted otherwise.
func acquireSystem(cfg Config) (*System, error) {
	if sysPoolActive() {
		sysPool.Lock()
		if b := sysPool.buckets[cfg]; len(b) > 0 {
			sys := b[len(b)-1]
			sysPool.buckets[cfg] = b[:len(b)-1]
			sysPool.hits++
			sysPool.Unlock()
			return sys, nil
		}
		sysPool.misses++
		sysPool.Unlock()
	}
	return New(cfg)
}

// release scrubs the system and returns it to the pool. Scrubbing
// happens at hand-back so no tenant's data sits in the pool; a system
// whose reset fails (or that is released while pooling is off) is
// simply dropped for the GC.
func (s *System) release() {
	if s == nil {
		return
	}
	if err := s.Reset(); err != nil {
		return
	}
	if !sysPoolActive() {
		return
	}
	sysPool.Lock()
	defer sysPool.Unlock()
	if len(sysPool.buckets[s.cfg]) >= sysPoolMax {
		return
	}
	sysPool.buckets[s.cfg] = append(sysPool.buckets[s.cfg], s)
}

// SystemPoolCounters reports lifetime pool hits and misses (bench
// reporting and tests).
func SystemPoolCounters() (hits, misses uint64) {
	sysPool.Lock()
	defer sysPool.Unlock()
	return sysPool.hits, sysPool.misses
}
