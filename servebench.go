package snpu

// The serve experiment: a seeded open-loop load generator driving the
// multi-tenant scheduler (internal/sched) across a sweep of arrival
// rates, reporting throughput, tail latency, preemption/batching
// activity, and cross-tenant fairness. Serving is beyond the paper;
// the sweep exists to exercise the §IV-B context-switch machinery
// under contention and to pin its cycle-determinism (the same seed
// yields a byte-identical table at any -j width).

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ServeBenchConfig tunes the load sweep. The zero value selects the
// defaults below.
type ServeBenchConfig struct {
	// Requests per load point (default 36).
	Requests int
	// LoadsPerM are the offered arrival rates in requests per million
	// cycles. The defaults straddle the 4-core capacity of the default
	// mix (~0.2 done/Mcyc): light, near-saturation, and overloaded.
	LoadsPerM []float64
	// Cores for the scheduler (default 0..3).
	Cores []int
	// Tenants is the number of submitting tenants (default 3).
	Tenants int
	// MaxBatch passes through to the scheduler (0 = default).
	MaxBatch int
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Requests <= 0 {
		c.Requests = 36
	}
	if len(c.LoadsPerM) == 0 {
		c.LoadsPerM = []float64{0.05, 0.2, 0.8}
	}
	if len(c.Cores) == 0 {
		c.Cores = []int{0, 1, 2, 3}
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	return c
}

// serveModels is the request-mix model pool (kept to the cheaper
// workloads so the sweep stays fast).
var serveModels = []string{"mobilenet", "yololite", "alexnet"}

// ServeBenchRow is one load point.
type ServeBenchRow struct {
	LoadPerM  float64
	Requests  int
	Completed int
	Dropped   int
	Aborted   int
	Rejected  int
	Makespan  sim.Cycle
	// ThroughputPerM is completed requests per million cycles of
	// makespan.
	ThroughputPerM float64
	P50, P99       sim.Cycle
	Preemptions    int
	BatchedRuns    int
	FlushCycles    sim.Cycle
	// Fairness is Jain's index over per-tenant completed counts
	// (1.0 = perfectly even service).
	Fairness float64
}

// ServeBenchResult is the full sweep.
type ServeBenchResult struct {
	Seed int64
	Rows []ServeBenchRow
}

// TableString renders the sweep.
func (r *ServeBenchResult) TableString() string {
	header := []string{"load/Mcyc", "reqs", "done", "drop", "abort", "rej",
		"thru/Mcyc", "p50-cyc", "p99-cyc", "preempts", "batched", "flush-cyc", "fairness"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", row.LoadPerM),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Dropped),
			fmt.Sprintf("%d", row.Aborted),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%.3f", row.ThroughputPerM),
			fmt.Sprintf("%d", row.P50),
			fmt.Sprintf("%d", row.P99),
			fmt.Sprintf("%d", row.Preemptions),
			fmt.Sprintf("%d", row.BatchedRuns),
			fmt.Sprintf("%d", row.FlushCycles),
			fmt.Sprintf("%.3f", row.Fairness),
		})
	}
	return experiments.Table(header, rows)
}

// ServeTrace generates the deterministic request trace for one load
// point: exponential inter-arrivals at loadPerM requests per million
// cycles, tenants round-robined through a seeded RNG, models drawn
// from the serve pool, roughly half the requests secure, and every
// fifth request carrying a finish deadline. Exposed so the differential
// tests replay the exact trace the bench ran.
func ServeTrace(seed int64, loadPerM float64, n, tenants int) []sched.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]sched.Request, 0, n)
	var at float64
	for i := 1; i <= n; i++ {
		at += rng.ExpFloat64() * 1e6 / loadPerM
		tenant := rng.Intn(tenants)
		r := sched.Request{
			ID:       i,
			Tenant:   fmt.Sprintf("t%d", tenant),
			Model:    serveModels[rng.Intn(len(serveModels))],
			Priority: sched.Priority(rng.Intn(3)),
			Arrival:  sim.Cycle(at),
			Secure:   rng.Intn(2) == 0,
			KeyID:    fmt.Sprintf("t%d-key", tenant),
		}
		if i%5 == 0 {
			r.Deadline = r.Arrival + sim.Cycle(4e6/loadPerM)
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// ServeBench runs the load sweep. Each load point boots a fresh
// protected SoC, provisions per-tenant sealing keys, replays the
// seeded trace through a scheduler episode, and summarizes the report.
func ServeBench(seed int64, cfg ServeBenchConfig) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	res := &ServeBenchResult{Seed: seed}
	for li, load := range cfg.LoadsPerM {
		row, err := serveLoadPoint(seed+int64(li)*104729, load, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve load %g: %w", load, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func serveLoadPoint(seed int64, load float64, cfg ServeBenchConfig) (ServeBenchRow, error) {
	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		return ServeBenchRow{}, err
	}
	defer sys.release()
	keys := make(map[string][]byte, cfg.Tenants)
	sealedFor := make(map[string][]byte, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		keyID := fmt.Sprintf("t%d-key", t)
		key := ChaosKey(seed + int64(t))
		if err := sys.ProvisionKey(keyID, key); err != nil {
			return ServeBenchRow{}, err
		}
		keys[keyID] = key
	}
	sc, err := sys.NewScheduler(sched.Config{Cores: cfg.Cores, MaxBatch: cfg.MaxBatch})
	if err != nil {
		return ServeBenchRow{}, err
	}
	trace := ServeTrace(seed, load, cfg.Requests, cfg.Tenants)
	for _, r := range trace {
		if r.Secure {
			// One sealed blob per (tenant, model): batch-mates share it,
			// and sealing cost scales with the blob, not the request.
			sealKey := r.KeyID + "/" + r.Model
			if sealedFor[sealKey] == nil {
				blob, err := SealModel(keys[r.KeyID], []byte("serve model "+sealKey))
				if err != nil {
					return ServeBenchRow{}, err
				}
				sealedFor[sealKey] = blob
			}
			r.Sealed = sealedFor[sealKey]
		}
		if err := sc.Submit(r); err != nil {
			return ServeBenchRow{}, err
		}
	}
	rep, err := sc.Run()
	if err != nil {
		return ServeBenchRow{}, err
	}
	return summarizeServe(load, rep), nil
}

func summarizeServe(load float64, rep *sched.Report) ServeBenchRow {
	row := ServeBenchRow{
		LoadPerM:    load,
		Requests:    len(rep.Results),
		Completed:   rep.Completed,
		Dropped:     rep.Dropped,
		Aborted:     rep.Aborted,
		Rejected:    rep.Rejected,
		Makespan:    rep.Makespan,
		Preemptions: rep.Preemptions,
		BatchedRuns: rep.BatchedRuns,
		FlushCycles: rep.FlushCycles,
	}
	var lats []sim.Cycle
	perTenant := map[string]float64{}
	for _, r := range rep.Results {
		if !r.Completed {
			continue
		}
		lats = append(lats, r.Latency())
		perTenant[r.Tenant]++
	}
	if row.Makespan > 0 {
		row.ThroughputPerM = float64(row.Completed) * 1e6 / float64(row.Makespan)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = lats[len(lats)/2]
		row.P99 = lats[(len(lats)*99)/100]
	}
	row.Fairness = jain(perTenant)
	return row
}

// jain is Jain's fairness index over the map's values.
func jain(xs map[string]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
