// Command covercheck enforces per-package coverage floors over a Go
// coverprofile. CI runs it after `go test -coverprofile`; it exits
// non-zero when a floored package drops below its minimum, so coverage
// of the isolation-critical packages (the monitor trampoline, the
// scratchpad domain model, the multi-tenant scheduler) can only
// ratchet up.
//
// Usage:
//
//	go test -coverprofile=coverage.out -covermode=atomic ./...
//	go run ./cmd/covercheck -profile coverage.out
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floors maps package import paths to their minimum statement coverage
// (percent). The values pin today's levels with headroom, not
// aspirations: dropping below one means tests were lost or a large
// untested surface was added to a trust-critical package.
var floors = map[string]float64{
	"repro/internal/graph":    80,
	"repro/internal/sched":    75,
	"repro/internal/serve":    80,
	"repro/internal/monitor":  80,
	"repro/internal/spad":     90,
	"repro/internal/workload": 80,
}

// pkgCov accumulates statement counts for one package.
type pkgCov struct {
	total   int
	covered int
}

func (p pkgCov) pct() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// parseProfile reads a coverprofile and returns per-package statement
// coverage. Profile lines look like:
//
//	repro/internal/sched/sched.go:123.45,130.2 5 1
func parseProfile(fname string) (map[string]pkgCov, error) {
	f, err := os.Open(fname)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]pkgCov{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		colon := strings.LastIndex(line, ".go:")
		if colon < 0 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		pkg := path.Dir(line[:colon+3])
		fields := strings.Fields(line[colon+4:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("malformed statement count in %q", line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed hit count in %q", line)
		}
		p := out[pkg]
		p.total += stmts
		if count > 0 {
			p.covered += stmts
		}
		out[pkg] = p
	}
	return out, sc.Err()
}

func main() {
	profile := flag.String("profile", "coverage.out", "coverprofile to check")
	flag.Parse()

	cov, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := false
	for _, pkg := range pkgs {
		p, ok := cov[pkg]
		if !ok {
			fmt.Printf("covercheck: FAIL %-24s absent from profile (floor %.0f%%)\n", pkg, floors[pkg])
			failed = true
			continue
		}
		pct := p.pct()
		status := "ok  "
		if pct < floors[pkg] {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("covercheck: %s %-24s %6.1f%% of %d statements (floor %.0f%%)\n",
			status, pkg, pct, p.total, floors[pkg])
	}
	if failed {
		os.Exit(1)
	}
}
