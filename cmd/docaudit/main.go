// Command docaudit runs the repository's documentation audit
// (internal/doccheck): every package doc must anchor itself to a paper
// section (§...) or declare itself "beyond the paper". CI runs it next
// to go vet; a non-zero exit lists the offending packages.
//
// Usage:
//
//	docaudit            # audit the current directory's module
//	docaudit -root path # audit another checkout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/doccheck"
)

func main() {
	root := flag.String("root", ".", "module root to audit")
	flag.Parse()

	vs, err := doccheck.Check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docaudit:", err)
		os.Exit(2)
	}
	for _, v := range vs {
		fmt.Fprintln(os.Stderr, "docaudit:", v)
	}
	if len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "docaudit: %d package(s) lack a paper anchor\n", len(vs))
		os.Exit(1)
	}
	fmt.Println("docaudit: all package docs carry a paper anchor")
}
