// Command snpu-serve is the multi-tenant serving daemon over the
// simulated sNPU SoC: an HTTP/JSON API to provision sealing keys,
// submit secure and non-secure inference requests, and run
// deterministic scheduling episodes (see internal/serve and
// internal/sched).
//
//	snpu-serve -addr :8080 -cores 0,1,2,3
//	snpu-serve -graph examples/graphs/tinycnn.json
//
//	curl -s -XPOST localhost:8080/v1/submit \
//	  -d '{"tenant":"a","model":"resnet"}'
//	curl -s -XPOST localhost:8080/v1/run | jq .completed
//	curl -s localhost:8080/metrics | head
//
// -graph registers custom graph-IR models at boot (comma-separated
// files): each compiles through internal/graph and becomes submittable
// by name, listed by GET /v1/models alongside the built-ins. Clients
// can also submit a one-off inline graph in the "graph" field of
// POST /v1/submit; invalid IR is a 400 either way.
//
// SIGTERM/SIGINT trigger a graceful drain: admission seals (submits
// get 503 + Retry-After, /readyz flips to 503), one final scheduling
// episode finishes in-flight work, then the listener shuts down and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	snpu "repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.String("cores", "", "comma-separated core list (default: all)")
	workers := flag.Int("j", 0, "compile worker pool width (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "secure same-model batch width (0 = default)")
	baseline := flag.Bool("baseline", false, "boot the unprotected baseline (non-secure only)")
	maxRestarts := flag.Int("max-restarts", 3, "fault-abort retry budget per secure request (0 = disabled)")
	retryBackoff := flag.Int64("retry-backoff", 0, "base retry backoff in simulated cycles (0 = default)")
	tenantQueue := flag.Int("tenant-queue", 8, "per-tenant queue bound; overflow sheds lowest priority (0 = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive aborts before tenant quarantine (0 = disabled)")
	breakerCooldown := flag.Int("breaker-cooldown", 2, "quarantine length in scheduling episodes")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wall time for graceful shutdown")
	graphFiles := flag.String("graph", "", "comma-separated graph-IR files to register as named models")
	flag.Parse()

	coreList, err := parseCores(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var models []workload.Workload
	if *graphFiles != "" {
		for _, path := range strings.Split(*graphFiles, ",") {
			path = strings.TrimSpace(path)
			w, err := graph.LoadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snpu-serve: -graph %s: %v\n", path, err)
				os.Exit(2)
			}
			models = append(models, w)
		}
	}
	cfg := snpu.DefaultConfig()
	if *baseline {
		cfg = snpu.BaselineConfig()
	}
	sys, err := snpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.EnableObservability(obs.Config{})
	srv, err := serve.New(sys, serve.Config{
		Cores:             coreList,
		Workers:           *workers,
		MaxBatch:          *maxBatch,
		MaxRestarts:       *maxRestarts,
		RetryBackoff:      sim.Cycle(*retryBackoff),
		MaxQueuePerTenant: *tenantQueue,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		Models:            models,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	log.Printf("snpu-serve listening on %s (protected=%v)", *addr, !*baseline)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("snpu-serve: %v: draining (admission sealed)", sig)
	}

	// Seal admission first so /readyz flips immediately, then finish
	// whatever is in flight before tearing the listener down.
	srv.Drain()
	if rep, err := srv.DrainAndFinish(); err != nil {
		log.Printf("snpu-serve: final episode failed: %v", err)
	} else if rep != nil {
		log.Printf("snpu-serve: drained final episode: completed=%d dropped=%d aborted=%d shed=%d",
			rep.Completed, rep.Dropped, rep.Aborted, rep.Shed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("snpu-serve: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("snpu-serve: drained, exiting")
}

func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("snpu-serve: bad core list %q: %v", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}
