// Command snpu-serve is the multi-tenant serving daemon over the
// simulated sNPU SoC: an HTTP/JSON API to provision sealing keys,
// submit secure and non-secure inference requests, and run
// deterministic scheduling episodes (see internal/serve and
// internal/sched).
//
//	snpu-serve -addr :8080 -cores 0,1,2,3
//
//	curl -s -XPOST localhost:8080/v1/submit \
//	  -d '{"tenant":"a","model":"resnet"}'
//	curl -s -XPOST localhost:8080/v1/run | jq .completed
//	curl -s localhost:8080/metrics | head
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	snpu "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.String("cores", "", "comma-separated core list (default: all)")
	workers := flag.Int("j", 0, "compile worker pool width (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "secure same-model batch width (0 = default)")
	baseline := flag.Bool("baseline", false, "boot the unprotected baseline (non-secure only)")
	flag.Parse()

	coreList, err := parseCores(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := snpu.DefaultConfig()
	if *baseline {
		cfg = snpu.BaselineConfig()
	}
	sys, err := snpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.EnableObservability(obs.Config{})
	srv, err := serve.New(sys, serve.Config{
		Cores: coreList, Workers: *workers, MaxBatch: *maxBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("snpu-serve listening on %s (protected=%v)", *addr, !*baseline)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("snpu-serve: bad core list %q: %v", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}
