// Command tcbsize reproduces the §VI-F TCB analysis over this
// repository: lines of code in the trusted packages (the NPU Monitor
// and the security-decision libraries it links) against the untrusted
// NPU software stack (driver, compiler, models, simulator plumbing).
//
// Usage:
//
//	tcbsize
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.TCB()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcbsize:", err)
		os.Exit(1)
	}
	fmt.Print(res.TableString())
	trusted, untrusted := res.Totals()
	fmt.Printf("\nTCB fraction: %.1f%% of the NPU software stack\n",
		100*float64(trusted)/float64(trusted+untrusted))
}
