// Command snpu-sim runs one inference workload on the simulated SoC
// and reports its runtime, utilization, and hardware counters.
//
// Usage:
//
//	snpu-sim -model resnet                     # sNPU-protected run
//	snpu-sim -model bert -baseline             # unprotected baseline
//	snpu-sim -model alexnet -secure            # through the NPU Monitor
//	snpu-sim -model googlenet -counters        # dump stat counters
//	snpu-sim -model yololite -secure -faults plan.json -seed 3
//	snpu-sim -model my-graph.json -secure      # compile a graph-IR file
//
// -model accepts either a built-in name or a path to a graph-IR JSON
// document (anything ending in .json): the graph is parsed, validated,
// and lowered to the same GEMM workload form the built-ins use, then
// runs through any mode — baseline, secure, traced. Invalid IR fails
// before anything executes.
//
// -seed (default 1) makes every run reproducible: it derives the
// secure-task sealing key and is echoed into fault plans, so the same
// seed and flags always produce identical output. -faults installs a
// fault plan (see internal/fault; generate one with fault.Generate or
// write the JSON by hand); a secure run with faults goes through the
// Monitor's recovery path and reports what it had to do.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	model := flag.String("model", "yololite", "workload: googlenet, alexnet, yololite, mobilenet, resnet, bert, vgg16, gpt-decode, dlrm — or a path to a graph-IR .json file")
	baseline := flag.Bool("baseline", false, "run on the unprotected baseline NPU")
	secure := flag.Bool("secure", false, "run as a secure task through the NPU Monitor")
	counters := flag.Bool("counters", false, "dump hardware counters after the run")
	traceOut := flag.String("trace", "", "write a Chrome-trace JSON timeline to this file")
	modelFile := flag.String("model-file", "", "run a custom workload described in this JSON file")
	faultsFile := flag.String("faults", "", "install the fault plan in this JSON file before running")
	metricsOut := flag.String("metrics", "", "write run metrics: Prometheus text to this file, JSON alongside with a .json extension")
	seed := flag.Int64("seed", 1, "deterministic seed for sealing-key derivation; same seed = identical run")
	flag.Parse()

	cfg := snpu.DefaultConfig()
	if *baseline {
		cfg = snpu.BaselineConfig()
	}
	sys, err := snpu.New(cfg)
	if err != nil {
		fatal(err)
	}

	// A .json -model is a graph-IR document: compile it up front so any
	// IR error surfaces before the SoC does anything.
	var graphWL workload.Workload
	haveGraph := strings.HasSuffix(*model, ".json")
	if haveGraph {
		graphWL, err = graph.LoadFile(*model)
		if err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		// Spans ride along only when a -trace timeline was requested;
		// the plain metrics path stays within the <2% overhead budget.
		sys.EnableObservability(obs.Config{Spans: *traceOut != ""})
	}

	var plan fault.Plan
	if *faultsFile != "" {
		if *baseline || *traceOut != "" || *modelFile != "" {
			fatal(fmt.Errorf("-faults supports the protected run only (no -baseline, -trace, -model-file)"))
		}
		f, err := os.Open(*faultsFile)
		if err != nil {
			fatal(err)
		}
		plan, err = fault.ReadPlan(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sys.InstallFaultPlan(plan)
	}

	var res snpu.InferenceResult
	if *modelFile != "" {
		if *secure || *traceOut != "" {
			fatal(fmt.Errorf("-model-file supports the plain non-secure path only"))
		}
		f, err := os.Open(*modelFile)
		if err != nil {
			fatal(err)
		}
		w, err := workload.ReadJSONWorkload(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		res, err = sys.RunWorkload(w)
		if err != nil {
			fatal(err)
		}
		printResult(res, "non-secure (custom model)")
		if *counters {
			fmt.Println("\nhardware counters:")
			fmt.Print(sys.Stats().String())
		}
		dumpMetrics(sys, *metricsOut)
		return
	}
	if *traceOut != "" {
		if *secure || *baseline {
			fatal(fmt.Errorf("-trace only supports the default non-secure protected run"))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if haveGraph {
			res, err = sys.RunWorkloadTraced(graphWL, f)
		} else {
			res, err = sys.RunModelTraced(*model, f)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	} else if *secure {
		if *baseline {
			fatal(fmt.Errorf("the baseline NPU has no monitor; drop -baseline"))
		}
		key := snpu.ChaosKey(*seed)
		if err := sys.ProvisionKey("cli-owner", key); err != nil {
			fatal(err)
		}
		sealed, err := snpu.SealModel(key, []byte("model weights for "+*model))
		if err != nil {
			fatal(err)
		}
		var handle *snpu.SecureTaskHandle
		if haveGraph {
			handle, err = sys.SubmitSecureWorkload(graphWL, "cli-owner", sealed)
		} else {
			handle, err = sys.SubmitSecure(*model, "cli-owner", sealed)
		}
		if err != nil {
			fatal(err)
		}
		if *faultsFile != "" {
			rep, err := sys.RunSecureResilient(handle, snpu.DefaultMaxRestarts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snpu-sim: %v (faults fired: %d, restarts: %d, remaps: %d)\n",
					err, rep.Faults, rep.Restarts, rep.Remaps)
				os.Exit(1)
			}
			res = rep.InferenceResult
			printResult(res, "secure (via NPU Monitor, resilient)")
			fmt.Printf("fault plan:   %d scheduled, %d fired, %d restarts, %d remaps\n",
				len(plan.Events), rep.Faults, rep.Restarts, rep.Remaps)
			if *counters {
				fmt.Println("\nhardware counters:")
				fmt.Print(sys.Stats().String())
			}
			dumpMetrics(sys, *metricsOut)
			return
		}
		res, err = sys.RunSecure(handle)
		if err != nil {
			fatal(err)
		}
	} else {
		if haveGraph {
			res, err = sys.RunWorkload(graphWL)
		} else {
			res, err = sys.RunModel(*model)
		}
		if err != nil {
			fatal(err)
		}
	}

	mode := "non-secure"
	if *secure {
		mode = "secure (via NPU Monitor)"
	}
	printResult(res, mode)
	if *counters {
		fmt.Println("\nhardware counters:")
		fmt.Print(sys.Stats().String())
	}
	dumpMetrics(sys, *metricsOut)
}

// dumpMetrics writes the run's metrics registry as Prometheus text to
// path and as JSON next to it (extension swapped for .json). A no-op
// when -metrics was not given.
func dumpMetrics(sys *snpu.System, path string) {
	o := sys.Observer()
	if o == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := o.Registry().WritePrometheus(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	jsonPath := strings.TrimSuffix(path, filepath.Ext(path)) + ".json"
	jf, err := os.Create(jsonPath)
	if err != nil {
		fatal(err)
	}
	if err := o.Registry().WriteJSON(jf); err != nil {
		jf.Close()
		fatal(err)
	}
	if err := jf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics written to %s and %s\n", path, jsonPath)
}

func printResult(res snpu.InferenceResult, mode string) {
	fmt.Printf("model:        %s\n", res.Model)
	fmt.Printf("mode:         %s\n", mode)
	fmt.Printf("cycles:       %d (%.3f ms at 1 GHz)\n", res.Cycles, float64(res.Cycles)/1e6)
	fmt.Printf("MACs:         %d (%.2f GMACs)\n", res.MACs, float64(res.MACs)/1e9)
	fmt.Printf("utilization:  %.1f%% of peak\n", res.Utilization*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snpu-sim:", err)
	os.Exit(1)
}
