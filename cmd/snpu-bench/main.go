// Command snpu-bench regenerates the paper's evaluation tables and
// figures on the simulated SoC and prints them as text tables.
//
// Usage:
//
//	snpu-bench                 # run every experiment
//	snpu-bench -exp fig13      # one experiment: fig1, table1, fig13,
//	                           # fig14, fig15, fig16, fig17, fig18, tcb
//	snpu-bench -models alexnet,yololite
//	snpu-bench -markdown       # wrap tables for EXPERIMENTS.md
//	snpu-bench -exp chaos -seed 7
//
// -seed (default 1) drives everything randomized: the chaos
// experiment's fault plans and its sealing key. The same seed always
// reproduces byte-identical tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	snpu "repro"
	"repro/internal/experiments"
	"repro/internal/hwcost"
	"repro/internal/npu"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig1, table1, fig13, fig14, fig15, fig16, fig17, fig18, tcb, ablations, chaos)")
	modelsFlag := flag.String("models", "", "comma-separated model subset (default: all six)")
	markdown := flag.Bool("markdown", false, "emit fenced code blocks with headings")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	seed := flag.Int64("seed", 1, "seed for randomized experiments (chaos); same seed = identical output")
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	models, err := selectModels(*modelsFlag)
	if err != nil {
		fatal(err)
	}
	cfg := npu.DefaultConfig()

	section := func(title, body string) {
		if *markdown {
			fmt.Fprintf(out, "### %s\n\n```\n%s```\n\n", title, body)
		} else {
			fmt.Fprintf(out, "==== %s ====\n%s\n", title, body)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig1") {
		ran = true
		res, err := experiments.Fig1(models, cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 1 — FLOPS utilization of single inference workloads", res.TableString())
	}
	if want("table1") {
		ran = true
		res, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		section("Table I — scratchpad isolation mechanisms", res.TableString())
	}
	if want("fig13") {
		ran = true
		res, err := experiments.Fig13(models, cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 13(a) — access control: normalized performance", res.TableA())
		section("Fig. 13(b) — access control: translation requests", res.TableB())
	}
	if want("fig14") {
		ran = true
		res, err := experiments.Fig14(models, cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 14 — flush granularity overhead (time-shared)", res.TableString())
	}
	if want("fig15") {
		ran = true
		res, err := experiments.Fig15(cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 15 — static partition vs ID-based dynamic scratchpad", res.TableString())
	}
	if want("fig16") {
		ran = true
		res, err := experiments.Fig16(cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 16 — NoC micro-test", res.TableString())
	}
	if want("fig17") {
		ran = true
		res, err := experiments.Fig17(models, cfg)
		if err != nil {
			fatal(err)
		}
		section("Fig. 17 — NoC application test (model-parallel, 2x2 cores)", res.TableString())
	}
	if want("fig18") {
		ran = true
		res := experiments.Fig18(hwcost.DefaultParams())
		section("Fig. 18 — hardware resource cost", res.TableString())
	}
	if want("tcb") {
		ran = true
		res, err := experiments.TCB()
		if err != nil {
			fatal(err)
		}
		section("TCB size analysis (§VI-F, over this repository)", res.TableString())
	}
	if want("ablations") {
		ran = true
		sweeps := []func() (*experiments.AblationResult, error){
			func() (*experiments.AblationResult, error) { return experiments.AblationIOTLBSweep("yololite", cfg) },
			func() (*experiments.AblationResult, error) { return experiments.AblationSpadBudget("alexnet", cfg) },
			func() (*experiments.AblationResult, error) { return experiments.AblationMultiDomain(), nil },
			func() (*experiments.AblationResult, error) { return experiments.AblationL2("alexnet", cfg) },
			func() (*experiments.AblationResult, error) { return experiments.AblationMulticast(cfg) },
			func() (*experiments.AblationResult, error) {
				return experiments.AblationCheckingEnergy("yololite", cfg)
			},
			func() (*experiments.AblationResult, error) { return experiments.AblationBandwidth("alexnet", cfg) },
			func() (*experiments.AblationResult, error) { return experiments.AblationPreemption("yololite", cfg) },
		}
		for _, sweep := range sweeps {
			res, err := sweep()
			if err != nil {
				fatal(err)
			}
			section("Ablation — "+res.Name, res.TableString())
		}
	}
	if want("chaos") {
		ran = true
		model := "yololite"
		if len(models) > 0 {
			model = models[0].Name
		}
		res, err := snpu.Chaos(model, *seed, nil)
		if err != nil {
			fatal(err)
		}
		section(fmt.Sprintf("Chaos — seeded fault injection + recovery (%s, seed %d; beyond-paper)", res.Model, res.Seed),
			res.TableString())
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func selectModels(flagVal string) ([]workload.Workload, error) {
	if flagVal == "" {
		return workload.All(), nil
	}
	var out []workload.Workload
	for _, name := range strings.Split(flagVal, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snpu-bench:", err)
	os.Exit(1)
}
