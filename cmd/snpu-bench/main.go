// Command snpu-bench regenerates the paper's evaluation tables and
// figures on the simulated SoC and prints them as text tables.
//
// Usage:
//
//	snpu-bench                 # run every experiment
//	snpu-bench -exp fig13      # one experiment: fig1, table1, fig13,
//	                           # fig14, fig15, fig16, fig17, fig18, tcb
//	snpu-bench -models alexnet,yololite
//	snpu-bench -markdown       # wrap tables for EXPERIMENTS.md
//	snpu-bench -exp chaos -seed 7
//	snpu-bench -j 4            # run experiment cells on 4 workers
//	snpu-bench -bench-json BENCH_2026-08-06.json -bench-compare
//	snpu-bench -bench-against BENCH_2026-08-06.json
//
// -seed (default 1) drives everything randomized: the chaos
// experiment's fault plans and its sealing key. The same seed always
// reproduces byte-identical tables.
//
// -j sets the worker-pool width for experiment cells (default
// GOMAXPROCS). Every cell boots its own SoC, so any -j produces
// byte-identical tables; see DESIGN.md on the parallel-determinism
// contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	snpu "repro"
	"repro/internal/experiments"
	"repro/internal/hwcost"
	"repro/internal/npu"
	"repro/internal/workload"
)

// options carries the per-run configuration into the experiment specs.
type options struct {
	exp      string
	models   []workload.Workload
	markdown bool
	seed     int64
	// small shrinks the randomized sweeps for CI smoke jobs.
	small bool
	// metricsDir, when set, exports per-experiment metrics files
	// (<exp>.prom + <exp>.json) aggregated over the experiment's SoCs.
	metricsDir string
}

// section is one titled output block.
type section struct {
	title, body string
}

// expSpec names one experiment and produces its output sections.
type expSpec struct {
	name string
	run  func(opts options) ([]section, error)
}

// suiteSpecs lists every experiment in the order the report prints
// them. Each spec fans its cells out over the experiments worker pool;
// the spec list itself runs in order so sections render
// deterministically.
func suiteSpecs() []expSpec {
	cfg := npu.DefaultConfig()
	return []expSpec{
		{"fig1", func(o options) ([]section, error) {
			res, err := experiments.Fig1(o.models, cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Fig. 1 — FLOPS utilization of single inference workloads", res.TableString()}}, nil
		}},
		{"table1", func(o options) ([]section, error) {
			res, err := experiments.Table1(cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Table I — scratchpad isolation mechanisms", res.TableString()}}, nil
		}},
		{"fig13", func(o options) ([]section, error) {
			res, err := experiments.Fig13(o.models, cfg)
			if err != nil {
				return nil, err
			}
			return []section{
				{"Fig. 13(a) — access control: normalized performance", res.TableA()},
				{"Fig. 13(b) — access control: translation requests", res.TableB()},
			}, nil
		}},
		{"fig14", func(o options) ([]section, error) {
			res, err := experiments.Fig14(o.models, cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Fig. 14 — flush granularity overhead (time-shared)", res.TableString()}}, nil
		}},
		{"fig15", func(o options) ([]section, error) {
			res, err := experiments.Fig15(cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Fig. 15 — static partition vs ID-based dynamic scratchpad", res.TableString()}}, nil
		}},
		{"fig16", func(o options) ([]section, error) {
			res, err := experiments.Fig16(cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Fig. 16 — NoC micro-test", res.TableString()}}, nil
		}},
		{"fig17", func(o options) ([]section, error) {
			res, err := experiments.Fig17(o.models, cfg)
			if err != nil {
				return nil, err
			}
			return []section{{"Fig. 17 — NoC application test (model-parallel, 2x2 cores)", res.TableString()}}, nil
		}},
		{"fig18", func(o options) ([]section, error) {
			res := experiments.Fig18(hwcost.DefaultParams())
			return []section{{"Fig. 18 — hardware resource cost", res.TableString()}}, nil
		}},
		{"tcb", func(o options) ([]section, error) {
			res, err := experiments.TCB()
			if err != nil {
				return nil, err
			}
			return []section{{"TCB size analysis (§VI-F, over this repository)", res.TableString()}}, nil
		}},
		{"ablations", func(o options) ([]section, error) {
			sweeps := []func() (*experiments.AblationResult, error){
				func() (*experiments.AblationResult, error) { return experiments.AblationIOTLBSweep("yololite", cfg) },
				func() (*experiments.AblationResult, error) { return experiments.AblationSpadBudget("alexnet", cfg) },
				func() (*experiments.AblationResult, error) { return experiments.AblationMultiDomain(), nil },
				func() (*experiments.AblationResult, error) { return experiments.AblationL2("alexnet", cfg) },
				func() (*experiments.AblationResult, error) { return experiments.AblationMulticast(cfg) },
				func() (*experiments.AblationResult, error) {
					return experiments.AblationCheckingEnergy("yololite", cfg)
				},
				func() (*experiments.AblationResult, error) { return experiments.AblationBandwidth("alexnet", cfg) },
				func() (*experiments.AblationResult, error) { return experiments.AblationPreemption("yololite", cfg) },
			}
			var out []section
			for _, sweep := range sweeps {
				res, err := sweep()
				if err != nil {
					return nil, err
				}
				out = append(out, section{"Ablation — " + res.Name, res.TableString()})
			}
			return out, nil
		}},
		{"serve", func(o options) ([]section, error) {
			res, err := snpu.ServeBench(o.seed, snpu.ServeBenchConfig{})
			if err != nil {
				return nil, err
			}
			title := fmt.Sprintf("Serve — multi-tenant scheduler load sweep (seed %d; beyond-paper)", res.Seed)
			return []section{{title, res.TableString()}}, nil
		}},
		{"decode", func(o options) ([]section, error) {
			dcfg := snpu.DecodeBenchConfig{}
			if o.small {
				// CI smoke shape: fewer requests, two batch widths.
				dcfg.Requests = 6
				dcfg.Batches = []int{1, 2}
			}
			res, err := snpu.DecodeBench(o.seed, dcfg)
			if err != nil {
				return nil, err
			}
			recordDecodeSummary(res)
			title := fmt.Sprintf("Decode — autoregressive serving with KV residency + continuous batching (seed %d; beyond-paper)", res.Seed)
			return []section{{title, res.TableString()}}, nil
		}},
		{"resilience", func(o options) ([]section, error) {
			rcfg := snpu.ResilienceBenchConfig{}
			if o.small {
				// CI smoke shape: one load, both fault rates, few requests.
				rcfg.Requests = 12
				rcfg.LoadsPerM = []float64{0.4}
			}
			res, err := snpu.ResilienceBench(o.seed, rcfg)
			if err != nil {
				return nil, err
			}
			recordResilienceSummary(res)
			title := fmt.Sprintf("Resilience — fault-rate x load sweep with retry/shed policy (seed %d; beyond-paper)", res.Seed)
			return []section{{title, res.TableString()}}, nil
		}},
		{"chaos", func(o options) ([]section, error) {
			model := "yololite"
			if len(o.models) > 0 {
				model = o.models[0].Name
			}
			res, err := snpu.Chaos(model, o.seed, nil)
			if err != nil {
				return nil, err
			}
			title := fmt.Sprintf("Chaos — seeded fault injection + recovery (%s, seed %d; beyond-paper)", res.Model, res.Seed)
			return []section{{title, res.TableString()}}, nil
		}},
	}
}

// runSuite executes the selected experiments in order, writes their
// sections to w, and returns the per-experiment measurements for the
// bench snapshot.
func runSuite(w io.Writer, opts options) ([]BenchExperiment, error) {
	emit := func(s section) {
		if opts.markdown {
			fmt.Fprintf(w, "### %s\n\n```\n%s```\n\n", s.title, s.body)
		} else {
			fmt.Fprintf(w, "==== %s ====\n%s\n", s.title, s.body)
		}
	}
	var measured []BenchExperiment
	ran := false
	for _, spec := range suiteSpecs() {
		if opts.exp != "all" && opts.exp != spec.name {
			continue
		}
		ran = true
		var m BenchExperiment
		var sections []section
		runOne := func() error {
			var err error
			m, sections, err = measureExperiment(spec, opts)
			return err
		}
		var err error
		if opts.metricsDir != "" {
			err = collectExperimentMetrics(opts.metricsDir, spec.name, runOne)
		} else {
			err = runOne()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		measured = append(measured, m)
		for _, s := range sections {
			emit(s)
		}
	}
	if !ran {
		return nil, fmt.Errorf("unknown experiment %q", opts.exp)
	}
	return measured, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig1, table1, fig13, fig14, fig15, fig16, fig17, fig18, tcb, ablations, serve, decode, resilience, chaos)")
	modelsFlag := flag.String("models", "", "comma-separated model subset (default: all six)")
	markdown := flag.Bool("markdown", false, "emit fenced code blocks with headings")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	seed := flag.Int64("seed", 1, "seed for randomized experiments (serve, decode, resilience, chaos); same seed = identical output")
	small := flag.Bool("small", false, "shrink randomized sweeps (resilience) for CI smoke jobs")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "experiment-cell worker pool width; output is identical for any value")
	benchJSON := flag.String("bench-json", "", "write a perf snapshot (wall-time per experiment, cells/sec, allocs) to this file")
	benchCompare := flag.Bool("bench-compare", false, "with -bench-json: force the sequential reference pass even at -j 1")
	benchAgainst := flag.String("bench-against", "", "compare wall-times and fig1 allocs/cell against a committed snapshot; exit 1 on regression")
	benchTable := flag.String("bench-table", "", "with -bench-against: write a markdown comparison table to this file")
	gateSpeedup := flag.Float64("gate-speedup", 0, "fail if the measured -j speedup is below this (0 disables; skipped when NumCPU < 4)")
	metricsDir := flag.String("metrics-dir", "", "write per-experiment metrics (Prometheus text + JSON) into this directory")
	metricsOverhead := flag.Bool("metrics-overhead", false, "measure the observability layer's enabled-vs-disabled overhead; exit 1 above 2%")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	models, err := selectModels(*modelsFlag)
	if err != nil {
		fatal(err)
	}
	opts := options{exp: *exp, models: models, markdown: *markdown, seed: *seed, small: *small}

	var seqMeasured []BenchExperiment
	if *benchJSON != "" && (*jobs > 1 || *benchCompare) {
		// Sequential reference pass: same cells, pool width 1, output
		// discarded (it is byte-identical by the determinism contract).
		// It runs first, on cold pools, so its alloc counts are
		// scheduling-independent — the allocs/cell gate compares these.
		experiments.SetWorkers(1)
		seqMeasured, err = runSuite(io.Discard, opts)
		if err != nil {
			fatal(err)
		}
	}

	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fatal(err)
		}
		// Only the main pass exports metrics; the sequential reference
		// pass above would overwrite them with identical bytes anyway.
		opts.metricsDir = *metricsDir
	}

	experiments.SetWorkers(*jobs)
	measured, err := runSuite(out, opts)
	if err != nil {
		fatal(err)
	}

	var overheadPct float64
	if *metricsOverhead {
		pct, err := measureMetricsOverhead()
		if err != nil {
			fatal(err)
		}
		overheadPct = pct
		fmt.Fprintf(os.Stderr, "snpu-bench: metrics overhead %.2f%% enabled vs disabled (limit %.1f%%)\n",
			pct, metricsOverheadLimitPct)
	}

	snap := newSnapshot(*jobs, measured, seqMeasured)
	if *metricsOverhead {
		snap.MetricsOverheadPct = overheadPct
	}
	// The gate verdict goes into the snapshot itself, so a skipped gate
	// (small runner) is visible in the committed BENCH JSON.
	snap.SpeedupGate = speedupGateStatus(*gateSpeedup, runtime.NumCPU(), len(seqMeasured), snap.Speedup)
	if *benchJSON != "" {
		if err := writeSnapshot(*benchJSON, snap); err != nil {
			fatal(err)
		}
	}
	if *benchAgainst != "" {
		baseline, err := readSnapshot(*benchAgainst)
		if err != nil {
			fatal(err)
		}
		if *benchTable != "" {
			if err := os.WriteFile(*benchTable, []byte(comparisonTable(baseline, snap)), 0o644); err != nil {
				fatal(err)
			}
		}
		regressions := compareSnapshots(baseline, measured)
		if msg := allocRegression(baseline, snap); msg != "" {
			regressions = append(regressions, msg)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "snpu-bench: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "snpu-bench: no regressions vs", *benchAgainst)
	}
	if *gateSpeedup > 0 {
		fmt.Fprintf(os.Stderr, "snpu-bench: speedup gate (-j %d): %s\n", *jobs, snap.SpeedupGate)
		if strings.HasPrefix(snap.SpeedupGate, "fail") {
			os.Exit(1)
		}
	}
	if overheadPct > metricsOverheadLimitPct {
		fmt.Fprintf(os.Stderr, "snpu-bench: REGRESSION: metrics overhead %.2f%% exceeds the %.1f%% budget\n",
			overheadPct, metricsOverheadLimitPct)
		os.Exit(1)
	}
}

func selectModels(flagVal string) ([]workload.Workload, error) {
	if flagVal == "" {
		return workload.All(), nil
	}
	var out []workload.Workload
	for _, name := range strings.Split(flagVal, ",") {
		w, err := workload.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snpu-bench:", err)
	os.Exit(1)
}
