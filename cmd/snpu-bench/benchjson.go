package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	snpu "repro"
	"repro/internal/experiments"
	"repro/internal/npu"
)

// The -bench-json perf snapshot: wall-time per experiment, cells/sec,
// and allocation churn, written as BENCH_<date>.json so the repo
// carries a perf trajectory future PRs must not regress (the
// -bench-against gate in CI enforces a 2x ceiling).

// benchSchema versions the snapshot format.
const benchSchema = "snpu-bench/v1"

// BenchExperiment is one experiment's measurement.
type BenchExperiment struct {
	Name string `json:"name"`
	// WallNS is the experiment's wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Cells is how many experiment cells (SoC boots) the run executed.
	Cells int64 `json:"cells"`
	// CellsPerSec is Cells over wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Allocs and AllocBytes are the heap churn over the run (deltas of
	// runtime.MemStats.Mallocs / TotalAlloc).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// AllocsPerCell / AllocBytesPerCell normalize the churn per
	// experiment cell (zero when the experiment has no cell notion).
	// These are the alloc-budget numbers the CI gate tracks.
	AllocsPerCell     float64 `json:"allocs_per_cell"`
	AllocBytesPerCell float64 `json:"alloc_bytes_per_cell"`
}

// BenchSnapshot is the whole perf snapshot.
type BenchSnapshot struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is runtime.GOMAXPROCS at snapshot time — on cgroup-
	// limited CI runners this, not NumCPU, is the real parallelism cap.
	GoMaxProcs int `json:"gomaxprocs"`
	// Jobs is the -j worker-pool width of the measured run; Workers is
	// the effective width the cell pool actually used.
	Jobs        int               `json:"jobs"`
	Workers     int               `json:"workers"`
	Experiments []BenchExperiment `json:"experiments"`
	TotalWallNS int64             `json:"total_wall_ns"`
	// SeqTotalWallNS is the sequential (-j 1) reference total, present
	// when the run measured a reference pass.
	SeqTotalWallNS int64 `json:"seq_total_wall_ns,omitempty"`
	// SeqExperiments are the reference pass's per-experiment
	// measurements. Their alloc numbers are scheduling-independent
	// (one worker, cold pools), so the allocs/cell CI gate compares
	// these rather than the parallel pass's (whose pool-miss count
	// varies with worker interleaving).
	SeqExperiments []BenchExperiment `json:"seq_experiments,omitempty"`
	// Speedup is SeqTotalWallNS / TotalWallNS; 1 by definition for a
	// -j 1 run. Always emitted — the CI speedup gate reads it.
	Speedup float64 `json:"speedup"`
	// Pool and compile-cache traffic over the whole run (hits = reuse).
	PoolHits           uint64 `json:"pool_hits"`
	PoolMisses         uint64 `json:"pool_misses"`
	CompileCacheHits   uint64 `json:"compile_cache_hits"`
	CompileCacheMisses uint64 `json:"compile_cache_misses"`
	// MetricsOverheadPct is the observability layer's measured
	// enabled-vs-disabled wall-time overhead in percent, present when
	// the snapshot was taken with -metrics-overhead. CI gates it at
	// metricsOverheadLimitPct.
	MetricsOverheadPct float64 `json:"metrics_overhead_pct,omitempty"`
	// Resilience summarizes the resilience sweep when the run included
	// it (simulated-cycle quantities, so they are seed-deterministic
	// rather than wall-time noise; older snapshots simply omit it).
	Resilience *ResilienceSummary `json:"resilience,omitempty"`
	// Decode summarizes the decode sweep when the run included it
	// (seed-deterministic simulated-cycle quantities, like Resilience).
	Decode *DecodeSummary `json:"decode,omitempty"`
	// SpeedupGate records the -gate-speedup verdict so the snapshot is
	// self-describing: "pass", "fail", or an explicit skip marker like
	// "skipped: NumCPU<4" — a snapshot from a small runner must not
	// read as if the gate was evaluated and met. Empty when the run
	// did not ask for the gate.
	SpeedupGate string `json:"speedup_gate,omitempty"`
}

// ResilienceSummary condenses the resilience sweep into the snapshot:
// worst-cell goodput and p99 plus sweep-total recovery accounting.
type ResilienceSummary struct {
	Seed           int64   `json:"seed"`
	Cells          int     `json:"cells"`
	MinGoodputPerM float64 `json:"min_goodput_per_mcyc"`
	MaxP99Cycles   int64   `json:"max_p99_cycles"`
	Retries        int     `json:"retries"`
	Recovered      int     `json:"recovered"`
	Shed           int     `json:"shed"`
	Dropped        int     `json:"dropped"`
	Aborted        int     `json:"aborted"`
}

// DecodeSummary condenses the decode sweep into the snapshot: the
// widest-batch row's token throughput and inter-token tail, plus
// sweep-total batching activity. All simulated-cycle quantities, so
// they are seed-deterministic rather than wall-time noise.
type DecodeSummary struct {
	Seed int64 `json:"seed"`
	// MaxBatch is the widest batch point; TokensPerSec and P99ITLCycles
	// are that row's headline numbers (1 GHz cycle model).
	MaxBatch     int     `json:"max_batch"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	P99ITLCycles int64   `json:"p99_inter_token_cycles"`
	Tokens       int     `json:"tokens"`
	Joins        int     `json:"joins"`
	BatchedRuns  int     `json:"batched_runs"`
}

// lastResilience is filled by the resilience experiment spec as it
// runs; newSnapshot folds it into the written snapshot.
var lastResilience *ResilienceSummary

// lastDecode is the decode sweep's counterpart.
var lastDecode *DecodeSummary

func recordDecodeSummary(res *snpu.DecodeBenchResult) {
	sum := &DecodeSummary{Seed: res.Seed}
	for _, row := range res.Rows {
		if row.MaxBatch >= sum.MaxBatch {
			sum.MaxBatch = row.MaxBatch
			sum.TokensPerSec = row.TokensPerSec
			sum.P99ITLCycles = int64(row.P99ITL)
			sum.Tokens = row.Tokens
		}
		sum.Joins += row.Joins
		sum.BatchedRuns += row.BatchedRuns
	}
	lastDecode = sum
}

func recordResilienceSummary(res *snpu.ResilienceBenchResult) {
	sum := &ResilienceSummary{Seed: res.Seed, Cells: len(res.Rows)}
	for i, row := range res.Rows {
		if i == 0 || row.GoodputPerM < sum.MinGoodputPerM {
			sum.MinGoodputPerM = row.GoodputPerM
		}
		if int64(row.P99) > sum.MaxP99Cycles {
			sum.MaxP99Cycles = int64(row.P99)
		}
		sum.Retries += row.Retries
		sum.Recovered += row.Recovered
		sum.Shed += row.Shed
		sum.Dropped += row.Dropped
		sum.Aborted += row.Aborted
	}
	lastResilience = sum
}

// measureExperiment runs one spec, capturing wall time, cell count,
// and allocation deltas around it.
func measureExperiment(spec expSpec, opts options) (BenchExperiment, []section, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cellsBefore := experiments.CellsRun()
	start := time.Now()
	sections, err := spec.run(opts)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return BenchExperiment{}, nil, err
	}
	m := BenchExperiment{
		Name:       spec.name,
		WallNS:     wall.Nanoseconds(),
		Cells:      experiments.CellsRun() - cellsBefore,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if wall > 0 {
		m.CellsPerSec = float64(m.Cells) / wall.Seconds()
	}
	if m.Cells > 0 {
		m.AllocsPerCell = float64(m.Allocs) / float64(m.Cells)
		m.AllocBytesPerCell = float64(m.AllocBytes) / float64(m.Cells)
	}
	return m, sections, nil
}

// newSnapshot assembles the snapshot from per-experiment measurements.
// seqMeasured is the sequential reference pass (nil for a -j 1 run,
// where the main pass IS sequential and speedup is 1 by definition).
func newSnapshot(jobs int, measured, seqMeasured []BenchExperiment) BenchSnapshot {
	snap := BenchSnapshot{
		Schema:         benchSchema,
		Date:           time.Now().UTC().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Jobs:           jobs,
		Workers:        experiments.Workers(),
		Experiments:    measured,
		SeqExperiments: seqMeasured,
		Speedup:        1,
		Resilience:     lastResilience,
		Decode:         lastDecode,
	}
	socHits, socMisses := experiments.PoolCounters()
	sysHits, sysMisses := snpu.SystemPoolCounters()
	snap.PoolHits = socHits + sysHits
	snap.PoolMisses = socMisses + sysMisses
	snap.CompileCacheHits, snap.CompileCacheMisses = npu.ProgCacheCounters()
	for _, m := range measured {
		snap.TotalWallNS += m.WallNS
	}
	var seqTotalNS int64
	for _, m := range seqMeasured {
		seqTotalNS += m.WallNS
	}
	if seqTotalNS > 0 {
		snap.SeqTotalWallNS = seqTotalNS
		if snap.TotalWallNS > 0 {
			snap.Speedup = float64(seqTotalNS) / float64(snap.TotalWallNS)
		}
	}
	return snap
}

// writeSnapshot writes the snapshot as indented JSON.
func writeSnapshot(path string, snap BenchSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// readSnapshot loads a committed snapshot.
func readSnapshot(path string) (BenchSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return BenchSnapshot{}, err
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return BenchSnapshot{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if snap.Schema != benchSchema {
		return BenchSnapshot{}, fmt.Errorf("%s: unknown schema %q", path, snap.Schema)
	}
	return snap, nil
}

// speedupGateStatus evaluates the -gate-speedup verdict recorded in
// the snapshot's speedup_gate field. The explicit skip markers are part
// of the snapshot contract: a run on a small CI runner must record
// "skipped: NumCPU<4" rather than read as if the gate was met. Empty
// when the gate was not requested.
func speedupGateStatus(gate float64, numCPU, seqExperiments int, speedup float64) string {
	switch {
	case gate <= 0:
		return ""
	case numCPU < 4:
		return "skipped: NumCPU<4"
	case seqExperiments == 0:
		return "skipped: no sequential reference pass (need -bench-json and -j > 1)"
	case speedup < gate:
		return fmt.Sprintf("fail: speedup %.2f below gate %.2f", speedup, gate)
	default:
		return fmt.Sprintf("pass: speedup %.2f meets gate %.2f", speedup, gate)
	}
}

// regressionFloorNS ignores experiments whose baseline wall time is in
// the noise (scheduler jitter makes sub-50ms timings meaningless to
// ratio-compare).
const regressionFloorNS = 50 * int64(time.Millisecond)

// compareSnapshots reports every experiment whose wall time regressed
// more than 2x over the baseline's.
func compareSnapshots(baseline BenchSnapshot, measured []BenchExperiment) []string {
	base := make(map[string]BenchExperiment, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.Name] = e
	}
	var out []string
	for _, m := range measured {
		b, ok := base[m.Name]
		if !ok || b.WallNS < regressionFloorNS {
			continue
		}
		if m.WallNS > 2*b.WallNS {
			out = append(out, fmt.Sprintf("%s: %.0fms vs baseline %.0fms (>2x)",
				m.Name, float64(m.WallNS)/1e6, float64(b.WallNS)/1e6))
		}
	}
	return out
}

// The allocs/cell gate: fig1 is the canary experiment whose per-cell
// allocation budget CI tracks, with 10% headroom. Alloc counts are
// compared between sequential passes (one worker, cold pools) because
// the parallel pass's pool-miss count varies with worker interleaving.
const (
	allocGateExperiment = "fig1"
	allocGateTolerance  = 1.10
)

// allocPass picks the scheduling-independent measurement for name: the
// sequential reference pass when the snapshot has one, else the main
// pass (which for a -j 1 snapshot is already sequential).
func allocPass(snap BenchSnapshot, name string) (BenchExperiment, bool) {
	for _, set := range [][]BenchExperiment{snap.SeqExperiments, snap.Experiments} {
		for _, e := range set {
			if e.Name == name && e.Cells > 0 && e.AllocsPerCell > 0 {
				return e, true
			}
		}
	}
	return BenchExperiment{}, false
}

// allocRegression reports a non-empty message when the measured
// snapshot's fig1 allocs/cell regressed more than allocGateTolerance
// over the baseline's. Baselines without per-cell data (pre-speedup
// schema) skip the gate.
func allocRegression(baseline, snap BenchSnapshot) string {
	base, ok := allocPass(baseline, allocGateExperiment)
	if !ok {
		return ""
	}
	now, ok := allocPass(snap, allocGateExperiment)
	if !ok {
		return fmt.Sprintf("%s: no allocs/cell measurement to compare against baseline", allocGateExperiment)
	}
	if now.AllocsPerCell > allocGateTolerance*base.AllocsPerCell {
		return fmt.Sprintf("%s: %.0f allocs/cell vs baseline %.0f (>%d%%)",
			allocGateExperiment, now.AllocsPerCell, base.AllocsPerCell,
			int(allocGateTolerance*100)-100)
	}
	return ""
}

// comparisonTable renders a markdown table of this run against the
// baseline — the artifact CI uploads alongside the snapshot.
func comparisonTable(baseline, snap BenchSnapshot) string {
	base := make(map[string]BenchExperiment, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.Name] = e
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# snpu-bench comparison\n\n")
	fmt.Fprintf(&b, "- baseline: %s (%s, %d CPUs, -j %d)\n", baseline.Date, baseline.GoVersion, baseline.NumCPU, baseline.Jobs)
	fmt.Fprintf(&b, "- this run: %s (%s, %d CPUs, GOMAXPROCS %d, -j %d, %d workers)\n",
		snap.Date, snap.GoVersion, snap.NumCPU, snap.GoMaxProcs, snap.Jobs, snap.Workers)
	fmt.Fprintf(&b, "- speedup: %.2f (baseline %.2f)\n", snap.Speedup, baseline.Speedup)
	fmt.Fprintf(&b, "- pool hits/misses: %d/%d; compile cache %d/%d\n\n",
		snap.PoolHits, snap.PoolMisses, snap.CompileCacheHits, snap.CompileCacheMisses)
	fmt.Fprintf(&b, "| experiment | wall ms | baseline ms | ratio | allocs/cell | baseline |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|\n")
	for _, m := range snap.Experiments {
		bl, ok := base[m.Name]
		ratio, blMS, blAllocs := "-", "-", "-"
		if ok && bl.WallNS > 0 {
			ratio = fmt.Sprintf("%.2f", float64(m.WallNS)/float64(bl.WallNS))
			blMS = fmt.Sprintf("%.0f", float64(bl.WallNS)/1e6)
			blAllocs = fmt.Sprintf("%.0f", bl.AllocsPerCell)
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s | %s | %.0f | %s |\n",
			m.Name, float64(m.WallNS)/1e6, blMS, ratio, m.AllocsPerCell, blAllocs)
	}
	return b.String()
}
