package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	snpu "repro"
	"repro/internal/experiments"
)

// The -bench-json perf snapshot: wall-time per experiment, cells/sec,
// and allocation churn, written as BENCH_<date>.json so the repo
// carries a perf trajectory future PRs must not regress (the
// -bench-against gate in CI enforces a 2x ceiling).

// benchSchema versions the snapshot format.
const benchSchema = "snpu-bench/v1"

// BenchExperiment is one experiment's measurement.
type BenchExperiment struct {
	Name string `json:"name"`
	// WallNS is the experiment's wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Cells is how many experiment cells (SoC boots) the run executed.
	Cells int64 `json:"cells"`
	// CellsPerSec is Cells over wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Allocs and AllocBytes are the heap churn over the run (deltas of
	// runtime.MemStats.Mallocs / TotalAlloc).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// BenchSnapshot is the whole perf snapshot.
type BenchSnapshot struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Jobs is the -j worker-pool width of the measured run.
	Jobs        int               `json:"jobs"`
	Experiments []BenchExperiment `json:"experiments"`
	TotalWallNS int64             `json:"total_wall_ns"`
	// SeqTotalWallNS is the sequential (-j 1) reference total, present
	// when the snapshot was taken with -bench-compare.
	SeqTotalWallNS int64 `json:"seq_total_wall_ns,omitempty"`
	// Speedup is SeqTotalWallNS / TotalWallNS when both were measured.
	Speedup float64 `json:"speedup,omitempty"`
	// MetricsOverheadPct is the observability layer's measured
	// enabled-vs-disabled wall-time overhead in percent, present when
	// the snapshot was taken with -metrics-overhead. CI gates it at
	// metricsOverheadLimitPct.
	MetricsOverheadPct float64 `json:"metrics_overhead_pct,omitempty"`
	// Resilience summarizes the resilience sweep when the run included
	// it (simulated-cycle quantities, so they are seed-deterministic
	// rather than wall-time noise; older snapshots simply omit it).
	Resilience *ResilienceSummary `json:"resilience,omitempty"`
}

// ResilienceSummary condenses the resilience sweep into the snapshot:
// worst-cell goodput and p99 plus sweep-total recovery accounting.
type ResilienceSummary struct {
	Seed           int64   `json:"seed"`
	Cells          int     `json:"cells"`
	MinGoodputPerM float64 `json:"min_goodput_per_mcyc"`
	MaxP99Cycles   int64   `json:"max_p99_cycles"`
	Retries        int     `json:"retries"`
	Recovered      int     `json:"recovered"`
	Shed           int     `json:"shed"`
	Dropped        int     `json:"dropped"`
	Aborted        int     `json:"aborted"`
}

// lastResilience is filled by the resilience experiment spec as it
// runs; newSnapshot folds it into the written snapshot.
var lastResilience *ResilienceSummary

func recordResilienceSummary(res *snpu.ResilienceBenchResult) {
	sum := &ResilienceSummary{Seed: res.Seed, Cells: len(res.Rows)}
	for i, row := range res.Rows {
		if i == 0 || row.GoodputPerM < sum.MinGoodputPerM {
			sum.MinGoodputPerM = row.GoodputPerM
		}
		if int64(row.P99) > sum.MaxP99Cycles {
			sum.MaxP99Cycles = int64(row.P99)
		}
		sum.Retries += row.Retries
		sum.Recovered += row.Recovered
		sum.Shed += row.Shed
		sum.Dropped += row.Dropped
		sum.Aborted += row.Aborted
	}
	lastResilience = sum
}

// measureExperiment runs one spec, capturing wall time, cell count,
// and allocation deltas around it.
func measureExperiment(spec expSpec, opts options) (BenchExperiment, []section, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cellsBefore := experiments.CellsRun()
	start := time.Now()
	sections, err := spec.run(opts)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return BenchExperiment{}, nil, err
	}
	m := BenchExperiment{
		Name:       spec.name,
		WallNS:     wall.Nanoseconds(),
		Cells:      experiments.CellsRun() - cellsBefore,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if wall > 0 {
		m.CellsPerSec = float64(m.Cells) / wall.Seconds()
	}
	return m, sections, nil
}

// newSnapshot assembles the snapshot from per-experiment measurements.
func newSnapshot(jobs int, measured []BenchExperiment, seqTotalNS int64) BenchSnapshot {
	snap := BenchSnapshot{
		Schema:      benchSchema,
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Jobs:        jobs,
		Experiments: measured,
		Resilience:  lastResilience,
	}
	for _, m := range measured {
		snap.TotalWallNS += m.WallNS
	}
	if seqTotalNS > 0 {
		snap.SeqTotalWallNS = seqTotalNS
		if snap.TotalWallNS > 0 {
			snap.Speedup = float64(seqTotalNS) / float64(snap.TotalWallNS)
		}
	}
	return snap
}

// writeSnapshot writes the snapshot as indented JSON.
func writeSnapshot(path string, snap BenchSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// readSnapshot loads a committed snapshot.
func readSnapshot(path string) (BenchSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return BenchSnapshot{}, err
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return BenchSnapshot{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if snap.Schema != benchSchema {
		return BenchSnapshot{}, fmt.Errorf("%s: unknown schema %q", path, snap.Schema)
	}
	return snap, nil
}

// regressionFloorNS ignores experiments whose baseline wall time is in
// the noise (scheduler jitter makes sub-50ms timings meaningless to
// ratio-compare).
const regressionFloorNS = 50 * int64(time.Millisecond)

// compareSnapshots reports every experiment whose wall time regressed
// more than 2x over the baseline's.
func compareSnapshots(baseline BenchSnapshot, measured []BenchExperiment) []string {
	base := make(map[string]BenchExperiment, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.Name] = e
	}
	var out []string
	for _, m := range measured {
		b, ok := base[m.Name]
		if !ok || b.WallNS < regressionFloorNS {
			continue
		}
		if m.WallNS > 2*b.WallNS {
			out = append(out, fmt.Sprintf("%s: %.0fms vs baseline %.0fms (>2x)",
				m.Name, float64(m.WallNS)/1e6, float64(b.WallNS)/1e6))
		}
	}
	return out
}
