package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// The byte-level half of the parallel-determinism contract: the whole
// report — every experiment, including the seeded chaos run whose
// fault plans are non-empty — must be byte-identical between the
// sequential runner and a 4-wide pool. CI runs this under -race, so a
// violation surfaces either as a diff here or as a data race there.

func testModels(t *testing.T) []workload.Workload {
	t.Helper()
	if !testing.Short() {
		return workload.All()
	}
	var out []workload.Workload
	for _, n := range []string{"alexnet", "yololite"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func renderSuite(t *testing.T, opts options, jobs int) []byte {
	t.Helper()
	experiments.SetWorkers(jobs)
	defer experiments.SetWorkers(0)
	var buf bytes.Buffer
	if _, err := runSuite(&buf, opts); err != nil {
		t.Fatalf("runSuite (j=%d): %v", jobs, err)
	}
	return buf.Bytes()
}

func TestDifferentialFullSuite(t *testing.T) {
	opts := options{exp: "all", models: testModels(t), seed: 1}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("full suite differs between -j 1 and -j 4 (seq %d bytes, par %d bytes):\n%s",
			len(seq), len(par), firstDiff(seq, par))
	}
}

// TestDifferentialChaosSeeded re-checks the contract on the chaos
// experiment alone with a different fixed seed, so the fault-injection
// path (non-empty plan) is exercised explicitly even in -short runs.
func TestDifferentialChaosSeeded(t *testing.T) {
	opts := options{exp: "chaos", models: testModels(t), seed: 7}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("chaos(seed=7) differs between -j 1 and -j 4:\n%s", firstDiff(seq, par))
	}
	if !bytes.Contains(seq, []byte("seed 7")) {
		t.Fatal("chaos output does not mention its seed")
	}
}

// TestDifferentialResilienceSweep re-checks the contract on the
// resilience experiment alone with a different fixed seed: four cells,
// each with an armed transient-fault plan, retries, and shedding, must
// render byte-identically at any pool width.
func TestDifferentialResilienceSweep(t *testing.T) {
	opts := options{exp: "resilience", seed: 5, small: testing.Short()}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("resilience(seed=5) differs between -j 1 and -j 4:\n%s", firstDiff(seq, par))
	}
	if !bytes.Contains(seq, []byte("seed 5")) {
		t.Fatal("resilience output does not mention its seed")
	}
}

// TestDifferentialDecodeSweep re-checks the contract on the decode
// experiment alone: continuous batching, KV claims, and per-token
// timing must render byte-identically at any pool width.
func TestDifferentialDecodeSweep(t *testing.T) {
	opts := options{exp: "decode", seed: 3, small: testing.Short()}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("decode(seed=3) differs between -j 1 and -j 4:\n%s", firstDiff(seq, par))
	}
	if !bytes.Contains(seq, []byte("seed 3")) {
		t.Fatal("decode output does not mention its seed")
	}
	for _, col := range []string{"tok/s@1GHz", "p99-itl-cyc", "joins"} {
		if !bytes.Contains(seq, []byte(col)) {
			t.Fatalf("decode table missing %q column:\n%s", col, seq)
		}
	}
}

// TestSpeedupGateStatus pins the gate's verdict strings — in
// particular the explicit skip marker a small CI runner must record in
// the BENCH JSON instead of silently passing.
func TestSpeedupGateStatus(t *testing.T) {
	cases := []struct {
		name    string
		gate    float64
		numCPU  int
		seqExps int
		speedup float64
		want    string
	}{
		{"disabled", 0, 16, 3, 2.0, ""},
		{"small-runner", 1.5, 2, 3, 2.0, "skipped: NumCPU<4"},
		{"small-runner-3cpu", 1.5, 3, 3, 2.0, "skipped: NumCPU<4"},
		{"no-reference", 1.5, 16, 0, 2.0, "skipped: no sequential reference pass (need -bench-json and -j > 1)"},
		{"fail", 1.5, 16, 3, 1.2, "fail: speedup 1.20 below gate 1.50"},
		{"pass", 1.5, 16, 3, 2.0, "pass: speedup 2.00 meets gate 1.50"},
	}
	for _, c := range cases {
		if got := speedupGateStatus(c.gate, c.numCPU, c.seqExps, c.speedup); got != c.want {
			t.Fatalf("%s: speedupGateStatus = %q, want %q", c.name, got, c.want)
		}
	}
	// The small-runner skip outranks every other condition: a 2-CPU box
	// with a failing speedup still records the skip, never "fail".
	if got := speedupGateStatus(1.5, 2, 3, 0.5); got != "skipped: NumCPU<4" {
		t.Fatalf("skip precedence violated: %q", got)
	}
}

// TestBenchSnapshotRoundTrip covers the -bench-json emitter: a
// snapshot survives write/read and the regression comparator flags
// only genuine >2x slowdowns.
func TestBenchSnapshotRoundTrip(t *testing.T) {
	measured := []BenchExperiment{
		{Name: "fig13", WallNS: 2e9, Cells: 36, CellsPerSec: 18},
		{Name: "fig16", WallNS: 1e6, Cells: 6},
	}
	seq := []BenchExperiment{
		{Name: "fig13", WallNS: 4e9 - 1e6, Cells: 36},
		{Name: "fig16", WallNS: 1e6, Cells: 6},
	}
	snap := newSnapshot(4, measured, seq)
	if snap.TotalWallNS != 2e9+1e6 {
		t.Fatalf("TotalWallNS = %d", snap.TotalWallNS)
	}
	if snap.Speedup < 1.9 || snap.Speedup > 2.1 {
		t.Fatalf("Speedup = %v, want ~2", snap.Speedup)
	}
	if snap.GoMaxProcs <= 0 || snap.Workers <= 0 {
		t.Fatalf("snapshot missing scheduler metadata: gomaxprocs=%d workers=%d",
			snap.GoMaxProcs, snap.Workers)
	}
	if len(snap.SeqExperiments) != 2 {
		t.Fatalf("SeqExperiments = %d entries, want 2", len(snap.SeqExperiments))
	}
	snap.SpeedupGate = "skipped: NumCPU<4"
	snap.Decode = &DecodeSummary{Seed: 1, MaxBatch: 4, TokensPerSec: 3414, P99ITLCycles: 66117, Tokens: 45}
	path := t.TempDir() + "/BENCH_test.json"
	if err := writeSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs != 4 || len(back.Experiments) != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if back.SpeedupGate != "skipped: NumCPU<4" {
		t.Fatalf("round-trip lost the gate marker: %q", back.SpeedupGate)
	}
	if back.Decode == nil || back.Decode.MaxBatch != 4 || back.Decode.P99ITLCycles != 66117 {
		t.Fatalf("round-trip lost the decode summary: %+v", back.Decode)
	}

	// 3x regression on fig13 must trip; fig16 is under the noise floor
	// and must not, even at 100x.
	slow := []BenchExperiment{
		{Name: "fig13", WallNS: 6e9},
		{Name: "fig16", WallNS: 1e8},
	}
	regs := compareSnapshots(back, slow)
	if len(regs) != 1 || !strings.Contains(regs[0], "fig13") {
		t.Fatalf("regressions = %v, want exactly fig13", regs)
	}
	if regs := compareSnapshots(back, measured); len(regs) != 0 {
		t.Fatalf("same timings flagged as regression: %v", regs)
	}
}

// TestNewSnapshotNoSeqPass pins the -j 1 default: with no sequential
// reference pass, speedup is emitted as the neutral 1 (the field is
// always present in the JSON), and SeqExperiments stays empty.
func TestNewSnapshotNoSeqPass(t *testing.T) {
	snap := newSnapshot(1, []BenchExperiment{{Name: "fig16", WallNS: 1e6, Cells: 6}}, nil)
	if snap.Speedup != 1 {
		t.Fatalf("Speedup = %v, want 1 when no reference pass ran", snap.Speedup)
	}
	if snap.SeqTotalWallNS != 0 || len(snap.SeqExperiments) != 0 {
		t.Fatalf("unexpected sequential data: %+v", snap)
	}
}

// TestAllocRegressionGate covers the fig1 allocs/cell gate: it prefers
// the sequential pass, trips only past the 10% headroom, and skips
// silently against pre-speedup baselines that lack per-cell data.
func TestAllocRegressionGate(t *testing.T) {
	baseline := BenchSnapshot{SeqExperiments: []BenchExperiment{
		{Name: "fig1", Cells: 6, AllocsPerCell: 1000},
	}}
	ok := BenchSnapshot{
		// A noisy parallel pass must not shadow the clean sequential one.
		Experiments:    []BenchExperiment{{Name: "fig1", Cells: 6, AllocsPerCell: 5000}},
		SeqExperiments: []BenchExperiment{{Name: "fig1", Cells: 6, AllocsPerCell: 1050}},
	}
	if msg := allocRegression(baseline, ok); msg != "" {
		t.Fatalf("5%% growth tripped the gate: %s", msg)
	}
	bad := BenchSnapshot{SeqExperiments: []BenchExperiment{
		{Name: "fig1", Cells: 6, AllocsPerCell: 1200},
	}}
	if msg := allocRegression(baseline, bad); !strings.Contains(msg, "fig1") {
		t.Fatalf("20%% growth passed the gate: %q", msg)
	}
	if msg := allocRegression(BenchSnapshot{}, bad); msg != "" {
		t.Fatalf("gate ran against a baseline without per-cell data: %s", msg)
	}
	if msg := allocRegression(baseline, BenchSnapshot{}); !strings.Contains(msg, "no allocs/cell") {
		t.Fatalf("missing measurement not reported: %q", msg)
	}
}

// TestComparisonTable sanity-checks the CI artifact renderer: one row
// per measured experiment, with ratios against matching baseline rows
// and dashes where the baseline has no counterpart.
func TestComparisonTable(t *testing.T) {
	baseline := BenchSnapshot{
		Date:        "2026-01-01",
		Experiments: []BenchExperiment{{Name: "fig13", WallNS: 2e9, AllocsPerCell: 10}},
	}
	snap := BenchSnapshot{
		Date:    "2026-02-01",
		Speedup: 1.7,
		Experiments: []BenchExperiment{
			{Name: "fig13", WallNS: 1e9, AllocsPerCell: 9},
			{Name: "fig16", WallNS: 1e6},
		},
	}
	table := comparisonTable(baseline, snap)
	for _, want := range []string{"| fig13 |", "0.50", "| fig16 |", "| - |", "speedup: 1.70"} {
		if !strings.Contains(table, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, table)
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\nseq: %s\npar: %s", i+1, al[i], bl[i])
		}
	}
	return "outputs diverge in length only"
}
