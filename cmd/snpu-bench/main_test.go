package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// The byte-level half of the parallel-determinism contract: the whole
// report — every experiment, including the seeded chaos run whose
// fault plans are non-empty — must be byte-identical between the
// sequential runner and a 4-wide pool. CI runs this under -race, so a
// violation surfaces either as a diff here or as a data race there.

func testModels(t *testing.T) []workload.Workload {
	t.Helper()
	if !testing.Short() {
		return workload.All()
	}
	var out []workload.Workload
	for _, n := range []string{"alexnet", "yololite"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func renderSuite(t *testing.T, opts options, jobs int) []byte {
	t.Helper()
	experiments.SetWorkers(jobs)
	defer experiments.SetWorkers(0)
	var buf bytes.Buffer
	if _, err := runSuite(&buf, opts); err != nil {
		t.Fatalf("runSuite (j=%d): %v", jobs, err)
	}
	return buf.Bytes()
}

func TestDifferentialFullSuite(t *testing.T) {
	opts := options{exp: "all", models: testModels(t), seed: 1}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("full suite differs between -j 1 and -j 4 (seq %d bytes, par %d bytes):\n%s",
			len(seq), len(par), firstDiff(seq, par))
	}
}

// TestDifferentialChaosSeeded re-checks the contract on the chaos
// experiment alone with a different fixed seed, so the fault-injection
// path (non-empty plan) is exercised explicitly even in -short runs.
func TestDifferentialChaosSeeded(t *testing.T) {
	opts := options{exp: "chaos", models: testModels(t), seed: 7}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("chaos(seed=7) differs between -j 1 and -j 4:\n%s", firstDiff(seq, par))
	}
	if !bytes.Contains(seq, []byte("seed 7")) {
		t.Fatal("chaos output does not mention its seed")
	}
}

// TestDifferentialResilienceSweep re-checks the contract on the
// resilience experiment alone with a different fixed seed: four cells,
// each with an armed transient-fault plan, retries, and shedding, must
// render byte-identically at any pool width.
func TestDifferentialResilienceSweep(t *testing.T) {
	opts := options{exp: "resilience", seed: 5, small: testing.Short()}
	seq := renderSuite(t, opts, 1)
	par := renderSuite(t, opts, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("resilience(seed=5) differs between -j 1 and -j 4:\n%s", firstDiff(seq, par))
	}
	if !bytes.Contains(seq, []byte("seed 5")) {
		t.Fatal("resilience output does not mention its seed")
	}
}

// TestBenchSnapshotRoundTrip covers the -bench-json emitter: a
// snapshot survives write/read and the regression comparator flags
// only genuine >2x slowdowns.
func TestBenchSnapshotRoundTrip(t *testing.T) {
	measured := []BenchExperiment{
		{Name: "fig13", WallNS: 2e9, Cells: 36, CellsPerSec: 18},
		{Name: "fig16", WallNS: 1e6, Cells: 6},
	}
	snap := newSnapshot(4, measured, 4e9)
	if snap.TotalWallNS != 2e9+1e6 {
		t.Fatalf("TotalWallNS = %d", snap.TotalWallNS)
	}
	if snap.Speedup < 1.9 || snap.Speedup > 2.1 {
		t.Fatalf("Speedup = %v, want ~2", snap.Speedup)
	}
	path := t.TempDir() + "/BENCH_test.json"
	if err := writeSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs != 4 || len(back.Experiments) != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}

	// 3x regression on fig13 must trip; fig16 is under the noise floor
	// and must not, even at 100x.
	slow := []BenchExperiment{
		{Name: "fig13", WallNS: 6e9},
		{Name: "fig16", WallNS: 1e8},
	}
	regs := compareSnapshots(back, slow)
	if len(regs) != 1 || !strings.Contains(regs[0], "fig13") {
		t.Fatalf("regressions = %v, want exactly fig13", regs)
	}
	if regs := compareSnapshots(back, measured); len(regs) != 0 {
		t.Fatalf("same timings flagged as regression: %v", regs)
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\nseq: %s\npar: %s", i+1, al[i], bl[i])
		}
	}
	return "outputs diverge in length only"
}
