package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	snpu "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Metrics support for the bench harness: -metrics-dir exports one
// Prometheus/JSON metrics pair per experiment (aggregated over every
// SoC the experiment booted), and -metrics-overhead measures the
// enabled-vs-disabled cost of the observability layer on a fixed
// workload, which CI gates at metricsOverheadLimitPct.

// metricsOverheadLimitPct is the acceptance ceiling for the
// observability layer's measured wall-time overhead.
const metricsOverheadLimitPct = 2.0

// writeExperimentMetrics aggregates the counter sinks of every SoC an
// experiment booted and writes dir/<name>.prom and dir/<name>.json.
// The canonical counter set is materialized first so each dump covers
// the full component namespace, zeros included; summing across sinks
// is commutative, so the files are byte-identical at any -j.
func writeExperimentMetrics(dir, name string, sinks []*sim.Stats) error {
	reg := obs.NewRegistry()
	canon := sim.NewStats()
	for _, n := range sim.CanonicalCounters() {
		canon.Counter(n)
	}
	reg.AttachStats(canon)
	for _, s := range sinks {
		reg.AttachStats(s)
	}
	promPath := filepath.Join(dir, name+".prom")
	f, err := os.Create(promPath)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// overheadProbeRounds / overheadProbeRepeats size the overhead
// measurement: each round times overheadProbeRepeats back-to-back
// inferences and the best round is kept, which filters scheduler
// noise the way testing.B's best-of repetitions do.
const (
	overheadProbeRounds  = 5
	overheadProbeRepeats = 3
	overheadProbeModel   = "yololite"
)

// probeMetricsWall times the probe workload on a freshly booted
// protected SoC, with or without the observability layer, returning
// the best round's wall time and the (deterministic) cycle count.
func probeMetricsWall(enable bool) (time.Duration, sim.Cycle, error) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		return 0, 0, err
	}
	if enable {
		sys.EnableObservability(obs.Config{})
	}
	// Warmup run: pays one-time compilation/alloc costs and pins the
	// cycle count the timed rounds must reproduce.
	res, err := sys.RunModel(overheadProbeModel)
	if err != nil {
		return 0, 0, err
	}
	best := time.Duration(0)
	for r := 0; r < overheadProbeRounds; r++ {
		start := time.Now()
		for i := 0; i < overheadProbeRepeats; i++ {
			rr, err := sys.RunModel(overheadProbeModel)
			if err != nil {
				return 0, 0, err
			}
			if rr.Cycles != res.Cycles {
				return 0, 0, fmt.Errorf("metrics probe: cycle drift across repeats (%d vs %d)", rr.Cycles, res.Cycles)
			}
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, res.Cycles, nil
}

// measureMetricsOverhead reports the observability layer's wall-time
// overhead in percent on the probe workload. It also proves the layer
// is passive: the simulated cycle count must be identical with the
// layer on and off, or the probe errors out.
func measureMetricsOverhead() (float64, error) {
	offWall, offCycles, err := probeMetricsWall(false)
	if err != nil {
		return 0, err
	}
	onWall, onCycles, err := probeMetricsWall(true)
	if err != nil {
		return 0, err
	}
	if onCycles != offCycles {
		return 0, fmt.Errorf("metrics probe: observability changed simulated timing (%d cycles enabled vs %d disabled)",
			onCycles, offCycles)
	}
	// The delta is kept signed: a negative reading (enabled measured
	// faster) is scheduler noise and is recorded as such rather than
	// rounded to a too-clean zero.
	return (float64(onWall) - float64(offWall)) / float64(offWall) * 100, nil
}

// collectExperimentMetrics wraps one experiment run with a stats
// collection window and writes its aggregated metrics files.
func collectExperimentMetrics(dir, name string, run func() error) error {
	experiments.CollectSoCStats(true)
	defer experiments.CollectSoCStats(false)
	if err := run(); err != nil {
		return err
	}
	return writeExperimentMetrics(dir, name, experiments.DrainSoCStats())
}
