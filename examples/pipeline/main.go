// Pipeline: model-parallel multi-core inference over the NoC. Splits
// each layer's output channels across a 2x2 block of cores, exchanges
// activation slices after every layer, and compares the direct
// (peephole-authenticated) NoC against the software NoC that bounces
// activations through shared DRAM.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	snpu "repro"
	"repro/internal/npu"
	"repro/internal/spad"
	"repro/internal/workload"
)

func main() {
	model := "googlenet"
	if _, err := workload.Lookup(model); err != nil {
		log.Fatal(err)
	}
	// A 2x2 block on the 5x2 mesh: cores 0,1 (row 0) and 5,6 (row 1).
	block := []int{0, 1, 5, 6}
	fmt.Printf("model-parallel %s over cores %v (2x2 block)\n\n", model, block)

	run := func(mode snpu.TransferMode, secureBlock bool) snpu.ModelParallelResult {
		sys, err := snpu.New(snpu.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if secureBlock {
			// Flip the whole block into the secure domain so peephole
			// authentication passes among its members (and rejects
			// everyone else). In a deployment the monitor's secure
			// loader does this after the route-integrity check.
			if err := sys.NPU().SetCoreDomains(sys.Machine().SecureContext(), block, spad.SecureDomain); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sys.RunModelParallel(model, block, mode)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	noc := run(npu.TransferNoC, true)
	shm := run(npu.TransferSharedMemory, false)

	fmt.Printf("peephole NoC     : %10d cycles (%6d in exchanges)\n", noc.TotalCycles, noc.TransferCycles)
	fmt.Printf("software NoC     : %10d cycles (%6d in exchanges)\n", shm.TotalCycles, shm.TransferCycles)
	fmt.Printf("NoC speedup      : %.1f%% less execution time\n",
		100*(1-float64(noc.TotalCycles)/float64(shm.TotalCycles)))

	// Solo single-core reference for scale.
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	solo, err := sys.RunModel(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle core      : %10d cycles (multi-core speedup %.2fx)\n",
		solo.Cycles, float64(solo.Cycles)/float64(noc.TotalCycles))
}
