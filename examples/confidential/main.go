// Confidential: the full model-owner workflow end to end, with real
// data. The owner (1) challenges the device for an attestation report
// binding the secure-boot chain to their task's code measurement,
// (2) verifies it and only then provisions their sealing key, (3) ships
// the sealed model through the untrusted driver, and (4) the task
// computes on a secure core — while a co-resident attacker probing the
// same scratchpad gets nothing.
//
//	go run ./examples/confidential
package main

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log"

	snpu "repro"
	"repro/internal/npu"
	"repro/internal/spad"
)

func main() {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// ---- (1) + (2): attest before trusting the device ----
	key := make([]byte, snpu.SealKeySize)
	if _, err := rand.Read(key); err != nil {
		log.Fatal(err)
	}
	// The owner provisions the key only to pre-stage the submission in
	// this sample; verification below is what gates real deployments.
	if err := sys.ProvisionKey("owner", key); err != nil {
		log.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("distilled production weights"))
	if err != nil {
		log.Fatal(err)
	}
	task, err := sys.SubmitSecure("mobilenet", "owner", sealed)
	if err != nil {
		log.Fatal(err)
	}
	var nonceBytes [8]byte
	if _, err := rand.Read(nonceBytes[:]); err != nil {
		log.Fatal(err)
	}
	nonce := binary.LittleEndian.Uint64(nonceBytes[:])
	report, err := sys.Attest(task, nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attestation: boot=%v task=%v nonce=%#x\n", report.BootDigest, report.TaskDigest, nonce)
	if err := sys.VerifyAttestation(report, report.TaskDigest, nonce); err != nil {
		log.Fatal("report rejected:", err)
	}
	fmt.Println("attestation verified: device runs the expected boot chain and task")

	// ---- (3): run the verified secure task ----
	res, err := sys.RunSecure(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecure %s: %d cycles (%.2f ms), util %.1f%%\n",
		res.Model, res.Cycles, float64(res.Cycles)/1e6, res.Utilization*100)

	// ---- (4): real data through the isolated scratchpad ----
	core, err := sys.NPU().Core(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.SetDomain(sys.Machine().SecureContext(), spad.SecureDomain); err != nil {
		log.Fatal(err)
	}
	// The monitor programs a Guarder window for the operand buffers.
	if err := sys.MapWindow(1, 1, 0x8000_0000, 0, 1<<20); err != nil {
		log.Fatal(err)
	}
	a := npu.NewMatrix(8, 8)
	b := npu.NewMatrix(8, 8)
	for i := range a.Data {
		a.Data[i] = int8(i % 7)
		b.Data[i] = int8(i % 5)
	}
	got, err := core.FunctionalGEMM(a, b, 0x8000_0000, 0x8000_4000)
	if err != nil {
		log.Fatal(err)
	}
	want, err := npu.MatMulRef(a, b)
	if err != nil {
		log.Fatal(err)
	}
	match := true
	for i := range want {
		if got[i] != want[i] {
			match = false
		}
	}
	fmt.Printf("functional GEMM on secure core: result matches reference = %v\n", match)

	// The attacker (non-secure domain) probes the operand lines the
	// secure compute just used.
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, 0, buf); err != nil {
		fmt.Printf("attacker probe of the secure operands: DENIED (%v)\n", err)
	} else {
		fmt.Println("attacker probe SUCCEEDED — isolation broken!")
	}
}
