// Multitask: the paper's core use case — a secure and a non-secure
// model sharing one NPU. Compares the TrustZone-NPU strawman (flush
// the scratchpad on every op-kernel switch) against sNPU's ID-based
// isolation (share at the same granularity, flush nothing).
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	snpu "repro"
)

func main() {
	secureModel, publicModel := "alexnet", "yololite"
	fmt.Printf("time-sharing one core: secure %s + public %s\n\n", secureModel, publicModel)

	type row struct {
		name  string
		gran  snpu.FlushGranularity
		flush bool
	}
	rows := []row{
		{"snpu ID-isolation (tile switches, no flush)", snpu.FlushPerTile, false},
		{"flush per tile   (TrustZone-NPU strawman)", snpu.FlushPerTile, true},
		{"flush per layer", snpu.FlushPerLayer, true},
		{"flush per 5 layers", snpu.FlushPer5Layers, true},
	}

	var baseline int64
	for _, r := range rows {
		// Fresh system per run: the simulation clock is system state.
		sys, err := snpu.New(snpu.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.TimeShare(secureModel, publicModel, r.gran, r.flush)
		if err != nil {
			log.Fatal(err)
		}
		makespan := int64(res.Makespan())
		if baseline == 0 {
			baseline = makespan
		}
		fmt.Printf("%-46s %12d cycles  %5.1f%% overhead  (%d switches, %d flush cycles)\n",
			r.name, makespan, 100*float64(makespan-baseline)/float64(baseline),
			res.Switches, res.FlushCycles)
	}

	fmt.Println("\nsNPU shares the scratchpad at op-kernel granularity with no")
	fmt.Println("flushing: the per-line ID state makes stale data unreadable, so")
	fmt.Println("fine-grained preemption (good SLA) costs nothing.")
}
