// Attacks: runs the paper's threat-model attacks against both the
// unprotected baseline NPU (where each one succeeds — the
// vulnerabilities are real) and the sNPU mechanisms (where each is
// denied by hardware).
//
// The exit status is the verdict: 0 when every attack leaks on the
// baseline and is blocked by sNPU, non-zero when any outcome deviates
// — so the example doubles as a security smoke test in CI.
//
//	go run ./examples/attacks
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
)

func main() {
	type scenario struct {
		name string
		what string
		run  func(protected bool) (attack.Outcome, error)
	}
	scenarios := []scenario{
		{
			name: "LeftoverLocals",
			what: "non-secure task reads stale scratchpad lines left by a secure task",
			run:  attack.LeftoverLocals,
		},
		{
			name: "shared-spad steal",
			what: "non-secure core reads a secure line in the shared accumulator",
			run:  attack.SharedSpadSteal,
		},
		{
			name: "NoC hijack",
			what: "mis-scheduled attacker core squats where the victim's consumer should be",
			run:  attack.NoCHijack,
		},
		{
			name: "NoC inject",
			what: "attacker pushes forged activation packets into a secure core",
			run:  attack.NoCInject,
		},
		{
			name: "DMA exfiltration",
			what: "NPU task DMAs data out of CPU-side secure memory",
			run:  attack.DMAExfiltrate,
		},
		{
			name: "route mis-schedule",
			what: "scheduler supplies a 1x4 row for a task expecting a 2x2 block",
			run:  attack.RouteIntegrity,
		},
	}

	deviations := 0
	deviate := func(name, what string) {
		deviations++
		fmt.Printf("  !! DEVIATION: %s — %s\n", name, what)
	}

	fmt.Println("attack                baseline NPU          sNPU")
	fmt.Println("--------------------  --------------------  --------------------")
	for _, s := range scenarios {
		base, err := s.run(false)
		if err != nil {
			log.Fatalf("%s (baseline): %v", s.name, err)
		}
		prot, err := s.run(true)
		if err != nil {
			log.Fatalf("%s (sNPU): %v", s.name, err)
		}
		fmt.Printf("%-20s  %-20s  %-20s\n", s.name, verdict(base), verdict(prot))
		if !base.Leaked {
			deviate(s.name, "baseline did not leak (vulnerability no longer demonstrated)")
		}
		if !prot.Blocked || prot.Leaked {
			deviate(s.name, "sNPU did not block the attack")
		}
		fmt.Printf("  -> %s\n", s.what)
		if base.Leaked {
			fmt.Printf("  -> baseline leaked %d bytes: %q\n", len(base.Got), base.Got)
		}
		if prot.Blocked {
			fmt.Printf("  -> sNPU denial: %v\n", prot.Err)
		}
		fmt.Println()
	}

	// CPU-side tampering has no "baseline" variant: the whole point of
	// the secure-instruction gate is that this state exists at all.
	out, err := attack.DriverTamper()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s  %-20s  %-20s\n", "driver tamper", "n/a (state absent)", verdict(out))
	fmt.Println("  -> untrusted driver programs Guarder registers / core ID state directly")
	fmt.Printf("  -> sNPU denial: %v\n", out.Err)
	if !out.Blocked || out.Leaked {
		deviate("driver tamper", "sNPU did not block the tamper")
	}

	if deviations > 0 {
		fmt.Fprintf(os.Stderr, "\n%d outcome(s) deviated from the expected leak/block pattern\n", deviations)
		os.Exit(1)
	}
}

func verdict(o attack.Outcome) string {
	switch {
	case o.Leaked:
		return "SECRET LEAKED"
	case o.Blocked:
		return "blocked by hardware"
	default:
		return "no effect"
	}
}
