// Quickstart: boot a protected sNPU system, run a confidential model
// through the NPU Monitor, then a public model through the untrusted
// driver path, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	snpu "repro"
)

func main() {
	// Boot the full SoC: secure boot chain, two-world memory, ten NPU
	// cores with per-core Guarders, NoC mesh, driver, and monitor.
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sNPU system booted: secure boot verified, monitor loaded")
	fmt.Println("available workloads:", snpu.Workloads())

	// --- Confidential inference ------------------------------------
	// The model owner seals their weights under a key they provision
	// to the monitor over the attested channel. The untrusted driver
	// only ever sees ciphertext.
	key := make([]byte, snpu.SealKeySize)
	if _, err := rand.Read(key); err != nil {
		log.Fatal(err)
	}
	if err := sys.ProvisionKey("model-owner", key); err != nil {
		log.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("proprietary resnet weights"))
	if err != nil {
		log.Fatal(err)
	}
	task, err := sys.SubmitSecure("resnet", "model-owner", sealed)
	if err != nil {
		log.Fatal(err)
	}
	secureRes, err := sys.RunSecure(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecure %-10s %12d cycles  (%5.2f ms @ 1 GHz)  util %4.1f%%\n",
		secureRes.Model, secureRes.Cycles, float64(secureRes.Cycles)/1e6, secureRes.Utilization*100)

	// --- Non-secure inference ---------------------------------------
	// Ordinary tasks go through the untrusted driver; the Guarder's
	// checking registers still confine their DMA to NPU-reserved
	// memory, at zero runtime cost.
	publicRes, err := sys.RunModel("mobilenet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public %-10s %12d cycles  (%5.2f ms @ 1 GHz)  util %4.1f%%\n",
		publicRes.Model, publicRes.Cycles, float64(publicRes.Cycles)/1e6, publicRes.Utilization*100)

	fmt.Printf("\nguarder checks: %d, denied: %d (legitimate traffic is never blocked)\n",
		sys.Stats().Get("guarder.checks"), sys.Stats().Get("guarder.denied"))
}
