package snpu

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The observability layer's system-level contract: attaching it is
// passive (golden cycle counts hold, spans on or off), its export
// covers every instrumented component, and the Monitor's recovery
// ladder shows up as trace epochs.

func TestObservabilityIsPassive(t *testing.T) {
	for _, spans := range []bool{false, true} {
		sys, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		o := sys.EnableObservability(obs.Config{Spans: spans})
		if sys.Observer() != o {
			t.Fatal("Observer() does not return the enabled observer")
		}
		res, err := sys.RunModel("yololite")
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != goldenYololiteCycles {
			t.Fatalf("spans=%v: observability moved the golden run: %d cycles, want %d",
				spans, res.Cycles, goldenYololiteCycles)
		}
		rec := o.Trace()
		if spans && rec.Len() == 0 {
			t.Fatal("Spans: true recorded nothing")
		}
		if !spans && rec != nil {
			t.Fatal("default config must not carry a span recorder")
		}
		if spans {
			if tot := rec.Totals(); tot[trace.KindDMA] == 0 {
				t.Fatalf("no DMA span time on the timeline: %v", tot)
			}
		}
	}
}

func TestMetricsExportCoversComponents(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableObservability(obs.Config{})
	if _, err := sys.RunModel("yololite"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sys.Observer().Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The acceptance floor: metrics from at least five components. The
	// canonical sim.Stats namespace plus the registered instruments
	// must all appear, zeros included.
	for _, prefix := range []string{
		"noc_", // mesh counters + noc_link_stall_cycles histogram
		"dma_", // engine counters + dma_xfer_cycles histogram
		"npu_", // npu_tile_cycles histogram
		"iommu_",
		"iotlb_", // iotlb hit/miss counters
		"monitor_",
		"guarder_",
		"spad_",
		"profiler_sample_count",
	} {
		if !strings.Contains(out, "TYPE "+prefix) {
			t.Fatalf("export missing component prefix %q:\n%s", prefix, out)
		}
	}
	// A busy run must show non-zero work counters.
	snap := sys.Observer().Registry().Snapshot()
	for _, name := range []string{"dma.requests", "dma.bytes", "npu.macs", "guarder.checks", "profiler.sample.count"} {
		if snap[name] == 0 {
			t.Fatalf("counter %s = 0 after a full inference", name)
		}
	}
}

func TestResilientRunRecordsEpochsAndMonitorSpans(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := sys.EnableObservability(obs.Config{Spans: true})
	key := ChaosKey(3)
	if err := sys.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 900_000, Kind: fault.CoreHang},
	}})
	rep, err := sys.RunSecureResilient(h, DefaultMaxRestarts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts == 0 {
		t.Fatal("plan fired no restart; the epoch assertion below would be vacuous")
	}
	eps := o.Trace().Epochs()
	if len(eps) != 1+rep.Restarts {
		t.Fatalf("epochs = %d, want pre + %d restarts (%+v)", len(eps), rep.Restarts, eps)
	}
	if eps[0].Name != "pre" || eps[1].Name != "restart-1" {
		t.Fatalf("epoch names = %+v", eps)
	}
	names := map[string]int{}
	for _, e := range o.Trace().Events() {
		names[e.Name]++
	}
	for _, want := range []string{"monitor.abort", "monitor.restore", "fault.core-hang"} {
		if names[want] == 0 {
			t.Fatalf("timeline missing %q spans (have %v)", want, names)
		}
	}
}
