package snpu

// Whole-system integration tests: scenarios that cross several
// subsystems (driver + monitor + guarder + scratchpad + NoC) on one
// booted SoC, the way a deployment would exercise them.

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/npu"
	"repro/internal/spad"
	"repro/internal/workload"
)

// A full day in the life of one SoC: secure boot, several non-secure
// inferences, a secure task loaded/run/unloaded in between, time
// sharing, and a model-parallel run — all on the same system instance.
func TestSystemLifecycle(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Several non-secure runs back to back.
	for _, m := range []string{"yololite", "mobilenet"} {
		if _, err := sys.RunModel(m); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}

	// Secure task in the middle.
	key := bytes.Repeat([]byte{9}, SealKeySize)
	if err := sys.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "k", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunSecure(h); err != nil {
		t.Fatal(err)
	}

	// Time sharing still works afterwards.
	if _, err := sys.TimeShare("yololite", "yololite", FlushPerLayer, true); err != nil {
		t.Fatal(err)
	}

	// Model-parallel over a 2x2 block.
	res, err := sys.RunModelParallel("yololite", []int{0, 1, 5, 6}, TransferNoC)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no cycles")
	}

	// Nothing leaked a secure domain: every core is back to normal.
	for _, c := range sys.NPU().Cores() {
		if c.Domain() != spad.NonSecure {
			t.Fatalf("core %d left secure", c.ID())
		}
	}
}

// The secure task's scratchpad residue must be unreadable between its
// unload and any later non-secure task on the same core — the
// LeftoverLocals lifecycle, end to end through the monitor.
func TestSecureResidueScrubbedAcrossTasks(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, _ := sys.NPU().Core(0)
	// Simulate the secure task having left data: flip the core secure
	// through the monitor path and write.
	key := bytes.Repeat([]byte{1}, SealKeySize)
	if err := sys.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "k", sealed)
	if err != nil {
		t.Fatal(err)
	}
	// Load (core goes secure), plant a secret, then unload (scrub).
	spadLines := sys.NPU().Config().SpadLines()
	rep := sys.Monitor().Dispatch(monitor.Call{
		Func: monitor.FnLoad,
		Args: []uint64{uint64(h.ID), 0, uint64(spadLines), 0},
	})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	secret := []byte("session-secret!!")
	if err := core.Scratchpad().Write(spad.SecureDomain, 10, secret); err != nil {
		t.Fatal(err)
	}
	if rep := sys.Monitor().Dispatch(monitor.Call{Func: monitor.FnUnload, Args: []uint64{uint64(h.ID)}}); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	// The next (non-secure) task reads the line freely — and finds
	// zeros, because the monitor scrubbed on unload.
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, 10, buf); err != nil {
		t.Fatalf("post-unload read denied: %v", err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("secure residue survived unload")
		}
	}
}

// Reserved-memory accounting survives a churn of submissions and
// releases (allocator + driver integration).
func TestDriverChurnNoLeak(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("yololite")
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Driver().Reserved().UsedBytes()
	for i := 0; i < 10; i++ {
		task, err := sys.Driver().Submit(w, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Driver().Release(task); err != nil {
			t.Fatal(err)
		}
	}
	if after := sys.Driver().Reserved().UsedBytes(); after != before {
		t.Fatalf("reserved memory leaked: %d -> %d", before, after)
	}
}

// Determinism: two identical systems produce bit-identical cycle
// counts and counters for the same run.
func TestDeterminism(t *testing.T) {
	run := func() (InferenceResult, map[string]int64) {
		sys, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunModel("mobilenet")
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Stats().Snapshot()
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1.Cycles != r2.Cycles {
		t.Fatalf("cycles diverge: %d vs %d", r1.Cycles, r2.Cycles)
	}
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("counter %s diverges: %d vs %d", k, v, s2[k])
		}
	}
}

// The Guarder denies a driver-forged VA outside every installed
// window, end to end through the DMA engine on a live system.
func TestForgedVADeniedEndToEnd(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, _ := sys.NPU().Core(0)
	prog := &npu.Program{
		Name:   "forged",
		Layers: 1,
		Ops: []npu.Op{
			{Kind: npu.OpLoad, VA: mem.VirtAddr(0xdead_0000), Bytes: 64, Layer: 0},
			{Kind: npu.OpCompute, Cycles: 10, Layer: 0, Tile: true},
		},
	}
	ex := npu.NewExec(core, prog, 99)
	if _, err := ex.Run(0); err == nil {
		t.Fatal("forged VA executed")
	}
}

// MapWindow refuses windows reaching outside reserved memory.
func TestMapWindowBounds(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.MapWindow(0, 1, 0x1000, 1<<62, 4096); err == nil {
		t.Fatal("out-of-reserved window accepted")
	}
	if err := sys.MapWindow(0, 1, 0x1000, 0, 4096); err != nil {
		t.Fatalf("legal window rejected: %v", err)
	}
	// Baseline: nothing to program, must not error.
	base, err := New(BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.MapWindow(0, 1, 0x1000, 0, 4096); err != nil {
		t.Fatal(err)
	}
}
