package snpu

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Golden cycle counts for the seed workloads. These pin down the
// zero-fault determinism invariant across sessions: arming the fault
// subsystem with an empty plan must not move a single cycle.
const (
	goldenYololiteCycles sim.Cycle = 4011901
	goldenYololiteMACs             = 283356416
)

func TestZeroFaultDeterminism(t *testing.T) {
	plain, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plain.RunModel("yololite")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != goldenYololiteCycles || res.MACs != goldenYololiteMACs {
		t.Fatalf("golden drift: cycles=%d macs=%d, want %d/%d",
			res.Cycles, res.MACs, goldenYololiteCycles, goldenYololiteMACs)
	}

	armed, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	armed.InstallFaultPlan(fault.Plan{})
	res2, err := armed.RunModel("yololite")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles || res2.MACs != res.MACs {
		t.Fatalf("empty plan changed the run: %d/%d vs %d/%d",
			res2.Cycles, res2.MACs, res.Cycles, res.MACs)
	}
	if got := armed.Stats().Get(sim.CtrFaultsInjected); got != 0 {
		t.Fatalf("empty plan injected %d faults", got)
	}
	if dp, da := plain.Stats().Get(sim.CtrDMARequests), armed.Stats().Get(sim.CtrDMARequests); dp != da {
		t.Fatalf("empty plan changed DMA request count: %d vs %d", dp, da)
	}
}

func TestZeroFaultDeterminismSecure(t *testing.T) {
	run := func(install bool) sim.Cycle {
		sys, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		key := ChaosKey(1)
		if err := sys.ProvisionKey("owner", key); err != nil {
			t.Fatal(err)
		}
		sealed, err := SealModel(key, []byte("weights"))
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.SubmitSecure("yololite", "owner", sealed)
		if err != nil {
			t.Fatal(err)
		}
		if install {
			sys.InstallFaultPlan(fault.Plan{})
		}
		res, err := sys.RunSecure(h)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	plain, armed := run(false), run(true)
	if plain != goldenYololiteCycles {
		t.Fatalf("secure golden drift: %d, want %d", plain, goldenYololiteCycles)
	}
	if plain != armed {
		t.Fatalf("empty plan changed the secure run: %d vs %d", plain, armed)
	}
}

func resilientRun(t *testing.T, plan fault.Plan) (SecureRunReport, error) {
	t.Helper()
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := ChaosKey(3)
	if err := sys.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(plan)
	return sys.RunSecureResilient(h, DefaultMaxRestarts)
}

// The resilient runner replays byte-identically and reports no
// recovery work with nothing scheduled.
func TestResilientRunDeterministicWithEmptyPlan(t *testing.T) {
	a, errA := resilientRun(t, fault.Plan{})
	b, errB := resilientRun(t, fault.Plan{})
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if a.Cycles != b.Cycles || a.Faults != 0 || a.Restarts != 0 || a.Remaps != 0 {
		t.Fatalf("reports differ or show phantom recovery: %+v vs %+v", a, b)
	}
}

// A survivable plan recovers: faults fire, the result still lands.
func TestResilientRunRecoversFromFaults(t *testing.T) {
	plan := fault.Plan{Events: []fault.Event{
		{At: 1000, Kind: fault.DMAStall},
		{At: 200_000, Kind: fault.DRAMBitFlip, Sel: 5, Bit: 30},
		{At: 900_000, Kind: fault.CoreHang},
	}}
	rep, err := resilientRun(t, plan)
	if err != nil {
		t.Fatalf("survivable plan aborted: %v", err)
	}
	if rep.Faults == 0 {
		t.Fatal("no fault fired")
	}
	if rep.Cycles <= goldenYololiteCycles {
		t.Fatalf("recovery was free: %d cycles", rep.Cycles)
	}
	// Same plan, same report — the recovery path itself is deterministic.
	rep2, err := resilientRun(t, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep {
		t.Fatalf("recovery not deterministic: %+v vs %+v", rep2, rep)
	}
}

// A hang storm exhausts the crash-loop budget; the driver sees only
// the opaque abort error.
func TestResilientRunAbandonsUnderHangStorm(t *testing.T) {
	var events []fault.Event
	for i := 0; i < 40; i++ {
		events = append(events, fault.Event{At: 0, Kind: fault.CoreHang})
	}
	rep, err := resilientRun(t, fault.Plan{Events: events})
	if !errors.Is(err, ErrTaskAborted) {
		t.Fatalf("err = %v, want ErrTaskAborted", err)
	}
	if !rep.Aborted {
		t.Fatal("report not marked aborted")
	}
	if err.Error() != "snpu: secure task aborted" {
		t.Fatalf("abort error leaks detail: %q", err.Error())
	}
}

// bootResilient boots a protected system with one sealed yololite
// handle, leaving plan installation to the caller.
func bootResilientSys(t *testing.T) (*System, *SecureTaskHandle) {
	t.Helper()
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := ChaosKey(3)
	if err := sys.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, h
}

// The crash-loop budget is exact: with every attempt wedged before any
// checkpoint progress, a budget of N abandons after exactly N restarts
// — not N-1, not N+1 — and the unrecovered-fault counter ticks once.
func TestResilientRunAbortsExactlyAtBudget(t *testing.T) {
	for _, budget := range []int{1, 2, 3} {
		sys, h := bootResilientSys(t)
		var events []fault.Event
		for i := 0; i < 4*(budget+1); i++ {
			events = append(events, fault.Event{At: 0, Kind: fault.CoreHang})
		}
		sys.InstallFaultPlan(fault.Plan{Events: events})
		rep, err := sys.RunSecureResilient(h, budget)
		if !errors.Is(err, ErrTaskAborted) {
			t.Fatalf("budget %d: err = %v, want ErrTaskAborted", budget, err)
		}
		if rep.Restarts != budget {
			t.Fatalf("budget %d: restarts = %d, want exactly the budget", budget, rep.Restarts)
		}
		if got := sys.Stats().Get(sim.CtrTaskRestarts); got != int64(budget) {
			t.Fatalf("budget %d: restart counter = %d", budget, got)
		}
		if got := sys.Stats().Get(sim.CtrUnrecoveredFaults); got != 1 {
			t.Fatalf("budget %d: unrecovered counter = %d, want 1", budget, got)
		}
	}
}

// A fault on the very first tile — before the first layer boundary,
// so no checkpoint exists — restarts from scratch and still completes
// once the fault clears, with the restart visible in the report and
// the recovered-fault counter.
func TestResilientRunFaultBeforeFirstCheckpoint(t *testing.T) {
	sys, h := bootResilientSys(t)
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.CoreHang},
	}})
	rep, err := sys.RunSecureResilient(h, DefaultMaxRestarts)
	if err != nil {
		t.Fatalf("pre-checkpoint fault not survivable: %v", err)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.Restarts)
	}
	if rep.Cycles <= goldenYololiteCycles {
		t.Fatalf("restart-from-scratch was free: %d cycles", rep.Cycles)
	}
	if got := sys.Stats().Get(sim.CtrTaskRestarts); got != 1 {
		t.Fatalf("restart counter = %d, want 1", got)
	}
	if got := sys.Stats().Get(sim.CtrRecoveredFaults); got != 1 {
		t.Fatalf("recovered counter = %d, want 1", got)
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is a multi-inference run")
	}
	a, err := Chaos("yololite", 11, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos("yololite", 11, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.TableString() != b.TableString() {
		t.Fatalf("same seed, different tables:\n%s\nvs\n%s", a.TableString(), b.TableString())
	}
}
