package snpu

// The chaos experiment: sweep seeded fault rates against a secure
// inference and report what the detection/recovery stack did about
// them. This extends beyond the paper (sNPU evaluates security and
// performance, not reliability); it exists to demonstrate the
// fault-safety invariant — faults degrade performance, never
// isolation — and to quantify the recovery cost.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sim"
)

// DefaultChaosRates is the fault-rate sweep (events per million
// cycles). Rate 0 is the control row: it must match an uninstrumented
// run cycle-for-cycle.
var DefaultChaosRates = []float64{0, 1, 5, 20}

// ChaosRow is one rate point of the sweep.
type ChaosRow struct {
	RatePerM     float64
	Scheduled    int   // events in the generated plan
	Injected     int64 // events that actually fired
	ECCCorrected int64
	NoCRetries   int64
	DMARetries   int64
	ParityErrors int64 // scratchpad + IOTLB parity detections
	CoreHangs    int64
	Restarts     int
	Remaps       int
	Aborted      bool
	Cycles       sim.Cycle
	OverheadPct  float64 // vs the rate-0 control row
}

// ChaosResult is the full sweep for one model and seed.
type ChaosResult struct {
	Model string
	Seed  int64
	Rows  []ChaosRow
}

// TableString renders the sweep as a text table.
func (r *ChaosResult) TableString() string {
	header := []string{"rate/Mcyc", "sched", "fired", "ecc-corr", "noc-rty", "dma-rty", "parity", "hangs", "restarts", "remaps", "outcome", "cycles", "overhead"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		outcome := "recovered"
		if row.Aborted {
			outcome = "aborted"
		} else if row.Injected == 0 {
			outcome = "clean"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", row.RatePerM),
			fmt.Sprintf("%d", row.Scheduled),
			fmt.Sprintf("%d", row.Injected),
			fmt.Sprintf("%d", row.ECCCorrected),
			fmt.Sprintf("%d", row.NoCRetries),
			fmt.Sprintf("%d", row.DMARetries),
			fmt.Sprintf("%d", row.ParityErrors),
			fmt.Sprintf("%d", row.CoreHangs),
			fmt.Sprintf("%d", row.Restarts),
			fmt.Sprintf("%d", row.Remaps),
			outcome,
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%+.2f%%", row.OverheadPct),
		})
	}
	return experiments.Table(header, rows)
}

// ChaosKey derives the sealing key for seeded (reproducible) secure
// runs: the CLIs and the chaos sweep must not read crypto/rand.
func ChaosKey(seed int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	k := sha256.Sum256(b[:])
	return k[:]
}

// Chaos runs the fault-rate sweep for one model. Each rate gets a plan
// generated from a seed derived deterministically from (seed, rate
// index) over the control run's horizon, a freshly booted SoC, and a
// resilient secure run. The same seed always yields a byte-identical
// table.
func Chaos(model string, seed int64, ratesPerM []float64) (*ChaosResult, error) {
	if len(ratesPerM) == 0 {
		ratesPerM = DefaultChaosRates
	}
	res := &ChaosResult{Model: model, Seed: seed}

	// Control run: empty plan, establishes the horizon and the
	// overhead baseline.
	control, _, err := chaosRun(model, seed, fault.Plan{})
	if err != nil {
		return nil, err
	}
	horizon := control.Cycles

	for i, rate := range ratesPerM {
		row := ChaosRow{RatePerM: rate}
		if rate == 0 {
			row.Cycles = control.Cycles
			row.fill(control, nil)
			res.Rows = append(res.Rows, row)
			continue
		}
		planSeed := seed + int64(i+1)*7919 // distinct stream per rate point
		plan := fault.Generate(planSeed, horizon, fault.UniformRates(rate))
		row.Scheduled = len(plan.Events)
		rep, snap, err := chaosRun(model, seed, plan)
		if err != nil && !errors.Is(err, ErrTaskAborted) {
			return nil, err
		}
		row.Cycles = rep.Cycles
		if rep.Aborted {
			row.Aborted = true
		}
		row.fill(rep, snap)
		if !row.Aborted && control.Cycles > 0 {
			row.OverheadPct = 100 * (float64(row.Cycles) - float64(control.Cycles)) / float64(control.Cycles)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fill fills the detection/recovery columns from a run report and a
// counter snapshot.
func (row *ChaosRow) fill(rep SecureRunReport, snap map[string]int64) {
	row.Injected = rep.Faults
	row.Restarts = rep.Restarts
	row.Remaps = rep.Remaps
	if snap != nil {
		row.ECCCorrected = snap[sim.CtrECCCorrected]
		row.NoCRetries = snap[sim.CtrNoCRetries]
		row.DMARetries = snap[sim.CtrDMARetries]
		row.ParityErrors = snap[sim.CtrSpadParityErrors] + snap[sim.CtrIOTLBParityErrors]
		row.CoreHangs = snap[sim.CtrCoreHangs]
	}
}

// chaosRun boots a fresh protected SoC, arms it with the plan, and
// runs one resilient secure inference.
func chaosRun(model string, seed int64, plan fault.Plan) (SecureRunReport, map[string]int64, error) {
	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		return SecureRunReport{}, nil, err
	}
	defer sys.release()
	key := ChaosKey(seed)
	if err := sys.ProvisionKey("chaos-owner", key); err != nil {
		return SecureRunReport{}, nil, err
	}
	sealed, err := SealModel(key, []byte("chaos model "+model))
	if err != nil {
		return SecureRunReport{}, nil, err
	}
	h, err := sys.SubmitSecure(model, "chaos-owner", sealed)
	if err != nil {
		return SecureRunReport{}, nil, err
	}
	sys.InstallFaultPlan(plan)
	rep, err := sys.RunSecureResilient(h, DefaultMaxRestarts)
	return rep, sys.Stats().Snapshot(), err
}
