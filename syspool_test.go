package snpu

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mem"
)

// This file pins the root-level half of the pooling contract: a
// recycled System (full protected SoC — boot chain, NPU, guarders,
// driver, monitor) behaves byte-identically to a fresh boot across
// reuse epochs, and a recycle leaves no prior tenant's key material or
// memory bytes observable.

// renderSystemScenario exercises the three pooled call sites' worth of
// machinery on one System lifetime each: a serve load point (scheduler
// decision outcomes: completions, preemptions, batching, fairness), a
// plain inference, and a sealed secure inference. Everything observable
// is rendered into one byte string.
func renderSystemScenario(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer

	res, err := ServeBench(3, ServeBenchConfig{Requests: 12, LoadsPerM: []float64{0.2}})
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(res.TableString())

	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.release()
	r, err := sys.RunModel("yololite")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "plain %s %d %.6f\n", r.Model, r.Cycles, r.Utilization)

	key := bytes.Repeat([]byte{7}, 32)
	if err := sys.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "k", sealed)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sys.RunSecure(h)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "secure %s %d %.6f\n", sr.Model, sr.Cycles, sr.Utilization)
	return buf.Bytes()
}

// TestSystemPoolDifferential: the scenario must render byte-identically
// with pooling off (fresh boots everywhere) and across two pooled
// epochs, the second of which runs entirely on recycled Systems.
func TestSystemPoolDifferential(t *testing.T) {
	experiments.SetPooling(false)
	fresh := renderSystemScenario(t)

	experiments.SetPooling(true)
	defer experiments.SetPooling(true)
	hits0, _ := SystemPoolCounters()
	epoch1 := renderSystemScenario(t)
	epoch2 := renderSystemScenario(t)
	hits1, _ := SystemPoolCounters()

	if !bytes.Equal(fresh, epoch1) {
		t.Errorf("epoch 1 (pooled) differs from fresh boots:\nfresh:\n%s\npooled:\n%s", fresh, epoch1)
	}
	if !bytes.Equal(fresh, epoch2) {
		t.Errorf("epoch 2 (recycled) differs from fresh boots:\nfresh:\n%s\npooled:\n%s", fresh, epoch2)
	}
	if hits1 == hits0 {
		t.Error("system pool recorded no hits across two epochs")
	}
}

// TestSystemPoolNoSecretLeak: plant tenant bytes in reserved and secure
// DRAM plus a sealing key in the monitor, release, and verify the
// recycled System exposes none of it.
func TestSystemPoolNoSecretLeak(t *testing.T) {
	experiments.SetPooling(false) // drop instances pooled by other tests
	experiments.SetPooling(true)
	defer experiments.SetPooling(true)

	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{9}, 32)
	if err := sys.ProvisionKey("leak-key", key); err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0xA5}, 4096)
	sys.phys.Write(experiments.ReservedBase, secret)
	sys.phys.Write(experiments.SecureBase, secret)

	sys.release()
	got, err := acquireSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer got.release()
	if got != sys {
		t.Fatal("pool did not hand back the released System; leak check would be vacuous")
	}

	buf := make([]byte, len(secret))
	for _, region := range []struct {
		name string
		at   mem.PhysAddr
	}{
		{"npu-reserved", experiments.ReservedBase},
		{"secure", experiments.SecureBase},
	} {
		got.phys.Read(region.at, buf)
		if i := bytes.IndexByte(buf, 0xA5); i >= 0 {
			t.Errorf("prior tenant's byte observable in %s region at offset %d", region.name, i)
		}
	}

	for k, v := range got.Stats().Snapshot() {
		// Counter handles survive Reset (warm handles); values must not.
		if v != 0 {
			t.Errorf("recycled System carries prior stats: %s=%d", k, v)
		}
	}

	// The prior tenant's sealing key must be gone: a submit against it
	// has to fail, exactly as on a fresh boot.
	sealed, err := SealModel(key, []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.SubmitSecure("yololite", "leak-key", sealed); err == nil {
		t.Error("recycled System still accepts the prior tenant's key ID")
	}
}
