package snpu

import (
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestDecodeBenchDeterministicAndBatched pins the decode sweep's two
// contracts at once: the same seed renders a byte-identical table on
// fresh boots and on pooled (recycled) Systems, and widening MaxBatch
// actually engages continuous batching — joins appear and the
// preemption-induced inter-token tail collapses.
func TestDecodeBenchDeterministicAndBatched(t *testing.T) {
	experiments.SetPooling(false)
	res, err := DecodeBench(1, DecodeBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := res.TableString()

	experiments.SetPooling(true)
	defer experiments.SetPooling(true)
	res2, err := DecodeBench(1, DecodeBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pooled := res2.TableString(); pooled != fresh {
		t.Fatalf("decode sweep differs between fresh and pooled Systems:\n--- fresh ---\n%s--- pooled ---\n%s", fresh, pooled)
	}

	if len(res.Rows) != 3 {
		t.Fatalf("default sweep has %d rows, want 3", len(res.Rows))
	}
	solo, wide := res.Rows[0], res.Rows[len(res.Rows)-1]
	if solo.MaxBatch != 1 || wide.MaxBatch != 4 {
		t.Fatalf("unexpected batch points: %d..%d", solo.MaxBatch, wide.MaxBatch)
	}
	// Every point decodes the full trace to completion.
	for _, row := range res.Rows {
		if row.Completed != row.Requests {
			t.Fatalf("batch %d: %d/%d completed", row.MaxBatch, row.Completed, row.Requests)
		}
		if row.Tokens != solo.Tokens {
			t.Fatalf("batch %d retired %d tokens, batch 1 retired %d — token count must not depend on batching",
				row.MaxBatch, row.Tokens, solo.Tokens)
		}
		if row.TokensPerSec <= 0 || row.P99ITL <= 0 {
			t.Fatalf("batch %d: degenerate metrics %+v", row.MaxBatch, row)
		}
	}
	if solo.Joins != 0 {
		t.Fatalf("batch 1 recorded %d joins; continuous batching must be off at width 1", solo.Joins)
	}
	if wide.Joins == 0 || wide.BatchedRuns == 0 {
		t.Fatalf("batch 4 never batched: %+v", wide)
	}
	// The solo sweep's tail contains a full preemption (the plain secure
	// request runs in the middle of a token stream); batching absorbs it.
	if wide.P99ITL >= solo.P99ITL {
		t.Fatalf("batching did not cut the inter-token tail: batch1 p99=%d, batch4 p99=%d",
			solo.P99ITL, wide.P99ITL)
	}
}

func TestInterTokenPercentiles(t *testing.T) {
	if p50, p99 := interTokenPercentiles(nil); p50 != 0 || p99 != 0 {
		t.Fatalf("empty input: %d/%d", p50, p99)
	}
	// One request with uniform 10-cycle gaps, one with a single huge gap:
	// the pooled p99 must surface the outlier, the p50 the common case.
	times := map[int][]sim.Cycle{
		1: {100, 110, 120, 130, 140, 150, 160, 170, 180, 190},
		2: {200, 1_000_200},
	}
	p50, p99 := interTokenPercentiles(times)
	if p50 != 10 {
		t.Fatalf("p50 = %d, want 10", p50)
	}
	if p99 != 1_000_000 {
		t.Fatalf("p99 = %d, want the outlier gap 1000000", p99)
	}
	// A single-token request contributes no gaps.
	if p50, p99 := interTokenPercentiles(map[int][]sim.Cycle{1: {42}}); p50 != 0 || p99 != 0 {
		t.Fatalf("single token produced gaps: %d/%d", p50, p99)
	}
}

// TestDecodeTraceShape pins the generator: decode requests round-robin
// the tenants with per-tenant specs, and the trailing plain request is
// the designated preemptor.
func TestDecodeTraceShape(t *testing.T) {
	trace := DecodeTrace(1, 10, 2)
	if len(trace) != 11 {
		t.Fatalf("trace has %d requests, want 11", len(trace))
	}
	for _, r := range trace[:10] {
		if r.Decode == nil || !r.Secure {
			t.Fatalf("req %d is not a secure decode request: %+v", r.ID, r)
		}
		want := decodeSpecFor(int(r.Tenant[1] - '0'))
		if *r.Decode != want {
			t.Fatalf("req %d (tenant %s) spec %+v does not match tenant spec %+v", r.ID, r.Tenant, *r.Decode, want)
		}
	}
	last := trace[10]
	if last.Decode != nil || last.Model != "mobilenet" || last.Priority <= 0 {
		t.Fatalf("trailing request is not the plain preemptor: %+v", last)
	}
	// Determinism of the generator itself.
	again := DecodeTrace(1, 10, 2)
	if !reflect.DeepEqual(trace, again) {
		t.Fatal("trace not deterministic across calls")
	}
}
