package snpu

// The decode experiment: autoregressive decode served through the
// multi-tenant scheduler with KV-cache residency and continuous
// batching, swept over the batch width. Each row replays the same
// seeded request trace, so the sweep isolates what batching buys:
// tokens/sec (1 GHz cycle model) rises with MaxBatch while the
// inter-token tail stretches as members interleave. Serving is beyond
// the paper; the sweep exists to exercise §IV-B KV window residency
// under preemption and to pin per-token cycle determinism (the same
// seed yields a byte-identical table at any -j width).

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DecodeBenchConfig tunes the decode sweep. The zero value selects the
// defaults below.
type DecodeBenchConfig struct {
	// Requests per batch point (default 10).
	Requests int
	// Batches are the MaxBatch widths to sweep (default 1, 2, 4).
	Batches []int
	// Cores for the scheduler (default 0, 1).
	Cores []int
	// Tenants is the number of submitting tenants (default 2); each
	// tenant decodes its own spec, so batches never mix specs.
	Tenants int
}

func (c DecodeBenchConfig) withDefaults() DecodeBenchConfig {
	if c.Requests <= 0 {
		c.Requests = 10
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{1, 2, 4}
	}
	if len(c.Cores) == 0 {
		c.Cores = []int{0, 1}
	}
	if c.Tenants <= 0 || c.Tenants > 4 {
		c.Tenants = 2
	}
	return c
}

// decodeSpecFor is the per-tenant decode geometry: small enough that a
// sweep cell stays fast, distinct enough that the same-spec batching
// guard is load-bearing.
func decodeSpecFor(tenant int) workload.DecodeSpec {
	return workload.DecodeSpec{
		Layers: 1,
		Hidden: 64,
		Heads:  4,
		FFN:    128,
		Prompt: 8 + 4*tenant,
		Steps:  3 + tenant,
	}
}

// DecodeBenchRow is one batch-width point.
type DecodeBenchRow struct {
	MaxBatch  int
	Requests  int
	Completed int
	// Tokens is the total autoregressive tokens retired.
	Tokens   int
	Makespan sim.Cycle
	// TokensPerSec is tokens over makespan at the 1 GHz cycle model
	// (one cycle = one nanosecond).
	TokensPerSec float64
	// P50ITL / P99ITL are percentiles of the inter-token latency: the
	// cycle gaps between a request's consecutive token retirements.
	P50ITL, P99ITL sim.Cycle
	// Joins counts mid-run continuous-batching admissions; BatchedRuns
	// counts requests that shared a batch-mate's FnSubmit.
	Joins       int
	BatchedRuns int
	Preemptions int
	FlushCycles sim.Cycle
}

// DecodeBenchResult is the full sweep.
type DecodeBenchResult struct {
	Seed int64
	Rows []DecodeBenchRow
}

// TableString renders the sweep.
func (r *DecodeBenchResult) TableString() string {
	header := []string{"batch", "reqs", "done", "tokens", "makespan-cyc",
		"tok/s@1GHz", "p50-itl-cyc", "p99-itl-cyc", "joins", "batched", "preempts", "flush-cyc"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.MaxBatch),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Tokens),
			fmt.Sprintf("%d", row.Makespan),
			fmt.Sprintf("%.0f", row.TokensPerSec),
			fmt.Sprintf("%d", row.P50ITL),
			fmt.Sprintf("%d", row.P99ITL),
			fmt.Sprintf("%d", row.Joins),
			fmt.Sprintf("%d", row.BatchedRuns),
			fmt.Sprintf("%d", row.Preemptions),
			fmt.Sprintf("%d", row.FlushCycles),
		})
	}
	return experiments.Table(header, rows)
}

// DecodeTrace generates the deterministic decode trace shared by every
// batch point: n decode requests round-robined over tenants with
// staggered arrivals (so later requests join running batches), plus
// one higher-priority plain secure request per episode that preempts a
// decode batch mid-stream — proving KV residency costs show up in the
// measured inter-token tail, not in correctness. Exposed so the
// differential tests can replay the exact trace the bench ran.
func DecodeTrace(seed int64, n, tenants int) []sched.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]sched.Request, 0, n+1)
	var at float64
	for i := 1; i <= n; i++ {
		at += rng.ExpFloat64() * 60_000
		tenant := rng.Intn(tenants)
		spec := decodeSpecFor(tenant)
		reqs = append(reqs, sched.Request{
			ID:       i,
			Tenant:   fmt.Sprintf("t%d", tenant),
			Secure:   true,
			Decode:   &spec,
			Arrival:  sim.Cycle(at),
			Priority: sched.Priority(rng.Intn(2)),
		})
	}
	reqs = append(reqs, sched.Request{
		ID: n + 1, Tenant: "t0", Model: "mobilenet", Secure: true, Priority: 6,
		KeyID:   "t0-key",
		Arrival: sim.Cycle(at / 2),
	})
	return reqs
}

// DecodeBench runs the batch-width sweep. Each point boots a fresh
// protected SoC (through the pool), replays the seeded trace through a
// scheduler episode, and summarizes per-token timing.
func DecodeBench(seed int64, cfg DecodeBenchConfig) (*DecodeBenchResult, error) {
	cfg = cfg.withDefaults()
	res := &DecodeBenchResult{Seed: seed}
	for _, batch := range cfg.Batches {
		row, err := decodeBatchPoint(seed, batch, cfg)
		if err != nil {
			return nil, fmt.Errorf("decode batch %d: %w", batch, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func decodeBatchPoint(seed int64, batch int, cfg DecodeBenchConfig) (DecodeBenchRow, error) {
	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		return DecodeBenchRow{}, err
	}
	defer sys.release()
	key := ChaosKey(seed)
	if err := sys.ProvisionKey("t0-key", key); err != nil {
		return DecodeBenchRow{}, err
	}
	sealed, err := SealModel(key, []byte("decode preemptor model"))
	if err != nil {
		return DecodeBenchRow{}, err
	}
	sc, err := sys.NewScheduler(sched.Config{Cores: cfg.Cores, MaxBatch: batch})
	if err != nil {
		return DecodeBenchRow{}, err
	}
	for _, r := range DecodeTrace(seed, cfg.Requests, cfg.Tenants) {
		if r.Decode == nil {
			r.Sealed = sealed
		}
		if err := sc.Submit(r); err != nil {
			return DecodeBenchRow{}, err
		}
	}
	rep, err := sc.Run()
	if err != nil {
		return DecodeBenchRow{}, err
	}
	return summarizeDecode(batch, rep), nil
}

func summarizeDecode(batch int, rep *sched.Report) DecodeBenchRow {
	row := DecodeBenchRow{
		MaxBatch:    batch,
		Requests:    len(rep.Results),
		Completed:   rep.Completed,
		Tokens:      rep.Tokens,
		Makespan:    rep.Makespan,
		BatchedRuns: rep.BatchedRuns,
		Preemptions: rep.Preemptions,
		FlushCycles: rep.FlushCycles,
	}
	for _, d := range rep.Decisions {
		if d.Event == "join" {
			row.Joins++
		}
	}
	if row.Makespan > 0 {
		// 1 GHz cycle model: one cycle is one nanosecond.
		row.TokensPerSec = float64(row.Tokens) * 1e9 / float64(row.Makespan)
	}
	row.P50ITL, row.P99ITL = interTokenPercentiles(rep.TokenTimes)
	return row
}

// interTokenPercentiles pools every request's consecutive token-retire
// gaps and returns the p50/p99 of the pooled distribution. Request IDs
// are walked in sorted order so the pooling is deterministic.
func interTokenPercentiles(tokenTimes map[int][]sim.Cycle) (p50, p99 sim.Cycle) {
	ids := make([]int, 0, len(tokenTimes))
	for id := range tokenTimes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var gaps []sim.Cycle
	for _, id := range ids {
		times := tokenTimes[id]
		for i := 1; i < len(times); i++ {
			gaps = append(gaps, times[i]-times[i-1])
		}
	}
	if len(gaps) == 0 {
		return 0, 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2], gaps[(len(gaps)*99)/100]
}
