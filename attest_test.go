package snpu

import (
	"bytes"
	"testing"
)

func TestAttestationFlow(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{2}, SealKeySize)
	if err := sys.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitSecure("yololite", "owner", sealed)
	if err != nil {
		t.Fatal(err)
	}
	const nonce = 42
	rep, err := sys.Attest(h, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// The owner verifies against the program measurement they expect.
	expected := h.prog.prog.Measurement()
	if err := sys.VerifyAttestation(rep, expected, nonce); err != nil {
		t.Fatal(err)
	}
	// Wrong nonce or measurement fails.
	if err := sys.VerifyAttestation(rep, expected, nonce+1); err == nil {
		t.Fatal("stale nonce verified")
	}
	var evil [32]byte
	if err := sys.VerifyAttestation(rep, evil, nonce); err == nil {
		t.Fatal("wrong measurement verified")
	}
	if _, err := sys.Attest(nil, 1); err == nil {
		t.Fatal("nil handle attested")
	}
	base, err := New(BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Attest(h, 1); err == nil {
		t.Fatal("baseline attested")
	}
}
