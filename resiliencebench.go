package snpu

// The resilience experiment: a fault-rate × offered-load grid over the
// multi-tenant scheduler with the full resilience policy armed — every
// request deadlined, transient faults injected from a seeded plan,
// fault-aborted secure tasks retried with exponential backoff from
// their checkpoints, per-tenant queue bounds shedding overload. Each
// cell reports goodput (deadline-met completions per million cycles),
// tail latency, and the recovery/shed/abort split, so the sweep shows
// what the §IV-B fail-closed machinery costs and what the policy layer
// buys back. Cells fan out over the experiments worker pool; the table
// is byte-identical at any -j width and across fresh SoCs.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ResilienceBenchConfig tunes the sweep grid. The zero value selects
// the defaults below (a small 2×2 grid so the full suite stays fast).
type ResilienceBenchConfig struct {
	// Requests per grid cell (default 24).
	Requests int
	// LoadsPerM are offered arrival rates in requests per million
	// cycles (default light and overloaded: 0.2, 0.8).
	LoadsPerM []float64
	// FaultRatesPerM are transient-fault rates per million cycles fed
	// to fault.TransientRates (default 0.1, 1 — an idle core accrues
	// every overdue event and delivers the burst at dispatch, so rates
	// beyond a few per Mcyc make every first attempt lethal).
	FaultRatesPerM []float64
	// Cores for the scheduler (default 0..3).
	Cores []int
	// Tenants is the number of submitting tenants (default 3).
	Tenants int
	// MaxRestarts is the per-request retry budget (default 2).
	MaxRestarts int
	// RetryBackoff is the base backoff in cycles (0 = sched default).
	RetryBackoff sim.Cycle
	// MaxQueuePerTenant bounds each tenant's queue (default 5).
	MaxQueuePerTenant int
}

func (c ResilienceBenchConfig) withDefaults() ResilienceBenchConfig {
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if len(c.LoadsPerM) == 0 {
		c.LoadsPerM = []float64{0.2, 0.8}
	}
	if len(c.FaultRatesPerM) == 0 {
		c.FaultRatesPerM = []float64{0.1, 1}
	}
	if len(c.Cores) == 0 {
		c.Cores = []int{0, 1, 2, 3}
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 2
	}
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = 5
	}
	return c
}

// ResilienceBenchRow is one (fault rate, load) cell.
type ResilienceBenchRow struct {
	FaultPerM float64
	LoadPerM  float64
	Requests  int
	Completed int
	// GoodputPerM is deadline-met completions per million cycles of
	// makespan (every request carries a deadline, so completed ==
	// deadline-met by construction).
	GoodputPerM float64
	P50, P99    sim.Cycle
	Retries     int
	Recovered   int
	Shed        int
	Dropped     int
	Aborted     int
	Rejected    int
	FlushCycles sim.Cycle
	Makespan    sim.Cycle
}

// ResilienceBenchResult is the full grid.
type ResilienceBenchResult struct {
	Seed int64
	Rows []ResilienceBenchRow
}

// TableString renders the grid.
func (r *ResilienceBenchResult) TableString() string {
	header := []string{"fault/Mcyc", "load/Mcyc", "reqs", "done", "goodput/Mcyc",
		"p50-cyc", "p99-cyc", "retries", "recovered", "shed", "drop", "abort", "rej", "flush-cyc"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", row.FaultPerM),
			fmt.Sprintf("%g", row.LoadPerM),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%.3f", row.GoodputPerM),
			fmt.Sprintf("%d", row.P50),
			fmt.Sprintf("%d", row.P99),
			fmt.Sprintf("%d", row.Retries),
			fmt.Sprintf("%d", row.Recovered),
			fmt.Sprintf("%d", row.Shed),
			fmt.Sprintf("%d", row.Dropped),
			fmt.Sprintf("%d", row.Aborted),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%d", row.FlushCycles),
		})
	}
	return experiments.Table(header, rows)
}

// resilienceHorizon is the fault-plan horizon for one cell: a
// deterministic function of the trace shape (never a control run, so
// no cell depends on another's timing). It generously covers the
// expected makespan; events past the actual makespan simply never fire.
func resilienceHorizon(load float64, requests int) sim.Cycle {
	return sim.Cycle(float64(requests)/load*1e6) + 100_000_000
}

// ResilienceTrace is ServeTrace with every request deadlined: the
// sparse start deadlines ServeTrace already assigns stay, and every
// other request gets a looser finish deadline at arrival + 16/load
// Mcyc. Exposed so differential tests replay the bench's exact trace.
func ResilienceTrace(seed int64, loadPerM float64, n, tenants int) []sched.Request {
	reqs := ServeTrace(seed, loadPerM, n, tenants)
	for i := range reqs {
		if reqs[i].Deadline == 0 {
			reqs[i].Deadline = reqs[i].Arrival + sim.Cycle(16e6/loadPerM)
		}
	}
	return reqs
}

// ResilienceBench runs the grid. Each cell boots a fresh protected
// SoC, installs a seeded transient-fault plan, provisions per-tenant
// keys, replays the deadlined trace through one scheduler episode with
// retries and queue bounds armed, and summarizes the report.
func ResilienceBench(seed int64, cfg ResilienceBenchConfig) (*ResilienceBenchResult, error) {
	cfg = cfg.withDefaults()
	res := &ResilienceBenchResult{Seed: seed}
	nRates, nLoads := len(cfg.FaultRatesPerM), len(cfg.LoadsPerM)
	rows, err := experiments.MapIndexed(nRates*nLoads, func(i int) (ResilienceBenchRow, error) {
		rate := cfg.FaultRatesPerM[i/nLoads]
		load := cfg.LoadsPerM[i%nLoads]
		row, err := resilienceCell(seed+int64(i)*104729, rate, load, cfg)
		if err != nil {
			return ResilienceBenchRow{}, fmt.Errorf("resilience cell fault=%g load=%g: %w", rate, load, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

func resilienceCell(seed int64, rate, load float64, cfg ResilienceBenchConfig) (ResilienceBenchRow, error) {
	sys, err := acquireSystem(DefaultConfig())
	if err != nil {
		return ResilienceBenchRow{}, err
	}
	defer sys.release()
	sys.InstallFaultPlan(fault.Generate(seed, resilienceHorizon(load, cfg.Requests), fault.TransientRates(rate)))
	keys := make(map[string][]byte, cfg.Tenants)
	sealedFor := make(map[string][]byte)
	for t := 0; t < cfg.Tenants; t++ {
		keyID := fmt.Sprintf("t%d-key", t)
		key := ChaosKey(seed + int64(t))
		if err := sys.ProvisionKey(keyID, key); err != nil {
			return ResilienceBenchRow{}, err
		}
		keys[keyID] = key
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:             cfg.Cores,
		MaxRestarts:       cfg.MaxRestarts,
		RetryBackoff:      cfg.RetryBackoff,
		MaxQueuePerTenant: cfg.MaxQueuePerTenant,
	})
	if err != nil {
		return ResilienceBenchRow{}, err
	}
	row := ResilienceBenchRow{FaultPerM: rate, LoadPerM: load}
	for _, r := range ResilienceTrace(seed, load, cfg.Requests, cfg.Tenants) {
		if r.Secure {
			sealKey := r.KeyID + "/" + r.Model
			if sealedFor[sealKey] == nil {
				blob, err := SealModel(keys[r.KeyID], []byte("resilience model "+sealKey))
				if err != nil {
					return ResilienceBenchRow{}, err
				}
				sealedFor[sealKey] = blob
			}
			r.Sealed = sealedFor[sealKey]
		}
		switch err := sc.Submit(r); {
		case err == nil:
			row.Requests++
		case errors.Is(err, sched.ErrQueueFull):
			// Shed at admission: counted with the victims shed mid-trace.
			row.Shed++
		default:
			return ResilienceBenchRow{}, err
		}
	}
	rep, err := sc.Run()
	if err != nil {
		return ResilienceBenchRow{}, err
	}
	row.Completed = rep.Completed
	row.Retries = rep.Retries
	row.Recovered = rep.Recovered
	row.Shed += rep.Shed
	row.Dropped = rep.Dropped
	row.Aborted = rep.Aborted
	row.Rejected = rep.Rejected
	row.FlushCycles = rep.FlushCycles
	row.Makespan = rep.Makespan
	if rep.Makespan > 0 {
		row.GoodputPerM = float64(rep.Completed) * 1e6 / float64(rep.Makespan)
	}
	var lats []sim.Cycle
	for _, r := range rep.Results {
		if r.Completed {
			lats = append(lats, r.Latency())
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = lats[len(lats)/2]
		row.P99 = lats[(len(lats)*99)/100]
	}
	return row, nil
}
