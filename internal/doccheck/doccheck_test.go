package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

// The audit over this repository itself must be clean — this is the
// same gate CI runs via cmd/docaudit.
func TestRepositoryDocsAreAnchored(t *testing.T) {
	vs, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}

func writePkg(t *testing.T, root, dir, src string) {
	t.Helper()
	full := filepath.Join(root, dir)
	if err := os.MkdirAll(full, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(full, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsMissingAnchors(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, ".", "// Package demo reproduces the paper (§VI).\npackage demo\n")
	writePkg(t, root, "internal/good", "// Package good models §IV-C.\npackage good\n")
	writePkg(t, root, "internal/extra", "// Package extra is beyond the paper.\npackage extra\n")
	writePkg(t, root, "internal/nodoc", "package nodoc\n")
	writePkg(t, root, "internal/vague", "// Package vague does things.\npackage vague\n")
	// A directory with no Go files is skipped.
	if err := os.MkdirAll(filepath.Join(root, "internal", "empty"), 0o755); err != nil {
		t.Fatal(err)
	}

	vs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want exactly nodoc and vague", vs)
	}
	if vs[0].Dir != filepath.Join("internal", "nodoc") || vs[1].Dir != filepath.Join("internal", "vague") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestCheckIgnoresTestFileDocs(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, ".", "// Package demo reproduces the paper (§VI).\npackage demo\n")
	writePkg(t, root, "internal/p", "package p\n")
	// A doc comment on a _test.go file must not satisfy the audit.
	if err := os.WriteFile(filepath.Join(root, "internal", "p", "p_test.go"),
		[]byte("// Package p tests §VI.\npackage p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want the undocumented internal/p", vs)
	}
}
