// Package doccheck is the go vet-style documentation audit behind
// cmd/docaudit and the CI docs gate: every internal/* package (and the
// root package) must carry a package doc comment that maps it onto the
// source paper — either a section anchor ("§VI", "§II-B", ...) or the
// explicit phrase "beyond the paper" for subsystems the reproduction
// adds on its own (fault injection, observability, chaos testing).
//
// The check keeps DESIGN.md honest by construction: a new package
// cannot land without declaring where it sits relative to the paper,
// and the anchor gives godoc readers the section to open next.
package doccheck

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// sectionAnchor matches a paper section reference: the section sign
// followed by a roman numeral, e.g. §II, §IV-C, §VI.
var sectionAnchor = regexp.MustCompile(`§[IVX]+`)

// beyondPaper is the opt-out phrase for subsystems the reproduction
// adds beyond the paper's scope.
const beyondPaper = "beyond the paper"

// Violation is one package failing the audit.
type Violation struct {
	// Dir is the package directory relative to the checked root.
	Dir string
	// Reason says what is missing.
	Reason string
}

func (v Violation) String() string { return v.Dir + ": " + v.Reason }

// Check audits the module rooted at root: the root package itself plus
// every package under root/internal. It returns one Violation per
// package whose doc comment is absent or carries neither a §-section
// anchor nor the "beyond the paper" phrase. Test files never supply
// package docs. Directories without Go files are skipped.
func Check(root string) ([]Violation, error) {
	dirs := []string{root}
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && path != filepath.Join(root, "internal") {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []Violation
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		doc, hasGo, err := packageDoc(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rel, err)
		}
		if !hasGo {
			continue
		}
		switch {
		case strings.TrimSpace(doc) == "":
			out = append(out, Violation{Dir: rel, Reason: "no package doc comment"})
		case !sectionAnchor.MatchString(doc) && !strings.Contains(doc, beyondPaper):
			out = append(out, Violation{Dir: rel,
				Reason: fmt.Sprintf("package doc has no paper anchor (want a §-section reference or the phrase %q)", beyondPaper)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// packageDoc returns the concatenated package doc comments of the
// non-test Go files in dir, and whether dir holds any non-test Go file
// at all. Only the package clause is parsed, so the check stays fast
// and works on files that may not compile in isolation.
func packageDoc(dir string) (doc string, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false, err
	}
	fset := token.NewFileSet()
	var docs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return "", hasGo, err
		}
		if f.Doc != nil {
			docs = append(docs, f.Doc.Text())
		}
	}
	return strings.Join(docs, "\n"), hasGo, nil
}
