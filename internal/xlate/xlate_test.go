package xlate

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestRequestPackets(t *testing.T) {
	cases := []struct {
		bytes uint64
		want  uint64
	}{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {4096, 64}}
	for _, c := range cases {
		if got := (Request{Bytes: c.bytes}).Packets(); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestIdentityPassThrough(t *testing.T) {
	id := NewIdentity(sim.NewStats())
	if id.Name() != "none" {
		t.Fatal("name")
	}
	res, err := id.Translate(Request{VA: 0x1234, Bytes: 64, Need: mem.PermRW, World: mem.Normal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x1234 || res.Stall != 0 {
		t.Fatalf("identity result %+v", res)
	}
	id.OnContextSwitch(5) // must be a no-op
}
