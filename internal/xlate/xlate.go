// Package xlate defines the memory access-control interface sitting in
// front of the NPU's DMA engine. Three implementations exist in this
// repository, matching the paper's §VI comparative systems:
//
//   - identity (here): the unprotected "Normal NPU" baseline,
//   - internal/iommu: the "TrustZone NPU" baseline — an sMMU/IOMMU with
//     an IOTLB, page walks, and a TrustZone S/NS bit,
//   - internal/guarder: the paper's NPU Guarder — tile-granular
//     translation registers plus coarse checking registers, one check
//     per DMA request.
package xlate

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// PacketBytes is the fixed memory-packet size a DMA request is split
// into on the bus (§IV-A: "e.g., 64 bytes"). IOMMU-style translators
// pay one lookup per packet; the Guarder pays one per request.
const PacketBytes = 64

// Request is one DMA request: a contiguous virtual range with the
// needed permission, issued on behalf of a task running in a world.
type Request struct {
	VA    mem.VirtAddr
	Bytes uint64
	Need  mem.Perm
	World mem.World
	// TaskID identifies the NPU context issuing the request; the IOMMU
	// uses it to detect address-space switches (IOTLB ping-pong).
	TaskID int
}

// Packets reports how many fixed-size memory packets the request
// occupies on the bus.
func (r Request) Packets() uint64 {
	if r.Bytes == 0 {
		return 0
	}
	return (r.Bytes + PacketBytes - 1) / PacketBytes
}

// Result carries the translated physical base and the pipeline stall
// the translation inflicted (page walks, register reload, ...).
type Result struct {
	PA    mem.PhysAddr
	Stall sim.Cycle
}

// Translator is the access-control unit in front of the DMA engine.
type Translator interface {
	// Name identifies the mechanism in stats and experiment tables.
	Name() string
	// Translate maps and permission-checks one DMA request at cycle
	// `at`. A denial returns a non-nil error; the DMA engine drops the
	// request (and the simulated task faults).
	Translate(req Request, at sim.Cycle) (Result, error)
	// OnContextSwitch notifies the unit that the NPU switched to a
	// different task context (the IOMMU flushes its IOTLB; the Guarder
	// has its registers reprogrammed by the monitor at negligible cost).
	OnContextSwitch(taskID int)
}

// Identity is the unprotected baseline: VA==PA, every access allowed,
// no stalls, no per-packet work.
type Identity struct {
	stats *sim.Stats
}

// NewIdentity returns the pass-through translator.
func NewIdentity(stats *sim.Stats) *Identity { return &Identity{stats: stats} }

// Name implements Translator.
func (i *Identity) Name() string { return "none" }

// Translate implements Translator: direct mapping, no checking.
func (i *Identity) Translate(req Request, at sim.Cycle) (Result, error) {
	return Result{PA: mem.PhysAddr(req.VA)}, nil
}

// OnContextSwitch implements Translator (no state to switch).
func (i *Identity) OnContextSwitch(taskID int) {}
