package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final cycle = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle events fired out of order: %v", order)
		}
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.Schedule(0, tick)
	end := e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end != 40 {
		t.Fatalf("end = %d, want 40", end)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt the loop)", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := []Cycle{}
	for _, c := range []Cycle{5, 15, 25} {
		c := c
		e.Schedule(c, func() { fired = append(fired, c) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15 only", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("now = %d, want 100", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("advancing backwards did not panic")
		}
	}()
	e.Advance(50)
}

func TestResourceSerializesClaims(t *testing.T) {
	r := NewResource("dram")
	s1 := r.Claim(0, 10)
	s2 := r.Claim(0, 10)
	s3 := r.Claim(5, 10)
	if s1 != 0 || s2 != 10 || s3 != 20 {
		t.Fatalf("starts = %d,%d,%d, want 0,10,20", s1, s2, s3)
	}
	if r.BusyCycles() != 30 {
		t.Fatalf("busy = %d, want 30", r.BusyCycles())
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("link")
	r.Claim(0, 4)
	s := r.Claim(100, 4)
	if s != 100 {
		t.Fatalf("claim after idle gap started at %d, want 100", s)
	}
	if got := r.Utilization(104); got <= 0 || got >= 1 {
		t.Fatalf("utilization = %v, want in (0,1)", got)
	}
}

func TestResourceZeroDuration(t *testing.T) {
	r := NewResource("x")
	r.Claim(0, 10)
	s := r.Claim(0, 0)
	if s != 10 {
		t.Fatalf("zero-duration claim start = %d, want 10", s)
	}
	if r.Claims() != 1 {
		t.Fatalf("zero-duration claim should not count, claims = %d", r.Claims())
	}
}

// Property: for any sequence of claims, grants never overlap and are
// monotonically ordered.
func TestResourceClaimsNeverOverlap(t *testing.T) {
	f := func(durs []uint8, earliests []uint16) bool {
		r := NewResource("p")
		type grant struct{ start, end Cycle }
		var grants []grant
		n := len(durs)
		if len(earliests) < n {
			n = len(earliests)
		}
		for i := 0; i < n; i++ {
			d := Cycle(durs[i]%64 + 1)
			s := r.Claim(Cycle(earliests[i]), d)
			grants = append(grants, grant{s, s + d})
		}
		for i := 1; i < len(grants); i++ {
			if grants[i].start < grants[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStats()
	s.Inc("a")
	s.Add("a", 4)
	s.Add("b", -2)
	if s.Get("a") != 5 || s.Get("b") != -2 || s.Get("missing") != 0 {
		t.Fatalf("unexpected counters: %v", s.Snapshot())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	s.Reset()
	if s.Get("a") != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestStatsSnapshotIsCopy(t *testing.T) {
	s := NewStats()
	s.Set("x", 7)
	snap := s.Snapshot()
	snap["x"] = 99
	if s.Get("x") != 7 {
		t.Fatal("snapshot aliases the live counter map")
	}
}
