// Package sim provides the discrete-event simulation substrate used by
// every timed component in the sNPU reproduction (the cycle accounting
// beneath every §VI figure): a cycle clock, an
// event heap, serialized resources with FIFO contention, and named
// statistics counters.
//
// The engine is deterministic: events scheduled for the same cycle fire
// in the order they were scheduled, so repeated runs of the same
// configuration produce identical cycle counts.
package sim

import (
	"fmt"
)

// Cycle is a point on (or a span of) the simulated clock. The SoC in
// the paper runs at 1 GHz, so one Cycle is one nanosecond of simulated
// time under the default configuration.
type Cycle int64

// event is a scheduled callback. seq breaks ties so that same-cycle
// events fire in scheduling order.
type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (at, seq), stored by value.
// It is hand-rolled rather than container/heap so Push/Pop move values
// in the backing slice instead of boxing a pointer per event through
// an interface — the event queue is the simulator's hottest allocation
// site.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	// sameCycle coalesces heap traffic: events scheduled for exactly
	// the current cycle (the common cascade pattern — an event firing
	// schedules follow-on work "now") go into this FIFO instead of
	// paying a heap push + sift and a pop + sift each. Entries are
	// appended with at == now and now never decreases, so the slice is
	// ordered by (at, seq) and its head is always its minimum; the run
	// loop merges it with the heap by the same (at, seq) rule, so
	// firing order is bit-identical to the heap-only engine.
	sameCycle []event
	sameHead  int
	stats     *Stats
	stopped   bool
}

// NewEngine returns an engine at cycle 0 with an empty event queue.
func NewEngine() *Engine {
	return &Engine{stats: NewStats()}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Stats returns the engine-wide statistics sink.
func (e *Engine) Stats() *Stats { return e.stats }

// Schedule runs fn at the given absolute cycle. Scheduling in the past
// panics: it indicates a component bug, not a recoverable condition.
func (e *Engine) Schedule(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.sameCycle = append(e.sameCycle, event{at: at, seq: e.seq, fn: fn})
		return
	}
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// next pops the globally minimum pending event, merging the heap with
// the same-cycle FIFO. Callers must ensure Pending() > 0.
func (e *Engine) next() event {
	if e.sameHead < len(e.sameCycle) {
		f := e.sameCycle[e.sameHead]
		heapFirst := len(e.events) > 0 &&
			(e.events[0].at < f.at || (e.events[0].at == f.at && e.events[0].seq < f.seq))
		if !heapFirst {
			e.sameCycle[e.sameHead] = event{} // release the callback for GC
			e.sameHead++
			if e.sameHead == len(e.sameCycle) {
				e.sameCycle = e.sameCycle[:0]
				e.sameHead = 0
			}
			return f
		}
	}
	return e.events.pop()
}

// peekAt reports the timestamp of the minimum pending event; callers
// must ensure Pending() > 0.
func (e *Engine) peekAt() Cycle {
	if e.sameHead < len(e.sameCycle) {
		// FIFO entries were scheduled at what was then "now", so the
		// head is never later than anything in the heap's future — but
		// compare anyway to keep the invariant local.
		f := e.sameCycle[e.sameHead]
		if len(e.events) == 0 || e.events[0].at >= f.at {
			return f.at
		}
	}
	return e.events[0].at
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run drains the event queue, advancing the clock, until no events
// remain or Stop is called. It returns the final cycle.
func (e *Engine) Run() Cycle {
	e.stopped = false
	for e.Pending() > 0 && !e.stopped {
		ev := e.next()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil drains events with timestamps <= limit. Events beyond the
// limit stay queued. It returns the final cycle (<= limit).
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for e.Pending() > 0 && e.peekAt() <= limit && !e.stopped {
		ev := e.next()
		e.now = ev.at
		ev.fn()
	}
	if e.now < limit && !e.stopped {
		e.now = limit
	}
	return e.now
}

// Stop halts Run after the currently firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) + (len(e.sameCycle) - e.sameHead) }

// Reset returns the engine to cycle 0 with an empty queue and zeroed
// stats, keeping the event heap's and FIFO's backing storage (and the
// stats map's resolved counter handles) so a pooled SoC's next run
// schedules into warm memory instead of regrowing it.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.stopped = false
	for i := range e.events {
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	for i := range e.sameCycle {
		e.sameCycle[i] = event{}
	}
	e.sameCycle = e.sameCycle[:0]
	e.sameHead = 0
	e.stats.Reset()
}

// Advance moves the clock forward without firing events. It is used by
// sequential task executors that compute their own op durations and
// only need the shared clock and resources. Moving backwards panics.
func (e *Engine) Advance(to Cycle) {
	if to < e.now {
		panic(fmt.Sprintf("sim: advancing clock backwards from %d to %d", e.now, to))
	}
	e.now = to
}
