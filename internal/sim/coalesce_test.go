package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The same-cycle FIFO is an optimization, not a semantic change: this
// file pins that the coalesced engine fires events in exactly the
// (at, seq) order the heap-only engine would, including when future
// (heap) and now (FIFO) events interleave, and that Reset restores a
// reusable zero state.

// TestCoalescedOrderMatchesHeapOrder drives a randomized cascade —
// every fired event may schedule both "now" follow-ons (FIFO path) and
// future events (heap path) — and checks the firing log against the
// global (at, seq) scheduling order.
func TestCoalescedOrderMatchesHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	var fired []string
	var schedule func(depth int)
	n := 0
	schedule = func(depth int) {
		id := n
		n++
		at := e.Now() + Cycle(rng.Intn(3)) // 0 = same-cycle, 1..2 = heap
		e.Schedule(at, func() {
			fired = append(fired, fmt.Sprintf("%d@%d", id, e.Now()))
			if depth > 0 {
				for i := 0; i < rng.Intn(3); i++ {
					schedule(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 8; i++ {
		schedule(4)
	}
	e.Run()

	// Replay the same seed against a reference engine that never uses
	// the FIFO (every event goes through the heap via a +0 push turned
	// into an explicit heap insert). The cleanest reference is the
	// scheduling-order invariant itself: cycles never decrease, and
	// within one cycle the ids appear in scheduling order. Since each
	// event's id is its global seq order, checking monotonicity of
	// (cycle, id-within-cycle) is exactly the heap contract.
	lastCycle := Cycle(-1)
	lastID := -1
	for _, f := range fired {
		var id int
		var cyc Cycle
		if _, err := fmt.Sscanf(f, "%d@%d", &id, &cyc); err != nil {
			t.Fatal(err)
		}
		if cyc < lastCycle {
			t.Fatalf("clock went backwards: %v after cycle %d", f, lastCycle)
		}
		if cyc > lastCycle {
			lastCycle = cyc
			lastID = -1
		}
		if id <= lastID {
			t.Fatalf("same-cycle order violated at cycle %d: id %d fired after id %d (log %v)",
				cyc, id, lastID, fired)
		}
		lastID = id
	}
	if len(fired) < 8 {
		t.Fatalf("cascade fired only %d events", len(fired))
	}
}

// TestSameCycleInterleavesWithHeap pins the merge rule directly: a
// same-cycle FIFO entry must wait behind a heap event at the same
// cycle with a smaller seq, because (at, seq) order is global.
func TestSameCycleInterleavesWithHeap(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(5, func() { // seq 1: fires first at cycle 5
		e.Schedule(5, func() { order = append(order, "fifo seq3") }) // same-cycle follow-on
	})
	e.Schedule(5, func() { order = append(order, "heap seq2") }) // heap, smaller seq
	e.Run()
	if len(order) != 2 || order[0] != "heap seq2" || order[1] != "fifo seq3" {
		t.Fatalf("merge order = %v, want [heap seq2, fifo seq3]", order)
	}
}

// TestEngineReset pins the pooling contract for the substrate: after
// Reset the clock is zero, the queues are empty, stats are zeroed, and
// a second run is byte-identical to a first run on a fresh engine.
func TestEngineReset(t *testing.T) {
	run := func(e *Engine) (Cycle, int) {
		fires := 0
		e.Schedule(3, func() {
			fires++
			e.Schedule(3, func() { fires++ }) // exercise the FIFO
			e.After(4, func() { fires++ })
		})
		end := e.Run()
		return end, fires
	}
	fresh := NewEngine()
	wantEnd, wantFires := run(fresh)

	e := NewEngine()
	run(e)
	// Leave junk pending so Reset has something to clear.
	e.Schedule(100, func() { t.Fatal("stale event fired after Reset") })
	e.Schedule(e.Now(), func() { t.Fatal("stale same-cycle event fired after Reset") })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%d pending=%d, want 0/0", e.Now(), e.Pending())
	}
	if snap := e.Stats().Snapshot(); len(snap) != 0 {
		t.Fatalf("after Reset: stats not zeroed: %v", snap)
	}
	end, fires := run(e)
	if end != wantEnd || fires != wantFires {
		t.Fatalf("recycled run = (%d, %d), fresh run = (%d, %d)", end, fires, wantEnd, wantFires)
	}
}
