package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a named-counter sink shared across components. Counters are
// created on first use; reads of unknown counters return zero. It is
// not safe for concurrent use — each simulated SoC is single-threaded
// (parallel experiment cells each own a private Stats).
//
// Counters are stored behind stable *int64 cells so hot components can
// resolve a name once with Counter and increment through the pointer,
// skipping the per-event map lookup. Reset zeroes the cells in place,
// keeping outstanding handles valid.
type Stats struct {
	counters map[string]*int64
}

// NewStats returns an empty counter set.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*int64)}
}

// Counter returns the stable cell for name, creating it at zero on
// first use. The pointer stays valid across Reset (which zeroes it),
// so components may cache it for the lifetime of the Stats.
func (s *Stats) Counter(name string) *int64 {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := new(int64)
	s.counters[name] = c
	return c
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta int64) {
	*s.Counter(name) += delta
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get reads counter name, zero if never written.
func (s *Stats) Get(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return *c
	}
	return 0
}

// Set overwrites counter name.
func (s *Stats) Set(name string, v int64) { *s.Counter(name) = v }

// Reset zeroes every counter in place; handles returned by Counter
// remain valid and read zero afterwards.
func (s *Stats) Reset() {
	for _, c := range s.counters {
		*c = 0
	}
}

// Names returns the sorted counter names.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies all counters.
func (s *Stats) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = *v
	}
	return out
}

// String renders the counters one per line, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", name, s.Get(name))
	}
	return b.String()
}

// Common counter names used across the simulator. Keeping them here
// avoids typo'd string literals scattering through components.
const (
	CtrDRAMRequests     = "dram.requests"
	CtrDRAMBytes        = "dram.bytes"
	CtrDMARequests      = "dma.requests"
	CtrDMAPackets       = "dma.packets"
	CtrDMABytes         = "dma.bytes"
	CtrIOTLBLookups     = "iotlb.lookups"
	CtrIOTLBHits        = "iotlb.hits"
	CtrIOTLBMisses      = "iotlb.misses"
	CtrIOTLBFlushes     = "iotlb.flushes"
	CtrPageWalks        = "iommu.pagewalks"
	CtrPageWalkCycles   = "iommu.pagewalk_cycles"
	CtrGuarderChecks    = "guarder.checks"
	CtrGuarderDenied    = "guarder.denied"
	CtrSpadReads        = "spad.reads"
	CtrSpadWrites       = "spad.writes"
	CtrSpadDenied       = "spad.denied"
	CtrSpadFlushBytes   = "spad.flush_bytes"
	CtrNoCPackets       = "noc.packets"
	CtrNoCFlits         = "noc.flits"
	CtrNoCAuthPass      = "noc.auth_pass"
	CtrNoCAuthFail      = "noc.auth_fail"
	CtrComputeCycles    = "npu.compute_cycles"
	CtrComputeMACs      = "npu.macs"
	CtrMonitorCalls     = "monitor.calls"
	CtrMonitorRejected  = "monitor.rejected"
	CtrCtxSwitches      = "driver.ctx_switches"
	CtrTranslations     = "xlate.requests"
	CtrTranslationStall = "xlate.stall_cycles"

	// Fault injection, detection, and recovery.
	CtrFaultsInjected    = "fault.injected"
	CtrECCCorrected      = "mem.ecc_corrected"
	CtrECCUncorrectable  = "mem.ecc_uncorrectable"
	CtrSpadParityErrors  = "spad.parity_errors"
	CtrIOTLBParityErrors = "iotlb.parity_errors"
	CtrNoCCRCFail        = "noc.crc_fail"
	CtrNoCDrops          = "noc.drops"
	CtrNoCRetries        = "noc.retries"
	CtrNoCReroutes       = "noc.reroutes"
	CtrNoCLinksDown      = "noc.links_down"
	CtrDMATimeouts       = "dma.timeouts"
	CtrDMARetries        = "dma.retries"
	CtrCoreHangs         = "npu.core_hangs"
	CtrMonitorAborts     = "monitor.aborts"
	CtrTaskRestarts      = "recovery.task_restarts"
	CtrRecoveredFaults   = "recovery.recovered"
	CtrUnrecoveredFaults = "recovery.unrecovered"
)

// CanonicalCounters lists every named counter above, one per
// instrumentation site, in declaration order. The observability layer
// materializes them all at enable time so a metrics dump always
// covers the full component namespace (noc.*, dma.*, npu.*, iotlb.*,
// monitor.*, ...), with zeros for sites the run never touched.
func CanonicalCounters() []string {
	return []string{
		CtrDRAMRequests, CtrDRAMBytes,
		CtrDMARequests, CtrDMAPackets, CtrDMABytes,
		CtrIOTLBLookups, CtrIOTLBHits, CtrIOTLBMisses, CtrIOTLBFlushes,
		CtrPageWalks, CtrPageWalkCycles,
		CtrGuarderChecks, CtrGuarderDenied,
		CtrSpadReads, CtrSpadWrites, CtrSpadDenied, CtrSpadFlushBytes,
		CtrNoCPackets, CtrNoCFlits, CtrNoCAuthPass, CtrNoCAuthFail,
		CtrComputeCycles, CtrComputeMACs,
		CtrMonitorCalls, CtrMonitorRejected,
		CtrCtxSwitches,
		CtrTranslations, CtrTranslationStall,
		CtrFaultsInjected,
		CtrECCCorrected, CtrECCUncorrectable,
		CtrSpadParityErrors, CtrIOTLBParityErrors,
		CtrNoCCRCFail, CtrNoCDrops, CtrNoCRetries, CtrNoCReroutes, CtrNoCLinksDown,
		CtrDMATimeouts, CtrDMARetries,
		CtrCoreHangs,
		CtrMonitorAborts,
		CtrTaskRestarts, CtrRecoveredFaults, CtrUnrecoveredFaults,
	}
}
