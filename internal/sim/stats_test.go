package sim

import (
	"math"
	"strings"
	"testing"
)

// Edge cases for the counter sink: the Counter handle contract,
// overflow wrap-around, and Reset keeping outstanding handles live.

func TestStatsCounterHandleStableAcrossReset(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	*c = 41
	*c++
	if got := s.Get("x"); got != 42 {
		t.Fatalf("Get after handle writes = %d, want 42", got)
	}
	s.Reset()
	if *c != 0 {
		t.Fatalf("handle reads %d after Reset, want 0", *c)
	}
	// The handle must still be THE cell for "x", not a stale copy.
	*c = 7
	if got := s.Get("x"); got != 7 {
		t.Fatalf("Get after post-Reset handle write = %d, want 7 (handle detached)", got)
	}
	if c2 := s.Counter("x"); c2 != c {
		t.Fatal("Counter returned a different cell for the same name")
	}
}

func TestStatsResetClearsEveryCounter(t *testing.T) {
	s := NewStats()
	s.Add("a", 1)
	s.Add("b", 2)
	s.Set("c", -3)
	s.Reset()
	for _, name := range []string{"a", "b", "c"} {
		if got := s.Get(name); got != 0 {
			t.Errorf("Get(%q) after Reset = %d, want 0", name, got)
		}
	}
	// Names survive Reset (counters are zeroed, not dropped), so a
	// post-Reset snapshot still enumerates the schema.
	if got := len(s.Names()); got != 3 {
		t.Errorf("Names() after Reset has %d entries, want 3", got)
	}
}

func TestStatsOverflowWraps(t *testing.T) {
	// Counters are int64 and wrap on overflow per Go semantics; pin
	// that so nobody "fixes" it into a saturating or panicking path
	// without noticing (cycle math downstream assumes two's complement).
	s := NewStats()
	s.Set("big", math.MaxInt64)
	s.Add("big", 1)
	if got := s.Get("big"); got != math.MinInt64 {
		t.Fatalf("MaxInt64+1 = %d, want wraparound to MinInt64", got)
	}
	s.Set("small", math.MinInt64)
	s.Add("small", -1)
	if got := s.Get("small"); got != math.MaxInt64 {
		t.Fatalf("MinInt64-1 = %d, want wraparound to MaxInt64", got)
	}
}

func TestStatsGetUnknownIsZeroAndDoesNotCreate(t *testing.T) {
	s := NewStats()
	if got := s.Get("never-written"); got != 0 {
		t.Fatalf("Get(unknown) = %d, want 0", got)
	}
	if got := len(s.Names()); got != 0 {
		t.Fatalf("Get created a counter: Names() = %v", s.Names())
	}
}

func TestStatsStringSortedOutput(t *testing.T) {
	s := NewStats()
	s.Set("zz", 1)
	s.Set("aa", 2)
	s.Set("mm", 3)
	out := s.String()
	want := "aa=2\nmm=3\nzz=1\n"
	if out != want {
		t.Fatalf("String() = %q, want %q", out, want)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("String() must end with a newline per line")
	}
}

func TestStatsEmptySnapshotAndString(t *testing.T) {
	s := NewStats()
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty Snapshot = %v", snap)
	}
	if out := s.String(); out != "" {
		t.Fatalf("empty String = %q", out)
	}
}
