package sim

import "fmt"

// Resource models a serialized hardware resource — a DRAM channel, a
// NoC link, a DMA port. Claims are granted first-come-first-served in
// *virtual* time: a claim starting at the resource's earliest free
// cycle, occupying it for the requested duration.
//
// Serializing a bandwidth-shared channel this way is equivalent to
// FIFO bandwidth sharing: two 64-cycle transfers issued at the same
// instant finish at +64 and +128, the same aggregate as fair-sharing
// them at half bandwidth each.
type Resource struct {
	name     string
	nextFree Cycle
	busy     Cycle // total occupied cycles, for utilization reporting
	claims   uint64
}

// NewResource names a serialized resource, free from cycle 0.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Claim grants the caller exclusive use for dur cycles starting no
// earlier than `earliest`. It returns the granted start cycle. A zero
// or negative duration claims nothing and returns the earliest usable
// cycle.
func (r *Resource) Claim(earliest, dur Cycle) Cycle {
	start := earliest
	if r.nextFree > start {
		start = r.nextFree
	}
	if dur <= 0 {
		return start
	}
	r.nextFree = start + dur
	r.busy += dur
	r.claims++
	return start
}

// NextFree reports the first cycle at which the resource is idle.
func (r *Resource) NextFree() Cycle { return r.nextFree }

// BusyCycles reports the total cycles the resource has been occupied.
func (r *Resource) BusyCycles() Cycle { return r.busy }

// Claims reports how many grants have been made.
func (r *Resource) Claims() uint64 { return r.claims }

// Utilization reports busy/total over the window [0, horizon].
func (r *Resource) Utilization(horizon Cycle) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.claims = 0
}

func (r *Resource) String() string {
	return fmt.Sprintf("%s{nextFree=%d busy=%d claims=%d}", r.name, r.nextFree, r.busy, r.claims)
}
