package sim

import "testing"

// BenchmarkEngineScheduleDrain measures the event-queue hot path: the
// cost of scheduling and firing events, including per-event allocation.
func BenchmarkEngineScheduleDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1024; j++ {
			e.Schedule(Cycle(j%64), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineInterleaved measures the steady-state pattern the
// executors produce: each fired event schedules a successor.
func BenchmarkEngineInterleaved(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var step func()
		step = func() {
			if n < 4096 {
				n++
				e.After(3, step)
			}
		}
		e.After(0, step)
		e.Run()
	}
}

// BenchmarkStatsAdd measures the by-name counter path every component
// hits on every request.
func BenchmarkStatsAdd(b *testing.B) {
	b.ReportAllocs()
	s := NewStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(CtrNoCFlits, 1)
	}
}

// BenchmarkStatsCounterHandle measures the resolved-handle fast path
// hot components use instead of repeated map lookups.
func BenchmarkStatsCounterHandle(b *testing.B) {
	b.ReportAllocs()
	s := NewStats()
	c := s.Counter(CtrNoCFlits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*c++
	}
}

// BenchmarkResourceClaim measures the serialized-resource grant path
// (one claim per DMA batch / NoC link per packet).
func BenchmarkResourceClaim(b *testing.B) {
	b.ReportAllocs()
	r := NewResource("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Claim(Cycle(i), 4)
	}
}
