// Package energy is a first-order energy model for the simulated SoC,
// in the style of architecture-paper energy proxies: fixed
// picojoule-per-event costs multiplied by the hardware counters the
// simulation already collects. The absolute numbers use standard
// published per-operation estimates for a ~28 nm-class SoC; the claims
// built on them are relative (e.g., §VI Fig. 13(b)'s point that
// per-packet
// IOTLB lookups burn measurable power that per-request Guarder checks
// do not).
package energy

import (
	"fmt"

	"repro/internal/sim"
)

// CostsPJ is the per-event energy table, in picojoules.
type CostsPJ struct {
	// MAC is one int8 multiply-accumulate.
	MAC float64
	// DRAMByte is one byte moved to/from DRAM.
	DRAMByte float64
	// SpadByteAccess is one byte read or written in scratchpad SRAM.
	SpadByteAccess float64
	// IOTLBLookup is one fully-associative IOTLB CAM match.
	IOTLBLookup float64
	// PageWalkAccess is one page-walker memory access.
	PageWalkAccess float64
	// GuarderCheck is one range compare in the checking/translation
	// registers.
	GuarderCheck float64
	// NoCFlitHop is one flit traversing one router+link.
	NoCFlitHop float64
}

// DefaultCosts carries the standard rule-of-thumb values: DRAM access
// dominates (~10-20 pJ/byte), SRAM is ~10x cheaper, an int8 MAC is a
// fraction of a pJ, a CAM match costs about as much as a small SRAM
// read, and a register-range compare is an order of magnitude below
// that.
func DefaultCosts() CostsPJ {
	return CostsPJ{
		MAC:            0.2,
		DRAMByte:       15,
		SpadByteAccess: 1.2,
		IOTLBLookup:    6,
		PageWalkAccess: 60,
		GuarderCheck:   0.4,
		NoCFlitHop:     2,
	}
}

// Breakdown is the per-component energy of one run, in microjoules.
type Breakdown struct {
	ComputeUJ  float64
	DRAMUJ     float64
	CheckingUJ float64 // access-control: IOTLB lookups + walks, or Guarder checks
	NoCUJ      float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.ComputeUJ + b.DRAMUJ + b.CheckingUJ + b.NoCUJ
}

// CheckingShare is the access-control fraction of total energy.
func (b Breakdown) CheckingShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.CheckingUJ / t
}

func (b Breakdown) String() string {
	return fmt.Sprintf("compute=%.1fuJ dram=%.1fuJ checking=%.3fuJ noc=%.1fuJ",
		b.ComputeUJ, b.DRAMUJ, b.CheckingUJ, b.NoCUJ)
}

const pjToUJ = 1e-6

// FromCounters converts a run's hardware counters into a Breakdown.
// The walker's DRAM traffic is charged under checking (it exists only
// to serve translations).
func FromCounters(c CostsPJ, stats map[string]int64) Breakdown {
	var b Breakdown
	b.ComputeUJ = float64(stats[sim.CtrComputeMACs]) * c.MAC * pjToUJ
	b.DRAMUJ = float64(stats[sim.CtrDRAMBytes]) * c.DRAMByte * pjToUJ
	// Access control: per-packet IOTLB CAM matches + page walks, or
	// per-request Guarder range checks — whichever the run used.
	b.CheckingUJ = float64(stats[sim.CtrIOTLBLookups])*c.IOTLBLookup*pjToUJ +
		float64(stats[sim.CtrPageWalks])*3*c.PageWalkAccess*pjToUJ +
		float64(stats[sim.CtrGuarderChecks])*c.GuarderCheck*pjToUJ
	b.NoCUJ = float64(stats[sim.CtrNoCFlits]) * c.NoCFlitHop * pjToUJ
	return b
}
