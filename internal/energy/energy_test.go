package energy

import (
	"testing"

	"repro/internal/sim"
)

func TestFromCountersComponents(t *testing.T) {
	c := DefaultCosts()
	stats := map[string]int64{
		sim.CtrComputeMACs:   1_000_000,
		sim.CtrDRAMBytes:     1_000_000,
		sim.CtrIOTLBLookups:  10_000,
		sim.CtrPageWalks:     100,
		sim.CtrGuarderChecks: 0,
		sim.CtrNoCFlits:      5_000,
	}
	b := FromCounters(c, stats)
	if b.ComputeUJ <= 0 || b.DRAMUJ <= 0 || b.CheckingUJ <= 0 || b.NoCUJ <= 0 {
		t.Fatalf("zero components: %+v", b)
	}
	// DRAM dominates compute for equal counts (15 pJ/B vs 0.2 pJ/MAC).
	if b.DRAMUJ <= b.ComputeUJ {
		t.Fatalf("DRAM (%v) not above compute (%v)", b.DRAMUJ, b.ComputeUJ)
	}
	if tot := b.Total(); tot <= b.DRAMUJ {
		t.Fatalf("total %v not above largest component", tot)
	}
	if s := b.CheckingShare(); s <= 0 || s >= 1 {
		t.Fatalf("checking share = %v", s)
	}
	if b.String() == "" {
		t.Fatal("String")
	}
}

func TestEmptyCounters(t *testing.T) {
	b := FromCounters(DefaultCosts(), map[string]int64{})
	if b.Total() != 0 || b.CheckingShare() != 0 {
		t.Fatalf("empty run has energy: %+v", b)
	}
}

// The headline relative claim: for the same request stream, per-packet
// IOTLB checking burns far more than per-request Guarder checking.
func TestIOMMUCheckingCostsMoreThanGuarder(t *testing.T) {
	c := DefaultCosts()
	// One 4 KB DMA request: 64 packets -> 64 CAM lookups + 1 walk for
	// the IOMMU, or a single range check for the Guarder.
	iommu := FromCounters(c, map[string]int64{
		sim.CtrIOTLBLookups: 64,
		sim.CtrPageWalks:    1,
	})
	guarder := FromCounters(c, map[string]int64{
		sim.CtrGuarderChecks: 1,
	})
	if iommu.CheckingUJ < 100*guarder.CheckingUJ {
		t.Fatalf("IOMMU checking (%v uJ) not >> Guarder (%v uJ)",
			iommu.CheckingUJ, guarder.CheckingUJ)
	}
}
