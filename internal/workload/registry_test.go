package workload

import (
	"bytes"
	"testing"
)

func TestLookupFindsEveryModel(t *testing.T) {
	for _, name := range Names() {
		w, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if w.Name != name {
			t.Fatalf("Lookup(%q) returned %q", name, w.Name)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Lookup("no-such-model"); err == nil {
		t.Fatal("unknown model resolved")
	}
}

// The deprecated wrappers stay aliases of the one registry: both
// resolve the extras now (the old ByName six-only behavior is gone by
// design — a single lookup path).
func TestDeprecatedWrappersAliasLookup(t *testing.T) {
	for _, name := range []string{"resnet", "vgg16", "gpt-decode"} {
		a, errA := ByName(name)
		b, errB := ByNameExtended(name)
		c, errC := Lookup(name)
		if errA != nil || errB != nil || errC != nil {
			t.Fatalf("%s: %v %v %v", name, errA, errB, errC)
		}
		if a.Name != c.Name || b.Name != c.Name {
			t.Fatalf("%s: wrapper mismatch", name)
		}
	}
}

func TestRegistryOrderAndPartition(t *testing.T) {
	names := Names()
	if len(names) != len(All())+len(Extras()) {
		t.Fatalf("Names() has %d entries, All+Extras %d", len(names), len(All())+len(Extras()))
	}
	for i, w := range All() {
		if names[i] != w.Name {
			t.Fatalf("All()[%d] = %s, Names()[%d] = %s", i, w.Name, i, names[i])
		}
	}
	for i, w := range Extras() {
		if names[len(All())+i] != w.Name {
			t.Fatalf("Extras()[%d] = %s out of order", i, w.Name)
		}
	}
}

func TestCanonicalDigestSeparatesModels(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, name := range Names() {
		w, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		d := Digest(w)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision: %s vs %s", prev, name)
		}
		seen[d] = name
		// Canonical is deterministic.
		if !bytes.Equal(Canonical(w), Canonical(w)) {
			t.Fatalf("%s: canonical bytes unstable", name)
		}
	}
	// Renaming a layer changes the digest even when every GEMM is
	// untouched — provenance, not just shapes.
	w, _ := Lookup("dlrm")
	w2, _ := Lookup("dlrm")
	w2.Layers[0].Name = "renamed"
	if Digest(w) == Digest(w2) {
		t.Fatal("digest blind to layer names")
	}
	// Efficiency is part of the canonical form.
	w3, _ := Lookup("dlrm")
	w3.Layers[0].GEMMs[0].Efficiency = 0.5
	if Digest(w) == Digest(w3) {
		t.Fatal("digest blind to efficiency")
	}
}
