package workload

import "testing"

func TestExtrasValidate(t *testing.T) {
	for _, w := range Extras() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestVGG16Scale(t *testing.T) {
	w := VGG16()
	// Published VGG16: ~15.5 GMACs, ~138 M parameters.
	gmacs := float64(w.MACs()) / 1e9
	if gmacs < 13 || gmacs > 18 {
		t.Fatalf("vgg16 = %.1f GMACs", gmacs)
	}
	params := float64(w.WeightBytes()) / 1e6
	if params < 120 || params > 150 {
		t.Fatalf("vgg16 = %.0f M params", params)
	}
	if len(w.Layers) != 16 {
		t.Fatalf("vgg16 layers = %d", len(w.Layers))
	}
}

func TestGPTDecodeStepShape(t *testing.T) {
	w := GPTSmallDecode()
	// Decode-step MACs ≈ 2 x parameter count of the blocks plus
	// attention over the context; GPT-2 small blocks ~85 M params.
	gmacs := float64(w.MACs()) / 1e9
	if gmacs < 0.05 || gmacs > 0.3 {
		t.Fatalf("gpt decode = %.3f GMACs", gmacs)
	}
	// Every GEMM is M=1 (single-token decode).
	for _, l := range w.Layers {
		for _, g := range l.GEMMs {
			if g.M != 1 {
				t.Fatalf("%s has M=%d", g.Name, g.M)
			}
		}
	}
}

func TestDLRMChains(t *testing.T) {
	w := DLRM()
	prev := 0
	for i, l := range w.Layers {
		g := l.GEMMs[0]
		if i > 0 && g.K != prev {
			t.Fatalf("layer %d K=%d, want %d", i, g.K, prev)
		}
		prev = g.N
	}
	if prev != 1 {
		t.Fatalf("final output dim = %d", prev)
	}
}

func TestByNameExtended(t *testing.T) {
	for _, name := range []string{"resnet", "vgg16", "gpt-decode", "dlrm"} {
		if _, err := ByNameExtended(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByNameExtended("nope"); err == nil {
		t.Fatal("unknown model found")
	}
}

// The extras must compile and tile under the default scratchpad — the
// decode step's M=1 GEMMs stress the tiler's degenerate dimension.
func TestExtrasTile(t *testing.T) {
	for _, w := range Extras() {
		for _, l := range w.Layers {
			for _, g := range l.GEMMs {
				tl, err := ChooseTiling(g, 256<<10, 16)
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, g.Name, err)
				}
				if tl.Iterations() <= 0 {
					t.Fatalf("%s/%s: no iterations", w.Name, g.Name)
				}
			}
		}
	}
}
