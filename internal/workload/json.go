package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialization of workload descriptions, so users can feed
// their own networks to the simulator tools without writing Go:
//
//	{
//	  "name": "my-net",
//	  "layers": [
//	    {"name": "conv1",
//	     "gemms": [{"name": "conv1", "m": 12544, "k": 27, "n": 32}]},
//	    {"name": "fc",
//	     "gemms": [{"name": "fc", "m": 1, "k": 1024, "n": 10}]}
//	  ]
//	}

// jsonGEMM always emits efficiency — no omitempty. With omitempty an
// explicit 0 (meaning "default, 1.0") and an absent field were
// indistinguishable after Marshal, so Marshal→Read was not the
// identity on the struct's JSON form; emitting the field
// unconditionally makes the round trip exact (pinned by
// TestJSONRoundTripAllModels).
type jsonGEMM struct {
	Name       string  `json:"name"`
	M          int     `json:"m"`
	K          int     `json:"k"`
	N          int     `json:"n"`
	Efficiency float64 `json:"efficiency"`
}

type jsonLayer struct {
	Name  string     `json:"name"`
	GEMMs []jsonGEMM `json:"gemms"`
}

type jsonWorkload struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

// MarshalJSONWorkload serializes a workload.
func MarshalJSONWorkload(w Workload) ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jw := jsonWorkload{Name: w.Name}
	for _, l := range w.Layers {
		jl := jsonLayer{Name: l.Name}
		for _, g := range l.GEMMs {
			jl.GEMMs = append(jl.GEMMs, jsonGEMM{
				Name: g.Name, M: g.M, K: g.K, N: g.N, Efficiency: g.Efficiency,
			})
		}
		jw.Layers = append(jw.Layers, jl)
	}
	return json.MarshalIndent(jw, "", "  ")
}

// ReadJSONWorkload parses and validates a workload description from r.
// Unknown fields are rejected so typos surface instead of silently
// describing a different network.
func ReadJSONWorkload(r io.Reader) (Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jw jsonWorkload
	if err := dec.Decode(&jw); err != nil {
		return Workload{}, fmt.Errorf("workload: parsing JSON: %w", err)
	}
	w := Workload{Name: jw.Name}
	for _, jl := range jw.Layers {
		l := Layer{Name: jl.Name}
		for _, jg := range jl.GEMMs {
			l.GEMMs = append(l.GEMMs, GEMM{
				Name: jg.Name, M: jg.M, K: jg.K, N: jg.N, Efficiency: jg.Efficiency,
			})
		}
		w.Layers = append(w.Layers, l)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}
