package workload

import "fmt"

// Tiling maps one GEMM onto the NPU: tile sizes for each dimension,
// chosen so a double-buffered A tile, B tile, and C tile fit the
// scratchpad budget, minimizing DRAM traffic.
//
// Traffic model for the canonical loop nest (for mi { for ni { for ki
// { load A(mi,ki); load B(ki,ni); compute } store C(mi,ni) } }): the A
// matrix is streamed once per column-tile pass (ceil(N/Nt) reloads),
// the B matrix once per row-tile pass (ceil(M/Mt) reloads), and C is
// written once. Shrinking the scratchpad shrinks the tiles, raising
// the reload factors — that is the spad-size sensitivity Fig. 15
// measures.
type Tiling struct {
	G          GEMM
	Mt, Kt, Nt int
	// SpadBytes is the budget the tiling was chosen under.
	SpadBytes int
}

// ceilDiv rounds up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// roundUp rounds n up to a multiple of q (n > 0).
func roundUp(n, q int) int { return ceilDiv(n, q) * q }

// ChooseTiling picks tile sizes for g under spadBytes of scratchpad,
// on a systolic array of the given dimension. Tiles are multiples of
// dim (clamped to the problem size). It searches Mt x Nt candidates
// with a bounded Kt and keeps the minimum-traffic choice.
func ChooseTiling(g GEMM, spadBytes, dim int) (Tiling, error) {
	if err := g.Validate(); err != nil {
		return Tiling{}, err
	}
	if spadBytes <= 0 || dim <= 0 {
		return Tiling{}, fmt.Errorf("workload: invalid tiling budget %d / dim %d", spadBytes, dim)
	}
	// Dimensions rounded to the array size for candidate generation.
	maxM := roundUp(g.M, dim)
	maxN := roundUp(g.N, dim)
	maxK := roundUp(g.K, dim)

	best := Tiling{}
	var bestTraffic int64 = -1
	// Kt candidates: powers-of-two multiples of dim, plus full K.
	ktCands := []int{}
	for kt := dim; kt < maxK; kt *= 2 {
		ktCands = append(ktCands, kt)
	}
	ktCands = append(ktCands, maxK)

	// The output tile accumulates in the accumulator SRAM (a quarter
	// of the scratchpad capacity, holding 32-bit partial sums), which
	// bounds Mt*Nt independently of the input/weight buffers.
	const accPartialBytes = 4
	maxAccElems := (spadBytes / 4) / accPartialBytes
	for _, kt := range ktCands {
		for mt := dim; mt <= maxM; mt *= 2 {
			// Largest Nt fitting the budget with double buffering of the
			// A and B streams plus a single-buffered C tile.
			// budget >= 2*(mt*kt + kt*nt) + mt*nt
			rem := spadBytes/ElemBytes - 2*mt*kt
			if rem <= 0 {
				continue
			}
			nt := rem / (2*kt + mt)
			if accLimit := maxAccElems / mt; nt > accLimit {
				nt = accLimit
			}
			if nt < dim {
				continue
			}
			nt = (nt / dim) * dim
			if nt > maxN {
				nt = maxN
			}
			cand := Tiling{G: g, Mt: min(mt, maxM), Kt: min(kt, maxK), Nt: nt, SpadBytes: spadBytes}
			traffic := cand.DRAMTrafficBytes()
			if bestTraffic < 0 || traffic < bestTraffic {
				bestTraffic = traffic
				best = cand
			}
		}
	}
	if bestTraffic < 0 {
		// Degenerate budget: fall back to single-array tiles. The NPU
		// still runs, just with maximal reload traffic.
		best = Tiling{G: g, Mt: dim, Kt: dim, Nt: dim, SpadBytes: spadBytes}
	}
	return best, nil
}

// Counts reports the tile-loop trip counts (mi, ki, ni).
func (t Tiling) Counts() (mc, kc, nc int) {
	return ceilDiv(t.G.M, t.Mt), ceilDiv(t.G.K, t.Kt), ceilDiv(t.G.N, t.Nt)
}

// Iterations is the total tile-loop trip count.
func (t Tiling) Iterations() int {
	mc, kc, nc := t.Counts()
	return mc * kc * nc
}

// DRAMTrafficBytes is the total DRAM traffic the tiling induces.
func (t Tiling) DRAMTrafficBytes() int64 {
	mc, _, nc := t.Counts()
	aTraffic := t.G.InputBytes() * int64(nc)
	bTraffic := t.G.WeightBytes() * int64(mc)
	cTraffic := t.G.OutputBytes()
	return aTraffic + bTraffic + cTraffic
}

// ComputeCycles is the systolic-array time for the whole GEMM on a
// dim x dim array: each (Mt,Kt,Nt) tile costs
// ceil(Mt/dim)*ceil(Nt/dim) passes of (Kt + 2*dim) cycles (stream K,
// plus fill/drain), scaled by the shape efficiency.
func (t Tiling) ComputeCycles(dim int) int64 {
	mc, kc, nc := t.Counts()
	var total int64
	// Interior tiles are full-size; edges are remainders. Compute the
	// exact sum using per-axis tile size lists.
	sizes := func(total, tile, count int) []int {
		out := make([]int, count)
		for i := range out {
			s := tile
			if i == count-1 {
				s = total - tile*(count-1)
			}
			out[i] = s
		}
		return out
	}
	ms := sizes(t.G.M, t.Mt, mc)
	ks := sizes(t.G.K, t.Kt, kc)
	ns := sizes(t.G.N, t.Nt, nc)
	for _, m := range ms {
		for _, n := range ns {
			passes := int64(ceilDiv(m, dim)) * int64(ceilDiv(n, dim))
			for _, k := range ks {
				total += passes * int64(k+2*dim)
			}
		}
	}
	return int64(float64(total) / t.G.Eff())
}

// IdealComputeCycles is the lower bound at peak MACs/cycle (dim^2).
func IdealComputeCycles(g GEMM, dim int) int64 {
	return g.MACs() / int64(dim*dim)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
