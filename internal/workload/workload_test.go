package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllModelsValidate(t *testing.T) {
	for _, w := range All() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.MACs() <= 0 {
			t.Errorf("%s: non-positive MAC count", w.Name)
		}
		if w.WeightBytes() <= 0 {
			t.Errorf("%s: non-positive weight bytes", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"googlenet", "alexnet", "yololite", "mobilenet", "resnet", "bert"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name {
			t.Fatalf("got %q", w.Name)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Fatal("unknown model found")
	}
}

// Sanity-check the lowered model sizes against published figures.
func TestModelScaleSanity(t *testing.T) {
	cases := []struct {
		name                     string
		minGMACs, maxGMACs       float64
		minWeightMB, maxWeightMB float64
	}{
		// Published MAC counts (batch 1): AlexNet ~0.7G, GoogleNet
		// ~1.5G, ResNet-50 ~3.8-4.1G, MobileNetV1 ~0.57G, YOLO-lite
		// ~0.2-0.5G, BERT-base@128 ~11G (22 GFLOPs).
		{"alexnet", 0.5, 1.2, 40, 80},
		{"googlenet", 1.0, 2.2, 5, 15},
		{"resnet", 3.0, 4.6, 20, 40},
		{"mobilenet", 0.4, 0.8, 3, 6},
		{"yololite", 0.1, 1.0, 0.2, 3},
		{"bert", 8, 14, 80, 120},
	}
	for _, c := range cases {
		w, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		gmacs := float64(w.MACs()) / 1e9
		if gmacs < c.minGMACs || gmacs > c.maxGMACs {
			t.Errorf("%s: %.2f GMACs outside [%v,%v]", c.name, gmacs, c.minGMACs, c.maxGMACs)
		}
		wmb := float64(w.WeightBytes()) / (1 << 20)
		if wmb < c.minWeightMB || wmb > c.maxWeightMB {
			t.Errorf("%s: %.1f MB weights outside [%v,%v]", c.name, wmb, c.minWeightMB, c.maxWeightMB)
		}
	}
}

func TestConvLowering(t *testing.T) {
	g := conv("c", 27, 27, 96, 256, 5, 1, 2)
	if g.M != 27*27 || g.K != 96*25 || g.N != 256 {
		t.Fatalf("conv2 lowering = %dx%dx%d", g.M, g.K, g.N)
	}
	g = conv("c1", 227, 227, 3, 96, 11, 4, 0)
	if g.M != 55*55 {
		t.Fatalf("stride-4 conv M = %d, want 3025", g.M)
	}
}

func TestDWConvEfficiencyPenalty(t *testing.T) {
	g := dwconv("dw", 112, 112, 64, 3, 1, 1)
	if g.Eff() >= 1.0 {
		t.Fatal("depthwise conv should carry an efficiency penalty")
	}
	if g.MACs() != int64(112*112)*9*64 {
		t.Fatalf("dw MACs = %d", g.MACs())
	}
}

func TestGEMMValidate(t *testing.T) {
	if err := (GEMM{M: 0, K: 1, N: 1}).Validate(); err == nil {
		t.Fatal("zero-M GEMM validated")
	}
	if (GEMM{M: 1, K: 1, N: 1}).Eff() != 1.0 {
		t.Fatal("default efficiency should be 1.0")
	}
}

func TestWorkloadValidateEmpty(t *testing.T) {
	if err := (Workload{Name: "x"}).Validate(); err == nil {
		t.Fatal("empty workload validated")
	}
	if err := (Workload{Name: "x", Layers: []Layer{{Name: "l"}}}).Validate(); err == nil {
		t.Fatal("empty layer validated")
	}
}

func TestChooseTilingFitsBudget(t *testing.T) {
	g := GEMM{Name: "t", M: 512, K: 1024, N: 256}
	for _, budget := range []int{32 << 10, 64 << 10, 256 << 10} {
		tl, err := ChooseTiling(g, budget, 16)
		if err != nil {
			t.Fatal(err)
		}
		footprint := 2*(tl.Mt*tl.Kt+tl.Kt*tl.Nt) + tl.Mt*tl.Nt
		if footprint > budget {
			t.Fatalf("budget %d: tiling %+v uses %d bytes", budget, tl, footprint)
		}
		if tl.Mt <= 0 || tl.Kt <= 0 || tl.Nt <= 0 {
			t.Fatalf("degenerate tiling %+v", tl)
		}
	}
}

func TestTilingTrafficMonotoneInBudget(t *testing.T) {
	g := GEMM{Name: "t", M: 1024, K: 2048, N: 512}
	small, err := ChooseTiling(g, 16<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ChooseTiling(g, 512<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if small.DRAMTrafficBytes() <= large.DRAMTrafficBytes() {
		t.Fatalf("smaller scratchpad should cost more traffic: %d vs %d",
			small.DRAMTrafficBytes(), large.DRAMTrafficBytes())
	}
	// Traffic never goes below the compulsory bytes.
	compulsory := g.InputBytes() + g.WeightBytes() + g.OutputBytes()
	if large.DRAMTrafficBytes() < compulsory {
		t.Fatalf("traffic %d below compulsory %d", large.DRAMTrafficBytes(), compulsory)
	}
}

func TestChooseTilingBadArgs(t *testing.T) {
	g := GEMM{Name: "t", M: 16, K: 16, N: 16}
	if _, err := ChooseTiling(g, 0, 16); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := ChooseTiling(GEMM{}, 1024, 16); err == nil {
		t.Fatal("invalid GEMM accepted")
	}
}

func TestChooseTilingTinyBudgetFallsBack(t *testing.T) {
	g := GEMM{Name: "t", M: 256, K: 256, N: 256}
	tl, err := ChooseTiling(g, 64, 16) // absurdly small
	if err != nil {
		t.Fatal(err)
	}
	if tl.Mt != 16 || tl.Kt != 16 || tl.Nt != 16 {
		t.Fatalf("fallback tiling = %+v", tl)
	}
}

func TestTilingCountsCoverProblem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GEMM{Name: "p", M: rng.Intn(2000) + 1, K: rng.Intn(3000) + 1, N: rng.Intn(1500) + 1}
		tl, err := ChooseTiling(g, 256<<10, 16)
		if err != nil {
			return false
		}
		mc, kc, nc := tl.Counts()
		// Tiles cover the problem exactly.
		if mc*tl.Mt < g.M || kc*tl.Kt < g.K || nc*tl.Nt < g.N {
			return false
		}
		if (mc-1)*tl.Mt >= g.M || (kc-1)*tl.Kt >= g.K || (nc-1)*tl.Nt >= g.N {
			return false
		}
		if tl.Iterations() != mc*kc*nc {
			return false
		}
		// Compute cycles are at least the ideal (peak-rate) bound.
		if tl.ComputeCycles(16) < IdealComputeCycles(g, 16) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeCyclesEfficiencyScaling(t *testing.T) {
	g := GEMM{Name: "e", M: 256, K: 256, N: 256}
	tl, err := ChooseTiling(g, 256<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := tl.ComputeCycles(16)
	tl.G.Efficiency = 0.5
	if got := tl.ComputeCycles(16); got < 2*base-4 || got > 2*base+4 {
		t.Fatalf("efficiency 0.5 cycles = %d, want ~%d", got, 2*base)
	}
}

func TestBERTStructure(t *testing.T) {
	w := BERT(BERTBase)
	// 12 encoder layers x (attn + ffn) = 24 layers.
	if len(w.Layers) != 24 {
		t.Fatalf("bert layers = %d", len(w.Layers))
	}
	// Attention layer: 3 proj + 12 heads x 2 + 1 out = 28 GEMMs.
	if got := len(w.Layers[0].GEMMs); got != 28 {
		t.Fatalf("attn GEMMs = %d", got)
	}
}

func TestResNetStructure(t *testing.T) {
	w := ResNet()
	// conv1 + 16 bottlenecks + fc = 18 layers.
	if len(w.Layers) != 18 {
		t.Fatalf("resnet layers = %d", len(w.Layers))
	}
}
