package workload

import "fmt"

// The model registry: one lookup path over every built-in workload,
// the paper's §VI evaluation set and the extras alike. Lookup replaces
// the old two-step ByName/ByNameExtended split; those names remain as
// thin deprecated wrappers so existing callers keep compiling.

// registryEntry binds a model name to its constructor. Construction
// stays lazy — a lookup builds exactly one workload — and the slice
// keeps a stable order for Names().
type registryEntry struct {
	name  string
	extra bool
	build func() Workload
}

// registry lists every built-in model: the six evaluation workloads in
// the paper's order, then the extras.
var registry = []registryEntry{
	{"googlenet", false, GoogleNet},
	{"alexnet", false, AlexNet},
	{"yololite", false, YOLOLite},
	{"mobilenet", false, MobileNet},
	{"resnet", false, ResNet},
	{"bert", false, func() Workload { return BERT(BERTBase) }},
	{"vgg16", true, VGG16},
	{"gpt-decode", true, GPTSmallDecode},
	{"dlrm", true, DLRM},
}

// Lookup finds any built-in workload — evaluation set or extras — by
// name. It is the single lookup path every consumer (library API,
// scheduler admission, serving front end, experiment harness) goes
// through.
func Lookup(name string) (Workload, error) {
	for _, e := range registry {
		if e.name == name {
			return e.build(), nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown model %q", name)
}

// Names lists every registered model name in registry order (the
// paper's six first, extras after).
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// All returns the six evaluation workloads in the paper's order.
func All() []Workload {
	var out []Workload
	for _, e := range registry {
		if !e.extra {
			out = append(out, e.build())
		}
	}
	return out
}

// Extras returns the additional workloads beyond the paper's
// evaluation set.
func Extras() []Workload {
	var out []Workload
	for _, e := range registry {
		if e.extra {
			out = append(out, e.build())
		}
	}
	return out
}

// Clone returns a deep copy of w, so a caller holding the copy cannot
// mutate layers out from under a scheduler that admitted the original.
func (w Workload) Clone() Workload {
	out := Workload{Name: w.Name, Layers: make([]Layer, len(w.Layers))}
	for i, l := range w.Layers {
		out.Layers[i] = Layer{Name: l.Name, GEMMs: append([]GEMM(nil), l.GEMMs...)}
	}
	return out
}

// ByName finds a workload by name.
//
// Deprecated: use Lookup. ByName is a thin wrapper kept for source
// compatibility; it resolves extras too, exactly like Lookup.
func ByName(name string) (Workload, error) { return Lookup(name) }

// ByNameExtended searches the evaluation set and the extras.
//
// Deprecated: use Lookup, which it aliases.
func ByNameExtended(name string) (Workload, error) { return Lookup(name) }
