package workload

import "fmt"

// The six evaluation workloads (§VI-A): layer-accurate renderings of
// the published architectures at batch 1, int8. Spatial dims and
// channel widths follow the original papers; pooling/activation layers
// carry no GEMM work and are folded into the preceding layer's
// boundary.

// AlexNet returns the 8-learned-layer AlexNet (227x227 input).
func AlexNet() Workload {
	layers := []Layer{
		{Name: "conv1", GEMMs: []GEMM{conv("conv1", 227, 227, 3, 96, 11, 4, 0)}},
		{Name: "conv2", GEMMs: []GEMM{conv("conv2", 27, 27, 96, 256, 5, 1, 2)}},
		{Name: "conv3", GEMMs: []GEMM{conv("conv3", 13, 13, 256, 384, 3, 1, 1)}},
		{Name: "conv4", GEMMs: []GEMM{conv("conv4", 13, 13, 384, 384, 3, 1, 1)}},
		{Name: "conv5", GEMMs: []GEMM{conv("conv5", 13, 13, 384, 256, 3, 1, 1)}},
		{Name: "fc6", GEMMs: []GEMM{fc("fc6", 9216, 4096)}},
		{Name: "fc7", GEMMs: []GEMM{fc("fc7", 4096, 4096)}},
		{Name: "fc8", GEMMs: []GEMM{fc("fc8", 4096, 1000)}},
	}
	return Workload{Name: "alexnet", Layers: layers}
}

// YOLOLite returns YOLO-lite (224x224 input): seven small convolutions
// designed for non-GPU targets.
func YOLOLite() Workload {
	layers := []Layer{
		{Name: "conv1", GEMMs: []GEMM{conv("conv1", 224, 224, 3, 16, 3, 1, 1)}},
		{Name: "conv2", GEMMs: []GEMM{conv("conv2", 112, 112, 16, 32, 3, 1, 1)}},
		{Name: "conv3", GEMMs: []GEMM{conv("conv3", 56, 56, 32, 64, 3, 1, 1)}},
		{Name: "conv4", GEMMs: []GEMM{conv("conv4", 28, 28, 64, 128, 3, 1, 1)}},
		{Name: "conv5", GEMMs: []GEMM{conv("conv5", 14, 14, 128, 128, 3, 1, 1)}},
		{Name: "conv6", GEMMs: []GEMM{conv("conv6", 14, 14, 128, 256, 3, 1, 1)}},
		{Name: "conv7", GEMMs: []GEMM{conv("conv7", 7, 7, 256, 125, 1, 1, 0)}},
	}
	return Workload{Name: "yololite", Layers: layers}
}

// MobileNet returns MobileNetV1 (224x224, width 1.0): a pointwise-
// heavy stack whose depthwise stages underfill a systolic array.
func MobileNet() Workload {
	layers := []Layer{
		{Name: "conv1", GEMMs: []GEMM{conv("conv1", 224, 224, 3, 32, 3, 2, 1)}},
	}
	type stage struct {
		h, cin, cout, stride int
	}
	stages := []stage{
		{112, 32, 64, 1},
		{112, 64, 128, 2},
		{56, 128, 128, 1},
		{56, 128, 256, 2},
		{28, 256, 256, 1},
		{28, 256, 512, 2},
		{14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 512, 1},
		{14, 512, 1024, 2},
		{7, 1024, 1024, 1},
	}
	for i, s := range stages {
		oh := s.h / s.stride
		name := fmt.Sprintf("dsconv%d", i+2)
		layers = append(layers, Layer{Name: name, GEMMs: []GEMM{
			dwconv(name+"_dw", s.h, s.h, s.cin, 3, s.stride, 1),
			conv(name+"_pw", oh, oh, s.cin, s.cout, 1, 1, 0),
		}})
	}
	layers = append(layers, Layer{Name: "fc", GEMMs: []GEMM{fc("fc", 1024, 1000)}})
	return Workload{Name: "mobilenet", Layers: layers}
}

// ResNet returns ResNet-50 (224x224): four bottleneck stages.
func ResNet() Workload {
	layers := []Layer{
		{Name: "conv1", GEMMs: []GEMM{conv("conv1", 224, 224, 3, 64, 7, 2, 3)}},
	}
	type stage struct {
		blocks, mid, out, h int
	}
	stages := []stage{
		{3, 64, 256, 56},
		{4, 128, 512, 28},
		{6, 256, 1024, 14},
		{3, 512, 2048, 7},
	}
	in := 64
	for si, s := range stages {
		for b := 0; b < s.blocks; b++ {
			name := fmt.Sprintf("res%d_%d", si+2, b+1)
			gemms := []GEMM{
				conv(name+"_1x1a", s.h, s.h, in, s.mid, 1, 1, 0),
				conv(name+"_3x3", s.h, s.h, s.mid, s.mid, 3, 1, 1),
				conv(name+"_1x1b", s.h, s.h, s.mid, s.out, 1, 1, 0),
			}
			if b == 0 {
				// Projection shortcut on the first block of each stage.
				gemms = append(gemms, conv(name+"_proj", s.h, s.h, in, s.out, 1, 1, 0))
			}
			layers = append(layers, Layer{Name: name, GEMMs: gemms})
			in = s.out
		}
	}
	layers = append(layers, Layer{Name: "fc", GEMMs: []GEMM{fc("fc", 2048, 1000)}})
	return Workload{Name: "resnet", Layers: layers}
}

// GoogleNet returns GoogLeNet (Inception-v1, 224x224): the nine
// inception modules plus stem and classifier.
func GoogleNet() Workload {
	layers := []Layer{
		{Name: "conv1", GEMMs: []GEMM{conv("conv1", 224, 224, 3, 64, 7, 2, 3)}},
		{Name: "conv2", GEMMs: []GEMM{
			conv("conv2_red", 56, 56, 64, 64, 1, 1, 0),
			conv("conv2", 56, 56, 64, 192, 3, 1, 1),
		}},
	}
	// Inception module channel table: in, 1x1, 3x3red, 3x3, 5x5red,
	// 5x5, poolproj — the published GoogLeNet configuration.
	type incep struct {
		name                            string
		h, in, c1, c3r, c3, c5r, c5, pp int
	}
	modules := []incep{
		{"3a", 28, 192, 64, 96, 128, 16, 32, 32},
		{"3b", 28, 256, 128, 128, 192, 32, 96, 64},
		{"4a", 14, 480, 192, 96, 208, 16, 48, 64},
		{"4b", 14, 512, 160, 112, 224, 24, 64, 64},
		{"4c", 14, 512, 128, 128, 256, 24, 64, 64},
		{"4d", 14, 512, 112, 144, 288, 32, 64, 64},
		{"4e", 14, 528, 256, 160, 320, 32, 128, 128},
		{"5a", 7, 832, 256, 160, 320, 32, 128, 128},
		{"5b", 7, 832, 384, 192, 384, 48, 128, 128},
	}
	for _, m := range modules {
		name := "inception" + m.name
		layers = append(layers, Layer{Name: name, GEMMs: []GEMM{
			conv(name+"_1x1", m.h, m.h, m.in, m.c1, 1, 1, 0),
			conv(name+"_3x3red", m.h, m.h, m.in, m.c3r, 1, 1, 0),
			conv(name+"_3x3", m.h, m.h, m.c3r, m.c3, 3, 1, 1),
			conv(name+"_5x5red", m.h, m.h, m.in, m.c5r, 1, 1, 0),
			conv(name+"_5x5", m.h, m.h, m.c5r, m.c5, 5, 1, 2),
			conv(name+"_poolproj", m.h, m.h, m.in, m.pp, 1, 1, 0),
		}})
	}
	layers = append(layers, Layer{Name: "fc", GEMMs: []GEMM{fc("fc", 1024, 1000)}})
	return Workload{Name: "googlenet", Layers: layers}
}

// BERTConfig parameterizes the transformer workload.
type BERTConfig struct {
	Layers int
	Hidden int
	Heads  int
	FFN    int
	SeqLen int
}

// BERTBase is the bert-base-uncased configuration at sequence 128.
var BERTBase = BERTConfig{Layers: 12, Hidden: 768, Heads: 12, FFN: 3072, SeqLen: 128}

// BERT returns a transformer encoder workload.
func BERT(cfg BERTConfig) Workload {
	headDim := cfg.Hidden / cfg.Heads
	var layers []Layer
	for l := 0; l < cfg.Layers; l++ {
		name := fmt.Sprintf("enc%d", l+1)
		var attn []GEMM
		for _, proj := range []string{"q", "k", "v"} {
			attn = append(attn, GEMM{Name: fmt.Sprintf("%s_%sproj", name, proj),
				M: cfg.SeqLen, K: cfg.Hidden, N: cfg.Hidden})
		}
		for h := 0; h < cfg.Heads; h++ {
			attn = append(attn,
				GEMM{Name: fmt.Sprintf("%s_scores_h%d", name, h), M: cfg.SeqLen, K: headDim, N: cfg.SeqLen},
				GEMM{Name: fmt.Sprintf("%s_context_h%d", name, h), M: cfg.SeqLen, K: cfg.SeqLen, N: headDim},
			)
		}
		attn = append(attn, GEMM{Name: name + "_outproj", M: cfg.SeqLen, K: cfg.Hidden, N: cfg.Hidden})
		layers = append(layers, Layer{Name: name + "_attn", GEMMs: attn})
		layers = append(layers, Layer{Name: name + "_ffn", GEMMs: []GEMM{
			{Name: name + "_ffn1", M: cfg.SeqLen, K: cfg.Hidden, N: cfg.FFN},
			{Name: name + "_ffn2", M: cfg.SeqLen, K: cfg.FFN, N: cfg.Hidden},
		}})
	}
	return Workload{Name: "bert", Layers: layers}
}

