// Package workload describes the six DNN inference workloads the paper
// evaluates (§VI: GoogleNet, AlexNet, YOLO-lite, MobileNet, ResNet, BERT) as
// layer-accurate GEMM sequences, and provides the tiling machinery that
// maps each GEMM onto a systolic-array NPU under a scratchpad budget.
//
// Every convolution is lowered to its im2col GEMM (M = OH*OW,
// K = C*R*S, N = filters); fully-connected and attention layers are
// GEMMs natively; depthwise convolutions carry an efficiency penalty
// because a systolic array cannot fill its columns from a single input
// channel. Element size is one byte (int8 inference, as in Gemmini).
package workload

import "fmt"

// ElemBytes is the tensor element size (int8 inference).
const ElemBytes = 1

// GEMM is one matrix multiplication: (M x K) * (K x N).
type GEMM struct {
	Name string
	M    int
	K    int
	N    int
	// Efficiency scales achievable MACs/cycle below peak for shapes
	// the array executes poorly (depthwise convolutions). 0 means 1.0.
	Efficiency float64
}

// Validate reports whether the GEMM dimensions are usable.
func (g GEMM) Validate() error {
	if g.M <= 0 || g.K <= 0 || g.N <= 0 {
		return fmt.Errorf("workload: GEMM %q has non-positive dims %dx%dx%d", g.Name, g.M, g.K, g.N)
	}
	return nil
}

// MACs returns the multiply-accumulate count.
func (g GEMM) MACs() int64 { return int64(g.M) * int64(g.K) * int64(g.N) }

// WeightBytes is the size of the B (weight) matrix.
func (g GEMM) WeightBytes() int64 { return int64(g.K) * int64(g.N) * ElemBytes }

// InputBytes is the size of the A (activation) matrix.
func (g GEMM) InputBytes() int64 { return int64(g.M) * int64(g.K) * ElemBytes }

// OutputBytes is the size of the C matrix.
func (g GEMM) OutputBytes() int64 { return int64(g.M) * int64(g.N) * ElemBytes }

// Eff returns the efficiency with the zero-value default applied.
func (g GEMM) Eff() float64 {
	if g.Efficiency <= 0 {
		return 1.0
	}
	return g.Efficiency
}

// Layer groups the GEMMs that execute between two scheduling
// boundaries (the paper's op-kernel scheduling granularity is the
// tile; flush granularities are expressed in layers).
type Layer struct {
	Name  string
	GEMMs []GEMM
}

// MACs sums the layer's work.
func (l Layer) MACs() int64 {
	var total int64
	for _, g := range l.GEMMs {
		total += g.MACs()
	}
	return total
}

// Workload is one end-to-end inference.
type Workload struct {
	Name   string
	Layers []Layer
}

// Validate checks every GEMM.
func (w Workload) Validate() error {
	if len(w.Layers) == 0 {
		return fmt.Errorf("workload: %q has no layers", w.Name)
	}
	for _, l := range w.Layers {
		if len(l.GEMMs) == 0 {
			return fmt.Errorf("workload: %q layer %q has no GEMMs", w.Name, l.Name)
		}
		for _, g := range l.GEMMs {
			if err := g.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MACs sums the whole model's work.
func (w Workload) MACs() int64 {
	var total int64
	for _, l := range w.Layers {
		total += l.MACs()
	}
	return total
}

// WeightBytes sums the whole model's weight footprint.
func (w Workload) WeightBytes() int64 {
	var total int64
	for _, l := range w.Layers {
		for _, g := range l.GEMMs {
			total += g.WeightBytes()
		}
	}
	return total
}

// GEMMCount reports the total GEMMs across layers.
func (w Workload) GEMMCount() int {
	n := 0
	for _, l := range w.Layers {
		n += len(l.GEMMs)
	}
	return n
}

// conv lowers a convolution to its im2col GEMM. h, w are the *input*
// spatial dims; c in-channels; k filters; r kernel; stride; pad.
func conv(name string, h, w, c, k, r, stride, pad int) GEMM {
	oh := (h+2*pad-r)/stride + 1
	ow := (w+2*pad-r)/stride + 1
	return GEMM{Name: name, M: oh * ow, K: c * r * r, N: k}
}

// dwconv lowers a depthwise convolution: each channel convolves
// independently, so the systolic array streams only r*r deep and
// cannot amortize its fill — modeled as a GEMM over all channels with
// a deep efficiency penalty.
func dwconv(name string, h, w, c, r, stride, pad int) GEMM {
	oh := (h+2*pad-r)/stride + 1
	ow := (w+2*pad-r)/stride + 1
	return GEMM{Name: name, M: oh * ow, K: r * r, N: c, Efficiency: 0.08}
}

// fc lowers a fully-connected layer at batch 1.
func fc(name string, in, out int) GEMM {
	return GEMM{Name: name, M: 1, K: in, N: out}
}
