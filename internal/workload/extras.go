package workload

import "fmt"

// Extra workloads beyond the paper's evaluation set: useful for
// library users and for stressing the tiler/executor with shapes the
// six headline models do not cover (very deep VGG stacks, decoder-style
// autoregressive steps, wide recommendation MLPs). They are not part
// of All() so the reproduced figures stay matched to the paper.

// VGG16 returns the 16-layer VGG network (224x224): the classic
// weight-heavy CNN (~138 M parameters), dominated by its FC layers.
func VGG16() Workload {
	type block struct {
		convs, ch, h int
	}
	blocks := []block{
		{2, 64, 224},
		{2, 128, 112},
		{3, 256, 56},
		{3, 512, 28},
		{3, 512, 14},
	}
	var layers []Layer
	in := 3
	for bi, b := range blocks {
		for c := 0; c < b.convs; c++ {
			name := fmt.Sprintf("conv%d_%d", bi+1, c+1)
			layers = append(layers, Layer{Name: name, GEMMs: []GEMM{
				conv(name, b.h, b.h, in, b.ch, 3, 1, 1),
			}})
			in = b.ch
		}
	}
	layers = append(layers,
		Layer{Name: "fc6", GEMMs: []GEMM{fc("fc6", 512*7*7, 4096)}},
		Layer{Name: "fc7", GEMMs: []GEMM{fc("fc7", 4096, 4096)}},
		Layer{Name: "fc8", GEMMs: []GEMM{fc("fc8", 4096, 1000)}},
	)
	return Workload{Name: "vgg16", Layers: layers}
}

// GPTDecodeStep returns one autoregressive decode step of a GPT-style
// transformer: batch 1, a single new token attending over a cached
// context of ctxLen tokens. Every GEMM has M=1 — the pathological
// low-utilization case for a systolic array, and the memory-bound
// regime modern serving lives in.
func GPTDecodeStep(layers, hidden, heads, ffn, ctxLen int) Workload {
	headDim := hidden / heads
	var ls []Layer
	for l := 0; l < layers; l++ {
		name := fmt.Sprintf("dec%d", l+1)
		var attn []GEMM
		for _, proj := range []string{"q", "k", "v"} {
			attn = append(attn, GEMM{Name: fmt.Sprintf("%s_%sproj", name, proj), M: 1, K: hidden, N: hidden})
		}
		for h := 0; h < heads; h++ {
			attn = append(attn,
				GEMM{Name: fmt.Sprintf("%s_scores_h%d", name, h), M: 1, K: headDim, N: ctxLen},
				GEMM{Name: fmt.Sprintf("%s_ctx_h%d", name, h), M: 1, K: ctxLen, N: headDim},
			)
		}
		attn = append(attn, GEMM{Name: name + "_outproj", M: 1, K: hidden, N: hidden})
		ls = append(ls, Layer{Name: name + "_attn", GEMMs: attn})
		ls = append(ls, Layer{Name: name + "_ffn", GEMMs: []GEMM{
			{Name: name + "_ffn1", M: 1, K: hidden, N: ffn},
			{Name: name + "_ffn2", M: 1, K: ffn, N: hidden},
		}})
	}
	return Workload{Name: "gpt-decode", Layers: ls}
}

// GPTSmallDecode is a GPT-2-small-scale decode step over a 512-token
// context.
func GPTSmallDecode() Workload {
	return GPTDecodeStep(12, 768, 12, 3072, 512)
}

// DLRM returns a recommendation-style MLP tower: wide dense layers at
// batch 1 — bandwidth bound, embedding lookups excluded.
func DLRM() Workload {
	dims := []int{2048, 1024, 1024, 512, 256, 1}
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		name := fmt.Sprintf("mlp%d", i+1)
		layers = append(layers, Layer{Name: name, GEMMs: []GEMM{fc(name, dims[i], dims[i+1])}})
	}
	return Workload{Name: "dlrm", Layers: layers}
}

