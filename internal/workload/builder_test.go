package workload

import "testing"

func TestBuilderConstructsValidWorkload(t *testing.T) {
	w, err := NewBuilder("tiny-cnn").
		Layer("conv1", Conv("conv1", 32, 32, 3, 16, 3, 1, 1)).
		Layer("dw2", DWConv("dw2", 32, 32, 16, 3, 1, 1)).
		Layer("attn", MatMul("scores", 64, 16, 64)).
		Layer("fc", FC("fc", 256, 10)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Layers) != 4 || w.Name != "tiny-cnn" {
		t.Fatalf("workload = %+v", w)
	}
	if w.MACs() <= 0 {
		t.Fatal("no work")
	}
}

func TestBuilderRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("empty workload built")
	}
	if _, err := NewBuilder("bad").Layer("l", GEMM{Name: "z"}).Build(); err == nil {
		t.Fatal("invalid GEMM built")
	}
}

func TestExportedBuildersMatchInternal(t *testing.T) {
	if Conv("c", 27, 27, 96, 256, 5, 1, 2) != conv("c", 27, 27, 96, 256, 5, 1, 2) {
		t.Fatal("Conv diverges")
	}
	if FC("f", 100, 10) != fc("f", 100, 10) {
		t.Fatal("FC diverges")
	}
	if DWConv("d", 16, 16, 8, 3, 1, 1) != dwconv("d", 16, 16, 8, 3, 1, 1) {
		t.Fatal("DWConv diverges")
	}
	m := MatMul("m", 2, 3, 4)
	if m.M != 2 || m.K != 3 || m.N != 4 {
		t.Fatal("MatMul dims")
	}
}
