package workload

import "fmt"

// Autoregressive decode (beyond the paper's six evaluation models, like
// the other extras): a prompt prefill pass followed by N single-token
// decode steps whose attention reads a growing KV cache. The builders
// here only describe the arithmetic — per-step GEMV/thin-GEMM shapes
// over the growing sequence — while residency of the KV cache itself is
// the monitor's business (internal/monitor, §IV-B ID-bit rules).

// Decode size caps. They bound every per-step GEMM product well inside
// int64 and keep a hostile serve submission from ballooning compile
// time.
const (
	// MaxDecodeSteps caps the decode-step count of one request.
	MaxDecodeSteps = 512
	// MaxDecodeContext caps Prompt+Steps (the final context length).
	MaxDecodeContext = 1 << 16
	// MaxDecodeLayers caps the transformer depth.
	MaxDecodeLayers = 128
	// MaxDecodeWidth caps Hidden and FFN.
	MaxDecodeWidth = 1 << 16
)

// DecodeSpec describes one autoregressive decode request: a GPT-style
// transformer (Layers blocks of attention + FFN) run as a prefill over
// Prompt tokens and then Steps single-token decode steps. Each step t
// attends over a context of Prompt+t+1 tokens, so the score/context
// GEMMs grow with the sequence while everything else stays M=1.
type DecodeSpec struct {
	Layers int `json:"layers"`
	Hidden int `json:"hidden"`
	Heads  int `json:"heads"`
	FFN    int `json:"ffn"`
	// Prompt is the prefill sequence length.
	Prompt int `json:"prompt"`
	// Steps is the number of decode steps after prefill. The prefill
	// emits the first token, so a completed request produced Steps+1
	// tokens.
	Steps int `json:"steps"`
}

// Validate bounds every dimension.
func (d DecodeSpec) Validate() error {
	if d.Layers <= 0 || d.Hidden <= 0 || d.Heads <= 0 || d.FFN <= 0 || d.Prompt <= 0 || d.Steps <= 0 {
		return fmt.Errorf("workload: decode spec has non-positive dims %+v", d)
	}
	if d.Hidden%d.Heads != 0 {
		return fmt.Errorf("workload: decode hidden %d not divisible by %d heads", d.Hidden, d.Heads)
	}
	if d.Layers > MaxDecodeLayers {
		return fmt.Errorf("workload: decode layers %d exceeds %d", d.Layers, MaxDecodeLayers)
	}
	if d.Hidden > MaxDecodeWidth || d.FFN > MaxDecodeWidth {
		return fmt.Errorf("workload: decode width %dx%d exceeds %d", d.Hidden, d.FFN, MaxDecodeWidth)
	}
	if d.Steps > MaxDecodeSteps {
		return fmt.Errorf("workload: decode steps %d exceeds %d", d.Steps, MaxDecodeSteps)
	}
	if d.Prompt+d.Steps > MaxDecodeContext {
		return fmt.Errorf("workload: decode context %d exceeds %d", d.Prompt+d.Steps, MaxDecodeContext)
	}
	return nil
}

// ModelName is the deterministic display name; it encodes every field,
// so two requests share a name iff they share the exact spec.
func (d DecodeSpec) ModelName() string {
	return fmt.Sprintf("decode-l%dh%dx%df%d-p%ds%d", d.Layers, d.Hidden, d.Heads, d.FFN, d.Prompt, d.Steps)
}

// KVBytes is the full KV-cache footprint at end of decode: one K and
// one V vector of Hidden bytes per layer per context token.
func (d DecodeSpec) KVBytes() int64 {
	return 2 * int64(d.Layers) * int64(d.Hidden) * int64(d.Prompt+d.Steps) * ElemBytes
}

// Prefill returns the prompt pass: the attention-builder shapes (BERT)
// at sequence Prompt. Its completion emits the request's first token
// and leaves the prompt's K/V vectors resident in the cache.
func (d DecodeSpec) Prefill() Workload {
	headDim := d.Hidden / d.Heads
	var layers []Layer
	for l := 0; l < d.Layers; l++ {
		name := fmt.Sprintf("pre%d", l+1)
		var attn []GEMM
		for _, proj := range []string{"q", "k", "v"} {
			attn = append(attn, GEMM{Name: fmt.Sprintf("%s_%sproj", name, proj),
				M: d.Prompt, K: d.Hidden, N: d.Hidden})
		}
		for h := 0; h < d.Heads; h++ {
			attn = append(attn,
				GEMM{Name: fmt.Sprintf("%s_scores_h%d", name, h), M: d.Prompt, K: headDim, N: d.Prompt},
				GEMM{Name: fmt.Sprintf("%s_ctx_h%d", name, h), M: d.Prompt, K: d.Prompt, N: headDim},
			)
		}
		attn = append(attn, GEMM{Name: name + "_outproj", M: d.Prompt, K: d.Hidden, N: d.Hidden})
		layers = append(layers, Layer{Name: name + "_attn", GEMMs: attn})
		layers = append(layers, Layer{Name: name + "_ffn", GEMMs: []GEMM{
			{Name: name + "_ffn1", M: d.Prompt, K: d.Hidden, N: d.FFN},
			{Name: name + "_ffn2", M: d.Prompt, K: d.FFN, N: d.Hidden},
		}})
	}
	return Workload{Name: d.ModelName() + "+prefill", Layers: layers}
}

// Step returns decode step tok (0-based): one new token attending over
// a context of Prompt+tok+1 cached tokens — GPTDecodeStep's shapes with
// the per-step growing context.
func (d DecodeSpec) Step(tok int) Workload {
	headDim := d.Hidden / d.Heads
	ctxLen := d.Prompt + tok + 1
	var layers []Layer
	for l := 0; l < d.Layers; l++ {
		name := fmt.Sprintf("dec%d", l+1)
		var attn []GEMM
		for _, proj := range []string{"q", "k", "v"} {
			attn = append(attn, GEMM{Name: fmt.Sprintf("%s_%sproj", name, proj), M: 1, K: d.Hidden, N: d.Hidden})
		}
		for h := 0; h < d.Heads; h++ {
			attn = append(attn,
				GEMM{Name: fmt.Sprintf("%s_scores_h%d", name, h), M: 1, K: headDim, N: ctxLen},
				GEMM{Name: fmt.Sprintf("%s_ctx_h%d", name, h), M: 1, K: ctxLen, N: headDim},
			)
		}
		attn = append(attn, GEMM{Name: name + "_outproj", M: 1, K: d.Hidden, N: d.Hidden})
		layers = append(layers, Layer{Name: name + "_attn", GEMMs: attn})
		layers = append(layers, Layer{Name: name + "_ffn", GEMMs: []GEMM{
			{Name: name + "_ffn1", M: 1, K: d.Hidden, N: d.FFN},
			{Name: name + "_ffn2", M: 1, K: d.FFN, N: d.Hidden},
		}})
	}
	return Workload{Name: fmt.Sprintf("%s+step%03d", d.ModelName(), tok), Layers: layers}
}

// Passes returns every program of the request in execution order:
// Passes()[0] is the prefill, Passes()[1+t] is decode step t. The
// scheduler compiles each pass separately; a token boundary is the
// completion of one pass.
func (d DecodeSpec) Passes() []Workload {
	out := make([]Workload, 0, d.Steps+1)
	out = append(out, d.Prefill())
	for t := 0; t < d.Steps; t++ {
		out = append(out, d.Step(t))
	}
	return out
}

// Flat concatenates prefill and every decode step into one workload
// (layer names prefixed with the pass), for running a whole decode as
// a single conventional inference — this is what the graph IR's Decode
// op lowers to.
func (d DecodeSpec) Flat() Workload {
	w := Workload{Name: d.ModelName()}
	for i, pass := range d.Passes() {
		prefix := "prefill"
		if i > 0 {
			prefix = fmt.Sprintf("s%03d", i-1)
		}
		for _, l := range pass.Layers {
			w.Layers = append(w.Layers, Layer{Name: prefix + "_" + l.Name, GEMMs: l.GEMMs})
		}
	}
	return w
}

// DefaultDecodeSpec is the bench/test default: small enough that a
// full prefill+steps compile stays fast, big enough that each step
// spans multiple tiles and layers.
func DefaultDecodeSpec() DecodeSpec {
	return DecodeSpec{Layers: 4, Hidden: 256, Heads: 4, FFN: 1024, Prompt: 64, Steps: 8}
}
