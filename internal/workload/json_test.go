package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestJSONRoundTripAllModels pins Marshal→Read as the exact identity
// over every built-in model: the parsed struct deep-equals the
// original (explicit-vs-default efficiency included, now that the
// efficiency field is emitted unconditionally), and a second Marshal
// is byte-identical to the first.
func TestJSONRoundTripAllModels(t *testing.T) {
	models := append(All(), Extras()...)
	// An explicit-efficiency edge case: 1.0 written out must survive as
	// exactly 1.0, distinct from the 0 default with the same Eff().
	models = append(models, Workload{Name: "explicit-eff", Layers: []Layer{{
		Name: "l0", GEMMs: []GEMM{
			{Name: "g0", M: 8, K: 8, N: 8, Efficiency: 1.0},
			{Name: "g1", M: 8, K: 8, N: 8},
		},
	}}})
	for _, w := range models {
		buf, err := MarshalJSONWorkload(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		got, err := ReadJSONWorkload(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: read: %v", w.Name, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("%s: Marshal→Read is not the identity", w.Name)
		}
		buf2, err := MarshalJSONWorkload(got)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", w.Name, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("%s: double marshal not byte-identical", w.Name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := MobileNet()
	buf, err := MarshalJSONWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONWorkload(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Layers) != len(w.Layers) {
		t.Fatalf("structure mismatch: %s %d", got.Name, len(got.Layers))
	}
	if got.MACs() != w.MACs() {
		t.Fatalf("MACs %d vs %d", got.MACs(), w.MACs())
	}
	// Efficiency (dwconv penalty) survives the round trip.
	if got.Layers[1].GEMMs[0].Eff() != w.Layers[1].GEMMs[0].Eff() {
		t.Fatal("efficiency lost")
	}
}

func TestReadJSONWorkloadValidates(t *testing.T) {
	// Structurally fine JSON but invalid network (zero dim).
	bad := `{"name":"x","layers":[{"name":"l","gemms":[{"name":"g","m":0,"k":1,"n":1}]}]}`
	if _, err := ReadJSONWorkload(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid network parsed")
	}
	// Unknown field rejected.
	typo := `{"name":"x","layerz":[]}`
	if _, err := ReadJSONWorkload(strings.NewReader(typo)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Garbage rejected.
	if _, err := ReadJSONWorkload(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := MarshalJSONWorkload(Workload{Name: "empty"}); err == nil {
		t.Fatal("invalid workload marshaled")
	}
}
