package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	w := MobileNet()
	buf, err := MarshalJSONWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONWorkload(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Layers) != len(w.Layers) {
		t.Fatalf("structure mismatch: %s %d", got.Name, len(got.Layers))
	}
	if got.MACs() != w.MACs() {
		t.Fatalf("MACs %d vs %d", got.MACs(), w.MACs())
	}
	// Efficiency (dwconv penalty) survives the round trip.
	if got.Layers[1].GEMMs[0].Eff() != w.Layers[1].GEMMs[0].Eff() {
		t.Fatal("efficiency lost")
	}
}

func TestReadJSONWorkloadValidates(t *testing.T) {
	// Structurally fine JSON but invalid network (zero dim).
	bad := `{"name":"x","layers":[{"name":"l","gemms":[{"name":"g","m":0,"k":1,"n":1}]}]}`
	if _, err := ReadJSONWorkload(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid network parsed")
	}
	// Unknown field rejected.
	typo := `{"name":"x","layerz":[]}`
	if _, err := ReadJSONWorkload(strings.NewReader(typo)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Garbage rejected.
	if _, err := ReadJSONWorkload(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := MarshalJSONWorkload(Workload{Name: "empty"}); err == nil {
		t.Fatal("invalid workload marshaled")
	}
}
