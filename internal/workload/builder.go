package workload

// Public layer builders so library users can describe their own
// networks with the same lowering the six built-in models use.

// Conv lowers a standard convolution to its im2col GEMM. h and w are
// the input spatial dims, c the input channels, k the filter count, r
// the (square) kernel size.
func Conv(name string, h, w, c, k, r, stride, pad int) GEMM {
	return conv(name, h, w, c, k, r, stride, pad)
}

// DWConv lowers a depthwise convolution (one filter per channel) with
// the systolic-array efficiency penalty applied.
func DWConv(name string, h, w, c, r, stride, pad int) GEMM {
	return dwconv(name, h, w, c, r, stride, pad)
}

// FC lowers a fully-connected layer at batch 1.
func FC(name string, in, out int) GEMM {
	return fc(name, in, out)
}

// MatMul describes a raw GEMM (attention scores, projections, ...).
func MatMul(name string, m, k, n int) GEMM {
	return GEMM{Name: name, M: m, K: k, N: n}
}

// Builder accumulates layers into a Workload.
type Builder struct {
	w Workload
}

// NewBuilder starts a named workload.
func NewBuilder(name string) *Builder {
	return &Builder{w: Workload{Name: name}}
}

// Layer appends one scheduling-boundary layer holding the given GEMMs.
func (b *Builder) Layer(name string, gemms ...GEMM) *Builder {
	b.w.Layers = append(b.w.Layers, Layer{Name: name, GEMMs: gemms})
	return b
}

// Build validates and returns the workload.
func (b *Builder) Build() (Workload, error) {
	if err := b.w.Validate(); err != nil {
		return Workload{}, err
	}
	return b.w, nil
}
