package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Canonical serialization of a workload: a deterministic byte string
// covering everything the compiler consumes — the model name, the
// layer partitioning, and every GEMM's name, dimensions, and
// efficiency. Two workloads are byte-identical inputs to npu.Compile
// if and only if their canonical bytes are equal, so Digest is the
// provenance measurement the attestation path binds: a quote over a
// compiled program commits to the exact lowered graph, not just a
// model name.

// canonicalMagic versions the serialization; bump it if the layout
// ever changes so old digests cannot collide with new ones.
var canonicalMagic = []byte("snpu-workload-v1")

// Canonical returns the deterministic serialization of w. It does not
// validate; callers that need a well-formed workload run Validate
// first.
func Canonical(w Workload) []byte {
	// Pre-size: magic + name + counts + per-layer/GEMM records.
	n := len(canonicalMagic) + 8 + len(w.Name) + 8
	for _, l := range w.Layers {
		n += 8 + len(l.Name) + 8
		for _, g := range l.GEMMs {
			n += 8 + len(g.Name) + 4*8
		}
	}
	out := make([]byte, 0, n)
	u64 := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }
	str := func(s string) {
		u64(uint64(len(s)))
		out = append(out, s...)
	}
	out = append(out, canonicalMagic...)
	str(w.Name)
	u64(uint64(len(w.Layers)))
	for _, l := range w.Layers {
		str(l.Name)
		u64(uint64(len(l.GEMMs)))
		for _, g := range l.GEMMs {
			str(g.Name)
			u64(uint64(g.M))
			u64(uint64(g.K))
			u64(uint64(g.N))
			u64(math.Float64bits(g.Efficiency))
		}
	}
	return out
}

// Digest is the SHA-256 of the canonical serialization — the
// source-graph measurement npu.Compile stamps into every Program.
func Digest(w Workload) [sha256.Size]byte {
	return sha256.Sum256(Canonical(w))
}
