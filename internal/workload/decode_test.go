package workload

import (
	"strings"
	"testing"
)

func TestDecodeSpecValidate(t *testing.T) {
	good := DefaultDecodeSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []DecodeSpec{
		{},
		{Layers: 1, Hidden: 10, Heads: 3, FFN: 4, Prompt: 2, Steps: 1},                   // hidden % heads
		{Layers: 1, Hidden: 8, Heads: 2, FFN: 4, Prompt: 2, Steps: MaxDecodeSteps + 1},   // steps cap
		{Layers: 1, Hidden: 8, Heads: 2, FFN: 4, Prompt: MaxDecodeContext, Steps: 1},     // context cap
		{Layers: MaxDecodeLayers + 1, Hidden: 8, Heads: 2, FFN: 4, Prompt: 2, Steps: 1},  // depth cap
		{Layers: 1, Hidden: MaxDecodeWidth + 2, Heads: 2, FFN: 4, Prompt: 2, Steps: 1},   // width cap
		{Layers: 1, Hidden: 8, Heads: 2, FFN: 4, Prompt: 2, Steps: 0},                    // no steps
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d (%+v) accepted", i, s)
		}
	}
}

func TestDecodeStepShapesGrow(t *testing.T) {
	d := DecodeSpec{Layers: 2, Hidden: 64, Heads: 4, FFN: 128, Prompt: 16, Steps: 3}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for tok := 0; tok < d.Steps; tok++ {
		step := d.Step(tok)
		if err := step.Validate(); err != nil {
			t.Fatalf("step %d invalid: %v", tok, err)
		}
		wantCtx := d.Prompt + tok + 1
		found := false
		for _, l := range step.Layers {
			for _, g := range l.GEMMs {
				if g.M != 1 {
					t.Fatalf("step %d GEMM %q has M=%d, want 1 (GEMV/thin-GEMM)", tok, g.Name, g.M)
				}
				if strings.Contains(g.Name, "_scores_") {
					found = true
					if g.N != wantCtx {
						t.Fatalf("step %d scores N=%d, want growing context %d", tok, g.N, wantCtx)
					}
				}
			}
		}
		if !found {
			t.Fatalf("step %d has no score GEMMs", tok)
		}
	}
}

func TestDecodePrefillMatchesAttentionBuilder(t *testing.T) {
	d := DecodeSpec{Layers: 3, Hidden: 96, Heads: 6, FFN: 384, Prompt: 24, Steps: 2}
	pre := d.Prefill()
	if err := pre.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same arithmetic as the existing attention (BERT) builder at the
	// prompt's sequence length: identical MACs, layer count, GEMM count.
	ref := BERT(BERTConfig{Layers: d.Layers, Hidden: d.Hidden, Heads: d.Heads, FFN: d.FFN, SeqLen: d.Prompt})
	if pre.MACs() != ref.MACs() {
		t.Fatalf("prefill MACs %d != attention builder MACs %d", pre.MACs(), ref.MACs())
	}
	if len(pre.Layers) != len(ref.Layers) || pre.GEMMCount() != ref.GEMMCount() {
		t.Fatalf("prefill structure %d layers/%d GEMMs, builder %d/%d",
			len(pre.Layers), pre.GEMMCount(), len(ref.Layers), ref.GEMMCount())
	}
}

func TestDecodePassesAndFlat(t *testing.T) {
	d := DecodeSpec{Layers: 1, Hidden: 32, Heads: 2, FFN: 64, Prompt: 8, Steps: 2}
	passes := d.Passes()
	if len(passes) != d.Steps+1 {
		t.Fatalf("got %d passes, want %d", len(passes), d.Steps+1)
	}
	flat := d.Flat()
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	var wantLayers int
	var wantMACs int64
	for _, p := range passes {
		wantLayers += len(p.Layers)
		wantMACs += p.MACs()
	}
	if len(flat.Layers) != wantLayers || flat.MACs() != wantMACs {
		t.Fatalf("flat has %d layers/%d MACs, want %d/%d", len(flat.Layers), flat.MACs(), wantLayers, wantMACs)
	}
	if flat.Name != d.ModelName() {
		t.Fatalf("flat name %q, want %q", flat.Name, d.ModelName())
	}
	// Determinism: two renderings are byte-identical.
	if string(Canonical(d.Flat())) != string(Canonical(flat)) {
		t.Fatal("Flat is not deterministic")
	}
}

func TestDecodeKVBytes(t *testing.T) {
	d := DecodeSpec{Layers: 2, Hidden: 64, Heads: 4, FFN: 128, Prompt: 10, Steps: 6}
	want := int64(2 * 2 * 64 * 16) // 2 (K,V) * layers * hidden * (prompt+steps)
	if got := d.KVBytes(); got != want {
		t.Fatalf("KVBytes=%d, want %d", got, want)
	}
}
