package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/spad"
)

// This file implements the secure router-controller protocol of
// Fig. 12: each NPU core owns a router controller with a send engine
// and a receive engine. A transfer walks the controller through
// idle → peephole (authentication request / verify) → data streaming →
// idle, and a verified channel locks until the tail flit so no other
// core can inject into it mid-stream.

// RouterState is the controller FSM state.
type RouterState uint8

const (
	// StateIdle: no transfer in flight.
	StateIdle RouterState = iota
	// StatePeephole: authentication request sent / being verified.
	StatePeephole
	// StateStreaming: body flits in flight on a locked channel.
	StateStreaming
)

func (s RouterState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StatePeephole:
		return "peephole"
	case StateStreaming:
		return "streaming"
	default:
		return "unknown"
	}
}

// RouterController is the per-core send/receive engine pair.
type RouterController struct {
	node  Coord
	mesh  *Mesh
	state RouterState
	peer  Coord // locked peer while streaming
}

// NewRouterController attaches a controller to a mesh node.
func NewRouterController(node Coord, mesh *Mesh) *RouterController {
	return &RouterController{node: node, mesh: mesh}
}

// State reports the FSM state.
func (r *RouterController) State() RouterState { return r.state }

// Node reports the attached mesh coordinate.
func (r *RouterController) Node() Coord { return r.node }

// BeginSend runs the peephole handshake with dst: the controller
// leaves idle, generates the authentication identity from the sending
// core's current ID state, and — on success — locks the destination's
// receive channel to this node. Authentication is decided from the
// head flit and costs no extra cycles; the returned cycle is when
// streaming may begin (== at).
func (r *RouterController) BeginSend(dst Coord, at sim.Cycle) (sim.Cycle, error) {
	if r.state != StateIdle {
		return 0, fmt.Errorf("noc: send engine at %v busy (%s)", r.node, r.state)
	}
	if !r.mesh.InMesh(dst) {
		return 0, fmt.Errorf("noc: destination %v outside mesh", dst)
	}
	r.state = StatePeephole
	if r.mesh.cfg.Peephole {
		srcID := r.mesh.IDSource(r.node)
		dstID := r.mesh.IDSource(dst)
		if srcID != dstID {
			r.state = StateIdle
			if r.mesh.stats != nil {
				r.mesh.stats.Inc(sim.CtrNoCAuthFail)
			}
			return 0, fmt.Errorf("%w: handshake %v(id=%d) -> %v(id=%d)",
				ErrAuthFailed, r.node, srcID, dst, dstID)
		}
		if r.mesh.stats != nil {
			r.mesh.stats.Inc(sim.CtrNoCAuthPass)
		}
	}
	// Verified: lock the channel so no other core can use it.
	if lockSrc, locked := r.mesh.locks[dst]; locked && *lockSrc != r.node {
		r.state = StateIdle
		return 0, fmt.Errorf("%w: dst %v already locked to %v", ErrChannelLocked, dst, *lockSrc)
	}
	r.mesh.LockChannel(dst, r.node)
	r.state = StateStreaming
	r.peer = dst
	return at, nil
}

// Stream sends one data packet on the locked channel, returning the
// arrival cycle of its tail.
func (r *RouterController) Stream(flits int, payload []byte, at sim.Cycle) (sim.Cycle, error) {
	if r.state != StateStreaming {
		return 0, fmt.Errorf("noc: stream without authenticated channel (state %s)", r.state)
	}
	pkt := Packet{
		Src:     r.node,
		Dst:     r.peer,
		SrcID:   r.idOf(r.node),
		Flits:   flits,
		Payload: payload,
	}
	return r.mesh.Send(pkt, at)
}

// EndSend releases the channel (tail flit) and returns to idle.
func (r *RouterController) EndSend() {
	if r.state == StateStreaming {
		r.mesh.UnlockChannel(r.peer)
	}
	r.state = StateIdle
}

// Transfer is the common whole-packet convenience path: handshake,
// stream one packet, release.
func (r *RouterController) Transfer(dst Coord, flits int, payload []byte, at sim.Cycle) (sim.Cycle, error) {
	start, err := r.BeginSend(dst, at)
	if err != nil {
		return 0, err
	}
	done, err := r.Stream(flits, payload, start)
	r.EndSend()
	if err != nil {
		return 0, err
	}
	return done, nil
}

func (r *RouterController) idOf(c Coord) spad.DomainID {
	if r.mesh.IDSource == nil {
		return spad.NonSecure
	}
	return r.mesh.IDSource(c)
}
