package noc

import (
	"errors"
	"testing"

	"repro/internal/spad"
)

func TestMulticastDeliversToAll(t *testing.T) {
	m, _ := newMesh(t, 3, 3, false)
	payload := []byte("tile")
	dsts := []Coord{{2, 0}, {0, 2}, {2, 2}}
	done, err := m.Multicast(Packet{Src: Coord{0, 0}, Flits: 8, Payload: payload}, dsts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("no time elapsed")
	}
	for _, d := range dsts {
		pkts := m.Receive(d)
		if len(pkts) != 1 || string(pkts[0].Payload) != "tile" {
			t.Fatalf("dst %v inbox = %v", d, pkts)
		}
	}
}

func TestMulticastCheaperThanUnicasts(t *testing.T) {
	dsts := []Coord{{1, 0}, {2, 0}, {3, 0}}
	pkt := Packet{Src: Coord{0, 0}, Flits: 64}

	mMulti, _ := newMesh(t, 4, 1, false)
	multiDone, err := mMulti.Multicast(pkt, dsts, 0)
	if err != nil {
		t.Fatal(err)
	}

	mUni, _ := newMesh(t, 4, 1, false)
	var uniDone int64
	at := int64(0)
	for _, d := range dsts {
		p := pkt
		p.Dst = d
		done, err := mUni.Send(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(done) > uniDone {
			uniDone = int64(done)
		}
		_ = at
	}
	// The three unicasts share the (0,0)->(1,0) link and serialize; the
	// multicast carries the flits once per link.
	if int64(multiDone) >= uniDone {
		t.Fatalf("multicast (%d) not cheaper than unicasts (%d)", multiDone, uniDone)
	}
}

func TestMulticastAuthFailsClosed(t *testing.T) {
	ids := map[Coord]spad.DomainID{
		{0, 0}: spad.SecureDomain,
		{1, 0}: spad.SecureDomain,
		{2, 0}: spad.NonSecure, // one bad apple
	}
	m, stats := meshWithIDs(t, true, ids)
	_, err := m.Multicast(Packet{Src: Coord{0, 0}, SrcID: spad.SecureDomain, Flits: 4},
		[]Coord{{1, 0}, {2, 0}}, 0)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("mixed-domain multicast delivered: %v", err)
	}
	// Nothing moved: fail closed means zero packets counted.
	if stats.Get("noc.packets") != 0 {
		t.Fatal("flits moved despite auth failure")
	}
}

func TestMulticastValidation(t *testing.T) {
	m, _ := newMesh(t, 2, 2, false)
	if _, err := m.Multicast(Packet{Src: Coord{0, 0}, Flits: 4}, nil, 0); err == nil {
		t.Fatal("empty destination list accepted")
	}
	if _, err := m.Multicast(Packet{Src: Coord{0, 0}, Flits: 0}, []Coord{{1, 0}}, 0); err == nil {
		t.Fatal("zero-flit multicast accepted")
	}
	if _, err := m.Multicast(Packet{Src: Coord{0, 0}, Flits: 4}, []Coord{{9, 9}}, 0); err == nil {
		t.Fatal("off-mesh destination accepted")
	}
}

func TestMulticastRespectsChannelLocks(t *testing.T) {
	m, _ := newMesh(t, 3, 1, false)
	m.LockChannel(Coord{2, 0}, Coord{1, 0})
	_, err := m.Multicast(Packet{Src: Coord{0, 0}, Flits: 4}, []Coord{{1, 0}, {2, 0}}, 0)
	if !errors.Is(err, ErrChannelLocked) {
		t.Fatalf("locked destination accepted: %v", err)
	}
}
