package noc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/spad"
)

func newMesh(t *testing.T, w, h int, peephole bool) (*Mesh, *sim.Stats) {
	t.Helper()
	stats := sim.NewStats()
	m, err := NewMesh(DefaultConfig(w, h, peephole), stats)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func TestMeshRejectsBadGeometry(t *testing.T) {
	if _, err := NewMesh(DefaultConfig(0, 2, false), nil); err == nil {
		t.Fatal("0-width mesh accepted")
	}
}

func TestRouteXYOrder(t *testing.T) {
	m, _ := newMesh(t, 4, 4, false)
	path, err := m.Route(Coord{0, 0}, Coord{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// XY routing: X first, then Y.
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {2, 3}}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if _, err := m.Route(Coord{0, 0}, Coord{9, 9}); err == nil {
		t.Fatal("route outside mesh accepted")
	}
}

// Property: every XY route is a connected path of unit steps with
// exactly Hops()+1 nodes, all inside the mesh.
func TestRouteProperty(t *testing.T) {
	m, _ := newMesh(t, 5, 5, false)
	f := func(sx, sy, dx, dy uint8) bool {
		src := Coord{int(sx % 5), int(sy % 5)}
		dst := Coord{int(dx % 5), int(dy % 5)}
		path, err := m.Route(src, dst)
		if err != nil {
			return false
		}
		if len(path) != src.Hops(dst)+1 {
			return false
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		for i := 1; i < len(path); i++ {
			if path[i-1].Hops(path[i]) != 1 || !m.InMesh(path[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendTiming(t *testing.T) {
	m, stats := newMesh(t, 4, 1, false)
	done, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops * 1 cycle router delay + 10 flit cycles = 13.
	if done != 13 {
		t.Fatalf("tail arrival = %d, want 13", done)
	}
	if stats.Get(sim.CtrNoCFlits) != 10 || stats.Get(sim.CtrNoCPackets) != 1 {
		t.Fatal("flit/packet counters wrong")
	}
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 0}, 0); err == nil {
		t.Fatal("zero-flit packet accepted")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	m, _ := newMesh(t, 3, 1, false)
	// Two packets share link (0,0)->(1,0).
	d1, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{2, 0}, Flits: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1-2 { // second must be pushed behind the first's link time
		t.Fatalf("no contention: d1=%d d2=%d", d1, d2)
	}
	// Disjoint paths do not contend.
	m2, _ := newMesh(t, 2, 2, false)
	a, _ := m2.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 8}, 0)
	b, _ := m2.Send(Packet{Src: Coord{0, 1}, Dst: Coord{1, 1}, Flits: 8}, 0)
	if a != b {
		t.Fatalf("disjoint transfers should complete together: %d vs %d", a, b)
	}
}

func meshWithIDs(t *testing.T, peephole bool, ids map[Coord]spad.DomainID) (*Mesh, *sim.Stats) {
	t.Helper()
	m, stats := newMesh(t, 2, 2, peephole)
	m.IDSource = func(c Coord) spad.DomainID { return ids[c] }
	return m, stats
}

func TestPeepholeRejectsCrossDomain(t *testing.T) {
	ids := map[Coord]spad.DomainID{
		{0, 0}: spad.SecureDomain,
		{1, 0}: spad.NonSecure,
		{0, 1}: spad.SecureDomain,
	}
	m, stats := meshWithIDs(t, true, ids)
	// Secure -> non-secure: rejected.
	_, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, SrcID: spad.SecureDomain, Flits: 4}, 0)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("cross-domain packet accepted: %v", err)
	}
	// Non-secure -> secure: also rejected (malicious injection).
	_, err = m.Send(Packet{Src: Coord{1, 0}, Dst: Coord{0, 1}, SrcID: spad.NonSecure, Flits: 4}, 0)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("injection into secure core accepted: %v", err)
	}
	// Secure -> secure: accepted.
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{0, 1}, SrcID: spad.SecureDomain, Flits: 4}, 0); err != nil {
		t.Fatal(err)
	}
	if stats.Get(sim.CtrNoCAuthFail) != 2 || stats.Get(sim.CtrNoCAuthPass) != 1 {
		t.Fatalf("auth counters: fail=%d pass=%d", stats.Get(sim.CtrNoCAuthFail), stats.Get(sim.CtrNoCAuthPass))
	}
}

func TestPeepholeZeroCost(t *testing.T) {
	ids := map[Coord]spad.DomainID{{0, 0}: spad.SecureDomain, {1, 0}: spad.SecureDomain}
	plain, _ := newMesh(t, 2, 1, false)
	auth, _ := meshWithIDs(t, true, ids)
	pkt := Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, SrcID: spad.SecureDomain, Flits: 64}
	d1, err := plain.Send(pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := auth.Send(pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("peephole added cycles: %d vs %d", d2, d1)
	}
}

func TestChannelLock(t *testing.T) {
	m, _ := newMesh(t, 3, 1, false)
	dst := Coord{2, 0}
	m.LockChannel(dst, Coord{0, 0})
	// Locked-to source may send.
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: dst, Flits: 2}, 0); err != nil {
		t.Fatal(err)
	}
	// Another source is rejected.
	if _, err := m.Send(Packet{Src: Coord{1, 0}, Dst: dst, Flits: 2}, 0); !errors.Is(err, ErrChannelLocked) {
		t.Fatalf("locked channel accepted foreign packet: %v", err)
	}
	m.UnlockChannel(dst)
	if _, err := m.Send(Packet{Src: Coord{1, 0}, Dst: dst, Flits: 2}, 0); err != nil {
		t.Fatalf("unlocked channel still rejecting: %v", err)
	}
}

func TestFunctionalDelivery(t *testing.T) {
	m, _ := newMesh(t, 2, 1, false)
	payload := []byte("tensor tile data")
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 1, Payload: payload}, 0); err != nil {
		t.Fatal(err)
	}
	pkts := m.Receive(Coord{1, 0})
	if len(pkts) != 1 || string(pkts[0].Payload) != string(payload) {
		t.Fatalf("delivery failed: %v", pkts)
	}
	if len(m.Receive(Coord{1, 0})) != 0 {
		t.Fatal("inbox not drained")
	}
}

func TestRouterControllerProtocol(t *testing.T) {
	ids := map[Coord]spad.DomainID{{0, 0}: spad.SecureDomain, {1, 1}: spad.SecureDomain}
	m, _ := meshWithIDs(t, true, ids)
	rc := NewRouterController(Coord{0, 0}, m)
	if rc.State() != StateIdle {
		t.Fatal("controller not idle initially")
	}
	start, err := rc.BeginSend(Coord{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 {
		t.Fatalf("handshake cost cycles: start=%d", start)
	}
	if rc.State() != StateStreaming {
		t.Fatalf("state = %s after handshake", rc.State())
	}
	// While locked, a third party cannot inject.
	if _, err := m.Send(Packet{Src: Coord{0, 1}, Dst: Coord{1, 1}, SrcID: spad.SecureDomain, Flits: 1}, 5); !errors.Is(err, ErrChannelLocked) {
		t.Fatalf("injection during locked stream: %v", err)
	}
	done, err := rc.Stream(8, nil, start)
	if err != nil {
		t.Fatal(err)
	}
	if done <= start {
		t.Fatal("stream took no time")
	}
	rc.EndSend()
	if rc.State() != StateIdle {
		t.Fatal("controller not idle after EndSend")
	}
	// Channel unlocked now.
	if _, err := m.Send(Packet{Src: Coord{0, 1}, Dst: Coord{1, 1}, SrcID: spad.SecureDomain, Flits: 1}, 20); err != nil {
		t.Fatalf("channel still locked after EndSend: %v", err)
	}
}

func TestRouterControllerRejectsCrossDomainHandshake(t *testing.T) {
	ids := map[Coord]spad.DomainID{{0, 0}: spad.NonSecure, {1, 1}: spad.SecureDomain}
	m, _ := meshWithIDs(t, true, ids)
	rc := NewRouterController(Coord{0, 0}, m)
	if _, err := rc.BeginSend(Coord{1, 1}, 0); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("cross-domain handshake passed: %v", err)
	}
	if rc.State() != StateIdle {
		t.Fatal("failed handshake left controller non-idle")
	}
	// Streaming without a handshake is a protocol violation.
	if _, err := rc.Stream(1, nil, 0); err == nil {
		t.Fatal("stream without handshake accepted")
	}
}

func TestRouterControllerBusyAndBadDst(t *testing.T) {
	m, _ := newMesh(t, 2, 2, false)
	rc := NewRouterController(Coord{0, 0}, m)
	if _, err := rc.BeginSend(Coord{5, 5}, 0); err == nil {
		t.Fatal("out-of-mesh destination accepted")
	}
	if _, err := rc.BeginSend(Coord{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.BeginSend(Coord{1, 0}, 0); err == nil {
		t.Fatal("busy send engine accepted second handshake")
	}
	rc.EndSend()
}

func TestRouterControllerTransfer(t *testing.T) {
	m, _ := newMesh(t, 2, 1, false)
	rc := NewRouterController(Coord{0, 0}, m)
	done, err := rc.Transfer(Coord{1, 0}, 4, []byte("abcd"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 5 { // 1 hop + 4 flits
		t.Fatalf("transfer done = %d, want 5", done)
	}
	if rc.State() != StateIdle {
		t.Fatal("Transfer left controller busy")
	}
	if got := m.Receive(Coord{1, 0}); len(got) != 1 {
		t.Fatal("payload not delivered")
	}
}

func TestRouterStateString(t *testing.T) {
	for s, want := range map[RouterState]string{
		StateIdle: "idle", StatePeephole: "peephole", StateStreaming: "streaming", RouterState(9): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %q", s, s.String())
		}
	}
}
