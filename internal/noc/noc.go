// Package noc models the multi-core NPU's network-on-chip: a 2D mesh
// with XY dimension-order routing, wormhole switching with per-link
// contention, and the paper's peephole authentication extension
// (§IV-B, §V, Fig. 8/12).
//
// Packets carry a head flit (route + identity), body flits (payload),
// and a tail flit. The peephole mechanism authenticates the head
// flit's identity (the source core's ID state) at the destination's
// receive engine: a packet from a secure core is rejected by a
// non-secure destination and vice versa. Authentication rides the
// head flit — zero extra cycles — and a passing authentication locks
// the router channel to the (src,dst) pair until the tail flit.
package noc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/trace"
)

// Coord addresses a node in the mesh.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the XY-routing hop count between two nodes.
func (c Coord) Hops(to Coord) int {
	dx := to.X - c.X
	if dx < 0 {
		dx = -dx
	}
	dy := to.Y - c.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// FlitBytes is the payload of one flit — one scratchpad wordline
// (128 bits) in the Gemmini-style configuration.
const FlitBytes = 16

// ErrAuthFailed is returned when the peephole check rejects a packet.
var ErrAuthFailed = errors.New("noc: peephole authentication failed")

// ErrChannelLocked is returned when a locked receive channel is
// addressed by a different source.
var ErrChannelLocked = errors.New("noc: receive channel locked to another source")

// ErrCorrupt is returned when a packet fails its CRC on every allowed
// retry — the transfer fails closed rather than delivering damage.
var ErrCorrupt = errors.New("noc: packet corrupted beyond retry limit")

// ErrDropped is returned when a packet is lost and cannot be
// retransmitted (no CRC/ACK protocol, or retries exhausted).
var ErrDropped = errors.New("noc: packet dropped")

// ErrLinkDown is returned when no live route exists between two nodes
// after permanent link failures.
var ErrLinkDown = errors.New("noc: no live route (permanent link failure)")

// Packet is one NoC transfer: header identity plus payload flits.
type Packet struct {
	Src, Dst Coord
	// SrcID is the sending core's ID state, stamped into the head flit
	// by the send engine (the peephole identity).
	SrcID spad.DomainID
	// Flits is the number of body flits (scratchpad lines).
	Flits int
	// Payload optionally carries functional data (len <=
	// Flits*FlitBytes); timing-only traffic leaves it nil.
	Payload []byte
}

// Config describes the mesh.
type Config struct {
	Width, Height int
	// RouterDelay is the per-hop head-flit latency in cycles.
	RouterDelay sim.Cycle
	// LinkBytesPerCycle is the per-link bandwidth; one flit per cycle
	// at 16B flits by default.
	LinkBytesPerCycle int
	// Peephole enables authentication; false models the unauthorized
	// baseline NoC.
	Peephole bool
	// CRC enables per-packet CRC at the receive engine plus the
	// NACK/retransmit protocol. Without it corruption flows silently
	// and a dropped packet is simply lost.
	CRC bool
	// RetryLimit bounds retransmissions per packet (CRC mode).
	RetryLimit int
	// NackTimeout is the sender's wait before a retransmission, both
	// for an explicit NACK and for a lost-packet timeout.
	NackTimeout sim.Cycle
}

// DefaultConfig returns the evaluation mesh configuration. CRC
// protection is on: it is timing-invisible until a fault actually
// corrupts or drops a packet.
func DefaultConfig(w, h int, peephole bool) Config {
	return Config{
		Width: w, Height: h,
		RouterDelay:       1,
		LinkBytesPerCycle: FlitBytes,
		Peephole:          peephole,
		CRC:               true,
		RetryLimit:        3,
		NackTimeout:       64,
	}
}

// linkKey identifies a directed link between adjacent nodes.
type linkKey struct {
	from, to Coord
}

// Directed-link direction codes for the dense link index.
const (
	dirEast  = 0 // +X
	dirWest  = 1 // -X
	dirNorth = 2 // +Y
	dirSouth = 3 // -Y
	numDirs  = 4
)

// Mesh is the NoC fabric. Node ID states live with the attached NPU
// cores; the mesh queries them through the IDSource callback so the
// router sees the *current* core state at authentication time.
//
// Links live in a dense slice indexed by (node, direction) rather than
// a map: Send claims every link on the path per packet, and the map
// hash of a two-Coord key dominated the per-flit bookkeeping cost.
type Mesh struct {
	cfg   Config
	links []*sim.Resource // indexed by linkIndex; nil at mesh edges
	dead  []bool          // permanently failed links, same indexing
	stats *sim.Stats
	// Resolved counter handles for the per-packet hot path.
	ctrPackets, ctrFlits, ctrAuthPass, ctrAuthFail *int64
	// IDSource reports the current ID state of the core at a node.
	// The multi-core NPU wires this to its cores; tests may stub it.
	IDSource func(Coord) spad.DomainID
	// locks[dst] is the source a receive channel is locked to, if any.
	locks map[Coord]*Coord
	// Delivered packets per destination, for functional receivers.
	inboxes map[Coord][]Packet

	// Fault state: injector hookup, failed-link count, and a
	// deterministic link ordering for selector-based targeting.
	inj       *fault.Injector
	deadCount int
	linkOrder []linkKey
	// Scratch route buffers reused across Sends (the mesh, like every
	// timed component, is confined to its SoC's single thread).
	pathBuf, altBuf []Coord

	// Observability: pre-resolved instruments, nil unless AttachObserver
	// was called (the off-by-default contract — one nil check per event).
	obsStall *obs.Histogram
	obsRec   *trace.Recorder
	obsProf  *obs.Profiler
}

// linkIndex maps a directed link between adjacent nodes to its slot in
// the dense link slice.
func (m *Mesh) linkIndex(from, to Coord) int {
	dir := dirSouth
	switch {
	case to.X == from.X+1:
		dir = dirEast
	case to.X == from.X-1:
		dir = dirWest
	case to.Y == from.Y+1:
		dir = dirNorth
	}
	return (from.Y*m.cfg.Width+from.X)*numDirs + dir
}

// NewMesh builds the fabric with all links idle.
func NewMesh(cfg Config, stats *sim.Stats) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkBytesPerCycle <= 0 {
		cfg.LinkBytesPerCycle = FlitBytes
	}
	m := &Mesh{
		cfg:      cfg,
		stats:    stats,
		IDSource: func(Coord) spad.DomainID { return spad.NonSecure },
		locks:    make(map[Coord]*Coord),
		inboxes:  make(map[Coord][]Packet),
	}
	if stats != nil {
		m.ctrPackets = stats.Counter(sim.CtrNoCPackets)
		m.ctrFlits = stats.Counter(sim.CtrNoCFlits)
		m.ctrAuthPass = stats.Counter(sim.CtrNoCAuthPass)
		m.ctrAuthFail = stats.Counter(sim.CtrNoCAuthFail)
	}
	m.links = make([]*sim.Resource, cfg.Width*cfg.Height*numDirs)
	m.dead = make([]bool, len(m.links))
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			c := Coord{x, y}
			for _, n := range m.neighbors(c) {
				lk := linkKey{c, n}
				m.links[m.linkIndex(c, n)] = sim.NewResource(fmt.Sprintf("link%v->%v", c, n))
				m.linkOrder = append(m.linkOrder, lk)
			}
		}
	}
	sort.Slice(m.linkOrder, func(i, j int) bool {
		a, b := m.linkOrder[i], m.linkOrder[j]
		if a.from != b.from {
			if a.from.Y != b.from.Y {
				return a.from.Y < b.from.Y
			}
			return a.from.X < b.from.X
		}
		if a.to.Y != b.to.Y {
			return a.to.Y < b.to.Y
		}
		return a.to.X < b.to.X
	})
	return m, nil
}

// AttachInjector points the mesh at a fault injector; corrupt/drop
// events hit in-flight packets, link-down events permanently kill a
// link chosen by the event's selector.
func (m *Mesh) AttachInjector(inj *fault.Injector) { m.inj = inj }

// Reset power-cycles the mesh for arena-style reuse: link timing
// resources return to cycle zero, permanently failed links come back
// up, receive-channel locks and undelivered inbox packets are dropped,
// and any fault injector is detached. Topology (links, ordering) and
// resolved counter handles are construction-time state and survive.
func (m *Mesh) Reset() {
	for _, l := range m.links {
		if l != nil {
			l.Reset()
		}
	}
	clear(m.dead)
	m.deadCount = 0
	clear(m.locks)
	clear(m.inboxes)
	m.inj = nil
}

// AttachObserver wires the mesh into an observability layer: a send
// span per delivered packet, a noc.link.stall_cycles histogram of
// per-attempt contention stalls, and a noc.link.occupancy profiling
// hook sampling the busiest link's claim backlog. Nil detaches.
func (m *Mesh) AttachObserver(o *obs.Observer) {
	if o == nil {
		m.obsStall, m.obsRec, m.obsProf = nil, nil, nil
		return
	}
	m.obsStall = o.Registry().Histogram("noc.link.stall_cycles", obs.DefaultCycleBuckets())
	m.obsRec = o.Trace()
	m.obsProf = o.Profiler()
	m.obsProf.Register("noc.link.occupancy", m.linkBacklog)
}

// linkBacklog reports how many cycles past now the most contended
// link is already claimed — the mesh's instantaneous congestion depth.
func (m *Mesh) linkBacklog(now sim.Cycle) int64 {
	var max sim.Cycle
	for _, l := range m.links {
		if l == nil {
			continue
		}
		if b := l.NextFree() - now; b > max {
			max = b
		}
	}
	return int64(max)
}

// FailLink permanently kills the directed link from->to (and is also
// how injected NoCLinkDown events land). Traffic reroutes around it or
// fails closed if no live path remains.
func (m *Mesh) FailLink(from, to Coord) {
	if !m.InMesh(from) || !m.InMesh(to) || from.Hops(to) != 1 {
		return
	}
	idx := m.linkIndex(from, to)
	if m.links[idx] == nil || m.dead[idx] {
		return
	}
	m.dead[idx] = true
	m.deadCount++
	if m.stats != nil {
		m.stats.Inc(sim.CtrNoCLinksDown)
	}
}

// DeadLinks reports how many directed links have failed.
func (m *Mesh) DeadLinks() int { return m.deadCount }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

func (m *Mesh) neighbors(c Coord) []Coord {
	var out []Coord
	if c.X > 0 {
		out = append(out, Coord{c.X - 1, c.Y})
	}
	if c.X < m.cfg.Width-1 {
		out = append(out, Coord{c.X + 1, c.Y})
	}
	if c.Y > 0 {
		out = append(out, Coord{c.X, c.Y - 1})
	}
	if c.Y < m.cfg.Height-1 {
		out = append(out, Coord{c.X, c.Y + 1})
	}
	return out
}

// InMesh reports whether c is a valid node.
func (m *Mesh) InMesh(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Route computes the XY dimension-order path from src to dst,
// inclusive of both endpoints. The returned slice is owned by the
// caller.
func (m *Mesh) Route(src, dst Coord) ([]Coord, error) {
	path, err := m.route(nil, src, dst, false)
	if err != nil {
		return nil, err
	}
	return path, nil
}

// route computes a dimension-order path into buf (reused when non-nil);
// yFirst selects YX routing (the escape path used around a failed
// link).
func (m *Mesh) route(buf []Coord, src, dst Coord, yFirst bool) ([]Coord, error) {
	if !m.InMesh(src) || !m.InMesh(dst) {
		return nil, fmt.Errorf("noc: route %v->%v leaves the %dx%d mesh", src, dst, m.cfg.Width, m.cfg.Height)
	}
	path := append(buf[:0], src)
	cur := src
	stepX := func() {
		for cur.X != dst.X {
			if cur.X < dst.X {
				cur.X++
			} else {
				cur.X--
			}
			path = append(path, cur)
		}
	}
	stepY := func() {
		for cur.Y != dst.Y {
			if cur.Y < dst.Y {
				cur.Y++
			} else {
				cur.Y--
			}
			path = append(path, cur)
		}
	}
	if yFirst {
		stepY()
		stepX()
	} else {
		stepX()
		stepY()
	}
	return path, nil
}

// pathAlive reports whether every link on the path is functional.
func (m *Mesh) pathAlive(path []Coord) bool {
	for i := 0; i+1 < len(path); i++ {
		if m.dead[m.linkIndex(path[i], path[i+1])] {
			return false
		}
	}
	return true
}

// pickRoute selects the XY path, escaping to YX routing around dead
// links; if both dimension orders are blocked the mesh fails closed.
// The returned slice aliases the mesh's scratch buffers and is valid
// until the next routing call.
func (m *Mesh) pickRoute(src, dst Coord) ([]Coord, error) {
	path, err := m.route(m.pathBuf, src, dst, false)
	if err != nil {
		return nil, err
	}
	m.pathBuf = path
	if m.pathAlive(path) {
		return path, nil
	}
	alt, err := m.route(m.altBuf, src, dst, true)
	if err != nil {
		return nil, err
	}
	m.altBuf = alt
	if m.pathAlive(alt) {
		if m.stats != nil {
			m.stats.Inc(sim.CtrNoCReroutes)
		}
		return alt, nil
	}
	return nil, fmt.Errorf("%w: %v->%v", ErrLinkDown, src, dst)
}

// takeLinkFaults applies any due permanent link-failure events. The
// victim link is chosen deterministically from the event selector over
// the sorted link order.
func (m *Mesh) takeLinkFaults(now sim.Cycle) {
	for {
		ev, ok := m.inj.Take(fault.NoCLinkDown, now)
		if !ok {
			return
		}
		lk := m.linkOrder[ev.Pick(len(m.linkOrder))]
		m.FailLink(lk.from, lk.to)
	}
}

// Send transmits a packet starting no earlier than cycle `at`,
// returning the cycle at which the tail flit arrives at the
// destination. It performs peephole authentication (if enabled) at the
// destination's receive engine before the body streams.
//
// Timing: the head flit traverses hop-by-hop paying RouterDelay per
// hop; body flits stream behind it wormhole-style, so the serialized
// cost is hops*RouterDelay + flits cycles on the bottleneck link.
// Authentication adds zero cycles — it is decided from the head flit
// the receive engine already has.
func (m *Mesh) Send(pkt Packet, at sim.Cycle) (sim.Cycle, error) {
	if pkt.Flits <= 0 {
		return 0, fmt.Errorf("noc: packet with %d flits", pkt.Flits)
	}
	if m.inj.Enabled() {
		m.takeLinkFaults(at)
	}
	path, err := m.pickRoute(pkt.Src, pkt.Dst)
	if err != nil {
		return 0, err
	}
	if m.ctrPackets != nil {
		*m.ctrPackets++
	}
	m.obsProf.MaybeSample(at)

	// Channel lock: once a transfer is authenticated, the receive
	// channel rejects other sources until the tail flit (modeled as
	// until the transfer completes; Send is atomic in virtual time).
	if lockSrc, locked := m.locks[pkt.Dst]; locked && *lockSrc != pkt.Src {
		return 0, fmt.Errorf("%w: dst %v locked to %v", ErrChannelLocked, pkt.Dst, *lockSrc)
	}

	// Peephole authentication at the destination's receive engine.
	if m.cfg.Peephole {
		dstID := m.IDSource(pkt.Dst)
		if dstID != pkt.SrcID {
			if m.ctrAuthFail != nil {
				*m.ctrAuthFail++
			}
			return 0, fmt.Errorf("%w: src %v id=%d, dst %v id=%d",
				ErrAuthFailed, pkt.Src, pkt.SrcID, pkt.Dst, dstID)
		}
		if m.ctrAuthPass != nil {
			*m.ctrAuthPass++
		}
	}

	hops := len(path) - 1
	flitCycles := sim.Cycle(pkt.Flits) * sim.Cycle(FlitBytes/m.cfg.LinkBytesPerCycle)
	if flitCycles < sim.Cycle(pkt.Flits) {
		flitCycles = sim.Cycle(pkt.Flits)
	}
	// Transmit, replaying on a NACK (CRC failure) or lost-packet
	// timeout up to RetryLimit times. Each attempt claims every link on
	// the path for the body duration; the transfer is paced by the most
	// contended link. With no fault due the first attempt lands and the
	// loop body reduces exactly to the fault-free cost model.
	start := at
	for attempt := 0; ; attempt++ {
		reqStart := start
		for i := 0; i+1 < len(path); i++ {
			link := m.links[m.linkIndex(path[i], path[i+1])]
			s := link.Claim(start, flitCycles)
			if s > start {
				start = s
			}
		}
		if m.obsStall != nil {
			m.obsStall.Observe(int64(start - reqStart))
		}
		done := start + sim.Cycle(hops)*m.cfg.RouterDelay + flitCycles
		if m.ctrFlits != nil {
			*m.ctrFlits += int64(pkt.Flits)
		}

		if _, ok := m.inj.Take(fault.NoCDrop, done); ok {
			if m.stats != nil {
				m.stats.Inc(sim.CtrNoCDrops)
			}
			if m.cfg.CRC && attempt < m.cfg.RetryLimit {
				// Sender's ACK watchdog fires and retransmits.
				if m.stats != nil {
					m.stats.Inc(sim.CtrNoCRetries)
				}
				start = done + m.cfg.NackTimeout
				continue
			}
			return 0, fmt.Errorf("%w: %v->%v", ErrDropped, pkt.Src, pkt.Dst)
		}
		if ev, ok := m.inj.Take(fault.NoCCorrupt, done); ok {
			if !m.cfg.CRC {
				// No CRC: the damaged flit is delivered as-is — the
				// silent-corruption baseline.
				if len(pkt.Payload) > 0 {
					corrupted := append([]byte(nil), pkt.Payload...)
					corrupted[ev.Pick(len(corrupted))] ^= 1 << uint(ev.Bit%8)
					pkt.Payload = corrupted
				}
				m.inboxes[pkt.Dst] = append(m.inboxes[pkt.Dst], pkt)
				m.recordSend(pkt, at, done)
				return done, nil
			}
			if m.stats != nil {
				m.stats.Inc(sim.CtrNoCCRCFail)
			}
			if attempt < m.cfg.RetryLimit {
				// Receive engine NACKs; sender retransmits.
				if m.stats != nil {
					m.stats.Inc(sim.CtrNoCRetries)
				}
				start = done + m.cfg.NackTimeout
				continue
			}
			return 0, fmt.Errorf("%w: %v->%v", ErrCorrupt, pkt.Src, pkt.Dst)
		}

		if pkt.Payload != nil {
			m.inboxes[pkt.Dst] = append(m.inboxes[pkt.Dst], pkt)
		}
		m.recordSend(pkt, at, done)
		return done, nil
	}
}

// recordSend puts one delivered packet on the span timeline, tracked
// to the destination node's linear index. The static name keeps the
// per-packet cost allocation-free.
func (m *Mesh) recordSend(pkt Packet, at, done sim.Cycle) {
	if m.obsRec == nil {
		return
	}
	m.obsRec.Record(trace.Event{
		Name:  "noc.send",
		Kind:  trace.KindNoC,
		Core:  pkt.Dst.Y*m.cfg.Width + pkt.Dst.X,
		Start: at,
		End:   done,
	})
}

// LockChannel pins dst's receive channel to src (set after a
// successful authentication when a stream of packets follows).
func (m *Mesh) LockChannel(dst, src Coord) {
	s := src
	m.locks[dst] = &s
}

// UnlockChannel releases dst's receive channel (tail flit processed).
func (m *Mesh) UnlockChannel(dst Coord) {
	delete(m.locks, dst)
}

// Receive drains the functional inbox for a node.
func (m *Mesh) Receive(dst Coord) []Packet {
	pkts := m.inboxes[dst]
	m.inboxes[dst] = nil
	return pkts
}

// LinkUtilization reports the busiest link's utilization over horizon.
func (m *Mesh) LinkUtilization(horizon sim.Cycle) float64 {
	var max float64
	for _, l := range m.links {
		if l == nil {
			continue
		}
		if u := l.Utilization(horizon); u > max {
			max = u
		}
	}
	return max
}
