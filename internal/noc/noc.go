// Package noc models the multi-core NPU's network-on-chip: a 2D mesh
// with XY dimension-order routing, wormhole switching with per-link
// contention, and the paper's peephole authentication extension
// (§IV-B, §V, Fig. 8/12).
//
// Packets carry a head flit (route + identity), body flits (payload),
// and a tail flit. The peephole mechanism authenticates the head
// flit's identity (the source core's ID state) at the destination's
// receive engine: a packet from a secure core is rejected by a
// non-secure destination and vice versa. Authentication rides the
// head flit — zero extra cycles — and a passing authentication locks
// the router channel to the (src,dst) pair until the tail flit.
package noc

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/spad"
)

// Coord addresses a node in the mesh.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the XY-routing hop count between two nodes.
func (c Coord) Hops(to Coord) int {
	dx := to.X - c.X
	if dx < 0 {
		dx = -dx
	}
	dy := to.Y - c.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// FlitBytes is the payload of one flit — one scratchpad wordline
// (128 bits) in the Gemmini-style configuration.
const FlitBytes = 16

// ErrAuthFailed is returned when the peephole check rejects a packet.
var ErrAuthFailed = errors.New("noc: peephole authentication failed")

// ErrChannelLocked is returned when a locked receive channel is
// addressed by a different source.
var ErrChannelLocked = errors.New("noc: receive channel locked to another source")

// Packet is one NoC transfer: header identity plus payload flits.
type Packet struct {
	Src, Dst Coord
	// SrcID is the sending core's ID state, stamped into the head flit
	// by the send engine (the peephole identity).
	SrcID spad.DomainID
	// Flits is the number of body flits (scratchpad lines).
	Flits int
	// Payload optionally carries functional data (len <=
	// Flits*FlitBytes); timing-only traffic leaves it nil.
	Payload []byte
}

// Config describes the mesh.
type Config struct {
	Width, Height int
	// RouterDelay is the per-hop head-flit latency in cycles.
	RouterDelay sim.Cycle
	// LinkBytesPerCycle is the per-link bandwidth; one flit per cycle
	// at 16B flits by default.
	LinkBytesPerCycle int
	// Peephole enables authentication; false models the unauthorized
	// baseline NoC.
	Peephole bool
}

// DefaultConfig returns the evaluation mesh configuration.
func DefaultConfig(w, h int, peephole bool) Config {
	return Config{Width: w, Height: h, RouterDelay: 1, LinkBytesPerCycle: FlitBytes, Peephole: peephole}
}

// linkKey identifies a directed link between adjacent nodes.
type linkKey struct {
	from, to Coord
}

// Mesh is the NoC fabric. Node ID states live with the attached NPU
// cores; the mesh queries them through the IDSource callback so the
// router sees the *current* core state at authentication time.
type Mesh struct {
	cfg   Config
	links map[linkKey]*sim.Resource
	stats *sim.Stats
	// IDSource reports the current ID state of the core at a node.
	// The multi-core NPU wires this to its cores; tests may stub it.
	IDSource func(Coord) spad.DomainID
	// locks[dst] is the source a receive channel is locked to, if any.
	locks map[Coord]*Coord
	// Delivered packets per destination, for functional receivers.
	inboxes map[Coord][]Packet
}

// NewMesh builds the fabric with all links idle.
func NewMesh(cfg Config, stats *sim.Stats) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkBytesPerCycle <= 0 {
		cfg.LinkBytesPerCycle = FlitBytes
	}
	m := &Mesh{
		cfg:      cfg,
		links:    make(map[linkKey]*sim.Resource),
		stats:    stats,
		IDSource: func(Coord) spad.DomainID { return spad.NonSecure },
		locks:    make(map[Coord]*Coord),
		inboxes:  make(map[Coord][]Packet),
	}
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			c := Coord{x, y}
			for _, n := range m.neighbors(c) {
				m.links[linkKey{c, n}] = sim.NewResource(fmt.Sprintf("link%v->%v", c, n))
			}
		}
	}
	return m, nil
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

func (m *Mesh) neighbors(c Coord) []Coord {
	var out []Coord
	if c.X > 0 {
		out = append(out, Coord{c.X - 1, c.Y})
	}
	if c.X < m.cfg.Width-1 {
		out = append(out, Coord{c.X + 1, c.Y})
	}
	if c.Y > 0 {
		out = append(out, Coord{c.X, c.Y - 1})
	}
	if c.Y < m.cfg.Height-1 {
		out = append(out, Coord{c.X, c.Y + 1})
	}
	return out
}

// InMesh reports whether c is a valid node.
func (m *Mesh) InMesh(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Route computes the XY dimension-order path from src to dst,
// inclusive of both endpoints.
func (m *Mesh) Route(src, dst Coord) ([]Coord, error) {
	if !m.InMesh(src) || !m.InMesh(dst) {
		return nil, fmt.Errorf("noc: route %v->%v leaves the %dx%d mesh", src, dst, m.cfg.Width, m.cfg.Height)
	}
	path := []Coord{src}
	cur := src
	for cur.X != dst.X {
		if cur.X < dst.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path, nil
}

// Send transmits a packet starting no earlier than cycle `at`,
// returning the cycle at which the tail flit arrives at the
// destination. It performs peephole authentication (if enabled) at the
// destination's receive engine before the body streams.
//
// Timing: the head flit traverses hop-by-hop paying RouterDelay per
// hop; body flits stream behind it wormhole-style, so the serialized
// cost is hops*RouterDelay + flits cycles on the bottleneck link.
// Authentication adds zero cycles — it is decided from the head flit
// the receive engine already has.
func (m *Mesh) Send(pkt Packet, at sim.Cycle) (sim.Cycle, error) {
	path, err := m.Route(pkt.Src, pkt.Dst)
	if err != nil {
		return 0, err
	}
	if pkt.Flits <= 0 {
		return 0, fmt.Errorf("noc: packet with %d flits", pkt.Flits)
	}
	if m.stats != nil {
		m.stats.Inc(sim.CtrNoCPackets)
	}

	// Channel lock: once a transfer is authenticated, the receive
	// channel rejects other sources until the tail flit (modeled as
	// until the transfer completes; Send is atomic in virtual time).
	if lockSrc, locked := m.locks[pkt.Dst]; locked && *lockSrc != pkt.Src {
		return 0, fmt.Errorf("%w: dst %v locked to %v", ErrChannelLocked, pkt.Dst, *lockSrc)
	}

	// Peephole authentication at the destination's receive engine.
	if m.cfg.Peephole {
		dstID := m.IDSource(pkt.Dst)
		if dstID != pkt.SrcID {
			if m.stats != nil {
				m.stats.Inc(sim.CtrNoCAuthFail)
			}
			return 0, fmt.Errorf("%w: src %v id=%d, dst %v id=%d",
				ErrAuthFailed, pkt.Src, pkt.SrcID, pkt.Dst, dstID)
		}
		if m.stats != nil {
			m.stats.Inc(sim.CtrNoCAuthPass)
		}
	}

	hops := len(path) - 1
	flitCycles := sim.Cycle(pkt.Flits) * sim.Cycle(FlitBytes/m.cfg.LinkBytesPerCycle)
	if flitCycles < sim.Cycle(pkt.Flits) {
		flitCycles = sim.Cycle(pkt.Flits)
	}
	// Claim every link on the path for the body duration; the transfer
	// is paced by the most contended link.
	start := at
	for i := 0; i+1 < len(path); i++ {
		link := m.links[linkKey{path[i], path[i+1]}]
		s := link.Claim(start, flitCycles)
		if s > start {
			start = s
		}
	}
	done := start + sim.Cycle(hops)*m.cfg.RouterDelay + flitCycles
	if m.stats != nil {
		m.stats.Add(sim.CtrNoCFlits, int64(pkt.Flits))
	}
	if pkt.Payload != nil {
		m.inboxes[pkt.Dst] = append(m.inboxes[pkt.Dst], pkt)
	}
	return done, nil
}

// LockChannel pins dst's receive channel to src (set after a
// successful authentication when a stream of packets follows).
func (m *Mesh) LockChannel(dst, src Coord) {
	s := src
	m.locks[dst] = &s
}

// UnlockChannel releases dst's receive channel (tail flit processed).
func (m *Mesh) UnlockChannel(dst Coord) {
	delete(m.locks, dst)
}

// Receive drains the functional inbox for a node.
func (m *Mesh) Receive(dst Coord) []Packet {
	pkts := m.inboxes[dst]
	m.inboxes[dst] = nil
	return pkts
}

// LinkUtilization reports the busiest link's utilization over horizon.
func (m *Mesh) LinkUtilization(horizon sim.Cycle) float64 {
	var max float64
	for _, l := range m.links {
		if u := l.Utilization(horizon); u > max {
			max = u
		}
	}
	return max
}
