package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Multicast: one packet delivered to several destinations as a tree.
// Links shared by multiple destinations' XY paths carry the body flits
// once — the fabric forks the stream at branch routers — so an
// all-gather among neighboring cores costs far less than repeated
// unicasts. This is an extension beyond the paper's unicast peephole
// protocol; authentication stays per-destination and the whole
// multicast fails closed if ANY destination rejects the identity (a
// partially-delivered secure stream would be a protocol hole).

// Multicast sends pkt.Flits body flits from pkt.Src to every
// destination in dsts, starting no earlier than `at`. It returns the
// cycle the last destination receives the tail flit.
func (m *Mesh) Multicast(pkt Packet, dsts []Coord, at sim.Cycle) (sim.Cycle, error) {
	if len(dsts) == 0 {
		return 0, fmt.Errorf("noc: multicast with no destinations")
	}
	if pkt.Flits <= 0 {
		return 0, fmt.Errorf("noc: packet with %d flits", pkt.Flits)
	}
	// Authenticate every destination before any flit moves.
	if m.cfg.Peephole {
		for _, dst := range dsts {
			if m.IDSource(dst) != pkt.SrcID {
				if m.stats != nil {
					m.stats.Inc(sim.CtrNoCAuthFail)
				}
				return 0, fmt.Errorf("%w: multicast %v(id=%d) -> %v(id=%d)",
					ErrAuthFailed, pkt.Src, pkt.SrcID, dst, m.IDSource(dst))
			}
		}
		if m.stats != nil {
			m.stats.Add(sim.CtrNoCAuthPass, int64(len(dsts)))
		}
	}
	// Build the multicast tree: the union of the XY paths' links,
	// deduplicated over the dense link index.
	tree := make(map[int]bool)
	maxHops := 0
	for _, dst := range dsts {
		if lock, locked := m.locks[dst]; locked && *lock != pkt.Src {
			return 0, fmt.Errorf("%w: dst %v locked to %v", ErrChannelLocked, dst, *lock)
		}
		path, err := m.route(nil, pkt.Src, dst, false)
		if err != nil {
			return 0, err
		}
		if h := len(path) - 1; h > maxHops {
			maxHops = h
		}
		for i := 0; i+1 < len(path); i++ {
			tree[m.linkIndex(path[i], path[i+1])] = true
		}
	}
	flitCycles := sim.Cycle(pkt.Flits) * sim.Cycle(FlitBytes/m.cfg.LinkBytesPerCycle)
	if flitCycles < sim.Cycle(pkt.Flits) {
		flitCycles = sim.Cycle(pkt.Flits)
	}
	// Claim the tree in two order-independent passes: find the cycle at
	// which every branch link is free, then occupy them all from it.
	// Claiming while folding the running max (the old single pass) let
	// Go's random map-iteration order leak into per-link nextFree state,
	// making later transfers' timing nondeterministic run-to-run.
	start := at
	for idx := range tree {
		if f := m.links[idx].NextFree(); f > start {
			start = f
		}
	}
	for idx := range tree {
		m.links[idx].Claim(start, flitCycles)
	}
	done := start + sim.Cycle(maxHops)*m.cfg.RouterDelay + flitCycles
	if m.stats != nil {
		m.stats.Inc(sim.CtrNoCPackets)
		m.stats.Add(sim.CtrNoCFlits, int64(pkt.Flits))
	}
	if pkt.Payload != nil {
		for _, dst := range dsts {
			m.inboxes[dst] = append(m.inboxes[dst], Packet{
				Src: pkt.Src, Dst: dst, SrcID: pkt.SrcID,
				Flits: pkt.Flits, Payload: pkt.Payload,
			})
		}
	}
	return done, nil
}
