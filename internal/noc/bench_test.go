package noc

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkMeshSend measures the per-packet cost of the NoC hot path:
// route computation, per-link claims, and stats bookkeeping.
func BenchmarkMeshSend(b *testing.B) {
	b.ReportAllocs()
	stats := sim.NewStats()
	m, err := NewMesh(DefaultConfig(4, 4, false), stats)
	if err != nil {
		b.Fatal(err)
	}
	src := Coord{X: 0, Y: 0}
	dst := Coord{X: 3, Y: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Send(Packet{Src: src, Dst: dst, Flits: 8}, sim.Cycle(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeshSendPeephole adds the authentication check to the
// per-packet path.
func BenchmarkMeshSendPeephole(b *testing.B) {
	b.ReportAllocs()
	stats := sim.NewStats()
	m, err := NewMesh(DefaultConfig(4, 4, true), stats)
	if err != nil {
		b.Fatal(err)
	}
	src := Coord{X: 0, Y: 0}
	dst := Coord{X: 2, Y: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Send(Packet{Src: src, Dst: dst, Flits: 4}, sim.Cycle(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticast measures the tree-multicast path used by the
// model-parallel all-gather.
func BenchmarkMulticast(b *testing.B) {
	b.ReportAllocs()
	stats := sim.NewStats()
	m, err := NewMesh(DefaultConfig(2, 2, false), stats)
	if err != nil {
		b.Fatal(err)
	}
	dsts := []Coord{{X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Multicast(Packet{Src: Coord{}, Flits: 8}, dsts, sim.Cycle(i)); err != nil {
			b.Fatal(err)
		}
	}
}
