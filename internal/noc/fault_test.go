package noc

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func faultMesh(t *testing.T, events []fault.Event) (*Mesh, *sim.Stats, *fault.Injector) {
	t.Helper()
	stats := sim.NewStats()
	m, err := NewMesh(DefaultConfig(2, 2, false), stats)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.Plan{Events: events}, stats)
	m.AttachInjector(inj)
	return m, stats, inj
}

func TestCRCRetryRecoversCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0xa5}, 32)
	clean, _, _ := faultMesh(t, nil)
	cleanDone, err := clean.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2, Payload: payload}, 0)
	if err != nil {
		t.Fatal(err)
	}

	m, stats, inj := faultMesh(t, []fault.Event{{At: 0, Kind: fault.NoCCorrupt, Sel: 3, Bit: 6}})
	done, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2, Payload: payload}, 0)
	if err != nil {
		t.Fatalf("CRC retry did not recover: %v", err)
	}
	if done <= cleanDone {
		t.Fatalf("retry was free: %d vs clean %d", done, cleanDone)
	}
	got := m.Receive(Coord{1, 0})
	if len(got) != 1 || !bytes.Equal(got[0].Payload, payload) {
		t.Fatal("recovered payload damaged")
	}
	if stats.Get(sim.CtrNoCCRCFail) != 1 || stats.Get(sim.CtrNoCRetries) != 1 {
		t.Fatalf("counters: crc=%d retries=%d", stats.Get(sim.CtrNoCCRCFail), stats.Get(sim.CtrNoCRetries))
	}
	if inj.Remaining() != 0 {
		t.Fatal("event not consumed")
	}
}

func TestNoCRCDeliversCorruptionSilently(t *testing.T) {
	payload := bytes.Repeat([]byte{0xa5}, 32)
	stats := sim.NewStats()
	cfg := DefaultConfig(2, 2, false)
	cfg.CRC = false
	m, err := NewMesh(cfg, stats)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachInjector(fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.NoCCorrupt, Sel: 3, Bit: 6},
	}}, stats))
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2, Payload: payload}, 0); err != nil {
		t.Fatal(err)
	}
	got := m.Receive(Coord{1, 0})
	if len(got) != 1 || bytes.Equal(got[0].Payload, payload) {
		t.Fatal("payload not corrupted without CRC")
	}
	if stats.Get(sim.CtrNoCRetries) != 0 {
		t.Fatal("retried without CRC")
	}
}

func TestDropRecoversWithinRetryBudget(t *testing.T) {
	m, stats, _ := faultMesh(t, []fault.Event{{At: 0, Kind: fault.NoCDrop}})
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2}, 0); err != nil {
		t.Fatalf("single drop not recovered: %v", err)
	}
	if stats.Get(sim.CtrNoCDrops) != 1 || stats.Get(sim.CtrNoCRetries) != 1 {
		t.Fatalf("counters: drops=%d retries=%d", stats.Get(sim.CtrNoCDrops), stats.Get(sim.CtrNoCRetries))
	}
}

func TestDropsExhaustRetriesFailClosed(t *testing.T) {
	// RetryLimit is 3: four drops exhaust the budget.
	events := make([]fault.Event, 4)
	for i := range events {
		events[i] = fault.Event{At: 0, Kind: fault.NoCDrop}
	}
	m, _, _ := faultMesh(t, events)
	_, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2}, 0)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
}

func TestLinkDownReroutesThenFailsClosed(t *testing.T) {
	m, stats, _ := faultMesh(t, nil)
	// Kill the XY first hop of {0,0}->{1,1}: the X link.
	m.FailLink(Coord{0, 0}, Coord{1, 0})
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 1}, Flits: 2}, 0); err != nil {
		t.Fatalf("YX escape route failed: %v", err)
	}
	if stats.Get(sim.CtrNoCReroutes) != 1 {
		t.Fatalf("reroutes = %d", stats.Get(sim.CtrNoCReroutes))
	}
	// Kill the YX escape too: now the destination is unreachable and
	// the mesh fails closed rather than misrouting.
	m.FailLink(Coord{0, 0}, Coord{0, 1})
	_, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{1, 1}, Flits: 2}, 0)
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if stats.Get(sim.CtrNoCLinksDown) != 2 {
		t.Fatalf("links down = %d", stats.Get(sim.CtrNoCLinksDown))
	}
}

func TestInjectorDrivenLinkFailure(t *testing.T) {
	m, _, inj := faultMesh(t, []fault.Event{{At: 0, Kind: fault.NoCLinkDown, Sel: 2}})
	if m.DeadLinks() != 0 {
		t.Fatal("links dead before any traffic")
	}
	// Any send observes the due event and kills a deterministic link.
	if _, err := m.Send(Packet{Src: Coord{0, 0}, Dst: Coord{0, 1}, Flits: 1}, 0); err != nil && !errors.Is(err, ErrLinkDown) {
		t.Fatal(err)
	}
	if m.DeadLinks() != 1 {
		t.Fatalf("dead links = %d, want 1", m.DeadLinks())
	}
	if inj.Remaining() != 0 {
		t.Fatal("link event not consumed")
	}
}
