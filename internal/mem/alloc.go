package mem

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace reports an allocation that does not fit the remaining
// free spans. Callers that queue work against a full allocator (the
// scheduler's secure-memory admission control) match it with
// errors.Is to distinguish "retry later" from hard rejections.
var ErrNoSpace = errors.New("mem: out of contiguous memory")

// ContigAlloc is a CMA-style contiguous allocator over a physical
// range. The NPU driver uses one of these over the NPU-reserved memory
// region to carve out DMA buffer chunks (the paper's ION/NVMA/PMEM
// analogue); the NPU Monitor's trusted allocator uses a second one
// over secure memory.
//
// It is a first-fit allocator over a sorted free list with coalescing
// on free — simple, deterministic, and sufficient for chunk-granular
// DMA buffers.
type ContigAlloc struct {
	base PhysAddr
	size uint64
	free []span // sorted by base, coalesced
	used map[PhysAddr]uint64
}

type span struct {
	base PhysAddr
	size uint64
}

// NewContigAlloc manages [base, base+size).
func NewContigAlloc(base PhysAddr, size uint64) *ContigAlloc {
	return &ContigAlloc{
		base: base,
		size: size,
		free: []span{{base, size}},
		used: make(map[PhysAddr]uint64),
	}
}

// Base returns the start of the managed range.
func (a *ContigAlloc) Base() PhysAddr { return a.base }

// Size returns the total managed bytes.
func (a *ContigAlloc) Size() uint64 { return a.size }

// Alloc carves a contiguous buffer of the given size, aligned to
// align (which must be a power of two, or zero for byte alignment).
func (a *ContigAlloc) Alloc(size, align uint64) (PhysAddr, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: zero-size allocation")
	}
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: alignment %d is not a power of two", align)
	}
	for i, f := range a.free {
		start := (uint64(f.base) + align - 1) &^ (align - 1)
		pad := start - uint64(f.base)
		if f.size < pad || f.size-pad < size {
			continue
		}
		// Split the free span into [pre][alloc][post].
		var repl []span
		if pad > 0 {
			repl = append(repl, span{f.base, pad})
		}
		if rest := f.size - pad - size; rest > 0 {
			repl = append(repl, span{PhysAddr(start + size), rest})
		}
		a.free = append(a.free[:i], append(repl, a.free[i+1:]...)...)
		a.used[PhysAddr(start)] = size
		return PhysAddr(start), nil
	}
	return 0, fmt.Errorf("%w (want %d bytes, %d free)", ErrNoSpace, size, a.FreeBytes())
}

// Free releases a buffer previously returned by Alloc.
func (a *ContigAlloc) Free(addr PhysAddr) error {
	size, ok := a.used[addr]
	if !ok {
		return fmt.Errorf("mem: free of unallocated address %#x", uint64(addr))
	}
	delete(a.used, addr)
	a.free = append(a.free, span{addr, size})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].base < a.free[j].base })
	// Coalesce adjacent spans.
	out := a.free[:0]
	for _, s := range a.free {
		if n := len(out); n > 0 && out[n-1].base+PhysAddr(out[n-1].size) == s.base {
			out[n-1].size += s.size
		} else {
			out = append(out, s)
		}
	}
	a.free = out
	return nil
}

// Reset returns the allocator to its freshly constructed state: every
// live allocation is discarded and the full range becomes one free
// span. Used when a pooled System is recycled — the driver's and
// monitor's allocators restart with deterministic (empty) occupancy so
// a reused instance places chunks at the same addresses a fresh boot
// would.
func (a *ContigAlloc) Reset() {
	a.free = a.free[:0]
	a.free = append(a.free, span{a.base, a.size})
	clear(a.used)
}

// FreeBytes reports the total unallocated bytes.
func (a *ContigAlloc) FreeBytes() uint64 {
	var total uint64
	for _, f := range a.free {
		total += f.size
	}
	return total
}

// UsedBytes reports the total allocated bytes.
func (a *ContigAlloc) UsedBytes() uint64 { return a.size - a.FreeBytes() }

// LargestFree reports the largest contiguous free span (a
// fragmentation indicator).
func (a *ContigAlloc) LargestFree() uint64 {
	var max uint64
	for _, f := range a.free {
		if f.size > max {
			max = f.size
		}
	}
	return max
}

// Allocations returns the live (addr, size) pairs sorted by address.
func (a *ContigAlloc) Allocations() []Region {
	out := make([]Region, 0, len(a.used))
	for addr, size := range a.used {
		out = append(out, Region{Base: addr, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// SlotAlloc is the NPU Monitor's trusted allocator: fixed-size slots
// (typically scratchpad-sized) carved from secure memory. Fixed slots
// make the security-relevant overlap check trivial and allocation O(1)
// — matching the paper's "efficiently allocate memory slots of
// specific sizes" description.
type SlotAlloc struct {
	base     PhysAddr
	slotSize uint64
	slots    int
	inUse    []bool
	nextHint int
}

// NewSlotAlloc manages `slots` consecutive slots of slotSize bytes
// starting at base.
func NewSlotAlloc(base PhysAddr, slotSize uint64, slots int) *SlotAlloc {
	return &SlotAlloc{base: base, slotSize: slotSize, slots: slots, inUse: make([]bool, slots)}
}

// SlotSize returns the fixed slot size in bytes.
func (s *SlotAlloc) SlotSize() uint64 { return s.slotSize }

// Alloc claims one free slot and returns its base address.
func (s *SlotAlloc) Alloc() (PhysAddr, error) {
	for i := 0; i < s.slots; i++ {
		idx := (s.nextHint + i) % s.slots
		if !s.inUse[idx] {
			s.inUse[idx] = true
			s.nextHint = idx + 1
			return s.base + PhysAddr(uint64(idx)*s.slotSize), nil
		}
	}
	return 0, fmt.Errorf("mem: no free slots (%d total)", s.slots)
}

// Free releases a slot by its base address.
func (s *SlotAlloc) Free(addr PhysAddr) error {
	off := uint64(addr - s.base)
	if addr < s.base || off%s.slotSize != 0 || off/s.slotSize >= uint64(s.slots) {
		return fmt.Errorf("mem: %#x is not a slot base", uint64(addr))
	}
	idx := int(off / s.slotSize)
	if !s.inUse[idx] {
		return fmt.Errorf("mem: double free of slot %d", idx)
	}
	s.inUse[idx] = false
	return nil
}

// Reset releases every slot and restores the first-fit scan origin, so
// a recycled monitor allocates the same slot sequence as a fresh one.
func (s *SlotAlloc) Reset() {
	clear(s.inUse)
	s.nextHint = 0
}

// InUse reports the number of allocated slots.
func (s *SlotAlloc) InUse() int {
	n := 0
	for _, u := range s.inUse {
		if u {
			n++
		}
	}
	return n
}
