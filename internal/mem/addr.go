// Package mem models the SoC's physical memory system: a sparse
// physical memory backing store, a region map splitting DRAM into
// normal-world and secure-world areas (the two-world split of the
// paper's §II TEE background), permission checks, and the two
// allocators the NPU software stack uses — a CMA-style contiguous
// allocator for NPU-reserved memory and a slot allocator used by the
// trusted world.
package mem

import "fmt"

// PhysAddr is a physical byte address in the SoC address space.
type PhysAddr uint64

// VirtAddr is an NPU-visible virtual (IOVA) byte address.
type VirtAddr uint64

// World identifies the TrustZone-style hardware partition an access
// originates from or a region belongs to.
type World uint8

const (
	// Normal is the untrusted world: OS, driver, non-secure tasks.
	Normal World = iota
	// Secure is the trusted world: monitor, TEE OS, secure tasks.
	Secure
)

func (w World) String() string {
	switch w {
	case Normal:
		return "normal"
	case Secure:
		return "secure"
	default:
		return fmt.Sprintf("world(%d)", uint8(w))
	}
}

// Perm is a read/write permission bitmask.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
)

// PermRW is the common read+write mask.
const PermRW = PermRead | PermWrite

func (p Perm) String() string {
	s := [2]byte{'-', '-'}
	if p&PermRead != 0 {
		s[0] = 'r'
	}
	if p&PermWrite != 0 {
		s[1] = 'w'
	}
	return string(s[:])
}

// Has reports whether p grants every bit in need.
func (p Perm) Has(need Perm) bool { return p&need == need }

// PageSize is the translation granule used by the IOMMU substrate.
const PageSize = 4096

// PageAlignDown rounds a down to a page boundary.
func PageAlignDown(a PhysAddr) PhysAddr { return a &^ (PageSize - 1) }

// PageAlignUp rounds a up to a page boundary.
func PageAlignUp(a PhysAddr) PhysAddr {
	return (a + PageSize - 1) &^ (PageSize - 1)
}
