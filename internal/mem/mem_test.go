package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionOverlapRejected(t *testing.T) {
	m := NewPhysical()
	if err := m.AddRegion(Region{Name: "a", Base: 0x1000, Size: 0x1000, Owner: Normal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "b", Base: 0x1800, Size: 0x1000, Owner: Normal}); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := m.AddRegion(Region{Name: "c", Base: 0x2000, Size: 0x1000, Owner: Normal}); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
}

func TestRegionZeroSizeAndWrapRejected(t *testing.T) {
	m := NewPhysical()
	if err := m.AddRegion(Region{Name: "z", Base: 0, Size: 0}); err == nil {
		t.Fatal("zero-size region accepted")
	}
	if err := m.AddRegion(Region{Name: "w", Base: ^PhysAddr(0) - 10, Size: 100}); err == nil {
		t.Fatal("wrapping region accepted")
	}
}

func newTestMem(t *testing.T) *Physical {
	t.Helper()
	m := NewPhysical()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddRegion(Region{Name: "normal", Base: 0x8000_0000, Size: 0x1000_0000, Owner: Normal, CrossPerm: PermRW}))
	must(m.AddRegion(Region{Name: "secure", Base: 0x9000_0000, Size: 0x0800_0000, Owner: Secure}))
	return m
}

func TestCheckAccessWorldPartition(t *testing.T) {
	m := newTestMem(t)
	// Normal world can use normal memory.
	if err := m.CheckAccess(Normal, 0x8000_0000, 64, PermRW); err != nil {
		t.Fatalf("normal->normal denied: %v", err)
	}
	// Normal world cannot touch secure memory.
	if err := m.CheckAccess(Normal, 0x9000_0000, 64, PermRead); err == nil {
		t.Fatal("normal->secure read allowed")
	}
	// Secure world can touch both (normal region grants CrossPerm RW).
	if err := m.CheckAccess(Secure, 0x9000_0000, 64, PermRW); err != nil {
		t.Fatalf("secure->secure denied: %v", err)
	}
	if err := m.CheckAccess(Secure, 0x8000_0000, 64, PermRW); err != nil {
		t.Fatalf("secure->normal denied: %v", err)
	}
	// Unmapped space is denied for everyone.
	if err := m.CheckAccess(Secure, 0x100, 4, PermRead); err == nil {
		t.Fatal("unmapped access allowed")
	}
}

func TestCheckAccessSpansRegionBoundary(t *testing.T) {
	m := NewPhysical()
	if err := m.AddRegion(Region{Name: "lo", Base: 0x1000, Size: 0x1000, Owner: Normal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "hi", Base: 0x2000, Size: 0x1000, Owner: Secure}); err != nil {
		t.Fatal(err)
	}
	// A normal-world access crossing from its own region into a secure
	// region must be denied even though it starts legally.
	if err := m.CheckAccess(Normal, 0x1800, 0x1000, PermRead); err == nil {
		t.Fatal("access crossing into secure region allowed")
	}
	// Adjacent same-owner regions should pass a spanning check.
	if err := m.AddRegion(Region{Name: "hi2", Base: 0x3000, Size: 0x1000, Owner: Secure}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckAccess(Secure, 0x2800, 0x1000, PermRead); err != nil {
		t.Fatalf("secure spanning access denied: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewPhysical()
	data := []byte("the quick brown fox jumps over the lazy dog")
	// Straddle a page boundary on purpose.
	addr := PhysAddr(PageSize - 10)
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	m := NewPhysical()
	buf := []byte{1, 2, 3, 4}
	m.Read(0x5000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten memory read nonzero: %v", buf)
		}
	}
}

func TestU64RoundTrip(t *testing.T) {
	m := NewPhysical()
	m.WriteU64(PageSize-3, 0xdeadbeefcafebabe)
	if got := m.ReadU64(PageSize - 3); got != 0xdeadbeefcafebabe {
		t.Fatalf("u64 round trip = %#x", got)
	}
}

func TestZero(t *testing.T) {
	m := NewPhysical()
	m.Write(100, bytes.Repeat([]byte{0xff}, 3*PageSize))
	m.Zero(100, 3*PageSize)
	buf := make([]byte, 3*PageSize)
	m.Read(100, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("Zero left nonzero bytes")
		}
	}
}

func TestPageAlign(t *testing.T) {
	if PageAlignDown(PageSize+1) != PageSize {
		t.Fatal("PageAlignDown")
	}
	if PageAlignUp(PageSize+1) != 2*PageSize {
		t.Fatal("PageAlignUp")
	}
	if PageAlignUp(PageSize) != PageSize {
		t.Fatal("PageAlignUp exact")
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw" || PermRead.String() != "r-" || Perm(0).String() != "--" {
		t.Fatal("Perm formatting")
	}
}

func TestContigAllocBasic(t *testing.T) {
	a := NewContigAlloc(0x1000, 0x10000)
	p1, err := a.Alloc(0x100, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p1)%0x100 != 0 {
		t.Fatalf("misaligned allocation %#x", uint64(p1))
	}
	p2, err := a.Alloc(0x100, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping allocations")
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != 0x10000 {
		t.Fatalf("free bytes = %#x after freeing everything", a.FreeBytes())
	}
	if a.LargestFree() != 0x10000 {
		t.Fatal("free spans not coalesced")
	}
}

func TestContigAllocExhaustion(t *testing.T) {
	a := NewContigAlloc(0, 0x1000)
	if _, err := a.Alloc(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1, 1); err == nil {
		t.Fatal("allocation from exhausted pool succeeded")
	}
}

func TestContigAllocBadArgs(t *testing.T) {
	a := NewContigAlloc(0, 0x1000)
	if _, err := a.Alloc(0, 1); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if _, err := a.Alloc(16, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if err := a.Free(0x999); err == nil {
		t.Fatal("free of unallocated address accepted")
	}
}

// Property: under random alloc/free sequences, live allocations never
// overlap, stay in range, and byte accounting holds.
func TestContigAllocInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewContigAlloc(0x4000, 1<<16)
		var live []PhysAddr
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				if a.Free(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(rng.Intn(2048) + 1)
			align := uint64(1) << uint(rng.Intn(8))
			p, err := a.Alloc(size, align)
			if err != nil {
				continue // pool full is fine
			}
			if uint64(p)%align != 0 {
				return false
			}
			live = append(live, p)
		}
		allocs := a.Allocations()
		var used uint64
		for i, r := range allocs {
			used += r.Size
			if uint64(r.Base) < 0x4000 || uint64(r.Base)+r.Size > 0x4000+1<<16 {
				return false
			}
			if i > 0 && allocs[i-1].End() > r.Base {
				return false // overlap
			}
		}
		return used == a.UsedBytes() && used+a.FreeBytes() == 1<<16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotAlloc(t *testing.T) {
	s := NewSlotAlloc(0x9000_0000, 256<<10, 4)
	seen := map[PhysAddr]bool{}
	for i := 0; i < 4; i++ {
		p, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatal("slot returned twice")
		}
		seen[p] = true
		if (uint64(p)-0x9000_0000)%(256<<10) != 0 {
			t.Fatalf("slot %#x not slot-aligned", uint64(p))
		}
	}
	if _, err := s.Alloc(); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if s.InUse() != 4 {
		t.Fatalf("in use = %d", s.InUse())
	}
	var first PhysAddr = 0x9000_0000
	if err := s.Free(first); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(first); err == nil {
		t.Fatal("double free accepted")
	}
	if err := s.Free(first + 1); err == nil {
		t.Fatal("unaligned free accepted")
	}
	if _, err := s.Alloc(); err != nil {
		t.Fatalf("re-allocation after free failed: %v", err)
	}
}
