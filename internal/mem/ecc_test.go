package mem

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// Every single-bit data flip must decode as corrected, restoring the
// original word.
func TestECCCorrectsEverySingleBitFlip(t *testing.T) {
	words := []uint64{0, ^uint64(0), 0xdeadbeef_cafef00d, 1}
	for _, w := range words {
		check := ECCEncode(w)
		for bit := 0; bit < 64; bit++ {
			got, status := ECCDecode(w^1<<uint(bit), check)
			if status != ECCCorrected {
				t.Fatalf("word %#x bit %d: status %v", w, bit, status)
			}
			if got != w {
				t.Fatalf("word %#x bit %d: corrected to %#x", w, bit, got)
			}
		}
	}
}

// Every double-bit data flip must be detected, never miscorrected.
func TestECCDetectsDoubleBitFlips(t *testing.T) {
	w := uint64(0x0123_4567_89ab_cdef)
	check := ECCEncode(w)
	for a := 0; a < 64; a += 7 {
		for b := a + 1; b < 64; b += 5 {
			_, status := ECCDecode(w^1<<uint(a)^1<<uint(b), check)
			if status != ECCDetected {
				t.Fatalf("bits %d+%d: status %v, want detected", a, b, status)
			}
		}
	}
}

func TestECCCleanWordIsOK(t *testing.T) {
	w := uint64(0x55aa_55aa_55aa_55aa)
	if got, status := ECCDecode(w, ECCEncode(w)); status != ECCOK || got != w {
		t.Fatalf("clean word: got %#x status %v", got, status)
	}
}

func TestScrubCorrectsSingleFlip(t *testing.T) {
	m := NewPhysical()
	stats := sim.NewStats()
	m.EnableECC(stats)
	const addr PhysAddr = 0x8000_0000
	m.WriteU64(addr, 0x1111_2222_3333_4444)

	m.InjectBitFlip(addr, 17)
	if m.ReadU64(addr) == 0x1111_2222_3333_4444 {
		t.Fatal("flip did not land")
	}
	if m.CorruptedWords() != 1 {
		t.Fatalf("corrupted words = %d", m.CorruptedWords())
	}
	corrected, err := m.Scrub(addr, 8)
	if err != nil || corrected != 1 {
		t.Fatalf("scrub: corrected=%d err=%v", corrected, err)
	}
	if got := m.ReadU64(addr); got != 0x1111_2222_3333_4444 {
		t.Fatalf("word after scrub = %#x", got)
	}
	if m.CorruptedWords() != 0 {
		t.Fatal("fault tracking not cleared after correction")
	}
	if stats.Get(sim.CtrECCCorrected) != 1 {
		t.Fatalf("%s = %d", sim.CtrECCCorrected, stats.Get(sim.CtrECCCorrected))
	}
}

func TestScrubFailsClosedOnDoubleFlip(t *testing.T) {
	m := NewPhysical()
	stats := sim.NewStats()
	m.EnableECC(stats)
	const addr PhysAddr = 0x8000_1000
	m.WriteU64(addr, 0xfeed_face_dead_beef)

	m.InjectBitFlip(addr, 3)
	m.InjectBitFlip(addr, 40)
	_, err := m.Scrub(addr, 8)
	var eccErr *ECCError
	if !errors.As(err, &eccErr) {
		t.Fatalf("scrub err = %v, want ECCError", err)
	}
	if eccErr.Addr != addr {
		t.Fatalf("error addr = %#x", uint64(eccErr.Addr))
	}
	if stats.Get(sim.CtrECCUncorrectable) != 1 {
		t.Fatal("uncorrectable not counted")
	}
}

// A full overwrite of a damaged word replaces it with fresh data; the
// fault entry must not survive to fail a later scrub.
func TestWriteClearsInjectedDamage(t *testing.T) {
	m := NewPhysical()
	m.EnableECC(sim.NewStats())
	const addr PhysAddr = 0x8000_2000
	m.WriteU64(addr, 7)
	m.InjectBitFlip(addr, 0)
	m.InjectBitFlip(addr, 1) // would be uncorrectable
	m.WriteU64(addr, 9)      // writer replaces the word
	if m.CorruptedWords() != 0 {
		t.Fatal("overwrite left fault tracking")
	}
	if corrected, err := m.Scrub(addr, 8); err != nil || corrected != 0 {
		t.Fatalf("scrub after overwrite: corrected=%d err=%v", corrected, err)
	}
}

// With ECC disabled the corruption flows silently: the baseline the
// chaos experiment compares against.
func TestScrubWithoutECCIsSilent(t *testing.T) {
	m := NewPhysical()
	const addr PhysAddr = 0x8000_3000
	m.WriteU64(addr, 42)
	m.InjectBitFlip(addr, 5)
	if corrected, err := m.Scrub(addr, 8); err != nil || corrected != 0 {
		t.Fatalf("non-ECC scrub acted: corrected=%d err=%v", corrected, err)
	}
	if m.ReadU64(addr) == 42 {
		t.Fatal("corruption vanished without ECC")
	}
}
