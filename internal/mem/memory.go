package mem

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Region describes a contiguous physical range with an owning world
// and an access-permission mask for the *other* world. Accesses from
// the owning world are always allowed; cross-world accesses must be
// covered by CrossPerm (normally zero for secure regions).
type Region struct {
	Name      string
	Base      PhysAddr
	Size      uint64
	Owner     World
	CrossPerm Perm
}

// End returns the first address past the region.
func (r Region) End() PhysAddr { return r.Base + PhysAddr(r.Size) }

// Contains reports whether [addr, addr+size) lies fully inside r.
func (r Region) Contains(addr PhysAddr, size uint64) bool {
	return addr >= r.Base && addr+PhysAddr(size) <= r.End() && addr+PhysAddr(size) >= addr
}

// AccessError describes a denied physical memory access.
type AccessError struct {
	Addr   PhysAddr
	Size   uint64
	World  World
	Need   Perm
	Reason string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s access [%#x,+%d) by %s world denied: %s",
		e.Need, uint64(e.Addr), e.Size, e.World, e.Reason)
}

// Physical is the SoC's physical memory: a sparse page-granular byte
// store plus a region map used for world-partition checks. The region
// map is the "memory protection engine" of the paper's TCB — the
// hardware that makes TrustZone-style secure memory real.
type Physical struct {
	pages   map[uint64][]byte // page index -> 4KB backing
	regions []Region          // sorted by Base, non-overlapping

	// SECDED ECC state (ecc.go): corrupted-word tracking plus the
	// enable flag. Empty unless a fault plan has injected damage.
	ecc      bool
	eccStats *sim.Stats
	faults   map[PhysAddr]*faultyWord
}

// NewPhysical returns an empty physical memory with no regions.
func NewPhysical() *Physical {
	return &Physical{pages: make(map[uint64][]byte)}
}

// Reset power-cycles the memory for arena-style reuse: every backing
// page is dropped (reads return zero again), injected ECC damage and
// the ECC enable flag are cleared. The region map — the SoC's static
// partition, fixed at boot — is kept, which is exactly what makes a
// pooled reuse cheaper than a rebuild. Dropping pages rather than
// zeroing them keeps reset O(touched pages) and guarantees no prior
// tenant's bytes survive.
func (m *Physical) Reset() {
	clear(m.pages)
	m.ecc = false
	m.eccStats = nil
	m.faults = nil
}

// AddRegion registers a region. Regions must not overlap; overlapping
// registration returns an error.
func (m *Physical) AddRegion(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("mem: region %q has zero size", r.Name)
	}
	if r.Base+PhysAddr(r.Size) < r.Base {
		return fmt.Errorf("mem: region %q wraps the address space", r.Name)
	}
	for _, ex := range m.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return fmt.Errorf("mem: region %q overlaps %q", r.Name, ex.Name)
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// Regions returns a copy of the region map.
func (m *Physical) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// FindRegion returns the region containing addr, if any.
func (m *Physical) FindRegion(addr PhysAddr) (Region, bool) {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End() > addr })
	if i < len(m.regions) && m.regions[i].Contains(addr, 1) {
		return m.regions[i], true
	}
	return Region{}, false
}

// RegionByName returns the named region, if registered.
func (m *Physical) RegionByName(name string) (Region, bool) {
	for _, r := range m.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// CheckAccess verifies that the given world may access [addr,
// addr+size) with permission need. The range must lie within mapped
// regions; cross-world access needs the region's CrossPerm.
func (m *Physical) CheckAccess(world World, addr PhysAddr, size uint64, need Perm) error {
	if size == 0 {
		return nil
	}
	cur := addr
	remaining := size
	for remaining > 0 {
		r, ok := m.FindRegion(cur)
		if !ok {
			return &AccessError{Addr: cur, Size: remaining, World: world, Need: need, Reason: "unmapped"}
		}
		if r.Owner != world && !r.CrossPerm.Has(need) {
			return &AccessError{Addr: cur, Size: remaining, World: world, Need: need,
				Reason: fmt.Sprintf("region %q owned by %s world", r.Name, r.Owner)}
		}
		span := uint64(r.End() - cur)
		if span >= remaining {
			return nil
		}
		cur = r.End()
		remaining -= span
	}
	return nil
}

func (m *Physical) page(idx uint64) []byte {
	p, ok := m.pages[idx]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[idx] = p
	}
	return p
}

// Read copies len(dst) bytes starting at addr into dst. Unwritten
// memory reads as zero. Read does no permission checking: callers are
// hardware models that check via CheckAccess (or a Guarder/IOMMU)
// before touching data.
func (m *Physical) Read(addr PhysAddr, dst []byte) {
	off := uint64(addr)
	for len(dst) > 0 {
		pi := off / PageSize
		po := off % PageSize
		n := copy(dst, m.page(pi)[po:])
		dst = dst[n:]
		off += uint64(n)
	}
}

// Write copies src into memory starting at addr. Fresh data replaces
// any injected damage in fully overwritten words.
func (m *Physical) Write(addr PhysAddr, src []byte) {
	m.clearFaults(addr, uint64(len(src)))
	off := uint64(addr)
	for len(src) > 0 {
		pi := off / PageSize
		po := off % PageSize
		n := copy(m.page(pi)[po:], src)
		src = src[n:]
		off += uint64(n)
	}
}

// ReadU64 reads a little-endian uint64 at addr.
func (m *Physical) ReadU64(addr PhysAddr) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// WriteU64 writes a little-endian uint64 at addr.
func (m *Physical) WriteU64(addr PhysAddr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.Write(addr, b[:])
}

// Zero clears [addr, addr+size).
func (m *Physical) Zero(addr PhysAddr, size uint64) {
	var zeros [PageSize]byte
	for size > 0 {
		n := uint64(PageSize)
		if n > size {
			n = size
		}
		m.Write(addr, zeros[:n])
		addr += PhysAddr(n)
		size -= n
	}
}
