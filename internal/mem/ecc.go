package mem

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// SECDED ECC over 64-bit DRAM words: a (72,64) extended Hamming code —
// seven positional check bits plus one overall parity bit. Single-bit
// errors are corrected in place; double-bit errors are detected and
// fail closed. This is the standard server-DRAM code, and the smallest
// mechanism that turns "a cosmic ray flipped a weight" from silent
// corruption into either a logged correction or a clean abort.
//
// The Physical model does not store check bytes for every word (the
// simulator's corruption source is the fault injector, not the host).
// Instead InjectBitFlip snapshots the word's check byte as the writer
// left it, then damages the data; Scrub later runs the real
// SECDED decode against that stored check byte. Clean words never pay
// anything — the fast path is one map-length test.

// ECCCorrectionCycles is the memory-controller penalty per corrected
// word (the read-modify-write turnaround on the DRAM bus).
const ECCCorrectionCycles sim.Cycle = 8

// eccWordBits is the data word width the code protects.
const eccWordBits = 72 // 64 data + 7 positional check + 1 overall parity

// eccDataPos maps data bit i (0..63) to its codeword position
// (1-based, skipping power-of-two positions, which hold check bits).
var eccDataPos = func() [64]uint {
	var pos [64]uint
	p := uint(1)
	for i := 0; i < 64; i++ {
		p++
		for p&(p-1) == 0 { // skip powers of two
			p++
		}
		pos[i] = p
	}
	return pos
}()

// ECCEncode computes the 8-bit check byte for a 64-bit word: bits 0..6
// are the positional Hamming checks, bit 7 is the overall parity of
// the 71 other codeword bits.
func ECCEncode(word uint64) uint8 {
	var syndrome uint
	ones := 0
	for i := 0; i < 64; i++ {
		if word>>uint(i)&1 == 1 {
			syndrome ^= eccDataPos[i]
			ones++
		}
	}
	check := uint8(syndrome & 0x7f)
	// Overall parity covers data bits and positional check bits.
	parity := uint8(ones&1) ^ uint8(bits.OnesCount8(check)&1)
	return check | parity<<7
}

// ECCStatus classifies a decode.
type ECCStatus int

const (
	// ECCOK: the word is clean.
	ECCOK ECCStatus = iota
	// ECCCorrected: a single-bit error was corrected.
	ECCCorrected
	// ECCDetected: a double-bit error was detected (uncorrectable).
	ECCDetected
)

func (s ECCStatus) String() string {
	switch s {
	case ECCOK:
		return "ok"
	case ECCCorrected:
		return "corrected"
	default:
		return "uncorrectable"
	}
}

// ECCDecode checks a word against its stored check byte and returns
// the (possibly corrected) word and the decode status.
func ECCDecode(word uint64, check uint8) (uint64, ECCStatus) {
	fresh := ECCEncode(word)
	syndrome := uint(fresh^check) & 0x7f
	// Overall parity is recomputed over the received data bits plus the
	// STORED check bits (they sit in the codeword; they are not
	// recomputed on read) and compared to the stored parity bit. Each
	// flipped data bit then toggles the mismatch exactly once, which is
	// what makes odd-vs-even error counts separable.
	received := uint8(bits.OnesCount64(word)&1) ^ uint8(bits.OnesCount8(check&0x7f)&1)
	parityMismatch := received != check>>7
	switch {
	case syndrome == 0 && !parityMismatch:
		return word, ECCOK
	case syndrome == 0 && parityMismatch:
		// The overall parity bit itself flipped; data is intact.
		return word, ECCCorrected
	case parityMismatch:
		// Odd number of flipped bits with a nonzero syndrome: a single
		// error at codeword position `syndrome`. Correct it if it is a
		// data position (a flipped check bit leaves the data intact).
		for i, p := range eccDataPos {
			if p == syndrome {
				return word ^ 1<<uint(i), ECCCorrected
			}
		}
		return word, ECCCorrected // error in a stored check bit
	default:
		// Even number of errors: detectable, not correctable.
		return word, ECCDetected
	}
}

// ECCError reports an uncorrectable (multi-bit) DRAM error. The DMA
// engine fails the request closed when it sees one.
type ECCError struct {
	Addr PhysAddr
}

func (e *ECCError) Error() string {
	return fmt.Sprintf("mem: uncorrectable ECC error at %#x", uint64(e.Addr))
}

// faultyWord tracks a corrupted DRAM word: the check byte as the
// writer left it, so Scrub can run a real SECDED decode later.
type faultyWord struct {
	check uint8
	flips int
}

// EnableECC arms the SECDED model (the memory controller scrubs every
// DMA request through it). Without it, injected bit flips persist
// silently — the non-ECC baseline.
func (m *Physical) EnableECC(stats *sim.Stats) {
	m.ecc = true
	m.eccStats = stats
}

// ECCEnabled reports whether the SECDED path is armed.
func (m *Physical) ECCEnabled() bool { return m.ecc }

// InjectBitFlip flips one bit of the 64-bit word containing addr. The
// first flip of a word snapshots its check byte (the code word the
// writer produced); later flips of the same word accumulate toward an
// uncorrectable error.
func (m *Physical) InjectBitFlip(addr PhysAddr, bit uint8) {
	word := addr &^ 7
	bit %= 64
	if m.faults == nil {
		m.faults = make(map[PhysAddr]*faultyWord)
	}
	fw, ok := m.faults[word]
	if !ok {
		fw = &faultyWord{check: ECCEncode(m.ReadU64(word))}
	}
	fw.flips++
	// The write-back below runs the normal Write path, which drops
	// fault tracking for overwritten words — reinstall the entry after.
	m.WriteU64(word, m.ReadU64(word)^1<<uint(bit))
	m.faults[word] = fw
}

// CorruptedWords reports how many words currently hold injected
// damage.
func (m *Physical) CorruptedWords() int { return len(m.faults) }

// Scrub runs the ECC decode over every corrupted word inside [addr,
// addr+size): single-bit errors are corrected in place and counted;
// an uncorrectable word returns an ECCError (the request must fail
// closed). With ECC disabled Scrub does nothing — the corruption
// flows to the consumer silently. Clean ranges cost one map-length
// check.
func (m *Physical) Scrub(addr PhysAddr, size uint64) (corrected int, err error) {
	if len(m.faults) == 0 || size == 0 {
		return 0, nil
	}
	if !m.ecc {
		return 0, nil
	}
	lo := addr &^ 7
	hi := (addr + PhysAddr(size) + 7) &^ 7
	var hit []PhysAddr
	for w := range m.faults {
		if w >= lo && w < hi {
			hit = append(hit, w)
		}
	}
	sort.Slice(hit, func(i, j int) bool { return hit[i] < hit[j] })
	for _, w := range hit {
		fw := m.faults[w]
		word, status := ECCDecode(m.ReadU64(w), fw.check)
		switch status {
		case ECCDetected:
			if m.eccStats != nil {
				m.eccStats.Inc(sim.CtrECCUncorrectable)
			}
			return corrected, &ECCError{Addr: w}
		case ECCCorrected:
			m.WriteU64(w, word)
			delete(m.faults, w)
			corrected++
			if m.eccStats != nil {
				m.eccStats.Inc(sim.CtrECCCorrected)
			}
		default:
			// The flips cancelled out; the word is clean again.
			delete(m.faults, w)
		}
	}
	return corrected, nil
}

// clearFaults drops fault tracking for words fully overwritten by a
// write (the writer's fresh data replaces the damaged word).
func (m *Physical) clearFaults(addr PhysAddr, size uint64) {
	if len(m.faults) == 0 || size == 0 {
		return
	}
	first := addr &^ 7
	if first < addr {
		first += 8 // partially overwritten word keeps its damage
	}
	for w := first; w+8 <= addr+PhysAddr(size); w += 8 {
		delete(m.faults, w)
	}
}
