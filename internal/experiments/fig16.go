package experiments

import (
	"fmt"

	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/xlate"
)

// Fig16Row is one (method, transaction-size) point of the NoC
// micro-test: the latency of moving `Lines` scratchpad lines from one
// core to its neighbor, and the achieved bandwidth.
type Fig16Row struct {
	Method string
	Lines  int
	// Latency is the end-to-end transfer time in cycles.
	Latency sim.Cycle
	// BandwidthBPC is bytes per cycle achieved.
	BandwidthBPC float64
}

// Fig16Result is the whole figure.
type Fig16Result struct {
	Rows []Fig16Row
}

// fig16Sizes are the transaction sizes (scratchpad lines).
var fig16Sizes = []int{1, 4, 16, 64, 256, 1024}

// Fig16 measures core(0,0) -> core(1,0) transfers under three
// methods: the software NoC (dedicated shared memory: store + reload
// through DRAM), the unauthorized direct NoC, and the peephole NoC.
// The software-NoC numbers assume the ideal case — the NPU is the only
// DRAM client — matching the paper's micro-test setup.
func Fig16(cfg npu.Config) (*Fig16Result, error) {
	cells, err := mapCells(fig16Sizes, func(lines int) ([]Fig16Row, error) {
		var rows []Fig16Row
		bytes := uint64(lines * cfg.SpadLineBytes)

		// Software NoC: producer mvout + consumer mvin on an idle DRAM
		// channel.
		{
			stats := sim.NewStats()
			RecordSoCStats(stats)
			channel := sim.NewResource("dram")
			eng := dma.New(cfg.DMAConfig(), xlate.NewIdentity(stats), channel, mem.NewPhysical(), stats)
			storeDone, err := eng.Do(dma.Request{VA: 0x8000_0000, Bytes: bytes, Dir: dma.ToMemory}, nil, spad.NonSecure, 0)
			if err != nil {
				return nil, err
			}
			loadDone, err := eng.Do(dma.Request{VA: 0x8000_0000, Bytes: bytes, Dir: dma.ToScratchpad}, nil, spad.NonSecure, storeDone)
			if err != nil {
				return nil, err
			}
			rows = append(rows, fig16Row("software-noc", lines, loadDone, bytes))
		}

		// Direct NoC, unauthorized and peephole.
		for _, method := range []struct {
			name     string
			peephole bool
		}{{"unauthorized-noc", false}, {"peephole-noc", true}} {
			stats := sim.NewStats()
			RecordSoCStats(stats)
			mesh, err := noc.NewMesh(noc.DefaultConfig(2, 1, method.peephole), stats)
			if err != nil {
				return nil, err
			}
			src := noc.NewRouterController(noc.Coord{X: 0, Y: 0}, mesh)
			done, err := src.Transfer(noc.Coord{X: 1, Y: 0}, lines, nil, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, fig16Row(method.name, lines, done, bytes))
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{}
	for _, rows := range cells {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

func fig16Row(method string, lines int, latency sim.Cycle, bytes uint64) Fig16Row {
	bw := 0.0
	if latency > 0 {
		bw = float64(bytes) / float64(latency)
	}
	return Fig16Row{Method: method, Lines: lines, Latency: latency, BandwidthBPC: bw}
}

// TableString renders the figure.
func (f *Fig16Result) TableString() string {
	header := []string{"method", "lines", "latency-cycles", "bandwidth-B/cycle"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Method, fmt.Sprintf("%d", r.Lines),
			fmt.Sprintf("%d", r.Latency), fmt.Sprintf("%.2f", r.BandwidthBPC),
		})
	}
	return Table(header, rows)
}
