package experiments

import (
	"strings"
	"testing"

	"repro/internal/hwcost"
	"repro/internal/npu"
	"repro/internal/workload"
)

// fastModels is a reduced model set for the heavier harnesses so the
// unit-test suite stays quick; the bench harness runs all six.
func fastModels(t *testing.T) []workload.Workload {
	t.Helper()
	var out []workload.Workload
	for _, name := range []string{"alexnet", "yololite"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func TestNewSoCBootsSecure(t *testing.T) {
	soc, err := NewSoC(npu.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !soc.Machine.Secured() {
		t.Fatal("SoC not secure-booted")
	}
	if len(soc.NPU.Cores()) != 10 {
		t.Fatalf("cores = %d", len(soc.NPU.Cores()))
	}
}

func TestFig1UtilizationUnderHalf(t *testing.T) {
	res, err := Fig1(fastModels(t), npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Utilization <= 0 || r.Utilization >= 1 {
			t.Fatalf("%s utilization = %.2f out of (0,1)", r.Model, r.Utilization)
		}
	}
	// The paper's claim: most workloads use < 50% of the compute.
	// AlexNet (FC-heavy, memory bound) must be far under half.
	for _, r := range res.Rows {
		if r.Model == "alexnet" && r.Utilization > 0.5 {
			t.Fatalf("alexnet utilization %.2f, want < 0.5", r.Utilization)
		}
	}
	if !strings.Contains(res.TableString(), "alexnet") {
		t.Fatal("table rendering broken")
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(fastModels(t), npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMech := map[string]map[string]Fig13Row{}
	for _, r := range res.Rows {
		if byMech[r.Model] == nil {
			byMech[r.Model] = map[string]Fig13Row{}
		}
		byMech[r.Model][r.Mechanism] = r
	}
	for model, rows := range byMech {
		// Guarder: zero slowdown vs the unprotected baseline.
		if g := rows["guarder"]; g.Cycles != rows["none"].Cycles {
			t.Errorf("%s: guarder %d cycles vs baseline %d — not zero-cost", model, g.Cycles, rows["none"].Cycles)
		}
		// IOMMU always slower than baseline; fewer entries never faster.
		if rows["iotlb-4"].Cycles <= rows["none"].Cycles {
			t.Errorf("%s: iotlb-4 not slower than baseline", model)
		}
		if rows["iotlb-4"].Cycles < rows["iotlb-32"].Cycles {
			t.Errorf("%s: iotlb-4 faster than iotlb-32", model)
		}
		// The paper's magnitude band: a visible hit (>=2%) for 4
		// entries, bounded (<35%) overall.
		if s := rows["iotlb-4"].Slowdown(); s < 2 || s > 35 {
			t.Errorf("%s: iotlb-4 slowdown %.1f%% outside [2,35]", model, s)
		}
		// Fig 13(b): Guarder needs a small fraction of the IOMMU's
		// translation requests (paper: ~5%; we accept < 25%).
		g := rows["guarder"]
		if g.RequestsVsIOMMU <= 0 || g.RequestsVsIOMMU > 0.25 {
			t.Errorf("%s: guarder/iommu request ratio %.3f outside (0,0.25]", model, g.RequestsVsIOMMU)
		}
	}
	if !strings.Contains(res.TableA(), "guarder") || !strings.Contains(res.TableB(), "vs-iommu") {
		t.Fatal("table rendering broken")
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(fastModels(t), npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byGran := map[string]map[string]Fig14Row{}
	for _, r := range res.Rows {
		if byGran[r.Model] == nil {
			byGran[r.Model] = map[string]Fig14Row{}
		}
		byGran[r.Model][r.Granularity] = r
	}
	for model, rows := range byGran {
		tile := rows["tile"].Normalized
		layer := rows["layer"].Normalized
		five := rows["5-layers"].Normalized
		if !(tile >= layer && layer >= five && five >= 1.0) {
			t.Errorf("%s: flush ordering broken tile=%.3f layer=%.3f 5l=%.3f", model, tile, layer, five)
		}
		// Tile-granularity flushing is expensive (paper: ~25%).
		if tile < 1.05 {
			t.Errorf("%s: tile flushing only %.1f%% overhead — too cheap", model, (tile-1)*100)
		}
		// Coarse flushing is cheap.
		if five > 1.10 {
			t.Errorf("%s: 5-layer flushing %.1f%% overhead — too expensive", model, (five-1)*100)
		}
	}
	if !strings.Contains(res.TableString(), "flush-granularity") {
		t.Fatal("table rendering broken")
	}
}

func TestFig16Shape(t *testing.T) {
	res, err := Fig16(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]Fig16Row{}
	for _, r := range res.Rows {
		if byKey[r.Method] == nil {
			byKey[r.Method] = map[int]Fig16Row{}
		}
		byKey[r.Method][r.Lines] = r
	}
	for _, lines := range fig16Sizes {
		sw := byKey["software-noc"][lines]
		un := byKey["unauthorized-noc"][lines]
		ph := byKey["peephole-noc"][lines]
		// Peephole costs nothing over the unauthorized NoC.
		if ph.Latency != un.Latency {
			t.Errorf("lines=%d: peephole latency %d != unauthorized %d", lines, ph.Latency, un.Latency)
		}
		// Direct NoC beats shared memory everywhere.
		if un.Latency >= sw.Latency {
			t.Errorf("lines=%d: NoC (%d) not faster than software NoC (%d)", lines, un.Latency, sw.Latency)
		}
	}
	// At large transactions the paper reports roughly 3x bandwidth.
	big := fig16Sizes[len(fig16Sizes)-1]
	ratio := byKey["peephole-noc"][big].BandwidthBPC / byKey["software-noc"][big].BandwidthBPC
	if ratio < 2.0 {
		t.Errorf("large-transfer bandwidth ratio %.2f, want >= 2x", ratio)
	}
	if !strings.Contains(res.TableString(), "software-noc") {
		t.Fatal("table rendering broken")
	}
}

func TestFig17Shape(t *testing.T) {
	res, err := Fig17(fastModels(t), npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]map[string]Fig17Row{}
	for _, r := range res.Rows {
		if byMethod[r.Model] == nil {
			byMethod[r.Model] = map[string]Fig17Row{}
		}
		byMethod[r.Model][r.Method] = r
	}
	for model, rows := range byMethod {
		// Peephole == unauthorized (zero auth cost).
		if rows["peephole-noc"].Cycles != rows["unauthorized-noc"].Cycles {
			t.Errorf("%s: peephole %d != unauthorized %d", model,
				rows["peephole-noc"].Cycles, rows["unauthorized-noc"].Cycles)
		}
		// Software NoC is slower end-to-end.
		if rows["software-noc"].Normalized <= 1.0 {
			t.Errorf("%s: software NoC not slower (%.3f)", model, rows["software-noc"].Normalized)
		}
	}
	if !strings.Contains(res.TableString(), "peephole-noc") {
		t.Fatal("table rendering broken")
	}
}

func TestFig18Shape(t *testing.T) {
	res := Fig18(hwcost.DefaultParams())
	rows := map[string]Fig18Row{}
	for _, r := range res.Rows {
		rows[r.Config] = r
	}
	if r := rows["s_spad"]; r.ExtraRAMPct < 0.3 || r.ExtraRAMPct > 1.5 {
		t.Errorf("s_spad RAM %.2f%%, want ~1%%", r.ExtraRAMPct)
	}
	if r := rows["s_noc"]; r.ExtraLUTPct > 5 || r.ExtraFFPct > 5 {
		t.Errorf("full sNPU logic overhead too big: %+v", r)
	}
	if rows["trustzone_iommu"].ExtraLUTPct <= rows["s_noc"].ExtraLUTPct {
		t.Error("IOMMU LUTs not above sNPU total")
	}
	if !strings.Contains(res.TableString(), "s_spad") {
		t.Fatal("table rendering broken")
	}
}

func TestTCBSmall(t *testing.T) {
	res, err := TCB()
	if err != nil {
		t.Fatal(err)
	}
	trusted, untrusted := res.Totals()
	if trusted == 0 || untrusted == 0 {
		t.Fatalf("totals: trusted=%d untrusted=%d", trusted, untrusted)
	}
	// The paper's point: the monitor TCB is a small fraction of the
	// NPU software stack.
	if trusted >= untrusted/2 {
		t.Errorf("TCB %d LoC not small vs untrusted %d LoC", trusted, untrusted)
	}
	if !strings.Contains(res.TableString(), "TOTAL-TCB") {
		t.Fatal("table rendering broken")
	}
}

func TestTableRendering(t *testing.T) {
	s := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatal("separator missing")
	}
}
