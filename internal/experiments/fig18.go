package experiments

import (
	"fmt"

	"repro/internal/hwcost"
)

// Fig18Row is one configuration's additional FPGA resources over the
// baseline NPU tile.
type Fig18Row struct {
	Config      string
	ExtraLUTPct float64
	ExtraFFPct  float64
	ExtraRAMPct float64
}

// Fig18Result is the whole figure.
type Fig18Result struct {
	Rows []Fig18Row
}

// Fig18 evaluates the analytic hardware-cost model for the paper's
// configurations: S_Reg, S_Spad, S_NoC (cumulative) and the TrustZone
// NPU's IOMMU.
func Fig18(p hwcost.Params) *Fig18Result {
	base := hwcost.Baseline(p)
	res := &Fig18Result{}
	for _, c := range hwcost.Fig18Configs(p) {
		lut, ff, ram := c.Extra.PercentOf(base)
		res.Rows = append(res.Rows, Fig18Row{
			Config: c.Name, ExtraLUTPct: lut, ExtraFFPct: ff, ExtraRAMPct: ram,
		})
	}
	return res
}

// TableString renders the figure.
func (f *Fig18Result) TableString() string {
	header := []string{"config", "extra-LUT%", "extra-FF%", "extra-RAM%"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%.2f", r.ExtraLUTPct),
			fmt.Sprintf("%.2f", r.ExtraFFPct),
			fmt.Sprintf("%.2f", r.ExtraRAMPct),
		})
	}
	return Table(header, rows)
}
