package experiments

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/energy"
	"repro/internal/hwcost"
	"repro/internal/noc"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/workload"
)

// Ablations for the design choices the headline figures take as
// given: IOTLB sizing beyond the paper's 4..32 sweep, the exchange
// transaction size behind Fig. 17, scratchpad budget vs. DMA traffic
// (the mechanism behind Fig. 15), multi-domain ID-bit scaling (§VII),
// the L2's effect on the memory system, and preemption latency (the
// SLA column of Table I, quantified).

// AblationRow is a generic (parameter, value) measurement.
type AblationRow struct {
	Param string
	Value float64
	Unit  string
}

// AblationResult names a sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// TableString renders the sweep.
func (a *AblationResult) TableString() string {
	header := []string{"param", "value", "unit"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{r.Param, fmt.Sprintf("%.3f", r.Value), r.Unit})
	}
	return Table(header, rows)
}

// AblationIOTLBSweep extends Fig. 13(a)'s entry sweep (2..128 entries)
// on one model, reporting the slowdown vs. the unprotected baseline.
func AblationIOTLBSweep(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	base, _, err := RunContended(w, Mechanism{Name: "none"}, cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "iotlb-sweep/" + model}
	rows, err := mapCells([]int{2, 4, 8, 16, 32, 64, 128}, func(entries int) (AblationRow, error) {
		cycles, _, err := RunContended(w, Mechanism{Name: fmt.Sprintf("iotlb-%d", entries), IOTLBEntries: entries}, cfg)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Param: fmt.Sprintf("entries=%d", entries),
			Value: (float64(cycles)/float64(base) - 1) * 100,
			Unit:  "slowdown%",
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationSpadBudget sweeps the scratchpad budget for one model and
// reports the tiler's DRAM traffic — the curve that makes Fig. 15's
// partition sensitivity.
func AblationSpadBudget(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "spad-budget/" + model}
	for _, frac := range []float64{0.125, 0.25, 0.5, 0.75, 1.0} {
		budget := int(float64(cfg.SpadBytes) * frac)
		_, st, err := npu.CompileCached(w, cfg, budget, npu.DefaultLayout)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Param: fmt.Sprintf("budget=%.0f%%", frac*100),
			Value: float64(st.TrafficBytes) / (1 << 20),
			Unit:  "MB-traffic",
		})
	}
	return res, nil
}

// AblationMultiDomain scales the per-line ID tag from 1 bit (two
// domains, the paper's default) to 4 bits (§VII "Multiple Secure
// Domains") and reports the scratchpad RAM overhead.
func AblationMultiDomain() *AblationResult {
	res := &AblationResult{Name: "multi-domain"}
	p := hwcost.DefaultParams()
	base := hwcost.Baseline(p)
	for bits := 1; bits <= 4; bits++ {
		p.IDBits = bits
		_, _, ram := hwcost.SSpad(p).PercentOf(base)
		res.Rows = append(res.Rows, AblationRow{
			Param: fmt.Sprintf("id-bits=%d (%d domains)", bits, 1<<bits),
			Value: ram,
			Unit:  "extra-RAM%",
		})
	}
	return res
}

// AblationL2 compares one model's runtime with the DMA path going
// straight to DRAM (default) vs. through the shared L2 (Table II).
func AblationL2(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "l2/" + model}
	var baseline sim.Cycle
	for _, useL2 := range []bool{false, true} {
		c := cfg
		c.UseL2 = useL2
		cycles, _, err := RunSolo(w, Mechanism{Name: "none"}, c)
		if err != nil {
			return nil, err
		}
		name := "dram-direct"
		if useL2 {
			name = "through-l2"
		}
		if !useL2 {
			baseline = cycles
		}
		res.Rows = append(res.Rows, AblationRow{Param: name, Value: float64(cycles), Unit: "cycles"})
		if useL2 && baseline > 0 {
			res.Rows = append(res.Rows, AblationRow{
				Param: "l2-speedup",
				Value: (float64(baseline)/float64(cycles) - 1) * 100,
				Unit:  "%",
			})
		}
	}
	return res, nil
}

// AblationMulticast compares unicast vs tree-multicast all-gather
// among a 2x2 core block over the transaction-size sweep of Fig. 16.
func AblationMulticast(cfg npu.Config) (*AblationResult, error) {
	res := &AblationResult{Name: "multicast-allgather"}
	dstsOf := func(src noc.Coord, all []noc.Coord) []noc.Coord {
		var out []noc.Coord
		for _, c := range all {
			if c != src {
				out = append(out, c)
			}
		}
		return out
	}
	block := []noc.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}
	for _, lines := range []int{16, 64, 256} {
		uniStats, multiStats := sim.NewStats(), sim.NewStats()
		RecordSoCStats(uniStats)
		RecordSoCStats(multiStats)
		uni, err := noc.NewMesh(noc.DefaultConfig(2, 2, false), uniStats)
		if err != nil {
			return nil, err
		}
		multi, err := noc.NewMesh(noc.DefaultConfig(2, 2, false), multiStats)
		if err != nil {
			return nil, err
		}
		var uniDone, multiDone sim.Cycle
		for _, src := range block {
			for _, dst := range dstsOf(src, block) {
				done, err := uni.Send(noc.Packet{Src: src, Dst: dst, Flits: lines}, 0)
				if err != nil {
					return nil, err
				}
				if done > uniDone {
					uniDone = done
				}
			}
			done, err := multi.Multicast(noc.Packet{Src: src, Flits: lines}, dstsOf(src, block), 0)
			if err != nil {
				return nil, err
			}
			if done > multiDone {
				multiDone = done
			}
		}
		res.Rows = append(res.Rows,
			AblationRow{Param: fmt.Sprintf("unicast lines=%d", lines), Value: float64(uniDone), Unit: "cycles"},
			AblationRow{Param: fmt.Sprintf("multicast lines=%d", lines), Value: float64(multiDone), Unit: "cycles"},
		)
	}
	return res, nil
}

// AblationCheckingEnergy backs Fig. 13(b)'s energy argument with the
// first-order energy model: the access-control energy of a real
// contended run under IOMMU vs Guarder, per model.
func AblationCheckingEnergy(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "checking-energy/" + model}
	costs := energy.DefaultCosts()
	var iommuUJ float64
	for _, mech := range []Mechanism{
		{Name: "iotlb-32", IOTLBEntries: 32},
		{Name: "guarder", Guarder: true},
	} {
		_, stats, err := RunContended(w, mech, cfg)
		if err != nil {
			return nil, err
		}
		b := energy.FromCounters(costs, stats)
		res.Rows = append(res.Rows, AblationRow{
			Param: mech.Name + " checking-energy",
			Value: b.CheckingUJ,
			Unit:  "uJ",
		})
		if mech.IOTLBEntries > 0 {
			iommuUJ = b.CheckingUJ
		} else if iommuUJ > 0 {
			res.Rows = append(res.Rows, AblationRow{
				Param: "guarder-vs-iommu",
				Value: b.CheckingUJ / iommuUJ * 100,
				Unit:  "%",
			})
		}
	}
	return res, nil
}

// AblationBandwidth sweeps the DRAM bandwidth to locate each regime:
// at low bandwidth the models are memory bound (access-control stalls
// hide), at high bandwidth compute bound (Fig. 13's stalls matter even
// less). The knee is where Table II's 16 GB/s sits.
func AblationBandwidth(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "dram-bandwidth/" + model}
	rows, err := mapCells([]uint64{4, 8, 16, 32, 64}, func(bpc uint64) (AblationRow, error) {
		c := cfg
		c.DRAMBytesPerCycle = bpc
		cycles, _, err := RunSolo(w, Mechanism{Name: "none"}, c)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Param: fmt.Sprintf("%d GB/s", bpc),
			Value: float64(cycles),
			Unit:  "cycles",
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationPreemption quantifies Table I's SLA column: preemption
// latency of a secure arrival under each sharing mechanism.
func AblationPreemption(model string, cfg npu.Config) (*AblationResult, error) {
	w, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	soc, err := AcquireSoC(cfg)
	if err != nil {
		return nil, err
	}
	defer soc.Release()
	d := driver.New(cfg, ReservedBase, ReservedSize, soc.Stats)
	low, err := d.Submit(w, 0, false)
	if err != nil {
		return nil, err
	}
	core, err := soc.NPU.Core(0)
	if err != nil {
		return nil, err
	}
	solo, err := d.RunSolo(core, low)
	if err != nil {
		return nil, err
	}
	arrival := solo / 3
	res := &AblationResult{Name: "preemption/" + model}
	for _, c := range []struct {
		name  string
		gran  spad.FlushGranularity
		flush bool
	}{
		{"snpu-tile", spad.FlushNone, false},
		{"flush-tile", spad.FlushPerTile, true},
		{"flush-layer", spad.FlushPerLayer, true},
		{"flush-5layers", spad.FlushPer5Layers, true},
	} {
		soc.NPU.ResetTiming()
		r, err := d.SLAProbe(core, low, c.gran, c.flush, arrival)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Param: c.name,
			Value: float64(r.Latency()),
			Unit:  "cycles-to-preempt",
		})
	}
	return res, nil
}
