package experiments

import (
	"strings"
	"testing"

	"repro/internal/npu"
)

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model pair runs")
	}
	res, err := Fig15(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 groups x 4 policies.
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	worst := map[string]map[string]float64{}
	for _, r := range res.Rows {
		if worst[r.Group] == nil {
			worst[r.Group] = map[string]float64{}
		}
		m := r.Trusted.Normalized
		if r.Untrusted.Normalized > m {
			m = r.Untrusted.Normalized
		}
		worst[r.Group][r.Policy] = m
		// Sharing never beats running alone with the whole scratchpad.
		if r.Trusted.Normalized < 0.999 || r.Untrusted.Normalized < 0.999 {
			t.Errorf("%s/%s: shared run faster than solo (%v / %v)",
				r.Group, r.Policy, r.Trusted.Normalized, r.Untrusted.Normalized)
		}
	}
	// The dynamic policy never loses to any static split on its own
	// objective, in every group.
	for group, policies := range worst {
		dyn := policies["snpu-dynamic"]
		for name, m := range policies {
			if name == "snpu-dynamic" {
				continue
			}
			if dyn > m+1e-9 {
				t.Errorf("%s: dynamic (%.3f) worse than %s (%.3f)", group, dyn, name, m)
			}
		}
	}
	if !strings.Contains(res.TableString(), "snpu-dynamic") {
		t.Fatal("table rendering broken")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model runs")
	}
	res, err := Table1(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table1Row{}
	for _, r := range res.Rows {
		rows[r.Mechanism] = r
	}
	if len(rows) != 4 {
		t.Fatalf("mechanisms = %d", len(rows))
	}
	// Only sNPU combines both sharing modes with high utilization.
	s := rows["snpu"]
	if !s.Temporal || !s.Spatial || s.Utilization != "high" || s.MeasuredOverheadPct != 0 {
		t.Fatalf("snpu row: %+v", s)
	}
	// Fine flushing is expensive, coarse is cheap, partition loses
	// something to dynamic.
	if rows["flush-fine"].MeasuredOverheadPct < 20 {
		t.Fatalf("fine flush overhead %v too low", rows["flush-fine"].MeasuredOverheadPct)
	}
	if rows["flush-coarse"].MeasuredOverheadPct > 5 {
		t.Fatalf("coarse flush overhead %v too high", rows["flush-coarse"].MeasuredOverheadPct)
	}
	if rows["partition"].MeasuredOverheadPct < 0 {
		t.Fatalf("partition overhead negative: %v", rows["partition"].MeasuredOverheadPct)
	}
	if !strings.Contains(res.TableString(), "snpu") {
		t.Fatal("table rendering broken")
	}
}
