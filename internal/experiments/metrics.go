package experiments

import (
	"sync"

	"repro/internal/sim"
)

// Per-experiment metrics collection for snpu-bench's -metrics-dir
// mode: while collection is on, every SoC booted by an experiment
// registers its private counter sink here, and the bench harness
// drains the sinks into one obs.Registry per experiment after the
// cells complete. Registration order depends on the -j worker
// schedule, but the registry sums same-named counters across sinks —
// a commutative reduction — so the exported metrics are byte-identical
// at any worker count (the contract TestMetricsCollectionDeterminism
// pins).
var collect struct {
	mu      sync.Mutex
	enabled bool
	sinks   []*sim.Stats
}

// CollectSoCStats toggles stats-sink collection; enabling also clears
// any sinks left from a previous window. Safe from any goroutine.
func CollectSoCStats(on bool) {
	collect.mu.Lock()
	defer collect.mu.Unlock()
	collect.enabled = on
	collect.sinks = nil
}

// CollectingSoCStats reports whether a collection window is open.
// Pool layers (the SoC pool here, the System pool at the repo root)
// check it to fall back to fresh boots, since collection counts one
// sink per boot.
func CollectingSoCStats() bool {
	collect.mu.Lock()
	defer collect.mu.Unlock()
	return collect.enabled
}

// RecordSoCStats registers one booted SoC's counter sink with the
// collector (no-op while collection is off). Every SoC constructor —
// NewSoC here and snpu.New — calls it, so a collection window sees
// each system an experiment boots.
func RecordSoCStats(s *sim.Stats) {
	if s == nil {
		return
	}
	collect.mu.Lock()
	defer collect.mu.Unlock()
	if collect.enabled {
		collect.sinks = append(collect.sinks, s)
	}
}

// DrainSoCStats returns the sinks collected since the last drain (or
// enable) and clears the list, keeping collection on. The caller must
// only read the sinks after the owning cells finish — the experiment
// functions return only once their worker pool has drained, so calling
// this after an experiment completes is always safe.
func DrainSoCStats() []*sim.Stats {
	collect.mu.Lock()
	defer collect.mu.Unlock()
	out := collect.sinks
	collect.sinks = nil
	return out
}
