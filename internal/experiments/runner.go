package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel experiment runner. Every figure decomposes into independent
// cells — one (experiment, model, config) measurement, each booting its
// own SoC with a private engine and Stats — so cells can run
// concurrently without sharing any mutable state. Determinism is
// preserved structurally: a cell's cycle counts depend only on its own
// inputs, and results land in an index-addressed slice, so the rendered
// tables are byte-identical at any worker count (the contract
// TestParallelDeterminism pins).

// workers is the pool width for runCells; snpu-bench's -j flag sets it.
var workers atomic.Int64

// cellsRun counts every cell executed since process start, for the
// bench snapshot's cells/sec metric.
var cellsRun atomic.Int64

// SetWorkers bounds the concurrent cells per experiment. n < 1 resets
// to the default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the current pool width.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// CellsRun reports the total experiment cells executed by this process.
func CellsRun() int64 { return cellsRun.Load() }

// runCells evaluates fn(0..n-1) on a bounded worker pool and returns
// the results in index order. Workers steal the next unstarted index
// from a shared counter, so an expensive cell never blocks cheap ones
// behind it. All cells run to completion even after a failure; the
// returned error is the lowest-indexed one, matching what a sequential
// loop that finishes every iteration would report.
func runCells[R any](n int, fn func(i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	cellsRun.Add(int64(n))
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Sequential fast path: no goroutines, same code path the
		// differential test compares the parallel pool against.
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// MapIndexed exposes the bounded worker pool to sibling packages whose
// sweeps decompose into independent index-addressed cells (one private
// SoC per cell, results in index order). The root package's resilience
// sweep fans its fault-rate × load grid through it so -j applies there
// too, under the same any-width determinism contract.
func MapIndexed[R any](n int, fn func(i int) (R, error)) ([]R, error) {
	return runCells[R](n, fn)
}

// mapCells is runCells over a typed input slice.
func mapCells[T, R any](items []T, fn func(item T) (R, error)) ([]R, error) {
	return runCells[R](len(items), func(i int) (R, error) {
		return fn(items[i])
	})
}
