package experiments

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/workload"
)

// Fig14Row is one (model, granularity) cell: normalized execution time
// of the measured task when two tasks time-share one core with
// flushing at the given granularity.
type Fig14Row struct {
	Model       string
	Granularity string
	Cycles      sim.Cycle
	// Normalized is runtime relative to ID-isolated sharing (no
	// flush); >1 means the flushing mechanism is slower.
	Normalized float64
}

// Fig14Result is the whole figure.
type Fig14Result struct {
	Rows []Fig14Row
}

// fig14Grans is the comparison set: tile / layer / 5-layer flushing.
var fig14Grans = []spad.FlushGranularity{
	spad.FlushPerTile, spad.FlushPerLayer, spad.FlushPer5Layers,
}

// Fig14 time-shares each model with a companion copy on one core. For
// each granularity it runs the schedule twice — with flushing (the
// TrustZone-NPU strawman) and without (sNPU's ID-isolated sharing,
// which needs no scrubbing at the same switching rate) — and reports
// the flush mechanism's overhead.
func Fig14(models []workload.Workload, cfg npu.Config) (*Fig14Result, error) {
	res := &Fig14Result{}
	run := func(w workload.Workload, gran spad.FlushGranularity, flush bool) (sim.Cycle, error) {
		soc, err := AcquireSoC(cfg)
		if err != nil {
			return 0, err
		}
		defer soc.Release()
		d := driver.New(cfg, ReservedBase, ReservedSize, soc.Stats)
		t1, err := d.Submit(w, 0, true)
		if err != nil {
			return 0, err
		}
		t2, err := d.Submit(w, 0, false)
		if err != nil {
			return 0, err
		}
		core, err := soc.NPU.Core(0)
		if err != nil {
			return 0, err
		}
		r, err := d.RunTimeShared(core, []*driver.Task{t1, t2}, gran, flush)
		if err != nil {
			return 0, err
		}
		return r.Makespan(), nil
	}
	rows, err := runCells(len(models)*len(fig14Grans), func(i int) (Fig14Row, error) {
		w, gran := models[i/len(fig14Grans)], fig14Grans[i%len(fig14Grans)]
		flushed, err := run(w, gran, true)
		if err != nil {
			return Fig14Row{}, fmt.Errorf("fig14 %s/%s: %w", w.Name, gran, err)
		}
		clean, err := run(w, gran, false)
		if err != nil {
			return Fig14Row{}, fmt.Errorf("fig14 %s/%s baseline: %w", w.Name, gran, err)
		}
		return Fig14Row{
			Model:       w.Name,
			Granularity: gran.String(),
			Cycles:      flushed,
			Normalized:  float64(flushed) / float64(clean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// TableString renders the figure.
func (f *Fig14Result) TableString() string {
	header := []string{"model", "flush-granularity", "cycles", "normalized", "overhead%"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Model, r.Granularity,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.3f", r.Normalized),
			fmt.Sprintf("%.1f", (r.Normalized-1)*100),
		})
	}
	return Table(header, rows)
}
