package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// TCBRow is one software component's line count in the §VI-F analysis
// applied to THIS repository: the trusted packages (the NPU Monitor
// and what it directly depends on for security decisions) against the
// untrusted NPU software stack.
type TCBRow struct {
	Component string
	Trusted   bool
	LoC       int
}

// TCBResult is the analysis output.
type TCBResult struct {
	Rows []TCBRow
}

// trustedPackages are this repro's TCB: the monitor itself plus the
// security-decision libraries it links (route verification, the TEE
// privilege gate). Everything else — driver, compiler/tiler, models,
// simulator plumbing — stays untrusted, mirroring the paper's split.
var trustedPackages = map[string]bool{
	"monitor":  true,
	"isolator": true,
	"tee":      true,
}

// TCB counts non-blank, non-comment-only lines of Go (excluding
// tests) per internal package of this repository.
func TCB() (*TCBResult, error) {
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	internal := filepath.Join(root, "internal")
	entries, err := os.ReadDir(internal)
	if err != nil {
		return nil, err
	}
	res := &TCBResult{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		loc, err := countPackageLoC(filepath.Join(internal, e.Name()))
		if err != nil {
			return nil, err
		}
		if loc == 0 {
			continue
		}
		res.Rows = append(res.Rows, TCBRow{
			Component: e.Name(),
			Trusted:   trustedPackages[e.Name()],
			LoC:       loc,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].Trusted != res.Rows[j].Trusted {
			return res.Rows[i].Trusted
		}
		return res.Rows[i].LoC > res.Rows[j].LoC
	})
	return res, nil
}

// Totals reports (trusted, untrusted) LoC.
func (t *TCBResult) Totals() (trusted, untrusted int) {
	for _, r := range t.Rows {
		if r.Trusted {
			trusted += r.LoC
		} else {
			untrusted += r.LoC
		}
	}
	return trusted, untrusted
}

// TableString renders the analysis.
func (t *TCBResult) TableString() string {
	header := []string{"component", "trusted", "loc"}
	var rows [][]string
	for _, r := range t.Rows {
		tr := "no"
		if r.Trusted {
			tr = "YES"
		}
		rows = append(rows, []string{r.Component, tr, fmt.Sprintf("%d", r.LoC)})
	}
	trusted, untrusted := t.Totals()
	rows = append(rows, []string{"TOTAL-TCB", "YES", fmt.Sprintf("%d", trusted)})
	rows = append(rows, []string{"TOTAL-UNTRUSTED", "no", fmt.Sprintf("%d", untrusted)})
	return Table(header, rows)
}

// repoRoot locates the module root from this source file's path.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate source file")
	}
	// file = <root>/internal/experiments/tcb.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// countPackageLoC counts code lines in non-test Go files.
func countPackageLoC(dir string) (int, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, f := range files {
		name := f.Name()
		if f.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := countFileLoC(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func countFileLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	inBlockComment := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlockComment {
			if strings.Contains(line, "*/") {
				inBlockComment = false
			}
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlockComment = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}
