package experiments

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/spad"
	"repro/internal/workload"
)

// Table1Row is one isolation mechanism's qualitative profile
// (Table I), with the quantitative columns backed by measurements from
// the Fig. 14/15 harnesses rather than asserted.
type Table1Row struct {
	Mechanism   string
	Temporal    bool
	Spatial     bool
	Utilization string
	Performance string
	SLA         string
	// MeasuredOverheadPct is the measured cost backing the
	// Performance column (tile-flush slowdown, partition misfit, or
	// sNPU's sharing cost).
	MeasuredOverheadPct float64
}

// Table1Result is the table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 derives the comparison from measured data on one
// representative model (alexnet — the most scratchpad-sensitive):
//   - Partition: supports both sharing modes but wastes capacity; its
//     overhead is the best static split's slowdown vs dynamic.
//   - Coarse flush (5 layers): cheap but cannot preempt quickly (poor
//     SLA).
//   - Fine flush (tile): preempts quickly but pays heavy save/restore.
//   - sNPU: both sharing modes, high utilization, good performance and
//     SLA (tile-granular switching at zero flush cost).
func Table1(cfg npu.Config) (*Table1Result, error) {
	model, err := workload.Lookup("alexnet")
	if err != nil {
		return nil, err
	}
	fl, err := Fig14([]workload.Workload{model}, cfg)
	if err != nil {
		return nil, err
	}
	var tilePct, coarsePct float64
	for _, r := range fl.Rows {
		switch r.Granularity {
		case spad.FlushPerTile.String():
			tilePct = (r.Normalized - 1) * 100
		case spad.FlushPer5Layers.String():
			coarsePct = (r.Normalized - 1) * 100
		}
	}
	f15, err := Fig15(cfg)
	if err != nil {
		return nil, err
	}
	// Partition overhead: the paper's point is that no single static
	// fraction suits every workload pair. Score each static policy by
	// its worst normalized slowdown across the three groups, take the
	// best such policy, and compare it against the dynamic policy's
	// worst case.
	worstOf := map[string]float64{}
	for _, r := range f15.Rows {
		m := r.Trusted.Normalized
		if r.Untrusted.Normalized > m {
			m = r.Untrusted.Normalized
		}
		if m > worstOf[r.Policy] {
			worstOf[r.Policy] = m
		}
	}
	dynamic := worstOf["snpu-dynamic"]
	bestStatic := 0.0
	for policy, w := range worstOf {
		if policy == "snpu-dynamic" {
			continue
		}
		if bestStatic == 0 || w < bestStatic {
			bestStatic = w
		}
	}
	partitionPct := 0.0
	if dynamic > 0 {
		partitionPct = (bestStatic/dynamic - 1) * 100
	}

	return &Table1Result{Rows: []Table1Row{
		{Mechanism: "partition", Temporal: true, Spatial: true, Utilization: "low",
			Performance: "low", SLA: "good", MeasuredOverheadPct: partitionPct},
		{Mechanism: "flush-coarse", Temporal: true, Spatial: false, Utilization: "low",
			Performance: "good", SLA: "poor", MeasuredOverheadPct: coarsePct},
		{Mechanism: "flush-fine", Temporal: true, Spatial: false, Utilization: "low",
			Performance: "low", SLA: "good", MeasuredOverheadPct: tilePct},
		{Mechanism: "snpu", Temporal: true, Spatial: true, Utilization: "high",
			Performance: "good", SLA: "good", MeasuredOverheadPct: 0},
	}}, nil
}

// TableString renders the table.
func (t *Table1Result) TableString() string {
	header := []string{"mechanism", "temporal", "spatial", "utilization", "performance", "sla", "measured-overhead%"}
	var rows [][]string
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Mechanism, yn(r.Temporal), yn(r.Spatial), r.Utilization,
			r.Performance, r.SLA, fmt.Sprintf("%.1f", r.MeasuredOverheadPct),
		})
	}
	return Table(header, rows)
}
