package experiments

import (
	"runtime"
	"sync"

	"repro/internal/npu"
)

// SoC pooling: booting a SoC per experiment cell (regions, boot chain,
// NPU, scratchpads, mesh) was a large share of the suite's allocation
// churn, and the GC pressure it generated is what capped parallel
// speedup below 1x. Instead, released SoCs are scrubbed back to their
// freshly booted state (see SoC.Release) and reused by the next cell
// with the same npu.Config.
//
// The determinism contract: a cell run on a recycled SoC produces
// byte-identical cycles, tables, and stats to the same cell on a fresh
// boot. That holds because Release power-cycles every piece of
// observable state — timing resources, pipelines, L2 contents,
// scratchpad payload/tags/valid/parity, mesh locks/inboxes/dead links,
// backing pages, ECC damage, core domains, installed translators, and
// counters — while keeping only capacity (allocated slices, maps,
// resolved counter handles) warm. TestPooledDifferential pins the
// contract; TestPoolNoSecretLeak pins the isolation half (no prior
// tenant's bytes survive a recycle).
//
// Pooling is transparently disabled while -metrics-dir collection is
// on: that mode aggregates one registered sink per *booted* SoC, so
// reuse would fold several cells into one sink. Cycle counts are
// pooling-independent either way, so the toggle cannot change results.

// poolMaxPerKey caps each config bucket; a parallel runner needs at
// most one SoC per worker in flight, so beyond ~2x the machine width
// extra instances are just held memory.
func poolMaxPerKey() int { return 2 * runtime.GOMAXPROCS(0) }

var socPool = struct {
	sync.Mutex
	disabled bool
	buckets  map[npu.Config][]*SoC
	hits     uint64
	misses   uint64
}{buckets: make(map[npu.Config][]*SoC)}

// SetPooling toggles SoC reuse (on by default). Turning it off also
// drops every pooled instance, so differentials can force the
// fresh-boot path.
func SetPooling(on bool) {
	socPool.Lock()
	defer socPool.Unlock()
	socPool.disabled = !on
	if !on {
		socPool.buckets = make(map[npu.Config][]*SoC)
	}
}

// PoolingEnabled reports whether Acquire may reuse pooled SoCs.
func PoolingEnabled() bool {
	socPool.Lock()
	defer socPool.Unlock()
	return !socPool.disabled
}

// PoolCounters reports lifetime pool hits (recycled SoCs handed out)
// and misses (fresh boots via AcquireSoC).
func PoolCounters() (hits, misses uint64) {
	socPool.Lock()
	defer socPool.Unlock()
	return socPool.hits, socPool.misses
}

// poolActive reports whether reuse is currently allowed: not switched
// off, and not in a metrics-collection window.
func poolActive() bool {
	collect.mu.Lock()
	collecting := collect.enabled
	collect.mu.Unlock()
	if collecting {
		return false
	}
	socPool.Lock()
	defer socPool.Unlock()
	return !socPool.disabled
}

// AcquireSoC returns a ready SoC for cfg — recycled when one is
// pooled, freshly booted otherwise. Callers must hand it back with
// Release when the cell completes. Only identity-translator systems
// (the NewSoC(cfg, nil) shape every cell uses) are pooled; cells
// needing a custom translator factory must call NewSoC directly.
func AcquireSoC(cfg npu.Config) (*SoC, error) {
	if poolActive() {
		socPool.Lock()
		if b := socPool.buckets[cfg]; len(b) > 0 {
			soc := b[len(b)-1]
			socPool.buckets[cfg] = b[:len(b)-1]
			socPool.hits++
			socPool.Unlock()
			return soc, nil
		}
		socPool.misses++
		socPool.Unlock()
	}
	return NewSoC(cfg, nil)
}

// Release scrubs the SoC back to its freshly booted state and returns
// it to the pool. Scrubbing happens here — at hand-back, not at the
// next acquire — so no tenant's data sits in the pool in the interim.
// Safe to call on a nil SoC (error paths).
func (soc *SoC) Release() {
	if soc == nil {
		return
	}
	soc.NPU.Reset()
	soc.Phys.Reset()
	soc.Stats.Reset()
	if !poolActive() {
		return
	}
	cfg := soc.NPU.Config()
	socPool.Lock()
	defer socPool.Unlock()
	if len(socPool.buckets[cfg]) >= poolMaxPerKey() {
		return
	}
	socPool.buckets[cfg] = append(socPool.buckets[cfg], soc)
}
