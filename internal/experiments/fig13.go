package experiments

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig13Row is one (model, mechanism) cell of Fig. 13.
type Fig13Row struct {
	Model     string
	Mechanism string
	Cycles    sim.Cycle
	// Normalized is throughput relative to the unprotected baseline
	// (1.0 = no slowdown; the paper's Fig. 13(a) y-axis).
	Normalized float64
	// Requests is the translation/checking request count (the
	// Fig. 13(b) energy proxy).
	Requests int64
	// RequestsVsIOMMU is Requests divided by the iotlb-32 count for
	// the same model (Guarder rows only; 0 elsewhere).
	RequestsVsIOMMU float64
}

// Fig13Result holds the whole figure.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13 runs every model under every access-control mechanism. Each
// (model, mechanism) cell is independent — the contended pair boots its
// own SoC — so the full grid fans out over the worker pool; the
// per-model normalization is a cheap sequential pass over the gathered
// rows.
func Fig13(models []workload.Workload, cfg npu.Config) (*Fig13Result, error) {
	mechs := Fig13Mechanisms()
	rows, err := runCells(len(models)*len(mechs), func(i int) (Fig13Row, error) {
		w, mech := models[i/len(mechs)], mechs[i%len(mechs)]
		cycles, stats, err := RunContended(w, mech, cfg)
		if err != nil {
			return Fig13Row{}, fmt.Errorf("fig13 %s/%s: %w", w.Name, mech.Name, err)
		}
		return Fig13Row{
			Model:     w.Name,
			Mechanism: mech.Name,
			Cycles:    cycles,
			Requests:  stats[sim.CtrTranslations],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for m := 0; m < len(models); m++ {
		group := rows[m*len(mechs) : (m+1)*len(mechs)]
		baselineCycles := sim.Cycle(0)
		iommuReqs := int64(0)
		for _, r := range group {
			switch r.Mechanism {
			case "none":
				baselineCycles = r.Cycles
			case "iotlb-32":
				iommuReqs = r.Requests
			}
		}
		for i := range group {
			if baselineCycles > 0 {
				group[i].Normalized = float64(baselineCycles) / float64(group[i].Cycles)
			}
			if group[i].Mechanism == "guarder" && iommuReqs > 0 {
				group[i].RequestsVsIOMMU = float64(group[i].Requests) / float64(iommuReqs)
			}
		}
	}
	return &Fig13Result{Rows: rows}, nil
}

// Slowdown reports 1 - Normalized as a percentage for a row.
func (r Fig13Row) Slowdown() float64 { return (1 - r.Normalized) * 100 }

// TableA renders the Fig. 13(a) view (normalized performance).
func (f *Fig13Result) TableA() string {
	header := []string{"model", "mechanism", "cycles", "normalized", "slowdown%"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Model, r.Mechanism,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.3f", r.Normalized),
			fmt.Sprintf("%.1f", r.Slowdown()),
		})
	}
	return Table(header, rows)
}

// TableB renders the Fig. 13(b) view (translation request counts).
func (f *Fig13Result) TableB() string {
	header := []string{"model", "mechanism", "xlate-requests", "vs-iommu"}
	var rows [][]string
	for _, r := range f.Rows {
		ratio := ""
		if r.RequestsVsIOMMU > 0 {
			ratio = fmt.Sprintf("%.1f%%", r.RequestsVsIOMMU*100)
		}
		rows = append(rows, []string{
			r.Model, r.Mechanism, fmt.Sprintf("%d", r.Requests), ratio,
		})
	}
	return Table(header, rows)
}
