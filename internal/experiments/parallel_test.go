package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/npu"
	"repro/internal/workload"
)

// withWorkers runs fn under a fixed pool width, restoring the default
// afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

// TestRunCellsOrderAndErrors exercises the pool mechanics directly:
// results land in index order, every cell runs, and the reported error
// is the lowest-indexed one regardless of completion order.
func TestRunCellsOrderAndErrors(t *testing.T) {
	withWorkers(t, 4, func() {
		var ran atomic.Int64
		got, err := runCells(100, func(i int) (int, error) {
			ran.Add(1)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 100 {
			t.Fatalf("ran %d cells, want 100", ran.Load())
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

func TestRunCellsLowestError(t *testing.T) {
	withWorkers(t, 8, func() {
		wantErr := map[int]bool{3: true, 7: true, 40: true}
		_, err := runCells(64, func(i int) (int, error) {
			if wantErr[i] {
				return 0, errAt(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != errAt(3).Error() {
			t.Fatalf("error = %v, want lowest-indexed %v", err, errAt(3))
		}
	})
}

type errAt int

func (e errAt) Error() string { return "cell failed" }

// TestParallelDeterminism is the fast in-package half of the
// parallel-determinism contract: the same experiment run sequentially
// and on a 4-wide pool must produce deeply equal rows (every cycle
// count bit-identical). The full-suite byte-level differential lives
// in cmd/snpu-bench.
func TestParallelDeterminism(t *testing.T) {
	cfg := npu.DefaultConfig()
	w, err := workload.ByName("yololite")
	if err != nil {
		t.Fatal(err)
	}
	models := []workload.Workload{w}

	var seq13, par13 *Fig13Result
	var seq17, par17 *Fig17Result
	withWorkers(t, 1, func() {
		seq13, err = Fig13(models, cfg)
		if err == nil {
			seq17, err = Fig17(models, cfg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(t, 4, func() {
		par13, err = Fig13(models, cfg)
		if err == nil {
			par17, err = Fig17(models, cfg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq13, par13) {
		t.Errorf("fig13 rows differ between -j 1 and -j 4:\nseq: %+v\npar: %+v", seq13.Rows, par13.Rows)
	}
	if !reflect.DeepEqual(seq17, par17) {
		t.Errorf("fig17 rows differ between -j 1 and -j 4:\nseq: %+v\npar: %+v", seq17.Rows, par17.Rows)
	}
}
