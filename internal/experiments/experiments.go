// Package experiments regenerates every table and figure of the
// paper's evaluation (§VI) on the simulated SoC. Each Fig/Table
// function returns typed rows plus a formatted text table, so the
// same code backs the bench harness (bench_test.go), the CLI
// (cmd/snpu-bench), and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/guarder"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/tee"
	"repro/internal/workload"
	"repro/internal/xlate"
)

// Layout of the simulated SoC's physical memory.
const (
	NormalBase   = mem.PhysAddr(0x8000_0000)
	NormalSize   = uint64(0x0800_0000) // 128 MB normal DRAM
	ReservedBase = mem.PhysAddr(0x8800_0000)
	ReservedSize = uint64(0x1800_0000) // 384 MB NPU-reserved (CMA)
	SecureBase   = mem.PhysAddr(0xA000_0000)
	SecureSize   = uint64(0x1000_0000) // 256 MB secure world
)

// SoC bundles one freshly booted simulated system.
type SoC struct {
	Phys    *mem.Physical
	Machine *tee.Machine
	Stats   *sim.Stats
	NPU     *npu.NPU
}

// NewSoC boots a system with the given NPU config and per-core
// translator factory (nil = identity/no protection).
func NewSoC(cfg npu.Config, makeXlate func(core int) xlate.Translator) (*SoC, error) {
	phys := mem.NewPhysical()
	regions := []mem.Region{
		{Name: "normal", Base: NormalBase, Size: NormalSize, Owner: mem.Normal, CrossPerm: mem.PermRW},
		{Name: "npu-reserved", Base: ReservedBase, Size: ReservedSize, Owner: mem.Normal, CrossPerm: mem.PermRW},
		{Name: "secure", Base: SecureBase, Size: SecureSize, Owner: mem.Secure},
	}
	for _, r := range regions {
		if err := phys.AddRegion(r); err != nil {
			return nil, err
		}
	}
	machine := tee.NewMachine(phys)
	blobs := [][]byte{[]byte("trusted-loader"), []byte("trusted-firmware"), []byte("teeos"), []byte("npu-monitor")}
	names := []string{"trusted-loader", "trusted-firmware", "teeos", "npu-monitor"}
	for i, b := range blobs {
		machine.BootChain().AddStage(names[i], tee.MeasureBytes(b))
	}
	if err := machine.Boot(blobs); err != nil {
		return nil, err
	}
	stats := sim.NewStats()
	acc, err := npu.New(cfg, phys, stats, makeXlate)
	if err != nil {
		return nil, err
	}
	RecordSoCStats(stats)
	return &SoC{Phys: phys, Machine: machine, Stats: stats, NPU: acc}, nil
}

// Mechanism names one access-control configuration of Fig. 13.
type Mechanism struct {
	Name string
	// IOTLBEntries > 0 selects an IOMMU; Guarder selects the NPU
	// Guarder; neither selects the unprotected baseline.
	IOTLBEntries int
	Guarder      bool
}

// Fig13Mechanisms is the comparison set: baseline, IOTLB-4..32,
// Guarder.
func Fig13Mechanisms() []Mechanism {
	return []Mechanism{
		{Name: "none"},
		{Name: "iotlb-4", IOTLBEntries: 4},
		{Name: "iotlb-8", IOTLBEntries: 8},
		{Name: "iotlb-16", IOTLBEntries: 16},
		{Name: "iotlb-32", IOTLBEntries: 32},
		{Name: "guarder", Guarder: true},
	}
}

// RunSolo compiles a workload, installs the mechanism's mappings, and
// runs it alone on core 0, returning the cycle count and the final
// stats snapshot.
func RunSolo(w workload.Workload, mech Mechanism, cfg npu.Config) (sim.Cycle, map[string]int64, error) {
	soc, err := AcquireSoC(cfg)
	if err != nil {
		return 0, nil, err
	}
	defer soc.Release()
	prog, _, err := npu.CompileCached(w, cfg, 0, npu.DefaultLayout)
	if err != nil {
		return 0, nil, err
	}
	core, err := soc.NPU.Core(0)
	if err != nil {
		return 0, nil, err
	}
	if err := installMechanism(soc, core, prog, mech); err != nil {
		return 0, nil, err
	}
	ex := npu.NewExec(core, prog, 1)
	end, err := ex.Run(0)
	if err != nil {
		return 0, nil, err
	}
	snap := soc.Stats.Snapshot()
	return end, snap, nil
}

// CompanionLayout places a second task's VA window away from the
// first so both can share one IO page table (distinct IOVA ranges, as
// a real driver would allocate).
var CompanionLayout = npu.Layout{WeightBase: 0x4000_0000}

// RunContended reproduces the paper's multi-tasking environment: the
// measured model runs on core 0 while a companion copy runs on core 1,
// both behind the SAME access-control unit (the TrustZone-NPU design
// shares one sMMU per NPU device, so the two request streams contend
// for IOTLB capacity — the "ping-pong" the paper cites). The Guarder
// is per-core register state, so it suffers no such interference.
// Returns core 0's finish cycle and the stats snapshot.
func RunContended(w workload.Workload, mech Mechanism, cfg npu.Config) (sim.Cycle, map[string]int64, error) {
	soc, err := AcquireSoC(cfg)
	if err != nil {
		return 0, nil, err
	}
	defer soc.Release()
	prog0, _, err := npu.CompileCached(w, cfg, 0, npu.DefaultLayout)
	if err != nil {
		return 0, nil, err
	}
	prog1, _, err := npu.CompileCached(w, cfg, 0, CompanionLayout)
	if err != nil {
		return 0, nil, err
	}
	core0, err := soc.NPU.Core(0)
	if err != nil {
		return 0, nil, err
	}
	core1, err := soc.NPU.Core(1)
	if err != nil {
		return 0, nil, err
	}
	if err := installShared(soc, core0, core1, prog0, prog1, mech); err != nil {
		return 0, nil, err
	}

	ex0 := npu.NewExec(core0, prog0, 1)
	ex1 := npu.NewExec(core1, prog1, 2)
	var now0, now1, end0 sim.Cycle
	for !ex0.Done() || !ex1.Done() {
		if !ex0.Done() && (ex1.Done() || now0 <= now1) {
			end, err := ex0.RunUntil(now0, npu.BoundaryTile)
			if err != nil {
				return 0, nil, err
			}
			now0 = end
			if ex0.Done() {
				end0 = end
			}
			continue
		}
		end, err := ex1.RunUntil(now1, npu.BoundaryTile)
		if err != nil {
			return 0, nil, err
		}
		now1 = end
	}
	snap := soc.Stats.Snapshot()
	return end0, snap, nil
}

// installShared wires the mechanism for the contended pair. For an
// IOMMU, one unit serves both cores (stream-tagged entries, so no
// flush between streams, but full capacity contention). For the
// Guarder and the baseline, state is per core.
func installShared(soc *SoC, core0, core1 *npu.Core, prog0, prog1 *npu.Program, mech Mechanism) error {
	switch {
	case mech.IOTLBEntries > 0:
		ucfg := iommu.DefaultConfig(mech.IOTLBEntries)
		// The shared sMMU tags entries with stream IDs, so the two
		// cores' streams coexist (no flush) but contend for capacity.
		ucfg.FlushOnContextSwitch = false
		ucfg.TagWithASID = true
		u := iommu.New(ucfg, soc.Stats)
		for i, prog := range []*npu.Program{prog0, prog1} {
			lo, hi := prog.VASpan()
			vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
			size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
			pa := ReservedBase + mem.PhysAddr(uint64(i)*(ReservedSize/2))
			if err := u.Table().MapRange(vbase, pa, size, mem.PermRW, false); err != nil {
				return err
			}
		}
		core0.DMA().SetTranslator(u)
		core1.DMA().SetTranslator(u)
		return nil
	default:
		if err := installMechanism(soc, core0, prog0, mech); err != nil {
			return err
		}
		return installMechanism2(soc, core1, prog1, mech)
	}
}

// installMechanism2 is installMechanism for the companion task's PA
// window (second half of the reserved region).
func installMechanism2(soc *SoC, core *npu.Core, prog *npu.Program, mech Mechanism) error {
	lo, hi := prog.VASpan()
	vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
	pa := ReservedBase + mem.PhysAddr(ReservedSize/2)
	if mech.Guarder {
		g := guarder.NewDefault(soc.Stats)
		sec := soc.Machine.SecureContext()
		if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: vbase, PBase: pa, Size: size, Valid: true}); err != nil {
			return err
		}
		if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: ReservedBase, Size: ReservedSize, Perm: mem.PermRW, World: mem.Normal, Valid: true}); err != nil {
			return err
		}
		core.DMA().SetTranslator(g)
		return nil
	}
	core.DMA().SetTranslator(xlate.NewIdentity(soc.Stats))
	return nil
}

// installMechanism wires one access-control unit in front of core's
// DMA engine and installs the program's mappings through the
// appropriate path: the untrusted driver maps the IOMMU; the secure
// context setter programs the Guarder.
func installMechanism(soc *SoC, core *npu.Core, prog *npu.Program, mech Mechanism) error {
	lo, hi := prog.VASpan()
	vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
	switch {
	case mech.Guarder:
		g := guarder.NewDefault(soc.Stats)
		sec := soc.Machine.SecureContext()
		if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: vbase, PBase: ReservedBase, Size: size, Valid: true}); err != nil {
			return err
		}
		if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: ReservedBase, Size: ReservedSize, Perm: mem.PermRW, World: mem.Normal, Valid: true}); err != nil {
			return err
		}
		core.DMA().SetTranslator(g)
	case mech.IOTLBEntries > 0:
		u := iommu.New(iommu.DefaultConfig(mech.IOTLBEntries), soc.Stats)
		if err := u.Table().MapRange(vbase, ReservedBase, size, mem.PermRW, false); err != nil {
			return err
		}
		core.DMA().SetTranslator(u)
	default:
		core.DMA().SetTranslator(xlate.NewIdentity(soc.Stats))
	}
	return nil
}

// Table renders rows of cells as a fixed-width text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
