package experiments

import (
	"strings"
	"testing"

	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// exportCollected runs fn inside a stats-collection window and returns
// the aggregated Prometheus export of every SoC sink it registered.
func exportCollected(t *testing.T, fn func() error) string {
	t.Helper()
	CollectSoCStats(true)
	defer CollectSoCStats(false)
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	for _, s := range DrainSoCStats() {
		reg.AttachStats(s)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestMetricsCollectionDeterminism pins the -metrics-dir contract: the
// aggregated per-experiment metrics are byte-identical at any worker
// count. Sinks register in pool-completion order, which varies with
// -j, but the registry sums same-named counters commutatively and
// exports sorted, so the order cannot show.
func TestMetricsCollectionDeterminism(t *testing.T) {
	cfg := npu.DefaultConfig()
	run := func(workers int) string {
		old := Workers()
		SetWorkers(workers)
		defer SetWorkers(old)
		return exportCollected(t, func() error {
			_, err := Fig16(cfg)
			return err
		})
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("aggregated metrics differ between -j 1 and -j 4:\n--- j1 ---\n%s\n--- j4 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "noc_flits") || !strings.Contains(seq, "dma_bytes") {
		t.Fatalf("aggregated export missing expected counters:\n%s", seq)
	}
}

func TestCollectSoCStatsWindow(t *testing.T) {
	// Outside a window, RecordSoCStats drops sinks.
	RecordSoCStats(sim.NewStats())
	CollectSoCStats(true)
	s := sim.NewStats()
	*s.Counter("x") = 1
	RecordSoCStats(s)
	RecordSoCStats(nil) // no-op
	sinks := DrainSoCStats()
	if len(sinks) != 1 || sinks[0] != s {
		t.Fatalf("sinks = %v, want exactly the one recorded inside the window", sinks)
	}
	// Drain clears but keeps collecting.
	RecordSoCStats(sim.NewStats())
	if got := len(DrainSoCStats()); got != 1 {
		t.Fatalf("post-drain sink count = %d, want 1", got)
	}
	CollectSoCStats(false)
	RecordSoCStats(sim.NewStats())
	if got := len(DrainSoCStats()); got != 0 {
		t.Fatalf("disabled window recorded %d sinks, want 0", got)
	}
}
