package experiments

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Golden-cycle regression tests: exact cycle counts for every figure's
// smallest cell (one model per experiment), pinned so any accidental
// timing-model change fails loudly here instead of silently shifting
// EXPERIMENTS.md. If a change is INTENTIONAL, regenerate the constants
// below and EXPERIMENTS.md together (go run ./cmd/snpu-bench -markdown)
// and say so in the commit message.

// Solo cycle counts reused across cells (Fig. 1 values).
const (
	goldenYololiteSolo = sim.Cycle(4011901)
	goldenAlexnetSolo  = sim.Cycle(24036637)
)

func goldenModel(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGoldenFig1(t *testing.T) {
	res, err := Fig1([]workload.Workload{goldenModel(t, "yololite")}, npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Cycles; got != goldenYololiteSolo {
		t.Errorf("fig1 yololite cycles = %d, pinned %d", got, goldenYololiteSolo)
	}
}

func TestGoldenFig13(t *testing.T) {
	want := map[string]struct {
		cycles sim.Cycle
		reqs   int64
	}{
		"none":     {4804702, 0},
		"iotlb-4":  {5656558, 270434},
		"iotlb-8":  {5474514, 270434},
		"iotlb-16": {5443493, 270434},
		"iotlb-32": {5421765, 270434},
		"guarder":  {4804702, 53914},
	}
	res, err := Fig13([]workload.Workload{goldenModel(t, "yololite")}, npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("fig13 rows = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w, ok := want[r.Mechanism]
		if !ok {
			t.Errorf("fig13 unexpected mechanism %q", r.Mechanism)
			continue
		}
		if r.Cycles != w.cycles || r.Requests != w.reqs {
			t.Errorf("fig13 yololite/%s = (%d cycles, %d reqs), pinned (%d, %d)",
				r.Mechanism, r.Cycles, r.Requests, w.cycles, w.reqs)
		}
	}
}

func TestGoldenFig14(t *testing.T) {
	want := map[string]sim.Cycle{
		"tile":     11815720,
		"layer":    8043226,
		"5-layers": 8027886,
	}
	res, err := Fig14([]workload.Workload{goldenModel(t, "yololite")}, npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if w, ok := want[r.Granularity]; !ok || r.Cycles != w {
			t.Errorf("fig14 yololite/%s = %d cycles, pinned %d", r.Granularity, r.Cycles, w)
		}
	}
}

// TestGoldenFig15 pins the smallest spatial-sharing cell: group 1
// (alexnet + yololite) under the dynamic policy.
func TestGoldenFig15Cell(t *testing.T) {
	cfg := npu.DefaultConfig()
	soc, err := NewSoC(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := driver.RunSpatialPair(soc.NPU,
		goldenModel(t, "alexnet"), goldenModel(t, "yololite"),
		driver.DynamicPolicy(), goldenAlexnetSolo, goldenYololiteSolo)
	if err != nil {
		t.Fatal(err)
	}
	const wantA, wantB = sim.Cycle(30681298), sim.Cycle(5131129)
	if r.CyclesA != wantA || r.CyclesB != wantB {
		t.Errorf("fig15 group1/dynamic = (%d, %d), pinned (%d, %d)",
			r.CyclesA, r.CyclesB, wantA, wantB)
	}
	if r.FractionA != 0.75 {
		t.Errorf("fig15 group1/dynamic fracA = %v, pinned 0.75", r.FractionA)
	}
}

func TestGoldenFig16(t *testing.T) {
	want := map[string]map[int]sim.Cycle{
		"software-noc":     {1: 202, 1024: 2248},
		"unauthorized-noc": {1: 2, 1024: 1025},
		"peephole-noc":     {1: 2, 1024: 1025},
	}
	res, err := Fig16(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if w, ok := want[r.Method][r.Lines]; ok && r.Latency != w {
			t.Errorf("fig16 %s/lines=%d latency = %d, pinned %d", r.Method, r.Lines, r.Latency, w)
		}
	}
}

func TestGoldenFig17(t *testing.T) {
	want := map[string]struct{ cycles, transfer sim.Cycle }{
		"unauthorized-noc": {1588148, 162303},
		"peephole-noc":     {1588148, 162303},
		"software-noc":     {2208085, 782240},
	}
	res, err := Fig17([]workload.Workload{goldenModel(t, "yololite")}, npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		w, ok := want[r.Method]
		if !ok {
			t.Errorf("fig17 unexpected method %q", r.Method)
			continue
		}
		if r.Cycles != w.cycles || r.TransferCycles != w.transfer {
			t.Errorf("fig17 yololite/%s = (%d, %d), pinned (%d, %d)",
				r.Method, r.Cycles, r.TransferCycles, w.cycles, w.transfer)
		}
	}
	// The zero-cycle peephole property (§V): authentication must not
	// change the cycle count, only the acceptance decision.
	if want["peephole-noc"].cycles != want["unauthorized-noc"].cycles {
		t.Error("golden table violates the zero-overhead peephole invariant")
	}
}
