package experiments

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1Row is one bar of Fig. 1: the compute utilization a single
// inference achieves on one NPU core.
type Fig1Row struct {
	Model  string
	Cycles sim.Cycle
	// Utilization is achieved MACs/cycle over peak MACs/cycle.
	Utilization float64
}

// Fig1Result is the whole figure.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 measures per-model utilization of a solo inference — the
// motivation figure: most workloads leave more than half the compute
// idle, which is why multi-tasking (and hence multi-task isolation)
// matters.
func Fig1(models []workload.Workload, cfg npu.Config) (*Fig1Result, error) {
	rows, err := mapCells(models, func(w workload.Workload) (Fig1Row, error) {
		cycles, _, err := RunSolo(w, Mechanism{Name: "none"}, cfg)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("fig1 %s: %w", w.Name, err)
		}
		prog, _, err := npu.CompileCached(w, cfg, 0, npu.DefaultLayout)
		if err != nil {
			return Fig1Row{}, err
		}
		return Fig1Row{
			Model:       w.Name,
			Cycles:      cycles,
			Utilization: npu.Utilization(prog, cycles, cfg.SystolicDim),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Rows: rows}, nil
}

// TableString renders the figure.
func (f *Fig1Result) TableString() string {
	header := []string{"model", "cycles", "flops-utilization"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Model, fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%.1f%%", r.Utilization*100),
		})
	}
	return Table(header, rows)
}
