package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/npu"
	"repro/internal/spad"
	"repro/internal/workload"
)

// This file pins the two halves of the pooling contract stated in
// pool.go: determinism (a cell on a recycled SoC is byte-identical to
// the same cell on a fresh boot, across reuse epochs) and isolation
// (no prior tenant's bytes survive a recycle).

// renderCells runs a representative mix of cells — solo and contended,
// across the baseline/IOTLB/Guarder mechanisms — and renders every
// cycle count and the full sorted stats snapshot into one byte string.
func renderCells(t *testing.T, models []workload.Workload) []byte {
	t.Helper()
	cfg := npu.DefaultConfig()
	var buf bytes.Buffer
	for _, mech := range Fig13Mechanisms() {
		for _, w := range models {
			cyc, stats, err := RunSolo(w, mech, cfg)
			if err != nil {
				t.Fatalf("RunSolo(%s, %s): %v", w.Name, mech.Name, err)
			}
			fmt.Fprintf(&buf, "solo %s %s %d\n", w.Name, mech.Name, cyc)
			writeStats(&buf, stats)
			cyc, stats, err = RunContended(w, mech, cfg)
			if err != nil {
				t.Fatalf("RunContended(%s, %s): %v", w.Name, mech.Name, err)
			}
			fmt.Fprintf(&buf, "contended %s %s %d\n", w.Name, mech.Name, cyc)
			writeStats(&buf, stats)
		}
	}
	return buf.Bytes()
}

// writeStats renders the non-zero counters. Zero-valued entries are
// skipped deliberately: Stats.Reset keeps counter handles warm (that
// is the pooling win), so a recycled SoC's snapshot may carry extra
// never-incremented keys a fresh boot lacks. Every consumer reads
// counter values by name, so metric equality modulo zero entries is
// the contract.
func writeStats(buf *bytes.Buffer, stats map[string]int64) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		if stats[k] != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(buf, "  %s=%d\n", k, stats[k])
	}
}

// TestPooledDifferential is the fresh-vs-pooled differential: the cell
// mix must render byte-identically with pooling forced off (every cell
// boots fresh) and with pooling on, across two reuse epochs (the
// second epoch runs entirely on recycled SoCs).
func TestPooledDifferential(t *testing.T) {
	var models []workload.Workload
	for _, n := range []string{"alexnet", "yololite"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, w)
	}

	SetPooling(false)
	fresh := renderCells(t, models)

	SetPooling(true)
	defer SetPooling(true) // leave the default state for later tests
	hits0, _ := PoolCounters()
	epoch1 := renderCells(t, models)
	epoch2 := renderCells(t, models)
	hits1, _ := PoolCounters()

	if !bytes.Equal(fresh, epoch1) {
		t.Errorf("epoch 1 (pooled) differs from fresh boots:\n%s", firstLineDiff(fresh, epoch1))
	}
	if !bytes.Equal(fresh, epoch2) {
		t.Errorf("epoch 2 (all recycled) differs from fresh boots:\n%s", firstLineDiff(fresh, epoch2))
	}
	if hits1 == hits0 {
		t.Error("pool recorded no hits across two epochs — the differential never exercised reuse")
	}
}

func firstLineDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\nfresh:  %s\npooled: %s", i+1, al[i], bl[i])
		}
	}
	return "outputs diverge in length only"
}

// TestPoolNoSecretLeak plants tenant data in a SoC's scratchpads,
// accumulators, and backing DRAM, releases it, and verifies the
// recycled instance exposes none of it: scratchpad lines are invalid,
// non-secure-tagged, and zero-filled; the physical pages are dropped.
func TestPoolNoSecretLeak(t *testing.T) {
	SetPooling(false) // drop any pooled instances from other tests
	SetPooling(true)
	defer SetPooling(true)

	cfg := npu.DefaultConfig()
	soc, err := AcquireSoC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	core, err := soc.NPU.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0xA5}, core.Scratchpad().LineBytes()+core.Accumulator().LineBytes())
	for _, sp := range []*spad.Scratchpad{core.Scratchpad(), core.Accumulator()} {
		line := secret[:sp.LineBytes()]
		if err := sp.Write(spad.NonSecure, 0, line); err != nil {
			t.Fatal(err)
		}
	}
	soc.Phys.Write(ReservedBase, secret)

	soc.Release()
	got, err := AcquireSoC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if got != soc {
		t.Fatal("pool did not hand back the released SoC; leak check would be vacuous")
	}
	for k, v := range got.Stats.Snapshot() {
		// Keys survive Reset (warm handles); values must not.
		if v != 0 {
			t.Errorf("recycled SoC carries prior stats: %s=%d", k, v)
		}
	}

	for _, sp := range []*spad.Scratchpad{core.Scratchpad(), core.Accumulator()} {
		if sp.LineValid(0) {
			t.Error("recycled scratchpad line still marked valid")
		}
		if id := sp.LineID(0); id != spad.NonSecure {
			t.Errorf("recycled scratchpad line tagged domain %d, want non-secure", id)
		}
		buf := make([]byte, sp.LineBytes())
		if err := sp.Read(spad.NonSecure, 0, buf); err != nil {
			t.Fatal(err)
		}
		if i := bytes.IndexByte(buf, 0xA5); i >= 0 {
			t.Errorf("prior tenant's scratchpad byte observable at offset %d", i)
		}
	}
	buf := make([]byte, len(secret))
	got.Phys.Read(ReservedBase, buf)
	if i := bytes.IndexByte(buf, 0xA5); i >= 0 {
		t.Errorf("prior tenant's DRAM byte observable at offset %d", i)
	}
}
