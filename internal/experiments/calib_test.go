package experiments

import (
	"os"
	"testing"

	"repro/internal/npu"
	"repro/internal/workload"
)

// TestCalibrationPrint dumps the Fig. 13 tables for eyeballing model
// calibration. Run with SNPU_CALIB=1 go test -run Calibration -v.
func TestCalibrationPrint(t *testing.T) {
	if os.Getenv("SNPU_CALIB") == "" {
		t.Skip("set SNPU_CALIB=1 to print calibration tables")
	}
	res, err := Fig13(workload.All(), npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.TableA())
	t.Log("\n" + res.TableB())
}
