package experiments

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig17Row is one (model, method) cell of the NoC application test: a
// model run model-parallel over a 2x2 block of cores (output channels
// split per layer, activation slices all-gathered after each layer),
// with the exchange carried per method.
type Fig17Row struct {
	Model  string
	Method string
	Cycles sim.Cycle
	// TransferCycles is the time spent in inter-core exchanges.
	TransferCycles sim.Cycle
	// Normalized is runtime relative to the unauthorized NoC (the
	// paper's Fig. 17 baseline; 1.0 = same, >1 = slower).
	Normalized float64
}

// Fig17Result is the whole figure.
type Fig17Result struct {
	Rows []Fig17Row
}

// fig17ShmVA is the shared-memory bounce buffer the software NoC
// routes activations through.
const fig17ShmVA = 0x8100_0000

// Fig17 runs each model over a 2x2 core block under three transfer
// methods: the unauthorized direct NoC, the peephole NoC, and the
// software NoC through shared memory.
func Fig17(models []workload.Workload, cfg npu.Config) (*Fig17Result, error) {
	res := &Fig17Result{}
	for _, w := range models {
		var baseline sim.Cycle
		var rows []Fig17Row
		for _, method := range []struct {
			name     string
			peephole bool
			mode     npu.TransferMode
		}{
			{"unauthorized-noc", false, npu.TransferNoC},
			{"peephole-noc", true, npu.TransferNoC},
			{"software-noc", false, npu.TransferSharedMemory},
		} {
			mcfg := cfg
			mcfg.Peephole = method.peephole
			soc, err := NewSoC(mcfg, nil)
			if err != nil {
				return nil, err
			}
			// A 2x2 block on the 5-wide mesh: cores 0,1 (row 0) and
			// 5,6 (row 1).
			coreIDs := []int{0, 1, 5, 6}
			if method.peephole {
				// Secure the block so its members authenticate mutually.
				if err := soc.NPU.SetCoreDomains(soc.Machine.SecureContext(), coreIDs, 1); err != nil {
					return nil, err
				}
			}
			r, err := soc.NPU.RunModelParallel(w, coreIDs, method.mode, fig17ShmVA, nil)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s/%s: %w", w.Name, method.name, err)
			}
			if method.name == "unauthorized-noc" {
				baseline = r.TotalCycles
			}
			rows = append(rows, Fig17Row{
				Model:          w.Name,
				Method:         method.name,
				Cycles:         r.TotalCycles,
				TransferCycles: r.TransferCycles,
			})
		}
		for i := range rows {
			if baseline > 0 {
				rows[i].Normalized = float64(rows[i].Cycles) / float64(baseline)
			}
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// TableString renders the figure.
func (f *Fig17Result) TableString() string {
	header := []string{"model", "method", "cycles", "transfer-cycles", "normalized"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Model, r.Method,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.TransferCycles),
			fmt.Sprintf("%.3f", r.Normalized),
		})
	}
	return Table(header, rows)
}
