package experiments

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig17Row is one (model, method) cell of the NoC application test: a
// model run model-parallel over a 2x2 block of cores (output channels
// split per layer, activation slices all-gathered after each layer),
// with the exchange carried per method.
type Fig17Row struct {
	Model  string
	Method string
	Cycles sim.Cycle
	// TransferCycles is the time spent in inter-core exchanges.
	TransferCycles sim.Cycle
	// Normalized is runtime relative to the unauthorized NoC (the
	// paper's Fig. 17 baseline; 1.0 = same, >1 = slower).
	Normalized float64
}

// Fig17Result is the whole figure.
type Fig17Result struct {
	Rows []Fig17Row
}

// fig17ShmVA is the shared-memory bounce buffer the software NoC
// routes activations through.
const fig17ShmVA = 0x8100_0000

// Fig17 runs each model over a 2x2 core block under three transfer
// methods: the unauthorized direct NoC, the peephole NoC, and the
// software NoC through shared memory.
// fig17Methods is the transfer-method comparison set; the first entry
// is the normalization baseline.
var fig17Methods = []struct {
	name     string
	peephole bool
	mode     npu.TransferMode
}{
	{"unauthorized-noc", false, npu.TransferNoC},
	{"peephole-noc", true, npu.TransferNoC},
	{"software-noc", false, npu.TransferSharedMemory},
}

func Fig17(models []workload.Workload, cfg npu.Config) (*Fig17Result, error) {
	rows, err := runCells(len(models)*len(fig17Methods), func(i int) (Fig17Row, error) {
		w, method := models[i/len(fig17Methods)], fig17Methods[i%len(fig17Methods)]
		mcfg := cfg
		mcfg.Peephole = method.peephole
		soc, err := AcquireSoC(mcfg)
		if err != nil {
			return Fig17Row{}, err
		}
		defer soc.Release()
		// A 2x2 block on the 5-wide mesh: cores 0,1 (row 0) and
		// 5,6 (row 1).
		coreIDs := []int{0, 1, 5, 6}
		if method.peephole {
			// Secure the block so its members authenticate mutually.
			if err := soc.NPU.SetCoreDomains(soc.Machine.SecureContext(), coreIDs, 1); err != nil {
				return Fig17Row{}, err
			}
		}
		r, err := soc.NPU.RunModelParallel(w, coreIDs, method.mode, fig17ShmVA, nil)
		if err != nil {
			return Fig17Row{}, fmt.Errorf("fig17 %s/%s: %w", w.Name, method.name, err)
		}
		return Fig17Row{
			Model:          w.Name,
			Method:         method.name,
			Cycles:         r.TotalCycles,
			TransferCycles: r.TransferCycles,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for m := 0; m < len(models); m++ {
		group := rows[m*len(fig17Methods) : (m+1)*len(fig17Methods)]
		baseline := group[0].Cycles // unauthorized-noc
		for i := range group {
			if baseline > 0 {
				group[i].Normalized = float64(group[i].Cycles) / float64(baseline)
			}
		}
	}
	return &Fig17Result{Rows: rows}, nil
}

// TableString renders the figure.
func (f *Fig17Result) TableString() string {
	header := []string{"model", "method", "cycles", "transfer-cycles", "normalized"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Model, r.Method,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.TransferCycles),
			fmt.Sprintf("%.3f", r.Normalized),
		})
	}
	return Table(header, rows)
}
