package experiments

import (
	"strings"
	"testing"

	"repro/internal/npu"
)

func TestAblationIOTLBSweepMonotone(t *testing.T) {
	res, err := AblationIOTLBSweep("yololite", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Slowdown must be non-increasing as entries grow (within noise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Value > res.Rows[i-1].Value+0.5 {
			t.Fatalf("slowdown grew with more entries: %+v -> %+v", res.Rows[i-1], res.Rows[i])
		}
	}
	// 2 entries must hurt measurably.
	if res.Rows[0].Value < 2 {
		t.Fatalf("2-entry IOTLB suspiciously cheap: %+v", res.Rows[0])
	}
	if !strings.Contains(res.TableString(), "entries=2") {
		t.Fatal("table rendering broken")
	}
}

func TestAblationSpadBudgetMonotone(t *testing.T) {
	res, err := AblationSpadBudget("alexnet", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Value > res.Rows[i-1].Value {
			t.Fatalf("traffic grew with a bigger scratchpad: %+v -> %+v", res.Rows[i-1], res.Rows[i])
		}
	}
	// An 8x smaller scratchpad must cost visibly more traffic.
	if res.Rows[0].Value < res.Rows[len(res.Rows)-1].Value*1.1 {
		t.Fatalf("spad budget barely matters: %v vs %v", res.Rows[0].Value, res.Rows[len(res.Rows)-1].Value)
	}
}

func TestAblationMultiDomainScaling(t *testing.T) {
	res := AblationMultiDomain()
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		ratio := res.Rows[i].Value / res.Rows[0].Value
		want := float64(i + 1)
		if ratio < want-0.01 || ratio > want+0.01 {
			t.Fatalf("RAM overhead not linear in ID bits: %v", res.Rows)
		}
	}
}

func TestAblationL2Helps(t *testing.T) {
	res, err := AblationL2("alexnet", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var direct, through float64
	for _, r := range res.Rows {
		switch r.Param {
		case "dram-direct":
			direct = r.Value
		case "through-l2":
			through = r.Value
		}
	}
	if direct == 0 || through == 0 {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	// The L2 captures tile-reload reuse, so it must not slow things
	// down, and on reload-heavy models it should help.
	if through > direct {
		t.Fatalf("L2 slowed the run: %v -> %v", direct, through)
	}
}

func TestAblationPreemptionOrdering(t *testing.T) {
	res, err := AblationPreemption("yololite", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lat := map[string]float64{}
	for _, r := range res.Rows {
		lat[r.Param] = r.Value
	}
	if lat["snpu-tile"] > lat["flush-tile"] {
		t.Fatalf("sNPU preemption (%v) slower than flushing preemption (%v)", lat["snpu-tile"], lat["flush-tile"])
	}
	if lat["flush-tile"] > lat["flush-layer"] || lat["flush-layer"] > lat["flush-5layers"] {
		t.Fatalf("coarser granularity should preempt slower: %v", lat)
	}
	// The coarse granularities must be meaningfully worse — that is
	// the SLA argument.
	if lat["flush-5layers"] < 2*lat["snpu-tile"]+1 {
		t.Fatalf("5-layer preemption (%v) not clearly worse than sNPU (%v)", lat["flush-5layers"], lat["snpu-tile"])
	}
}

func TestAblationMulticastWins(t *testing.T) {
	res, err := AblationMulticast(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Param] = r.Value
	}
	for _, lines := range []string{"16", "64", "256"} {
		uni := vals["unicast lines="+lines]
		multi := vals["multicast lines="+lines]
		if uni == 0 || multi == 0 {
			t.Fatalf("missing rows: %v", vals)
		}
		if multi >= uni {
			t.Fatalf("lines=%s: multicast (%v) not cheaper than unicast (%v)", lines, multi, uni)
		}
	}
}

func TestAblationCheckingEnergyGuarderTiny(t *testing.T) {
	res, err := AblationCheckingEnergy("yololite", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Param] = r.Value
	}
	iommu := vals["iotlb-32 checking-energy"]
	guard := vals["guarder checking-energy"]
	if iommu <= 0 || guard <= 0 {
		t.Fatalf("missing energy rows: %v", vals)
	}
	// The paper's energy argument: Guarder checking energy is a small
	// fraction of the IOMMU's.
	if guard > iommu/20 {
		t.Fatalf("guarder checking energy %v uJ not << iommu %v uJ", guard, iommu)
	}
	if ratio := vals["guarder-vs-iommu"]; ratio <= 0 || ratio > 5 {
		t.Fatalf("ratio = %v%%", ratio)
	}
}

func TestAblationBandwidthMonotone(t *testing.T) {
	res, err := AblationBandwidth("alexnet", npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Value > res.Rows[i-1].Value {
			t.Fatalf("runtime grew with more bandwidth: %+v -> %+v", res.Rows[i-1], res.Rows[i])
		}
	}
	// Quadrupling bandwidth from 4 to 16 must help a DMA-heavy model.
	if res.Rows[2].Value > res.Rows[0].Value*0.95 {
		t.Fatalf("bandwidth barely matters: %v vs %v", res.Rows[0].Value, res.Rows[2].Value)
	}
}
