package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/guarder"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xlate"
)

// Property: for the same VA→PA mapping, the IOMMU and the Guarder
// translate every in-range request to the SAME physical address (the
// mechanisms differ in cost and granularity, never in outcome), and
// both deny every out-of-range request.
func TestGuarderIOMMUTranslationEquivalence(t *testing.T) {
	const (
		vbase = mem.VirtAddr(0x20_0000)
		pbase = mem.PhysAddr(0x8800_0000)
		size  = uint64(1 << 20)
	)
	stats := sim.NewStats()
	soc, err := NewSoC(npu.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	u := iommu.New(iommu.DefaultConfig(32), stats)
	if err := u.Table().MapRange(vbase, pbase, size, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	g := guarder.NewDefault(stats)
	sec := soc.Machine.SecureContext()
	if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: vbase, PBase: pbase, Size: size, Valid: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: pbase, Size: size, Perm: mem.PermRW, World: mem.Normal, Valid: true}); err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			off := uint64(rng.Intn(int(size + size/4))) // some out of range
			bytes := uint64(rng.Intn(4096) + 1)
			req := xlate.Request{
				VA: vbase + mem.VirtAddr(off), Bytes: bytes,
				Need: mem.PermRead, World: mem.Normal,
			}
			gres, gerr := g.Translate(req, 0)
			ures, uerr := u.Translate(req, 0)
			inRange := off+bytes <= size
			if inRange {
				if gerr != nil || uerr != nil {
					return false
				}
				if gres.PA != ures.PA {
					return false
				}
			} else {
				// Both must refuse (the IOMMU faults on the unmapped
				// page; the Guarder finds no covering register).
				if gerr == nil || uerr == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: running any of the six models under any mechanism yields
// the same DMA byte counts — access control must never change WHAT
// moves, only when.
func TestMechanismsMoveIdenticalBytes(t *testing.T) {
	w, err := workload.ByName("yololite")
	if err != nil {
		t.Fatal(err)
	}
	var ref int64
	for _, mech := range Fig13Mechanisms() {
		_, stats, err := RunContended(w, mech, npu.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", mech.Name, err)
		}
		bytes := stats[sim.CtrDMABytes]
		if ref == 0 {
			ref = bytes
		} else if bytes != ref {
			t.Fatalf("%s moved %d bytes, baseline moved %d", mech.Name, bytes, ref)
		}
	}
}
