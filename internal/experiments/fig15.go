package experiments

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig15Group pairs a trusted workload with an untrusted one, run in
// parallel on two cores under a shared scratchpad capacity.
type Fig15Group struct {
	Trusted, Untrusted string
}

// Fig15Groups splits the six workloads into the paper's three pairs,
// each combining a scratchpad-sensitive model (alexnet, bert, resnet)
// with a less sensitive partner.
func Fig15Groups() []Fig15Group {
	return []Fig15Group{
		{Trusted: "alexnet", Untrusted: "yololite"},
		{Trusted: "bert", Untrusted: "mobilenet"},
		{Trusted: "resnet", Untrusted: "googlenet"},
	}
}

// Fig15Row is one (group, policy) result.
type Fig15Row struct {
	Group   string
	Policy  string
	Trusted struct {
		Model      string
		Cycles     sim.Cycle
		Normalized float64 // vs its solo full-scratchpad run
	}
	Untrusted struct {
		Model      string
		Cycles     sim.Cycle
		Normalized float64
	}
	FractionA float64
}

// Fig15Result is the whole figure.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15 runs each pair under the three static partitions and under
// sNPU's ID-based dynamic allocation, normalizing each workload to its
// solo run with the full scratchpad.
func Fig15(cfg npu.Config) (*Fig15Result, error) {
	groups := Fig15Groups()
	// Phase 1: solo full-scratchpad baselines, one cell per distinct
	// model.
	var names []string
	seen := map[string]bool{}
	for _, grp := range groups {
		for _, n := range []string{grp.Trusted, grp.Untrusted} {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	soloCycles, err := mapCells(names, func(name string) (sim.Cycle, error) {
		w, err := workload.Lookup(name)
		if err != nil {
			return 0, err
		}
		c, _, err := RunSolo(w, Mechanism{Name: "none"}, cfg)
		if err != nil {
			return 0, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	solo := map[string]sim.Cycle{}
	for i, n := range names {
		solo[n] = soloCycles[i]
	}

	// Phase 2: the (group, policy) grid, one spatial pair per cell.
	policies := append(driver.StaticPartitions(), driver.DynamicPolicy())
	rows, err := runCells(len(groups)*len(policies), func(i int) (Fig15Row, error) {
		gi, grp, pol := i/len(policies), groups[i/len(policies)], policies[i%len(policies)]
		wa, err := workload.Lookup(grp.Trusted)
		if err != nil {
			return Fig15Row{}, err
		}
		wb, err := workload.Lookup(grp.Untrusted)
		if err != nil {
			return Fig15Row{}, err
		}
		soloA, soloB := solo[grp.Trusted], solo[grp.Untrusted]
		soc, err := AcquireSoC(cfg)
		if err != nil {
			return Fig15Row{}, err
		}
		defer soc.Release()
		r, err := driver.RunSpatialPair(soc.NPU, wa, wb, pol, soloA, soloB)
		if err != nil {
			return Fig15Row{}, fmt.Errorf("fig15 %s+%s/%s: %w", grp.Trusted, grp.Untrusted, pol.Name, err)
		}
		row := Fig15Row{
			Group:     fmt.Sprintf("group%d", gi+1),
			Policy:    pol.Name,
			FractionA: r.FractionA,
		}
		row.Trusted.Model = grp.Trusted
		row.Trusted.Cycles = r.CyclesA
		row.Trusted.Normalized = float64(r.CyclesA) / float64(soloA)
		row.Untrusted.Model = grp.Untrusted
		row.Untrusted.Cycles = r.CyclesB
		row.Untrusted.Normalized = float64(r.CyclesB) / float64(soloB)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig15Result{Rows: rows}, nil
}

// TableString renders the figure.
func (f *Fig15Result) TableString() string {
	header := []string{"group", "policy", "spad-fracA", "trusted", "norm-time", "untrusted", "norm-time"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Group, r.Policy,
			fmt.Sprintf("%.2f", r.FractionA),
			r.Trusted.Model, fmt.Sprintf("%.3f", r.Trusted.Normalized),
			r.Untrusted.Model, fmt.Sprintf("%.3f", r.Untrusted.Normalized),
		})
	}
	return Table(header, rows)
}
