package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestProfilerCadence(t *testing.T) {
	r := NewRegistry()
	p := NewProfiler(r, 100)
	var depth int64
	calls := 0
	p.Register("q.depth", func(now sim.Cycle) int64 { calls++; return depth })

	depth = 5
	p.MaybeSample(0) // first period boundary: samples
	p.MaybeSample(1) // same period: skipped
	p.MaybeSample(99)
	if calls != 1 {
		t.Fatalf("sampler ran %d times inside one period, want 1", calls)
	}
	depth = 9
	p.MaybeSample(100) // next period
	if calls != 2 {
		t.Fatalf("sampler ran %d times after two periods, want 2", calls)
	}
	if got := r.Gauge("q.depth").Value(); got != 9 {
		t.Fatalf("latest gauge = %d, want 9", got)
	}
	if got := r.Histogram("q.depth.samples", DefaultCycleBuckets()).Count(); got != 2 {
		t.Fatalf("sample histogram count = %d, want 2", got)
	}
	if got := r.Snapshot()["profiler.sample.count"]; got != 2 {
		t.Fatalf("profiler.sample.count = %d, want 2", got)
	}
}

// One sample per period no matter how many cycles the simulation
// jumped — the stream depends only on period boundaries crossed, so
// the same event stream always yields the same samples.
func TestProfilerSkipsWholePeriods(t *testing.T) {
	r := NewRegistry()
	p := NewProfiler(r, 10)
	calls := 0
	p.Register("x", func(now sim.Cycle) int64 { calls++; return 0 })
	p.MaybeSample(0)
	p.MaybeSample(95) // skipped 9 whole periods: still one sample
	p.MaybeSample(99) // same period as 95
	p.MaybeSample(100)
	if calls != 3 {
		t.Fatalf("sampler ran %d times, want 3 (at 0, 95, 100)", calls)
	}
}

func TestProfilerDuplicateRegisterKeepsFirst(t *testing.T) {
	r := NewRegistry()
	p := NewProfiler(r, 10)
	p.Register("d", func(now sim.Cycle) int64 { return 1 })
	p.Register("d", func(now sim.Cycle) int64 { return 2 }) // ignored
	p.MaybeSample(0)
	if got := r.Gauge("d").Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1 (first sampler wins)", got)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.Register("x", func(now sim.Cycle) int64 { return 0 })
	p.MaybeSample(42)
	if p.Every() != 0 {
		t.Fatal("nil profiler Every() != 0")
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Trace() != nil || o.Profiler() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
}

func TestNewObserverDefaults(t *testing.T) {
	o := NewObserver(Config{})
	if o.Registry() == nil || o.Profiler() == nil {
		t.Fatal("default observer missing registry or profiler")
	}
	if o.Trace() != nil {
		t.Fatal("default observer must not record spans (opt-in via Spans)")
	}
	if o.Profiler().Every() != DefaultSampleEvery {
		t.Fatalf("default cadence = %d, want %d", o.Profiler().Every(), DefaultSampleEvery)
	}
	ow := NewObserver(Config{Spans: true, TraceCap: 4})
	if ow.Trace() == nil {
		t.Fatal("Spans: true must enable the recorder")
	}
}
