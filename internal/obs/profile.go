package obs

import (
	"repro/internal/sim"
)

// Profiler is the pluggable profiling-hook manager: components
// register samplers (queue depths, link occupancy, channel backlog)
// and timed call sites tick MaybeSample with the current simulated
// cycle. Samples land on a fixed cycle cadence — at most one sample
// set per period, taken by whichever component crosses the period
// boundary first — so the sample stream depends only on the simulated
// event stream, never on the wall clock.
//
// Each sampler feeds a gauge named after it (the latest sample) and a
// histogram named <name>.samples (the distribution over the run).
type Profiler struct {
	reg   *Registry
	every sim.Cycle
	next  sim.Cycle
	hooks []hook
	ticks *Counter
}

// hook is one registered sampler with its resolved instruments.
type hook struct {
	name string
	fn   func(now sim.Cycle) int64
	last *Gauge
	hist *Histogram
}

// NewProfiler builds a profiler sampling every `every` cycles into
// reg. every must be positive.
func NewProfiler(reg *Registry, every sim.Cycle) *Profiler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Profiler{reg: reg, every: every, ticks: reg.Counter("profiler.sample.count")}
}

// Register adds a sampler. fn is called with the current simulated
// cycle and must be cheap and side-effect-free. Registering the same
// name twice keeps the first sampler (attachment helpers may run more
// than once). Safe on nil (no-op).
func (p *Profiler) Register(name string, fn func(now sim.Cycle) int64) {
	if p == nil {
		return
	}
	for _, h := range p.hooks {
		if h.name == name {
			return
		}
	}
	p.hooks = append(p.hooks, hook{
		name: name,
		fn:   fn,
		last: p.reg.Gauge(name),
		hist: p.reg.Histogram(name+".samples", DefaultCycleBuckets()),
	})
}

// MaybeSample takes one sample set if the current cycle has crossed
// into a new sampling period, else returns immediately (one compare).
// Safe on nil.
func (p *Profiler) MaybeSample(now sim.Cycle) {
	if p == nil || now < p.next {
		return
	}
	for _, h := range p.hooks {
		v := h.fn(now)
		h.last.Set(v)
		h.hist.Observe(v)
	}
	p.ticks.Inc()
	// Advance to the next period boundary after now; one sample per
	// period no matter how many cycles elapsed in between.
	p.next = (now/p.every + 1) * p.every
}

// Every reports the sampling period.
func (p *Profiler) Every() sim.Cycle {
	if p == nil {
		return 0
	}
	return p.every
}
