package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Counter is a monotonically increasing metric. The handle is stable
// for the lifetime of its Registry (Reset zeroes it in place), so hot
// components resolve it once and increment through the pointer —
// zero allocations, no map lookup, in the style of sim.Stats.Counter.
// Counters are single-writer: one simulated SoC owns its instruments.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v += delta }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time value (a queue depth, an occupancy).
type Gauge struct{ v int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v }

// Histogram buckets observations (typically cycle spans) under
// ascending inclusive upper bounds, with an implicit +Inf bucket at
// the end. Observe is allocation-free.
type Histogram struct {
	bounds []int64 // ascending; counts[i] holds v <= bounds[i]
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    int64
	n      int64
}

// Observe records one value: it lands in the first bucket whose upper
// bound is >= v (boundary values belong to the bounded bucket, the
// Prometheus "le" convention).
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count reports total observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Bounds returns the configured upper bounds (not including +Inf).
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 { return append([]int64(nil), h.counts...) }

// DefaultCycleBuckets is the standard exponential cycle bucketing:
// 1, 4, 16, ... 4^10 (~1M cycles = ~1ms at 1 GHz), wide enough for
// anything from a single flit hop to a full layer.
func DefaultCycleBuckets() []int64 {
	out := make([]int64, 0, 11)
	for b := int64(1); b <= 1<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Registry is a hierarchical metric namespace. Names are dotted paths
// (component.site.metric); Scope carves sub-namespaces. Registration
// is idempotent — asking for an existing name of the same kind returns
// the same handle — and kind-checked: reusing a name across kinds (or
// re-registering a histogram with different bounds) panics, because it
// is a wiring bug no run should silently tolerate.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stats    []*sim.Stats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkKind panics if name is already registered under another kind.
// Callers hold r.mu.
func (r *Registry) checkKind(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter, requested as a %s", name, want))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, requested as a %s", name, want))
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, requested as a %s", name, want))
	}
}

// Counter returns the stable counter handle for name, creating it at
// zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the stable gauge handle for name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the stable histogram handle for name with the
// given ascending upper bounds. Re-registering with different bounds
// panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// AttachStats includes a sim.Stats counter sink in this registry's
// exports and snapshots. Many sinks may be attached (one per
// experiment cell); same-named counters sum across sinks. The sink's
// cells are read at export time, so attach-then-run works — but reads
// must happen after the owning SoC's run completes (the experiment
// runner's WaitGroup provides that ordering).
func (r *Registry) AttachStats(s *sim.Stats) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = append(r.stats, s)
}

// Scope returns a view of the registry under prefix (no trailing
// dot): Scope("noc").Counter("send.count") is Counter("noc.send.count").
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix + "."} }

// Scope is a prefixed view of a Registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Counter is Registry.Counter under the scope prefix.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + name) }

// Gauge is Registry.Gauge under the scope prefix.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + name) }

// Histogram is Registry.Histogram under the scope prefix.
func (s Scope) Histogram(name string, bounds []int64) *Histogram {
	return s.r.Histogram(s.prefix+name, bounds)
}

// Scope nests a sub-namespace.
func (s Scope) Scope(prefix string) Scope {
	return Scope{r: s.r, prefix: s.prefix + prefix + "."}
}

// Reset zeroes every instrument in place; handles stay valid and read
// zero afterwards. Attached sim.Stats sinks are NOT reset — they
// belong to their SoCs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.sum, h.n = 0, 0
	}
}

// counterTotals merges registry counters with every attached stats
// sink, summing duplicates. Callers hold r.mu.
func (r *Registry) counterTotals() map[string]int64 {
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] += c.v
	}
	for _, s := range r.stats {
		for name, v := range s.Snapshot() {
			out[name] += v
		}
	}
	return out
}

// Snapshot returns all counter values (registry + attached stats,
// summed by name). Gauges and histograms are read through their
// handles or the exporters.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterTotals()
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
