package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Exporters. Both formats are deterministic: metrics render sorted by
// name, and same-named counters from attached sim.Stats sinks sum to
// one line regardless of attachment or completion order.

// promName maps a dotted metric path onto the Prometheus identifier
// charset (dots and dashes become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (counters, gauges, and histograms with cumulative
// le-labeled buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder

	counters := r.counterTotals()
	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedKeys(r.gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, r.gauges[name].v)
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.sum, pn, h.n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // per-bucket; last entry is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// jsonDump is the JSON export shape. encoding/json sorts map keys, so
// the output is deterministic.
type jsonDump struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]jsonHistogram `json:"histograms"`
}

// WriteJSON renders every metric as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	dump := jsonDump{
		Counters:   r.counterTotals(),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]jsonHistogram, len(r.hists)),
	}
	for name, g := range r.gauges {
		dump.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		dump.Histograms[name] = jsonHistogram{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
