package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("noc.packets").Add(12)
	r.Gauge("noc.link.occupancy").Set(3)
	h := r.Histogram("dma.xfer.cycles", []int64{1, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE noc_packets counter\nnoc_packets 12\n",
		"# TYPE noc_link_occupancy gauge\nnoc_link_occupancy 3\n",
		"# TYPE dma_xfer_cycles histogram\n",
		"dma_xfer_cycles_bucket{le=\"1\"} 1\n",
		"dma_xfer_cycles_bucket{le=\"4\"} 2\n",    // cumulative
		"dma_xfer_cycles_bucket{le=\"+Inf\"} 3\n", // total
		"dma_xfer_cycles_sum 103\n",
		"dma_xfer_cycles_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicAndSorted(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		// Register in scrambled order; export must sort by name.
		for _, n := range []string{"z.last", "a.first", "m.mid"} {
			r.Counter(n).Inc()
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := build()
	if out != build() {
		t.Fatal("two identical registries exported different bytes")
	}
	if strings.Index(out, "a_first") > strings.Index(out, "m_mid") ||
		strings.Index(out, "m_mid") > strings.Index(out, "z_last") {
		t.Fatalf("export not sorted by name:\n%s", out)
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-5)
	r.Histogram("h", []int64{10}).Observe(7)
	sink := sim.NewStats()
	*sink.Counter("c") = 3 // same name as the registry counter: sums
	r.AttachStats(sink)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Bounds []int64 `json:"bounds"`
			Counts []int64 `json:"counts"`
			Sum    int64   `json:"sum"`
			Count  int64   `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if dump.Counters["c"] != 5 {
		t.Fatalf("counter c = %d, want 5 (registry 2 + sink 3)", dump.Counters["c"])
	}
	if dump.Gauges["g"] != -5 {
		t.Fatalf("gauge g = %d, want -5", dump.Gauges["g"])
	}
	h := dump.Histograms["h"]
	if len(h.Bounds) != 1 || h.Bounds[0] != 10 || len(h.Counts) != 2 ||
		h.Counts[0] != 1 || h.Counts[1] != 0 || h.Sum != 7 || h.Count != 1 {
		t.Fatalf("histogram shape wrong: %+v", h)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"noc.link.stall_cycles": "noc_link_stall_cycles",
		"dma-retry.count":       "dma_retry_count",
		"plain":                 "plain",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
