// Package obs is the unified observability layer of the simulated SoC
// (beyond the paper; it exists to make the evaluation's §VI questions
// — where do stall cycles, extra NoC flits, and IOTLB walks go? —
// answerable from any run, not only from the curated figures).
//
// It bundles three instruments behind one Observer handle:
//
//   - a hierarchical metrics Registry (counters, gauges, cycle-bucketed
//     histograms) with dotted per-component namespaces such as
//     noc.link.stall_cycles or monitor.abort.count, exported as
//     Prometheus text and JSON;
//   - span-based tracing over internal/trace, unifying the Chrome-trace
//     timeline with spans for NoC sends, DMA bursts, IOTLB walks, fault
//     injection, and Monitor checkpoint/restart epochs;
//   - pluggable profiling hooks (Profiler): components register
//     samplers for queue depths and link occupancy, sampled on a fixed
//     simulated-cycle cadence.
//
// Determinism rules: nothing in this package reads the wall clock,
// global randomness, or map iteration order on a hot path; every
// export is sorted by name. Instrumentation is passive — attaching an
// Observer never changes a single simulated cycle — and off by
// default: an unattached component pays one nil check per event.
//
// Concurrency: instruments are single-writer, like sim.Stats — each
// simulated SoC is single-threaded, and parallel experiment cells own
// private SoCs. The Registry itself (registration, AttachStats,
// export) is mutex-guarded so one registry can aggregate many cells
// running under the -j N experiment runner.
package obs

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultTraceCap bounds the span recorder so long runs cannot grow
// without bound (matches RunModelTraced's cap).
const DefaultTraceCap = 1 << 20

// DefaultSampleEvery is the profiling-hook cadence in simulated
// cycles. 4096 cycles keeps sample streams small (a few thousand
// samples for the largest workload) while still resolving per-layer
// behavior.
const DefaultSampleEvery = sim.Cycle(4096)

// Config sizes an Observer. The zero value selects the defaults:
// metrics and profiling hooks on, span recording off.
type Config struct {
	// TraceCap caps recorded spans (0 = DefaultTraceCap; negative =
	// unbounded). Only meaningful with Spans.
	TraceCap int
	// SampleEvery is the profiler cadence in cycles (0 = default).
	SampleEvery sim.Cycle
	// Spans opts into span recording (one trace event per NoC send,
	// DMA burst, IOTLB walk, ...). Spans cost wall time proportional
	// to the event count — the same class as -trace — so they sit
	// outside the <2% budget the metrics overhead gate enforces.
	Spans bool
}

// Observer is the per-SoC observability handle threaded through the
// components. A nil *Observer is valid everywhere and means
// "observability off"; all methods are nil-safe.
type Observer struct {
	reg  *Registry
	rec  *trace.Recorder
	prof *Profiler
}

// NewObserver builds an enabled observer.
func NewObserver(cfg Config) *Observer {
	reg := NewRegistry()
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	o := &Observer{reg: reg, prof: NewProfiler(reg, every)}
	if cfg.Spans {
		cap := cfg.TraceCap
		if cap == 0 {
			cap = DefaultTraceCap
		}
		if cap < 0 {
			cap = 0 // trace.New treats 0 as unbounded
		}
		o.rec = trace.New(cap)
	}
	return o
}

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Trace returns the span recorder. It is nil on a nil observer or
// when tracing is disabled; a nil *trace.Recorder is itself a valid
// no-op sink, so callers may record into it unconditionally.
func (o *Observer) Trace() *trace.Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Profiler returns the sampling hook manager (nil on a nil observer;
// a nil *Profiler is a valid no-op).
func (o *Observer) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.prof
}
