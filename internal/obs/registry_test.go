package obs

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dma.retry.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("noc.link.occupancy")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestDuplicateRegistrationReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("monitor.call.count")
	c2 := r.Counter("monitor.call.count")
	if c1 != c2 {
		t.Fatal("same counter name returned distinct handles")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("duplicate handle does not share state")
	}
	h1 := r.Histogram("dma.xfer.cycles", DefaultCycleBuckets())
	h2 := r.Histogram("dma.xfer.cycles", DefaultCycleBuckets())
	if h1 != h2 {
		t.Fatal("same histogram name+bounds returned distinct handles")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.count")
	mustPanic(t, "counter name reused as gauge", func() { r.Gauge("x.count") })
	mustPanic(t, "counter name reused as histogram", func() { r.Histogram("x.count", []int64{1}) })
	r.Gauge("x.depth")
	mustPanic(t, "gauge name reused as counter", func() { r.Counter("x.depth") })
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1, 10, 100})
	mustPanic(t, "different bounds length", func() { r.Histogram("h", []int64{1, 10}) })
	mustPanic(t, "different bounds values", func() { r.Histogram("h", []int64{1, 10, 99}) })
	mustPanic(t, "empty bounds", func() { r.Histogram("h2", nil) })
	mustPanic(t, "non-ascending bounds", func() { r.Histogram("h3", []int64{10, 10}) })
}

func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1, 4, 16})
	// Boundary values land in the bounded bucket ("le" convention);
	// anything above the last bound lands in +Inf.
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1 << 40} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // le=1: {0,1}; le=4: {2,4}; le=16: {5,16}; +Inf: {17, 1<<40}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := int64(0 + 1 + 2 + 4 + 5 + 16 + 17 + 1<<40)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestResetMidRunKeepsHandlesValid(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{8})
	c.Add(3)
	g.Set(9)
	h.Observe(5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero instruments in place")
	}
	// The pre-Reset handles must still be the live instruments.
	c.Inc()
	h.Observe(2)
	if r.Counter("c") != c {
		t.Fatal("Reset invalidated the counter handle")
	}
	if got := r.Snapshot()["c"]; got != 1 {
		t.Fatalf("post-Reset counter = %d, want 1", got)
	}
	if h.Count() != 1 {
		t.Fatalf("post-Reset histogram count = %d, want 1", h.Count())
	}
}

func TestScopeNesting(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("noc").Scope("link")
	s.Counter("stalls").Add(2)
	if got := r.Snapshot()["noc.link.stalls"]; got != 2 {
		t.Fatalf("scoped counter = %d, want 2", got)
	}
	if r.Counter("noc.link.stalls") != s.Counter("stalls") {
		t.Fatal("scoped and absolute names resolve to different handles")
	}
}

func TestAttachStatsSumsAcrossSinks(t *testing.T) {
	r := NewRegistry()
	a, b := sim.NewStats(), sim.NewStats()
	*a.Counter("noc.packets") = 3
	*b.Counter("noc.packets") = 4
	*b.Counter("dma.requests") = 1
	r.AttachStats(a)
	r.AttachStats(b)
	r.AttachStats(nil) // no-op
	r.Counter("noc.packets").Add(10)
	snap := r.Snapshot()
	if snap["noc.packets"] != 17 {
		t.Fatalf("summed counter = %d, want 17", snap["noc.packets"])
	}
	if snap["dma.requests"] != 1 {
		t.Fatalf("sink-only counter = %d, want 1", snap["dma.requests"])
	}
}

// TestConcurrentRegistration exercises the registry's mutex-guarded
// surface from many goroutines (run under -race by the CI `-race`
// job): registration, AttachStats, Reset, and exports may interleave.
// Instrument writes stay single-writer per the package contract, so
// each goroutine uses its own names.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := r.Scope("worker").Scope(string(rune('a' + id)))
			c := s.Counter("count")
			h := s.Histogram("lat", DefaultCycleBuckets())
			for j := 0; j < 100; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
			sink := sim.NewStats()
			*sink.Counter("shared.total") = 1
			r.AttachStats(sink)
			_ = r.Snapshot()
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["shared.total"] != 8 {
		t.Fatalf("shared.total = %d, want 8", snap["shared.total"])
	}
	for i := 0; i < 8; i++ {
		name := "worker." + string(rune('a'+i)) + ".count"
		if snap[name] != 100 {
			t.Fatalf("%s = %d, want 100", name, snap[name])
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}
