// Package tee models the CPU-side trusted execution environment the
// paper builds on (§II background; Penglai-style on RISC-V): a two-world hardware
// partition, PMP-like region registers enforced by the most privileged
// mode, a secure-boot measurement chain, and the privilege gate that
// makes "secure instructions" (the only way to program sNPU security
// state) meaningful in the simulation.
package tee

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/mem"
)

// ErrPrivilege is returned when normal-world software invokes an
// operation reserved for the secure world.
var ErrPrivilege = errors.New("tee: secure instruction issued from normal world")

// Context identifies the world a piece of software executes in. It is
// the simulation's stand-in for the hardware privilege state: holders
// of a Secure context model code running behind the EL3/M-mode gate.
//
// Contexts are handed out by the Machine; components that must only be
// programmable from the secure world demand a Context and verify it.
type Context struct {
	machine *Machine
	world   mem.World
}

// World reports the hardware world this context executes in.
func (c Context) World() mem.World { return c.world }

// IsSecure reports whether the context is the secure world.
func (c Context) IsSecure() bool { return c.world == mem.Secure }

// RequireSecure returns ErrPrivilege unless the context is secure.
// Every "secure instruction" in the sNPU design funnels through this.
func (c Context) RequireSecure() error {
	if c.machine == nil {
		return errors.New("tee: uninitialized context")
	}
	if c.world != mem.Secure {
		return ErrPrivilege
	}
	return nil
}

// PMPEntry is a physical-memory-protection register: an address range
// plus the worlds and permissions it grants. The monitor programs
// these at boot to carve the secure partition.
type PMPEntry struct {
	Base  mem.PhysAddr
	Size  uint64
	World mem.World
	Perm  mem.Perm
}

// Machine is the SoC's trust anchor: it owns the world partition, the
// PMP register file, and the secure-boot state. Exactly one Machine
// exists per simulated SoC.
type Machine struct {
	phys    *mem.Physical
	pmp     []PMPEntry
	boot    *BootChain
	secured bool
}

// NewMachine wires the trust anchor to physical memory.
func NewMachine(phys *mem.Physical) *Machine {
	return &Machine{phys: phys, boot: NewBootChain()}
}

// Phys exposes the physical memory (hardware components need it).
func (m *Machine) Phys() *mem.Physical { return m.phys }

// SecureContext returns the secure-world execution context. In
// hardware this is "being EL3/M-mode"; in the simulation only the
// monitor and TEE OS construction paths should call it.
func (m *Machine) SecureContext() Context {
	return Context{machine: m, world: mem.Secure}
}

// NormalContext returns the untrusted-world execution context used by
// the OS, the NPU driver, and non-secure tasks.
func (m *Machine) NormalContext() Context {
	return Context{machine: m, world: mem.Normal}
}

// ProgramPMP installs a PMP entry. Only the secure world may program
// PMP registers.
func (m *Machine) ProgramPMP(ctx Context, e PMPEntry) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if e.Size == 0 {
		return errors.New("tee: zero-size PMP entry")
	}
	m.pmp = append(m.pmp, e)
	return nil
}

// PMPEntries returns a copy of the PMP register file.
func (m *Machine) PMPEntries() []PMPEntry {
	out := make([]PMPEntry, len(m.pmp))
	copy(out, m.pmp)
	return out
}

// CheckPMP verifies a CPU-side access against the PMP file: the access
// is allowed if the world matches a covering entry with the needed
// permission, in addition to the region-map check in mem.Physical.
func (m *Machine) CheckPMP(world mem.World, addr mem.PhysAddr, size uint64, need mem.Perm) error {
	if err := m.phys.CheckAccess(world, addr, size, need); err != nil {
		return err
	}
	if len(m.pmp) == 0 {
		return nil // PMP not yet programmed: region map alone governs
	}
	for _, e := range m.pmp {
		if e.World == world && addr >= e.Base &&
			addr+mem.PhysAddr(size) <= e.Base+mem.PhysAddr(e.Size) && e.Perm.Has(need) {
			return nil
		}
	}
	return fmt.Errorf("tee: %s access [%#x,+%d) by %s world matches no PMP entry",
		need, uint64(addr), size, world)
}

// Measurement is a sha256 digest used throughout the trust chain.
type Measurement [sha256.Size]byte

func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// MeasureBytes hashes a blob into a Measurement.
func MeasureBytes(b []byte) Measurement { return sha256.Sum256(b) }

// BootStage is one link of the secure-boot chain: a named blob with
// its expected measurement.
type BootStage struct {
	Name     string
	Expected Measurement
}

// BootChain models the paper's secure boot flow: the ROM verifies the
// trusted loader, which verifies trusted firmware, which verifies the
// TEE OS and NPU Monitor before any normal-world software runs. Each
// stage extends a running measurement (TPM-PCR style) so the final
// digest attests the whole chain.
type BootChain struct {
	stages   []BootStage
	extended Measurement
	verified bool
	failed   string
}

// NewBootChain returns an empty, unverified chain.
func NewBootChain() *BootChain {
	return &BootChain{}
}

// AddStage appends a stage with its expected (vendor-signed)
// measurement. Stages must be added before Boot.
func (b *BootChain) AddStage(name string, expected Measurement) {
	b.stages = append(b.stages, BootStage{Name: name, Expected: expected})
}

// Boot verifies each provided blob against its expected measurement in
// order, extending the chain digest. It fails closed: the first
// mismatch marks the chain failed and stops.
func (b *BootChain) Boot(blobs [][]byte) error {
	if len(blobs) != len(b.stages) {
		return fmt.Errorf("tee: boot got %d blobs for %d stages", len(blobs), len(b.stages))
	}
	b.extended = Measurement{}
	for i, stage := range b.stages {
		got := MeasureBytes(blobs[i])
		if got != stage.Expected {
			b.verified = false
			b.failed = stage.Name
			return fmt.Errorf("tee: secure boot failed at stage %q: measurement mismatch", stage.Name)
		}
		h := sha256.New()
		h.Write(b.extended[:])
		h.Write(got[:])
		copy(b.extended[:], h.Sum(nil))
	}
	b.verified = true
	b.failed = ""
	return nil
}

// Verified reports whether the full chain booted cleanly.
func (b *BootChain) Verified() bool { return b.verified }

// FailedStage names the stage that broke the chain, if any.
func (b *BootChain) FailedStage() string { return b.failed }

// Attestation returns the extended chain digest (the simulated
// Root-of-Trust report).
func (b *BootChain) Attestation() Measurement { return b.extended }

// Boot runs the machine's secure-boot chain and, on success, marks the
// machine secured. sNPU components refuse secure configuration until
// the machine is secured.
func (m *Machine) Boot(blobs [][]byte) error {
	if err := m.boot.Boot(blobs); err != nil {
		return err
	}
	m.secured = true
	return nil
}

// BootChain exposes the machine's boot chain for staging.
func (m *Machine) BootChain() *BootChain { return m.boot }

// Secured reports whether secure boot completed.
func (m *Machine) Secured() bool { return m.secured }
