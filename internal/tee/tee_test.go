package tee

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	phys := mem.NewPhysical()
	for _, r := range []mem.Region{
		{Name: "normal", Base: 0x8000_0000, Size: 0x1000_0000, Owner: mem.Normal, CrossPerm: mem.PermRW},
		{Name: "secure", Base: 0x9000_0000, Size: 0x0800_0000, Owner: mem.Secure},
	} {
		if err := phys.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	return NewMachine(phys)
}

func TestContextPrivilege(t *testing.T) {
	m := newMachine(t)
	if err := m.SecureContext().RequireSecure(); err != nil {
		t.Fatalf("secure context rejected: %v", err)
	}
	if err := m.NormalContext().RequireSecure(); !errors.Is(err, ErrPrivilege) {
		t.Fatalf("normal context passed privilege check: %v", err)
	}
	var zero Context
	if err := zero.RequireSecure(); err == nil {
		t.Fatal("zero context passed privilege check")
	}
}

func TestProgramPMPRequiresSecure(t *testing.T) {
	m := newMachine(t)
	e := PMPEntry{Base: 0x9000_0000, Size: 0x1000, World: mem.Secure, Perm: mem.PermRW}
	if err := m.ProgramPMP(m.NormalContext(), e); !errors.Is(err, ErrPrivilege) {
		t.Fatalf("normal world programmed PMP: %v", err)
	}
	if err := m.ProgramPMP(m.SecureContext(), e); err != nil {
		t.Fatal(err)
	}
	if err := m.ProgramPMP(m.SecureContext(), PMPEntry{Size: 0}); err == nil {
		t.Fatal("zero-size PMP entry accepted")
	}
	if len(m.PMPEntries()) != 1 {
		t.Fatalf("pmp entries = %d", len(m.PMPEntries()))
	}
}

func TestCheckPMP(t *testing.T) {
	m := newMachine(t)
	sec := m.SecureContext()
	// Before PMP programming, the region map governs alone.
	if err := m.CheckPMP(mem.Normal, 0x8000_0000, 64, mem.PermRW); err != nil {
		t.Fatalf("pre-PMP normal access denied: %v", err)
	}
	if err := m.ProgramPMP(sec, PMPEntry{Base: 0x9000_0000, Size: 0x1000, World: mem.Secure, Perm: mem.PermRW}); err != nil {
		t.Fatal(err)
	}
	if err := m.ProgramPMP(sec, PMPEntry{Base: 0x8000_0000, Size: 0x1000_0000, World: mem.Normal, Perm: mem.PermRW}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckPMP(mem.Secure, 0x9000_0000, 64, mem.PermRW); err != nil {
		t.Fatalf("secure access inside PMP window denied: %v", err)
	}
	// Secure access outside any secure PMP window is denied even though
	// the region map would allow it.
	if err := m.CheckPMP(mem.Secure, 0x9000_2000, 64, mem.PermRead); err == nil {
		t.Fatal("secure access outside PMP window allowed")
	}
	// Normal access to secure memory fails at the region map already.
	if err := m.CheckPMP(mem.Normal, 0x9000_0000, 4, mem.PermRead); err == nil {
		t.Fatal("normal world read secure memory")
	}
}

func chainFor(blobs ...[]byte) (*BootChain, [][]byte) {
	b := NewBootChain()
	names := []string{"trusted-loader", "trusted-firmware", "teeos", "npu-monitor"}
	for i, blob := range blobs {
		b.AddStage(names[i%len(names)], MeasureBytes(blob))
	}
	return b, blobs
}

func TestBootChainVerifies(t *testing.T) {
	chain, blobs := chainFor([]byte("loader"), []byte("firmware"), []byte("teeos"), []byte("monitor"))
	if err := chain.Boot(blobs); err != nil {
		t.Fatal(err)
	}
	if !chain.Verified() {
		t.Fatal("chain not verified after clean boot")
	}
	att1 := chain.Attestation()
	// Re-boot with identical blobs: deterministic attestation.
	if err := chain.Boot(blobs); err != nil {
		t.Fatal(err)
	}
	if chain.Attestation() != att1 {
		t.Fatal("attestation not deterministic")
	}
}

func TestBootChainFailsClosedOnTamper(t *testing.T) {
	chain, blobs := chainFor([]byte("loader"), []byte("firmware"), []byte("teeos"))
	blobs[1] = []byte("evil-firmware")
	err := chain.Boot(blobs)
	if err == nil {
		t.Fatal("tampered firmware booted")
	}
	if chain.Verified() {
		t.Fatal("chain verified despite tamper")
	}
	if chain.FailedStage() != "trusted-firmware" {
		t.Fatalf("failed stage = %q", chain.FailedStage())
	}
}

func TestBootChainOrderMatters(t *testing.T) {
	a, b := []byte("aaa"), []byte("bbb")
	c1, _ := chainFor(a, b)
	c2, _ := chainFor(b, a)
	if err := c1.Boot([][]byte{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Boot([][]byte{b, a}); err != nil {
		t.Fatal(err)
	}
	if c1.Attestation() == c2.Attestation() {
		t.Fatal("attestation insensitive to stage order")
	}
}

func TestBootChainBlobCountMismatch(t *testing.T) {
	chain, _ := chainFor([]byte("x"), []byte("y"))
	if err := chain.Boot([][]byte{[]byte("x")}); err == nil {
		t.Fatal("short blob list accepted")
	}
}

func TestMachineBootGatesSecured(t *testing.T) {
	m := newMachine(t)
	if m.Secured() {
		t.Fatal("machine secured before boot")
	}
	loader, fw := []byte("ldr"), []byte("fw")
	m.BootChain().AddStage("loader", MeasureBytes(loader))
	m.BootChain().AddStage("firmware", MeasureBytes(fw))
	if err := m.Boot([][]byte{loader, []byte("tampered")}); err == nil {
		t.Fatal("tampered boot succeeded")
	}
	if m.Secured() {
		t.Fatal("machine secured after failed boot")
	}
	if err := m.Boot([][]byte{loader, fw}); err != nil {
		t.Fatal(err)
	}
	if !m.Secured() {
		t.Fatal("machine not secured after clean boot")
	}
}
