package tee

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Remote attestation: the Root-of-Trust signs (here: MACs, standing in
// for an asymmetric signature) a report binding the secure-boot chain
// digest to a task's code measurement and a caller-chosen nonce. A
// model owner verifies the report before provisioning keys, closing
// the loop the NPU Monitor's sealing path assumes.

// ErrNotAttestable is returned when attestation is requested before
// secure boot completed.
var ErrNotAttestable = errors.New("tee: machine not secure-booted, nothing to attest")

// ErrBadReport is returned when report verification fails.
var ErrBadReport = errors.New("tee: attestation report verification failed")

// Report is one attestation quote.
type Report struct {
	// BootDigest is the extended secure-boot chain measurement.
	BootDigest Measurement
	// TaskDigest is the attested task's code measurement.
	TaskDigest Measurement
	// Nonce is the verifier's freshness challenge.
	Nonce uint64
	// MAC authenticates the above under the device key.
	MAC [sha256.Size]byte
}

func (r Report) message() []byte {
	msg := make([]byte, 0, 2*sha256.Size+8)
	msg = append(msg, r.BootDigest[:]...)
	msg = append(msg, r.TaskDigest[:]...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], r.Nonce)
	return append(msg, n[:]...)
}

// deviceKey derives the simulated Root-of-Trust key. A real SoC fuses
// this at manufacturing; determinism here keeps tests reproducible.
func (m *Machine) deviceKey() []byte {
	sum := sha256.Sum256([]byte("snpu-device-key"))
	return sum[:]
}

// Attest produces a report for a task measurement under the machine's
// device key. Only a secure context may ask the Root-of-Trust to
// quote, and only after secure boot.
func (m *Machine) Attest(ctx Context, taskDigest Measurement, nonce uint64) (Report, error) {
	if err := ctx.RequireSecure(); err != nil {
		return Report{}, err
	}
	if !m.Secured() {
		return Report{}, ErrNotAttestable
	}
	r := Report{
		BootDigest: m.boot.Attestation(),
		TaskDigest: taskDigest,
		Nonce:      nonce,
	}
	mac := hmac.New(sha256.New, m.deviceKey())
	mac.Write(r.message())
	copy(r.MAC[:], mac.Sum(nil))
	return r, nil
}

// VerifyReport checks a report against the expected boot digest, task
// digest, and nonce, using the device key (which a real verifier holds
// as the vendor's public key).
func (m *Machine) VerifyReport(r Report, expectedBoot, expectedTask Measurement, nonce uint64) error {
	mac := hmac.New(sha256.New, m.deviceKey())
	mac.Write(r.message())
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrBadReport)
	}
	if r.BootDigest != expectedBoot {
		return fmt.Errorf("%w: boot digest mismatch", ErrBadReport)
	}
	if r.TaskDigest != expectedTask {
		return fmt.Errorf("%w: task digest mismatch", ErrBadReport)
	}
	if r.Nonce != nonce {
		return fmt.Errorf("%w: stale nonce", ErrBadReport)
	}
	return nil
}
