package tee

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

func bootedMachine(t *testing.T) *Machine {
	t.Helper()
	phys := mem.NewPhysical()
	if err := phys.AddRegion(mem.Region{Name: "normal", Base: 0x8000_0000, Size: 1 << 20, Owner: mem.Normal, CrossPerm: mem.PermRW}); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(phys)
	blobs := [][]byte{[]byte("ldr"), []byte("fw")}
	m.BootChain().AddStage("loader", MeasureBytes(blobs[0]))
	m.BootChain().AddStage("firmware", MeasureBytes(blobs[1]))
	if err := m.Boot(blobs); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAttestRoundTrip(t *testing.T) {
	m := bootedMachine(t)
	task := MeasureBytes([]byte("secure model op stream"))
	const nonce = 0xfeed_beef
	rep, err := m.Attest(m.SecureContext(), task, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyReport(rep, m.BootChain().Attestation(), task, nonce); err != nil {
		t.Fatal(err)
	}
}

func TestAttestRequiresSecureContextAndBoot(t *testing.T) {
	m := bootedMachine(t)
	task := MeasureBytes([]byte("x"))
	if _, err := m.Attest(m.NormalContext(), task, 1); !errors.Is(err, ErrPrivilege) {
		t.Fatalf("normal world obtained a quote: %v", err)
	}
	unbooted := NewMachine(mem.NewPhysical())
	if _, err := unbooted.Attest(unbooted.SecureContext(), task, 1); !errors.Is(err, ErrNotAttestable) {
		t.Fatalf("unbooted machine attested: %v", err)
	}
}

func TestVerifyReportRejectsTampering(t *testing.T) {
	m := bootedMachine(t)
	task := MeasureBytes([]byte("task"))
	rep, err := m.Attest(m.SecureContext(), task, 7)
	if err != nil {
		t.Fatal(err)
	}
	boot := m.BootChain().Attestation()

	// Forged MAC.
	forged := rep
	forged.MAC[0] ^= 1
	if err := m.VerifyReport(forged, boot, task, 7); !errors.Is(err, ErrBadReport) {
		t.Fatal("forged MAC verified")
	}
	// Swapped task digest (honest MAC won't match the message).
	swapped := rep
	swapped.TaskDigest = MeasureBytes([]byte("other task"))
	if err := m.VerifyReport(swapped, boot, swapped.TaskDigest, 7); !errors.Is(err, ErrBadReport) {
		t.Fatal("swapped digest verified")
	}
	// Replayed nonce.
	if err := m.VerifyReport(rep, boot, task, 8); !errors.Is(err, ErrBadReport) {
		t.Fatal("stale nonce verified")
	}
	// Wrong expected boot digest.
	if err := m.VerifyReport(rep, MeasureBytes([]byte("evil boot")), task, 7); !errors.Is(err, ErrBadReport) {
		t.Fatal("wrong boot expectation verified")
	}
}
