package taskimage

import (
	"testing"

	"repro/internal/isolator"
	"repro/internal/npu"
	"repro/internal/workload"
)

// FuzzDecode drives the untrusted-image decoder with arbitrary bytes.
// The security property is "no panic, no over-allocation"; acceptance
// additionally implies a structurally bounded program. Run longer with
// `go test -fuzz=FuzzDecode ./internal/taskimage`.
func FuzzDecode(f *testing.F) {
	// Seed with a valid image and a few degenerate corpora.
	w := workload.Workload{
		Name: "fuzz",
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g", M: 16, K: 16, N: 16}}},
		},
	}
	prog, _, err := npu.Compile(w, npu.DefaultConfig(), 0, npu.DefaultLayout)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(&Image{
		Name:     "fuzz",
		Program:  prog,
		Expected: prog.Measurement(),
		Topology: isolator.Topology{W: 1, H: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x73, 0x50, 0x4e, 0x55}) // bare magic
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		if img.Program == nil {
			t.Fatal("accepted image with nil program")
		}
		if len(img.Program.Ops) > MaxOps || len(img.SealedModel) > MaxModelBytes {
			t.Fatal("accepted image exceeding caps")
		}
	})
}
