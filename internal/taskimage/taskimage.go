// Package taskimage defines the serialized secure-task package the
// untrusted driver ships through the §IV trampoline's shared memory: the
// compiled op stream, the owner's expected measurement, the sealed
// model, and the required NoC topology, framed with a magic, version,
// and length-prefixed sections.
//
// The monitor PARSES THESE BYTES FROM THE UNTRUSTED WORLD, so decoding
// is written defensively: every length is bounds-checked against the
// remaining buffer and against hard caps, unknown versions and
// trailing garbage are rejected, and a decode never allocates more
// than a small multiple of the input size. The fuzz-style property
// tests in this package assert that no byte-level mutation of a valid
// image can crash the decoder.
package taskimage

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isolator"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
)

// Format constants.
const (
	// Magic identifies a task image ("sNPUTIMG" truncated to 4 bytes).
	Magic = uint32(0x554e5073) // "sPNU" little-endian
	// Version is the only format revision this decoder accepts.
	// Version 2 added the program's 32-byte source digest (the
	// canonical-graph measurement) to the program section; v1 images
	// are rejected rather than decoded with a zero digest, so a stale
	// producer cannot smuggle a program past the graph-binding check.
	Version = uint16(2)
	// MaxOps caps the op stream a single image may carry.
	MaxOps = 4 << 20
	// MaxModelBytes caps the sealed model payload (64 MiB).
	MaxModelBytes = 64 << 20
	// MaxNameLen caps the task name.
	MaxNameLen = 256
)

// Decode errors.
var (
	ErrBadMagic   = errors.New("taskimage: bad magic")
	ErrBadVersion = errors.New("taskimage: unsupported version")
	ErrTruncated  = errors.New("taskimage: truncated image")
	ErrOversized  = errors.New("taskimage: section exceeds cap")
	ErrTrailing   = errors.New("taskimage: trailing bytes after image")
)

// Image is the decoded task package.
type Image struct {
	Name        string
	Program     *npu.Program
	Expected    [sha256.Size]byte
	KeyID       string
	SealedModel []byte
	Topology    isolator.Topology
}

// opRecord is the fixed wire layout of one op (9 little-endian u64s).
const opRecordBytes = 9 * 8

// Encode serializes an image. It is the *owner-side* producer; the
// encoder is strict so every encoded image round-trips.
func Encode(img *Image) ([]byte, error) {
	if img == nil || img.Program == nil {
		return nil, fmt.Errorf("taskimage: nil image or program")
	}
	if len(img.Name) > MaxNameLen || len(img.KeyID) > MaxNameLen || len(img.Program.Name) > MaxNameLen {
		return nil, fmt.Errorf("taskimage: name/keyID too long")
	}
	if len(img.Program.Ops) > MaxOps {
		return nil, fmt.Errorf("taskimage: %d ops exceeds cap", len(img.Program.Ops))
	}
	if len(img.SealedModel) > MaxModelBytes {
		return nil, fmt.Errorf("taskimage: sealed model too large")
	}
	var out []byte
	u16 := func(v uint16) { out = binary.LittleEndian.AppendUint16(out, v) }
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u64 := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }
	bytesSec := func(b []byte) {
		u32(uint32(len(b)))
		out = append(out, b...)
	}

	u32(Magic)
	u16(Version)
	bytesSec([]byte(img.Name))
	bytesSec([]byte(img.Program.Name))
	bytesSec([]byte(img.KeyID))
	out = append(out, img.Expected[:]...)
	u32(uint32(img.Topology.W))
	u32(uint32(img.Topology.H))

	p := img.Program
	u32(uint32(p.Layers))
	u64(uint64(p.TotalMACs))
	u64(uint64(p.IdealComputeCycles))
	u64(uint64(p.SpadBytes))
	u64(p.LiveSpadBytes)
	u64(p.AccTileBytes)
	out = append(out, p.SourceDigest[:]...)
	u32(uint32(len(p.Ops)))
	for _, op := range p.Ops {
		u64(uint64(op.Kind))
		u64(uint64(op.VA))
		u64(op.Bytes)
		u64(uint64(op.Cycles))
		u64(uint64(op.Flits))
		u64(uint64(op.Peer))
		u64(uint64(op.Layer))
		flags := uint64(0)
		if op.Tile {
			flags |= 1
		}
		if op.Weight {
			flags |= 2
		}
		u64(flags)
		u64(uint64(op.MACs))
	}
	bytesSec(img.SealedModel)
	return out, nil
}

// decoder walks the untrusted buffer with bounds checks.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(cap int) ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(cap) {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversized, n, cap)
	}
	if d.remaining() < int(n) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out, nil
}

// Decode parses an untrusted task image. On any malformation it
// returns an error; it never panics and never over-allocates.
func Decode(buf []byte) (*Image, error) {
	d := &decoder{buf: buf}
	magic, err := d.u32()
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	ver, err := d.u16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	name, err := d.bytes(MaxNameLen)
	if err != nil {
		return nil, err
	}
	progName, err := d.bytes(MaxNameLen)
	if err != nil {
		return nil, err
	}
	keyID, err := d.bytes(MaxNameLen)
	if err != nil {
		return nil, err
	}
	img := &Image{Name: string(name), KeyID: string(keyID)}
	if d.remaining() < sha256.Size {
		return nil, ErrTruncated
	}
	copy(img.Expected[:], d.buf[d.off:])
	d.off += sha256.Size
	tw, err := d.u32()
	if err != nil {
		return nil, err
	}
	th, err := d.u32()
	if err != nil {
		return nil, err
	}
	if tw > 64 || th > 64 {
		return nil, fmt.Errorf("%w: topology %dx%d", ErrOversized, tw, th)
	}
	img.Topology = isolator.Topology{W: int(tw), H: int(th)}

	p := &npu.Program{Name: string(progName)}
	layers, err := d.u32()
	if err != nil {
		return nil, err
	}
	if layers > 1<<20 {
		return nil, fmt.Errorf("%w: %d layers", ErrOversized, layers)
	}
	p.Layers = int(layers)
	macs, err := d.u64()
	if err != nil {
		return nil, err
	}
	p.TotalMACs = int64(macs)
	ideal, err := d.u64()
	if err != nil {
		return nil, err
	}
	p.IdealComputeCycles = int64(ideal)
	spadBytes, err := d.u64()
	if err != nil {
		return nil, err
	}
	if spadBytes > 1<<32 {
		return nil, fmt.Errorf("%w: spad bytes", ErrOversized)
	}
	p.SpadBytes = int(spadBytes)
	if p.LiveSpadBytes, err = d.u64(); err != nil {
		return nil, err
	}
	if p.AccTileBytes, err = d.u64(); err != nil {
		return nil, err
	}
	if d.remaining() < sha256.Size {
		return nil, ErrTruncated
	}
	copy(p.SourceDigest[:], d.buf[d.off:])
	d.off += sha256.Size

	nOps, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nOps > MaxOps {
		return nil, fmt.Errorf("%w: %d ops", ErrOversized, nOps)
	}
	// The op section's size is known exactly; check once up front so a
	// huge claimed count cannot trigger a huge allocation.
	if int64(d.remaining()) < int64(nOps)*opRecordBytes {
		return nil, ErrTruncated
	}
	p.Ops = make([]npu.Op, nOps)
	for i := range p.Ops {
		vals := make([]uint64, 9)
		for j := range vals {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		if vals[0] > uint64(npu.OpRecv) {
			return nil, fmt.Errorf("taskimage: op %d has invalid kind %d", i, vals[0])
		}
		p.Ops[i] = npu.Op{
			Kind:   npu.OpKind(vals[0]),
			VA:     mem.VirtAddr(vals[1]),
			Bytes:  vals[2],
			Cycles: sim.Cycle(vals[3]),
			Flits:  int(vals[4]),
			Peer:   int(vals[5]),
			Layer:  int(vals[6]),
			Tile:   vals[7]&1 != 0,
			Weight: vals[7]&2 != 0,
			MACs:   int64(vals[8]),
		}
	}
	img.Program = p
	if img.SealedModel, err = d.bytes(MaxModelBytes); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, ErrTrailing
	}
	return img, nil
}
