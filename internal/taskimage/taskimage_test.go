package taskimage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isolator"
	"repro/internal/npu"
	"repro/internal/workload"
)

func sampleImage(t *testing.T) *Image {
	t.Helper()
	w := workload.Workload{
		Name: "img",
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g0", M: 32, K: 64, N: 32}}},
			{Name: "l1", GEMMs: []workload.GEMM{{Name: "g1", M: 16, K: 32, N: 48}}},
		},
	}
	prog, _, err := npu.Compile(w, npu.DefaultConfig(), 0, npu.DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	return &Image{
		Name:        "img",
		Program:     prog,
		Expected:    prog.Measurement(),
		KeyID:       "owner-key",
		SealedModel: bytes.Repeat([]byte{0xAB}, 777),
		Topology:    isolator.Topology{W: 2, H: 2},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := sampleImage(t)
	buf, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.KeyID != img.KeyID {
		t.Fatalf("strings: %q %q", got.Name, got.KeyID)
	}
	if got.Expected != img.Expected {
		t.Fatal("expected digest mismatch")
	}
	if got.Topology != img.Topology {
		t.Fatalf("topology %v", got.Topology)
	}
	if !bytes.Equal(got.SealedModel, img.SealedModel) {
		t.Fatal("sealed model mismatch")
	}
	// The measurement survives serialization — the monitor verifies
	// against the decoded program, so this is the security-relevant
	// invariant.
	if got.Program.Measurement() != img.Program.Measurement() {
		t.Fatal("program measurement changed across the wire")
	}
	if got.Program.SourceDigest != img.Program.SourceDigest {
		t.Fatal("source digest lost across the wire")
	}
	if got.Program.SourceDigest == ([32]byte{}) {
		t.Fatal("compiled program carries a zero source digest")
	}
	if len(got.Program.Ops) != len(img.Program.Ops) {
		t.Fatalf("op count %d vs %d", len(got.Program.Ops), len(img.Program.Ops))
	}
	for i := range got.Program.Ops {
		if got.Program.Ops[i] != img.Program.Ops[i] {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got.Program.Ops[i], img.Program.Ops[i])
		}
	}
}

func TestEncodeRejectsBadInputs(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil image encoded")
	}
	img := sampleImage(t)
	img.Name = string(bytes.Repeat([]byte{'a'}, MaxNameLen+1))
	if _, err := Encode(img); err == nil {
		t.Fatal("oversized name encoded")
	}
}

func TestDecodeRejectsFraming(t *testing.T) {
	img := sampleImage(t)
	buf, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	bad := append([]byte{}, buf...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	// Bad version.
	bad = append([]byte{}, buf...)
	bad[4] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte{}, buf...), 0x00)); !errors.Is(err, ErrTrailing) {
		t.Fatal("trailing byte accepted")
	}
	// Every truncation point fails cleanly.
	for cut := 0; cut < len(buf); cut += 7 {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Empty input.
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeRejectsHugeClaims(t *testing.T) {
	img := sampleImage(t)
	buf, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	// Find the op-count field by rebuilding a prefix: easier to craft a
	// minimal image claiming MaxOps+1 ops. Name/keyID empty.
	crafted := []byte{}
	le32 := func(v uint32) { crafted = append(crafted, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	le16 := func(v uint16) { crafted = append(crafted, byte(v), byte(v>>8)) }
	le64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			crafted = append(crafted, byte(v>>(8*i)))
		}
	}
	le32(Magic)
	le16(Version)
	le32(0) // name
	le32(0) // program name
	le32(0) // keyID
	crafted = append(crafted, make([]byte, 32)...)
	le32(1) // topo W
	le32(1) // topo H
	le32(1) // layers
	for i := 0; i < 5; i++ {
		le64(0) // macs, ideal, spad, live, acc
	}
	crafted = append(crafted, make([]byte, 32)...) // source digest
	le32(MaxOps + 1)
	if _, err := Decode(crafted); !errors.Is(err, ErrOversized) {
		t.Fatalf("huge op count: %v", err)
	}
	_ = buf
}

// Property (decoder hardening): random mutations of a valid image
// never panic the decoder, and any accepted mutation still yields a
// structurally sane program.
func TestDecodeSurvivesMutation(t *testing.T) {
	img := sampleImage(t)
	orig, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		buf := append([]byte{}, orig...)
		for flips := 0; flips < 8; flips++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		got, err := Decode(buf)
		if err != nil {
			return true // rejection is fine
		}
		// Accepted: basic sanity only.
		if got.Program == nil || len(got.Program.Ops) > MaxOps {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random truncations never panic.
func TestDecodeSurvivesTruncation(t *testing.T) {
	img := sampleImage(t)
	orig, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	f := func(cut uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		n := int(cut) % (len(orig) + 1)
		_, _ = Decode(orig[:n])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
