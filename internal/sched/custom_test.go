package sched_test

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/workload"
)

// customWorkload lowers a small hand-written IR graph — the scheduler
// must treat the result exactly like a registry model.
func customWorkload(t *testing.T) workload.Workload {
	t.Helper()
	w, err := graph.LowerBytes([]byte(`{
		"ir": 1, "name": "custom-cnn",
		"inputs": [{"name": "image", "shape": [1, 3, 32, 32]}],
		"nodes": [
			{"name": "conv1", "op": "Conv", "inputs": ["image"],
			 "attrs": {"filters": 16, "kernel": 3, "stride": 1, "pad": 1}},
			{"name": "pool1", "op": "Pool", "inputs": ["conv1"], "attrs": {"kernel": 2}},
			{"name": "fc", "op": "FC", "inputs": ["pool1"], "attrs": {"out": 10}}
		],
		"outputs": ["fc"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// A graph-derived workload runs through the scheduler, secure and
// non-secure, alongside registry models.
func TestSchedulerRunsCustomWorkload(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0, 1}})
	sealed := sealFor(t, sys, "tenant-c-key", 3)
	custom := customWorkload(t)
	reqs := []sched.Request{
		{ID: 1, Tenant: "c", Workload: &custom, Secure: true, Arrival: 0,
			KeyID: "tenant-c-key", Sealed: sealed},
		{ID: 2, Tenant: "c", Workload: &custom, Arrival: 0},
		{ID: 3, Tenant: "d", Model: "yololite", Arrival: 500},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", r.ID, err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(reqs) {
		t.Fatalf("completed %d of %d\n%s", rep.Completed, len(reqs), rep.DecisionLog())
	}
	for _, r := range rep.Results {
		if !r.Completed {
			t.Fatalf("req %d: %+v", r.ID, r)
		}
	}
	// The display model name defaults to the workload's own name.
	for _, r := range rep.Results[:2] {
		if r.Model != "custom-cnn" {
			t.Fatalf("req %d model %q", r.ID, r.Model)
		}
	}
}

// An invalid custom workload is refused at Submit — fail-closed, same
// as an unknown model name.
func TestSchedulerRejectsInvalidCustomWorkload(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	bad := workload.Workload{Name: "broken", Layers: []workload.Layer{
		{Name: "l0", GEMMs: []workload.GEMM{{Name: "g", M: 0, K: 8, N: 8}}},
	}}
	err := sc.Submit(sched.Request{ID: 1, Tenant: "x", Workload: &bad})
	if !errors.Is(err, sched.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

// Submit deep-copies the custom workload, so caller-side mutation
// after Submit cannot change what runs.
func TestSchedulerCopiesCustomWorkload(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	custom := customWorkload(t)
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "c", Workload: &custom}); err != nil {
		t.Fatal(err)
	}
	custom.Layers[0].GEMMs[0].M = 1 // hostile post-submit mutation
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed %d", rep.Completed)
	}
}

// Two different graphs sharing a display name and key must not share a
// secure batch; identical graphs may.
func TestSchedulerBatchesOnlyIdenticalGraphs(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 4})
	sealed := sealFor(t, sys, "k", 7)
	a := customWorkload(t)
	b := customWorkload(t)
	b.Layers[0].GEMMs[0].N = 32 // same name, different graph
	reqs := []sched.Request{
		{ID: 1, Tenant: "t", Workload: &a, Secure: true, KeyID: "k", Sealed: sealed},
		{ID: 2, Tenant: "t", Workload: &a, Secure: true, KeyID: "k", Sealed: sealed},
		{ID: 3, Tenant: "t", Workload: &b, Secure: true, KeyID: "k", Sealed: sealed},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", r.ID, err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	batched := 0
	for _, r := range rep.Results {
		if !r.Completed {
			t.Fatalf("req %d: %+v", r.ID, r)
		}
		if r.Batched {
			batched++
			if r.ID == 3 {
				t.Fatal("request 3 (different graph) rode request 1's batch")
			}
		}
	}
	if batched != 1 {
		t.Fatalf("want exactly request 2 batched, got %d batched", batched)
	}
}
