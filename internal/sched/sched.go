// Package sched is the multi-tenant secure task scheduler layered on
// the NPU Monitor's primitives (§IV-B, §IV-C): it admits a stream of
// secure and non-secure inference requests (per-tenant queues,
// priorities, deadlines), packs them onto NPU cores through the
// monitor trampoline, preempts with the mandatory flush-on-switch and
// ID-bit reassignment of §IV-B, backfills idle cores with non-secure
// work, and batches same-model requests from one tenant to amortize
// the monitor's sealing/verification cost. The serving layer itself is
// beyond the paper; every isolation-relevant action it takes goes
// through the monitor, so the scheduler stays untrusted (§III threat
// model) — a buggy or malicious scheduler can waste cycles but cannot
// weaken isolation, which the property suite pins.
//
// Everything is cycle-deterministic: decisions depend only on the
// submitted requests (never wall clock, map order, or goroutine
// interleaving), so one request trace replays to byte-identical
// per-request cycle counts and decision logs at any worker-pool width
// and across fresh System instances.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/driver"
	"repro/internal/guarder"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/workload"
)

// Errors the scheduler surfaces to submitters. ErrTaskAborted is
// deliberately opaque: whatever went wrong inside the secure world, the
// untrusted side learns only that the task is gone.
var (
	ErrTaskAborted   = errors.New("sched: task aborted")
	ErrDuplicateID   = errors.New("sched: duplicate request id")
	ErrNoMonitor     = errors.New("sched: secure request on a system without a monitor")
	ErrAlreadyRan    = errors.New("sched: scheduler already ran")
	ErrBadRequest    = errors.New("sched: bad request")
	ErrModelTooLarge = errors.New("sched: sealed model exceeds the size cap")
)

// MaxSealedBytes caps a secure request's sealed-model payload; the
// serve API turns an oversized blob into a 4xx before it reaches the
// monitor.
const MaxSealedBytes = 8 << 20

// DefaultMaxBatch is the same-model batching width when Config.MaxBatch
// is zero.
const DefaultMaxBatch = 4

// DefaultSubmitBaseCycles models the fixed per-FnSubmit cost of the
// monitor's verification + attestation handshake: batching exists to
// pay it once per batch instead of once per request. The streaming
// part (unsealing the model at DRAM bandwidth) is added per blob.
const DefaultSubmitBaseCycles sim.Cycle = 10000

// Priority orders requests; higher runs first and may preempt lower.
type Priority int

// Request is one inference submission.
type Request struct {
	// ID is the caller-assigned unique id (> 0).
	ID int
	// Tenant names the submitting tenant; per-tenant queues and the
	// fairness metric key off it.
	Tenant string
	// Model is a built-in workload name. When Workload is set, Model is
	// a display label only and defaults to Workload.Name.
	Model string
	// Workload, when non-nil, is a custom (graph-IR-derived) workload to
	// run instead of a registry model. Submit validates it and takes a
	// private deep copy; secure custom workloads batch only with
	// requests compiled from a byte-identical graph.
	Workload *workload.Workload
	// Secure routes the request through the NPU Monitor.
	Secure   bool
	Priority Priority
	// Arrival is the request's arrival cycle on the simulated clock.
	Arrival sim.Cycle
	// Deadline, when non-zero, is the latest finish cycle. Admission
	// rejects a request that cannot possibly finish by then (its
	// compute-cycle floor already overshoots), dispatch drops members
	// whose floor no longer fits, and a run that crosses its deadline
	// is cut deterministically at the next tile boundary — a secure cut
	// still pays the §IV-B flush before the core is reused.
	Deadline sim.Cycle
	// KeyID and Sealed carry the secure payload: the tenant's
	// provisioned sealing-key name and the sealed model blob.
	KeyID  string
	Sealed []byte
	// Decode, when non-nil, makes this an autoregressive decode request:
	// a prefill pass plus Decode.Steps single-token passes, each pass
	// boundary a token boundary the continuous batcher interleaves and
	// joins/leaves at. Decode requests must be Secure (the resident KV
	// cache is monitor-mediated) and are mutually exclusive with
	// Workload; Model defaults to the spec's deterministic name.
	Decode *workload.DecodeSpec
}

// Result reports one request's outcome.
type Result struct {
	ID      int       `json:"id"`
	Tenant  string    `json:"tenant"`
	Model   string    `json:"model"`
	Secure  bool      `json:"secure"`
	Arrival sim.Cycle `json:"arrival"`
	// Start is the first cycle the request's program ran; Finish is
	// its retire cycle. Latency = Finish - Arrival.
	Start  sim.Cycle `json:"start"`
	Finish sim.Cycle `json:"finish"`
	Core   int       `json:"core"`
	// Preemptions counts evictions this request suffered.
	Preemptions int `json:"preemptions"`
	// Batched marks a request that rode a batch-mate's FnSubmit.
	Batched bool `json:"batched"`
	// Retries counts fault-retry resubmissions this request consumed.
	Retries int `json:"retries,omitempty"`
	// Completed / Dropped / Aborted / Rejected / Shed partition
	// outcomes.
	Completed bool `json:"completed"`
	Dropped   bool `json:"dropped,omitempty"`
	Aborted   bool `json:"aborted,omitempty"`
	Rejected  bool `json:"rejected,omitempty"`
	// Shed marks a victim of per-tenant admission backpressure: a
	// full queue made room for a strictly higher-priority arrival.
	Shed bool `json:"shed,omitempty"`
	// Retryable marks an aborted result whose failure class (an
	// execution fault, not an isolation violation) makes a client
	// retry worthwhile. The error string itself stays equally opaque
	// for both classes.
	Retryable bool   `json:"retryable,omitempty"`
	Err       string `json:"err,omitempty"`
	// Tokens counts the tokens a decode request emitted (prefill emits
	// the first); zero for conventional requests. A partially decoded
	// request (deadline cut mid-stream) reports the tokens it streamed.
	Tokens int `json:"tokens,omitempty"`
}

// Latency is Finish - Arrival for completed requests.
func (r Result) Latency() sim.Cycle { return r.Finish - r.Arrival }

// Config tunes one scheduler instance.
type Config struct {
	// Cores lists the NPU cores the scheduler owns (default: all).
	Cores []int
	// Workers bounds the parallel program-compile pool in Run's
	// prepare phase (default GOMAXPROCS). Compilation is pure, so the
	// width never changes a single scheduling decision.
	Workers int
	// MaxBatch bounds same-tenant same-model secure batching
	// (default DefaultMaxBatch; 1 disables batching).
	MaxBatch int
	// SubmitBaseCycles overrides the per-FnSubmit fixed cost
	// (default DefaultSubmitBaseCycles).
	SubmitBaseCycles sim.Cycle
	// MaxRestarts enables fault retries for secure requests: a task
	// aborted by an execution fault re-enters the queue (after an
	// exponential backoff) up to MaxRestarts times per request,
	// restarting from its last completed layer checkpoint through a
	// fresh FnSubmit. 0 disables retries — a fault aborts terminally,
	// exactly the pre-policy behavior.
	MaxRestarts int
	// RetryBackoff is the base retry delay in cycles (default
	// DefaultRetryBackoff); attempt n waits RetryBackoff << (n-1).
	RetryBackoff sim.Cycle
	// MaxQueuePerTenant bounds how many non-terminal requests one
	// tenant may have queued in the episode (0 = unlimited). A full
	// queue sheds its least-urgent member to make room for a strictly
	// higher-priority arrival, else refuses with ErrQueueFull.
	MaxQueuePerTenant int
	// Breaker, when set, quarantines tenants whose tasks repeatedly
	// abort; it persists across episodes (the serve daemon owns it).
	Breaker *Breaker
	// OnDecision, when set, observes every scheduling decision as it
	// is made (the property tests hook probes here).
	OnDecision func(Decision)
}

// Deps wires the scheduler to one simulated SoC. Monitor may be nil on
// the unprotected baseline, which then serves non-secure requests only.
type Deps struct {
	NPU     *npu.NPU
	Monitor *monitor.Monitor
	Driver  *driver.Driver
	Cfg     npu.Config
	Stats   *sim.Stats
}

// reqState tracks one request through its lifetime.
type reqState struct {
	req  Request
	prog *npu.Program
	// minExec is the compute-cycle floor (the program's peak-rate lower
	// bound) used for deadline feasibility — it never overestimates, so
	// feasibility rejection is sound.
	minExec sim.Cycle

	// progs / tok / tokenEnds drive a decode request: progs[0] is the
	// prefill, progs[1+t] decode step t (prog aliases progs[0] so the
	// FnSubmit/measurement path is shared); tok is the pass cursor (==
	// tokens emitted so far) and tokenEnds the per-token retire cycles.
	progs     []*npu.Program
	tok       int
	tokenEnds []sim.Cycle

	ex      *npu.Exec
	started bool
	start   sim.Cycle
	finish  sim.Cycle
	core    int

	task *driver.Task // non-secure DMA chunk

	preempts int
	batched  bool

	// attempts / checkpoint / retryAt drive the fault-retry ladder:
	// attempts counts consumed restarts, checkpoint is the last
	// completed layer boundary (restart skips to it and pays the
	// restore flush), retryAt is when the backoff expires.
	attempts   int
	checkpoint int
	retryAt    sim.Cycle

	terminal  bool
	completed bool
	dropped   bool
	aborted   bool
	rejected  bool
	shed      bool
	retryable bool
	errMsg    string
}

// job is the dispatch unit: a single non-secure request, or a batch of
// same-tenant same-model secure requests sharing one monitor task.
type job struct {
	members []*reqState
	idx     int
	secure  bool
	monID   int // monitor task id (secure)
	prio    Priority
	arrival sim.Cycle
	leadID  int
	// loadCost is the one-time FnSubmit amortization charged at first
	// load (verification handshake + streaming unseal).
	loadCost sim.Cycle
	// slot/mapped track the non-secure translation window.
	slot   int
	mapped bool
	coreID int // affine core once started (-1 before)

	// decode marks a continuous decode batch: members interleave
	// round-robin (rr) one token-pass at a time instead of running
	// serially through idx, and requests join/leave at token boundaries.
	decode bool
	rr     int
	// kvLines is the resident KV window claimed for this job's monitor
	// task (0 until the first load's FnKVAlloc).
	kvLines int
}

func (j *job) lead() *reqState { return j.members[0] }

// cur returns the member at the execution cursor: the serial cursor
// for conventional jobs, the round-robin cursor for decode batches.
func (j *job) cur() *reqState {
	if j.decode {
		return j.members[j.rr]
	}
	return j.members[j.idx]
}

func (j *job) done() bool {
	if j.decode {
		for _, m := range j.members {
			if !m.terminal {
				return false
			}
		}
		return true
	}
	return j.idx >= len(j.members)
}

// remaining counts members still owed work.
func (j *job) remaining() int {
	if j.decode {
		n := 0
		for _, m := range j.members {
			if !m.terminal {
				n++
			}
		}
		return n
	}
	return len(j.members) - j.idx
}

// rotate advances the decode round-robin cursor to the next live
// member (continuous batching: one token per member per turn).
func (j *job) rotate() {
	if !j.decode || j.done() {
		return
	}
	for i := 0; i < len(j.members); i++ {
		j.rr = (j.rr + 1) % len(j.members)
		if !j.members[j.rr].terminal {
			return
		}
	}
}

// fixCursor re-points the decode cursor at a live member after drops.
func (j *job) fixCursor() {
	if j.decode && !j.done() && j.members[j.rr].terminal {
		j.rotate()
	}
}

// curProg is the program of the member's current pass: progs[tok] for
// decode requests (clamped to the last pass), the single program
// otherwise.
func (m *reqState) curProg() *npu.Program {
	if len(m.progs) > 0 {
		i := m.tok
		if i >= len(m.progs) {
			i = len(m.progs) - 1
		}
		return m.progs[i]
	}
	return m.prog
}

// coreState is one owned core's scheduling state.
type coreState struct {
	id     int
	core   *npu.Core
	freeAt sim.Cycle
	cur    *job
	resume []*job // preempted jobs, affine to this core
	slots  []bool // translation-window slots 1..DefaultTransRegs-1; true = taken
}

// Scheduler runs one deterministic scheduling episode. It is not safe
// for concurrent use; callers (the serve daemon) serialize access.
type Scheduler struct {
	deps Deps
	cfg  Config

	all  []*reqState
	byID map[int]*reqState
	ran  bool

	// run-time state
	future   []*reqState
	waitlist []*reqState // admitted-pending: out of secure/reserved memory
	retryQ   []*reqState // fault-aborted, waiting out a retry backoff
	ready    []*job
	cores    []*coreState
	openJobs []*job // batch-joinable secure jobs
	memFreed bool

	tenantQueued map[string]int // non-terminal submissions per tenant

	decisions   []Decision
	flushCycles sim.Cycle

	obsDispatch, obsPreempt, obsComplete *obs.Counter
	obsReject, obsAbort, obsBatch        *obs.Counter
	obsRetry, obsDeadlineMiss            *obs.Counter
	obsLatency                           *obs.Histogram
}

// New validates deps and builds an empty scheduler.
func New(deps Deps, cfg Config) (*Scheduler, error) {
	if deps.NPU == nil || deps.Driver == nil {
		return nil, fmt.Errorf("sched: nil NPU or Driver")
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = make([]int, deps.Cfg.Tiles)
		for i := range cfg.Cores {
			cfg.Cores[i] = i
		}
	}
	seen := make(map[int]bool, len(cfg.Cores))
	for _, ci := range cfg.Cores {
		if _, err := deps.NPU.Core(ci); err != nil {
			return nil, err
		}
		if seen[ci] {
			return nil, fmt.Errorf("sched: core %d listed twice", ci)
		}
		seen[ci] = true
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.SubmitBaseCycles <= 0 {
		cfg.SubmitBaseCycles = DefaultSubmitBaseCycles
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	return &Scheduler{
		deps: deps, cfg: cfg,
		byID:         make(map[int]*reqState),
		tenantQueued: make(map[string]int),
	}, nil
}

// AttachObserver wires scheduler counters and the request-latency
// histogram into an observability registry. Nil detaches.
func (s *Scheduler) AttachObserver(o *obs.Observer) {
	if o == nil {
		s.obsDispatch, s.obsPreempt, s.obsComplete = nil, nil, nil
		s.obsReject, s.obsAbort, s.obsBatch, s.obsLatency = nil, nil, nil, nil
		s.obsRetry, s.obsDeadlineMiss = nil, nil
		return
	}
	scope := o.Registry().Scope("sched")
	s.obsDispatch = scope.Counter("dispatch.count")
	s.obsPreempt = scope.Counter("preempt.count")
	s.obsComplete = scope.Counter("complete.count")
	s.obsReject = scope.Counter("reject.count")
	s.obsAbort = scope.Counter("abort.count")
	s.obsBatch = scope.Counter("batch.count")
	s.obsRetry = scope.Counter("retry")
	s.obsDeadlineMiss = scope.Counter("deadline_miss")
	s.obsLatency = scope.Histogram("latency.cycles", obs.DefaultCycleBuckets())
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Submit validates and queues one request. Validation is the
// front-door admission control: unknown models, duplicate IDs,
// oversized sealed blobs, and secure requests on a monitor-less system
// are refused here (the serve API maps these to 4xx).
func (s *Scheduler) Submit(r Request) error {
	if s.ran {
		return ErrAlreadyRan
	}
	if r.ID <= 0 {
		return fmt.Errorf("%w: id must be > 0", ErrBadRequest)
	}
	if _, dup := s.byID[r.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, r.ID)
	}
	if r.Tenant == "" {
		return fmt.Errorf("%w: empty tenant", ErrBadRequest)
	}
	if r.Deadline > 0 && r.Deadline <= r.Arrival {
		return fmt.Errorf("%w: deadline %d not after arrival %d", ErrBadRequest, r.Deadline, r.Arrival)
	}
	if !s.cfg.Breaker.Allow(r.Tenant) {
		return fmt.Errorf("%w: %s", ErrTenantQuarantined, r.Tenant)
	}
	if r.Decode != nil {
		if !r.Secure {
			return fmt.Errorf("%w: decode requests must be secure (resident KV is monitor-mediated)", ErrBadRequest)
		}
		if r.Workload != nil {
			return fmt.Errorf("%w: decode and workload are mutually exclusive", ErrBadRequest)
		}
		if err := r.Decode.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		spec := *r.Decode
		r.Decode = &spec
		if r.Model == "" {
			r.Model = spec.ModelName()
		}
	}
	if r.Workload != nil {
		if err := r.Workload.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if r.Model == "" {
			r.Model = r.Workload.Name
		}
		clone := r.Workload.Clone()
		r.Workload = &clone
	} else if r.Decode == nil {
		if _, err := workload.Lookup(r.Model); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if r.Secure {
		if s.deps.Monitor == nil {
			return ErrNoMonitor
		}
		if len(r.Sealed) > MaxSealedBytes {
			return fmt.Errorf("%w: %d > %d bytes", ErrModelTooLarge, len(r.Sealed), MaxSealedBytes)
		}
		if len(r.Sealed) > 0 && r.KeyID == "" {
			return fmt.Errorf("%w: sealed model without a key id", ErrBadRequest)
		}
	}
	if s.cfg.MaxQueuePerTenant > 0 && s.tenantQueued[r.Tenant] >= s.cfg.MaxQueuePerTenant {
		victim := s.shedVictim(r.Tenant)
		if victim == nil || victim.req.Priority >= r.Priority {
			return fmt.Errorf("%w: %s at %d", ErrQueueFull, r.Tenant, s.cfg.MaxQueuePerTenant)
		}
		s.shed(victim, r.Arrival, r.ID)
	}
	r.Sealed = append([]byte(nil), r.Sealed...)
	rs := &reqState{req: r, core: -1}
	s.all = append(s.all, rs)
	s.byID[r.ID] = rs
	s.tenantQueued[r.Tenant]++
	return nil
}

// shedVictim picks the tenant's least-urgent queued request: lowest
// priority, then latest arrival, then highest id — the exact reverse of
// the dispatch order, so shedding always sacrifices what would have run
// last.
func (s *Scheduler) shedVictim(tenant string) *reqState {
	var victim *reqState
	for _, rs := range s.all {
		if rs.terminal || rs.req.Tenant != tenant {
			continue
		}
		if victim == nil || reqLess(victim, rs) {
			victim = rs
		}
	}
	return victim
}

// shed retires a queue-bound victim: deterministic load shedding, not a
// failure of the request itself — the serve layer maps it to 429 with a
// Retry-After hint.
func (s *Scheduler) shed(rs *reqState, at sim.Cycle, forID int) {
	rs.terminal, rs.shed = true, true
	rs.errMsg = "sched: shed by tenant queue bound"
	s.tenantQueued[rs.req.Tenant]--
	s.decide(at, -1, "shed", rs, fmt.Sprintf("for req %d", forID))
}

// Pending reports queued, not-yet-run requests.
func (s *Scheduler) Pending() int {
	if s.ran {
		return 0
	}
	return len(s.all)
}

// Report is one episode's outcome: per-request results (ascending
// request ID) plus the full decision log.
type Report struct {
	Results   []Result
	Decisions []Decision
	// Makespan is the last retire cycle.
	Makespan sim.Cycle
	// FlushCycles is the total context-switch save/restore cost paid.
	FlushCycles                                 sim.Cycle
	Completed, Rejected, Dropped, Aborted, Shed int
	Preemptions                                 int
	// BatchedRuns counts requests that shared a batch-mate's FnSubmit.
	BatchedRuns int
	// Retries is total fault-retry resubmissions; Recovered counts
	// requests that completed after at least one retry.
	Retries, Recovered int
	// Tokens is the total autoregressive tokens emitted by decode
	// requests; TokenTimes maps a decode request's ID to the cycle each
	// of its tokens retired at (in emission order), for inter-token
	// latency analysis.
	Tokens     int
	TokenTimes map[int][]sim.Cycle
}

// DecisionLog renders the decision stream, one line per decision.
func (r *Report) DecisionLog() string {
	var b strings.Builder
	for _, d := range r.Decisions {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ResultByID finds one request's result (nil if unknown).
func (r *Report) ResultByID(id int) *Result {
	for i := range r.Results {
		if r.Results[i].ID == id {
			return &r.Results[i]
		}
	}
	return nil
}

// Run executes every submitted request to a terminal state and
// consumes the scheduler (a second Run returns ErrAlreadyRan).
func (s *Scheduler) Run() (*Report, error) {
	if s.ran {
		return nil, ErrAlreadyRan
	}
	s.ran = true
	s.deps.NPU.ResetTiming()
	s.prepare()

	for _, ci := range s.cfg.Cores {
		core, err := s.deps.NPU.Core(ci)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, &coreState{
			id: ci, core: core, slots: make([]bool, guarder.DefaultTransRegs),
		})
	}
	for _, rs := range s.all {
		if !rs.terminal {
			s.future = append(s.future, rs)
		}
	}
	sort.SliceStable(s.future, func(i, j int) bool {
		a, b := s.future[i], s.future[j]
		if a.req.Arrival != b.req.Arrival {
			return a.req.Arrival < b.req.Arrival
		}
		return a.req.ID < b.req.ID
	})

	var clock sim.Cycle
	for {
		if s.memFreed {
			s.memFreed = false
			s.retryWaitlist(clock)
		}
		s.admitUpTo(clock)
		s.dispatchIdle(clock)

		// Choose the next event: the laggard busy core, unless an
		// arrival lands first.
		var c *coreState
		for _, cs := range s.cores {
			if cs.cur == nil {
				continue
			}
			if c == nil || cs.freeAt < c.freeAt || (cs.freeAt == c.freeAt && cs.id < c.id) {
				c = cs
			}
		}
		if c == nil {
			if t, ok := s.nextPending(); ok {
				clock = t
				continue
			}
			if s.outstanding() == 0 {
				break
			}
			// Nothing runs, nothing arrives, work remains: the leftover
			// requests can never be placed. Fail them closed.
			s.rejectStranded(clock)
			break
		}
		if t, ok := s.nextPending(); ok && t < c.freeAt {
			clock = t
			continue
		}
		if c.freeAt > clock {
			clock = c.freeAt
		}
		s.advance(c)
	}
	return s.assemble(), nil
}

// nextPending is the earliest future event the scheduler must wake
// for: the next arrival or the next retry-backoff expiry.
func (s *Scheduler) nextPending() (sim.Cycle, bool) {
	var t sim.Cycle
	ok := false
	if len(s.future) > 0 {
		t, ok = s.future[0].req.Arrival, true
	}
	if len(s.retryQ) > 0 && (!ok || s.retryQ[0].retryAt < t) {
		t, ok = s.retryQ[0].retryAt, true
	}
	return t, ok
}

// outstanding counts non-terminal requests still queued somewhere.
func (s *Scheduler) outstanding() int {
	n := len(s.waitlist) + len(s.retryQ)
	for _, j := range s.ready {
		n += j.remaining()
	}
	for _, cs := range s.cores {
		for _, j := range cs.resume {
			n += j.remaining()
		}
	}
	return n
}

// workload resolves the request's workload: the submitted custom graph
// when one was attached, the registry model otherwise.
func (rs *reqState) workload() (workload.Workload, error) {
	if rs.req.Workload != nil {
		return *rs.req.Workload, nil
	}
	return workload.Lookup(rs.req.Model)
}

// prepare compiles every request's program on a worker pool.
// Compilation is pure — the pool width cannot change any result — and
// per-request layouts keep VA spans non-aliasing (secure programs use
// the monitor's fixed layout; the per-core slot-0 window disambiguates).
func (s *Scheduler) prepare() {
	n := len(s.all)
	if n == 0 {
		return
	}
	w := s.cfg.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	compile := func(rs *reqState) {
		if rs.terminal { // shed at submit time: nothing to compile
			return
		}
		if rs.req.Decode != nil {
			// One program per pass: the prefill plus every decode step.
			// CompileCached makes the repeated step shapes cheap across
			// same-spec requests.
			passes := rs.req.Decode.Passes()
			rs.progs = make([]*npu.Program, len(passes))
			var total sim.Cycle
			for i, p := range passes {
				prog, _, err := npu.CompileCached(p, s.deps.Cfg, 0, npu.DefaultLayout)
				if err != nil {
					rs.errMsg = err.Error()
					rs.progs = nil
					return
				}
				rs.progs[i] = prog
				total += sim.Cycle(prog.IdealComputeCycles)
			}
			rs.prog = rs.progs[0]
			rs.minExec = total
			return
		}
		wl, err := rs.workload()
		if err != nil {
			rs.errMsg = err.Error()
			return
		}
		layout := npu.DefaultLayout
		if !rs.req.Secure {
			layout = driver.LayoutFor(rs.req.ID)
		}
		prog, _, err := npu.CompileCached(wl, s.deps.Cfg, 0, layout)
		if err != nil {
			rs.errMsg = err.Error()
			return
		}
		rs.prog = prog
		rs.minExec = sim.Cycle(prog.IdealComputeCycles)
	}
	if w <= 1 {
		for _, rs := range s.all {
			compile(rs)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					compile(s.all[i])
				}
			}()
		}
		wg.Wait()
	}
	// Reject compile failures in ID order, before the event loop.
	ordered := append([]*reqState(nil), s.all...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].req.ID < ordered[j].req.ID })
	for _, rs := range ordered {
		if rs.prog == nil && !rs.terminal {
			s.reject(rs, rs.req.Arrival, rs.errMsg)
		}
	}
}

// admitUpTo moves arrivals and expired retry backoffs due by `t` into
// the scheduler in event order: secure requests go through monitor
// admission (verify + secure-memory allocation) or join an open batch;
// non-secure requests take their DMA chunk from reserved memory.
// Out-of-memory admissions waitlist. Arrivals win retry ties so a
// retried task never jumps ahead of fresh work due the same cycle.
func (s *Scheduler) admitUpTo(t sim.Cycle) {
	for {
		hasF := len(s.future) > 0 && s.future[0].req.Arrival <= t
		hasR := len(s.retryQ) > 0 && s.retryQ[0].retryAt <= t
		switch {
		case hasF && (!hasR || s.future[0].req.Arrival <= s.retryQ[0].retryAt):
			rs := s.future[0]
			s.future = s.future[1:]
			s.admit(rs, rs.req.Arrival)
		case hasR:
			rs := s.retryQ[0]
			s.retryQ = s.retryQ[1:]
			s.admit(rs, rs.retryAt)
		default:
			return
		}
	}
}

func (s *Scheduler) admit(rs *reqState, at sim.Cycle) {
	// Reject-on-admit: a deadline the compute floor already overshoots
	// can never be met — refuse it instead of burning cycles. Retried
	// members were re-checked when their backoff was scheduled.
	if rs.attempts == 0 && rs.req.Deadline > 0 && at+rs.minExec > rs.req.Deadline {
		s.reject(rs, at, "deadline infeasible")
		return
	}
	if rs.req.Secure {
		// A retried task resubmits through the full verification path:
		// no riding an open batch's earlier FnSubmit.
		if j := s.joinableBatch(rs); j != nil && rs.attempts == 0 {
			rs.batched = true
			j.members = append(j.members, rs)
			if rs.req.Priority > j.prio {
				j.prio = rs.req.Priority
			}
			inc(s.obsBatch)
			if j.decode {
				// Continuous batching: the member joins a possibly
				// running batch; the round-robin cursor reaches it at
				// the next token boundary.
				s.decide(at, -1, "join", rs, fmt.Sprintf("joined req %d (%d live)", j.leadID, j.remaining()))
			} else {
				s.decide(at, -1, "batch", rs, fmt.Sprintf("joined req %d (%d/%d)", j.leadID, len(j.members), s.cfg.MaxBatch))
			}
			return
		}
		rep := s.deps.Monitor.Dispatch(monitor.Call{
			Func:     monitor.FnSubmit,
			Shared:   rs.req.Sealed,
			Program:  rs.prog,
			Expected: rs.prog.Measurement(),
			KeyID:    rs.req.KeyID,
		})
		if rep.Err != nil {
			if errors.Is(rep.Err, mem.ErrNoSpace) {
				s.waitlist = append(s.waitlist, rs)
				s.decide(at, -1, "defer", rs, "secure memory full")
				return
			}
			s.reject(rs, at, rep.Err.Error())
			return
		}
		j := &job{
			members: []*reqState{rs}, secure: true, monID: int(rep.Value),
			prio: rs.req.Priority, arrival: rs.req.Arrival, leadID: rs.req.ID,
			loadCost: s.submitCost(rs), coreID: -1,
			decode: rs.req.Decode != nil,
		}
		s.ready = append(s.ready, j)
		s.openJobs = append(s.openJobs, j)
		s.decide(at, -1, "admit", rs, "secure")
		return
	}
	wl, _ := rs.workload()
	task, err := s.deps.Driver.SubmitProgram(wl, rs.prog, false)
	if err != nil {
		if errors.Is(err, mem.ErrNoSpace) {
			s.waitlist = append(s.waitlist, rs)
			s.decide(at, -1, "defer", rs, "reserved memory full")
			return
		}
		s.reject(rs, at, err.Error())
		return
	}
	rs.task = task
	j := &job{
		members: []*reqState{rs}, prio: rs.req.Priority,
		arrival: rs.req.Arrival, leadID: rs.req.ID, coreID: -1,
	}
	s.ready = append(s.ready, j)
	s.decide(at, -1, "admit", rs, "non-secure")
}

// joinableBatch finds an open secure job this request may ride:
// same tenant, model, key, and compiled source digest, with batch
// room, not yet torn down. The digest check is what makes batching
// safe for graph-submitted workloads: two custom graphs may share a
// display name, but only byte-identical lowered sources may share one
// FnSubmit. For registry models the name already implies the digest,
// so the extra check never changes a built-in schedule.
func (s *Scheduler) joinableBatch(rs *reqState) *job {
	if s.cfg.MaxBatch <= 1 {
		return nil
	}
	for _, j := range s.openJobs {
		// A continuous decode batch frees a seat whenever a member
		// leaves, so the bound is on live members; a conventional batch
		// never shrinks.
		if j.decode {
			if j.remaining() >= s.cfg.MaxBatch {
				continue
			}
		} else if len(j.members) >= s.cfg.MaxBatch {
			continue
		}
		if j.decode != (rs.req.Decode != nil) {
			continue
		}
		lead := j.lead()
		if j.decode && *lead.req.Decode != *rs.req.Decode {
			continue
		}
		if lead.req.Tenant == rs.req.Tenant && lead.req.Model == rs.req.Model &&
			lead.req.KeyID == rs.req.KeyID &&
			lead.prog.SourceDigest == rs.prog.SourceDigest {
			return j
		}
	}
	return nil
}

// closeBatch removes a finished/destroyed job from the joinable set.
func (s *Scheduler) closeBatch(j *job) {
	for i, o := range s.openJobs {
		if o == j {
			s.openJobs = append(s.openJobs[:i], s.openJobs[i+1:]...)
			return
		}
	}
}

// submitCost is the one-time monitor-side cost a job pays at first
// load: the fixed verification/attestation handshake plus streaming
// the sealed blob through the unsealing path at DRAM bandwidth.
func (s *Scheduler) submitCost(rs *reqState) sim.Cycle {
	bw := s.deps.Cfg.DRAMBytesPerCycle
	if bw == 0 {
		bw = 1
	}
	cost := s.cfg.SubmitBaseCycles
	if n := len(rs.req.Sealed); n > 0 {
		cost += sim.Cycle(uint64(n)/bw) + s.deps.Cfg.DRAMLatency
	}
	return cost
}

// retryWaitlist re-attempts admission for memory-starved requests in
// (priority, arrival, id) order after something freed memory.
func (s *Scheduler) retryWaitlist(at sim.Cycle) {
	if len(s.waitlist) == 0 {
		return
	}
	wl := s.waitlist
	s.waitlist = nil
	sort.SliceStable(wl, func(i, j int) bool { return reqLess(wl[i], wl[j]) })
	for _, rs := range wl {
		s.admit(rs, at)
	}
}

// reqLess is the global request order: priority desc, arrival asc, id
// asc.
func reqLess(a, b *reqState) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority > b.req.Priority
	}
	if a.req.Arrival != b.req.Arrival {
		return a.req.Arrival < b.req.Arrival
	}
	return a.req.ID < b.req.ID
}

func jobLess(a, b *job) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.leadID < b.leadID
}

// dispatchIdle places jobs on every idle core.
func (s *Scheduler) dispatchIdle(clock sim.Cycle) {
	for _, c := range s.cores {
		if c.cur != nil {
			continue
		}
		s.dispatchOn(c, clock)
	}
}

// canHost reports whether core c could start job j now: resumed jobs
// are affine to their core; fresh non-secure jobs need a free
// translation-window slot.
func (s *Scheduler) canHost(c *coreState, j *job) bool {
	if j.coreID >= 0 && j.coreID != c.id {
		return false
	}
	if !j.secure && !j.mapped && s.deps.Monitor != nil && s.freeSlot(c) < 0 {
		return false
	}
	return true
}

// freeSlot finds the lowest free window slot on c (slot 0 is the
// monitor's secure-task window).
func (s *Scheduler) freeSlot(c *coreState) int {
	for i := 1; i < len(c.slots); i++ {
		if !c.slots[i] {
			return i
		}
	}
	return -1
}

// dispatchOn picks the best placeable job for idle core c and starts
// it. Deadline-expired leads are dropped here, at their first start
// opportunity.
func (s *Scheduler) dispatchOn(c *coreState, clock sim.Cycle) {
	start := c.freeAt
	if clock > start {
		start = clock
	}
	for {
		j, fromResume := s.pickFor(c, start)
		if j == nil {
			return
		}
		// Drop members that can no longer meet their finish deadline.
		if j.decode {
			for _, m := range j.members {
				if !m.terminal && s.deadlineExpired(m, start) {
					s.drop(m, start, c.id)
				}
			}
			j.fixCursor()
		} else {
			for !j.done() {
				m := j.cur()
				if s.deadlineExpired(m, start) {
					s.drop(m, start, c.id)
					j.idx++
					continue
				}
				break
			}
		}
		if j.done() {
			s.finishJob(c, j, start, fromResume)
			continue
		}
		s.startJob(c, j, start, fromResume)
		return
	}
}

// deadlineExpired reports whether member m can no longer meet its
// finish deadline when (re)started at `at`: a never-run member needs
// at least its compute floor; an in-flight or retried member is cut
// once the clock itself passes the deadline (the mid-run miss check in
// advance handles the rest).
func (s *Scheduler) deadlineExpired(m *reqState, at sim.Cycle) bool {
	if m.req.Deadline == 0 {
		return false
	}
	if m.ex == nil && m.attempts == 0 && !m.started {
		return at+m.minExec > m.req.Deadline
	}
	return at > m.req.Deadline
}

// pickFor removes and returns the highest-priority job core c can
// host at cycle `start`, from its resume queue and the shared ready
// queue. Resumed jobs have already run, so they are always eligible; a
// fresh ready job is not schedulable before its lead's arrival (batch
// admission during a slice can put not-yet-arrived jobs in the queue).
func (s *Scheduler) pickFor(c *coreState, start sim.Cycle) (*job, bool) {
	bestRi, bestQi := -1, -1
	for i, j := range c.resume {
		if bestRi < 0 || jobLess(j, c.resume[bestRi]) {
			bestRi = i
		}
	}
	for i, j := range s.ready {
		if j.arrival > start || !s.canHost(c, j) {
			continue
		}
		if bestQi < 0 || jobLess(j, s.ready[bestQi]) {
			bestQi = i
		}
	}
	switch {
	case bestRi < 0 && bestQi < 0:
		return nil, false
	case bestRi >= 0 && (bestQi < 0 || !jobLess(s.ready[bestQi], c.resume[bestRi])):
		j := c.resume[bestRi]
		c.resume = append(c.resume[:bestRi], c.resume[bestRi+1:]...)
		return j, true
	default:
		j := s.ready[bestQi]
		s.ready = append(s.ready[:bestQi], s.ready[bestQi+1:]...)
		return j, false
	}
}

// startJob loads/maps the job on core c and leaves it as c.cur; the
// main loop's advance() runs its slices.
func (s *Scheduler) startJob(c *coreState, j *job, start sim.Cycle, resumed bool) {
	m := j.cur()
	if j.secure {
		rep := s.deps.Monitor.Dispatch(monitor.Call{
			Func: monitor.FnLoad,
			Args: []uint64{uint64(j.monID), 0, uint64(s.deps.Cfg.SpadLines()), uint64(c.id)},
		})
		if rep.Err != nil {
			// Load of a verified task on a healthy core should not fail;
			// fail the whole job closed if it does.
			s.abortJob(c, j, start, rep.Err)
			return
		}
		if j.loadCost > 0 {
			start += j.loadCost
			j.loadCost = 0
		}
		if resumed {
			// Restore the checkpointed accumulator context that the
			// mandatory preemption flush saved.
			cost := spad.FlushCost(npu.FlushLiveBytes(m.curProg()), s.deps.Cfg.DRAMBytesPerCycle,
				s.deps.Cfg.DRAMLatency, s.deps.Stats)
			start += cost
			s.flushCycles += cost
		}
		if j.decode && j.kvLines == 0 {
			// First placement of a decode batch: claim a resident KV
			// window from the monitor's scratchpad partition. The claim
			// streams the (zeroed) backing store through once — the cost
			// model is the same DMA walk a flush pays.
			spec := j.lead().req.Decode
			lineBytes := s.deps.Cfg.SpadLineBytes
			lines := int((spec.KVBytes() + int64(lineBytes) - 1) / int64(lineBytes))
			if maxL := s.deps.Cfg.KVSpadLines() / 4; lines > maxL {
				lines = maxL
			}
			if lines < 1 {
				lines = 1
			}
			rep := s.deps.Monitor.Dispatch(monitor.Call{
				Func: monitor.FnKVAlloc,
				Args: []uint64{uint64(j.monID), uint64(c.id), uint64(lines), uint64(spec.KVBytes())},
			})
			if rep.Err != nil {
				s.abortJob(c, j, start, rep.Err)
				return
			}
			j.kvLines = lines
			cost := spad.FlushCost(uint64(lines*lineBytes), s.deps.Cfg.DRAMBytesPerCycle,
				s.deps.Cfg.DRAMLatency, s.deps.Stats)
			start += cost
			s.flushCycles += cost
			s.decide(start, c.id, "kv_alloc", m, fmt.Sprintf("lines=%d domain=%d", lines, rep.Value))
		}
	} else if s.deps.Monitor != nil && !j.mapped {
		if j.slot == 0 {
			j.slot = s.freeSlot(c)
			if j.slot < 0 {
				// canHost filtered this; defensive re-queue.
				s.ready = append(s.ready, j)
				return
			}
			c.slots[j.slot] = true
		}
		lo, hi := m.prog.VASpan()
		vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
		size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase))
		rep := s.deps.Monitor.Dispatch(monitor.Call{
			Func: monitor.FnMapNonSecure,
			Args: []uint64{uint64(c.id), uint64(j.slot), uint64(vbase), uint64(m.task.Chunk), size},
		})
		if rep.Err != nil {
			s.abortJob(c, j, start, rep.Err)
			return
		}
		j.mapped = true
	}
	j.coreID = c.id
	c.cur = j
	c.freeAt = start
	ev := "dispatch"
	if resumed {
		ev = "resume"
	}
	inc(s.obsDispatch)
	s.decide(start, c.id, ev, m, fmt.Sprintf("prio=%d", j.prio))
}

// advance runs c's current member for one tile slice and handles
// completion, faults, and boundary preemption.
func (s *Scheduler) advance(c *coreState) {
	j := c.cur
	if j.decode {
		s.advanceDecode(c, j)
		return
	}
	m := j.cur()
	if m.ex == nil {
		m.ex = npu.NewExec(c.core, m.prog, m.req.ID+10000)
		if !m.started {
			m.started = true
			m.start = c.freeAt
		}
		m.core = c.id
		if m.checkpoint > 0 {
			// Retried member: restart from the last completed layer
			// boundary and pay the checkpoint-restore flush.
			m.ex.SkipToLayer(m.checkpoint)
			cost := spad.FlushCost(npu.FlushLiveBytes(m.prog), s.deps.Cfg.DRAMBytesPerCycle,
				s.deps.Cfg.DRAMLatency, s.deps.Stats)
			c.freeAt += cost
			s.flushCycles += cost
		}
	}
	end, err := m.ex.RunUntil(c.freeAt, npu.BoundaryTile)
	if err != nil {
		var hang *npu.HangError
		if errors.As(err, &hang) {
			c.freeAt = hang.Detected
		}
		s.faultJob(c, j, c.freeAt, err)
		return
	}
	c.freeAt = end
	if cl := m.ex.CurrentLayer(); cl > m.checkpoint {
		m.checkpoint = cl // forward progress: a cheaper restart point
	}
	s.admitUpTo(end)

	if m.req.Deadline > 0 && end > m.req.Deadline {
		// Deterministic deadline-miss cut at the tile boundary — the
		// slice that crossed the deadline is the last one this member
		// gets, whether or not it happened to finish.
		s.missDeadline(c, j, end)
		return
	}

	if m.ex.Done() {
		m.finish = end
		m.terminal, m.completed = true, true
		inc(s.obsComplete)
		if s.obsLatency != nil {
			s.obsLatency.Observe(int64(end - m.req.Arrival))
		}
		s.decide(end, c.id, "complete", m, fmt.Sprintf("latency=%d", end-m.req.Arrival))
		j.idx++
		// Drop any queued batch-mates that can no longer finish in time.
		for !j.done() {
			next := j.cur()
			if s.deadlineExpired(next, end) {
				s.drop(next, end, c.id)
				j.idx++
				continue
			}
			break
		}
		if j.done() {
			s.finishJob(c, j, end, false)
		}
		return
	}

	// §IV-B boundary preemption: a strictly higher-priority placeable
	// job evicts the running one at the tile boundary.
	if s.preemptorWaiting(c, j.prio) {
		s.preempt(c, end)
	}
}

// advanceDecode runs one tile slice of the continuous decode batch on
// core c. Each member's current pass (prefill, then one per decode
// step) runs tile-by-tile exactly as a plain workload does; completing
// a pass emits one token and is the *token boundary* at which the
// round-robin cursor rotates to the next live member, joiners admitted
// mid-run become eligible, and finished members leave the batch. The
// member's resident KV window (claimed in startJob) is untouched by
// all of this — only job teardown scrubs it.
func (s *Scheduler) advanceDecode(c *coreState, j *job) {
	m := j.cur()
	if m.ex == nil {
		m.ex = npu.NewExec(c.core, m.curProg(), m.req.ID+10000)
		if !m.started {
			m.started = true
			m.start = c.freeAt
		}
		m.core = c.id
		if m.checkpoint > 0 {
			// Retried member: restart the interrupted pass from its last
			// layer boundary; the flush models re-deriving the KV state
			// the abort scrubbed.
			m.ex.SkipToLayer(m.checkpoint)
			cost := spad.FlushCost(npu.FlushLiveBytes(m.curProg()), s.deps.Cfg.DRAMBytesPerCycle,
				s.deps.Cfg.DRAMLatency, s.deps.Stats)
			c.freeAt += cost
			s.flushCycles += cost
		}
	}
	end, err := m.ex.RunUntil(c.freeAt, npu.BoundaryTile)
	if err != nil {
		var hang *npu.HangError
		if errors.As(err, &hang) {
			c.freeAt = hang.Detected
		}
		s.faultJob(c, j, c.freeAt, err)
		return
	}
	c.freeAt = end
	if cl := m.ex.CurrentLayer(); cl > m.checkpoint {
		m.checkpoint = cl
	}
	s.admitUpTo(end)

	if m.req.Deadline > 0 && end > m.req.Deadline {
		s.missDeadlineDecode(c, j, end)
		return
	}

	if m.ex.Done() {
		// Pass complete: one token out.
		m.ex = nil
		m.checkpoint = 0
		m.tok++
		m.tokenEnds = append(m.tokenEnds, end)
		s.decide(end, c.id, "token", m, fmt.Sprintf("tok=%d/%d", m.tok, len(m.progs)))
		if m.tok >= len(m.progs) {
			// Last step's token was the member's final output: it leaves
			// the batch, freeing its seat for a joiner.
			m.finish = end
			m.terminal, m.completed = true, true
			inc(s.obsComplete)
			if s.obsLatency != nil {
				s.obsLatency.Observe(int64(end - m.req.Arrival))
			}
			s.decide(end, c.id, "leave", m, fmt.Sprintf("tokens=%d", m.tok))
			s.decide(end, c.id, "complete", m, fmt.Sprintf("latency=%d", end-m.req.Arrival))
		}
		j.rotate()
		if j.done() {
			s.finishJob(c, j, end, false)
		}
		return
	}

	if s.preemptorWaiting(c, j.prio) {
		s.preempt(c, end)
	}
}

// missDeadlineDecode cuts one decode member at the tile boundary that
// crossed its deadline. The member leaves the batch; its batch-mates
// keep decoding and the shared KV window stays resident for them.
func (s *Scheduler) missDeadlineDecode(c *coreState, j *job, at sim.Cycle) {
	m := j.cur()
	if j.secure {
		cost := spad.FlushCost(npu.FlushLiveBytes(m.curProg()), s.deps.Cfg.DRAMBytesPerCycle,
			s.deps.Cfg.DRAMLatency, s.deps.Stats)
		c.freeAt = at + cost
		s.flushCycles += cost
	}
	m.terminal, m.dropped = true, true
	m.finish = at
	m.ex = nil
	m.errMsg = "sched: deadline missed"
	inc(s.obsDeadlineMiss)
	s.decide(at, c.id, "deadline_miss", m, fmt.Sprintf("deadline=%d", m.req.Deadline))
	s.decide(at, c.id, "leave", m, fmt.Sprintf("tokens=%d", m.tok))
	j.rotate()
	if j.done() {
		s.finishJob(c, j, c.freeAt, false)
	}
}

// preemptorWaiting reports a strictly higher-priority job core c could
// host right now.
func (s *Scheduler) preemptorWaiting(c *coreState, prio Priority) bool {
	for _, o := range c.resume {
		if o.prio > prio {
			return true
		}
	}
	for _, o := range s.ready {
		if o.prio > prio && s.canHost(c, o) {
			return true
		}
	}
	return false
}

// preempt evicts c's current job at a tile boundary. Secure victims
// pay the mandatory flush (monitor scrub + ID-bit reassignment + the
// context save on the critical path); non-secure victims cost nothing
// — their lines stay behind the ID check, which is exactly sNPU's
// Fig. 14 argument.
func (s *Scheduler) preempt(c *coreState, at sim.Cycle) {
	j := c.cur
	m := j.cur()
	m.preempts++
	inc(s.obsPreempt)
	if s.deps.Stats != nil {
		s.deps.Stats.Inc(sim.CtrCtxSwitches)
	}
	if j.secure {
		rep := s.deps.Monitor.Dispatch(monitor.Call{Func: monitor.FnPreempt, Args: []uint64{uint64(j.monID)}})
		if rep.Err != nil {
			s.abortJob(c, j, at, rep.Err)
			return
		}
		cost := spad.FlushCost(npu.FlushLiveBytes(m.curProg()), s.deps.Cfg.DRAMBytesPerCycle,
			s.deps.Cfg.DRAMLatency, s.deps.Stats)
		c.freeAt = at + cost
		s.flushCycles += cost
		s.invalidateWindows(c)
	}
	s.decide(at, c.id, "preempt", m, fmt.Sprintf("prio=%d", j.prio))
	c.resume = append(c.resume, j)
	c.cur = nil
}

// finishJob tears the job's residency down after its last member.
func (s *Scheduler) finishJob(c *coreState, j *job, at sim.Cycle, wasResumed bool) {
	if j.secure {
		s.closeBatch(j)
		if j.decode && j.kvLines > 0 {
			// §IV-B flush contract: the batch's resident KV window is
			// scrubbed with the task. FnUnload below does the actual
			// ResetSecure+zero; this pays its streaming cost.
			cost := spad.FlushCost(uint64(j.kvLines*s.deps.Cfg.SpadLineBytes),
				s.deps.Cfg.DRAMBytesPerCycle, s.deps.Cfg.DRAMLatency, s.deps.Stats)
			c.freeAt = at + cost
			s.flushCycles += cost
			s.decide(at, c.id, "kv_scrub", j.lead(), fmt.Sprintf("lines=%d", j.kvLines))
			j.kvLines = 0
		}
		if rep := s.deps.Monitor.Dispatch(monitor.Call{Func: monitor.FnUnload, Args: []uint64{uint64(j.monID)}}); rep.Err == nil {
			s.invalidateWindows(c)
		}
		s.memFreed = true
	} else {
		for _, m := range j.members {
			if m.task != nil {
				_ = s.deps.Driver.Release(m.task)
				m.task = nil
			}
		}
		if j.slot > 0 {
			c.slots[j.slot] = false
			j.slot = 0
		}
		s.memFreed = true
	}
	if c.cur == j {
		c.cur = nil
	}
	_ = wasResumed
}

// invalidateWindows records that the monitor's ClearTask wiped every
// translation register on c: resident non-secure jobs must remap
// before their next slice.
func (s *Scheduler) invalidateWindows(c *coreState) {
	for _, o := range c.resume {
		if !o.secure {
			o.mapped = false
		}
	}
}

// teardownJob scrubs a failing job's residency: the monitor aborts and
// zeroes the secure task fail-closed; non-secure members release their
// DMA chunk and translation-window slot.
func (s *Scheduler) teardownJob(c *coreState, j *job, at sim.Cycle) {
	if j.secure {
		s.closeBatch(j)
		if j.decode && j.kvLines > 0 {
			// Fail-closed KV scrub: FnAbort wipes the window; the abort
			// path still pays the streaming cost of walking it.
			cost := spad.FlushCost(uint64(j.kvLines*s.deps.Cfg.SpadLineBytes),
				s.deps.Cfg.DRAMBytesPerCycle, s.deps.Cfg.DRAMLatency, s.deps.Stats)
			c.freeAt = at + cost
			s.flushCycles += cost
			s.decide(at, c.id, "kv_scrub", j.lead(), fmt.Sprintf("lines=%d", j.kvLines))
			j.kvLines = 0
		}
		task, err := s.deps.Monitor.Task(j.monID)
		if err == nil && task != nil {
			_ = s.deps.Monitor.Dispatch(monitor.Call{Func: monitor.FnAbort, Args: []uint64{uint64(j.monID)}})
			s.invalidateWindows(c)
		}
		s.memFreed = true
	} else {
		for _, m := range j.members {
			if m.task != nil {
				_ = s.deps.Driver.Release(m.task)
				m.task = nil
			}
		}
		if j.slot > 0 && j.slot < len(c.slots) {
			c.slots[j.slot] = false
			j.slot = 0
		}
		s.memFreed = true
	}
}

// abortMember retires one member with the opaque sentinel. Retryable
// records the failure class (fault vs isolation) for the serve layer's
// status mapping; the error string is identical either way.
func (s *Scheduler) abortMember(m *reqState, at sim.Cycle, core int, retryable bool) {
	m.terminal, m.aborted = true, true
	m.retryable = retryable
	m.finish = at
	m.errMsg = ErrTaskAborted.Error()
	inc(s.obsAbort)
	s.decide(at, core, "abort", m, "")
}

// abortJob is the fail-closed path for monitor-call failures: the
// monitor scrubs and destroys the secure task; every unfinished member
// surfaces only the opaque ErrTaskAborted, with no retry — a task the
// monitor refused is not coming back.
func (s *Scheduler) abortJob(c *coreState, j *job, at sim.Cycle, cause error) {
	s.teardownJob(c, j, at)
	for i := j.idx; i < len(j.members); i++ {
		if j.members[i].terminal {
			continue
		}
		s.abortMember(j.members[i], at, c.id, false)
	}
	_ = cause // never surfaced: the abort is opaque to the untrusted side
	if c.cur == j {
		c.cur = nil
	}
}

// faultJob handles an execution fault (hang, unrecovered data error).
// The fail-closed abort is paid exactly as abortJob — scratchpads
// scrubbed, task destroyed — and then policy decides what the
// untrusted side does next: secure members with restart budget left
// re-enter the queue after an exponential backoff and restart from
// their last completed layer checkpoint through a fresh FnSubmit;
// everyone else is abandoned with the same opaque error, marked
// Retryable so clients know a resubmission is worthwhile.
func (s *Scheduler) faultJob(c *coreState, j *job, at sim.Cycle, cause error) {
	s.teardownJob(c, j, at)
	_ = cause // never surfaced — same opacity as abortJob
	retry := j.secure && s.cfg.MaxRestarts > 0
	for i := j.idx; i < len(j.members); i++ {
		m := j.members[i]
		if m.terminal {
			continue
		}
		m.ex = nil
		if !retry || m.attempts >= s.cfg.MaxRestarts {
			s.abortMember(m, at, c.id, j.secure)
			continue
		}
		m.attempts++
		retryAt := at + RetryBackoff(s.cfg.RetryBackoff, m.attempts)
		if m.req.Deadline > 0 && retryAt >= m.req.Deadline {
			// The backoff alone blows the deadline: retrying is futile.
			s.abortMember(m, at, c.id, true)
			continue
		}
		m.retryAt = retryAt
		s.retryQ = append(s.retryQ, m)
		inc(s.obsRetry)
		s.decide(at, c.id, "retry", m,
			fmt.Sprintf("attempt=%d backoff-until=%d checkpoint=%d", m.attempts, retryAt, m.checkpoint))
	}
	sort.SliceStable(s.retryQ, func(a, b int) bool {
		x, y := s.retryQ[a], s.retryQ[b]
		if x.retryAt != y.retryAt {
			return x.retryAt < y.retryAt
		}
		return x.req.ID < y.req.ID
	})
	if c.cur == j {
		c.cur = nil
	}
}

// missDeadline cuts c's running member at the tile boundary that
// crossed its finish deadline. The cut is a policy decision, but its
// isolation consequence is not negotiable: a secure member's live
// accumulator state is flushed (§IV-B) before the core is reused. The
// job's remaining batch-mates keep the core.
func (s *Scheduler) missDeadline(c *coreState, j *job, at sim.Cycle) {
	m := j.cur()
	if j.secure {
		cost := spad.FlushCost(npu.FlushLiveBytes(m.curProg()), s.deps.Cfg.DRAMBytesPerCycle,
			s.deps.Cfg.DRAMLatency, s.deps.Stats)
		c.freeAt = at + cost
		s.flushCycles += cost
	}
	m.terminal, m.dropped = true, true
	m.finish = at
	m.ex = nil
	m.errMsg = "sched: deadline missed"
	inc(s.obsDeadlineMiss)
	s.decide(at, c.id, "deadline_miss", m, fmt.Sprintf("deadline=%d", m.req.Deadline))
	j.idx++
	for !j.done() {
		next := j.cur()
		if s.deadlineExpired(next, c.freeAt) {
			s.drop(next, c.freeAt, c.id)
			j.idx++
			continue
		}
		break
	}
	if j.done() {
		s.finishJob(c, j, c.freeAt, false)
	}
}

func (s *Scheduler) drop(m *reqState, at sim.Cycle, core int) {
	m.terminal, m.dropped = true, true
	m.finish = at
	m.errMsg = "sched: deadline missed"
	inc(s.obsDeadlineMiss)
	s.decide(at, core, "drop", m, fmt.Sprintf("deadline=%d", m.req.Deadline))
}

func (s *Scheduler) reject(rs *reqState, at sim.Cycle, msg string) {
	rs.terminal, rs.rejected = true, true
	rs.errMsg = msg
	inc(s.obsReject)
	s.decide(at, -1, "reject", rs, msg)
}

// rejectStranded fails every leftover request when no placement can
// ever succeed (e.g. a secure model larger than secure memory with
// nothing left to free).
func (s *Scheduler) rejectStranded(at sim.Cycle) {
	for _, rs := range s.waitlist {
		s.reject(rs, at, "no capacity")
	}
	s.waitlist = nil
	for _, rs := range s.retryQ {
		s.reject(rs, at, "no capacity")
	}
	s.retryQ = nil
	for _, j := range s.ready {
		if j.secure {
			s.closeBatch(j)
			_ = s.deps.Monitor.Dispatch(monitor.Call{Func: monitor.FnUnload, Args: []uint64{uint64(j.monID)}})
		}
		for i := j.idx; i < len(j.members); i++ {
			if j.members[i].terminal {
				continue
			}
			s.reject(j.members[i], at, "no capacity")
		}
	}
	s.ready = nil
}

func (s *Scheduler) decide(at sim.Cycle, core int, ev string, rs *reqState, detail string) {
	d := Decision{
		Cycle: at, Core: core, Event: ev,
		Req: rs.req.ID, Tenant: rs.req.Tenant, Model: rs.req.Model, Detail: detail,
	}
	s.decisions = append(s.decisions, d)
	if s.cfg.OnDecision != nil {
		s.cfg.OnDecision(d)
	}
}

func (s *Scheduler) assemble() *Report {
	rep := &Report{FlushCycles: s.flushCycles}
	ordered := append([]*reqState(nil), s.all...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].req.ID < ordered[j].req.ID })
	for _, rs := range ordered {
		r := Result{
			ID: rs.req.ID, Tenant: rs.req.Tenant, Model: rs.req.Model,
			Secure: rs.req.Secure, Arrival: rs.req.Arrival,
			Start: rs.start, Finish: rs.finish, Core: rs.core,
			Preemptions: rs.preempts, Batched: rs.batched,
			Retries: rs.attempts, Retryable: rs.retryable,
			Completed: rs.completed, Dropped: rs.dropped,
			Aborted: rs.aborted, Rejected: rs.rejected,
			Shed: rs.shed, Err: rs.errMsg,
			Tokens: len(rs.tokenEnds),
		}
		rep.Results = append(rep.Results, r)
		if len(rs.tokenEnds) > 0 {
			if rep.TokenTimes == nil {
				rep.TokenTimes = make(map[int][]sim.Cycle)
			}
			rep.TokenTimes[rs.req.ID] = append([]sim.Cycle(nil), rs.tokenEnds...)
			rep.Tokens += len(rs.tokenEnds)
		}
		rep.Preemptions += rs.preempts
		rep.Retries += rs.attempts
		switch {
		case rs.completed:
			rep.Completed++
			if rs.batched {
				rep.BatchedRuns++
			}
			if rs.attempts > 0 {
				rep.Recovered++
			}
			if rs.finish > rep.Makespan {
				rep.Makespan = rs.finish
			}
		case rs.dropped:
			rep.Dropped++
		case rs.aborted:
			rep.Aborted++
		case rs.shed:
			rep.Shed++
		case rs.rejected:
			rep.Rejected++
		}
		// Feed the circuit breaker in result order — deterministic, and
		// quarantine decisions land in this episode's log.
		if s.cfg.Breaker.observe(rs.req.Tenant, rs.aborted, rs.completed) {
			s.decide(rs.finish, -1, "quarantine", rs,
				fmt.Sprintf("cooldown=%d episodes", s.cfg.Breaker.cooldown()))
		}
	}
	s.cfg.Breaker.endEpisode()
	rep.Decisions = s.decisions
	return rep
}
