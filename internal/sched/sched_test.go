// Package sched_test drives the scheduler through the public System
// API (an external test package may import the root package; the
// scheduler itself must not, to keep the dependency arrow pointing
// inward).
package sched_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/sched"
	"repro/internal/sim"
)

func bootSched(t *testing.T, cfg sched.Config) (*snpu.System, *sched.Scheduler) {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sc
}

func sealFor(t *testing.T, sys *snpu.System, keyID string, fill byte) []byte {
	t.Helper()
	key := bytes.Repeat([]byte{fill}, snpu.SealKeySize)
	if err := sys.ProvisionKey(keyID, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, bytes.Repeat([]byte{fill ^ 0x5a}, 4096))
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// A mixed secure/non-secure trace completes, every request retires
// exactly once, and secure results carry positive cycle spans.
func TestSchedulerMixedTraceCompletes(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0, 1}})
	sealed := sealFor(t, sys, "tenant-a-key", 1)
	reqs := []sched.Request{
		{ID: 1, Tenant: "a", Model: "mobilenet", Secure: true, Arrival: 0, KeyID: "tenant-a-key", Sealed: sealed},
		{ID: 2, Tenant: "b", Model: "mobilenet", Arrival: 0},
		{ID: 3, Tenant: "b", Model: "alexnet", Arrival: 1000},
		{ID: 4, Tenant: "a", Model: "mobilenet", Secure: true, Arrival: 2000, KeyID: "tenant-a-key", Sealed: sealed},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", r.ID, err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(reqs) {
		t.Fatalf("completed = %d of %d\n%s", rep.Completed, len(reqs), rep.DecisionLog())
	}
	for _, r := range rep.Results {
		if !r.Completed {
			t.Fatalf("req %d not completed: %+v", r.ID, r)
		}
		if r.Finish <= r.Start {
			t.Fatalf("req %d: finish %d <= start %d", r.ID, r.Finish, r.Start)
		}
		if r.Start < r.Arrival {
			t.Fatalf("req %d started at %d before arrival %d", r.ID, r.Start, r.Arrival)
		}
	}
	if rep.Makespan == 0 {
		t.Fatal("zero makespan")
	}
	// Same tenant, same model, same key, MaxBatch default: req 4 may
	// batch onto req 1 only if 1's job was still open; either way the
	// log must mention both secure admissions.
	log := rep.DecisionLog()
	for _, want := range []string{"req=1", "req=2", "req=3", "req=4", "complete"} {
		if !strings.Contains(log, want) {
			t.Fatalf("decision log missing %q:\n%s", want, log)
		}
	}
}

// A higher-priority secure arrival preempts a running low-priority
// task at a tile boundary; the victim still completes afterwards and
// pays the flush.
func TestSchedulerPreemptsForPriority(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0}})
	sealed := sealFor(t, sys, "k", 2)
	if err := sc.Submit(sched.Request{
		ID: 1, Tenant: "lo", Model: "resnet", Secure: true, Priority: 0,
		Arrival: 0, KeyID: "k", Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{
		ID: 2, Tenant: "hi", Model: "mobilenet", Secure: true, Priority: 10,
		Arrival: 50_000, KeyID: "k", Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	victim := rep.ResultByID(1)
	if victim.Preemptions == 0 {
		t.Fatalf("low-priority task never preempted\n%s", rep.DecisionLog())
	}
	if rep.FlushCycles == 0 {
		t.Fatal("secure preemption paid no flush cycles")
	}
	hi := rep.ResultByID(2)
	if hi.Finish >= victim.Finish {
		t.Fatalf("high-priority finished at %d after victim's %d", hi.Finish, victim.Finish)
	}
}

// Deadlines are latest-finish cycles: a deadline no program could ever
// meet is refused at admission (before any cycles burn), and a
// feasible one the busy core can no longer honor is dropped at its
// first dispatch opportunity — never run late.
func TestSchedulerDropsMissedDeadlines(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Model: "resnet", Arrival: 0}); err != nil {
		t.Fatal(err)
	}
	// One cycle after arrival: below any program's compute floor.
	if err := sc.Submit(sched.Request{ID: 2, Tenant: "b", Model: "mobilenet", Arrival: 0, Deadline: 1}); err != nil {
		t.Fatal(err)
	}
	// Feasible on an idle core, hopeless behind resnet (~57M cycles).
	if err := sc.Submit(sched.Request{ID: 3, Tenant: "b", Model: "mobilenet", Arrival: 0, Deadline: 10_000_000}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2 := rep.ResultByID(2)
	if !r2.Rejected || r2.Err != "deadline infeasible" {
		t.Fatalf("req 2 = %+v, want rejected as infeasible\n%s", r2, rep.DecisionLog())
	}
	r3 := rep.ResultByID(3)
	if !r3.Dropped || r3.Completed {
		t.Fatalf("req 3 = %+v, want dropped\n%s", r3, rep.DecisionLog())
	}
	if rep.Completed != 1 || rep.Dropped != 1 || rep.Rejected != 1 {
		t.Fatalf("completed=%d dropped=%d rejected=%d", rep.Completed, rep.Dropped, rep.Rejected)
	}
}

// Same-tenant same-model secure requests share one FnSubmit: followers
// are marked batched and the monitor sees fewer submits than requests.
func TestSchedulerBatchesSameModel(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 4})
	sealed := sealFor(t, sys, "k", 3)
	for id := 1; id <= 3; id++ {
		if err := sc.Submit(sched.Request{
			ID: id, Tenant: "a", Model: "mobilenet", Secure: true,
			Arrival: 0, KeyID: "k", Sealed: sealed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	if rep.BatchedRuns != 2 {
		t.Fatalf("batched runs = %d, want 2 (followers of req 1)\n%s", rep.BatchedRuns, rep.DecisionLog())
	}
	if got := sys.Monitor().QueueLen(); got != 0 {
		t.Fatalf("monitor queue len = %d after run", got)
	}
}

// Front-door validation: bad requests are refused at Submit, and a
// consumed scheduler refuses everything.
func TestSchedulerSubmitValidation(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	cases := []struct {
		req  sched.Request
		want error
	}{
		{sched.Request{ID: 0, Tenant: "a", Model: "mobilenet"}, sched.ErrBadRequest},
		{sched.Request{ID: 1, Tenant: "", Model: "mobilenet"}, sched.ErrBadRequest},
		{sched.Request{ID: 1, Tenant: "a", Model: "no-such-model"}, sched.ErrBadRequest},
		{sched.Request{ID: 1, Tenant: "a", Model: "mobilenet", Secure: true,
			Sealed: make([]byte, sched.MaxSealedBytes+1)}, sched.ErrModelTooLarge},
	}
	for i, c := range cases {
		if err := sc.Submit(c.req); !errors.Is(err, c.want) {
			t.Fatalf("case %d: err = %v, want %v", i, err, c.want)
		}
	}
	if err := sc.Submit(sched.Request{ID: 7, Tenant: "a", Model: "mobilenet"}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{ID: 7, Tenant: "b", Model: "mobilenet"}); !errors.Is(err, sched.ErrDuplicateID) {
		t.Fatalf("duplicate id: %v", err)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); !errors.Is(err, sched.ErrAlreadyRan) {
		t.Fatalf("second run: %v", err)
	}
	if err := sc.Submit(sched.Request{ID: 8, Tenant: "a", Model: "mobilenet"}); !errors.Is(err, sched.ErrAlreadyRan) {
		t.Fatalf("submit after run: %v", err)
	}
}

// Secure requests on the unprotected baseline are refused; non-secure
// requests still serve.
func TestSchedulerBaselineServesNonSecureOnly(t *testing.T) {
	sys, err := snpu.New(snpu.BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Model: "mobilenet", Secure: true}); !errors.Is(err, sched.ErrNoMonitor) {
		t.Fatalf("secure on baseline: %v", err)
	}
	if err := sc.Submit(sched.Request{ID: 2, Tenant: "a", Model: "mobilenet"}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
}

// More concurrent non-secure requests than reserved memory can hold:
// the overflow defers and completes once memory frees, work-conserving
// across both cores.
func TestSchedulerDefersOnMemoryPressure(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0, 1}})
	// alexnet's span is large; enough copies exhaust 384 MiB reserved.
	for id := 1; id <= 12; id++ {
		if err := sc.Submit(sched.Request{ID: id, Tenant: "t", Model: "alexnet", Arrival: 0}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 12 {
		t.Fatalf("completed = %d of 12 (rejected=%d)\n%s", rep.Completed, rep.Rejected, rep.DecisionLog())
	}
	if !strings.Contains(rep.DecisionLog(), "defer") {
		t.Skip("reserved memory fit all 12 alexnets; deferral not exercised at this config")
	}
}

// The decision log is cycle-monotone per core and every completed
// request has exactly one dispatch..complete bracket.
func TestSchedulerDecisionLogShape(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0, 1, 2}})
	sealed := sealFor(t, sys, "k", 4)
	models := []string{"mobilenet", "alexnet", "yololite"}
	for id := 1; id <= 9; id++ {
		r := sched.Request{
			ID: id, Tenant: "t", Model: models[id%3],
			Arrival: sim.Cycle(id * 500), Priority: sched.Priority(id % 2),
		}
		if id%3 == 0 {
			r.Secure, r.KeyID, r.Sealed = true, "k", sealed
		}
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	lastPerCore := map[int]sim.Cycle{}
	dispatches := map[int]int{}
	completes := map[int]int{}
	for _, d := range rep.Decisions {
		if d.Core >= 0 {
			if d.Cycle < lastPerCore[d.Core] {
				t.Fatalf("core %d time went backwards: %v", d.Core, d)
			}
			lastPerCore[d.Core] = d.Cycle
		}
		switch d.Event {
		case "dispatch", "resume":
			dispatches[d.Req]++
		case "complete":
			completes[d.Req]++
		}
	}
	for _, r := range rep.Results {
		if !r.Completed {
			continue
		}
		if completes[r.ID] != 1 {
			t.Fatalf("req %d completed %d times", r.ID, completes[r.ID])
		}
	}
}
