package sched

import (
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// Decision is one scheduling event. The stream of decisions a run
// emits is part of its deterministic contract: the differential tests
// compare rendered logs byte-for-byte across worker widths and across
// fresh System instances.
type Decision struct {
	Cycle  sim.Cycle `json:"cycle"`
	Core   int       `json:"core"` // -1 when no core is involved
	Event  string    `json:"event"`
	Req    int       `json:"req"`
	Tenant string    `json:"tenant"`
	Model  string    `json:"model"`
	Detail string    `json:"detail,omitempty"`
}

// DecisionHash folds the rendered decision log into a stable 64-bit
// FNV-1a digest. The fuzz campaign feeds this back to the coverage
// engine: two runs with the same hash took the same scheduling path,
// so novel hashes mark novel interleavings worth keeping in the
// corpus.
func (r *Report) DecisionHash() uint64 {
	h := fnv.New64a()
	for _, d := range r.Decisions {
		h.Write([]byte(d.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// String renders one stable log line.
func (d Decision) String() string {
	core := "-"
	if d.Core >= 0 {
		core = fmt.Sprintf("%d", d.Core)
	}
	s := fmt.Sprintf("@%010d core=%s %-8s req=%d tenant=%s model=%s",
		uint64(d.Cycle), core, d.Event, d.Req, d.Tenant, d.Model)
	if d.Detail != "" {
		s += " " + d.Detail
	}
	return s
}
