package sched

import (
	"fmt"

	"repro/internal/sim"
)

// Decision is one scheduling event. The stream of decisions a run
// emits is part of its deterministic contract: the differential tests
// compare rendered logs byte-for-byte across worker widths and across
// fresh System instances.
type Decision struct {
	Cycle  sim.Cycle `json:"cycle"`
	Core   int       `json:"core"` // -1 when no core is involved
	Event  string    `json:"event"`
	Req    int       `json:"req"`
	Tenant string    `json:"tenant"`
	Model  string    `json:"model"`
	Detail string    `json:"detail,omitempty"`
}

// String renders one stable log line.
func (d Decision) String() string {
	core := "-"
	if d.Core >= 0 {
		core = fmt.Sprintf("%d", d.Core)
	}
	s := fmt.Sprintf("@%010d core=%s %-8s req=%d tenant=%s model=%s",
		uint64(d.Cycle), core, d.Event, d.Req, d.Tenant, d.Model)
	if d.Detail != "" {
		s += " " + d.Detail
	}
	return s
}
