package sched

// Resilience policy knobs: retry backoff, per-tenant queue bounds, and
// the per-tenant circuit breaker. Everything here is untrusted serving
// policy layered *outside* the monitor's TCB — a wrong decision wastes
// cycles or sheds load, but every isolation-relevant consequence still
// goes through the monitor trampoline (DESIGN.md §11). Nothing reads a
// wall clock: the breaker counts scheduler episodes, the backoff is in
// simulated cycles, so every decision replays byte-identically.

import (
	"errors"

	"repro/internal/sim"
)

// Backpressure errors the scheduler surfaces at Submit; the serve API
// maps them to 429 and 503 with a Retry-After hint.
var (
	ErrQueueFull         = errors.New("sched: tenant queue full")
	ErrTenantQuarantined = errors.New("sched: tenant quarantined")
)

// DefaultRetryBackoff is the base retry delay (in simulated cycles)
// when Config.MaxRestarts enables fault retries but Config.RetryBackoff
// is zero. Attempt n waits base << (n-1).
const DefaultRetryBackoff sim.Cycle = 100_000

// RetryBackoff is the exponential backoff ladder shared by the
// scheduler's retry queue and RunSecureResilient-style callers:
// attempt 1 waits base, attempt 2 waits 2*base, ... The shift is capped
// so a hostile restart budget cannot overflow the cycle counter.
func RetryBackoff(base sim.Cycle, attempt int) sim.Cycle {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	return base << shift
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2
)

// Breaker is a per-tenant circuit breaker over scheduler episodes: a
// tenant whose secure tasks abort Threshold times in a row (without an
// intervening completion) is quarantined — its submissions are refused
// with ErrTenantQuarantined for Cooldown whole episodes. The breaker
// outlives individual Scheduler instances (the serve daemon keeps one
// across episodes) and is deterministic: state advances only on
// result outcomes and episode boundaries, never on wall time.
type Breaker struct {
	// Threshold is the consecutive-abort trip count (<=0 selects
	// DefaultBreakerThreshold).
	Threshold int
	// Cooldown is how many episodes a tripped tenant sits out (<=0
	// selects DefaultBreakerCooldown).
	Cooldown int

	consecutive map[string]int
	quarantine  map[string]int  // remaining cooldown episodes
	tripped     map[string]bool // tripped this episode: cooldown starts next
}

// NewBreaker builds a breaker; zero values select the defaults.
func NewBreaker(threshold, cooldown int) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return DefaultBreakerThreshold
	}
	return b.Threshold
}

func (b *Breaker) cooldown() int {
	if b.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return b.Cooldown
}

// Allow reports whether the tenant may submit (false while
// quarantined). A nil breaker allows everything.
func (b *Breaker) Allow(tenant string) bool {
	if b == nil {
		return true
	}
	return b.quarantine[tenant] == 0
}

// Quarantined lists tenants currently sitting out, sorted-free (callers
// needing order must sort); exposed for status surfaces.
func (b *Breaker) Quarantined() []string {
	if b == nil {
		return nil
	}
	out := make([]string, 0, len(b.quarantine))
	for t, n := range b.quarantine {
		if n > 0 {
			out = append(out, t)
		}
	}
	return out
}

// observe feeds one terminal outcome. Aborts count against the tenant;
// completions reset the streak. Returns true when this observation
// trips the breaker (the caller logs the quarantine decision).
func (b *Breaker) observe(tenant string, aborted, completed bool) bool {
	if b == nil {
		return false
	}
	switch {
	case aborted:
		if b.consecutive == nil {
			b.consecutive = make(map[string]int)
		}
		b.consecutive[tenant]++
		if b.consecutive[tenant] == b.threshold() {
			if b.quarantine == nil {
				b.quarantine = make(map[string]int)
				b.tripped = make(map[string]bool)
			}
			b.quarantine[tenant] = b.cooldown()
			b.tripped[tenant] = true
			b.consecutive[tenant] = 0
			return true
		}
	case completed:
		delete(b.consecutive, tenant)
	}
	return false
}

// endEpisode advances quarantine cooldowns by one episode. A tenant
// tripped during this episode starts its cooldown at the next one —
// the quarantine must sit out at least Cooldown full episodes.
func (b *Breaker) endEpisode() {
	if b == nil {
		return
	}
	for t, n := range b.quarantine {
		if b.tripped[t] {
			continue
		}
		if n <= 1 {
			delete(b.quarantine, t)
		} else {
			b.quarantine[t] = n - 1
		}
	}
	for t := range b.tripped {
		delete(b.tripped, t)
	}
}
