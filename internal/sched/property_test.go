package sched_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/workload"
)

// The property suite: randomized schedules (tenants x models x
// priorities x preemption points x seeded chaos plans) against the
// §IV-B isolation invariants. Every schedule asserts:
//
//  1. LeftoverLocals: a secret planted in a secure task's scratchpad
//     lines while it runs is unreadable from the normal world after
//     every context switch (preempt, abort, end-of-run) — no
//     cross-domain bytes survive.
//  2. Attestation binds the task image: a report quoted for one
//     program never verifies against another's measurement.
//  3. Fail-closed opacity: aborted requests surface exactly
//     sched.ErrTaskAborted — no hang/fault detail leaks to the
//     untrusted side.
//
// plus scheduler sanity (every request reaches exactly one terminal
// state, completions have coherent cycle spans).

const propertySchedules = 200

// propModels aliases the shared generator's pool: the property suite
// and the campaign decoder must schedule the same models.
var propModels = schedgen.Models

// measOf caches one compile per model (the programs are pure functions
// of the model and config).
var (
	measMu sync.Mutex
	measBy = map[string][32]byte{}
)

func measOf(t *testing.T, model string) [32]byte {
	t.Helper()
	measMu.Lock()
	defer measMu.Unlock()
	if m, ok := measBy[model]; ok {
		return m
	}
	w, err := workload.ByNameExtended(model)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := npu.Compile(w, snpu.DefaultConfig().NPU, 0, npu.DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Measurement()
	measBy[model] = m
	return m
}

func TestPropertyRandomSchedules(t *testing.T) {
	n := propertySchedules
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("schedule-%03d", i), func(t *testing.T) {
			t.Parallel()
			runPropertySchedule(t, seed)
		})
	}
}

func runPropertySchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A quarter of the schedules run under a seeded chaos plan, so
	// preemptions and fail-closed aborts interleave with faults.
	if seed%4 == 0 {
		plan := fault.Generate(seed, 40_000_000, fault.UniformRates(6))
		sys.InstallFaultPlan(plan)
	}

	// All schedule randomness flows through the shared generator — the
	// same code path the campaign decoder drives with fuzz bytes.
	prof := schedgen.DefaultProfile()
	cores := schedgen.Cores(rng, prof)
	tenants := schedgen.Tenants(rng, prof)
	sealedBy, err := schedgen.ProvisionTenants(sys, seed, tenants, func(ti int) []byte {
		return []byte(fmt.Sprintf("prop model %d/%d", seed, ti))
	})
	if err != nil {
		t.Fatal(err)
	}

	// Position-dependent pattern: consecutive bytes always differ, so a
	// scrubbed (zeroed) line can never spuriously "contain" the secret.
	secret := make([]byte, 16)
	for i := range secret {
		secret[i] = 0xA5 ^ byte(seed) ^ byte(i*37+1)
	}
	plantLine := 3
	probe := newIsolationProbe(t, sys, cores, plantLine, secret)

	// Half the schedules run the resilience policy stack: fault
	// retries with backoff and bounded per-tenant queues. The planted
	// secret must stay unreadable across retry and shed transitions
	// exactly as across preempts and aborts.
	cfg := schedgen.Config(rng, cores)
	cfg.OnDecision = probe.onDecision
	sc, err := sys.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}

	secureModels := map[string]bool{}
	for _, r := range schedgen.Requests(rng, prof, tenants, sealedBy) {
		if r.Secure {
			secureModels[r.Model] = true
		}
		if err := sc.Submit(r); err != nil && !errors.Is(err, sched.ErrQueueFull) {
			t.Fatal(err)
		}
	}

	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Scheduler sanity: one terminal state per request, coherent spans.
	for _, r := range rep.Results {
		states := 0
		for _, b := range []bool{r.Completed, r.Dropped, r.Aborted, r.Rejected, r.Shed} {
			if b {
				states++
			}
		}
		if states != 1 {
			t.Fatalf("req %d in %d terminal states: %+v", r.ID, states, r)
		}
		if r.Completed && (r.Finish <= r.Start || r.Start < r.Arrival) {
			t.Fatalf("req %d incoherent span: %+v", r.ID, r)
		}
		// Invariant 3: abort opacity. Whatever the monitor saw (hang,
		// fault, verification failure), the untrusted side learns only
		// the opaque sentinel.
		if r.Aborted {
			if r.Err != sched.ErrTaskAborted.Error() {
				t.Fatalf("req %d aborted with non-opaque error %q", r.ID, r.Err)
			}
		}
		if r.Err != "" {
			for _, leak := range []string{"hang", "watchdog", "cycle"} {
				if strings.Contains(r.Err, leak) {
					t.Fatalf("req %d error leaks hardware detail %q: %q", r.ID, leak, r.Err)
				}
			}
		}
	}

	// Invariant 1 at end-of-run: every core is back in the normal
	// world with zero secure bytes resident.
	probe.probeAll("end-of-run")

	// Invariant 2: attestation binds the image. A quote for one secure
	// model of this schedule never verifies as another model.
	models := make([]string, 0, len(secureModels))
	for m := range secureModels {
		models = append(models, m)
	}
	if len(models) >= 1 {
		nonce := uint64(seed)*2654435761 + 1
		measA := measOf(t, models[0])
		repA, err := sys.Machine().Attest(sys.Machine().SecureContext(), tee.Measurement(measA), nonce)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.VerifyAttestation(repA, measA, nonce); err != nil {
			t.Fatalf("attestation of the right image failed: %v", err)
		}
		other := propModels[0]
		if other == models[0] {
			other = propModels[1]
		}
		if err := sys.VerifyAttestation(repA, measOf(t, other), nonce); err == nil {
			t.Fatalf("report for %s verified as %s", models[0], other)
		}
		if err := sys.VerifyAttestation(repA, measA, nonce+1); err == nil {
			t.Fatal("report verified with a stale nonce")
		}
	}
}

// isolationProbe plants a secret into the scratchpad of every secure
// task as it is dispatched and asserts, at every context switch the
// scheduler performs, that the secret is gone from the normal world's
// point of view — the LeftoverLocals attack replayed as an invariant.
type isolationProbe struct {
	t      *testing.T
	sys    *snpu.System
	cores  []int
	line   int
	secret []byte
}

func newIsolationProbe(t *testing.T, sys *snpu.System, cores []int, line int, secret []byte) *isolationProbe {
	return &isolationProbe{t: t, sys: sys, cores: cores, line: line, secret: secret}
}

func (p *isolationProbe) onDecision(d sched.Decision) {
	switch d.Event {
	case "dispatch", "resume":
		if d.Core >= 0 {
			p.plant(d)
		}
	case "preempt", "abort", "retry":
		// A retry decision fires after the fail-closed teardown, so it
		// is held to the identical no-leftover standard. (A
		// deadline_miss is not probed here: the batch's monitor task
		// legitimately stays resident for the remaining batch-mates and
		// is scrubbed at the job's unload.)
		if d.Core >= 0 {
			p.probeCore(d.Core, fmt.Sprintf("%s of req %d @%d", d.Event, d.Req, d.Cycle))
		}
	}
}

// plant writes the secret into a secure-domain scratchpad line while
// the secure task owns the core (the moment after FnLoad).
func (p *isolationProbe) plant(d sched.Decision) {
	core, err := p.sys.NPU().Core(d.Core)
	if err != nil {
		p.t.Fatal(err)
	}
	if core.Domain() != spad.SecureDomain {
		return // non-secure dispatch; nothing to plant
	}
	buf := make([]byte, core.Scratchpad().LineBytes())
	copy(buf, p.secret)
	if err := core.Scratchpad().Write(spad.SecureDomain, p.line, buf); err != nil {
		p.t.Fatalf("planting secret on core %d: %v", d.Core, err)
	}
}

// probeCore is the LeftoverLocals read: after a switch the normal
// world must see no secure lines, a non-secure core domain, and no
// secret bytes through a normal-world read.
func (p *isolationProbe) probeCore(coreID int, when string) {
	core, err := p.sys.NPU().Core(coreID)
	if err != nil {
		p.t.Fatal(err)
	}
	if n := core.Scratchpad().CountDomain(spad.SecureDomain); n != 0 {
		p.t.Fatalf("%s: core %d kept %d secure scratchpad lines", when, coreID, n)
	}
	if n := core.Accumulator().CountDomain(spad.SecureDomain); n != 0 {
		p.t.Fatalf("%s: core %d kept %d secure accumulator lines", when, coreID, n)
	}
	if core.Domain() != spad.NonSecure {
		p.t.Fatalf("%s: core %d still in domain %d", when, coreID, core.Domain())
	}
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, p.line, buf); err == nil {
		if bytes.Contains(buf, p.secret) {
			p.t.Fatalf("%s: secret readable from the normal world on core %d", when, coreID)
		}
	}
}

func (p *isolationProbe) probeAll(when string) {
	for _, ci := range p.cores {
		p.probeCore(ci, when)
	}
}

// Regression corpus: the minimized schedule that exposed the PR-4
// admit-early bug, where an idle core started a request before its
// arrival cycle. Two idle cores, one immediate request, one arriving
// far in the future — nothing may dispatch (or be admitted) before
// its own arrival, and the property holds for every decision class.
// The serve fuzz corpus seeds the same shape through the HTTP layer.
func TestRegressionAdmitEarlySchedule(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0, 1}})
	reqs := []sched.Request{
		{ID: 1, Tenant: "a", Model: "mobilenet", Arrival: 0},
		{ID: 2, Tenant: "b", Model: "mobilenet", Arrival: 30_000_000},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Completed && r.Start < r.Arrival {
			t.Fatalf("req %d started at %d before its arrival %d\n%s",
				r.ID, r.Start, r.Arrival, rep.DecisionLog())
		}
	}
	for _, d := range rep.Decisions {
		if d.Req == 2 && d.Cycle < 30_000_000 {
			t.Fatalf("decision %q for req 2 at cycle %d, before its arrival\n%s",
				d.Event, d.Cycle, rep.DecisionLog())
		}
	}
	if rep.Completed != 2 {
		t.Fatalf("completed=%d, want 2\n%s", rep.Completed, rep.DecisionLog())
	}
}

// A guaranteed hang: one core, one secure request, a CoreHang event
// early in its run. The scheduler must abort fail-closed, scrub the
// core, and surface only the opaque sentinel.
func TestScheduledHangAbortsOpaquely(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 1000, Kind: fault.CoreHang, Sel: 0},
	}})
	key := snpu.ChaosKey(99)
	if err := sys.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("hang model"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{
		ID: 1, Tenant: "a", Model: "mobilenet", Secure: true, KeyID: "k", Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Aborted {
		t.Fatalf("request survived a scheduled core hang: %+v\n%s", r, rep.DecisionLog())
	}
	if r.Err != sched.ErrTaskAborted.Error() {
		t.Fatalf("abort error not opaque: %q", r.Err)
	}
	core, err := sys.NPU().Core(0)
	if err != nil {
		t.Fatal(err)
	}
	if core.Domain() != spad.NonSecure {
		t.Fatal("hang abort left the core in the secure domain")
	}
	if n := core.Scratchpad().CountDomain(spad.SecureDomain); n != 0 {
		t.Fatalf("hang abort left %d secure lines", n)
	}
	if sys.Monitor().QueueLen() != 0 {
		t.Fatal("aborted task still queued in the monitor")
	}
}
