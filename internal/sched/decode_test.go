package sched_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func smallDecodeSpec() workload.DecodeSpec {
	return workload.DecodeSpec{Layers: 1, Hidden: 64, Heads: 4, FFN: 128, Prompt: 8, Steps: 3}
}

// Decode requests are secure-only and exclusive with an attached
// workload; a valid one defaults its model name from the spec.
func TestDecodeSubmitValidation(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	spec := smallDecodeSpec()
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Decode: &spec}); !errors.Is(err, sched.ErrBadRequest) {
		t.Fatalf("non-secure decode: %v", err)
	}
	wl := workload.MobileNet()
	if err := sc.Submit(sched.Request{
		ID: 2, Tenant: "a", Secure: true, Decode: &spec, Workload: &wl,
	}); !errors.Is(err, sched.ErrBadRequest) {
		t.Fatalf("decode+workload: %v", err)
	}
	bad := spec
	bad.Steps = 0
	if err := sc.Submit(sched.Request{ID: 3, Tenant: "a", Secure: true, Decode: &bad}); !errors.Is(err, sched.ErrBadRequest) {
		t.Fatalf("invalid spec: %v", err)
	}
	if err := sc.Submit(sched.Request{ID: 4, Tenant: "a", Secure: true, Decode: &spec}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(4)
	if r == nil || !r.Completed {
		t.Fatalf("decode request did not complete: %+v\n%s", r, rep.DecisionLog())
	}
	if r.Model != spec.ModelName() {
		t.Fatalf("model defaulted to %q, want %q", r.Model, spec.ModelName())
	}
}

// One decode request emits prompt's prefill token plus one per step,
// timestamps strictly increasing, and the job claims and scrubs a
// resident KV window.
func TestDecodeSingleRequestTokens(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}})
	spec := smallDecodeSpec()
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Secure: true, Decode: &spec}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Completed {
		t.Fatalf("not completed: %+v\n%s", r, rep.DecisionLog())
	}
	wantTokens := spec.Steps + 1
	if r.Tokens != wantTokens || rep.Tokens != wantTokens {
		t.Fatalf("tokens = %d (report %d), want %d", r.Tokens, rep.Tokens, wantTokens)
	}
	times := rep.TokenTimes[1]
	if len(times) != wantTokens {
		t.Fatalf("token times = %v", times)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("token %d at %d not after token %d at %d", i, times[i], i-1, times[i-1])
		}
	}
	log := rep.DecisionLog()
	for _, want := range []string{"kv_alloc", "token", "leave", "kv_scrub", "complete"} {
		if !strings.Contains(log, want) {
			t.Fatalf("decision log missing %q:\n%s", want, log)
		}
	}
}

// A same-spec batch decodes round-robin: between one member's
// consecutive tokens every other live member also emits one, which is
// the continuous-batching interleave at token boundaries.
func TestDecodeBatchInterleavesTokens(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 4})
	spec := smallDecodeSpec()
	for id := 1; id <= 3; id++ {
		if err := sc.Submit(sched.Request{ID: id, Tenant: "a", Secure: true, Decode: &spec}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	if rep.BatchedRuns != 2 {
		t.Fatalf("batched runs = %d, want 2\n%s", rep.BatchedRuns, rep.DecisionLog())
	}
	if rep.Tokens != 3*(spec.Steps+1) {
		t.Fatalf("total tokens = %d", rep.Tokens)
	}
	// Token emission order must be a strict round-robin over the three
	// members: 1,2,3,1,2,3,...
	var order []int
	for _, d := range rep.Decisions {
		if d.Event == "token" {
			order = append(order, d.Req)
		}
	}
	for i, id := range order {
		if want := i%3 + 1; id != want {
			t.Fatalf("token %d emitted by req %d, want %d (order %v)", i, id, want, order)
		}
	}
	// Exactly one FnSubmit-backed admission and one shared KV window.
	log := rep.DecisionLog()
	if n := strings.Count(log, "kv_alloc"); n != 1 {
		t.Fatalf("kv_alloc count = %d, want 1:\n%s", n, log)
	}
	if n := strings.Count(log, "kv_scrub"); n != 1 {
		t.Fatalf("kv_scrub count = %d, want 1:\n%s", n, log)
	}
}

// A request arriving while a same-spec batch is mid-decode joins at a
// token boundary ("join" event), decodes to completion, and leaving
// members free their seats for later joiners.
func TestDecodeContinuousJoin(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 2})
	spec := smallDecodeSpec()
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Secure: true, Decode: &spec, Arrival: 0}); err != nil {
		t.Fatal(err)
	}
	// Arrives mid-run: must join the open batch rather than FnSubmit.
	if err := sc.Submit(sched.Request{ID: 2, Tenant: "a", Secure: true, Decode: &spec, Arrival: 200_000}); err != nil {
		t.Fatal(err)
	}
	// Third request: seat-bound by MaxBatch=2 until req 1 leaves.
	if err := sc.Submit(sched.Request{ID: 3, Tenant: "a", Secure: true, Decode: &spec, Arrival: 250_000}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	joins := 0
	for _, d := range rep.Decisions {
		if d.Event == "join" {
			joins++
			// A join must land at or after the joiner's arrival and, for
			// req 2, while the lead was already dispatched.
			if d.Req == 2 && d.Cycle < 200_000 {
				t.Fatalf("join before arrival: %v", d)
			}
		}
	}
	if joins == 0 {
		t.Fatalf("no join events:\n%s", rep.DecisionLog())
	}
	for id := 1; id <= 3; id++ {
		if got := rep.ResultByID(id).Tokens; got != spec.Steps+1 {
			t.Fatalf("req %d tokens = %d", id, got)
		}
	}
}

// Two different decode specs never share a batch even under one tenant:
// the spec equality guard (and the SourceDigest guard behind it) keeps
// KV geometry uniform within a job.
func TestDecodeSpecsDoNotCrossBatch(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 4})
	a := smallDecodeSpec()
	b := smallDecodeSpec()
	b.Steps = 5
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "t", Secure: true, Decode: &a}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{ID: 2, Tenant: "t", Secure: true, Decode: &b}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	if rep.BatchedRuns != 0 {
		t.Fatalf("cross-spec batch happened:\n%s", rep.DecisionLog())
	}
	if rep.ResultByID(1).Tokens != a.Steps+1 || rep.ResultByID(2).Tokens != b.Steps+1 {
		t.Fatalf("token counts wrong: %d %d", rep.ResultByID(1).Tokens, rep.ResultByID(2).Tokens)
	}
}

// A decode member with a deadline that expires mid-decode leaves the
// batch at the tile boundary; its batch-mates keep decoding on the
// still-resident KV window.
func TestDecodeDeadlineLeavesBatch(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 4})
	spec := smallDecodeSpec()
	if err := sc.Submit(sched.Request{ID: 1, Tenant: "a", Secure: true, Decode: &spec}); err != nil {
		t.Fatal(err)
	}
	// Feasible floor, hopeless against the interleave: dropped mid-run.
	if err := sc.Submit(sched.Request{
		ID: 2, Tenant: "a", Secure: true, Decode: &spec, Deadline: 70_000,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rep.ResultByID(1), rep.ResultByID(2)
	if !r1.Completed {
		t.Fatalf("survivor did not complete: %+v\n%s", r1, rep.DecisionLog())
	}
	if r2.Completed {
		t.Skipf("deadline %d was feasible at this config", 70_000)
	}
	if !r2.Dropped && !r2.Rejected {
		t.Fatalf("req 2 = %+v, want dropped or rejected\n%s", r2, rep.DecisionLog())
	}
	if r1.Tokens != spec.Steps+1 {
		t.Fatalf("survivor tokens = %d", r1.Tokens)
	}
}

// Priority preemption still works against a decode batch: the KV window
// survives the preemption (no second kv_alloc on resume) and every
// member still emits its full token budget.
func TestDecodePreemptionKeepsKVResident(t *testing.T) {
	sys, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxBatch: 2})
	sealed := sealFor(t, sys, "k", 9)
	spec := workload.DecodeSpec{Layers: 2, Hidden: 128, Heads: 4, FFN: 512, Prompt: 32, Steps: 4}
	if err := sc.Submit(sched.Request{
		ID: 1, Tenant: "lo", Secure: true, Decode: &spec, Priority: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{
		ID: 2, Tenant: "hi", Model: "mobilenet", Secure: true, Priority: 10,
		Arrival: 100_000, KeyID: "k", Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	victim := rep.ResultByID(1)
	if victim.Preemptions == 0 {
		t.Skip("decode batch finished before the preemptor arrived at this config")
	}
	if victim.Tokens != spec.Steps+1 {
		t.Fatalf("victim tokens = %d after preemption", victim.Tokens)
	}
	log := rep.DecisionLog()
	if n := strings.Count(log, "kv_alloc"); n != 1 {
		t.Fatalf("kv_alloc count = %d (KV window not resident across preemption):\n%s", n, log)
	}
}

// Report token-time bookkeeping: inter-token gaps are positive and the
// makespan covers the last token.
func TestDecodeTokenTimesConsistent(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0, 1}, MaxBatch: 4})
	spec := smallDecodeSpec()
	for id := 1; id <= 4; id++ {
		if err := sc.Submit(sched.Request{
			ID: id, Tenant: "a", Secure: true, Decode: &spec, Arrival: sim.Cycle(id * 100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 {
		t.Fatalf("completed = %d\n%s", rep.Completed, rep.DecisionLog())
	}
	var last sim.Cycle
	for id, times := range rep.TokenTimes {
		r := rep.ResultByID(id)
		if len(times) != r.Tokens {
			t.Fatalf("req %d: %d token times, result says %d", id, len(times), r.Tokens)
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("req %d token times not increasing: %v", id, times)
			}
		}
		if times[len(times)-1] > last {
			last = times[len(times)-1]
		}
		if times[len(times)-1] != r.Finish {
			t.Fatalf("req %d last token at %d but finish %d", id, times[len(times)-1], r.Finish)
		}
	}
	if last > rep.Makespan {
		t.Fatalf("last token %d after makespan %d", last, rep.Makespan)
	}
}
