package sched_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/workload"
)

// The KV-isolation property suite: randomized decode schedules (tenant
// mixes x specs x priorities x chaos plans) against the resident-KV
// extension of the §IV-B invariants. Every schedule plants a
// tenant-unique sentinel into each KV window the monitor allocates and
// asserts, at every scheduling decision (dispatch, token, join, leave,
// preempt, fault-abort, retry, scrub):
//
//  1. Exclusivity: the sentinel is readable only with the window's own
//     ID-bit domain — never from the normal world, never from the
//     transient SecureDomain, never with any other live window's domain.
//  2. Residency: a live window's sentinel survives tile-boundary
//     preemption and every context switch untouched (the scheduler's
//     scrub walks around it).
//  3. Flush contract: the moment a window leaves the monitor's live set
//     (FnUnload/FnAbort), no read in any domain can recover the
//     sentinel from its lines.
//  4. Geometry: live windows stay inside the KV partition and never
//     overlap or share a domain on one core.
const kvPropertySchedules = 200

func TestKVIsolationRandomSchedules(t *testing.T) {
	n := kvPropertySchedules
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("schedule-%03d", i), func(t *testing.T) {
			t.Parallel()
			runKVPropertySchedule(t, seed)
		})
	}
}

func runKVPropertySchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A quarter of the schedules run under a seeded chaos plan so KV
	// windows die through the fail-closed abort path, not only the
	// orderly unload.
	if seed%4 == 0 {
		sys.InstallFaultPlan(fault.Generate(seed, 40_000_000, fault.UniformRates(6)))
	}

	cores := []int{0}
	if rng.Intn(2) == 1 {
		cores = []int{0, 1}
	}
	probe := &kvProbe{t: t, sys: sys, seed: seed, planted: map[string]*kvPlant{}}
	cfg := sched.Config{
		Cores:      cores,
		MaxBatch:   2 + rng.Intn(3),
		OnDecision: probe.onDecision,
	}
	if rng.Intn(2) == 0 {
		cfg.MaxRestarts = 1 + rng.Intn(2)
	}
	sc, err := sys.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Each tenant decodes its own spec (distinct prompt length), so two
	// tenants never share a batch, a task, or a KV window.
	nTenants := 2 + rng.Intn(2)
	specs := make([]workload.DecodeSpec, nTenants)
	for ti := range specs {
		specs[ti] = workload.DecodeSpec{
			Layers: 1, Hidden: 64, Heads: 4, FFN: 128,
			Prompt: 4 + 4*ti, Steps: 2 + rng.Intn(4),
		}
	}

	nReq := 3 + rng.Intn(5)
	id := 0
	expected := map[int]int{} // decode req -> expected token count
	for i := 0; i < nReq; i++ {
		ti := rng.Intn(nTenants)
		id++
		spec := specs[ti]
		r := sched.Request{
			ID: id, Tenant: fmt.Sprintf("tenant-%d", ti), Secure: true,
			Decode:   &spec,
			Arrival:  sim.Cycle(rng.Intn(300_000)),
			Priority: sched.Priority(rng.Intn(3) * 5),
		}
		expected[id] = spec.Steps + 1
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// A couple of plain secure requests force context switches and
	// priority preemptions against resident KV windows.
	sealed := sealFor(t, sys, "kv-prop-key", byte(seed))
	for i := 0; i < 1+rng.Intn(2); i++ {
		id++
		if err := sc.Submit(sched.Request{
			ID: id, Tenant: "mixer", Model: "mobilenet", Secure: true,
			KeyID: "kv-prop-key", Sealed: sealed,
			Arrival:  sim.Cycle(rng.Intn(200_000)),
			Priority: sched.Priority(rng.Intn(3) * 5),
		}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Scheduler sanity: completed decode requests emitted their full
	// token budget, and abort opacity held.
	for _, r := range rep.Results {
		if want, isDecode := expected[r.ID]; isDecode && r.Completed {
			if r.Tokens != want {
				t.Fatalf("req %d completed with %d tokens, want %d\n%s",
					r.ID, r.Tokens, want, rep.DecisionLog())
			}
		}
		if r.Aborted && r.Err != sched.ErrTaskAborted.Error() {
			t.Fatalf("req %d aborted with non-opaque error %q", r.ID, r.Err)
		}
	}

	// Invariant 3 at end-of-run: every KV window was torn down with its
	// task and no sentinel survives anywhere in any domain.
	if live := sys.Monitor().KVRegions(); len(live) != 0 {
		t.Fatalf("%d KV regions survive the episode: %+v\n%s", len(live), live, rep.DecisionLog())
	}
	probe.sweepDead("end-of-run")
	if len(probe.planted) != 0 {
		t.Fatalf("planted windows never verified dead: %v", probe.planted)
	}
	if probe.plants == 0 {
		t.Fatalf("schedule allocated no KV windows — property vacuous\n%s", rep.DecisionLog())
	}
}

// kvPlant is one planted sentinel: the window it lives in and the
// bytes written there with the window's own domain.
type kvPlant struct {
	core, from, to int
	domain         spad.DomainID
	sentinel       []byte
}

// kvKey identifies one window instance. The task ID matters: first-fit
// happily re-issues a dead window's exact (core, from, domain) to the
// next task, and the probe must treat that as a fresh window.
func kvKey(r monitor.KVRegion) string { return fmt.Sprintf("%d:%d:%d", r.Task, r.Core, r.From) }

// kvProbe tracks every KV window the monitor creates, plants a unique
// sentinel into each, and replays the LeftoverLocals read against all
// of them on every scheduling decision.
type kvProbe struct {
	t       *testing.T
	sys     *snpu.System
	seed    int64
	planted map[string]*kvPlant
	plants  int
}

func (p *kvProbe) onDecision(d sched.Decision) {
	live := p.sys.Monitor().KVRegions()
	p.checkGeometry(live)

	liveKeys := map[string]bool{}
	for _, r := range live {
		liveKeys[kvKey(r)] = true
	}
	// Sweep dead windows first: their lines may already belong to a
	// fresh (zeroed, unplanted) window, and the flush contract must
	// hold before any new sentinel lands there.
	for key, pl := range p.planted {
		if liveKeys[key] {
			continue
		}
		p.verifyDead(pl, fmt.Sprintf("%s of req %d @%d", d.Event, d.Req, d.Cycle))
		delete(p.planted, key)
	}
	for _, r := range live {
		if _, ok := p.planted[kvKey(r)]; !ok {
			p.plant(r)
		}
	}
	// Probe every live window: the sentinel must be exclusive to its
	// own domain.
	for _, pl := range p.planted {
		p.probeLive(pl, live, d)
	}
}

// checkGeometry: live windows sit inside the KV partition and never
// overlap or share a domain on one core.
func (p *kvProbe) checkGeometry(live []monitor.KVRegion) {
	for i, a := range live {
		sp := p.spadOf(a.Core)
		total := sp.Lines()
		if a.From < total-total/4 || a.To > total || a.From >= a.To {
			p.t.Fatalf("KV window [%d,%d) outside partition [%d,%d)", a.From, a.To, total-total/4, total)
		}
		if a.Domain < 2 {
			p.t.Fatalf("KV window with reserved domain %d", a.Domain)
		}
		for _, b := range live[i+1:] {
			if a.Core != b.Core {
				continue
			}
			if a.Domain == b.Domain {
				p.t.Fatalf("two live KV windows share domain %d on core %d", a.Domain, a.Core)
			}
			if a.From < b.To && b.From < a.To {
				p.t.Fatalf("KV windows overlap on core %d: [%d,%d) vs [%d,%d)",
					a.Core, a.From, a.To, b.From, b.To)
			}
		}
	}
}

func (p *kvProbe) spadOf(coreID int) *spad.Scratchpad {
	core, err := p.sys.NPU().Core(coreID)
	if err != nil {
		p.t.Fatal(err)
	}
	return core.Scratchpad()
}

// plant writes a window-unique, position-dependent sentinel into the
// window's first line using the window's own ID-bit domain — exactly
// what the owning tenant's decode kernel would leave there.
func (p *kvProbe) plant(r monitor.KVRegion) {
	sp := p.spadOf(r.Core)
	buf := make([]byte, sp.LineBytes())
	for i := range buf {
		buf[i] = 0xC3 ^ byte(p.seed) ^ byte(r.Task*31) ^ byte(r.Core*13) ^ byte(r.From) ^ byte(i*29+7)
	}
	if err := sp.Write(r.Domain, r.From, buf); err != nil {
		p.t.Fatalf("planting KV sentinel on core %d line %d: %v", r.Core, r.From, err)
	}
	p.planted[kvKey(r)] = &kvPlant{
		core: r.Core, from: r.From, to: r.To, domain: r.Domain, sentinel: buf,
	}
	p.plants++
}

// probeLive asserts residency + exclusivity for one live window: its
// own domain still reads the sentinel; the normal world, the transient
// SecureDomain, and every other tenant's live KV domain are refused.
func (p *kvProbe) probeLive(pl *kvPlant, live []monitor.KVRegion, d sched.Decision) {
	sp := p.spadOf(pl.core)
	buf := make([]byte, sp.LineBytes())
	if err := sp.Read(pl.domain, pl.from, buf); err != nil {
		p.t.Fatalf("%s @%d: owner read of live KV window failed: %v", d.Event, d.Cycle, err)
	}
	if !bytes.Equal(buf, pl.sentinel) {
		p.t.Fatalf("%s @%d: live KV sentinel corrupted on core %d line %d", d.Event, d.Cycle, pl.core, pl.from)
	}
	foreign := []spad.DomainID{spad.NonSecure, spad.SecureDomain}
	for _, r := range live {
		if r.Core == pl.core && r.Domain != pl.domain {
			foreign = append(foreign, r.Domain)
		}
	}
	for _, dom := range foreign {
		if err := sp.Read(dom, pl.from, buf); !errors.Is(err, spad.ErrIsolation) {
			p.t.Fatalf("%s @%d: domain %d read live KV line %d on core %d (err=%v)",
				d.Event, d.Cycle, dom, pl.from, pl.core, err)
		}
	}
}

// verifyDead asserts the flush contract over a window that left the
// live set: no read — its old domain included — recovers the sentinel
// from any line it spanned.
func (p *kvProbe) verifyDead(pl *kvPlant, when string) {
	sp := p.spadOf(pl.core)
	buf := make([]byte, sp.LineBytes())
	for line := pl.from; line < pl.to; line++ {
		for _, dom := range []spad.DomainID{spad.NonSecure, pl.domain} {
			if err := sp.Read(dom, line, buf); err != nil {
				continue // retagged away from dom: unreadable is fine
			}
			if bytes.Contains(buf, pl.sentinel[:8]) {
				p.t.Fatalf("%s: sentinel survives scrub on core %d line %d (domain %d)",
					when, pl.core, line, dom)
			}
		}
	}
}

// sweepDead verifies every still-tracked window as dead (used after
// the run, when the live set is empty).
func (p *kvProbe) sweepDead(when string) {
	for key, pl := range p.planted {
		p.verifyDead(pl, when)
		delete(p.planted, key)
	}
}
