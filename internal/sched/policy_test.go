package sched

// Edge-case tables for the resilience policy knobs in policy.go: the
// backoff ladder's clamps, the breaker's trip/cooldown state machine
// exactly at its episode boundaries, and the shed victim ordering when
// every queued request shares the lowest priority. These run inside
// the package so the episode boundary (observe/endEpisode) can be
// driven directly, without a scheduler run per table row.

import (
	"testing"

	"repro/internal/sim"
)

func TestRetryBackoffTable(t *testing.T) {
	cases := []struct {
		name    string
		base    sim.Cycle
		attempt int
		want    sim.Cycle
	}{
		{"first attempt", 1000, 1, 1000},
		{"second doubles", 1000, 2, 2000},
		{"third quadruples", 1000, 3, 4000},
		{"attempt zero clamps to first", 1000, 0, 1000},
		{"negative attempt clamps to first", 1000, -5, 1000},
		{"zero base selects default", 0, 1, DefaultRetryBackoff},
		{"negative base selects default", -1, 2, 2 * DefaultRetryBackoff},
		{"shift caps at 20", 1000, 21, 1000 << 20},
		{"hostile attempt stays capped", 1000, 1 << 30, 1000 << 20},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := RetryBackoff(c.base, c.attempt); got != c.want {
				t.Fatalf("RetryBackoff(%d, %d) = %d, want %d", c.base, c.attempt, got, c.want)
			}
		})
	}
}

// The quarantine must last exactly Cooldown full episodes: tripping
// mid-episode does not consume the trip episode, and the tenant is
// welcome back at the first episode after the cooldown — not one
// earlier, not one later.
func TestBreakerReopensExactlyAtCooldownBoundary(t *testing.T) {
	cases := []struct {
		name                string
		threshold, cooldown int
		tripAborts          int // consecutive aborts that trip it
		fullEpisodesOut     int // episodes the tenant must sit out
	}{
		{"defaults", 0, 0, DefaultBreakerThreshold, DefaultBreakerCooldown},
		{"threshold 1 cooldown 1", 1, 1, 1, 1},
		{"threshold 2 cooldown 3", 2, 3, 2, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBreaker(c.threshold, c.cooldown)
			for i := 0; i < c.tripAborts-1; i++ {
				if b.observe("a", true, false) {
					t.Fatalf("tripped after %d aborts, threshold %d", i+1, b.threshold())
				}
				if !b.Allow("a") {
					t.Fatalf("quarantined below threshold")
				}
			}
			if !b.observe("a", true, false) {
				t.Fatalf("abort %d did not trip at threshold %d", c.tripAborts, b.threshold())
			}
			if b.Allow("a") {
				t.Fatal("tripped tenant still allowed in the trip episode")
			}
			if got := b.Quarantined(); len(got) != 1 || got[0] != "a" {
				t.Fatalf("Quarantined() = %v, want [a]", got)
			}
			// End of the trip episode: the cooldown has not started
			// counting yet, then it counts down one whole episode at a
			// time. The tenant must be refused through the end of the
			// last cooldown episode and admitted immediately after it.
			b.endEpisode()
			for ep := 1; ep <= c.fullEpisodesOut; ep++ {
				if b.Allow("a") {
					t.Fatalf("allowed during cooldown episode %d of %d", ep, c.fullEpisodesOut)
				}
				b.endEpisode()
			}
			if !b.Allow("a") {
				t.Fatalf("still quarantined after %d full cooldown episodes", c.fullEpisodesOut)
			}
			if got := b.Quarantined(); len(got) != 0 {
				t.Fatalf("Quarantined() = %v after reopen, want empty", got)
			}
		})
	}
}

// A completion anywhere in the streak resets the consecutive-abort
// count; other tenants' outcomes never bleed into the streak.
func TestBreakerStreakResetAndTenantIsolation(t *testing.T) {
	b := NewBreaker(3, 1)
	b.observe("a", true, false)
	b.observe("a", true, false)
	b.observe("a", false, true) // completion resets
	b.observe("a", true, false)
	b.observe("a", true, false)
	if !b.Allow("a") {
		t.Fatal("tripped despite a streak-resetting completion")
	}
	// Tenant b's aborts must not count against a.
	b.observe("b", true, false)
	if !b.Allow("a") || !b.Allow("b") {
		t.Fatal("cross-tenant streak bleed")
	}
	if !b.observe("a", true, false) {
		t.Fatal("third consecutive abort did not trip")
	}
	if b.Allow("a") || !b.Allow("b") {
		t.Fatal("quarantine hit the wrong tenant")
	}
}

// A nil breaker is a no-op policy: everything allowed, nothing listed.
func TestBreakerNilIsOpen(t *testing.T) {
	var b *Breaker
	if !b.Allow("anyone") {
		t.Fatal("nil breaker refused a tenant")
	}
	if b.observe("anyone", true, false) {
		t.Fatal("nil breaker tripped")
	}
	b.endEpisode() // must not panic
	if got := b.Quarantined(); got != nil {
		t.Fatalf("nil breaker quarantined %v", got)
	}
}

// When every queued request shares the lowest priority the shed victim
// is still fully determined: latest arrival first, then highest id —
// the exact reverse of dispatch order.
func TestShedVictimTieBreakAllLowestPriority(t *testing.T) {
	mk := func(id int, arrival sim.Cycle) *reqState {
		return &reqState{req: Request{ID: id, Tenant: "a", Arrival: arrival}, core: -1}
	}
	cases := []struct {
		name   string
		queued []*reqState
		want   int
	}{
		{"latest arrival loses", []*reqState{mk(5, 0), mk(3, 100)}, 3},
		{"equal arrival: highest id loses", []*reqState{mk(2, 50), mk(7, 50), mk(4, 50)}, 7},
		{"arrival outranks id", []*reqState{mk(9, 10), mk(1, 20)}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Scheduler{all: c.queued}
			// Terminal requests are never victims.
			s.all = append(s.all, &reqState{req: Request{ID: 99, Tenant: "a", Arrival: 1 << 40}, terminal: true})
			// Other tenants are never victims.
			s.all = append(s.all, &reqState{req: Request{ID: 98, Tenant: "b", Arrival: 1 << 40}})
			v := s.shedVictim("a")
			if v == nil || v.req.ID != c.want {
				t.Fatalf("shedVictim = %+v, want id %d", v, c.want)
			}
		})
	}
}
