package sched_test

// Golden pin for the decision log: the campaign's coverage feedback is
// a hash of this log, so the log itself must never go silently
// nondeterministic (or silently change shape). One fixed schedule —
// secure and plain requests, priorities, a deadline, a queue-bound
// shed, and a scheduled hang that exercises the retry path — replayed
// at compile-pool widths 1 and 4, byte-compared against a committed
// golden file. Regenerate with:
//
//	go test ./internal/sched -run TestGoldenDecisionLog -update-golden
//
// and review the diff like any other contract change.

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

const goldenSeed = 7001

func runGoldenSchedule(t *testing.T, workers int, sealed map[string][]byte) *sched.Report {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One early hang on core 0 forces a fail-closed abort and a retry,
	// so the golden covers the resilience decisions too.
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 2000, Kind: fault.CoreHang, Sel: 0},
	}})
	if err := schedgen.ProvisionKeys(sys, goldenSeed, 2); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:             []int{0, 1},
		Workers:           workers,
		MaxBatch:          2,
		MaxRestarts:       1,
		MaxQueuePerTenant: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []sched.Request{
		{ID: 1, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: schedgen.TenantKeyID(0), Sealed: sealed[schedgen.TenantKeyID(0)]},
		{ID: 2, Tenant: "t1", Model: "yololite", Arrival: 1_000},
		{ID: 3, Tenant: "t0", Model: "yololite", Arrival: 5_000, Priority: 1},
		{ID: 4, Tenant: "t1", Model: "mobilenet", Secure: true, KeyID: schedgen.TenantKeyID(1), Sealed: sealed[schedgen.TenantKeyID(1)], Arrival: 10_000, Deadline: 60_000_000},
		{ID: 5, Tenant: "t0", Model: "mobilenet", Arrival: 20_000},
		// Tenant t0's queue is at its bound of 2 by now; this higher
		// priority arrival sheds the least-urgent queued request.
		{ID: 6, Tenant: "t0", Model: "yololite", Arrival: 30_000, Priority: 2},
		{ID: 7, Tenant: "t1", Model: "mobilenet", Arrival: 2_000_000},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil && !errors.Is(err, sched.ErrQueueFull) {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGoldenDecisionLog(t *testing.T) {
	sealed, err := schedgen.SealedSet(goldenSeed, 2, []byte("golden model"))
	if err != nil {
		t.Fatal(err)
	}
	narrow := runGoldenSchedule(t, 1, sealed)
	wide := runGoldenSchedule(t, 4, sealed)
	if narrow.DecisionLog() != wide.DecisionLog() {
		t.Fatalf("decision log differs between workers 1 and 4\n--- j1 ---\n%s\n--- j4 ---\n%s",
			narrow.DecisionLog(), wide.DecisionLog())
	}
	if narrow.DecisionHash() != wide.DecisionHash() {
		t.Fatalf("decision hash differs: %#x vs %#x", narrow.DecisionHash(), wide.DecisionHash())
	}

	path := filepath.Join("testdata", "golden_decisions.log")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(narrow.DecisionLog()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := narrow.DecisionLog(); got != string(want) {
		t.Fatalf("decision log diverged from the committed golden "+
			"(intentional? rerun with -update-golden and review)\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// runGoldenDecodeSchedule is the decode counterpart: continuous
// batching (a mid-run join), a cross-tenant second batch, a priority
// preemptor over a resident KV window, and an early hang that forces a
// decode retry with a fresh KV claim. Pinned the same way:
//
//	go test ./internal/sched -run TestGoldenDecodeDecisionLog -update-golden
func runGoldenDecodeSchedule(t *testing.T, workers int, sealed map[string][]byte) *sched.Report {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 2000, Kind: fault.CoreHang, Sel: 0},
	}})
	if err := schedgen.ProvisionKeys(sys, goldenSeed, 2); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:       []int{0, 1},
		Workers:     workers,
		MaxBatch:    2,
		MaxRestarts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	specA := workload.DecodeSpec{Layers: 1, Hidden: 64, Heads: 4, FFN: 128, Prompt: 8, Steps: 3}
	specB := workload.DecodeSpec{Layers: 1, Hidden: 64, Heads: 4, FFN: 128, Prompt: 12, Steps: 4}
	reqs := []sched.Request{
		{ID: 1, Tenant: "t0", Secure: true, Decode: &specA},
		{ID: 2, Tenant: "t1", Secure: true, Decode: &specB, Arrival: 30_000},
		// Joins req 1's batch at a token boundary mid-run.
		{ID: 3, Tenant: "t0", Secure: true, Decode: &specA, Arrival: 60_000},
		// Preempts a decode batch; its KV window must stay resident.
		{ID: 4, Tenant: "t0", Model: "mobilenet", Secure: true, Priority: 5,
			KeyID: schedgen.TenantKeyID(0), Sealed: sealed[schedgen.TenantKeyID(0)], Arrival: 90_000},
		{ID: 5, Tenant: "t1", Secure: true, Decode: &specB, Arrival: 200_000},
	}
	for _, r := range reqs {
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGoldenDecodeDecisionLog(t *testing.T) {
	sealed, err := schedgen.SealedSet(goldenSeed, 2, []byte("golden model"))
	if err != nil {
		t.Fatal(err)
	}
	narrow := runGoldenDecodeSchedule(t, 1, sealed)
	wide := runGoldenDecodeSchedule(t, 4, sealed)
	if narrow.DecisionLog() != wide.DecisionLog() {
		t.Fatalf("decode decision log differs between workers 1 and 4\n--- j1 ---\n%s\n--- j4 ---\n%s",
			narrow.DecisionLog(), wide.DecisionLog())
	}
	// The golden must actually cover the decode vocabulary.
	for _, want := range []string{"kv_alloc", "join", "token", "leave", "kv_scrub"} {
		if !strings.Contains(narrow.DecisionLog(), want) {
			t.Fatalf("golden decode schedule never emitted %q:\n%s", want, narrow.DecisionLog())
		}
	}

	path := filepath.Join("testdata", "golden_decode_decisions.log")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(narrow.DecisionLog()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := narrow.DecisionLog(); got != string(want) {
		t.Fatalf("decode decision log diverged from the committed golden "+
			"(intentional? rerun with -update-golden and review)\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
