package sched_test

// Resilience policy tests: fault retry with exponential backoff,
// per-tenant queue bounds with lowest-priority-first shedding, the
// per-tenant circuit breaker, mid-run deadline misses, and the
// differential determinism of all of it under an armed fault plan.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/sim"
)

// hangStorm arms core 0 with hangs spaced `gap` cycles apart so every
// dispatch attempt on it wedges.
func hangStorm(sys *snpu.System, n int, gap sim.Cycle) {
	events := make([]fault.Event, 0, n)
	for i := 1; i <= n; i++ {
		events = append(events, fault.Event{At: sim.Cycle(i) * gap, Kind: fault.CoreHang, Sel: 0})
	}
	sys.InstallFaultPlan(fault.Plan{Events: events})
}

func submitSecure(t *testing.T, sc *sched.Scheduler, sys *snpu.System, id int, tenant, model string, extra func(*sched.Request)) {
	t.Helper()
	key := snpu.ChaosKey(int64(id) * 31)
	keyID := fmt.Sprintf("%s-key-%d", tenant, id)
	if err := sys.ProvisionKey(keyID, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("resilience model"))
	if err != nil {
		t.Fatal(err)
	}
	r := sched.Request{ID: id, Tenant: tenant, Model: model, Secure: true, KeyID: keyID, Sealed: sealed}
	if extra != nil {
		extra(&r)
	}
	if err := sc.Submit(r); err != nil {
		t.Fatal(err)
	}
}

// A single scheduled hang aborts the attempt fail-closed, but with a
// restart budget the request re-enters after its backoff, restarts
// from the checkpoint through a fresh FnSubmit, and completes — the
// recovery is visible only as Retries/Recovered accounting and a
// "retry" decision, never as an error detail.
func TestSchedulerRetriesFaultedSecureTask(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(fault.Plan{Events: []fault.Event{
		{At: 1000, Kind: fault.CoreHang, Sel: 0},
	}})
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}, MaxRestarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Completed || r.Retries != 1 {
		t.Fatalf("want completed after 1 retry, got %+v\n%s", r, rep.DecisionLog())
	}
	if rep.Recovered != 1 || rep.Retries != 1 {
		t.Fatalf("report recovered=%d retries=%d, want 1/1", rep.Recovered, rep.Retries)
	}
	log := rep.DecisionLog()
	if !strings.Contains(log, "retry") {
		t.Fatalf("no retry decision logged:\n%s", log)
	}
	// The backoff is real simulated time: the retry decision names the
	// cycle the request may re-enter, and nothing dispatches it before.
	var retryAt, redispatch sim.Cycle
	for _, d := range rep.Decisions {
		if d.Event == "retry" && d.Req == 1 {
			fmt.Sscanf(d.Detail, "attempt=1 backoff-until=%d", &retryAt)
		}
		if d.Event == "dispatch" && d.Req == 1 && d.Cycle > 1000 {
			redispatch = d.Cycle
		}
	}
	if retryAt == 0 || redispatch < retryAt {
		t.Fatalf("backoff not respected: retryAt=%d redispatch=%d\n%s", retryAt, redispatch, log)
	}
}

// A hang storm exhausts the restart budget: the request consumes
// exactly MaxRestarts retries and is then abandoned with the opaque
// sentinel, marked Retryable (the failure class is environmental).
func TestSchedulerRetryBudgetExhausted(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hangStorm(sys, 4000, 50_000)
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}, MaxRestarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Aborted || r.Retries != 2 || !r.Retryable {
		t.Fatalf("want aborted after 2 retries (retryable), got %+v\n%s", r, rep.DecisionLog())
	}
	if r.Err != sched.ErrTaskAborted.Error() {
		t.Fatalf("abort error not opaque: %q", r.Err)
	}
	if rep.Recovered != 0 {
		t.Fatalf("recovered=%d for an abandoned task", rep.Recovered)
	}
}

// With retries disabled (the default), a fault aborts terminally —
// exactly the pre-policy behavior — but the result still carries the
// Retryable class marker so the serve layer can hint a client retry.
func TestSchedulerFaultAbortRetryableWithoutBudget(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hangStorm(sys, 4000, 50_000)
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Aborted || r.Retries != 0 || !r.Retryable {
		t.Fatalf("want terminal retryable abort, got %+v", r)
	}
	if r.Err != sched.ErrTaskAborted.Error() {
		t.Fatalf("abort error not opaque: %q", r.Err)
	}
}

// An explicit zero restart budget with a configured backoff behaves
// exactly like the default: the backoff knob is inert, the first fault
// aborts terminally, and the opaque sentinel is all the client sees.
func TestSchedulerZeroRetryBudgetIgnoresBackoff(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hangStorm(sys, 4000, 50_000)
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}, MaxRestarts: 0, RetryBackoff: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Aborted || r.Retries != 0 || !r.Retryable {
		t.Fatalf("want terminal retryable abort with 0 retries, got %+v", r)
	}
	if r.Err != sched.ErrTaskAborted.Error() {
		t.Fatalf("abort error not opaque: %q", r.Err)
	}
	if strings.Contains(rep.DecisionLog(), "retry") {
		t.Fatalf("zero budget logged a retry:\n%s", rep.DecisionLog())
	}
}

// All queued requests at the lowest priority: the shed victim is the
// latest arrival (not the highest id), end to end through Submit.
func TestSchedulerShedTieBreakLatestArrival(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxQueuePerTenant: 2})
	// id 5 arrives first, id 3 later — both priority 0. The victim must
	// be id 3 (latest arrival), even though 5 is the higher id.
	if err := sc.Submit(sched.Request{ID: 5, Tenant: "a", Model: "mobilenet", Arrival: 0}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{ID: 3, Tenant: "a", Model: "mobilenet", Arrival: 100}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(sched.Request{ID: 9, Tenant: "a", Model: "mobilenet", Arrival: 200, Priority: 1}); err != nil {
		t.Fatalf("priority arrival refused: %v", err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.ResultByID(3); !r.Shed {
		t.Fatalf("req 3 = %+v, want shed\n%s", r, rep.DecisionLog())
	}
	for _, id := range []int{5, 9} {
		if r := rep.ResultByID(id); !r.Completed {
			t.Fatalf("req %d = %+v, want completed\n%s", id, r, rep.DecisionLog())
		}
	}
	if !strings.Contains(rep.DecisionLog(), "shed") || !strings.Contains(rep.DecisionLog(), "for req 9") {
		t.Fatalf("shed decision missing or unattributed:\n%s", rep.DecisionLog())
	}
}

// The per-tenant queue bound sheds deterministically: an arrival into
// a full queue is refused unless it outranks the least-urgent queued
// request, which is then shed (lowest priority first, then latest
// arrival, then highest id).
func TestSchedulerShedsLowestPriorityFirst(t *testing.T) {
	_, sc := bootSched(t, sched.Config{Cores: []int{0}, MaxQueuePerTenant: 2})
	for id := 1; id <= 2; id++ {
		if err := sc.Submit(sched.Request{ID: id, Tenant: "a", Model: "mobilenet"}); err != nil {
			t.Fatal(err)
		}
	}
	// Equal priority into a full queue: refused, queue unchanged.
	err := sc.Submit(sched.Request{ID: 3, Tenant: "a", Model: "mobilenet"})
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("submit 3 = %v, want ErrQueueFull", err)
	}
	// Another tenant is not affected by a's bound.
	if err := sc.Submit(sched.Request{ID: 4, Tenant: "b", Model: "mobilenet"}); err != nil {
		t.Fatal(err)
	}
	// Strictly higher priority sheds the least-urgent victim (id 2:
	// same priority and arrival as id 1, higher id).
	if err := sc.Submit(sched.Request{ID: 5, Tenant: "a", Model: "mobilenet", Priority: 1}); err != nil {
		t.Fatalf("priority arrival refused: %v", err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	shed := rep.ResultByID(2)
	if !shed.Shed || shed.Completed {
		t.Fatalf("req 2 = %+v, want shed\n%s", shed, rep.DecisionLog())
	}
	if rep.Shed != 1 || rep.Completed != 3 {
		t.Fatalf("shed=%d completed=%d, want 1/3", rep.Shed, rep.Completed)
	}
	if !strings.Contains(rep.DecisionLog(), "shed") {
		t.Fatalf("no shed decision:\n%s", rep.DecisionLog())
	}
}

// The circuit breaker quarantines a tenant whose tasks repeatedly
// abort, refuses its submissions for the cooldown, and releases it
// after the cooldown episodes elapse.
func TestSchedulerBreakerQuarantinesAbortingTenant(t *testing.T) {
	br := sched.NewBreaker(2, 1)

	// Episode 1: tenant a aborts twice in a row under a hang storm.
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hangStorm(sys, 4000, 50_000)
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}, Breaker: br})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	submitSecure(t, sc, sys, 2, "a", "alexnet", nil)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted != 2 {
		t.Fatalf("aborted=%d, want 2\n%s", rep.Aborted, rep.DecisionLog())
	}
	if !strings.Contains(rep.DecisionLog(), "quarantine") {
		t.Fatalf("breaker tripped silently:\n%s", rep.DecisionLog())
	}

	// Episode 2: tenant a is refused, tenant b is served.
	sys2, sc2 := bootSched(t, sched.Config{Cores: []int{0}, Breaker: br})
	_ = sys2
	err = sc2.Submit(sched.Request{ID: 10, Tenant: "a", Model: "mobilenet"})
	if !errors.Is(err, sched.ErrTenantQuarantined) {
		t.Fatalf("quarantined submit = %v, want ErrTenantQuarantined", err)
	}
	if err := sc2.Submit(sched.Request{ID: 11, Tenant: "b", Model: "mobilenet"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc2.Run(); err != nil {
		t.Fatal(err)
	}

	// Episode 3: the 1-episode cooldown has elapsed; a is welcome back.
	_, sc3 := bootSched(t, sched.Config{Cores: []int{0}, Breaker: br})
	if err := sc3.Submit(sched.Request{ID: 20, Tenant: "a", Model: "mobilenet"}); err != nil {
		t.Fatalf("post-cooldown submit refused: %v", err)
	}
}

// A feasible deadline that the run nonetheless crosses is cut
// deterministically at a tile boundary: the member retires dropped
// with the deadline_miss decision, and a secure cut pays the §IV-B
// flush before the core is reused.
func TestSchedulerDeadlineMissMidRunPaysFlush(t *testing.T) {
	// Measure the solo secure latency first.
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc, sys, 1, "a", "mobilenet", nil)
	ref, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	solo := ref.ResultByID(1)
	if !solo.Completed {
		t.Fatalf("solo run did not complete: %+v", solo)
	}

	// Replay with a deadline one cycle short of the known finish: the
	// compute floor fits (admission passes) but the run must cross it.
	sys2, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := sys2.NewScheduler(sched.Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	submitSecure(t, sc2, sys2, 1, "a", "mobilenet", func(r *sched.Request) {
		r.Deadline = solo.Finish - 1
	})
	rep, err := sc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := rep.ResultByID(1)
	if !r.Dropped || r.Err != "sched: deadline missed" {
		t.Fatalf("want mid-run deadline drop, got %+v\n%s", r, rep.DecisionLog())
	}
	if !strings.Contains(rep.DecisionLog(), "deadline_miss") {
		t.Fatalf("no deadline_miss decision:\n%s", rep.DecisionLog())
	}
	if rep.FlushCycles == 0 {
		t.Fatal("secure deadline cut paid no flush")
	}
}

// Differential determinism under the full policy stack: an armed fault
// plan, overload-level queue bounds, retries, and deadlines replayed
// at Workers 1 vs 4 and on a fresh System must be byte-identical.
func runResilientTrace(t *testing.T, seed int64, workers int, sealed map[string][]byte) *sched.Report {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallFaultPlan(fault.Generate(seed, 200_000_000, fault.TransientRates(25)))
	const tenants = 3
	if err := schedgen.ProvisionKeys(sys, seed, tenants); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:             []int{0, 1, 2, 3},
		Workers:           workers,
		MaxRestarts:       2,
		MaxQueuePerTenant: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range snpu.ServeTrace(seed, 0.5, 24, tenants) {
		if r.Secure {
			r.Sealed = sealed[r.KeyID]
		}
		err := sc.Submit(r)
		if err != nil && !errors.Is(err, sched.ErrQueueFull) {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDifferentialResilienceDeterminism(t *testing.T) {
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			sealed := sealedSet(t, seed)
			ref := runResilientTrace(t, seed, 1, sealed)
			wide := runResilientTrace(t, seed, 4, sealed)
			diffReports(t, "workers 1 vs 4", ref, wide)
			again := runResilientTrace(t, seed, 1, sealed)
			diffReports(t, "fresh system", ref, again)
		})
	}
}
