package sched_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	snpu "repro"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Differential determinism: the scheduler's compile pool width and the
// identity of the System instance must be invisible in every observable
// output. The same trace replayed at Workers 1 vs 4, and on two
// independently booted Systems, must produce byte-identical decision
// logs and identical per-request cycle spans. CI runs this under -race,
// so the Workers=4 leg also proves the pool is data-race free.

// runTrace replays one ServeTrace episode on a fresh System. Sealed
// blobs are supplied by the caller so every leg of a differential pair
// shares the exact same bytes (sealing uses a random nonce; only the
// blob's length feeds the cycle model, but identical inputs keep the
// comparison airtight).
func runTrace(t *testing.T, seed int64, workers int, sealed map[string][]byte) *sched.Report {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3
	if err := schedgen.ProvisionKeys(sys, seed, tenants); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:   []int{0, 1, 2, 3},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range snpu.ServeTrace(seed, 0.3, 24, tenants) {
		if r.Secure {
			r.Sealed = sealed[r.KeyID]
		}
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sealedSet builds one sealed blob per tenant key, shared across every
// leg of a differential comparison.
func sealedSet(t *testing.T, seed int64) map[string][]byte {
	t.Helper()
	out, err := schedgen.SealedSet(seed, 3, []byte("determinism model"))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func diffReports(t *testing.T, label string, a, b *sched.Report) {
	t.Helper()
	if got, want := b.DecisionLog(), a.DecisionLog(); got != want {
		t.Fatalf("%s: decision logs diverge\n--- a ---\n%s\n--- b ---\n%s", label, want, got)
	}
	if a.Makespan != b.Makespan || a.FlushCycles != b.FlushCycles {
		t.Fatalf("%s: makespan/flush diverge: %d/%d vs %d/%d",
			label, a.Makespan, a.FlushCycles, b.Makespan, b.FlushCycles)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: result counts diverge: %d vs %d", label, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra != rb {
			t.Fatalf("%s: req %d diverges:\n a=%+v\n b=%+v", label, ra.ID, ra, rb)
		}
	}
}

func TestDifferentialDeterminism(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			sealed := sealedSet(t, seed)
			ref := runTrace(t, seed, 1, sealed)
			// Sanity: the reference episode did real work, so the
			// comparison below is not vacuous.
			if ref.Completed == 0 || ref.Makespan == 0 {
				t.Fatalf("reference episode did nothing: %+v", ref)
			}
			// Leg 1: compile-pool width must not leak into the schedule.
			wide := runTrace(t, seed, 4, sealed)
			diffReports(t, "workers 1 vs 4", ref, wide)
			// Leg 2: a second fresh System replays identically.
			again := runTrace(t, seed, 1, sealed)
			diffReports(t, "fresh system", ref, again)
		})
	}
}

// decodeTrace derives a deterministic decode episode from a seed: two
// tenants with distinct specs, staggered arrivals, mixed priorities,
// and one plain secure request so decode batches get preempted.
func decodeTrace(seed int64) []sched.Request {
	rng := rand.New(rand.NewSource(seed))
	specs := []workload.DecodeSpec{
		{Layers: 1, Hidden: 64, Heads: 4, FFN: 128, Prompt: 8, Steps: 3},
		{Layers: 1, Hidden: 64, Heads: 4, FFN: 128, Prompt: 16, Steps: 5},
	}
	var reqs []sched.Request
	for id := 1; id <= 8; id++ {
		ti := rng.Intn(len(specs))
		spec := specs[ti]
		reqs = append(reqs, sched.Request{
			ID: id, Tenant: fmt.Sprintf("t%d", ti), Secure: true, Decode: &spec,
			Arrival:  sim.Cycle(rng.Intn(400_000)),
			Priority: sched.Priority(rng.Intn(2) * 3),
		})
	}
	reqs = append(reqs, sched.Request{
		ID: 9, Tenant: "t0", Model: "mobilenet", Secure: true, Priority: 7,
		KeyID: schedgen.TenantKeyID(0), Arrival: sim.Cycle(100_000 + rng.Intn(100_000)),
	})
	return reqs
}

// runDecodeTrace replays one decode episode. When sys is nil a fresh
// System boots; passing a recycled (Reset) System pins the pooled-reuse
// path to the same observable outputs.
func runDecodeTrace(t *testing.T, seed int64, workers int, sys *snpu.System, sealed map[string][]byte) *sched.Report {
	t.Helper()
	if sys == nil {
		var err error
		sys, err = snpu.New(snpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := schedgen.ProvisionKeys(sys, seed, 2); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores: []int{0, 1}, Workers: workers, MaxBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range decodeTrace(seed) {
		if r.Secure && r.Decode == nil {
			r.Sealed = sealed[r.KeyID]
		}
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// diffDecodeReports extends diffReports with the per-token contract:
// identical token counts and byte-identical per-token retire cycles.
func diffDecodeReports(t *testing.T, label string, a, b *sched.Report) {
	t.Helper()
	diffReports(t, label, a, b)
	if a.Tokens != b.Tokens {
		t.Fatalf("%s: total tokens diverge: %d vs %d", label, a.Tokens, b.Tokens)
	}
	if !reflect.DeepEqual(a.TokenTimes, b.TokenTimes) {
		t.Fatalf("%s: per-token times diverge:\n a=%v\n b=%v", label, a.TokenTimes, b.TokenTimes)
	}
}

// Decode determinism: the same decode trace at compile-pool widths 1
// vs 4 and on a fresh vs a recycled (pool-path, Reset) System must
// produce byte-identical decision logs and identical per-token retire
// cycles. CI runs this under -race, so the wide leg also proves the
// decode compile fan-out is race free.
func TestDecodeDifferentialDeterminism(t *testing.T) {
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			sealed := sealedSet(t, seed)
			ref := runDecodeTrace(t, seed, 1, nil, sealed)
			if ref.Tokens == 0 || ref.Completed == 0 {
				t.Fatalf("reference decode episode did nothing: %+v", ref)
			}
			wide := runDecodeTrace(t, seed, 4, nil, sealed)
			diffDecodeReports(t, "workers 1 vs 4", ref, wide)

			// Pooled leg: run a throwaway episode on a System, hand it
			// back through Reset (exactly what the pool does), and replay
			// the trace on the recycled instance.
			pooled, err := snpu.New(snpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			_ = runDecodeTrace(t, seed+1000, 1, pooled, sealedSet(t, seed+1000))
			if err := pooled.Reset(); err != nil {
				t.Fatal(err)
			}
			recycled := runDecodeTrace(t, seed, 1, pooled, sealed)
			diffDecodeReports(t, "fresh vs recycled system", ref, recycled)
		})
	}
}

// The latency accounting is part of the deterministic contract too:
// per-request spans must be internally consistent with the report's
// aggregate makespan.
func TestDeterministicReportInternalConsistency(t *testing.T) {
	sealed := sealedSet(t, 5)
	rep := runTrace(t, 5, 2, sealed)
	var maxFinish sim.Cycle
	for _, r := range rep.Results {
		if r.Completed && r.Finish > maxFinish {
			maxFinish = r.Finish
		}
		if r.Completed && r.Latency() != r.Finish-r.Arrival {
			t.Fatalf("req %d latency %d != finish-arrival %d", r.ID, r.Latency(), r.Finish-r.Arrival)
		}
	}
	if maxFinish > rep.Makespan {
		t.Fatalf("a request finished at %d, after the reported makespan %d", maxFinish, rep.Makespan)
	}
}
