package sched_test

import (
	"fmt"
	"testing"

	snpu "repro"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/sim"
)

// Differential determinism: the scheduler's compile pool width and the
// identity of the System instance must be invisible in every observable
// output. The same trace replayed at Workers 1 vs 4, and on two
// independently booted Systems, must produce byte-identical decision
// logs and identical per-request cycle spans. CI runs this under -race,
// so the Workers=4 leg also proves the pool is data-race free.

// runTrace replays one ServeTrace episode on a fresh System. Sealed
// blobs are supplied by the caller so every leg of a differential pair
// shares the exact same bytes (sealing uses a random nonce; only the
// blob's length feeds the cycle model, but identical inputs keep the
// comparison airtight).
func runTrace(t *testing.T, seed int64, workers int, sealed map[string][]byte) *sched.Report {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3
	if err := schedgen.ProvisionKeys(sys, seed, tenants); err != nil {
		t.Fatal(err)
	}
	sc, err := sys.NewScheduler(sched.Config{
		Cores:   []int{0, 1, 2, 3},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range snpu.ServeTrace(seed, 0.3, 24, tenants) {
		if r.Secure {
			r.Sealed = sealed[r.KeyID]
		}
		if err := sc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sealedSet builds one sealed blob per tenant key, shared across every
// leg of a differential comparison.
func sealedSet(t *testing.T, seed int64) map[string][]byte {
	t.Helper()
	out, err := schedgen.SealedSet(seed, 3, []byte("determinism model"))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func diffReports(t *testing.T, label string, a, b *sched.Report) {
	t.Helper()
	if got, want := b.DecisionLog(), a.DecisionLog(); got != want {
		t.Fatalf("%s: decision logs diverge\n--- a ---\n%s\n--- b ---\n%s", label, want, got)
	}
	if a.Makespan != b.Makespan || a.FlushCycles != b.FlushCycles {
		t.Fatalf("%s: makespan/flush diverge: %d/%d vs %d/%d",
			label, a.Makespan, a.FlushCycles, b.Makespan, b.FlushCycles)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: result counts diverge: %d vs %d", label, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra != rb {
			t.Fatalf("%s: req %d diverges:\n a=%+v\n b=%+v", label, ra.ID, ra, rb)
		}
	}
}

func TestDifferentialDeterminism(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			sealed := sealedSet(t, seed)
			ref := runTrace(t, seed, 1, sealed)
			// Sanity: the reference episode did real work, so the
			// comparison below is not vacuous.
			if ref.Completed == 0 || ref.Makespan == 0 {
				t.Fatalf("reference episode did nothing: %+v", ref)
			}
			// Leg 1: compile-pool width must not leak into the schedule.
			wide := runTrace(t, seed, 4, sealed)
			diffReports(t, "workers 1 vs 4", ref, wide)
			// Leg 2: a second fresh System replays identically.
			again := runTrace(t, seed, 1, sealed)
			diffReports(t, "fresh system", ref, again)
		})
	}
}

// The latency accounting is part of the deterministic contract too:
// per-request spans must be internally consistent with the report's
// aggregate makespan.
func TestDeterministicReportInternalConsistency(t *testing.T) {
	sealed := sealedSet(t, 5)
	rep := runTrace(t, 5, 2, sealed)
	var maxFinish sim.Cycle
	for _, r := range rep.Results {
		if r.Completed && r.Finish > maxFinish {
			maxFinish = r.Finish
		}
		if r.Completed && r.Latency() != r.Finish-r.Arrival {
			t.Fatalf("req %d latency %d != finish-arrival %d", r.ID, r.Latency(), r.Finish-r.Arrival)
		}
	}
	if maxFinish > rep.Makespan {
		t.Fatalf("a request finished at %d, after the reported makespan %d", maxFinish, rep.Makespan)
	}
}
