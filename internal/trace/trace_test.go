package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRecorderOrdersAndTotals(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "b", Kind: KindCompute, Core: 0, Start: 100, End: 150})
	r.Record(Event{Name: "a", Kind: KindDMA, Core: 1, Start: 10, End: 40})
	r.Record(Event{Name: "c", Kind: KindCompute, Core: 0, Start: 150, End: 170})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Name != "a" || evs[2].Name != "c" {
		t.Fatalf("order = %v", evs)
	}
	totals := r.Totals()
	if totals[KindCompute] != 70 || totals[KindDMA] != 30 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestRecorderCap(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Name: "x", Start: 0, End: 1})
	}
	if r.Len() != 2 {
		t.Fatalf("cap not enforced: %d", r.Len())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Name: "x"}) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaved")
	}
	if len(r.Totals()) != 0 {
		t.Fatal("nil totals")
	}
	if err := r.ExportChrome(&bytes.Buffer{}); err == nil {
		t.Fatal("nil export succeeded")
	}
}

func TestExportChromeFormat(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "matmul", Kind: KindCompute, Core: 3, Start: 5, End: 25})
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	e := doc.TraceEvents[0]
	if e.Name != "matmul" || e.Cat != "compute" || e.Ph != "X" || e.Ts != 5 || e.Dur != 20 || e.TID != 3 {
		t.Fatalf("event = %+v", e)
	}
}

// --- Edge cases: empty trace, zero/negative spans, sort stability ---

func TestEmptyRecorderExportsValidJSON(t *testing.T) {
	r := New(0)
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.TraceEvents == nil {
		t.Fatal("empty export must carry an empty traceEvents array, not null")
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty recorder exported %d events", len(doc.TraceEvents))
	}
	if r.Len() != 0 || len(r.Events()) != 0 || len(r.Totals()) != 0 {
		t.Fatal("empty recorder reports phantom events")
	}
}

func TestZeroAndInstantSpans(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "instant", Kind: KindOther, Start: 10, End: 10})
	if d := r.Events()[0].Duration(); d != 0 {
		t.Fatalf("instant duration = %d", d)
	}
	if got := r.Totals()[KindOther]; got != 0 {
		t.Fatalf("instant total = %d", got)
	}
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEventsSortIsStableForEqualStarts(t *testing.T) {
	// Same-start events must keep recording order (SliceStable), so a
	// re-export of the same run is byte-identical.
	r := New(0)
	for i, name := range []string{"first", "second", "third"} {
		r.Record(Event{Name: name, Kind: KindNoC, Core: i, Start: 50, End: 60})
	}
	evs := r.Events()
	if evs[0].Name != "first" || evs[1].Name != "second" || evs[2].Name != "third" {
		t.Fatalf("same-start order not stable: %v", evs)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "x", Start: 1, End: 2})
	evs := r.Events()
	evs[0].Name = "mutated"
	if r.Events()[0].Name != "x" {
		t.Fatal("Events() exposed internal storage")
	}
}

func TestCapZeroMeansUnbounded(t *testing.T) {
	r := New(0)
	for i := 0; i < 10_000; i++ {
		r.Record(Event{Name: "x", Start: 0, End: 1})
	}
	if r.Len() != 10_000 {
		t.Fatalf("unbounded recorder dropped events: %d", r.Len())
	}
}

// --- Epochs: pre-BeginEpoch buffering (regression: events recorded
// before the first BeginEpoch used to be dropped) ---

func TestPreEpochEventsAreBuffered(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "early-dma", Kind: KindDMA, Start: 5, End: 9})
	r.Record(Event{Name: "early-noc", Kind: KindNoC, Start: 7, End: 8})
	r.BeginEpoch("restart-1", 100)
	r.Record(Event{Name: "late", Kind: KindCompute, Start: 120, End: 130})

	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3 (pre-epoch events must not be dropped)", r.Len())
	}
	evs := r.Events()
	if evs[0].Epoch != 0 || evs[1].Epoch != 0 {
		t.Fatalf("pre-BeginEpoch events not pinned to the implicit epoch 0: %+v", evs[:2])
	}
	if evs[2].Epoch != 1 {
		t.Fatalf("post-BeginEpoch event epoch = %d, want 1", evs[2].Epoch)
	}
	eps := r.Epochs()
	if len(eps) != 2 || eps[0].Name != "pre" || eps[0].Start != 0 || eps[1].Name != "restart-1" || eps[1].Start != 100 {
		t.Fatalf("epochs = %+v", eps)
	}
}

func TestEpochlessRecorderReportsImplicitPre(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "x", Start: 1, End: 2})
	eps := r.Epochs()
	if len(eps) != 1 || eps[0].Name != "pre" {
		t.Fatalf("epochs = %+v, want the single implicit pre epoch", eps)
	}
	if r.Events()[0].Epoch != 0 {
		t.Fatal("epoch-less event must carry epoch 0")
	}
}

func TestRecordOverwritesCallerEpoch(t *testing.T) {
	r := New(0)
	r.BeginEpoch("a", 0)
	r.Record(Event{Name: "x", Epoch: 99})
	if got := r.Events()[0].Epoch; got != 1 {
		t.Fatalf("epoch = %d, want 1 (Record assigns the current epoch)", got)
	}
}

func TestNilRecorderEpochsSafe(t *testing.T) {
	var r *Recorder
	r.BeginEpoch("x", 0)
	if r.Epochs() != nil {
		t.Fatal("nil recorder reported epochs")
	}
}

func TestExportChromeEpochMetadata(t *testing.T) {
	r := New(0)
	r.Record(Event{Name: "pre-ev", Kind: KindDMA, Start: 0, End: 1})
	r.BeginEpoch("restart-1", 50)
	r.Record(Event{Name: "post-ev", Kind: KindCompute, Core: 2, Start: 60, End: 70})
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var meta, spans int
	pidOf := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		spans++
		pidOf[e.Name] = e.PID
	}
	if meta != 2 {
		t.Fatalf("metadata events = %d, want 2 (pre + restart-1)", meta)
	}
	if spans != 2 {
		t.Fatalf("span events = %d, want 2", spans)
	}
	if pidOf["pre-ev"] != 1 || pidOf["post-ev"] != 2 {
		t.Fatalf("epoch pids = %v, want pre-ev:1 post-ev:2", pidOf)
	}
}

func TestExportChromeNoEpochMetadataWhenEpochless(t *testing.T) {
	// Back-compat: a recorder that never saw BeginEpoch exports the
	// original single-process layout with no metadata events.
	r := New(0)
	r.Record(Event{Name: "x", Kind: KindCompute, Start: 0, End: 1})
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			t.Fatal("epoch-less export emitted metadata events")
		}
	}
}
