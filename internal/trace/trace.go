// Package trace records simulated execution events (DMA batches,
// compute tiles, NoC transfers, flushes) and exports them as a
// Chrome-trace JSON file (chrome://tracing, Perfetto), giving the
// simulator a profiler-grade timeline view.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the executors.
const (
	KindCompute Kind = "compute"
	KindDMA     Kind = "dma"
	KindNoC     Kind = "noc"
	KindFlush   Kind = "flush"
	KindOther   Kind = "other"
)

// Event is one timeline span.
type Event struct {
	Name  string
	Kind  Kind
	Core  int
	Start sim.Cycle
	End   sim.Cycle
}

// Duration is the span length.
func (e Event) Duration() sim.Cycle { return e.End - e.Start }

// Recorder accumulates events. The zero value is unusable; New
// returns a ready recorder. A nil *Recorder is safe to record into
// (no-op), so components can take an optional recorder without
// nil-checking at every call site.
type Recorder struct {
	events []Event
	cap    int
}

// New returns a recorder holding at most capacity events (0 =
// unbounded). Exceeding the cap drops further events rather than
// growing without bound during long runs.
func New(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// Record appends one event.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.cap > 0 && len(r.events) >= r.cap {
		return
	}
	r.events = append(r.events, e)
}

// Len reports the recorded event count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the events sorted by start cycle.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Totals sums durations per kind.
func (r *Recorder) Totals() map[Kind]sim.Cycle {
	out := make(map[Kind]sim.Cycle)
	if r == nil {
		return out
	}
	for _, e := range r.events {
		out[e.Kind] += e.Duration()
	}
	return out
}

// chromeEvent is the Chrome trace-event format's "complete" event.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`  // microseconds; we emit cycles directly
	Dur  int64  `json:"dur"` // duration in the same unit
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// ExportChrome writes the recorded events in Chrome trace-event JSON.
// Cycles are emitted as microseconds so a 1 GHz cycle reads as 1 us in
// the viewer (scale mentally by 1000).
func (r *Recorder) ExportChrome(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("trace: nil recorder")
	}
	evs := r.Events()
	out := make([]chromeEvent, 0, len(evs))
	for _, e := range evs {
		out = append(out, chromeEvent{
			Name: e.Name,
			Cat:  string(e.Kind),
			Ph:   "X",
			Ts:   int64(e.Start),
			Dur:  int64(e.Duration()),
			PID:  1,
			TID:  e.Core,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
