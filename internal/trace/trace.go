// Package trace records simulated execution spans (DMA batches,
// compute tiles, NoC transfers, IOTLB walks, fault landings, Monitor
// recovery actions) and exports them as a Chrome-trace JSON file
// (chrome://tracing, Perfetto), giving the simulator the
// profiler-grade timeline view behind the paper's cycle accounting
// (§VI, Figs. 13–17: where stall cycles and extra traffic go).
//
// Spans are grouped into *epochs* — phases of a run such as the
// checkpoint-restart attempts of the Monitor's recovery ladder
// (DESIGN.md §6). Events recorded before the first BeginEpoch are
// never dropped: they belong to an implicit "pre" epoch, so a
// component that starts emitting spans before the run's phase
// structure is known loses nothing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the executors and the observability layer.
const (
	KindCompute Kind = "compute"
	KindDMA     Kind = "dma"
	KindNoC     Kind = "noc"
	KindFlush   Kind = "flush"
	KindIOTLB   Kind = "iotlb"
	KindFault   Kind = "fault"
	KindMonitor Kind = "monitor"
	KindOther   Kind = "other"
)

// Event is one timeline span.
type Event struct {
	Name  string
	Kind  Kind
	Core  int
	Start sim.Cycle
	End   sim.Cycle
	// Epoch is the index into the recorder's epoch list, assigned by
	// Record from the recorder's current epoch (any value set by the
	// caller is overwritten).
	Epoch int
}

// Duration is the span length.
func (e Event) Duration() sim.Cycle { return e.End - e.Start }

// Epoch is one named phase of a run (the implicit index-0 "pre"
// epoch, a restart attempt, ...).
type Epoch struct {
	Name  string
	Start sim.Cycle
}

// Recorder accumulates events. The zero value is unusable; New
// returns a ready recorder. A nil *Recorder is safe to record into
// (no-op), so components can take an optional recorder without
// nil-checking at every call site.
type Recorder struct {
	events []Event
	cap    int
	epochs []Epoch
	cur    int
}

// New returns a recorder holding at most capacity events (0 =
// unbounded). Exceeding the cap drops further events rather than
// growing without bound during long runs.
func New(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// BeginEpoch starts a new named phase at the given cycle; subsequent
// events belong to it. The first call retroactively pins everything
// already recorded (and anything recorded by a caller that never
// begins an epoch) to the implicit "pre" epoch at cycle 0 — early
// spans are buffered, never silently lost. Safe on nil.
func (r *Recorder) BeginEpoch(name string, at sim.Cycle) {
	if r == nil {
		return
	}
	if len(r.epochs) == 0 {
		r.epochs = append(r.epochs, Epoch{Name: "pre", Start: 0})
	}
	r.epochs = append(r.epochs, Epoch{Name: name, Start: at})
	r.cur = len(r.epochs) - 1
}

// Epochs returns the epoch list. A recorder that never saw BeginEpoch
// reports the single implicit "pre" epoch all its events carry.
func (r *Recorder) Epochs() []Epoch {
	if r == nil {
		return nil
	}
	if len(r.epochs) == 0 {
		return []Epoch{{Name: "pre", Start: 0}}
	}
	return append([]Epoch(nil), r.epochs...)
}

// Record appends one event to the current epoch.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.cap > 0 && len(r.events) >= r.cap {
		return
	}
	e.Epoch = r.cur
	r.events = append(r.events, e)
}

// Len reports the recorded event count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the events sorted by start cycle.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Totals sums durations per kind.
func (r *Recorder) Totals() map[Kind]sim.Cycle {
	out := make(map[Kind]sim.Cycle)
	if r == nil {
		return out
	}
	for _, e := range r.events {
		out[e.Kind] += e.Duration()
	}
	return out
}

// chromeEvent is the Chrome trace-event format's "complete" ("X") or
// metadata ("M") event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds; we emit cycles directly
	Dur  int64          `json:"dur"` // duration in the same unit
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ExportChrome writes the recorded events in Chrome trace-event JSON.
// Cycles are emitted as microseconds so a 1 GHz cycle reads as 1 us in
// the viewer (scale mentally by 1000). Epochs render as separate
// processes (pid = epoch index + 1) named by metadata events, so a
// restarted run's attempts stack as parallel tracks.
func (r *Recorder) ExportChrome(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("trace: nil recorder")
	}
	evs := r.Events()
	out := make([]chromeEvent, 0, len(evs)+len(r.epochs))
	// Epoch name metadata only when epochs were explicitly begun; an
	// epoch-less trace keeps the original single-process layout.
	if len(r.epochs) > 0 {
		for i, ep := range r.epochs {
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", PID: i + 1,
				Args: map[string]any{"name": fmt.Sprintf("epoch %d: %s", i, ep.Name)},
			})
		}
	}
	for _, e := range evs {
		out = append(out, chromeEvent{
			Name: e.Name,
			Cat:  string(e.Kind),
			Ph:   "X",
			Ts:   int64(e.Start),
			Dur:  int64(e.Duration()),
			PID:  e.Epoch + 1,
			TID:  e.Core,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
