package guarder

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tee"
	"repro/internal/xlate"
)

func newGuarder(t *testing.T) (*Guarder, tee.Context, *sim.Stats) {
	t.Helper()
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys)
	stats := sim.NewStats()
	g := NewDefault(stats)
	sec := machine.SecureContext()
	// Authority: normal world may RW the NPU-reserved region; secure
	// world may RW the secure region and the reserved region.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.SetCheckReg(sec, 0, CheckReg{Base: 0x8800_0000, Size: 0x0100_0000, Perm: mem.PermRW, World: mem.Normal, Valid: true}))
	must(g.SetCheckReg(sec, 1, CheckReg{Base: 0x9000_0000, Size: 0x0080_0000, Perm: mem.PermRW, World: mem.Secure, Valid: true}))
	must(g.SetCheckReg(sec, 2, CheckReg{Base: 0x8800_0000, Size: 0x0100_0000, Perm: mem.PermRW, World: mem.Secure, Valid: true}))
	// Translation: a normal task tile chunk and a secure tile chunk.
	must(g.SetTransReg(sec, 0, TransReg{VBase: 0x1_0000, PBase: 0x8800_4000, Size: 0x1_0000, Valid: true}))
	must(g.SetTransReg(sec, 1, TransReg{VBase: 0x8_0000, PBase: 0x9000_1000, Size: 0x8000, Valid: true}))
	return g, sec, stats
}

func TestGuarderTranslateAndCheck(t *testing.T) {
	g, _, stats := newGuarder(t)
	res, err := g.Translate(xlate.Request{VA: 0x1_0040, Bytes: 4096, Need: mem.PermRead, World: mem.Normal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x8800_4040 {
		t.Fatalf("pa = %#x", uint64(res.PA))
	}
	if res.Stall != 0 {
		t.Fatalf("guarder stalled %d cycles, want 0", res.Stall)
	}
	// One check per request regardless of size (4096B = 64 packets).
	if stats.Get(sim.CtrGuarderChecks) != 1 || stats.Get(sim.CtrTranslations) != 1 {
		t.Fatalf("request-level counting broken: checks=%d translations=%d",
			stats.Get(sim.CtrGuarderChecks), stats.Get(sim.CtrTranslations))
	}
}

func TestGuarderDeniesSecureRegionToNormalWorld(t *testing.T) {
	g, _, stats := newGuarder(t)
	_, err := g.Translate(xlate.Request{VA: 0x8_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("normal world reached secure memory: %v", err)
	}
	if stats.Get(sim.CtrGuarderDenied) != 1 {
		t.Fatal("denial not counted")
	}
	// Secure world succeeds on the same range.
	if _, err := g.Translate(xlate.Request{VA: 0x8_0000, Bytes: 64, Need: mem.PermRead, World: mem.Secure}, 0); err != nil {
		t.Fatalf("secure world denied: %v", err)
	}
}

func TestGuarderUncoveredVADenied(t *testing.T) {
	g, _, _ := newGuarder(t)
	_, err := g.Translate(xlate.Request{VA: 0xdead_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0)
	if !errors.Is(err, ErrNoTranslation) {
		t.Fatalf("uncovered VA produced %v", err)
	}
	// A request straddling past the end of a translation register is
	// also uncovered — partial coverage must not translate.
	_, err = g.Translate(xlate.Request{VA: 0x1_0000 + 0xF000, Bytes: 0x2000, Need: mem.PermRead, World: mem.Normal}, 0)
	if !errors.Is(err, ErrNoTranslation) {
		t.Fatalf("straddling request produced %v", err)
	}
	if _, err := g.Translate(xlate.Request{VA: 0x1_0000, Bytes: 0, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestGuarderProgrammingRequiresSecureInstruction(t *testing.T) {
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys)
	g := NewDefault(sim.NewStats())
	norm := machine.NormalContext()
	reg := CheckReg{Base: 0, Size: 0x1000, Perm: mem.PermRW, World: mem.Normal, Valid: true}
	if err := g.SetCheckReg(norm, 0, reg); !errors.Is(err, tee.ErrPrivilege) {
		t.Fatalf("normal world programmed checking register: %v", err)
	}
	if err := g.SetTransReg(norm, 0, TransReg{Valid: true, Size: 0x1000}); !errors.Is(err, tee.ErrPrivilege) {
		t.Fatalf("normal world programmed translation register: %v", err)
	}
	if err := g.ClearTask(norm); !errors.Is(err, tee.ErrPrivilege) {
		t.Fatalf("normal world cleared task state: %v", err)
	}
}

func TestGuarderRegisterIndexBounds(t *testing.T) {
	g, sec, _ := newGuarder(t)
	if err := g.SetCheckReg(sec, DefaultCheckRegs, CheckReg{}); err == nil {
		t.Fatal("out-of-range checking register accepted")
	}
	if err := g.SetTransReg(sec, -1, TransReg{}); err == nil {
		t.Fatal("negative translation register accepted")
	}
}

func TestGuarderClearTaskInvalidatesTranslations(t *testing.T) {
	g, sec, _ := newGuarder(t)
	if err := g.ClearTask(sec); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Translate(xlate.Request{VA: 0x1_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("translation survived ClearTask")
	}
	// Checking registers persist.
	regs := g.CheckRegs()
	if !regs[0].Valid {
		t.Fatal("checking register invalidated by ClearTask")
	}
}

func TestGuarderContextSwitchIsFree(t *testing.T) {
	g, _, stats := newGuarder(t)
	before := stats.Snapshot()
	g.OnContextSwitch(7)
	g.OnContextSwitch(8)
	after := stats.Snapshot()
	for k, v := range after {
		if before[k] != v {
			t.Fatalf("context switch changed counter %s", k)
		}
	}
	// Translations still work after switches.
	if _, err := g.Translate(xlate.Request{VA: 0x1_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0); err != nil {
		t.Fatal(err)
	}
}

// Property: for random in-range requests, the Guarder's translation
// agrees with direct offset arithmetic, and out-of-range requests are
// always refused.
func TestGuarderTranslationCorrectness(t *testing.T) {
	g, _, _ := newGuarder(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			off := uint64(rng.Intn(0x1_0000))
			size := uint64(rng.Intn(2048) + 1)
			req := xlate.Request{VA: mem.VirtAddr(0x1_0000 + off), Bytes: size,
				Need: mem.PermRead, World: mem.Normal}
			res, err := g.Translate(req, 0)
			inRange := off+size <= 0x1_0000
			if inRange {
				if err != nil || res.PA != mem.PhysAddr(0x8800_4000+off) {
					return false
				}
			} else if err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property (security invariant): no sequence of normal-world requests
// can ever yield a PA inside the secure region unless a checking
// register explicitly grants the normal world that region.
func TestGuarderNormalWorldNeverReachesSecurePA(t *testing.T) {
	g, _, _ := newGuarder(t)
	secureBase, secureEnd := uint64(0x9000_0000), uint64(0x9080_0000)
	f := func(vas []uint32, sizes []uint16) bool {
		n := len(vas)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			req := xlate.Request{VA: mem.VirtAddr(vas[i]), Bytes: uint64(sizes[i]%4096) + 1,
				Need: mem.PermRead, World: mem.Normal}
			res, err := g.Translate(req, 0)
			if err != nil {
				continue
			}
			pa := uint64(res.PA)
			if pa >= secureBase && pa < secureEnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
