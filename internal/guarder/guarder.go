// Package guarder implements the paper's NPU Guarder (§IV-A, §V): a
// lightweight memory translation and checking unit integrated in the
// NPU core in front of the DMA engine.
//
// It replaces the IOMMU with two small register files that exploit the
// NPU's memory access pattern (limited tiles of input/weight/output
// data per calculation, with stable VA→PA mappings per chunk):
//
//   - Checking registers: a few rarely-modified entries recording the
//     access authority of contiguous physical regions (e.g., "the
//     TrustZone secure memory area is off limits to normal tasks").
//   - Translation registers: tile-granular VA-range → PA-range
//     mappings, reprogrammed (cheaply) before a calculation if needed.
//
// Translation and checking happen once per DMA *request* rather than
// once per 64-byte memory packet, which is both the zero-stall timing
// model (Fig. 13(a)) and the ~5% request-count/energy model
// (Fig. 13(b)). The register files are programmable only through a
// secure instruction, i.e., holders of a secure tee.Context — in the
// full system, the NPU Monitor's context setter.
package guarder

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tee"
	"repro/internal/xlate"
)

// Sizes of the register files. The paper sizes translation registers
// "in the tile level (e.g., input tile and output tile)"; a handful of
// entries covers input/weight/output/accumulator chunks per task.
const (
	DefaultCheckRegs = 4
	DefaultTransRegs = 16
)

// ErrNoTranslation is returned when no translation register covers a
// requested virtual range.
var ErrNoTranslation = errors.New("guarder: no translation register covers request")

// ErrDenied is returned when the checking registers deny an access.
var ErrDenied = errors.New("guarder: access denied by checking register")

// CheckReg grants World access with Perm to the physical range
// [Base, Base+Size). Anything not covered by a matching checking
// register is denied — the Guarder fails closed.
type CheckReg struct {
	Base  mem.PhysAddr
	Size  uint64
	Perm  mem.Perm
	World mem.World
	Valid bool
}

func (c CheckReg) covers(pa mem.PhysAddr, size uint64) bool {
	return c.Valid && pa >= c.Base && pa+mem.PhysAddr(size) <= c.Base+mem.PhysAddr(c.Size)
}

// TransReg maps the virtual range [VBase, VBase+Size) onto the
// physical range starting at PBase.
type TransReg struct {
	VBase mem.VirtAddr
	PBase mem.PhysAddr
	Size  uint64
	Valid bool
}

func (t TransReg) covers(va mem.VirtAddr, size uint64) bool {
	return t.Valid && va >= t.VBase && uint64(va)+size <= uint64(t.VBase)+t.Size
}

// Guarder is the per-NPU translation/checking unit.
type Guarder struct {
	checks []CheckReg
	trans  []TransReg
	stats  *sim.Stats
	// ProgramWrites counts secure register writes, an input to the
	// hardware-cost and reconfiguration-overhead analysis.
	ProgramWrites uint64
}

// Reset clears both register files and the write counter — the
// power-on state of the per-core checking/translation hardware. A
// pooled System recycles its Guarders in place (they are wired into
// each core's DMA path at construction), so reset must leave no
// window from the previous tenant programmed.
func (g *Guarder) Reset() {
	clear(g.checks)
	clear(g.trans)
	g.ProgramWrites = 0
}

// New builds a Guarder with the given register-file sizes.
func New(checkRegs, transRegs int, stats *sim.Stats) *Guarder {
	return &Guarder{
		checks: make([]CheckReg, checkRegs),
		trans:  make([]TransReg, transRegs),
		stats:  stats,
	}
}

// NewDefault builds a Guarder with the default register-file sizes.
func NewDefault(stats *sim.Stats) *Guarder {
	return New(DefaultCheckRegs, DefaultTransRegs, stats)
}

// Name implements xlate.Translator.
func (g *Guarder) Name() string { return "guarder" }

// SetCheckReg programs checking register idx. Checking registers
// define authority over physical memory and may only be written via a
// secure instruction.
func (g *Guarder) SetCheckReg(ctx tee.Context, idx int, reg CheckReg) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if idx < 0 || idx >= len(g.checks) {
		return fmt.Errorf("guarder: checking register %d out of range (%d regs)", idx, len(g.checks))
	}
	g.checks[idx] = reg
	g.ProgramWrites++
	return nil
}

// SetTransReg programs translation register idx (secure instruction).
func (g *Guarder) SetTransReg(ctx tee.Context, idx int, reg TransReg) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if idx < 0 || idx >= len(g.trans) {
		return fmt.Errorf("guarder: translation register %d out of range (%d regs)", idx, len(g.trans))
	}
	g.trans[idx] = reg
	g.ProgramWrites++
	return nil
}

// ClearTask invalidates all translation registers (secure instruction;
// used by the monitor between tasks). Checking registers persist: they
// encode platform policy, not per-task state.
func (g *Guarder) ClearTask(ctx tee.Context) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	for i := range g.trans {
		g.trans[i].Valid = false
	}
	g.ProgramWrites++
	return nil
}

// CheckRegs returns a copy of the checking register file.
func (g *Guarder) CheckRegs() []CheckReg {
	out := make([]CheckReg, len(g.checks))
	copy(out, g.checks)
	return out
}

// TransRegs returns a copy of the translation register file.
func (g *Guarder) TransRegs() []TransReg {
	out := make([]TransReg, len(g.trans))
	copy(out, g.trans)
	return out
}

// OnContextSwitch implements xlate.Translator. The Guarder holds no
// cached translations — the monitor reprograms the registers as part
// of the switch — so there is nothing to flush and no ping-pong cost.
func (g *Guarder) OnContextSwitch(taskID int) {}

// Translate implements xlate.Translator: one range lookup in the
// translation registers, one authority check in the checking
// registers, zero stall cycles. The request-level (not packet-level)
// counting is the paper's energy argument.
func (g *Guarder) Translate(req xlate.Request, at sim.Cycle) (xlate.Result, error) {
	if req.Bytes == 0 {
		return xlate.Result{}, fmt.Errorf("guarder: empty request")
	}
	if g.stats != nil {
		g.stats.Inc(sim.CtrGuarderChecks)
		g.stats.Inc(sim.CtrTranslations)
	}
	var pa mem.PhysAddr
	found := false
	for _, tr := range g.trans {
		if tr.covers(req.VA, req.Bytes) {
			pa = tr.PBase + mem.PhysAddr(req.VA-tr.VBase)
			found = true
			break
		}
	}
	if !found {
		if g.stats != nil {
			g.stats.Inc(sim.CtrGuarderDenied)
		}
		return xlate.Result{}, fmt.Errorf("%w: va %#x +%d", ErrNoTranslation, uint64(req.VA), req.Bytes)
	}
	for _, cr := range g.checks {
		if cr.covers(pa, req.Bytes) && cr.World == req.World && cr.Perm.Has(req.Need) {
			return xlate.Result{PA: pa}, nil
		}
	}
	if g.stats != nil {
		g.stats.Inc(sim.CtrGuarderDenied)
	}
	return xlate.Result{}, fmt.Errorf("%w: pa %#x +%d need %s world %s",
		ErrDenied, uint64(pa), req.Bytes, req.Need, req.World)
}
