package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChooseCoversRangeAndZero(t *testing.T) {
	p, err := Choose(-1.5, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero is exactly representable.
	if got := p.Dequantize(p.Quantize(0)); got != 0 {
		t.Fatalf("quantized zero dequantizes to %v", got)
	}
	// Endpoints round-trip within one step.
	for _, x := range []float64{-1.5, 3.0, 0.7} {
		back := p.Dequantize(p.Quantize(x))
		if math.Abs(back-x) > p.Scale {
			t.Fatalf("%v -> %v (scale %v)", x, back, p.Scale)
		}
	}
}

func TestChooseDegenerateAndInvalid(t *testing.T) {
	p, err := Choose(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Quantize(0) != 0 {
		t.Fatal("degenerate range broke zero")
	}
	if _, err := Choose(2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Choose(math.NaN(), 1); err == nil {
		t.Fatal("NaN range accepted")
	}
	// Positive-only and negative-only ranges still include zero.
	p, err = Choose(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dequantize(p.Quantize(0)) != 0 {
		t.Fatal("positive-only range lost zero")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Scale: 0, ZeroPoint: 0}).Validate(); err == nil {
		t.Fatal("zero scale validated")
	}
	if err := (Params{Scale: 1, ZeroPoint: 200}).Validate(); err == nil {
		t.Fatal("out-of-range zero point validated")
	}
}

func TestQuantizeSaturates(t *testing.T) {
	p := Params{Scale: 0.1, ZeroPoint: 0}
	if p.Quantize(1e9) != 127 || p.Quantize(-1e9) != -128 {
		t.Fatal("saturation broken")
	}
}

func TestSliceRoundTrip(t *testing.T) {
	xs := []float64{-1, -0.5, 0, 0.25, 0.9}
	p, err := ChooseFor(xs)
	if err != nil {
		t.Fatal(err)
	}
	back := p.DequantizeSlice(p.QuantizeSlice(xs))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > p.Scale {
			t.Fatalf("element %d: %v -> %v", i, xs[i], back[i])
		}
	}
	if _, err := ChooseFor(nil); err == nil {
		t.Fatal("empty tensor accepted")
	}
}

// Property: for random tensors, quantize-dequantize error is bounded
// by one scale step everywhere.
func TestQuantizationErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = (rng.Float64() - 0.5) * 20
		}
		p, err := ChooseFor(xs)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.Abs(p.Dequantize(p.Quantize(x))-x) > p.Scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRequantMatchesFloatReference(t *testing.T) {
	r, err := NewRequant(0.0037, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range []int32{0, 1, -1, 1000, -1000, 30000, -30000, 1 << 20} {
		got := r.Apply(acc)
		ref := math.Round(float64(acc)*0.0037) + 3
		if ref > 127 {
			ref = 127
		}
		if ref < -128 {
			ref = -128
		}
		if math.Abs(float64(got)-ref) > 1 {
			t.Fatalf("acc %d: got %d, float ref %v", acc, got, ref)
		}
	}
}

func TestRequantValidation(t *testing.T) {
	if _, err := NewRequant(0, 0); err == nil {
		t.Fatal("zero multiplier accepted")
	}
	if _, err := NewRequant(1.5, 0); err == nil {
		t.Fatal("multiplier > 1 accepted")
	}
	if _, err := NewRequant(1e-30, 0); err == nil {
		t.Fatal("vanishing multiplier accepted")
	}
	if _, err := NewRequant(1.0, 0); err != nil {
		t.Fatal("multiplier exactly 1 rejected")
	}
}

// Property: requantization agrees with the floating-point reference
// within one LSB for random multipliers and accumulators.
func TestRequantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Float64()*0.99 + 0.0001
		zp := int32(rng.Intn(20) - 10)
		r, err := NewRequant(m, zp)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			acc := int32(rng.Intn(1<<22) - 1<<21)
			ref := math.Round(float64(acc)*m) + float64(zp)
			if ref > 127 {
				ref = 127
			}
			if ref < -128 {
				ref = -128
			}
			if math.Abs(float64(r.Apply(acc))-ref) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUInt8(t *testing.T) {
	got := ReLUInt8([]int8{-5, 0, 3, 120}, 0)
	want := []int8{0, 0, 3, 120}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("relu = %v", got)
		}
	}
	// Non-zero zero point clamps to it.
	got = ReLUInt8([]int8{-5, 2, 7}, 2)
	if got[0] != 2 || got[1] != 2 || got[2] != 7 {
		t.Fatalf("relu zp=2 -> %v", got)
	}
}

func TestRequantSlice(t *testing.T) {
	r, err := NewRequant(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := r.ApplySlice([]int32{2, 4, -6})
	want := []int8{1, 2, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice = %v", got)
		}
	}
}
