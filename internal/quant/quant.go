// Package quant provides the int8 quantization arithmetic an
// integer-only NPU stack (the §II accelerator model) needs: affine (scale + zero-point)
// quantization of float tensors, dequantization, and the fixed-point
// requantization step that folds a layer's int32 accumulator output
// back into int8 activations for the next layer.
package quant

import (
	"fmt"
	"math"
)

// Params is an affine quantization: real = Scale * (q - ZeroPoint).
type Params struct {
	Scale     float64
	ZeroPoint int32
}

// Validate rejects unusable parameters.
func (p Params) Validate() error {
	if p.Scale <= 0 || math.IsInf(p.Scale, 0) || math.IsNaN(p.Scale) {
		return fmt.Errorf("quant: invalid scale %v", p.Scale)
	}
	if p.ZeroPoint < -128 || p.ZeroPoint > 127 {
		return fmt.Errorf("quant: zero point %d outside int8", p.ZeroPoint)
	}
	return nil
}

// Choose derives parameters covering [min, max] with the full int8
// range. A degenerate range (min == max) still quantizes losslessly.
func Choose(min, max float64) (Params, error) {
	if math.IsNaN(min) || math.IsNaN(max) || min > max {
		return Params{}, fmt.Errorf("quant: invalid range [%v, %v]", min, max)
	}
	// The range must include zero so that real 0.0 is exactly
	// representable (required for zero padding to be exact).
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if min == max {
		return Params{Scale: 1, ZeroPoint: 0}, nil
	}
	scale := (max - min) / 255.0
	zp := int32(math.Round(-128 - min/scale))
	if zp < -128 {
		zp = -128
	}
	if zp > 127 {
		zp = 127
	}
	return Params{Scale: scale, ZeroPoint: zp}, nil
}

// Quantize maps a real value into int8 under p, saturating.
func (p Params) Quantize(x float64) int8 {
	q := math.Round(x/p.Scale) + float64(p.ZeroPoint)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return int8(q)
}

// Dequantize maps an int8 back to its real value.
func (p Params) Dequantize(q int8) float64 {
	return p.Scale * float64(int32(q)-p.ZeroPoint)
}

// QuantizeSlice quantizes a tensor.
func (p Params) QuantizeSlice(xs []float64) []int8 {
	out := make([]int8, len(xs))
	for i, x := range xs {
		out[i] = p.Quantize(x)
	}
	return out
}

// DequantizeSlice recovers real values.
func (p Params) DequantizeSlice(qs []int8) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = p.Dequantize(q)
	}
	return out
}

// ChooseFor picks parameters covering a tensor's observed range.
func ChooseFor(xs []float64) (Params, error) {
	if len(xs) == 0 {
		return Params{}, fmt.Errorf("quant: empty tensor")
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Choose(min, max)
}

// Requant is the integer-only fixed-point multiplier for folding an
// int32 accumulator into the next layer's int8 domain:
// out = sat(round(acc * M) + outZP) where the real multiplier
// M = inScale*wScale/outScale is expressed as mult * 2^-shift.
type Requant struct {
	mult  int64 // 32-bit fixed-point multiplier (Q31-ish)
	shift uint  // right shift after the multiply
	outZP int32
}

// NewRequant builds the integer pipeline for a real multiplier in
// (0, 1]. NPUs compute this offline per layer.
func NewRequant(realMultiplier float64, outZP int32) (Requant, error) {
	if realMultiplier <= 0 || realMultiplier > 1 {
		return Requant{}, fmt.Errorf("quant: multiplier %v outside (0,1]", realMultiplier)
	}
	// Normalize into [0.5, 1) * 2^-n.
	shift := uint(0)
	m := realMultiplier
	for m < 0.5 {
		m *= 2
		shift++
		if shift > 62 {
			return Requant{}, fmt.Errorf("quant: multiplier %v too small", realMultiplier)
		}
	}
	const q = 31
	mult := int64(math.Round(m * (1 << q)))
	return Requant{mult: mult, shift: shift + q, outZP: outZP}, nil
}

// Apply folds one accumulator value to int8.
func (r Requant) Apply(acc int32) int8 {
	prod := int64(acc) * r.mult
	// Round-to-nearest on the right shift.
	half := int64(1) << (r.shift - 1)
	v := (prod + half) >> r.shift
	v += int64(r.outZP)
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return int8(v)
}

// ApplySlice requantizes a whole accumulator tensor.
func (r Requant) ApplySlice(accs []int32) []int8 {
	out := make([]int8, len(accs))
	for i, a := range accs {
		out[i] = r.Apply(a)
	}
	return out
}

// ReLUInt8 is the integer activation: values below the zero point
// clamp to it (real 0).
func ReLUInt8(qs []int8, zp int32) []int8 {
	out := make([]int8, len(qs))
	for i, q := range qs {
		if int32(q) < zp {
			out[i] = int8(zp)
		} else {
			out[i] = q
		}
	}
	return out
}
