package campaign

import (
	"testing"
)

// coverSink keeps Fold's accumulator alive across executions so the
// compiler cannot discard the coverage-folding branches.
var coverSink int

// FuzzCampaign is the coverage-guided security campaign: every input
// decodes (totally) into an adversarial scenario over the
// sched×monitor×fault×serve state space, executes against a fresh
// System, and must survive with all §IV-B invariants intact. The
// decision-log hash and monitor transition bitmap are folded into
// branch coverage, so the engine chases novel interleavings, not
// novel byte strings.
//
//	go test ./internal/campaign -run '^$' -fuzz FuzzCampaign -fuzztime 60s
func FuzzCampaign(f *testing.F) {
	// The two historical bugs anchor the corpus...
	f.Add(Encode(AdmitEarlyScenario()))
	f.Add(Encode(DeadlineCutScenario()))
	// ...plus one seed per leg of the state space.
	f.Add(Encode(HostileMonitorScenario()))
	f.Add(Encode(DrainRaceScenario()))
	// Minimized from a fuzz-found harness crasher: an admission-
	// rejected request surfacing through the serve result API.
	f.Add(Encode(ServeRejectedScenario()))
	// Decode leg: continuous batching with a resident KV window under
	// preemption, and decode requests through the serve daemon.
	f.Add(Encode(KVResidencyScenario()))
	f.Add(Encode(DecodeServeScenario()))
	// Generated-mode schedules under chaos: header flags select the
	// schedgen path (bit 0) and a seeded fault plan (bits 1-2); the
	// tail bytes are generator entropy.
	f.Add([]byte{flagGenerated | flagChaos, 11, 2, 2, 1, 1, 0, 5, 0x3a, 0x91, 0x44, 0x07, 0xc2, 0x15, 0x68, 0xde})
	f.Add([]byte{flagGenerated | flagChaos | flagTransient | flagBreaker, 42, 1, 1, 0, 2, 2, 24, 0xff, 0x00, 0x81, 0x7e})
	// Serve-leg modes over a tiny explicit schedule.
	f.Add([]byte{flagServeLo, 3, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{flagServeLo | flagServeHi, 5, 0, 0, 0, 1, 0, 0, 1})
	// Empty and near-empty inputs must decode and execute too.
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Run(data)
		if err != nil {
			t.Fatalf("scenario %+v\n%v", Decode(data), err)
		}
		coverSink += Fold(out.Hash, out.Bitmap)
	})
}
