package campaign

// Replay harness for the committed corpus: every entry under
// testdata/fuzz/FuzzCampaign must decode, execute clean, and — run
// twice on fresh Systems — produce byte-identical decision logs and
// identical coverage signals. CI runs this under -race, so the replay
// also proves the campaign engine itself is data-race free.
//
// Regenerate the seed files after changing the encoding:
//
//	go test ./internal/campaign -run TestWriteSeedCorpus -write-corpus

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var writeCorpus = flag.Bool("write-corpus", false, "rewrite the committed seed corpus files")

var corpusDir = filepath.Join("testdata", "fuzz", "FuzzCampaign")

// seedCorpus names every committed entry. The two historical bugs
// lead; the rest cover one leg of the state space each.
func seedCorpus() map[string][]byte {
	return map[string][]byte{
		"admit-early":     Encode(AdmitEarlyScenario()),
		"deadline-cut":    Encode(DeadlineCutScenario()),
		"hostile-monitor": Encode(HostileMonitorScenario()),
		"drain-race":      Encode(DrainRaceScenario()),
		"serve-rejected":  Encode(ServeRejectedScenario()),
		"kv-residency":    Encode(KVResidencyScenario()),
		"decode-serve":    Encode(DecodeServeScenario()),
		"chaos-generated": {flagGenerated | flagChaos, 11, 2, 2, 1, 1, 0, 5, 0x3a, 0x91, 0x44, 0x07, 0xc2, 0x15, 0x68, 0xde},
		"serve-run":       {flagServeLo, 3, 1, 0, 0, 0, 0, 0, 0},
	}
}

func marshalCorpusEntry(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

func unmarshalCorpusEntry(t *testing.T, raw []byte) []byte {
	t.Helper()
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("not a go corpus file: %.80q", raw)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimSuffix(strings.TrimPrefix(body, "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("unquote %q: %v", body, err)
	}
	return []byte(s)
}

func TestWriteSeedCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("pass -write-corpus to rewrite the seed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedCorpus() {
		path := filepath.Join(corpusDir, "seed-"+name)
		if err := os.WriteFile(path, marshalCorpusEntry(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCampaignCorpus is the deterministic replay path: `go test -run
// TestCampaignCorpus ./internal/campaign` executes every committed
// corpus entry twice and cross-checks the runs byte for byte.
func TestCampaignCorpus(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty seed corpus")
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{"seed-admit-early", "seed-deadline-cut"} {
		if !names[want] {
			t.Fatalf("historical bug seed %s missing from the corpus", want)
		}
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			data := unmarshalCorpusEntry(t, raw)
			first, err := Run(data)
			if err != nil {
				t.Fatalf("corpus entry violates invariants: %v", err)
			}
			again, err := Run(data)
			if err != nil {
				t.Fatalf("second run violates invariants: %v", err)
			}
			if a, b := first.Report.DecisionLog(), again.Report.DecisionLog(); a != b {
				t.Fatalf("decision log not deterministic\n--- first ---\n%s\n--- again ---\n%s", a, b)
			}
			if first.Hash != again.Hash || first.Bitmap != again.Bitmap {
				t.Fatalf("coverage signal not deterministic: %#x/%#x vs %#x/%#x",
					first.Hash, first.Bitmap, again.Hash, again.Bitmap)
			}
		})
	}
}

// The committed historical-bug entries must stay in sync with their
// scenario constructors: a drifted encoding would silently stop
// guarding the bug it was minimized from.
func TestCorpusMatchesSeedScenarios(t *testing.T) {
	for name, want := range seedCorpus() {
		raw, err := os.ReadFile(filepath.Join(corpusDir, "seed-"+name))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -write-corpus)", name, err)
		}
		got := unmarshalCorpusEntry(t, raw)
		if string(got) != string(want) {
			t.Fatalf("seed-%s drifted from its scenario constructor: got %q want %q (regenerate with -write-corpus)",
				name, got, want)
		}
	}
}
