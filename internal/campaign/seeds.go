package campaign

// Historical-bug seed scenarios. These two schedules found (or
// minimally reproduce) real bugs in this repo's history; their
// encodings anchor the committed fuzz corpus so every campaign run
// starts from known-dangerous territory, and the attack regression
// suite replays them by name.

import (
	"repro/internal/sched"
)

// AdmitEarlyScenario is the minimized PR-4 admit-early schedule: two
// idle cores, one immediate request, one arriving 30M cycles later.
// The buggy scheduler admitted (and dispatched) the future request at
// cycle 0; the campaign's causality invariant — no admit/dispatch/
// complete decision before the request's own arrival — is exactly the
// detector for that class.
func AdmitEarlyScenario() Scenario {
	return Scenario{
		Seed: 4, Cores: 2, Tenants: 2, MaxBatch: 1,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Model: "mobilenet", Arrival: 0},
			{ID: 2, Tenant: "t1", Model: "mobilenet", Arrival: 30_000_000},
		},
	}
}

// DeadlineCutScenario reproduces the mid-run deadline-cut shape: a
// solo secure mobilenet finishes at cycle 12_833_386 on one core, so
// a deadline one cycle short passes admission (the compute floor
// fits) but must be cut deterministically at a tile boundary, with
// the §IV-B flush paid before the core is reused. The invariants
// assert the request drops (never completes past its deadline) and
// that the cut leaves no secure residue.
func DeadlineCutScenario() Scenario {
	return Scenario{
		Seed: 9, Cores: 1, Tenants: 1, MaxBatch: 1,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: "t0-key",
				Arrival: 0, Deadline: 12_833_385},
		},
	}
}

// HostileMonitorScenario pairs a small secure schedule with a
// trampoline call sequence aimed at the post-episode monitor: stale
// task ids for load/preempt/abort/unload, a garbage task image, and
// translation windows into both reserved and secure memory (odd A[2]
// selects a secure-region target, which must be refused).
func HostileMonitorScenario() Scenario {
	sc := Scenario{
		Seed: 17, Cores: 2, Tenants: 1, MaxBatch: 2,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Model: "yololite", Secure: true, KeyID: "t0-key"},
			{ID: 2, Tenant: "t0", Model: "mobilenet", Arrival: 1_000_000},
		},
		MonCalls: []MonCall{
			{Fn: 2, A: [3]byte{1, 0, 0}},   // FnLoad of a stale task id
			{Fn: 8, A: [3]byte{1, 0, 0}},   // FnPreempt, same
			{Fn: 7, A: [3]byte{3, 0, 0}},   // FnAbort of an unknown id
			{Fn: 5, A: [3]byte{0, 2, 5}},   // FnMapNonSecure, odd A[2]: secure target
			{Fn: 5, A: [3]byte{1, 3, 4}},   // FnMapNonSecure, even A[2]: reserved DRAM
			{Fn: 6, A: [3]byte{9, 9, 9}},   // FnSubmitImage with garbage bytes
		},
	}
	return sc
}

// ServeRejectedScenario is the minimized form of a fuzz-found
// crasher (input "10000000000000000000000000000"): a secure request
// whose deadline sits far below the solo compute floor is rejected at
// admission, and serve maps that terminal Rejected result to 400 —
// a legal outcome the campaign's first status allowlist missed. The
// seed pins both halves: the scheduler must reject (never run) the
// infeasible request, and the serve leg must surface it as 400, not
// a 5xx.
func ServeRejectedScenario() Scenario {
	return Scenario{
		Seed: 49, Cores: 1, Tenants: 1, MaxBatch: 1,
		Serve: ServeRun,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: "t0-key",
				Arrival: 0, Deadline: 1_000_000},
		},
	}
}

// KVResidencyScenario is the decode leg's anchor: a same-tenant decode
// pair that batches continuously on one core (the second request joins
// mid-stream at a token boundary), a third decode request on another
// tenant, and a higher-priority plain secure request that preempts the
// running batch while its KV window is resident. The invariants assert
// every completed decode request streams exactly Steps+1 strictly
// ordered tokens and that no KV window survives the episode.
func KVResidencyScenario() Scenario {
	specA := campaignDecodeSpec(0, 1) // tenant 0, 3 steps
	specB := campaignDecodeSpec(1, 2) // tenant 1, 4 steps
	return Scenario{
		Seed: 31, Cores: 1, Tenants: 2, MaxBatch: 2,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Secure: true, Decode: &specA},
			{ID: 2, Tenant: "t1", Secure: true, Decode: &specB, Arrival: 15_000},
			{ID: 3, Tenant: "t0", Secure: true, Decode: &specA, Arrival: 25_000},
			{ID: 4, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: "t0-key",
				Arrival: 40_000, Priority: 2},
		},
	}
}

// DecodeServeScenario replays a decode schedule through the HTTP
// daemon: decode requests travel as JSON decode params (no model, no
// sealed blob), and the result API must surface their token counts
// under the documented status mapping.
func DecodeServeScenario() Scenario {
	spec := campaignDecodeSpec(0, 0) // tenant 0, 2 steps
	return Scenario{
		Seed: 37, Cores: 2, Tenants: 1, MaxBatch: 2,
		Serve: ServeRun,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Secure: true, Decode: &spec},
			{ID: 2, Tenant: "t0", Secure: true, Decode: &spec, Arrival: 50_000},
		},
	}
}

// DrainRaceScenario runs the schedule, then replays it through a
// draining serve daemon: every submit must be refused 503 with a
// Retry-After hint, never half-admitted.
func DrainRaceScenario() Scenario {
	return Scenario{
		Seed: 23, Cores: 2, Tenants: 2, MaxBatch: 2, MaxQueuePerTenant: 2,
		Serve: ServeDrained,
		Requests: []sched.Request{
			{ID: 1, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: "t0-key"},
			{ID: 2, Tenant: "t1", Model: "yololite", Arrival: 500_000},
			{ID: 3, Tenant: "t0", Model: "yololite", Arrival: 600_000, Priority: 1},
		},
	}
}
