package campaign

// Bytes → scenario. The mapping is total: every byte string, including
// the empty one, decodes to a valid executable scenario (missing bytes
// read as zero), and small byte edits make small scenario edits so the
// fuzzer's mutations move smoothly through the state space. Encode is
// the exact inverse for explicit-request scenarios; it exists so the
// historical bug schedules can be committed as corpus seeds that
// decode back to themselves. The full layout is documented in
// DESIGN.md §12.

import (
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Header flag bits (byte 0).
const (
	flagGenerated = 1 << 0 // requests drawn via schedgen instead of listed
	flagChaos     = 1 << 1 // install a seeded fault plan
	flagTransient = 1 << 2 // chaos uses transient (recoverable-heavy) rates
	flagBreaker   = 1 << 3 // arm the default per-tenant circuit breaker
	flagMonLeg    = 1 << 4 // hostile trampoline-call leg after the episode
	flagServeLo   = 1 << 5 // serve-leg mode low bit
	flagServeHi   = 1 << 6 // serve-leg mode high bit
	flagDecodeLeg = 1 << 7 // explicit requests may be autoregressive decode
)

// Serve-leg modes.
const (
	ServeNone     = 0 // no serve leg
	ServeRun      = 1 // replay the schedule through the HTTP daemon
	ServeDrained  = 2 // drain first: every submit must be refused 503
	ServeFinish   = 3 // submit, then DrainAndFinish runs the episode
	maxServeModes = 4
)

// Decode bounds. Kept small so a single fuzz exec stays fast; the
// interesting space is interleavings, not volume.
const (
	maxExplicitRequests = 8
	maxMonCalls         = 6
	arrivalDeltaBound   = 50_000_000
	deadlineDeltaBound  = 50_000_000
)

// ChaosSpec selects a seeded fault plan for the episode.
type ChaosSpec struct {
	PerMillion int
	Transient  bool
}

// campaignDecodeSpec is the per-tenant decode geometry the decode leg
// uses: fully determined by the tenant index plus a 2-bit step
// selector, so the byte encoding stays compact and same-tenant decode
// requests are batchable (identical specs) whenever their step
// selectors agree.
func campaignDecodeSpec(tenant, stepSel int) workload.DecodeSpec {
	return workload.DecodeSpec{
		Layers: 1,
		Hidden: 64,
		Heads:  4,
		FFN:    128,
		Prompt: 4 + 4*tenant,
		Steps:  2 + stepSel&3,
	}
}

// MonCall is one decoded hostile trampoline call: a function selector
// plus three raw argument bytes the executor maps onto that
// function's argument shape.
type MonCall struct {
	Fn monitor.FuncID
	A  [3]byte
}

// Scenario is one fully decoded adversarial run.
type Scenario struct {
	Seed    int64 // tenant-key derivation and chaos-plan seed
	Cores   int   // 1..3
	Tenants int   // 1..3

	MaxBatch          int // 1..4
	MaxRestarts       int // 0..2
	MaxQueuePerTenant int // 0 (unbounded) or 2..4
	Breaker           bool

	Chaos    *ChaosSpec
	Requests []sched.Request // Sealed is filled at Execute time
	MonCalls []MonCall
	Serve    int // Serve* mode
}

// Decode maps an arbitrary byte string onto a Scenario. It never
// fails and never panics.
func Decode(data []byte) Scenario {
	src := schedgen.NewByteSource(data)
	flags := src.Next()
	sc := Scenario{
		Seed:        1 + int64(src.Next()),
		Cores:       1 + src.Intn(3),
		Tenants:     1 + src.Intn(3),
		MaxBatch:    1 + src.Intn(4),
		MaxRestarts: src.Intn(3),
		Breaker:     flags&flagBreaker != 0,
		Serve:       int(flags>>5) & 3,
	}
	if q := src.Intn(4); q > 0 {
		sc.MaxQueuePerTenant = 1 + q // 2..4
	}
	chaosRate := 1 + src.Intn(50)
	if flags&flagChaos != 0 {
		sc.Chaos = &ChaosSpec{PerMillion: chaosRate, Transient: flags&flagTransient != 0}
	}

	if flags&flagGenerated != 0 {
		// Same generator, same distribution as the property suite —
		// the fuzz input is just a different entropy stream.
		prof := schedgen.DefaultProfile()
		sc.Requests = schedgen.Requests(src, prof, sc.Tenants, nil)
	} else {
		n := 1 + src.Intn(maxExplicitRequests)
		var arrival int64
		for id := 1; id <= n; id++ {
			arrival += int64(src.Uint32()) % arrivalDeltaBound
			ti := src.Intn(sc.Tenants)
			r := sched.Request{
				ID:       id,
				Tenant:   "t" + string(rune('0'+ti)),
				Model:    schedgen.Models[src.Intn(len(schedgen.Models))],
				Priority: sched.Priority(src.Intn(3)),
				Arrival:  sim.Cycle(arrival),
			}
			rflags := src.Next()
			ddelta := src.Uint32()
			if rflags&1 != 0 {
				r.Secure = true
				r.KeyID = schedgen.TenantKeyID(ti)
			}
			if rflags&2 != 0 {
				r.Deadline = r.Arrival + 1 + sim.Cycle(uint64(ddelta)%deadlineDeltaBound)
			}
			if flags&flagDecodeLeg != 0 && rflags&4 != 0 {
				// Autoregressive decode request: always secure (resident
				// KV is monitor-mediated), no named model (it defaults to
				// the spec's), no sealed blob needed. Bits 3-4 of rflags
				// select the step count.
				spec := campaignDecodeSpec(ti, int(rflags>>3)&3)
				r.Decode = &spec
				r.Secure = true
				r.Model, r.KeyID = "", ""
			}
			sc.Requests = append(sc.Requests, r)
		}
	}

	if flags&flagMonLeg != 0 {
		n := 1 + src.Intn(maxMonCalls)
		for i := 0; i < n; i++ {
			c := MonCall{Fn: monitor.FuncID(1 + src.Intn(8))}
			c.A[0], c.A[1], c.A[2] = src.Next(), src.Next(), src.Next()
			sc.MonCalls = append(sc.MonCalls, c)
		}
	}
	return sc
}

// Encode is Decode's inverse for explicit-request scenarios: the
// returned bytes decode to exactly sc (asserted by the decoder round
// trip tests). Generated-mode scenarios cannot be encoded — list the
// requests explicitly instead.
func Encode(sc Scenario) []byte {
	var flags byte
	if sc.Chaos != nil {
		flags |= flagChaos
		if sc.Chaos.Transient {
			flags |= flagTransient
		}
	}
	if sc.Breaker {
		flags |= flagBreaker
	}
	if len(sc.MonCalls) > 0 {
		flags |= flagMonLeg
	}
	flags |= byte(sc.Serve&3) << 5
	for _, r := range sc.Requests {
		if r.Decode != nil {
			flags |= flagDecodeLeg
		}
	}

	b := []byte{flags, byte(sc.Seed - 1), byte(sc.Cores - 1), byte(sc.Tenants - 1), byte(sc.MaxBatch - 1), byte(sc.MaxRestarts)}
	if sc.MaxQueuePerTenant > 0 {
		b = append(b, byte(sc.MaxQueuePerTenant-1))
	} else {
		b = append(b, 0)
	}
	rate := 1
	if sc.Chaos != nil {
		rate = sc.Chaos.PerMillion
	}
	b = append(b, byte(rate-1))

	b = append(b, byte(len(sc.Requests)-1))
	var arrival int64
	for _, r := range sc.Requests {
		delta := int64(r.Arrival) - arrival
		arrival = int64(r.Arrival)
		b = schedgen.AppendUint32(b, uint32(delta))
		b = append(b, r.Tenant[len(r.Tenant)-1]-'0')
		mi := 0
		for i, m := range schedgen.Models {
			if m == r.Model {
				mi = i
			}
		}
		b = append(b, byte(mi), byte(r.Priority))
		var rflags byte
		var ddelta uint32
		if r.Secure && r.Decode == nil {
			rflags |= 1
		}
		if r.Deadline > 0 {
			rflags |= 2
			ddelta = uint32(r.Deadline - r.Arrival - 1)
		}
		if r.Decode != nil {
			// The spec must be a campaignDecodeSpec of this tenant; only
			// the step selector is encoded (asserted by the round-trip
			// tests on the committed seeds).
			rflags |= 4
			rflags |= byte((r.Decode.Steps-2)&3) << 3
		}
		b = append(b, rflags)
		b = schedgen.AppendUint32(b, ddelta)
	}

	if len(sc.MonCalls) > 0 {
		b = append(b, byte(len(sc.MonCalls)-1))
		for _, c := range sc.MonCalls {
			b = append(b, byte(c.Fn-1), c.A[0], c.A[1], c.A[2])
		}
	}
	return b
}
