package campaign

// Coverage folding: Go's fuzzer chases new *branch* coverage (edge
// hit-count buckets), but the interesting novelty here is semantic —
// a decision-log hash or a monitor transition bit nobody has seen
// yet. Fold walks every nibble of both values through a 16-way
// switch, so different hashes light different branches with different
// hit-count distributions and the mutation engine hill-climbs the
// sched×monitor×fault state space instead of byte noise. The returned
// accumulator is otherwise meaningless; callers keep it alive so the
// loops cannot be folded away.

// Fold folds the decision-log hash and the transition bitmap into
// fuzz-observable branch coverage.
func Fold(hash, bitmap uint64) int {
	acc := 0
	for i := 0; i < 16; i++ {
		acc += foldByte16(i, byte(hash>>(uint(i)*4))&0x0f)
	}
	for i := 0; i < 16; i++ {
		acc += foldByte16(16+i, byte(bitmap>>(uint(i)*4))&0x0f)
	}
	return acc
}

// foldByte16 dispatches one nibble to a 16-way switch. Each case is a
// distinct basic block; combined with the position in the accumulator
// arithmetic this approximates a (position × value) coverage matrix.
//
//go:noinline
func foldByte16(pos int, v byte) int {
	switch v {
	case 0:
		return pos
	case 1:
		return pos + 1<<1
	case 2:
		return pos + 1<<2
	case 3:
		return pos + 1<<3
	case 4:
		return pos + 1<<4
	case 5:
		return pos + 1<<5
	case 6:
		return pos + 1<<6
	case 7:
		return pos + 1<<7
	case 8:
		return pos + 1<<8
	case 9:
		return pos + 1<<9
	case 10:
		return pos + 1<<10
	case 11:
		return pos + 1<<11
	case 12:
		return pos + 1<<12
	case 13:
		return pos + 1<<13
	case 14:
		return pos + 1<<14
	default:
		return pos + 1<<15
	}
}
