// Package campaign executes decoded adversarial scenarios — tenant
// schedules × seeded chaos plans × hostile monitor call sequences ×
// serve-daemon drain timing — against a fresh System and asserts the
// §IV-B isolation invariants at every transition: flush-on-preempt
// with no LeftoverLocals residue, fail-closed opaque aborts,
// attestation binding, deadline and retry-budget accounting, and the
// trampoline's refusal of every window into secure memory. The
// package is the execution engine behind FuzzCampaign: Decode maps
// fuzz bytes to a Scenario, Execute runs it, and the scheduler
// decision-log hash plus the monitor transition bitmap feed novelty
// back to the coverage engine.
package campaign

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	snpu "repro"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/schedgen"
	"repro/internal/serve"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/workload"
)

// ErrInvariant marks a scenario outcome that violates one of the
// campaign's security or determinism invariants — the signal the fuzz
// target escalates to a crash.
var ErrInvariant = errors.New("campaign: invariant violated")

// Outcome is the fuzz-observable state of one executed scenario.
type Outcome struct {
	Report *sched.Report
	// Hash is the FNV-1a digest of the decision log; Bitmap is the
	// monitor's transition-coverage bitmap after every leg ran. Both
	// feed the coverage folder so novel interleavings grow the corpus.
	Hash   uint64
	Bitmap uint64
}

// Run decodes and executes in one step.
func Run(data []byte) (*Outcome, error) { return Execute(Decode(data)) }

// measOf caches one compile per model for the attestation-binding leg.
var (
	measMu sync.Mutex
	measBy = map[string][32]byte{}
)

func measOf(model string) ([32]byte, error) {
	measMu.Lock()
	defer measMu.Unlock()
	if m, ok := measBy[model]; ok {
		return m, nil
	}
	w, err := workload.Lookup(model)
	if err != nil {
		return [32]byte{}, err
	}
	prog, _, err := npu.Compile(w, snpu.DefaultConfig().NPU, 0, npu.DefaultLayout)
	if err != nil {
		return [32]byte{}, err
	}
	m := prog.Measurement()
	measBy[model] = m
	return m, nil
}

// probe is the LeftoverLocals invariant without a testing.T: it
// plants a position-dependent secret into every secure task's
// scratchpad at dispatch/resume and asserts at every preempt, abort,
// and retry that the normal world cannot see it. Violations are
// collected (the decision callback cannot fail) and surfaced after
// the episode.
type probe struct {
	sys        *snpu.System
	cores      []int
	line       int
	secret     []byte
	violations []string
}

func (p *probe) violatef(format string, args ...any) {
	p.violations = append(p.violations, fmt.Sprintf(format, args...))
}

func (p *probe) onDecision(d sched.Decision) {
	switch d.Event {
	case "dispatch", "resume":
		if d.Core >= 0 {
			p.plant(d)
		}
	case "preempt", "abort", "retry":
		if d.Core >= 0 {
			p.probeCore(d.Core, fmt.Sprintf("%s of req %d @%d", d.Event, d.Req, d.Cycle))
		}
	}
}

func (p *probe) plant(d sched.Decision) {
	core, err := p.sys.NPU().Core(d.Core)
	if err != nil {
		p.violatef("plant: core %d: %v", d.Core, err)
		return
	}
	if core.Domain() != spad.SecureDomain {
		return // non-secure dispatch; nothing to plant
	}
	buf := make([]byte, core.Scratchpad().LineBytes())
	copy(buf, p.secret)
	if err := core.Scratchpad().Write(spad.SecureDomain, p.line, buf); err != nil {
		p.violatef("planting secret on core %d: %v", d.Core, err)
	}
}

func (p *probe) probeCore(coreID int, when string) {
	core, err := p.sys.NPU().Core(coreID)
	if err != nil {
		p.violatef("%s: core %d: %v", when, coreID, err)
		return
	}
	if n := core.Scratchpad().CountDomain(spad.SecureDomain); n != 0 {
		p.violatef("%s: core %d kept %d secure scratchpad lines", when, coreID, n)
	}
	if n := core.Accumulator().CountDomain(spad.SecureDomain); n != 0 {
		p.violatef("%s: core %d kept %d secure accumulator lines", when, coreID, n)
	}
	if core.Domain() != spad.NonSecure {
		p.violatef("%s: core %d still in domain %d", when, coreID, core.Domain())
	}
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, p.line, buf); err == nil {
		if bytes.Contains(buf, p.secret) {
			p.violatef("%s: secret readable from the normal world on core %d", when, coreID)
		}
	}
}

func (p *probe) probeAll(when string) {
	for _, ci := range p.cores {
		p.probeCore(ci, when)
	}
}

// Execute runs one scenario end to end. The returned error (wrapping
// ErrInvariant) reports every violated invariant; a nil error means
// the adversarial schedule was survived with all guarantees intact.
func Execute(sc Scenario) (*Outcome, error) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("campaign: boot: %w", err)
	}
	if sc.Chaos != nil {
		rates := fault.UniformRates(float64(sc.Chaos.PerMillion))
		if sc.Chaos.Transient {
			rates = fault.TransientRates(float64(sc.Chaos.PerMillion))
		}
		sys.InstallFaultPlan(fault.Generate(sc.Seed, 200_000_000, rates))
	}
	sealedBy, err := schedgen.ProvisionTenants(sys, sc.Seed, sc.Tenants, func(ti int) []byte {
		return []byte(fmt.Sprintf("campaign model %d/%d", sc.Seed, ti))
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: provision: %w", err)
	}

	cores := make([]int, sc.Cores)
	for i := range cores {
		cores[i] = i
	}
	secret := make([]byte, 16)
	for i := range secret {
		secret[i] = 0xA5 ^ byte(sc.Seed) ^ byte(i*37+1)
	}
	p := &probe{sys: sys, cores: cores, line: 3, secret: secret}

	cfg := sched.Config{
		Cores:             cores,
		MaxBatch:          sc.MaxBatch,
		MaxRestarts:       sc.MaxRestarts,
		MaxQueuePerTenant: sc.MaxQueuePerTenant,
		OnDecision:        p.onDecision,
	}
	if sc.Breaker {
		cfg.Breaker = sched.NewBreaker(0, 0)
	}
	s, err := sys.NewScheduler(cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: scheduler: %w", err)
	}

	secureModels := map[string]bool{}
	accepted := 0
	for _, r := range sc.Requests {
		if r.Secure && r.Decode == nil {
			r.Sealed = sealedBy[r.KeyID]
			secureModels[r.Model] = true
		}
		switch err := s.Submit(r); {
		case err == nil:
			accepted++
		case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrTenantQuarantined):
			// Legitimate backpressure refusals; no result owed.
		default:
			p.violatef("submit of decoded req %d refused: %v", r.ID, err)
		}
	}

	rep, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("%w: episode failed: %v", ErrInvariant, err)
	}

	checkResults(rep, sc, accepted, p)
	checkDecisions(rep, sc, p)
	p.probeAll("end-of-run")
	if n := sys.Monitor().QueueLen(); n != 0 {
		p.violatef("end-of-run: %d tasks still queued in the monitor", n)
	}
	// KV hygiene: every resident KV window must have been released (and
	// scrubbed) by the time the episode drains — a surviving region is a
	// leaked tenant cache.
	if regions := sys.Monitor().KVRegions(); len(regions) != 0 {
		p.violatef("end-of-run: %d KV windows still resident: %+v", len(regions), regions)
	}
	checkAttestation(sys, sc, secureModels, p)

	runMonitorLeg(sys, sc, p)
	if sc.Serve != ServeNone {
		runServeLeg(sys, sc, sealedBy, p)
	}

	out := &Outcome{Report: rep, Hash: rep.DecisionHash(), Bitmap: sys.Monitor().TransitionBitmap()}
	if len(p.violations) > 0 {
		return out, fmt.Errorf("%w:\n  %s", ErrInvariant, strings.Join(p.violations, "\n  "))
	}
	return out, nil
}

// checkResults asserts the per-request terminal contracts. accepted
// counts submissions the scheduler admitted: backpressure-refused
// requests owe no result, but every accepted one (including later
// shed victims) must reach exactly one terminal state.
func checkResults(rep *sched.Report, sc Scenario, accepted int, p *probe) {
	if len(rep.Results) != accepted {
		p.violatef("results for %d of %d accepted requests", len(rep.Results), accepted)
	}
	deadline := map[int]int64{}
	decodeSteps := map[int]int{}
	for _, r := range sc.Requests {
		deadline[r.ID] = int64(r.Deadline)
		if r.Decode != nil {
			decodeSteps[r.ID] = r.Decode.Steps
		}
	}
	for _, r := range rep.Results {
		states := 0
		for _, b := range []bool{r.Completed, r.Dropped, r.Aborted, r.Rejected, r.Shed} {
			if b {
				states++
			}
		}
		if states != 1 {
			p.violatef("req %d in %d terminal states: %+v", r.ID, states, r)
		}
		if r.Completed {
			if r.Finish <= r.Start || r.Start < r.Arrival {
				p.violatef("req %d incoherent span: %+v", r.ID, r)
			}
			if dl := deadline[r.ID]; dl > 0 && int64(r.Finish) > dl {
				p.violatef("req %d completed at %d past its deadline %d", r.ID, r.Finish, dl)
			}
			// A completed decode request streams its full token budget:
			// the prefill token plus one per decode step — no more, no
			// fewer, regardless of batching, joins, or preemptions.
			if steps, ok := decodeSteps[r.ID]; ok && r.Tokens != steps+1 {
				p.violatef("decode req %d completed with %d tokens, want %d", r.ID, r.Tokens, steps+1)
			}
			if times := rep.TokenTimes[r.ID]; len(times) > 0 {
				for i := 1; i < len(times); i++ {
					if times[i] <= times[i-1] {
						p.violatef("decode req %d token %d retired at %d, not after token %d at %d",
							r.ID, i, times[i], i-1, times[i-1])
					}
				}
				if last := times[len(times)-1]; int64(last) != int64(r.Finish) {
					p.violatef("decode req %d last token at %d but finished at %d", r.ID, last, r.Finish)
				}
			}
		}
		if r.Aborted && r.Err != sched.ErrTaskAborted.Error() {
			p.violatef("req %d aborted with non-opaque error %q", r.ID, r.Err)
		}
		if r.Err != "" {
			for _, leak := range []string{"hang", "watchdog", "cycle"} {
				if strings.Contains(r.Err, leak) {
					p.violatef("req %d error leaks hardware detail %q: %q", r.ID, leak, r.Err)
				}
			}
		}
		if r.Retries > sc.MaxRestarts {
			p.violatef("req %d consumed %d retries over budget %d", r.ID, r.Retries, sc.MaxRestarts)
		}
	}
}

// checkDecisions asserts causality on the decision log: no request is
// admitted, batched, dispatched, resumed, or completed before its own
// arrival cycle (the admit-early regression class). Shed decisions
// are exempt — a victim is shed at the *newcomer's* arrival, which
// can legitimately precede the victim's own.
func checkDecisions(rep *sched.Report, sc Scenario, p *probe) {
	arrival := map[int]int64{}
	for _, r := range sc.Requests {
		arrival[r.ID] = int64(r.Arrival)
	}
	for _, d := range rep.Decisions {
		switch d.Event {
		case "admit", "batch", "dispatch", "resume", "complete",
			"join", "token", "leave", "kv_alloc":
			if at, ok := arrival[d.Req]; ok && int64(d.Cycle) < at {
				p.violatef("decision %q for req %d at cycle %d, before its arrival %d",
					d.Event, d.Req, d.Cycle, at)
			}
		}
	}
}

// checkAttestation asserts the binding invariant on one secure model
// of the schedule: the right (image, nonce) verifies, a different
// image is refused, a stale nonce is refused.
func checkAttestation(sys *snpu.System, sc Scenario, secureModels map[string]bool, p *probe) {
	var model string
	for m := range secureModels {
		if model == "" || m < model {
			model = m // deterministic pick
		}
	}
	if model == "" {
		return
	}
	nonce := uint64(sc.Seed)*2654435761 + 1
	meas, err := measOf(model)
	if err != nil {
		p.violatef("attestation: measure %s: %v", model, err)
		return
	}
	rep, err := sys.Machine().Attest(sys.Machine().SecureContext(), tee.Measurement(meas), nonce)
	if err != nil {
		p.violatef("attestation quote failed: %v", err)
		return
	}
	if err := sys.VerifyAttestation(rep, meas, nonce); err != nil {
		p.violatef("attestation of the right image failed: %v", err)
	}
	other := schedgen.Models[0]
	if other == model {
		other = schedgen.Models[1]
	}
	otherMeas, err := measOf(other)
	if err != nil {
		p.violatef("attestation: measure %s: %v", other, err)
		return
	}
	if err := sys.VerifyAttestation(rep, otherMeas, nonce); err == nil {
		p.violatef("report for %s verified as %s", model, other)
	}
	if err := sys.VerifyAttestation(rep, meas, nonce+1); err == nil {
		p.violatef("report verified with a stale nonce")
	}
}

// runMonitorLeg drives the decoded hostile trampoline calls against
// the post-episode monitor. Nothing here may panic; a window into
// secure memory must always be refused; and since no verified task
// can exist any more, every core must still probe clean afterwards.
func runMonitorLeg(sys *snpu.System, sc Scenario, p *probe) {
	for i, mc := range sc.MonCalls {
		call, wantsSecure := buildCall(mc)
		rep := sys.Monitor().Dispatch(call)
		if wantsSecure && rep.Err == nil {
			p.violatef("mon call %d: window into secure memory accepted: %+v", i, call)
		}
	}
	if len(sc.MonCalls) > 0 {
		p.probeAll("after hostile monitor calls")
		if n := sys.Monitor().QueueLen(); n != 0 {
			p.violatef("hostile calls left %d tasks queued", n)
		}
	}
}

// buildCall maps a decoded MonCall onto a concrete trampoline call.
// The second return is true when the call is a translation window
// aimed into the secure region (which the monitor must refuse).
func buildCall(mc MonCall) (monitor.Call, bool) {
	a0, a1, a2 := uint64(mc.A[0]), uint64(mc.A[1]), uint64(mc.A[2])
	switch mc.Fn {
	case monitor.FnSubmit:
		// Nil program: the verifier must reject, never crash.
		return monitor.Call{Func: monitor.FnSubmit, KeyID: "t0-key"}, false
	case monitor.FnLoad:
		return monitor.Call{Func: monitor.FnLoad, Args: []uint64{a0 % 8, 0, 8, a1 % 4}}, false
	case monitor.FnUnload, monitor.FnAbort, monitor.FnPreempt:
		return monitor.Call{Func: mc.Fn, Args: []uint64{a0 % 8}}, false
	case monitor.FnQueueLen:
		return monitor.Call{Func: monitor.FnQueueLen}, false
	case monitor.FnMapNonSecure:
		pbase := uint64(experiments.ReservedBase) + a2<<12
		secure := a2&1 != 0
		if secure {
			pbase = uint64(experiments.SecureBase) + a2<<12
		}
		return monitor.Call{Func: monitor.FnMapNonSecure, Args: []uint64{
			a0 % 4, 1 + a1%15, uint64(mem.VirtAddr(0x1000 * (1 + a2))), pbase, 0x1000,
		}}, secure
	case monitor.FnSubmitImage:
		return monitor.Call{Func: monitor.FnSubmitImage, Shared: []byte{mc.A[0], mc.A[1], mc.A[2]}}, false
	default:
		return monitor.Call{Func: mc.Fn}, false
	}
}

// runServeLeg replays the schedule through the HTTP daemon and holds
// it to the backpressure contract: well-formed traffic never sees a
// non-mapped status, a draining daemon refuses every submit with 503,
// and terminal results map to their documented codes.
func runServeLeg(sys *snpu.System, sc Scenario, sealedBy map[string][]byte, p *probe) {
	cores := make([]int, sc.Cores)
	for i := range cores {
		cores[i] = i
	}
	srv, err := serve.New(sys, serve.Config{
		Cores:             cores,
		MaxBatch:          sc.MaxBatch,
		MaxRestarts:       sc.MaxRestarts,
		MaxQueuePerTenant: sc.MaxQueuePerTenant,
	})
	if err != nil {
		p.violatef("serve: boot: %v", err)
		return
	}
	h := srv.Handler()
	do := func(method, path string, body any) *httptest.ResponseRecorder {
		var rd *strings.Reader
		if body != nil {
			raw, _ := json.Marshal(body)
			rd = strings.NewReader(string(raw))
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable &&
			rec.Code != http.StatusGatewayTimeout {
			p.violatef("serve: %s %s -> %d: %.200s", method, path, rec.Code, rec.Body.String())
		}
		return rec
	}

	if sc.Serve == ServeDrained {
		srv.Drain()
	}
	accepted := 0
	for _, r := range sc.Requests {
		body := map[string]any{
			"id": r.ID, "tenant": r.Tenant, "model": r.Model,
			"arrival": uint64(r.Arrival),
		}
		if r.Deadline > 0 {
			body["deadline"] = uint64(r.Deadline)
		}
		if r.Secure {
			body["secure"] = true
			if r.Decode == nil {
				body["key_id"] = r.KeyID
				body["sealed_b64"] = b64(sealedBy[r.KeyID])
			}
		}
		if r.Decode != nil {
			delete(body, "model")
			body["decode"] = map[string]any{
				"layers": r.Decode.Layers, "hidden": r.Decode.Hidden,
				"heads": r.Decode.Heads, "ffn": r.Decode.FFN,
				"prompt": r.Decode.Prompt, "steps": r.Decode.Steps,
			}
		}
		rec := do("POST", "/v1/submit", body)
		switch sc.Serve {
		case ServeDrained:
			if rec.Code != http.StatusServiceUnavailable {
				p.violatef("serve: draining daemon answered submit with %d, want 503", rec.Code)
			}
			if rec.Header().Get("Retry-After") == "" {
				p.violatef("serve: drain refusal without Retry-After")
			}
		default:
			if rec.Code == http.StatusAccepted {
				accepted++
			} else if rec.Code != http.StatusTooManyRequests {
				p.violatef("serve: well-formed submit req %d -> %d: %.200s", r.ID, rec.Code, rec.Body.String())
			}
		}
	}

	switch sc.Serve {
	case ServeRun:
		if accepted > 0 {
			if rec := do("POST", "/v1/run", nil); rec.Code != http.StatusOK {
				p.violatef("serve: run -> %d: %.200s", rec.Code, rec.Body.String())
			}
		}
		for _, r := range sc.Requests {
			rec := do("GET", fmt.Sprintf("/v1/result?id=%d", r.ID), nil)
			switch rec.Code {
			// 400 is serve's mapping for requests rejected at admission
			// (e.g. an infeasible deadline): a legal terminal outcome.
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusGone,
				http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusTooManyRequests:
			default:
				p.violatef("serve: result %d -> unmapped status %d: %.200s", r.ID, rec.Code, rec.Body.String())
			}
		}
	case ServeFinish:
		if _, err := srv.DrainAndFinish(); err != nil {
			p.violatef("serve: DrainAndFinish: %v", err)
		}
	}
	if rec := do("GET", "/v1/status", nil); rec.Code != http.StatusOK {
		p.violatef("serve: status -> %d", rec.Code)
	}
	if rec := do("GET", "/healthz", nil); rec.Code != http.StatusOK {
		p.violatef("serve: healthz -> %d", rec.Code)
	}
}

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }
