package campaign

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
)

// Decode is a total function: any byte string — empty, truncated,
// all-ones — must yield a scenario within the documented bounds.
func TestDecodeBoundsOnArbitraryInput(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0x00},
		{0xff},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		[]byte(strings.Repeat("\xa5", 300)),
		[]byte("not a scenario at all, just prose"),
		{flagGenerated, 0x01},
		{flagMonLeg | flagChaos | flagServeLo | flagServeHi, 0xee, 0xdd},
		{flagDecodeLeg, 0x07, 0x02, 0x02, 0x03, 0x01, 0x00, 0x04, 0x02,
			0x10, 0x20, 0x30, 0x40, 0x01, 0x00, 0x01, 0xfc, 0xaa, 0xbb, 0xcc, 0xdd},
		{flagDecodeLeg | flagChaos | flagServeLo, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for i, in := range inputs {
		sc := Decode(in)
		if sc.Cores < 1 || sc.Cores > 3 {
			t.Fatalf("input %d: cores %d out of bounds", i, sc.Cores)
		}
		if sc.Tenants < 1 || sc.Tenants > 3 {
			t.Fatalf("input %d: tenants %d out of bounds", i, sc.Tenants)
		}
		if sc.MaxBatch < 1 || sc.MaxBatch > 4 {
			t.Fatalf("input %d: batch %d out of bounds", i, sc.MaxBatch)
		}
		if sc.MaxRestarts < 0 || sc.MaxRestarts > 2 {
			t.Fatalf("input %d: restarts %d out of bounds", i, sc.MaxRestarts)
		}
		if sc.MaxQueuePerTenant != 0 && (sc.MaxQueuePerTenant < 2 || sc.MaxQueuePerTenant > 4) {
			t.Fatalf("input %d: queue bound %d out of bounds", i, sc.MaxQueuePerTenant)
		}
		if len(sc.Requests) == 0 {
			t.Fatalf("input %d: no requests decoded", i)
		}
		for _, r := range sc.Requests {
			if r.ID <= 0 || r.Tenant == "" {
				t.Fatalf("input %d: malformed request %+v", i, r)
			}
			if r.Deadline > 0 && r.Deadline <= r.Arrival {
				t.Fatalf("input %d: invalid deadline %+v", i, r)
			}
			if r.Secure && r.KeyID == "" && r.Decode == nil {
				t.Fatalf("input %d: secure request without key %+v", i, r)
			}
			if r.Decode != nil {
				if !r.Secure || r.Model != "" || r.KeyID != "" {
					t.Fatalf("input %d: malformed decode request %+v", i, r)
				}
				if err := r.Decode.Validate(); err != nil {
					t.Fatalf("input %d: decoded invalid decode spec: %v", i, err)
				}
			}
		}
		if len(sc.MonCalls) > maxMonCalls {
			t.Fatalf("input %d: %d monitor calls", i, len(sc.MonCalls))
		}
		if sc.Serve < 0 || sc.Serve >= maxServeModes {
			t.Fatalf("input %d: serve mode %d", i, sc.Serve)
		}
	}
}

// Encode must be Decode's exact inverse on explicit-request
// scenarios — otherwise the committed historical-bug seeds would not
// replay the scenarios they were minimized from.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	scenarios := map[string]Scenario{
		"admit-early":     AdmitEarlyScenario(),
		"deadline-cut":    DeadlineCutScenario(),
		"hostile-monitor": HostileMonitorScenario(),
		"drain-race":      DrainRaceScenario(),
		"serve-rejected":  ServeRejectedScenario(),
		"kv-residency":    KVResidencyScenario(),
		"decode-serve":    DecodeServeScenario(),
		"kitchen-sink": {
			Seed: 200, Cores: 3, Tenants: 3, MaxBatch: 4, MaxRestarts: 2,
			MaxQueuePerTenant: 4, Breaker: true,
			Chaos: &ChaosSpec{PerMillion: 25, Transient: true},
			Serve: ServeFinish,
			Requests: []sched.Request{
				{ID: 1, Tenant: "t2", Model: "yololite", Arrival: 0, Priority: 2},
				{ID: 2, Tenant: "t0", Model: "mobilenet", Secure: true, KeyID: "t0-key",
					Arrival: 1_000_000, Deadline: 44_000_000},
				{ID: 3, Tenant: "t1", Model: "mobilenet", Arrival: 40_000_000},
			},
			MonCalls: []MonCall{{Fn: 5, A: [3]byte{1, 2, 3}}},
		},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			got := Decode(Encode(sc))
			if !reflect.DeepEqual(got, sc) {
				t.Fatalf("round trip diverged\n got %+v\nwant %+v", got, sc)
			}
		})
	}
}

// The historical seeds must execute clean AND demonstrably walk the
// code path they guard: the admit-early schedule admits its future
// request only after its arrival, the deadline-cut schedule records a
// mid-run deadline_miss with a paid flush.
func TestSeedScenariosExerciseTheirBugPaths(t *testing.T) {
	t.Run("admit-early", func(t *testing.T) {
		out, err := Execute(AdmitEarlyScenario())
		if err != nil {
			t.Fatal(err)
		}
		if r := out.Report.ResultByID(2); r == nil || !r.Completed {
			t.Fatalf("future request did not complete: %+v", r)
		}
		for _, d := range out.Report.Decisions {
			if d.Req == 2 && d.Cycle < 30_000_000 {
				t.Fatalf("decision %q for req 2 at %d, before its arrival", d.Event, d.Cycle)
			}
		}
	})
	t.Run("deadline-cut", func(t *testing.T) {
		out, err := Execute(DeadlineCutScenario())
		if err != nil {
			t.Fatal(err)
		}
		r := out.Report.ResultByID(1)
		if r == nil || !r.Dropped {
			t.Fatalf("deadline-cut request did not drop: %+v", r)
		}
		if !strings.Contains(out.Report.DecisionLog(), "deadline_miss") {
			t.Fatalf("no deadline_miss decision:\n%s", out.Report.DecisionLog())
		}
		if out.Report.FlushCycles == 0 {
			t.Fatal("secure deadline cut paid no flush")
		}
	})
	t.Run("serve-rejected", func(t *testing.T) {
		out, err := Execute(ServeRejectedScenario())
		if err != nil {
			t.Fatal(err)
		}
		if r := out.Report.ResultByID(1); r == nil || !r.Rejected {
			t.Fatalf("infeasible-deadline request was not rejected at admission: %+v", r)
		}
	})
	t.Run("kv-residency", func(t *testing.T) {
		out, err := Execute(KVResidencyScenario())
		if err != nil {
			t.Fatal(err)
		}
		log := out.Report.DecisionLog()
		for _, want := range []string{"kv_alloc", "join", "token", "leave", "kv_scrub", "preempt", "resume"} {
			if !strings.Contains(log, want) {
				t.Fatalf("kv-residency schedule never emitted %q:\n%s", want, log)
			}
		}
		for id, wantTokens := range map[int]int{1: 4, 2: 5, 3: 4} {
			if r := out.Report.ResultByID(id); r == nil || !r.Completed || r.Tokens != wantTokens {
				t.Fatalf("decode req %d: %+v, want completed with %d tokens", id, r, wantTokens)
			}
		}
	})
	t.Run("hostile-monitor", func(t *testing.T) {
		out, err := Execute(HostileMonitorScenario())
		if err != nil {
			t.Fatal(err)
		}
		// The hostile leg must have fed the coverage bitmap: at least
		// one trampoline error-outcome bit is set.
		if out.Bitmap == 0 {
			t.Fatal("hostile monitor leg left no transition coverage")
		}
	})
}

// Fold must be a pure function of its inputs — the corpus replay
// compares it across runs.
func TestFoldDeterministic(t *testing.T) {
	pairs := [][2]uint64{{0, 0}, {0xdeadbeef, 1}, {^uint64(0), ^uint64(0)}, {12345, 0x8000_0000_0000_0001}}
	for _, p := range pairs {
		if a, b := Fold(p[0], p[1]), Fold(p[0], p[1]); a != b {
			t.Fatalf("Fold(%#x,%#x) nondeterministic: %d vs %d", p[0], p[1], a, b)
		}
	}
	if Fold(0, 0) == Fold(^uint64(0), ^uint64(0)) {
		t.Fatal("Fold does not separate extreme inputs")
	}
}
