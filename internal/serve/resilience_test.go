package serve

// Resilience surface tests: deadline validation at decode time, the
// 429/503 + Retry-After backpressure mappings, the /v1/result status
// mapping (including the retryable-vs-isolation abort distinction by
// status class only, never error string), health endpoints, and the
// graceful drain path.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

func bootResilient(t *testing.T, cfg Config) (*snpu.System, *Server) {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableObservability(obs.Config{})
	srv, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

// submitJSON posts a submit body and returns the recorder.
func submitBody(t *testing.T, h http.Handler, sr SubmitRequest) *bytes.Buffer {
	t.Helper()
	b, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(b)
}

// provisionAndSeal provisions a fresh tenant key and returns the
// sealed blob, base64-encoded for the submit body.
func provisionAndSeal(t *testing.T, sys *snpu.System, keyID string) string {
	t.Helper()
	key := bytes.Repeat([]byte{9}, snpu.SealKeySize)
	if err := sys.ProvisionKey(keyID, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := snpu.SealModel(key, []byte("resilience serve model"))
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(sealed)
}

// A deadline at or before the arrival cycle can never be met; the API
// rejects it at decode time with 400 before it reaches the scheduler.
func TestServeRejectsDeadlineBeforeArrival(t *testing.T) {
	_, srv := bootResilient(t, Config{Cores: []int{0}})
	h := srv.Handler()
	cases := []struct {
		name, body string
		want       int
	}{
		{"deadline-equals-arrival", `{"tenant":"a","model":"resnet","arrival":500,"deadline":500}`, http.StatusBadRequest},
		{"deadline-before-arrival", `{"tenant":"a","model":"resnet","arrival":500,"deadline":100}`, http.StatusBadRequest},
		{"zero-arrival-zero-deadline", `{"tenant":"a","model":"resnet"}`, http.StatusAccepted},
		{"valid-deadline", `{"tenant":"a","model":"mobilenet","arrival":100,"deadline":100000000}`, http.StatusAccepted},
	}
	for _, c := range cases {
		if rec := do(t, h, "POST", "/v1/submit", c.body); rec.Code != c.want {
			t.Fatalf("%s: code = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
}

// When a tenant's queue bound is hit and the newcomer does not outrank
// anything queued, the submit is refused with 429 + Retry-After. A
// strictly higher-priority newcomer instead sheds the least urgent
// queued request, which /v1/result later reports as 429.
func TestServeQueueBoundBackpressure(t *testing.T) {
	_, srv := bootResilient(t, Config{Cores: []int{0, 1}, MaxQueuePerTenant: 2})
	h := srv.Handler()

	for i := 1; i <= 2; i++ {
		body := fmt.Sprintf(`{"id":%d,"tenant":"a","model":"mobilenet"}`, i)
		if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	// Equal priority: the newcomer is the one shed — 429 with pacing.
	rec := do(t, h, "POST", "/v1/submit", `{"id":3,"tenant":"a","model":"mobilenet"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("equal-prio overflow: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Other tenants are unaffected by a's bound.
	if rec := do(t, h, "POST", "/v1/submit", `{"id":4,"tenant":"b","model":"mobilenet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("tenant b: %d %s", rec.Code, rec.Body)
	}
	// A higher-priority newcomer is admitted by shedding request 2
	// (same priority as 1 but later ID under the urgency order).
	rec = do(t, h, "POST", "/v1/submit", `{"id":5,"tenant":"a","model":"mobilenet","priority":10}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("high-prio overflow: %d %s", rec.Code, rec.Body)
	}

	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	// The shed victim maps to 429 + Retry-After at /v1/result.
	rec = do(t, h, "GET", "/v1/result?id=2", "")
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed result: %d %s", rec.Code, rec.Body)
	}
	var rr ResultReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil || !rr.Result.Shed {
		t.Fatalf("shed result body: %+v (%v)", rr, err)
	}
	// Survivors completed.
	for _, id := range []int{1, 4, 5} {
		if rec := do(t, h, "GET", fmt.Sprintf("/v1/result?id=%d", id), ""); rec.Code != http.StatusOK {
			t.Fatalf("result %d: %d %s", id, rec.Code, rec.Body)
		}
	}
	// The status surface tallies both the shed result and the refused
	// submit.
	if rec := do(t, h, "GET", "/v1/status", ""); !strings.Contains(rec.Body.String(), `"shed":2`) {
		t.Fatalf("status shed tally: %s", rec.Body)
	}
}

// A fault-aborted secure task without restart budget is Retryable: the
// result maps to 503 + Retry-After, and its error string is exactly
// the opaque abort message — byte-identical to what an isolation abort
// reports, so the status class is the only signal of the abort's kind.
func TestServeRetryableAbortMapsTo503(t *testing.T) {
	sys, srv := bootResilient(t, Config{Cores: []int{0}})
	h := srv.Handler()
	// Wedge core 0 on every dispatch attempt.
	events := make([]fault.Event, 0, 64)
	for i := 1; i <= 64; i++ {
		events = append(events, fault.Event{At: sim.Cycle(i) * 50_000, Kind: fault.CoreHang, Sel: 0})
	}
	sys.InstallFaultPlan(fault.Plan{Events: events})

	sealed := provisionAndSeal(t, sys, "ka")
	body := fmt.Sprintf(`{"id":1,"tenant":"a","model":"mobilenet","secure":true,"key_id":"ka","sealed_b64":"%s"}`, sealed)
	if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "GET", "/v1/result?id=1", "")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("retryable abort: %d %s", rec.Code, rec.Body)
	}
	var rr ResultReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Result.Aborted || !rr.Result.Retryable {
		t.Fatalf("result flags: %+v", rr.Result)
	}
	if rr.Result.Err != sched.ErrTaskAborted.Error() {
		t.Fatalf("abort error leaked detail: %q", rr.Result.Err)
	}
	for _, leak := range []string{"hang", "fault", "core"} {
		if strings.Contains(strings.ToLower(rr.Result.Err), leak) {
			t.Fatalf("abort error mentions %q: %q", leak, rr.Result.Err)
		}
	}
}

// /v1/result covers the non-terminal and unknown cases too: accepted
// but not yet run is 202, never-seen is 404, garbage id is 400.
func TestServeResultPendingAndUnknown(t *testing.T) {
	_, srv := bootResilient(t, Config{Cores: []int{0}})
	h := srv.Handler()
	if rec := do(t, h, "POST", "/v1/submit", `{"id":7,"tenant":"a","model":"resnet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/result?id=7", ""); rec.Code != http.StatusAccepted {
		t.Fatalf("pending: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/result?id=99", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/result?id=zip", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage id: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/result", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing id: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/result?id=7", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("post result: %d", rec.Code)
	}
}

// A request that misses its finish deadline mid-run maps to 504, and
// the miss pays the mandatory flush (visible in the run report).
func TestServeDeadlineMissMapsTo504(t *testing.T) {
	_, srv := bootResilient(t, Config{Cores: []int{0}})
	h := srv.Handler()
	// The mobilenet deadline is feasible in isolation but expires while
	// the request waits behind the long resnet run on the only core
	// (dispatch order follows request ID at equal priority).
	if rec := do(t, h, "POST", "/v1/submit", `{"id":1,"tenant":"b","model":"resnet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit resnet: %d %s", rec.Code, rec.Body)
	}
	body := `{"id":2,"tenant":"a","model":"mobilenet","deadline":10000000}`
	if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "POST", "/v1/run", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	var rep RunReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 1 || rep.Completed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if rec := do(t, h, "GET", "/v1/result?id=2", ""); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("dropped result: %d %s", rec.Code, rec.Body)
	}
}

// Repeated aborts trip the per-tenant breaker: the tenant's next
// submission is refused 503 + Retry-After while other tenants proceed,
// and /v1/status names the quarantined tenant.
func TestServeBreakerQuarantine(t *testing.T) {
	sys, srv := bootResilient(t, Config{Cores: []int{0}, BreakerThreshold: 2, BreakerCooldown: 1})
	h := srv.Handler()
	events := make([]fault.Event, 0, 256)
	for i := 1; i <= 256; i++ {
		events = append(events, fault.Event{At: sim.Cycle(i) * 50_000, Kind: fault.CoreHang, Sel: 0})
	}
	sys.InstallFaultPlan(fault.Plan{Events: events})

	sealed := provisionAndSeal(t, sys, "ka")
	for i := 1; i <= 2; i++ {
		body := fmt.Sprintf(`{"id":%d,"tenant":"a","model":"mobilenet","secure":true,"key_id":"ka","sealed_b64":"%s"}`, i, sealed)
		if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}

	rec := do(t, h, "POST", "/v1/submit", `{"id":3,"tenant":"a","model":"mobilenet"}`)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("quarantined submit: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/submit", `{"id":4,"tenant":"b","model":"mobilenet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("tenant b during quarantine: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/status", ""); !strings.Contains(rec.Body.String(), `"quarantined":["a"]`) {
		t.Fatalf("status quarantine: %s", rec.Body)
	}
}

// Liveness stays green across a drain; readiness flips to 503, new
// submits and key provisioning are refused with Retry-After, and
// DrainAndFinish completes in-flight work so nothing is stranded.
func TestServeHealthAndGracefulDrain(t *testing.T) {
	sys, srv := bootResilient(t, Config{Cores: []int{0, 1}})
	h := srv.Handler()

	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rec.Code)
	}

	if rec := do(t, h, "POST", "/v1/submit", `{"id":1,"tenant":"a","model":"mobilenet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}

	srv.Drain()
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", rec.Code)
	}
	rec = do(t, h, "POST", "/v1/submit", `{"id":2,"tenant":"a","model":"mobilenet"}`)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("submit while draining: %d %s", rec.Code, rec.Body)
	}
	key := bytes.Repeat([]byte{3}, snpu.SealKeySize)
	keyBody, _ := json.Marshal(KeyRequest{KeyID: "late", KeyB64: base64.StdEncoding.EncodeToString(key)})
	if rec := do(t, h, "POST", "/v1/keys", string(keyBody)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("keys while draining: %d %s", rec.Code, rec.Body)
	}

	rep, err := srv.DrainAndFinish()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Completed != 1 {
		t.Fatalf("final episode: %+v", rep)
	}
	if rec := do(t, h, "GET", "/v1/result?id=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("drained result: %d %s", rec.Code, rec.Body)
	}
	// Idempotent with nothing left pending.
	if rep, err := srv.DrainAndFinish(); err != nil || rep != nil {
		t.Fatalf("second drain: %+v %v", rep, err)
	}
	_ = sys
}
