package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// The decode serving flow: submit a small decode batch, run the
// episode, and read per-request token counts back from /v1/result.
func TestServeDecodeEndToEnd(t *testing.T) {
	_, h := bootServer(t)

	const steps = 3
	decode := fmt.Sprintf(
		`{"tenant":"a","secure":true,"decode":{"hidden":64,"heads":4,"prompt":8,"steps":%d}}`, steps)
	for i := 0; i < 2; i++ {
		rec := do(t, h, "POST", "/v1/submit", decode)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	rec := do(t, h, "POST", "/v1/run", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	var rep RunReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed = %d: %+v", rep.Completed, rep)
	}
	if want := 2 * (steps + 1); rep.Tokens != want {
		t.Fatalf("episode tokens = %d, want %d", rep.Tokens, want)
	}

	// /v1/result surfaces the streaming token count per request.
	for id := 1; id <= 2; id++ {
		rec := do(t, h, "GET", fmt.Sprintf("/v1/result?id=%d", id), "")
		if rec.Code != http.StatusOK {
			t.Fatalf("result %d: %d %s", id, rec.Code, rec.Body)
		}
		var res ResultReport
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.Result.Tokens != steps+1 {
			t.Fatalf("result %d tokens = %d, want %d", id, res.Result.Tokens, steps+1)
		}
	}
}

// Decode submissions fail closed: non-secure, invalid geometry, and a
// decode+graph combination are all 400s and never reach the scheduler.
func TestServeDecodeRejections(t *testing.T) {
	_, h := bootServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"non-secure",
			`{"tenant":"a","decode":{"hidden":64,"heads":4,"prompt":8,"steps":2}}`,
			http.StatusBadRequest},
		{"zero-steps",
			`{"tenant":"a","secure":true,"decode":{"hidden":64,"heads":4,"prompt":8,"steps":0}}`,
			http.StatusBadRequest},
		{"indivisible-heads",
			`{"tenant":"a","secure":true,"decode":{"hidden":63,"heads":4,"prompt":8,"steps":2}}`,
			http.StatusBadRequest},
		{"decode-and-graph",
			`{"tenant":"a","secure":true,"decode":{"hidden":64,"heads":4,"prompt":8,"steps":2},"graph":{"ir":1}}`,
			http.StatusBadRequest},
		{"unknown-decode-field",
			`{"tenant":"a","secure":true,"decode":{"hidden":64,"heads":4,"prompt":8,"steps":2,"evil":1}}`,
			http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := do(t, h, "POST", "/v1/submit", c.body); rec.Code != c.want {
			t.Fatalf("%s: code = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
	// Nothing hostile was admitted: running now is a 409 (empty queue).
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusConflict {
		t.Fatalf("queue not empty after rejections: %d", rec.Code)
	}
}
