package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/graph"
	"repro/internal/workload"
)

const tinyGraphIR = `{
	"ir": 1, "name": "tinycnn",
	"inputs": [{"name": "image", "shape": [1, 3, 32, 32]}],
	"nodes": [
		{"name": "conv1", "op": "Conv", "inputs": ["image"],
		 "attrs": {"filters": 16, "kernel": 3, "stride": 1, "pad": 1}},
		{"name": "pool1", "op": "Pool", "inputs": ["conv1"], "attrs": {"kernel": 2}},
		{"name": "fc", "op": "FC", "inputs": ["pool1"], "attrs": {"out": 10}}
	],
	"outputs": ["fc"]
}`

// An inline-IR submission runs end-to-end, secure: key provisioning,
// graph compilation, monitor-attested execution, result retrieval.
func TestServeInlineGraphSecureEndToEnd(t *testing.T) {
	_, h := bootServer(t)

	key := bytes.Repeat([]byte{9}, snpu.SealKeySize)
	sealed, err := snpu.SealModel(key, []byte("custom model weights"))
	if err != nil {
		t.Fatal(err)
	}
	keyBody, _ := json.Marshal(KeyRequest{KeyID: "kg", KeyB64: base64.StdEncoding.EncodeToString(key)})
	if rec := do(t, h, "POST", "/v1/keys", string(keyBody)); rec.Code != http.StatusNoContent {
		t.Fatalf("keys: %d %s", rec.Code, rec.Body)
	}

	body, _ := json.Marshal(SubmitRequest{
		Tenant: "g", Secure: true, KeyID: "kg",
		SealedB64: base64.StdEncoding.EncodeToString(sealed),
		Graph:     json.RawMessage(tinyGraphIR),
	})
	rec := do(t, h, "POST", "/v1/submit", string(body))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	if rec = do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "GET", "/v1/result?id=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rec.Code, rec.Body)
	}
	// The display model name is the graph's own name.
	if !strings.Contains(rec.Body.String(), `"model":"tinycnn"`) {
		t.Fatalf("result body: %s", rec.Body)
	}
}

// Invalid inline IR fails closed with a 4xx before anything reaches
// the scheduler.
func TestServeRejectsInvalidGraph(t *testing.T) {
	_, h := bootServer(t)
	cases := map[string]string{
		"syntax":        `{"tenant":"g","graph":{"ir":1,`,
		"unknown field": `{"tenant":"g","graph":{"ir":1,"name":"x","bogus":true}}`,
		"unknown op": `{"tenant":"g","graph":{"ir":1,"name":"x",
			"inputs":[{"name":"t","shape":[4,4]}],
			"nodes":[{"name":"n","op":"Conv3D","inputs":["t"]}],"outputs":["n"]}}`,
		"dangling input": `{"tenant":"g","graph":{"ir":1,"name":"x",
			"inputs":[{"name":"t","shape":[4,4]}],
			"nodes":[{"name":"n","op":"Gemm","inputs":["ghost"],"attrs":{"out":4}}],"outputs":["n"]}}`,
		"cycle": `{"tenant":"g","graph":{"ir":1,"name":"x",
			"inputs":[{"name":"t","shape":[4,4]}],
			"nodes":[{"name":"a","op":"Relu","inputs":["b"]},
			         {"name":"b","op":"Gemm","inputs":["a"],"attrs":{"out":4}}],"outputs":["b"]}}`,
		"no gemm work": `{"tenant":"g","graph":{"ir":1,"name":"x",
			"inputs":[{"name":"t","shape":[4,4]}],
			"nodes":[{"name":"a","op":"Relu","inputs":["t"]}],"outputs":["a"]}}`,
	}
	for label, body := range cases {
		rec := do(t, h, "POST", "/v1/submit", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (%s)", label, rec.Code, rec.Body)
		}
	}
	// Nothing queued: run must 409.
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusConflict {
		t.Fatalf("run after rejected submits: %d", rec.Code)
	}
}

// A registered model is submittable by name and appears in /v1/models
// with its canonical digest.
func TestServeRegisteredModel(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	custom, err := graph.LowerBytes([]byte(tinyGraphIR))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{Cores: []int{0}, Models: []workload.Workload{custom}})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	rec := do(t, h, "GET", "/v1/models", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("models: %d %s", rec.Code, rec.Body)
	}
	var infos []ModelInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mi := range infos {
		if mi.Name == "tinycnn" {
			found = true
			if mi.Source != "registered" || mi.GEMMs != 2 || len(mi.Digest) != 64 {
				t.Fatalf("tinycnn info %+v", mi)
			}
		} else if mi.Source != "builtin" {
			t.Fatalf("unexpected source %+v", mi)
		}
	}
	if !found {
		t.Fatalf("tinycnn missing from %s", rec.Body)
	}
	if len(infos) != len(workload.Names())+1 {
		t.Fatalf("%d models listed", len(infos))
	}

	body, _ := json.Marshal(SubmitRequest{Tenant: "r", Model: "tinycnn"})
	if rec := do(t, h, "POST", "/v1/submit", string(body)); rec.Code != http.StatusAccepted {
		t.Fatalf("submit registered: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/result?id=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rec.Code, rec.Body)
	}
}

// Registration fail-closes on invalid workloads and name collisions.
func TestServeRejectsBadRegistrations(t *testing.T) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := workload.Workload{Name: "broken"}
	if _, err := New(sys, Config{Cores: []int{0}, Models: []workload.Workload{bad}}); err == nil {
		t.Fatal("invalid registered model accepted")
	}
	shadow, err := graph.LowerBytes([]byte(tinyGraphIR))
	if err != nil {
		t.Fatal(err)
	}
	shadow.Name = "alexnet"
	if _, err := New(sys, Config{Cores: []int{0}, Models: []workload.Workload{shadow}}); err == nil {
		t.Fatal("built-in shadowing accepted")
	}
	a, _ := graph.LowerBytes([]byte(tinyGraphIR))
	b, _ := graph.LowerBytes([]byte(tinyGraphIR))
	if _, err := New(sys, Config{Cores: []int{0}, Models: []workload.Workload{a, b}}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// GET /v1/models only.
func TestServeModelsMethod(t *testing.T) {
	_, h := bootServer(t)
	if rec := do(t, h, "POST", "/v1/models", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST models: %d", rec.Code)
	}
}
