// Package serve is the HTTP/JSON front end of the multi-tenant
// scheduler (internal/sched): tenants provision sealing keys, submit
// secure and non-secure inference requests, and trigger deterministic
// scheduling episodes over the simulated SoC. The daemon itself is
// beyond the paper; it exists to drive the §IV-B scheduling path the
// way a serving stack would, and to give the fuzzer a hostile-input
// surface that must fail closed (malformed bodies, oversized sealed
// models, duplicate IDs are all 4xx, never panics, never monitor
// state).
package serve

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"

	snpu "repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MaxBodyBytes caps any request body: the sealed-model cap plus
// base64 expansion plus JSON framing headroom.
const MaxBodyBytes = sched.MaxSealedBytes*4/3 + 64*1024

// RetryAfterSeconds is the deterministic Retry-After hint sent with
// every 429/503 backpressure response. It is advisory pacing for
// clients, not simulated time, so one constant fits all.
const RetryAfterSeconds = 1

// Config tunes the daemon's scheduler episodes.
type Config struct {
	// Cores, Workers, MaxBatch pass through to sched.Config.
	Cores    []int
	Workers  int
	MaxBatch int
	// MaxRestarts, RetryBackoff, MaxQueuePerTenant pass the resilience
	// policy through to sched.Config (zero = disabled/defaults).
	MaxRestarts       int
	RetryBackoff      sim.Cycle
	MaxQueuePerTenant int
	// BreakerThreshold enables the per-tenant circuit breaker (>0):
	// a tenant whose tasks abort Threshold times in a row sits out
	// BreakerCooldown episodes; its submissions get 503 + Retry-After.
	BreakerThreshold int
	BreakerCooldown  int
	// Models registers custom (graph-IR-derived) workloads that clients
	// may then submit by name, exactly like built-ins. New validates
	// each one and refuses duplicates or built-in name collisions.
	Models []workload.Workload
}

// Server accumulates submissions and runs them as scheduler episodes.
// It serializes all scheduler access behind one mutex: the simulated
// SoC is single-clocked, so concurrent HTTP clients see atomic
// submit/run semantics.
type Server struct {
	mu      sync.Mutex
	sys     *snpu.System
	cfg     Config
	sched   *sched.Scheduler
	breaker *sched.Breaker
	nextID  int

	// draining seals admission: submits and key provisioning refuse
	// with 503 + Retry-After while in-flight work finishes.
	draining bool

	// results persists every terminal outcome across episodes so
	// GET /v1/result can map it to a status after the episode ran;
	// pending tracks accepted-but-not-yet-run ids.
	results map[int]sched.Result
	pending map[int]bool

	// models holds the registered custom workloads by name.
	models map[string]workload.Workload

	episodes  int
	completed int
	rejected  int
	dropped   int
	aborted   int
	shed      int
	recovered int
	last      *sched.Report

	obsShed *obs.Counter
}

// New wraps a booted System. The system's observability layer (if
// enabled) feeds GET /metrics and the serve.shed counter.
func New(sys *snpu.System, cfg Config) (*Server, error) {
	s := &Server{
		sys: sys, cfg: cfg, nextID: 1,
		results: make(map[int]sched.Result),
		pending: make(map[int]bool),
		models:  make(map[string]workload.Workload),
	}
	for _, m := range cfg.Models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("serve: registered model %q: %w", m.Name, err)
		}
		if _, err := workload.Lookup(m.Name); err == nil {
			return nil, fmt.Errorf("serve: registered model %q shadows a built-in", m.Name)
		}
		if _, dup := s.models[m.Name]; dup {
			return nil, fmt.Errorf("serve: registered model %q listed twice", m.Name)
		}
		s.models[m.Name] = m.Clone()
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = sched.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if o := sys.Observer(); o != nil {
		s.obsShed = o.Registry().Scope("serve").Counter("shed")
	}
	if err := s.resetScheduler(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) resetScheduler() error {
	sc, err := s.sys.NewScheduler(sched.Config{
		Cores:             s.cfg.Cores,
		Workers:           s.cfg.Workers,
		MaxBatch:          s.cfg.MaxBatch,
		MaxRestarts:       s.cfg.MaxRestarts,
		RetryBackoff:      s.cfg.RetryBackoff,
		MaxQueuePerTenant: s.cfg.MaxQueuePerTenant,
		Breaker:           s.breaker,
	})
	if err != nil {
		return err
	}
	s.sched = sc
	return nil
}

// Handler builds the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/keys", s.handleKeys)
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/result", s.handleResult)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return http.MaxBytesHandler(mux, MaxBodyBytes)
}

// SubmitRequest is the POST /v1/submit body.
type SubmitRequest struct {
	// ID is optional; 0 lets the server assign the next free one.
	ID       int    `json:"id,omitempty"`
	Tenant   string `json:"tenant"`
	Model    string `json:"model"`
	Secure   bool   `json:"secure,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Arrival  uint64 `json:"arrival,omitempty"`
	Deadline uint64 `json:"deadline,omitempty"`
	KeyID    string `json:"key_id,omitempty"`
	// SealedB64 is the base64-encoded sealed model blob.
	SealedB64 string `json:"sealed_b64,omitempty"`
	// Graph, when present, is an inline graph-IR document (see
	// internal/graph) compiled server-side; it replaces Model, which
	// then serves as an optional display label. Invalid IR — syntax,
	// unknown fields or ops, shape errors, cycles — is a 400; nothing
	// reaches the scheduler.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Decode, when present, submits an autoregressive decode request:
	// one prefill pass over the prompt plus Steps single-token passes
	// against a monitor-resident KV window. Secure-only (the KV window
	// is ID-bit-tagged secure state) and exclusive with Graph. The
	// completed result's "tokens" field counts emitted tokens.
	Decode *DecodeParams `json:"decode,omitempty"`
}

// DecodeParams mirrors workload.DecodeSpec for the wire: Layers
// defaults to 1 and FFN to 4x Hidden, exactly as the graph IR's
// Decode op defaults them.
type DecodeParams struct {
	Layers int `json:"layers,omitempty"`
	Hidden int `json:"hidden"`
	Heads  int `json:"heads"`
	FFN    int `json:"ffn,omitempty"`
	Prompt int `json:"prompt"`
	Steps  int `json:"steps"`
}

func (p *DecodeParams) spec() *workload.DecodeSpec {
	spec := workload.DecodeSpec{
		Layers: p.Layers, Hidden: p.Hidden, Heads: p.Heads,
		FFN: p.FFN, Prompt: p.Prompt, Steps: p.Steps,
	}
	if spec.Layers == 0 {
		spec.Layers = 1
	}
	if spec.FFN == 0 {
		spec.FFN = 4 * spec.Hidden
	}
	return &spec
}

// KeyRequest is the POST /v1/keys body.
type KeyRequest struct {
	KeyID  string `json:"key_id"`
	KeyB64 string `json:"key_b64"`
}

// RunReport is the POST /v1/run response: the episode's results plus
// the rendered decision log, both deterministic for a given submitted
// trace.
type RunReport struct {
	Episode     int            `json:"episode"`
	Results     []sched.Result `json:"results"`
	DecisionLog []string       `json:"decision_log"`
	Makespan    sim.Cycle      `json:"makespan"`
	FlushCycles sim.Cycle      `json:"flush_cycles"`
	Completed   int            `json:"completed"`
	Rejected    int            `json:"rejected"`
	Dropped     int            `json:"dropped"`
	Aborted     int            `json:"aborted"`
	Shed        int            `json:"shed"`
	Retries     int            `json:"retries"`
	Recovered   int            `json:"recovered"`
	Preemptions int            `json:"preemptions"`
	BatchedRuns int            `json:"batched_runs"`
	// Tokens is the episode's total decode-token output; per-request
	// counts ride in each result's "tokens" field.
	Tokens int `json:"tokens,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeBackpressure is writeErr plus the deterministic Retry-After
// hint: every refusal the client should retry (queue full, tenant
// quarantine, drain) carries the same advisory pacing.
func writeBackpressure(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
	writeErr(w, code, format, args...)
}

// decode parses a JSON body, failing closed on syntax errors, unknown
// fields, trailing garbage, and oversized payloads.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", MaxBodyBytes)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return false
	}
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "trailing data after json body")
		return false
	}
	return true
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req KeyRequest
	if !decode(w, r, &req) {
		return
	}
	key, err := base64.StdEncoding.DecodeString(req.KeyB64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "key_b64: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeBackpressure(w, http.StatusServiceUnavailable, "draining: admission sealed")
		return
	}
	if s.sys.Monitor() == nil {
		writeErr(w, http.StatusNotImplemented, "baseline system has no monitor")
		return
	}
	if err := s.sys.ProvisionKey(req.KeyID, key); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	sealed, err := base64.StdEncoding.DecodeString(req.SealedB64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "sealed_b64: %v", err)
		return
	}
	if req.ID < 0 || req.Priority < -1000 || req.Priority > 1000 {
		writeErr(w, http.StatusBadRequest, "id/priority out of range")
		return
	}
	if req.Arrival > math.MaxInt64 || req.Deadline > math.MaxInt64 {
		writeErr(w, http.StatusBadRequest, "arrival/deadline out of range")
		return
	}
	if req.Deadline > 0 && req.Deadline <= req.Arrival {
		writeErr(w, http.StatusBadRequest, "deadline %d not after arrival %d", req.Deadline, req.Arrival)
		return
	}
	if req.Decode != nil && len(req.Graph) > 0 {
		writeErr(w, http.StatusBadRequest, "decode and graph are mutually exclusive")
		return
	}
	var spec *workload.DecodeSpec
	if req.Decode != nil {
		spec = req.Decode.spec()
	}
	// An inline graph compiles before taking the server lock —
	// compilation is pure, and a hostile graph should burn no time
	// inside the critical section.
	var custom *workload.Workload
	if len(req.Graph) > 0 {
		wl, err := graph.LowerBytes(req.Graph)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		custom = &wl
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeBackpressure(w, http.StatusServiceUnavailable, "draining: admission sealed")
		return
	}
	// A registered custom model resolves by name when no inline graph
	// was supplied.
	if custom == nil && spec == nil {
		if m, ok := s.models[req.Model]; ok {
			wl := m.Clone()
			custom = &wl
		}
	}
	id := req.ID
	if id == 0 {
		id = s.nextID
	}
	err = s.sched.Submit(sched.Request{
		ID:       id,
		Tenant:   req.Tenant,
		Model:    req.Model,
		Workload: custom,
		Decode:   spec,
		Secure:   req.Secure,
		Priority: sched.Priority(req.Priority),
		Arrival:  sim.Cycle(req.Arrival),
		Deadline: sim.Cycle(req.Deadline),
		KeyID:    req.KeyID,
		Sealed:   sealed,
	})
	switch {
	case err == nil:
	case errors.Is(err, sched.ErrDuplicateID):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, sched.ErrModelTooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	case errors.Is(err, sched.ErrNoMonitor):
		writeErr(w, http.StatusNotImplemented, "%v", err)
		return
	case errors.Is(err, sched.ErrQueueFull):
		// The tenant's queue bound is hit and the incoming request does
		// not outrank anything queued: shed the newcomer.
		s.shed++
		if s.obsShed != nil {
			s.obsShed.Inc()
		}
		writeBackpressure(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, sched.ErrTenantQuarantined):
		writeBackpressure(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.pending[id] = true
	writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched.Pending() == 0 {
		writeErr(w, http.StatusConflict, "no pending requests")
		return
	}
	rep, err := s.sched.Run()
	// The scheduler is consumed either way; arm the next episode.
	if rerr := s.resetScheduler(); rerr != nil && err == nil {
		err = rerr
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.episodes++
	s.completed += rep.Completed
	s.rejected += rep.Rejected
	s.dropped += rep.Dropped
	s.aborted += rep.Aborted
	s.shed += rep.Shed
	s.recovered += rep.Recovered
	if s.obsShed != nil {
		for i := 0; i < rep.Shed; i++ {
			s.obsShed.Inc()
		}
	}
	for _, res := range rep.Results {
		s.results[res.ID] = res
		delete(s.pending, res.ID)
	}
	s.last = rep
	out := RunReport{
		Episode:     s.episodes,
		Results:     rep.Results,
		DecisionLog: make([]string, 0, len(rep.Decisions)),
		Makespan:    rep.Makespan,
		FlushCycles: rep.FlushCycles,
		Completed:   rep.Completed,
		Rejected:    rep.Rejected,
		Dropped:     rep.Dropped,
		Aborted:     rep.Aborted,
		Shed:        rep.Shed,
		Retries:     rep.Retries,
		Recovered:   rep.Recovered,
		Preemptions: rep.Preemptions,
		BatchedRuns: rep.BatchedRuns,
		Tokens:      rep.Tokens,
	}
	for _, d := range rep.Decisions {
		out.DecisionLog = append(out.DecisionLog, d.String())
	}
	writeJSON(w, http.StatusOK, out)
}

// ResultReport is the GET /v1/result response body.
type ResultReport struct {
	Result sched.Result `json:"result"`
}

// handleResult maps a terminal (or pending) request outcome to an HTTP
// status. The mapping distinguishes the *retryable* fault-abort class
// (503 + Retry-After: transient, resubmit later) from the isolation
// abort class (410 Gone: do not retry) by the Retryable flag alone —
// both carry the same opaque §IV-B error string, so no cause detail
// crosses the API that the scheduler did not already decide to expose.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var id int
	if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil || id <= 0 {
		writeErr(w, http.StatusBadRequest, "id: positive integer required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[id]
	if !ok {
		if s.pending[id] {
			writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": "pending"})
			return
		}
		writeErr(w, http.StatusNotFound, "unknown request id %d", id)
		return
	}
	switch {
	case res.Completed:
		writeJSON(w, http.StatusOK, ResultReport{Result: res})
	case res.Shed:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, ResultReport{Result: res})
	case res.Dropped:
		writeJSON(w, http.StatusGatewayTimeout, ResultReport{Result: res})
	case res.Aborted && res.Retryable:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, ResultReport{Result: res})
	case res.Aborted:
		writeJSON(w, http.StatusGone, ResultReport{Result: res})
	default: // rejected at admission
		writeJSON(w, http.StatusBadRequest, ResultReport{Result: res})
	}
}

// handleHealthz is liveness: 200 as long as the process serves HTTP,
// draining included.
// ModelInfo is one entry of the GET /v1/models listing. Digest is the
// hex canonical-workload digest — the same value stamped into a
// compiled program's SourceDigest and bound by attestation quotes, so
// a client can pre-verify which graph a name will run.
type ModelInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"` // "builtin" or "registered"
	Layers int    `json:"layers"`
	GEMMs  int    `json:"gemms"`
	Digest string `json:"digest"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var out []ModelInfo
	for _, name := range workload.Names() {
		wl, err := workload.Lookup(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out = append(out, modelInfo(wl, "builtin"))
	}
	s.mu.Lock()
	registered := make([]workload.Workload, 0, len(s.models))
	for _, m := range s.models {
		registered = append(registered, m)
	}
	s.mu.Unlock()
	sort.Slice(registered, func(i, j int) bool { return registered[i].Name < registered[j].Name })
	for _, m := range registered {
		out = append(out, modelInfo(m, "registered"))
	}
	writeJSON(w, http.StatusOK, out)
}

func modelInfo(wl workload.Workload, source string) ModelInfo {
	gemms := 0
	for _, l := range wl.Layers {
		gemms += len(l.GEMMs)
	}
	d := workload.Digest(wl)
	return ModelInfo{
		Name: wl.Name, Source: source,
		Layers: len(wl.Layers), GEMMs: gemms,
		Digest: hex.EncodeToString(d[:]),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing new work while in-flight episodes finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeBackpressure(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Drain seals admission: subsequent submits and key provisioning get
// 503 + Retry-After, /readyz flips to 503, and already-submitted work
// remains runnable. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// DrainAndFinish seals admission and runs one final episode if any
// requests are still pending, so SIGTERM shutdown completes in-flight
// work (paying every §IV-B flush on the way) instead of stranding it.
// It returns the final report, or nil if nothing was pending.
func (s *Server) DrainAndFinish() (*sched.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	if s.sched.Pending() == 0 {
		return nil, nil
	}
	rep, err := s.sched.Run()
	if rerr := s.resetScheduler(); rerr != nil && err == nil {
		err = rerr
	}
	if err != nil {
		return nil, err
	}
	s.episodes++
	s.completed += rep.Completed
	s.rejected += rep.Rejected
	s.dropped += rep.Dropped
	s.aborted += rep.Aborted
	s.shed += rep.Shed
	s.recovered += rep.Recovered
	for _, res := range rep.Results {
		s.results[res.ID] = res
		delete(s.pending, res.ID)
	}
	s.last = rep
	return rep, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	status := map[string]any{
		"pending":   s.sched.Pending(),
		"episodes":  s.episodes,
		"completed": s.completed,
		"rejected":  s.rejected,
		"dropped":   s.dropped,
		"aborted":   s.aborted,
		"shed":      s.shed,
		"recovered": s.recovered,
		"draining":  s.draining,
		"protected": s.sys.Monitor() != nil,
	}
	if qs := s.breaker.Quarantined(); len(qs) > 0 {
		sort.Strings(qs)
		status["quarantined"] = qs
	}
	if s.last != nil {
		status["last_makespan"] = s.last.Makespan
	}
	writeJSON(w, http.StatusOK, status)
}

// handleMetrics serves the attached observability registry in
// Prometheus text format (404 when observability is off).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	o := s.sys.Observer()
	s.mu.Unlock()
	if o == nil {
		writeErr(w, http.StatusNotFound, "observability not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = o.Registry().WritePrometheus(w)
}

// Boot builds a protected system with observability on, ready for New
// (the daemon's default; tests boot their own variants).
func Boot() (*snpu.System, error) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sys.EnableObservability(obs.Config{})
	return sys, nil
}
