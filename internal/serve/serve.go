// Package serve is the HTTP/JSON front end of the multi-tenant
// scheduler (internal/sched): tenants provision sealing keys, submit
// secure and non-secure inference requests, and trigger deterministic
// scheduling episodes over the simulated SoC. The daemon itself is
// beyond the paper; it exists to drive the §IV-B scheduling path the
// way a serving stack would, and to give the fuzzer a hostile-input
// surface that must fail closed (malformed bodies, oversized sealed
// models, duplicate IDs are all 4xx, never panics, never monitor
// state).
package serve

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	snpu "repro"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// MaxBodyBytes caps any request body: the sealed-model cap plus
// base64 expansion plus JSON framing headroom.
const MaxBodyBytes = sched.MaxSealedBytes*4/3 + 64*1024

// Config tunes the daemon's scheduler episodes.
type Config struct {
	// Cores, Workers, MaxBatch pass through to sched.Config.
	Cores    []int
	Workers  int
	MaxBatch int
}

// Server accumulates submissions and runs them as scheduler episodes.
// It serializes all scheduler access behind one mutex: the simulated
// SoC is single-clocked, so concurrent HTTP clients see atomic
// submit/run semantics.
type Server struct {
	mu     sync.Mutex
	sys    *snpu.System
	cfg    Config
	sched  *sched.Scheduler
	nextID int

	episodes  int
	completed int
	rejected  int
	dropped   int
	aborted   int
	last      *sched.Report
}

// New wraps a booted System. The system's observability layer (if
// enabled) feeds GET /metrics.
func New(sys *snpu.System, cfg Config) (*Server, error) {
	s := &Server{sys: sys, cfg: cfg, nextID: 1}
	if err := s.resetScheduler(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) resetScheduler() error {
	sc, err := s.sys.NewScheduler(sched.Config{
		Cores:    s.cfg.Cores,
		Workers:  s.cfg.Workers,
		MaxBatch: s.cfg.MaxBatch,
	})
	if err != nil {
		return err
	}
	s.sched = sc
	return nil
}

// Handler builds the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/keys", s.handleKeys)
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return http.MaxBytesHandler(mux, MaxBodyBytes)
}

// SubmitRequest is the POST /v1/submit body.
type SubmitRequest struct {
	// ID is optional; 0 lets the server assign the next free one.
	ID       int    `json:"id,omitempty"`
	Tenant   string `json:"tenant"`
	Model    string `json:"model"`
	Secure   bool   `json:"secure,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Arrival  uint64 `json:"arrival,omitempty"`
	Deadline uint64 `json:"deadline,omitempty"`
	KeyID    string `json:"key_id,omitempty"`
	// SealedB64 is the base64-encoded sealed model blob.
	SealedB64 string `json:"sealed_b64,omitempty"`
}

// KeyRequest is the POST /v1/keys body.
type KeyRequest struct {
	KeyID  string `json:"key_id"`
	KeyB64 string `json:"key_b64"`
}

// RunReport is the POST /v1/run response: the episode's results plus
// the rendered decision log, both deterministic for a given submitted
// trace.
type RunReport struct {
	Episode     int            `json:"episode"`
	Results     []sched.Result `json:"results"`
	DecisionLog []string       `json:"decision_log"`
	Makespan    sim.Cycle      `json:"makespan"`
	FlushCycles sim.Cycle      `json:"flush_cycles"`
	Completed   int            `json:"completed"`
	Rejected    int            `json:"rejected"`
	Dropped     int            `json:"dropped"`
	Aborted     int            `json:"aborted"`
	Preemptions int            `json:"preemptions"`
	BatchedRuns int            `json:"batched_runs"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decode parses a JSON body, failing closed on syntax errors, unknown
// fields, trailing garbage, and oversized payloads.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", MaxBodyBytes)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return false
	}
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "trailing data after json body")
		return false
	}
	return true
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req KeyRequest
	if !decode(w, r, &req) {
		return
	}
	key, err := base64.StdEncoding.DecodeString(req.KeyB64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "key_b64: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sys.Monitor() == nil {
		writeErr(w, http.StatusNotImplemented, "baseline system has no monitor")
		return
	}
	if err := s.sys.ProvisionKey(req.KeyID, key); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	sealed, err := base64.StdEncoding.DecodeString(req.SealedB64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "sealed_b64: %v", err)
		return
	}
	if req.ID < 0 || req.Priority < -1000 || req.Priority > 1000 {
		writeErr(w, http.StatusBadRequest, "id/priority out of range")
		return
	}
	if req.Arrival > math.MaxInt64 || req.Deadline > math.MaxInt64 {
		writeErr(w, http.StatusBadRequest, "arrival/deadline out of range")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := req.ID
	if id == 0 {
		id = s.nextID
	}
	err = s.sched.Submit(sched.Request{
		ID:       id,
		Tenant:   req.Tenant,
		Model:    req.Model,
		Secure:   req.Secure,
		Priority: sched.Priority(req.Priority),
		Arrival:  sim.Cycle(req.Arrival),
		Deadline: sim.Cycle(req.Deadline),
		KeyID:    req.KeyID,
		Sealed:   sealed,
	})
	switch {
	case err == nil:
	case errors.Is(err, sched.ErrDuplicateID):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, sched.ErrModelTooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	case errors.Is(err, sched.ErrNoMonitor):
		writeErr(w, http.StatusNotImplemented, "%v", err)
		return
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched.Pending() == 0 {
		writeErr(w, http.StatusConflict, "no pending requests")
		return
	}
	rep, err := s.sched.Run()
	// The scheduler is consumed either way; arm the next episode.
	if rerr := s.resetScheduler(); rerr != nil && err == nil {
		err = rerr
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.episodes++
	s.completed += rep.Completed
	s.rejected += rep.Rejected
	s.dropped += rep.Dropped
	s.aborted += rep.Aborted
	s.last = rep
	out := RunReport{
		Episode:     s.episodes,
		Results:     rep.Results,
		DecisionLog: make([]string, 0, len(rep.Decisions)),
		Makespan:    rep.Makespan,
		FlushCycles: rep.FlushCycles,
		Completed:   rep.Completed,
		Rejected:    rep.Rejected,
		Dropped:     rep.Dropped,
		Aborted:     rep.Aborted,
		Preemptions: rep.Preemptions,
		BatchedRuns: rep.BatchedRuns,
	}
	for _, d := range rep.Decisions {
		out.DecisionLog = append(out.DecisionLog, d.String())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	status := map[string]any{
		"pending":   s.sched.Pending(),
		"episodes":  s.episodes,
		"completed": s.completed,
		"rejected":  s.rejected,
		"dropped":   s.dropped,
		"aborted":   s.aborted,
		"protected": s.sys.Monitor() != nil,
	}
	if s.last != nil {
		status["last_makespan"] = s.last.Makespan
	}
	writeJSON(w, http.StatusOK, status)
}

// handleMetrics serves the attached observability registry in
// Prometheus text format (404 when observability is off).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	o := s.sys.Observer()
	s.mu.Unlock()
	if o == nil {
		writeErr(w, http.StatusNotFound, "observability not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = o.Registry().WritePrometheus(w)
}

// Boot builds a protected system with observability on, ready for New
// (the daemon's default; tests boot their own variants).
func Boot() (*snpu.System, error) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sys.EnableObservability(obs.Config{})
	return sys, nil
}
