package serve

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"testing"

	snpu "repro"
)

// The HTTP layer is part of the deterministic contract: two
// independently booted daemons fed byte-identical request streams must
// return byte-identical /v1/run bodies — results, cycle spans, and the
// rendered decision log included. This is the serving-stack face of the
// differential tests in internal/sched.
func TestServeDifferentialRun(t *testing.T) {
	key := snpu.ChaosKey(11)
	sealed, err := snpu.SealModel(key, []byte("differential model"))
	if err != nil {
		t.Fatal(err)
	}
	keyBody, _ := json.Marshal(KeyRequest{KeyID: "k", KeyB64: base64.StdEncoding.EncodeToString(key)})
	submits := []SubmitRequest{
		{Tenant: "a", Model: "mobilenet", Secure: true, KeyID: "k", Priority: 2,
			SealedB64: base64.StdEncoding.EncodeToString(sealed)},
		{Tenant: "b", Model: "yololite", Arrival: 4000},
		{Tenant: "a", Model: "mobilenet", Secure: true, KeyID: "k", Arrival: 9000,
			SealedB64: base64.StdEncoding.EncodeToString(sealed)},
		{Tenant: "c", Model: "alexnet", Arrival: 12000, Deadline: 90_000_000},
	}

	runOnce := func(workers int) string {
		sys, err := snpu.New(snpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(sys, Config{Cores: []int{0, 1}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if rec := do(t, h, "POST", "/v1/keys", string(keyBody)); rec.Code != http.StatusNoContent {
			t.Fatalf("keys: %d %s", rec.Code, rec.Body)
		}
		for i, sr := range submits {
			body, _ := json.Marshal(sr)
			if rec := do(t, h, "POST", "/v1/submit", string(body)); rec.Code != http.StatusAccepted {
				t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
			}
		}
		rec := do(t, h, "POST", "/v1/run", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("run: %d %s", rec.Code, rec.Body)
		}
		return rec.Body.String()
	}

	ref := runOnce(1)
	var rep RunReport
	if err := json.Unmarshal([]byte(ref), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(submits) {
		t.Fatalf("reference run completed %d of %d: %s", rep.Completed, len(submits), ref)
	}
	if got := runOnce(4); got != ref {
		t.Fatalf("run bodies diverge across daemons\n--- ref ---\n%s\n--- got ---\n%s", ref, got)
	}
}
