package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	snpu "repro"
	"repro/internal/obs"
)

func bootServer(t *testing.T) (*snpu.System, http.Handler) {
	t.Helper()
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableObservability(obs.Config{})
	srv, err := New(sys, Config{Cores: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv.Handler()
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// The full serving flow: provision a key, submit a mixed trace, run
// the episode, read status and metrics.
func TestServeEndToEnd(t *testing.T) {
	_, h := bootServer(t)

	key := bytes.Repeat([]byte{7}, snpu.SealKeySize)
	sealed, err := snpu.SealModel(key, []byte("tenant-a model weights"))
	if err != nil {
		t.Fatal(err)
	}
	keyBody, _ := json.Marshal(KeyRequest{KeyID: "ka", KeyB64: base64.StdEncoding.EncodeToString(key)})
	if rec := do(t, h, "POST", "/v1/keys", string(keyBody)); rec.Code != http.StatusNoContent {
		t.Fatalf("keys: %d %s", rec.Code, rec.Body)
	}

	submits := []SubmitRequest{
		{Tenant: "a", Model: "mobilenet", Secure: true, KeyID: "ka",
			SealedB64: base64.StdEncoding.EncodeToString(sealed)},
		{Tenant: "b", Model: "resnet"},
		{Tenant: "b", Model: "mobilenet", Arrival: 5000},
	}
	for i, sr := range submits {
		body, _ := json.Marshal(sr)
		rec := do(t, h, "POST", "/v1/submit", string(body))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
		var got map[string]int
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got["id"] != i+1 {
			t.Fatalf("submit %d: id = %v (%v)", i, got, err)
		}
	}

	rec := do(t, h, "POST", "/v1/run", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	var rep RunReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 || rep.Episode != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.DecisionLog) == 0 {
		t.Fatal("empty decision log")
	}

	rec = do(t, h, "GET", "/v1/status", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"completed":3`) {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "sched_complete_count") {
		t.Fatalf("metrics: %d %.200s", rec.Code, rec.Body)
	}

	// The next episode starts clean: running with nothing pending is 409.
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusConflict {
		t.Fatalf("empty run: %d", rec.Code)
	}
}

// Hostile inputs fail closed with 4xx, exactly as the fuzz target
// requires: malformed JSON, unknown fields, bad base64, unknown
// models, duplicate IDs, oversized sealed models.
func TestServeRejectsHostileInputs(t *testing.T) {
	_, h := bootServer(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad-json", "/v1/submit", `{"tenant":`, http.StatusBadRequest},
		{"unknown-field", "/v1/submit", `{"tenant":"a","model":"resnet","evil":1}`, http.StatusBadRequest},
		{"trailing", "/v1/submit", `{"tenant":"a","model":"resnet"}{}`, http.StatusBadRequest},
		{"bad-b64", "/v1/submit", `{"tenant":"a","model":"resnet","sealed_b64":"!!"}`, http.StatusBadRequest},
		{"no-model", "/v1/submit", `{"tenant":"a","model":"nope"}`, http.StatusBadRequest},
		{"neg-id", "/v1/submit", `{"id":-4,"tenant":"a","model":"resnet"}`, http.StatusBadRequest},
		{"bad-key-b64", "/v1/keys", `{"key_id":"k","key_b64":"%%"}`, http.StatusBadRequest},
		{"method", "/v1/submit", ``, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		method := "POST"
		if c.name == "method" {
			method = "GET"
		}
		if rec := do(t, h, method, c.path, c.body); rec.Code != c.want {
			t.Fatalf("%s: code = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}

	// Duplicate IDs: second submit with the same explicit ID is 409.
	body := `{"id":9,"tenant":"a","model":"resnet"}`
	if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusAccepted {
		t.Fatalf("first: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate: %d", rec.Code)
	}

	// Oversized sealed model: 413 from the size cap (the body cap may
	// fire first for truly huge payloads; both are 413).
	big := base64.StdEncoding.EncodeToString(make([]byte, 9<<20))
	over := fmt.Sprintf(`{"tenant":"a","model":"resnet","secure":true,"key_id":"k","sealed_b64":"%s"}`, big)
	if rec := do(t, h, "POST", "/v1/submit", over); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: %d %.200s", rec.Code, rec.Body)
	}
}

// The baseline daemon refuses key provisioning and secure submits
// with 501 but serves non-secure requests.
func TestServeBaseline(t *testing.T) {
	sys, err := snpu.New(snpu.BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{Cores: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if rec := do(t, h, "POST", "/v1/keys", `{"key_id":"k","key_b64":""}`); rec.Code != http.StatusNotImplemented {
		t.Fatalf("keys on baseline: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/submit", `{"tenant":"a","model":"resnet","secure":true}`); rec.Code != http.StatusNotImplemented {
		t.Fatalf("secure on baseline: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/submit", `{"tenant":"a","model":"resnet"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("non-secure on baseline: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/run", ""); rec.Code != http.StatusOK {
		t.Fatalf("run on baseline: %d %s", rec.Code, rec.Body)
	}
	// Metrics 404s without observability.
	if rec := do(t, h, "GET", "/metrics", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("metrics without obs: %d", rec.Code)
	}
}
