package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	snpu "repro"
)

// FuzzServeRequest throws arbitrary bodies at every mutating endpoint
// of one long-lived server. The daemon's contract under hostile input:
// never panic, never 5xx, and refuse every malformed submission with a
// 4xx — the scheduler and monitor must be unreachable by garbage.
func FuzzServeRequest(f *testing.F) {
	sys, err := snpu.New(snpu.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(sys, Config{Cores: []int{0}})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()

	f.Add(uint8(0), `{"tenant":"a","model":"resnet"}`)
	f.Add(uint8(0), `{"id":7,"tenant":"a","model":"mobilenet","secure":true,"key_id":"k","sealed_b64":"AAAA"}`)
	f.Add(uint8(0), `{"id":7,"tenant":"a","model":"mobilenet"}`) // duplicate-id probe
	f.Add(uint8(0), `{"tenant":"a","model":"resnet","arrival":18446744073709551615}`)
	f.Add(uint8(0), `{"tenant":`)
	f.Add(uint8(0), `null`)
	f.Add(uint8(0), `[1,2,3]`)
	f.Add(uint8(1), `{"key_id":"k","key_b64":"////"}`)
	f.Add(uint8(1), `{"key_id":"","key_b64":"!"}`)
	f.Add(uint8(2), ``)
	f.Add(uint8(3), `{"evil":"body on a GET route"}`)
	// Deadline edges: equal-to-arrival and before-arrival must be 400,
	// the wraparound value must not panic the cycle conversion.
	f.Add(uint8(0), `{"tenant":"a","model":"resnet","arrival":500,"deadline":500}`)
	f.Add(uint8(0), `{"tenant":"a","model":"resnet","arrival":500,"deadline":1}`)
	f.Add(uint8(0), `{"tenant":"a","model":"resnet","deadline":18446744073709551615}`)
	// Admit-early regression shape (PR-4 minimized schedule): a far
	// arrival behind a zero-arrival request on explicit IDs.
	f.Add(uint8(0), `{"id":1,"tenant":"a","model":"resnet"}`)
	f.Add(uint8(0), `{"id":2,"tenant":"b","model":"mobilenet","arrival":30000000}`)
	// Result/health probes, including hostile query strings.
	f.Add(uint8(6), ``)
	f.Add(uint8(7), ``)
	f.Add(uint8(8), ``)
	f.Add(uint8(9), ``)
	f.Add(uint8(10), ``)

	paths := []string{
		"/v1/submit", "/v1/keys", "/v1/run", "/v1/status", "/metrics", "/nope",
		"/v1/result?id=1", "/v1/result?id=-9999999999999999999", "/v1/result?id=zip%00",
		"/healthz", "/readyz",
	}

	f.Fuzz(func(t *testing.T, which uint8, body string) {
		path := paths[int(which)%len(paths)]
		method := "POST"
		if strings.HasPrefix(path, "/v1/result") || path == "/v1/status" ||
			path == "/metrics" || path == "/healthz" || path == "/readyz" {
			method = "GET"
		}
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("%s %s -> %d (5xx under hostile input): %.300s", method, path, rec.Code, rec.Body.String())
		}
		// A submit that was accepted must have carried a well-formed
		// request; spot-check the invariant cheaply.
		if path == "/v1/submit" && rec.Code == http.StatusAccepted &&
			!strings.Contains(rec.Body.String(), `"id"`) {
			t.Fatalf("accepted submit without an id: %s", rec.Body.String())
		}
	})
}
