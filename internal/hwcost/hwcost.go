// Package hwcost is the analytic FPGA-resource model behind §VI
// Fig. 18:
// it counts the storage bits, registers, and comparator logic each
// protection mechanism adds to a baseline NPU tile and expresses them
// as LUT/FF/BRAM estimates. The absolute numbers are first-order
// (standard bit-per-resource rules of thumb); the claim under test is
// relative — S_Spad costs about 1% extra RAM, S_Reg and S_NoC are
// negligible, and an IOMMU with its walker and IOTLB CAM costs more
// than all sNPU extensions combined.
package hwcost

import "fmt"

// Resources is an FPGA utilization estimate.
type Resources struct {
	LUTs int64
	FFs  int64
	// RAMBits counts block-RAM storage bits.
	RAMBits int64
}

// Add accumulates.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUTs: r.LUTs + o.LUTs, FFs: r.FFs + o.FFs, RAMBits: r.RAMBits + o.RAMBits}
}

// PercentOf expresses each resource class as a percentage of base.
func (r Resources) PercentOf(base Resources) (lut, ff, ram float64) {
	pct := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	return pct(r.LUTs, base.LUTs), pct(r.FFs, base.FFs), pct(r.RAMBits, base.RAMBits)
}

func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d RAMbits=%d", r.LUTs, r.FFs, r.RAMBits)
}

// Params describes the NPU tile being costed.
type Params struct {
	SystolicDim  int // PEs per side
	SpadBytes    int
	SpadLineBits int // wordline payload width
	AccBytes     int
	AccLineBits  int
	IDBits       int // per-line tag width (sNPU)
	TransRegs    int // Guarder translation registers
	CheckRegs    int // Guarder checking registers
	IOTLBEntries int // TrustZone-NPU IOTLB size
	AddrBits     int // physical address width
	MeshLinkBits int // NoC flit width
}

// DefaultParams matches the evaluation SoC (Table II).
func DefaultParams() Params {
	return Params{
		SystolicDim:  16,
		SpadBytes:    256 << 10,
		SpadLineBits: 128,
		AccBytes:     64 << 10,
		AccLineBits:  512,
		IDBits:       1,
		TransRegs:    16,
		CheckRegs:    4,
		IOTLBEntries: 32,
		AddrBits:     40,
		MeshLinkBits: 128,
	}
}

// Rules of thumb for mapping logic onto a 6-input-LUT FPGA fabric:
// a W-bit comparator needs about W/3 LUTs; a W-bit register is W FFs;
// small distributed storage (register files, CAMs) costs both.
const lutsPerCompareBit = 3

func comparatorLUTs(bits int) int64 { return int64((bits + lutsPerCompareBit - 1) / lutsPerCompareBit) }

// Baseline estimates the unprotected NPU tile: the systolic array
// (each PE: an 8x8 multiplier ~ 60 LUTs, 3 32-bit registers), the
// scratchpad and accumulator BRAM, and control.
func Baseline(p Params) Resources {
	pes := int64(p.SystolicDim) * int64(p.SystolicDim)
	// Control (instruction queues, ROB, DMA engine, decoupling FIFOs)
	// dominates a real Gemmini tile's fabric cost alongside the PEs.
	r := Resources{
		LUTs:    pes*60 + 30000,
		FFs:     pes*96 + 40000,
		RAMBits: int64(p.SpadBytes)*8 + int64(p.AccBytes)*8,
	}
	return r
}

// SReg estimates the Guarder's translation/checking register file: per
// register two AddrBits bounds plus a base, the range comparators, and
// the adder for base+offset relocation.
func SReg(p Params) Resources {
	regs := int64(p.TransRegs + p.CheckRegs)
	bitsPerReg := int64(3*p.AddrBits + 4) // base, limit, target, perm/valid
	return Resources{
		LUTs:    regs * (2*comparatorLUTs(p.AddrBits) + int64(p.AddrBits)/2),
		FFs:     regs * bitsPerReg,
		RAMBits: 0,
	}
}

// SSpad estimates ID-based scratchpad isolation: IDBits extra storage
// per wordline plus the match logic at the read port.
func SSpad(p Params) Resources {
	spadLines := int64(p.SpadBytes) * 8 / int64(p.SpadLineBits)
	accLines := int64(p.AccBytes) * 8 / int64(p.AccLineBits)
	return Resources{
		LUTs:    64, // per-port ID compare + retag mux
		FFs:     16,
		RAMBits: (spadLines + accLines) * int64(p.IDBits),
	}
}

// SNoC estimates the peephole router extension: the send/receive
// engine FSM states, the identity field per channel, and the lock
// register.
func SNoC(p Params) Resources {
	return Resources{
		LUTs:    180,                        // two small FSMs + ID compare on the head flit
		FFs:     int64(p.IDBits) + 2*8 + 64, // id, two 8-state FSMs, lock/peer regs
		RAMBits: 0,
	}
}

// IOMMU estimates the TrustZone-NPU alternative: a fully-associative
// IOTLB (CAM match on the VPN, data side holding the PTE), a
// three-level page-table walker FSM with its registers, and the
// fault/flush plumbing.
func IOMMU(p Params) Resources {
	vpnBits := p.AddrBits - 12
	entryBits := int64(vpnBits + p.AddrBits - 12 + 4) // tag + ppn + perm/s-bits
	e := int64(p.IOTLBEntries)
	return Resources{
		// CAM compare per entry per lookup, plus walker datapath.
		LUTs:    e*comparatorLUTs(vpnBits)*4 + 2500,
		FFs:     e*entryBits + 1200,
		RAMBits: 4096 * 8, // walk cache
	}
}

// Config is one Fig. 18 column.
type Config struct {
	Name  string
	Extra Resources
}

// Fig18Configs returns the paper's comparison set over the baseline.
func Fig18Configs(p Params) []Config {
	sreg := SReg(p)
	sspad := SSpad(p)
	snoc := SNoC(p)
	return []Config{
		{Name: "baseline", Extra: Resources{}},
		{Name: "s_reg", Extra: sreg},
		{Name: "s_spad", Extra: sreg.Add(sspad)},
		{Name: "s_noc", Extra: sreg.Add(sspad).Add(snoc)},
		{Name: "trustzone_iommu", Extra: IOMMU(p)},
	}
}
