package hwcost

import "testing"

func TestSSpadRAMOverheadAboutOnePercent(t *testing.T) {
	p := DefaultParams()
	base := Baseline(p)
	_, _, ramPct := SSpad(p).PercentOf(base)
	// The paper's headline: ~1% extra RAM for the ID bits. With 1 bit
	// per 128-bit line it is slightly under 1%; allow [0.3, 1.5].
	if ramPct < 0.3 || ramPct > 1.5 {
		t.Fatalf("S_Spad RAM overhead = %.2f%%, want ~1%%", ramPct)
	}
}

func TestSRegAndSNoCNegligible(t *testing.T) {
	p := DefaultParams()
	base := Baseline(p)
	for name, r := range map[string]Resources{"s_reg": SReg(p), "s_noc": SNoC(p)} {
		lut, ff, ram := r.PercentOf(base)
		if lut > 5 || ff > 5 || ram > 0.1 {
			t.Fatalf("%s overhead too large: lut=%.2f%% ff=%.2f%% ram=%.2f%%", name, lut, ff, ram)
		}
	}
}

func TestIOMMUCostsMoreThanAllSNPUExtensions(t *testing.T) {
	p := DefaultParams()
	snpu := SReg(p).Add(SSpad(p)).Add(SNoC(p))
	tz := IOMMU(p)
	if tz.LUTs <= snpu.LUTs {
		t.Fatalf("IOMMU LUTs (%d) not above sNPU total (%d)", tz.LUTs, snpu.LUTs)
	}
	if tz.FFs <= snpu.FFs-snpu.RAMBits/64 && tz.FFs <= snpu.FFs {
		t.Fatalf("IOMMU FFs (%d) not above sNPU register cost (%d)", tz.FFs, snpu.FFs)
	}
}

func TestIDBitsScaleSSpad(t *testing.T) {
	p := DefaultParams()
	one := SSpad(p)
	p.IDBits = 4
	four := SSpad(p)
	if four.RAMBits != 4*one.RAMBits {
		t.Fatalf("ID-bit scaling: %d vs %d", four.RAMBits, one.RAMBits)
	}
}

func TestFig18ConfigsMonotone(t *testing.T) {
	p := DefaultParams()
	cfgs := Fig18Configs(p)
	if len(cfgs) != 5 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	// Cumulative sNPU configs grow monotonically.
	for i := 1; i < 4; i++ {
		prev, cur := cfgs[i-1].Extra, cfgs[i].Extra
		if cur.LUTs < prev.LUTs || cur.FFs < prev.FFs || cur.RAMBits < prev.RAMBits {
			t.Fatalf("config %s shrank vs %s", cfgs[i].Name, cfgs[i-1].Name)
		}
	}
	if cfgs[0].Name != "baseline" || cfgs[4].Name != "trustzone_iommu" {
		t.Fatal("config ordering")
	}
}

func TestPercentOfZeroBase(t *testing.T) {
	lut, ff, ram := (Resources{LUTs: 10}).PercentOf(Resources{})
	if lut != 0 || ff != 0 || ram != 0 {
		t.Fatal("division by zero base not guarded")
	}
}

func TestResourcesAddAndString(t *testing.T) {
	a := Resources{LUTs: 1, FFs: 2, RAMBits: 3}
	b := a.Add(a)
	if b.LUTs != 2 || b.FFs != 4 || b.RAMBits != 6 {
		t.Fatal("Add")
	}
	if a.String() == "" {
		t.Fatal("String")
	}
}
