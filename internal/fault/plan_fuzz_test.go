package fault

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzPlanJSON drives the fault-plan decoder with arbitrary bytes.
// Plans arrive from the untrusted command line (snpu-sim -faults), so
// the property is: malformed input must return an error, never panic,
// and anything accepted must survive a write/read round trip
// unchanged. Run longer with `go test -fuzz=FuzzPlanJSON
// ./internal/fault`; CI runs a short smoke.
func FuzzPlanJSON(f *testing.F) {
	// Seeds: a generated plan, a handwritten one, and malformed shapes
	// that previously looked plausible (bad kind, negative cycle,
	// unknown field, truncation, type confusion).
	var valid bytes.Buffer
	if err := WritePlan(&valid, Generate(42, 1_000_000, UniformRates(10))); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`{"seed":3,"events":[{"at":10,"kind":"dram-bit-flip","sel":1,"bit":7}]}`))
	f.Add([]byte(`{"events":[{"at":10,"kind":"not-a-kind"}]}`))
	f.Add([]byte(`{"events":[{"at":-1,"kind":"noc-drop"}]}`))
	f.Add([]byte(`{"events":[{"at":10,"kind":"noc-drop"}],"extra":true}`))
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"events":"nope"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, ev := range p.Events {
			if ev.At < 0 {
				t.Fatalf("accepted event at negative cycle %d", ev.At)
			}
			if _, err := KindFromString(ev.Kind.String()); err != nil {
				t.Fatalf("accepted event with unprintable kind %v", ev.Kind)
			}
			// Pick must stay in range for any selector the plan carries.
			if i := ev.Pick(7); i < 0 || i >= 7 {
				t.Fatalf("Pick out of range: %d", i)
			}
		}
		// Round trip: what we accept, we must reproduce byte-stably.
		var out bytes.Buffer
		if err := WritePlan(&out, p); err != nil {
			t.Fatalf("rewriting accepted plan: %v", err)
		}
		back, err := ReadPlan(&out)
		if err != nil {
			t.Fatalf("re-reading written plan: %v", err)
		}
		if len(back.Events) != len(p.Events) || back.Seed != p.Seed {
			t.Fatalf("round trip changed the plan: %d/%d events, seed %d/%d",
				len(p.Events), len(back.Events), p.Seed, back.Seed)
		}
		for i := range back.Events {
			if back.Events[i] != p.Events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, p.Events[i], back.Events[i])
			}
		}
	})
}

// TestReadPlanRejectsMalformed pins the decoder's error behavior for
// the corpus shapes outside fuzzing (so plain `go test` covers them).
func TestReadPlanRejectsMalformed(t *testing.T) {
	bad := []string{
		`{"events":[{"at":10,"kind":"not-a-kind"}]}`,
		`{"events":[{"at":-1,"kind":"noc-drop"}]}`,
		`{"events":[{"at":10,"kind":"noc-drop"}],"extra":true}`,
		`{"events":"nope"}`,
		``,
		`{`,
	}
	for _, s := range bad {
		if _, err := ReadPlan(strings.NewReader(s)); err == nil {
			t.Errorf("ReadPlan(%q) accepted malformed input", s)
		}
	}
	good := `{"seed":3,"events":[{"at":10,"kind":"dram-bit-flip","sel":1,"bit":7}]}`
	p, err := ReadPlan(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ReadPlan rejected valid plan: %v", err)
	}
	if len(p.Events) != 1 || p.Events[0].At != sim.Cycle(10) {
		t.Fatalf("decoded plan wrong: %+v", p)
	}
}
