// Package fault is the deterministic fault-injection subsystem of the
// simulated SoC (beyond the paper; it stresses the §IV recovery
// mechanisms the evaluation only exercises on the happy path). A Plan schedules hardware faults — DRAM word bit
// flips, NoC flit corruption/drops, permanent link failures, DMA
// request stalls, IOTLB entry corruption, scratchpad bit flips, and
// core hangs — at simulated cycles against named sites. Components
// pull matching events from an Injector at access time, so a fault
// scheduled for cycle C fires at the first access of its site at or
// after C, which is deterministic for a deterministic access stream.
//
// Two invariants anchor the design:
//
//  1. Zero overhead when off: a nil Injector (or one with an empty
//     plan) is a handful of predictable branches; no timing, counter,
//     or functional state changes.
//  2. Fault-safety is security-safety: no injected fault may ever turn
//     into an isolation break. Detection either recovers (ECC
//     correction, CRC retry, parity re-walk) or fails closed (task
//     abort + scrub) — never open.
//
// Nothing in the injection path reads the wall clock or the global
// math/rand state: randomness enters only through Plan generation from
// an explicit seed, so the same seed always yields byte-identical
// fault sequences.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind names one fault site/failure mode pair.
type Kind uint8

const (
	// DRAMBitFlip flips one bit of a DRAM word (SECDED ECC territory).
	DRAMBitFlip Kind = iota
	// NoCCorrupt corrupts one flit of a NoC packet in flight (CRC
	// detects; without CRC the payload is silently damaged).
	NoCCorrupt
	// NoCDrop drops a NoC packet (NACK timeout + retransmit).
	NoCDrop
	// NoCLinkDown permanently kills one mesh link (reroute or fail
	// closed).
	NoCLinkDown
	// DMAStall stalls a DMA request until the engine's watchdog fires
	// (timeout + bounded retry with capped backoff).
	DMAStall
	// IOTLBCorrupt flips a bit in a cached IOTLB translation (parity
	// detects; flush + re-walk recovers).
	IOTLBCorrupt
	// SpadBitFlip flips one bit of a scratchpad wordline (per-line
	// parity detects; the access fails closed).
	SpadBitFlip
	// CoreHang wedges a core mid-op until the engine watchdog expires
	// (the NPU Monitor aborts or restarts the task).
	CoreHang

	numKinds
)

var kindNames = [numKinds]string{
	DRAMBitFlip:  "dram-bit-flip",
	NoCCorrupt:   "noc-corrupt",
	NoCDrop:      "noc-drop",
	NoCLinkDown:  "noc-link-down",
	DMAStall:     "dma-stall",
	IOTLBCorrupt: "iotlb-corrupt",
	SpadBitFlip:  "spad-bit-flip",
	CoreHang:     "core-hang",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses the JSON plan spelling of a kind.
func KindFromString(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Kinds lists every fault kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one scheduled fault. It fires at the first access of its
// site at or after cycle At.
type Event struct {
	// At is the earliest simulated cycle the fault may fire.
	At sim.Cycle
	// Kind selects the site and failure mode.
	Kind Kind
	// Sel deterministically selects the target within the site (a DRAM
	// word within the request, a scratchpad line, a mesh link, an
	// IOTLB way); the site reduces it modulo its population.
	Sel uint64
	// Bit selects which bit to flip, for the corruption kinds.
	Bit uint8
}

// Pick reduces the event's selector onto a population of n targets.
func (e Event) Pick(n int) int {
	if n <= 0 {
		return 0
	}
	return int(e.Sel % uint64(n))
}

// Injector hands scheduled faults to the hardware models. A nil
// Injector is valid and always empty, so components hold a plain field
// and the no-fault fast path costs one nil check.
//
// The injector tracks a high-water "last observed cycle" fed by every
// Take call; untimed call sites (functional scratchpad accesses) use
// TakeAt, which fires against that clock. The simulator is
// single-threaded, so this is deterministic.
type Injector struct {
	queues    [numKinds][]Event // each sorted ascending by At
	remaining int
	injected  int64
	now       sim.Cycle
	stats     *sim.Stats
	// Observability: span sink, nil unless AttachTrace was called. The
	// injector takes the resolved recorder rather than an obs.Observer
	// so the fault package stays below obs in the import graph
	// (obs-instrumented components like the NoC import fault). Fired
	// counts already flow to exports through the stats sink
	// (fault.injected and its per-kind variants).
	obsRec *trace.Recorder
}

// AttachTrace wires the injector into a span timeline: every fired
// event lands as a fault-kind span from its scheduled cycle to the
// cycle it actually hit a site. Safe on nil; a nil recorder detaches.
func (i *Injector) AttachTrace(rec *trace.Recorder) {
	if i != nil {
		i.obsRec = rec
	}
}

// NewInjector arms an injector with a plan. Events are stably sorted
// by cycle per kind; the original Plan is not modified.
func NewInjector(p Plan, stats *sim.Stats) *Injector {
	inj := &Injector{stats: stats}
	for _, ev := range p.Events {
		if ev.Kind >= numKinds {
			continue
		}
		inj.queues[ev.Kind] = append(inj.queues[ev.Kind], ev)
		inj.remaining++
	}
	for k := range inj.queues {
		q := inj.queues[k]
		sort.SliceStable(q, func(i, j int) bool { return q[i].At < q[j].At })
	}
	return inj
}

// Enabled reports whether any fault is still pending. Safe on nil.
func (i *Injector) Enabled() bool { return i != nil && i.remaining > 0 }

// Remaining reports pending (not yet fired) events. Safe on nil.
func (i *Injector) Remaining() int {
	if i == nil {
		return 0
	}
	return i.remaining
}

// Injected reports how many faults have fired. Safe on nil.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	return i.injected
}

// Observe advances the injector's notion of current cycle without
// taking an event (timed components call it as their clock moves so
// untimed sites fire at sensible points). Safe on nil.
func (i *Injector) Observe(now sim.Cycle) {
	if i != nil && now > i.now {
		i.now = now
	}
}

// Take pops the oldest pending event of the kind whose schedule cycle
// has been reached at `now`. Safe on nil.
func (i *Injector) Take(k Kind, now sim.Cycle) (Event, bool) {
	if i == nil || k >= numKinds {
		return Event{}, false
	}
	if now > i.now {
		i.now = now
	}
	q := i.queues[k]
	if len(q) == 0 || q[0].At > now {
		return Event{}, false
	}
	ev := q[0]
	i.queues[k] = q[1:]
	i.remaining--
	i.injected++
	if i.stats != nil {
		i.stats.Inc(sim.CtrFaultsInjected)
		i.stats.Inc(sim.CtrFaultsInjected + "." + k.String())
	}
	if i.obsRec != nil {
		// Span from the scheduled cycle to the access that absorbed it —
		// the injection-to-landing latency of the pull model.
		i.obsRec.Record(trace.Event{
			Name: "fault." + k.String(), Kind: trace.KindFault,
			Start: ev.At, End: now,
		})
	}
	return ev, true
}

// TakeAt is Take against the injector's last observed cycle, for call
// sites that carry no timestamp of their own. Safe on nil.
func (i *Injector) TakeAt(k Kind) (Event, bool) {
	if i == nil {
		return Event{}, false
	}
	return i.Take(k, i.now)
}
