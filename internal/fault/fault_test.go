package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := KindFromString("gamma-ray"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 42,
		Events: []Event{
			{At: 100, Kind: DRAMBitFlip, Sel: 7, Bit: 3},
			{At: 200, Kind: NoCCorrupt, Sel: 1, Bit: 60},
			{At: 300, Kind: CoreHang},
		},
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestPlanJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   `{"events":[{"at":1,"kind":"cosmic-ray"}]}`,
		"negative cycle": `{"events":[{"at":-5,"kind":"dram-bit-flip"}]}`,
		"unknown field":  `{"events":[],"bogus":1}`,
	}
	for name, js := range cases {
		if _, err := ReadPlan(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted %s", name, js)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if inj.Remaining() != 0 || inj.Injected() != 0 {
		t.Fatal("nil injector has state")
	}
	inj.Observe(100)
	if _, ok := inj.Take(DRAMBitFlip, 1000); ok {
		t.Fatal("nil injector produced an event")
	}
	if _, ok := inj.TakeAt(SpadBitFlip); ok {
		t.Fatal("nil injector produced an event via TakeAt")
	}
}

func TestInjectorOrderingAndClock(t *testing.T) {
	stats := sim.NewStats()
	inj := NewInjector(Plan{Events: []Event{
		{At: 300, Kind: DRAMBitFlip, Sel: 3},
		{At: 100, Kind: DRAMBitFlip, Sel: 1},
		{At: 200, Kind: NoCDrop},
	}}, stats)

	if !inj.Enabled() || inj.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", inj.Remaining())
	}
	// Nothing due before its cycle.
	if _, ok := inj.Take(DRAMBitFlip, 99); ok {
		t.Fatal("event fired before its cycle")
	}
	// Events of one kind pop oldest first regardless of plan order.
	ev, ok := inj.Take(DRAMBitFlip, 1000)
	if !ok || ev.Sel != 1 {
		t.Fatalf("first pop = %+v, want Sel 1", ev)
	}
	ev, ok = inj.Take(DRAMBitFlip, 1000)
	if !ok || ev.Sel != 3 {
		t.Fatalf("second pop = %+v, want Sel 3", ev)
	}
	// TakeAt uses the high-water clock (1000 from the Takes above).
	if _, ok := inj.TakeAt(NoCDrop); !ok {
		t.Fatal("TakeAt missed a due event")
	}
	if inj.Enabled() || inj.Remaining() != 0 || inj.Injected() != 3 {
		t.Fatalf("drained injector: remaining %d injected %d", inj.Remaining(), inj.Injected())
	}
	snap := stats.Snapshot()
	if snap[sim.CtrFaultsInjected] != 3 {
		t.Fatalf("%s = %d, want 3", sim.CtrFaultsInjected, snap[sim.CtrFaultsInjected])
	}
	if snap[sim.CtrFaultsInjected+".dram-bit-flip"] != 2 {
		t.Fatalf("per-kind counter = %d, want 2", snap[sim.CtrFaultsInjected+".dram-bit-flip"])
	}
}

func TestEventPick(t *testing.T) {
	e := Event{Sel: 10}
	if e.Pick(4) != 2 {
		t.Fatalf("Pick(4) = %d, want 2", e.Pick(4))
	}
	if e.Pick(0) != 0 {
		t.Fatal("Pick(0) must not divide by zero")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	rates := UniformRates(50)
	a := Generate(7, 1_000_000, rates)
	b := Generate(7, 1_000_000, rates)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Generate(8, 1_000_000, rates)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("rate 50/Mcyc over 1M cycles generated nothing")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("events unsorted at %d: %+v after %+v", i, a.Events[i], a.Events[i-1])
		}
	}
	for _, ev := range a.Events {
		if ev.At > 1_000_000 {
			t.Fatalf("event past horizon: %+v", ev)
		}
	}
}
