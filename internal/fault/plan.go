package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Plan is a fault schedule: either handwritten (explicit JSON) or
// generated from a seed and per-site rates. The zero value is the
// empty plan — installing it changes nothing.
type Plan struct {
	// Seed records the generator seed (0 for handwritten plans); it is
	// carried for reproducibility reporting only.
	Seed int64 `json:"seed,omitempty"`
	// Events is the schedule. Order does not matter; the injector
	// sorts per kind by cycle.
	Events []Event `json:"events"`
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// jsonEvent is the wire form: kinds travel as strings so plans are
// hand-editable.
type jsonEvent struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`
	Sel  uint64 `json:"sel,omitempty"`
	Bit  uint8  `json:"bit,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{At: int64(e.At), Kind: e.Kind.String(), Sel: e.Sel, Bit: e.Bit})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(b, &je); err != nil {
		return err
	}
	k, err := KindFromString(je.Kind)
	if err != nil {
		return err
	}
	if je.At < 0 {
		return fmt.Errorf("fault: event at negative cycle %d", je.At)
	}
	*e = Event{At: sim.Cycle(je.At), Kind: k, Sel: je.Sel, Bit: je.Bit}
	return nil
}

// ReadPlan decodes a JSON plan.
func ReadPlan(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: decoding plan: %w", err)
	}
	return p, nil
}

// WritePlan encodes a plan as indented JSON.
func WritePlan(w io.Writer, p Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Rates gives each fault kind an expected event count per million
// simulated cycles.
type Rates struct {
	DRAMBitFlip  float64
	NoCCorrupt   float64
	NoCDrop      float64
	NoCLinkDown  float64
	DMAStall     float64
	IOTLBCorrupt float64
	SpadBitFlip  float64
	CoreHang     float64
}

// UniformRates gives every kind except permanent link failure and
// core hang the same rate; the two catastrophic kinds get 1/10th of
// it (rare but present, as in field failure data).
func UniformRates(perMillion float64) Rates {
	return Rates{
		DRAMBitFlip:  perMillion,
		NoCCorrupt:   perMillion,
		NoCDrop:      perMillion,
		DMAStall:     perMillion,
		IOTLBCorrupt: perMillion,
		SpadBitFlip:  perMillion,
		NoCLinkDown:  perMillion / 10,
		CoreHang:     perMillion / 10,
	}
}

// TransientRates is UniformRates without permanent link failure: the
// resilience sweep's retry policy measures recovery from transient
// faults (hangs included — a wedged core clears on abort), and a
// downed NoC link would otherwise fail every subsequent attempt no
// matter the budget.
func TransientRates(perMillion float64) Rates {
	r := UniformRates(perMillion)
	r.NoCLinkDown = 0
	return r
}

func (r Rates) rate(k Kind) float64 {
	switch k {
	case DRAMBitFlip:
		return r.DRAMBitFlip
	case NoCCorrupt:
		return r.NoCCorrupt
	case NoCDrop:
		return r.NoCDrop
	case NoCLinkDown:
		return r.NoCLinkDown
	case DMAStall:
		return r.DMAStall
	case IOTLBCorrupt:
		return r.IOTLBCorrupt
	case SpadBitFlip:
		return r.SpadBitFlip
	case CoreHang:
		return r.CoreHang
	default:
		return 0
	}
}

// Generate builds a random plan over [0, horizon) from an explicit
// seed. The same (seed, horizon, rates) triple always yields the same
// plan; nothing reads the wall clock or global math/rand state.
func Generate(seed int64, horizon sim.Cycle, rates Rates) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}
	if horizon <= 0 {
		return p
	}
	for _, k := range Kinds() {
		rate := rates.rate(k)
		if rate <= 0 {
			continue
		}
		n := int(rate * float64(horizon) / 1e6)
		// Keep a fractional expectation alive at low rates so sweeps
		// do not silently round every bucket to zero.
		if frac := rate*float64(horizon)/1e6 - float64(n); rng.Float64() < frac {
			n++
		}
		for i := 0; i < n; i++ {
			p.Events = append(p.Events, Event{
				At:   sim.Cycle(rng.Int63n(int64(horizon))),
				Kind: k,
				Sel:  rng.Uint64(),
				Bit:  uint8(rng.Intn(64)),
			})
		}
	}
	sort.SliceStable(p.Events, func(i, j int) bool {
		if p.Events[i].At != p.Events[j].At {
			return p.Events[i].At < p.Events[j].At
		}
		return p.Events[i].Kind < p.Events[j].Kind
	})
	return p
}
