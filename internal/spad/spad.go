// Package spad models the NPU scratchpad: a software-managed,
// index-addressed SRAM with no association to system memory, extended
// with the paper's ID-based isolation (§IV-B, §V).
//
// Each wordline carries a small ID state (one bit for the two-domain
// default; the width is configurable per §VII "Multiple Secure
// Domains"). Two rule sets apply:
//
//   - Exclusive (core-local) scratchpad: reads require the line's ID to
//     match the accessing core's ID; writes are always allowed and
//     overwrite the line's ID with the writer's. This makes stale
//     secrets unreadable (LeftoverLocals) without any flushing.
//   - Shared (global) scratchpad: non-secure cores may neither read
//     nor write secure lines; a secure core's access forcibly sets the
//     touched line secure. A dedicated secure instruction resets lines
//     back to non-secure.
//
// The checks are combinational (same-cycle), so isolation adds zero
// runtime cost; the cost model for the *strawman* mechanisms (flushing
// with context save/restore, static partition) lives in flush.go.
package spad

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/tee"
)

// DomainID is a wordline's (or core's) security-domain tag. Domain 0
// is the normal world; the default configuration has exactly one other
// domain (1 = secure), matching TrustZone-style partitioning.
type DomainID uint8

const (
	// NonSecure is the normal-world domain tag.
	NonSecure DomainID = 0
	// SecureDomain is the default secure-world domain tag.
	SecureDomain DomainID = 1
)

// Kind selects which access-rule set a scratchpad enforces.
type Kind uint8

const (
	// Exclusive is a core-local scratchpad (input/output scratchpad in
	// Gemmini terms).
	Exclusive Kind = iota
	// Shared is a globally visible scratchpad (or the accumulator
	// banks shared across cores).
	Shared
)

func (k Kind) String() string {
	if k == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// ErrIsolation is returned when the ID-state rules deny an access.
var ErrIsolation = errors.New("spad: access denied by ID-state isolation")

// ErrParity is returned when a read hits a wordline whose stored
// parity no longer matches its payload (an SRAM bit flip). The access
// fails closed; recovery is the task's to arrange (abort or restart
// from a checkpoint) — corrupted operands must never flow silently.
var ErrParity = errors.New("spad: wordline parity error")

// Config describes a scratchpad instance.
type Config struct {
	// Lines is the number of wordlines.
	Lines int
	// LineBytes is the payload per wordline (paper: 128b=16B for
	// input/output scratchpads, 512b=64B for accumulators).
	LineBytes int
	// Kind selects exclusive vs shared access rules.
	Kind Kind
	// IDBits is the width of the per-line domain tag (default 1).
	IDBits int
	// Isolated enables ID checking; false models the unprotected
	// baseline NPU (attacks succeed against it).
	Isolated bool
	// Parity arms per-wordline parity: writes stamp a parity byte,
	// reads verify it and fail closed on mismatch. Off models SRAM
	// without error detection (bit flips flow silently).
	Parity bool
}

// Scratchpad is one SRAM instance with per-line ID state.
type Scratchpad struct {
	cfg    Config
	data   []byte
	ids    []DomainID
	valid  []bool
	parity []uint8
	inj    *fault.Injector
	stats  *sim.Stats
}

// New builds a scratchpad; payload bytes are zero, all lines
// non-secure and invalid (never written).
func New(cfg Config, stats *sim.Stats) (*Scratchpad, error) {
	if cfg.Lines <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("spad: invalid geometry %d x %dB", cfg.Lines, cfg.LineBytes)
	}
	if cfg.IDBits == 0 {
		cfg.IDBits = 1
	}
	if cfg.IDBits < 1 || cfg.IDBits > 8 {
		return nil, fmt.Errorf("spad: IDBits %d out of range [1,8]", cfg.IDBits)
	}
	s := &Scratchpad{
		cfg:   cfg,
		data:  make([]byte, cfg.Lines*cfg.LineBytes),
		ids:   make([]DomainID, cfg.Lines),
		valid: make([]bool, cfg.Lines),
		stats: stats,
	}
	if cfg.Parity {
		s.parity = make([]uint8, cfg.Lines)
	}
	return s, nil
}

// AttachInjector points the scratchpad at a fault injector; bit-flip
// events fire at the next access after their scheduled cycle.
func (s *Scratchpad) AttachInjector(inj *fault.Injector) { s.inj = inj }

// ParityEnabled reports whether per-line parity is armed.
func (s *Scratchpad) ParityEnabled() bool { return s.cfg.Parity }

// Config returns the scratchpad's configuration.
func (s *Scratchpad) Config() Config { return s.cfg }

// Lines returns the wordline count.
func (s *Scratchpad) Lines() int { return s.cfg.Lines }

// LineBytes returns the payload bytes per wordline.
func (s *Scratchpad) LineBytes() int { return s.cfg.LineBytes }

// Bytes returns the total payload capacity.
func (s *Scratchpad) Bytes() int { return s.cfg.Lines * s.cfg.LineBytes }

func (s *Scratchpad) maxDomain() DomainID {
	return DomainID(1<<s.cfg.IDBits - 1)
}

func (s *Scratchpad) checkLine(line int) error {
	if line < 0 || line >= s.cfg.Lines {
		return fmt.Errorf("spad: line %d out of range (%d lines)", line, s.cfg.Lines)
	}
	return nil
}

func (s *Scratchpad) checkDomain(d DomainID) error {
	if d > s.maxDomain() {
		return fmt.Errorf("spad: domain %d exceeds %d-bit ID state", d, s.cfg.IDBits)
	}
	return nil
}

// LineID reports the current domain tag of a line.
func (s *Scratchpad) LineID(line int) DomainID {
	if line < 0 || line >= s.cfg.Lines {
		return 0
	}
	return s.ids[line]
}

// LineValid reports whether a line has ever been written.
func (s *Scratchpad) LineValid(line int) bool {
	if line < 0 || line >= s.cfg.Lines {
		return false
	}
	return s.valid[line]
}

// Read copies one wordline into dst (len(dst) capped at LineBytes),
// enforcing the ID rules for a core in domain `core`.
//
// Exclusive rule: a read is denied when the line's ID differs from the
// core's. Shared rule: a non-secure core is denied on any line tagged
// with a different (secure) domain; a secure core's read retags the
// line to its own domain.
//
// With Isolated=false (baseline NPU) the read always succeeds, even of
// stale lines written by another task — the LeftoverLocals bug.
func (s *Scratchpad) Read(core DomainID, line int, dst []byte) error {
	s.takeFaults()
	if err := s.checkLine(line); err != nil {
		return err
	}
	if err := s.checkDomain(core); err != nil {
		return err
	}
	if s.stats != nil {
		s.stats.Inc(sim.CtrSpadReads)
	}
	if s.cfg.Isolated {
		switch s.cfg.Kind {
		case Exclusive:
			if s.ids[line] != core {
				return s.deny("read", core, line)
			}
		case Shared:
			if s.ids[line] != core && core == NonSecure {
				return s.deny("read", core, line)
			}
			// A secure core touching a line claims it for its domain.
			s.ids[line] = core
		}
	}
	if err := s.VerifyParity(line); err != nil {
		return err
	}
	copy(dst, s.lineSlice(line))
	return nil
}

// Write stores src into a wordline.
//
// Exclusive rule: writes always succeed and retag the line with the
// writer's ID (forcible overwrite — the old secret is destroyed, not
// disclosed). Shared rule: a non-secure core may not overwrite a
// secure line; a secure core's write retags the line.
func (s *Scratchpad) Write(core DomainID, line int, src []byte) error {
	s.takeFaults()
	if err := s.checkLine(line); err != nil {
		return err
	}
	if err := s.checkDomain(core); err != nil {
		return err
	}
	if s.stats != nil {
		s.stats.Inc(sim.CtrSpadWrites)
	}
	if s.cfg.Isolated && s.cfg.Kind == Shared && s.ids[line] != core && core == NonSecure {
		return s.deny("write", core, line)
	}
	dst := s.lineSlice(line)
	n := copy(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	s.ids[line] = core
	s.valid[line] = true
	if s.parity != nil {
		s.parity[line] = lineParity(dst)
	}
	return nil
}

// takeFaults drains any scratchpad bit-flip events that have come due
// and applies them before the access proceeds. The line is chosen
// deterministically from the event's selector.
func (s *Scratchpad) takeFaults() {
	if !s.inj.Enabled() {
		return
	}
	for {
		ev, ok := s.inj.TakeAt(fault.SpadBitFlip)
		if !ok {
			return
		}
		s.InjectBitFlip(ev.Pick(s.cfg.Lines), ev.Bit)
	}
}

// InjectBitFlip flips one bit of a wordline's payload without updating
// the stored parity — exactly what an SRAM upset does.
func (s *Scratchpad) InjectBitFlip(line int, bit uint8) {
	if line < 0 || line >= s.cfg.Lines {
		return
	}
	b := int(bit) % (s.cfg.LineBytes * 8)
	s.lineSlice(line)[b/8] ^= 1 << uint(b%8)
}

// VerifyParity checks one wordline against its stored parity byte,
// counting and failing closed on mismatch. With parity disabled it
// always succeeds (the silent-corruption baseline).
func (s *Scratchpad) VerifyParity(line int) error {
	if s.parity == nil {
		return nil
	}
	if lineParity(s.lineSlice(line)) == s.parity[line] {
		return nil
	}
	if s.stats != nil {
		s.stats.Inc(sim.CtrSpadParityErrors)
	}
	return fmt.Errorf("%w: %s line %d", ErrParity, s.cfg.Kind, line)
}

func lineParity(b []byte) uint8 {
	var p uint8
	for _, x := range b {
		p ^= x
	}
	return p
}

func (s *Scratchpad) deny(op string, core DomainID, line int) error {
	if s.stats != nil {
		s.stats.Inc(sim.CtrSpadDenied)
	}
	return fmt.Errorf("%w: %s of %s line %d (tag %d) by core domain %d",
		ErrIsolation, op, s.cfg.Kind, line, s.ids[line], core)
}

func (s *Scratchpad) lineSlice(line int) []byte {
	return s.data[line*s.cfg.LineBytes : (line+1)*s.cfg.LineBytes]
}

// ResetSecure is the dedicated secure instruction that returns lines
// [from, to) to the non-secure domain, zeroing their payload so no
// secret outlives the retag. Only the secure world may issue it.
func (s *Scratchpad) ResetSecure(ctx tee.Context, from, to int) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if from < 0 || to > s.cfg.Lines || from > to {
		return fmt.Errorf("spad: reset range [%d,%d) out of bounds", from, to)
	}
	for line := from; line < to; line++ {
		dst := s.lineSlice(line)
		for i := range dst {
			dst[i] = 0
		}
		s.ids[line] = NonSecure
		s.valid[line] = false
		if s.parity != nil {
			s.parity[line] = 0
		}
	}
	return nil
}

// Claim is the dedicated secure instruction that assigns lines
// [from, to) to domain d, zeroing their payload first so nothing a
// previous owner wrote rides into the new domain. It is ResetSecure's
// dual: where ResetSecure returns lines to the normal world, Claim
// hands them to a named domain (the monitor uses it to carve resident
// KV-cache windows tagged with per-task ID bits, §IV-B / §VII
// "Multiple Secure Domains"). Only the secure world may issue it, and
// the target domain must fit the configured ID width.
func (s *Scratchpad) Claim(ctx tee.Context, from, to int, d DomainID) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if err := s.checkDomain(d); err != nil {
		return err
	}
	if from < 0 || to > s.cfg.Lines || from > to {
		return fmt.Errorf("spad: claim range [%d,%d) out of bounds", from, to)
	}
	for line := from; line < to; line++ {
		dst := s.lineSlice(line)
		for i := range dst {
			dst[i] = 0
		}
		s.ids[line] = d
		s.valid[line] = false
		if s.parity != nil {
			s.parity[line] = 0
		}
	}
	return nil
}

// Reset power-cycles the scratchpad for arena-style reuse: every
// payload byte is zeroed, every line returns to the non-secure domain
// and the never-written state, stored parity is cleared, and any fault
// injector is detached. This is strictly stronger than ResetSecure over
// the full range (which needs a secure context and leaves valid bits
// semantics to the ID rules) — a pooled SoC handed to the next
// experiment cell must be indistinguishable from a freshly built one,
// including to a tenant probing for LeftoverLocals residue.
func (s *Scratchpad) Reset() {
	clear(s.data)
	clear(s.ids)
	clear(s.valid)
	if s.parity != nil {
		clear(s.parity)
	}
	s.inj = nil
}

// CountDomain reports how many lines are tagged with domain d.
func (s *Scratchpad) CountDomain(d DomainID) int {
	n := 0
	for _, id := range s.ids {
		if id == d {
			n++
		}
	}
	return n
}
