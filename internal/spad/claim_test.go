package spad

import (
	"errors"
	"testing"

	"repro/internal/tee"
)

func claimTestSpad(t *testing.T, idBits int) (*Scratchpad, tee.Context) {
	t.Helper()
	sp, err := New(Config{Lines: 64, LineBytes: 16, Kind: Exclusive, IDBits: idBits, Isolated: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	machine := tee.NewMachine(nil)
	return sp, machine.SecureContext()
}

func TestClaimRetagsAndZeroes(t *testing.T) {
	sp, ctx := claimTestSpad(t, 4)
	// Leave residue from the secure world in the target range.
	if err := sp.Write(SecureDomain, 10, []byte("old-secret")); err != nil {
		t.Fatal(err)
	}
	const kvDom = DomainID(3)
	if err := sp.Claim(ctx, 8, 16, kvDom); err != nil {
		t.Fatalf("claim: %v", err)
	}
	for line := 8; line < 16; line++ {
		if sp.LineID(line) != kvDom {
			t.Fatalf("line %d tagged %d, want %d", line, sp.LineID(line), kvDom)
		}
		if sp.LineValid(line) {
			t.Fatalf("line %d still valid after claim", line)
		}
	}
	// The residue is gone: the new domain reads zeroes after writing.
	buf := make([]byte, 16)
	if err := sp.Write(kvDom, 10, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Read(kvDom, 10, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf[1:] {
		if b != 0 {
			t.Fatalf("byte %d survived the claim: %#x", i+1, b)
		}
	}
}

func TestClaimedLinesDenyOtherDomains(t *testing.T) {
	sp, ctx := claimTestSpad(t, 4)
	const kvDom = DomainID(2)
	if err := sp.Claim(ctx, 0, 8, kvDom); err != nil {
		t.Fatal(err)
	}
	if err := sp.Write(kvDom, 4, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for _, probe := range []DomainID{NonSecure, SecureDomain, 5} {
		if err := sp.Read(probe, 4, buf); !errors.Is(err, ErrIsolation) {
			t.Fatalf("domain %d read of claimed line: err=%v, want ErrIsolation", probe, err)
		}
	}
	// ResetSecure still reclaims claimed lines for the normal world.
	if err := sp.ResetSecure(ctx, 0, 8); err != nil {
		t.Fatal(err)
	}
	if n := sp.CountDomain(kvDom); n != 0 {
		t.Fatalf("%d lines still tagged %d after ResetSecure", n, kvDom)
	}
}

func TestClaimRequiresSecureContextAndValidRange(t *testing.T) {
	sp, ctx := claimTestSpad(t, 2)
	machine := tee.NewMachine(nil)
	if err := sp.Claim(machine.NormalContext(), 0, 4, 2); err == nil {
		t.Fatal("non-secure claim accepted")
	}
	if err := sp.Claim(ctx, -1, 4, 2); err == nil {
		t.Fatal("negative range accepted")
	}
	if err := sp.Claim(ctx, 0, sp.Lines()+1, 2); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
	if err := sp.Claim(ctx, 0, 4, 9); err == nil {
		t.Fatal("domain beyond 2-bit ID state accepted")
	}
}
