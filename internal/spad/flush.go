package spad

import "repro/internal/sim"

// This file models the two strawman scratchpad protections the paper
// compares against (Table I, Fig. 14, Fig. 15): flushing with context
// save/restore, and static partitioning. Neither adds hardware; both
// cost performance or utilization, which is what the experiments
// measure.

// FlushGranularity selects how often a time-shared NPU flushes the
// scratchpad between tasks (Fig. 14).
type FlushGranularity int

const (
	// FlushNone disables flushing (baseline / sNPU — ID isolation
	// removes the need to flush).
	FlushNone FlushGranularity = iota
	// FlushPerTile flushes at op-kernel (tile) boundaries.
	FlushPerTile
	// FlushPerLayer flushes at layer boundaries.
	FlushPerLayer
	// FlushPer5Layers flushes every five layers.
	FlushPer5Layers
)

func (g FlushGranularity) String() string {
	switch g {
	case FlushNone:
		return "none"
	case FlushPerTile:
		return "tile"
	case FlushPerLayer:
		return "layer"
	case FlushPer5Layers:
		return "5-layers"
	default:
		return "unknown"
	}
}

// FlushCost computes the critical-path cycle cost of one flush event
// ("flushing is not just zeroing out the contents ... but needs to
// save and restore the task's context"). The save of the dirty bytes
// serializes before the next task may touch the scratchpad; the
// restore happens at the evicted task's next resume and overlaps its
// own re-issued tile loads, so only the save sits on the critical
// path. liveBytes is the dirty footprint; bandwidth is DRAM
// bytes/cycle; latency is the per-DMA-batch fixed cost.
func FlushCost(liveBytes uint64, bandwidthBytesPerCycle uint64, dmaLatency sim.Cycle, stats *sim.Stats) sim.Cycle {
	if liveBytes == 0 {
		return 0
	}
	if bandwidthBytesPerCycle == 0 {
		bandwidthBytesPerCycle = 1
	}
	cycles := sim.Cycle(liveBytes/bandwidthBytesPerCycle) + dmaLatency
	if stats != nil {
		// Save now + restore later: 2x total traffic.
		stats.Add(sim.CtrSpadFlushBytes, int64(2*liveBytes))
	}
	return cycles
}

// Partition is a static split of a scratchpad between the trusted and
// untrusted worlds (Fig. 6(a), Fig. 15): the trusted task owns
// [0, Boundary) lines, the untrusted task owns the rest. The split is
// fixed at configuration time; fragmentation and misfit are the cost.
type Partition struct {
	TotalLines int
	Boundary   int // first untrusted line
}

// NewPartition splits lines so the trusted world owns the given
// fraction (e.g., 0.25, 0.5, 0.75).
func NewPartition(totalLines int, trustedFraction float64) Partition {
	b := int(float64(totalLines) * trustedFraction)
	if b < 0 {
		b = 0
	}
	if b > totalLines {
		b = totalLines
	}
	return Partition{TotalLines: totalLines, Boundary: b}
}

// TrustedLines reports the trusted share.
func (p Partition) TrustedLines() int { return p.Boundary }

// UntrustedLines reports the untrusted share.
func (p Partition) UntrustedLines() int { return p.TotalLines - p.Boundary }

// Allows reports whether a world's access to a line respects the
// static split (secure domain maps to the trusted share).
func (p Partition) Allows(d DomainID, line int) bool {
	if line < 0 || line >= p.TotalLines {
		return false
	}
	if d == NonSecure {
		return line >= p.Boundary
	}
	return line < p.Boundary
}
