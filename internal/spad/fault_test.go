package spad

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func parityPad(t *testing.T, stats *sim.Stats) *Scratchpad {
	t.Helper()
	sp, err := New(Config{Lines: 64, LineBytes: 16, Kind: Exclusive, Isolated: true, Parity: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParityDetectsBitFlipFailClosed(t *testing.T) {
	stats := sim.NewStats()
	sp := parityPad(t, stats)
	line := make([]byte, 16)
	copy(line, "sixteen byte row")
	if err := sp.Write(NonSecure, 5, line); err != nil {
		t.Fatal(err)
	}
	// Clean read passes.
	dst := make([]byte, 16)
	if err := sp.Read(NonSecure, 5, dst); err != nil {
		t.Fatal(err)
	}

	sp.InjectBitFlip(5, 11)
	err := sp.Read(NonSecure, 5, dst)
	if !errors.Is(err, ErrParity) {
		t.Fatalf("read of damaged line: %v, want ErrParity", err)
	}
	if stats.Get(sim.CtrSpadParityErrors) != 1 {
		t.Fatalf("%s = %d", sim.CtrSpadParityErrors, stats.Get(sim.CtrSpadParityErrors))
	}
}

// A rewrite restamps parity: damage does not outlive the data.
func TestParityRecoversOnRewrite(t *testing.T) {
	sp := parityPad(t, sim.NewStats())
	line := make([]byte, 16)
	if err := sp.Write(NonSecure, 3, line); err != nil {
		t.Fatal(err)
	}
	sp.InjectBitFlip(3, 0)
	if err := sp.Write(NonSecure, 3, line); err != nil {
		t.Fatal(err)
	}
	if err := sp.Read(NonSecure, 3, make([]byte, 16)); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

// Without parity the flip flows silently — the undetected-corruption
// baseline.
func TestNoParityIsSilent(t *testing.T) {
	sp, err := New(Config{Lines: 64, LineBytes: 16, Kind: Exclusive, Isolated: true}, sim.NewStats())
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 16)
	if err := sp.Write(NonSecure, 7, line); err != nil {
		t.Fatal(err)
	}
	sp.InjectBitFlip(7, 20)
	dst := make([]byte, 16)
	if err := sp.Read(NonSecure, 7, dst); err != nil {
		t.Fatalf("no-parity read failed: %v", err)
	}
	if dst[2] == 0 {
		t.Fatal("corruption did not reach the reader")
	}
}

// An injector-scheduled scratchpad fault fires on the access stream
// and is caught by parity on the read of the victim line.
func TestInjectorDrivenSpadFault(t *testing.T) {
	stats := sim.NewStats()
	sp := parityPad(t, stats)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.SpadBitFlip, Sel: 9, Bit: 4}, // Sel % 64 lines = line 9
	}}, stats)
	sp.AttachInjector(inj)

	if err := sp.Write(NonSecure, 9, make([]byte, 16)); err != nil {
		// The event fires on this first access (before the store), the
		// store restamps parity — so schedule matters; tolerate either
		// clean write path.
		t.Fatal(err)
	}
	// Arm again via a fresh event now that line 9 holds data.
	inj2 := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.SpadBitFlip, Sel: 9, Bit: 4},
	}}, stats)
	sp.AttachInjector(inj2)
	err := sp.Read(NonSecure, 9, make([]byte, 16))
	if !errors.Is(err, ErrParity) {
		t.Fatalf("injector-driven fault: %v, want ErrParity", err)
	}
	if inj2.Injected() != 1 {
		t.Fatalf("injected = %d", inj2.Injected())
	}
}
