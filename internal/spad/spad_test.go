package spad

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tee"
)

func newSpad(t *testing.T, kind Kind, isolated bool) *Scratchpad {
	t.Helper()
	s, err := New(Config{Lines: 64, LineBytes: 16, Kind: kind, Isolated: isolated}, sim.NewStats())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func secureCtx() tee.Context {
	return tee.NewMachine(mem.NewPhysical()).SecureContext()
}

func normalCtx() tee.Context {
	return tee.NewMachine(mem.NewPhysical()).NormalContext()
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Config{Lines: 0, LineBytes: 16}, nil); err == nil {
		t.Fatal("zero lines accepted")
	}
	if _, err := New(Config{Lines: 4, LineBytes: 0}, nil); err == nil {
		t.Fatal("zero line bytes accepted")
	}
	if _, err := New(Config{Lines: 4, LineBytes: 16, IDBits: 9}, nil); err == nil {
		t.Fatal("9-bit ID accepted")
	}
}

func TestExclusiveReadDeniedAcrossDomains(t *testing.T) {
	s := newSpad(t, Exclusive, true)
	secret := []byte("confidential xyz")
	if err := s.Write(SecureDomain, 3, secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	err := s.Read(NonSecure, 3, buf)
	if !errors.Is(err, ErrIsolation) {
		t.Fatalf("cross-domain read allowed: %v", err)
	}
	// Owner can read.
	if err := s.Read(SecureDomain, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, secret) {
		t.Fatalf("payload mismatch: %q", buf)
	}
}

func TestExclusiveForcibleWriteRetags(t *testing.T) {
	s := newSpad(t, Exclusive, true)
	if err := s.Write(SecureDomain, 5, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Non-secure write is allowed and takes ownership.
	if err := s.Write(NonSecure, 5, []byte("mine")); err != nil {
		t.Fatalf("forcible write denied: %v", err)
	}
	if s.LineID(5) != NonSecure {
		t.Fatal("write did not retag line")
	}
	buf := make([]byte, 16)
	if err := s.Read(NonSecure, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("mine")) {
		t.Fatalf("payload = %q", buf)
	}
	// The old secret must be gone (write zero-fills the tail).
	if bytes.Contains(buf, []byte("secret")) {
		t.Fatal("stale secret survived forcible write")
	}
}

func TestSharedRulesDenyNonSecureBothWays(t *testing.T) {
	s := newSpad(t, Shared, true)
	if err := s.Write(SecureDomain, 7, []byte("weights")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := s.Read(NonSecure, 7, buf); !errors.Is(err, ErrIsolation) {
		t.Fatalf("non-secure read of secure shared line: %v", err)
	}
	if err := s.Write(NonSecure, 7, []byte("evil")); !errors.Is(err, ErrIsolation) {
		t.Fatalf("non-secure write of secure shared line: %v", err)
	}
	// Secure core may access non-secure lines and claims them.
	if err := s.Write(NonSecure, 8, []byte("public")); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(SecureDomain, 8, buf); err != nil {
		t.Fatal(err)
	}
	if s.LineID(8) != SecureDomain {
		t.Fatal("secure access did not claim shared line")
	}
}

func TestBaselineLeaksStaleData(t *testing.T) {
	// The unprotected scratchpad is the LeftoverLocals vulnerability:
	// a non-secure reader recovers the victim's bytes.
	s := newSpad(t, Exclusive, false)
	secret := []byte("llm session data")
	if err := s.Write(SecureDomain, 0, secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := s.Read(NonSecure, 0, buf); err != nil {
		t.Fatalf("baseline denied read: %v", err)
	}
	if !bytes.Equal(buf, secret) {
		t.Fatal("baseline should leak the stale payload")
	}
}

func TestResetSecureRequiresSecureInstruction(t *testing.T) {
	s := newSpad(t, Shared, true)
	if err := s.Write(SecureDomain, 1, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetSecure(normalCtx(), 0, 8); !errors.Is(err, tee.ErrPrivilege) {
		t.Fatalf("normal world reset secure lines: %v", err)
	}
	if err := s.ResetSecure(secureCtx(), 0, 8); err != nil {
		t.Fatal(err)
	}
	if s.LineID(1) != NonSecure {
		t.Fatal("line not retagged non-secure")
	}
	buf := make([]byte, 16)
	if err := s.Read(NonSecure, 1, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("reset leaked payload bytes")
		}
	}
	if err := s.ResetSecure(secureCtx(), 5, 3); err == nil {
		t.Fatal("inverted reset range accepted")
	}
	if err := s.ResetSecure(secureCtx(), 0, 1000); err == nil {
		t.Fatal("out-of-bounds reset accepted")
	}
}

func TestLineBounds(t *testing.T) {
	s := newSpad(t, Exclusive, true)
	if err := s.Read(NonSecure, -1, nil); err == nil {
		t.Fatal("negative line read accepted")
	}
	if err := s.Write(NonSecure, 64, nil); err == nil {
		t.Fatal("out-of-range line write accepted")
	}
	if s.LineID(-5) != 0 || s.LineValid(99) {
		t.Fatal("out-of-range metadata probes misbehaved")
	}
}

func TestMultiDomainIDBits(t *testing.T) {
	s, err := New(Config{Lines: 8, LineBytes: 16, Kind: Exclusive, Isolated: true, IDBits: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four domains fit in 2 bits.
	for d := DomainID(0); d < 4; d++ {
		if err := s.Write(d, int(d), []byte{byte(d)}); err != nil {
			t.Fatalf("domain %d write: %v", d, err)
		}
	}
	// Domain 5 exceeds the tag width.
	if err := s.Write(5, 0, []byte{1}); err == nil {
		t.Fatal("domain beyond ID width accepted")
	}
	// Cross-domain reads denied pairwise.
	buf := make([]byte, 16)
	if err := s.Read(2, 3, buf); !errors.Is(err, ErrIsolation) {
		t.Fatalf("cross-domain read in multi-domain mode: %v", err)
	}
}

func TestCountDomain(t *testing.T) {
	s := newSpad(t, Exclusive, true)
	for i := 0; i < 10; i++ {
		if err := s.Write(SecureDomain, i, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if s.CountDomain(SecureDomain) != 10 {
		t.Fatalf("secure lines = %d", s.CountDomain(SecureDomain))
	}
	if s.CountDomain(NonSecure) != 54 {
		t.Fatalf("non-secure lines = %d", s.CountDomain(NonSecure))
	}
}

// Property (the paper's core isolation invariant): under any
// interleaving of reads/writes/resets by a secure and a non-secure
// actor, a non-secure read NEVER returns bytes last written by the
// secure domain.
func TestIsolationInvariantUnderRandomOps(t *testing.T) {
	for _, kind := range []Kind{Exclusive, Shared} {
		kind := kind
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			s, err := New(Config{Lines: 16, LineBytes: 8, Kind: kind, Isolated: true}, nil)
			if err != nil {
				return false
			}
			ctx := secureCtx()
			// lastWriter[i] tracks which domain's data sits in line i.
			lastWriter := make([]DomainID, 16)
			for op := 0; op < 500; op++ {
				line := rng.Intn(16)
				dom := DomainID(rng.Intn(2))
				switch rng.Intn(4) {
				case 0: // write
					payload := []byte{byte(dom), byte(op), 0xAA}
					if err := s.Write(dom, line, payload); err == nil {
						lastWriter[line] = dom
					}
				case 1: // read
					buf := make([]byte, 8)
					if err := s.Read(dom, line, buf); err == nil {
						if dom == NonSecure && lastWriter[line] == SecureDomain {
							return false // leak!
						}
						// Shared-kind secure reads claim the line.
						if kind == Shared && dom == SecureDomain {
							// data content unchanged; ownership moves but
							// lastWriter tracks payload origin, keep it.
							_ = ctx
						}
					}
				case 2: // secure reset of a random range
					from := rng.Intn(16)
					to := from + rng.Intn(16-from)
					if err := s.ResetSecure(ctx, from, to); err == nil {
						for i := from; i < to; i++ {
							lastWriter[i] = NonSecure // zeroed
						}
					}
				case 3: // metadata probes never mutate
					s.LineID(line)
					s.LineValid(line)
					s.CountDomain(dom)
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
	}
}

func TestFlushCost(t *testing.T) {
	stats := sim.NewStats()
	c := FlushCost(256<<10, 16, 100, stats)
	// Critical path: save 256KB at 16B/cycle + one DMA latency.
	if c != 16384+100 {
		t.Fatalf("flush cost = %d", c)
	}
	if stats.Get(sim.CtrSpadFlushBytes) != 512<<10 {
		t.Fatal("flush traffic not counted")
	}
	if FlushCost(0, 16, 100, stats) != 0 {
		t.Fatal("empty flush should be free")
	}
	if FlushCost(16, 0, 0, nil) <= 0 {
		t.Fatal("zero-bandwidth flush should still cost")
	}
}

func TestFlushGranularityString(t *testing.T) {
	for g, want := range map[FlushGranularity]string{
		FlushNone: "none", FlushPerTile: "tile", FlushPerLayer: "layer",
		FlushPer5Layers: "5-layers", FlushGranularity(99): "unknown",
	} {
		if g.String() != want {
			t.Fatalf("%d -> %q, want %q", g, g.String(), want)
		}
	}
}

func TestPartition(t *testing.T) {
	p := NewPartition(100, 0.25)
	if p.TrustedLines() != 25 || p.UntrustedLines() != 75 {
		t.Fatalf("split = %d/%d", p.TrustedLines(), p.UntrustedLines())
	}
	if !p.Allows(SecureDomain, 0) || p.Allows(SecureDomain, 25) {
		t.Fatal("trusted boundary wrong")
	}
	if p.Allows(NonSecure, 24) || !p.Allows(NonSecure, 25) {
		t.Fatal("untrusted boundary wrong")
	}
	if p.Allows(NonSecure, -1) || p.Allows(SecureDomain, 100) {
		t.Fatal("out-of-range lines allowed")
	}
	// Clamping.
	if NewPartition(10, -1).TrustedLines() != 0 || NewPartition(10, 2).TrustedLines() != 10 {
		t.Fatal("fraction clamping broken")
	}
}
