package driver

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the Fig. 15 experiment surface: two workloads
// running in parallel on two cores that share the scratchpad capacity.
// Under static partition, each task's compiler sees a fixed fraction
// of the scratchpad forever. Under sNPU's ID-based isolation, the
// driver is free to pick ANY split (security no longer depends on the
// allocation strategy), so it can search for the best one per pair —
// the "total-best strategy" in the paper.

// SpatialPolicy decides the scratchpad split between the trusted (A)
// and untrusted (B) task.
type SpatialPolicy struct {
	Name string
	// FractionA is A's share of the scratchpad; <= 0 means "dynamic:
	// search for the total-best split".
	FractionA float64
}

// StaticPartitions are the paper's static configurations.
func StaticPartitions() []SpatialPolicy {
	return []SpatialPolicy{
		{Name: "static-1/4", FractionA: 0.25},
		{Name: "static-1/2", FractionA: 0.50},
		{Name: "static-3/4", FractionA: 0.75},
	}
}

// DynamicPolicy is sNPU's ID-based dynamic allocation.
func DynamicPolicy() SpatialPolicy {
	return SpatialPolicy{Name: "snpu-dynamic", FractionA: -1}
}

// SpatialResult reports one paired run.
type SpatialResult struct {
	Policy    string
	FractionA float64
	CyclesA   sim.Cycle
	CyclesB   sim.Cycle
	// SoloA/SoloB are the full-scratchpad solo baselines used to
	// normalize (zero when the caller did not supply them).
	SoloA, SoloB sim.Cycle
}

// Makespan is the later finish.
func (r SpatialResult) Makespan() sim.Cycle {
	if r.CyclesA > r.CyclesB {
		return r.CyclesA
	}
	return r.CyclesB
}

// Objective is what the total-best strategy minimizes: the worse of
// the two tasks' slowdowns relative to their solo runs (so a short
// task is not starved just because the long task dominates absolute
// time). Without solo baselines it degrades to the raw makespan.
func (r SpatialResult) Objective() float64 {
	if r.SoloA <= 0 || r.SoloB <= 0 {
		return float64(r.Makespan())
	}
	a := float64(r.CyclesA) / float64(r.SoloA)
	b := float64(r.CyclesB) / float64(r.SoloB)
	if a > b {
		return a
	}
	return b
}

// dynamicFractions is the split candidate set the driver searches
// under ID-based isolation. It includes the static fractions, so the
// dynamic policy can never lose to them on the same objective.
var dynamicFractions = []float64{0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8}

// RunSpatialPair runs modelA (trusted) on core 0 and modelB
// (untrusted) on core 1 of n, with the scratchpad split per policy.
// Both cores contend on the shared DRAM channel, which is what couples
// their runtimes. soloA/soloB are the full-scratchpad solo baselines
// (pass 0 to optimize raw makespan instead). The caller passes a fresh
// NPU (or calls ResetTiming) per invocation so runs do not contend
// with history.
func RunSpatialPair(n *npu.NPU, modelA, modelB workload.Workload, policy SpatialPolicy, soloA, soloB sim.Cycle) (SpatialResult, error) {
	if policy.FractionA > 0 {
		r, err := runSplit(n, modelA, modelB, policy.Name, policy.FractionA)
		r.SoloA, r.SoloB = soloA, soloB
		return r, err
	}
	// Dynamic: search candidate splits for the best objective. The
	// search is the driver's business — with ID-based isolation any
	// split is equally secure.
	var best SpatialResult
	first := true
	for _, frac := range dynamicFractions {
		n.ResetTiming()
		r, err := runSplit(n, modelA, modelB, policy.Name, frac)
		if err != nil {
			return SpatialResult{}, err
		}
		r.SoloA, r.SoloB = soloA, soloB
		if first || r.Objective() < best.Objective() {
			best = r
			first = false
		}
	}
	return best, nil
}

func runSplit(n *npu.NPU, modelA, modelB workload.Workload, name string, fracA float64) (SpatialResult, error) {
	cfg := n.Config()
	budgetA := int(float64(cfg.SpadBytes) * fracA)
	budgetB := cfg.SpadBytes - budgetA
	progA, _, err := npu.CompileCached(modelA, cfg, budgetA, npu.DefaultLayout)
	if err != nil {
		return SpatialResult{}, fmt.Errorf("driver: compile %s@%.2f: %w", modelA.Name, fracA, err)
	}
	progB, _, err := npu.CompileCached(modelB, cfg, budgetB, npu.DefaultLayout)
	if err != nil {
		return SpatialResult{}, fmt.Errorf("driver: compile %s@%.2f: %w", modelB.Name, 1-fracA, err)
	}
	coreA, err := n.Core(0)
	if err != nil {
		return SpatialResult{}, err
	}
	coreB, err := n.Core(1)
	if err != nil {
		return SpatialResult{}, err
	}
	// Interleave the two executions tile-by-tile so DRAM-channel
	// contention is mutual rather than sequential.
	exA := npu.NewExec(coreA, progA, 101)
	exB := npu.NewExec(coreB, progB, 102)
	var nowA, nowB sim.Cycle
	var endA, endB sim.Cycle
	for !exA.Done() || !exB.Done() {
		// Advance whichever task is behind, one tile at a time.
		if !exA.Done() && (exB.Done() || nowA <= nowB) {
			end, err := exA.RunUntil(nowA, npu.BoundaryTile)
			if err != nil {
				return SpatialResult{}, err
			}
			nowA = end
			if exA.Done() {
				endA = end
			}
			continue
		}
		if !exB.Done() {
			end, err := exB.RunUntil(nowB, npu.BoundaryTile)
			if err != nil {
				return SpatialResult{}, err
			}
			nowB = end
			if exB.Done() {
				endB = end
			}
		}
	}
	return SpatialResult{Policy: name, FractionA: fracA, CyclesA: endA, CyclesB: endB}, nil
}
