package driver

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spad"
)

func TestPreemptionLatencyOrdering(t *testing.T) {
	// Finer switching granularity must deliver lower preemption
	// latency; coarser flushing buys throughput at the cost of SLA.
	d, n := testSetup(t)
	core, _ := n.Core(0)
	low, err := d.Submit(smallWorkload("low"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	arrival := sim.Cycle(15_000) // mid-run: the small workload takes ~47k cycles solo
	latency := func(gran spad.FlushGranularity, flush bool) sim.Cycle {
		n.ResetTiming()
		r, err := d.SLAProbe(core, low, gran, flush, arrival)
		if err != nil {
			t.Fatal(err)
		}
		if r.StartCycle < r.ArrivalCycle {
			t.Fatalf("started before arrival: %+v", r)
		}
		return r.Latency()
	}
	snpuTile := latency(spad.FlushNone, false)
	flushTile := latency(spad.FlushPerTile, true)
	coarse := latency(spad.FlushPer5Layers, true)
	if snpuTile > flushTile {
		t.Fatalf("sNPU tile switch (%d) slower than flushing tile switch (%d)", snpuTile, flushTile)
	}
	if flushTile >= coarse {
		t.Fatalf("tile preemption (%d) not faster than 5-layer preemption (%d)", flushTile, coarse)
	}
	// sNPU's preemption is bounded by one op-kernel, i.e. small.
	if snpuTile > 200_000 {
		t.Fatalf("sNPU preemption latency %d suspiciously large", snpuTile)
	}
}

func TestPreemptionAfterLowFinishes(t *testing.T) {
	d, n := testSetup(t)
	core, _ := n.Core(0)
	low, err := d.Submit(smallWorkload("low"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival far beyond the low task's completion: the core is idle,
	// latency must be ~0 (one op-kernel issue, no flush).
	r, err := d.SLAProbe(core, low, spad.FlushPer5Layers, true, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency() != 0 {
		t.Fatalf("idle-core preemption latency = %d, want 0", r.Latency())
	}
}

func TestSLAProbeNilTask(t *testing.T) {
	d, n := testSetup(t)
	core, _ := n.Core(0)
	if _, err := d.SLAProbe(core, nil, spad.FlushNone, false, 0); err == nil {
		t.Fatal("nil task accepted")
	}
}
