package driver

import (
	"testing"

	"repro/internal/sim"
)

func TestPriorityPreemptsLowTask(t *testing.T) {
	d, n := testSetup(t)
	core, _ := n.Core(0)
	low, err := d.Submit(smallWorkload("low"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	high, err := d.Submit(smallWorkload("high"), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunPriority(core, []PrioTask{
		{Task: low, Priority: 0, Arrival: 0},
		{Task: high, Priority: 10, Arrival: 10_000},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	// The high-priority task starts almost immediately on arrival.
	if res.StartDelay[1] > 50_000 {
		t.Fatalf("high-priority start delay = %d", res.StartDelay[1])
	}
	// It finishes before the preempted low task.
	if res.Finish[1] >= res.Finish[0] {
		t.Fatalf("high (%d) did not finish before low (%d)", res.Finish[1], res.Finish[0])
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemption recorded")
	}
	if res.FlushCycles != 0 {
		t.Fatal("flushless run paid flush cycles")
	}
}

func TestPriorityFlushCostsThroughput(t *testing.T) {
	run := func(flush bool) sim.Cycle {
		d, n := testSetup(t)
		core, _ := n.Core(0)
		a, err := d.Submit(smallWorkload("a"), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Submit(smallWorkload("b"), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		// Same priority: round-robin-ish interleave with many switches.
		res, err := d.RunPriority(core, []PrioTask{
			{Task: a, Priority: 1, Arrival: 0},
			{Task: b, Priority: 1, Arrival: 5_000},
		}, flush)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Cycle
		for _, f := range res.Finish {
			if f > last {
				last = f
			}
		}
		return last
	}
	if flushed, clean := run(true), run(false); flushed <= clean {
		t.Fatalf("flushing (%d) not slower than ID isolation (%d)", flushed, clean)
	}
}

func TestPriorityIdleGapAndValidation(t *testing.T) {
	d, n := testSetup(t)
	core, _ := n.Core(0)
	task, err := d.Submit(smallWorkload("x"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Single task arriving late: the scheduler idles until arrival.
	res, err := d.RunPriority(core, []PrioTask{{Task: task, Priority: 0, Arrival: 123_456}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartDelay[0] != 0 {
		t.Fatalf("late-arrival start delay = %d", res.StartDelay[0])
	}
	if res.Finish[0] <= 123_456 {
		t.Fatal("finished before it arrived")
	}
	if _, err := d.RunPriority(core, nil, false); err == nil {
		t.Fatal("empty task list accepted")
	}
	if _, err := d.RunPriority(core, []PrioTask{{}}, false); err == nil {
		t.Fatal("nil task accepted")
	}
}
