package driver

import (
	"fmt"
	"sort"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
)

// A priority-preemptive scheduler over one core: higher-priority tasks
// preempt at the next op-kernel boundary. Under sNPU's ID isolation
// the switch itself is free, so tight SLAs are achievable at tile
// granularity; under a flushing design every preemption pays the
// save/restore, so the same policy costs throughput.

// PrioTask wraps a task with its priority (higher runs first) and an
// arrival time.
type PrioTask struct {
	Task     *Task
	Priority int
	Arrival  sim.Cycle
}

// PrioResult reports a priority-scheduled run.
type PrioResult struct {
	// Finish[i] is when tasks[i] (input order) completed.
	Finish []sim.Cycle
	// StartDelay[i] is tasks[i]'s arrival-to-first-run latency (the
	// SLA figure per task).
	StartDelay []sim.Cycle
	// Preemptions counts higher-priority takeovers.
	Preemptions int
	// FlushCycles is the total scrub cost paid (0 without flushing).
	FlushCycles sim.Cycle
}

// RunPriority executes the tasks on one core under preemptive
// priority scheduling with tile-granularity switch points. flush
// selects the TrustZone-NPU strawman (scrub on every switch).
func (d *Driver) RunPriority(core *npu.Core, tasks []PrioTask, flush bool) (PrioResult, error) {
	if len(tasks) == 0 {
		return PrioResult{}, fmt.Errorf("driver: no tasks")
	}
	type runner struct {
		idx     int
		pt      PrioTask
		exec    *npu.Exec
		started bool
		start   sim.Cycle
		done    bool
		finish  sim.Cycle
	}
	runners := make([]*runner, len(tasks))
	for i, pt := range tasks {
		if pt.Task == nil {
			return PrioResult{}, fmt.Errorf("driver: nil task at %d", i)
		}
		runners[i] = &runner{idx: i, pt: pt, exec: npu.NewExec(core, pt.Task.Program, pt.Task.ID)}
	}
	// Deterministic priority order; stable for equal priorities.
	byPrio := append([]*runner(nil), runners...)
	sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].pt.Priority > byPrio[j].pt.Priority })

	res := PrioResult{
		Finish:     make([]sim.Cycle, len(tasks)),
		StartDelay: make([]sim.Cycle, len(tasks)),
	}
	var now sim.Cycle
	var last *runner
	remaining := len(tasks)
	for remaining > 0 {
		// Highest-priority arrived, unfinished task.
		var cur *runner
		for _, r := range byPrio {
			if !r.done && r.pt.Arrival <= now {
				cur = r
				break
			}
		}
		if cur == nil {
			// Idle until the next arrival.
			var next sim.Cycle = -1
			for _, r := range byPrio {
				if !r.done && (next < 0 || r.pt.Arrival < next) {
					next = r.pt.Arrival
				}
			}
			now = next
			continue
		}
		// Account the switch.
		if last != nil && last != cur {
			res.Preemptions++
			if d.stats != nil {
				d.stats.Inc(sim.CtrCtxSwitches)
			}
			if flush && !last.done {
				cost := spad.FlushCost(npu.FlushLiveBytes(last.pt.Task.Program),
					d.cfg.DRAMBytesPerCycle, d.cfg.DRAMLatency, d.stats)
				now += cost
				res.FlushCycles += cost
			}
		}
		if !cur.started {
			cur.started = true
			cur.start = now
			if cur.start < cur.pt.Arrival {
				cur.start = cur.pt.Arrival
			}
			res.StartDelay[cur.idx] = cur.start - cur.pt.Arrival
		}
		// Even without flushing, a task cannot issue work before it
		// arrived; with flushing it also waits for the scrub (now).
		from := cur.pt.Arrival
		if flush && now > from {
			from = now
		}
		end, err := cur.exec.RunUntil(from, npu.BoundaryTile)
		if err != nil {
			return PrioResult{}, err
		}
		now = end
		if cur.exec.Done() {
			cur.done = true
			cur.finish = end
			res.Finish[cur.idx] = end
			remaining--
		}
		last = cur
	}
	return res, nil
}
