package driver

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/workload"
)

func smallWorkload(name string) workload.Workload {
	return workload.Workload{
		Name: name,
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g0", M: 64, K: 256, N: 64}}},
			{Name: "l1", GEMMs: []workload.GEMM{{Name: "g1", M: 64, K: 64, N: 256}}},
			{Name: "l2", GEMMs: []workload.GEMM{{Name: "g2", M: 64, K: 128, N: 64}}},
			{Name: "l3", GEMMs: []workload.GEMM{{Name: "g3", M: 32, K: 256, N: 32}}},
			{Name: "l4", GEMMs: []workload.GEMM{{Name: "g4", M: 32, K: 128, N: 64}}},
			{Name: "l5", GEMMs: []workload.GEMM{{Name: "g5", M: 48, K: 192, N: 48}}},
		},
	}
}

func testSetup(t *testing.T) (*Driver, *npu.NPU) {
	t.Helper()
	cfg := npu.DefaultConfig()
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	n, err := npu.New(cfg, phys, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := New(cfg, 0x8800_0000, 256<<20, stats)
	return d, n
}

func TestSubmitAllocatesChunk(t *testing.T) {
	d, _ := testSetup(t)
	task, err := d.Submit(smallWorkload("a"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if task.ChunkSize == 0 || task.Chunk < 0x8800_0000 {
		t.Fatalf("chunk = %#x size %d", uint64(task.Chunk), task.ChunkSize)
	}
	if task.Program == nil || task.ID == 0 {
		t.Fatal("task not populated")
	}
	used := d.Reserved().UsedBytes()
	if used != task.ChunkSize {
		t.Fatalf("reserved used = %d, want %d", used, task.ChunkSize)
	}
	if err := d.Release(task); err != nil {
		t.Fatal(err)
	}
	if d.Reserved().UsedBytes() != 0 {
		t.Fatal("release leaked")
	}
}

func TestSubmitDistinctIDs(t *testing.T) {
	d, _ := testSetup(t)
	t1, err := d.Submit(smallWorkload("a"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.Submit(smallWorkload("b"), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID == t2.ID {
		t.Fatal("duplicate task IDs")
	}
	if t1.Chunk == t2.Chunk {
		t.Fatal("overlapping chunks")
	}
}

func TestRunSoloWithIOMMU(t *testing.T) {
	cfg := npu.DefaultConfig()
	stats := sim.NewStats()
	u := iommu.New(iommu.DefaultConfig(16), stats)
	n, err := npu.New(cfg, mem.NewPhysical(), stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := n.Core(0)
	core.DMA().SetTranslator(u)

	d := New(cfg, 0x8800_0000, 256<<20, stats)
	task, err := d.Submit(smallWorkload("a"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Unmapped -> faults.
	if _, err := d.RunSolo(core, task); err == nil {
		t.Fatal("unmapped task ran under IOMMU")
	}
	if err := d.MapTask(u, task); err != nil {
		t.Fatal(err)
	}
	cycles, err := d.RunSolo(core, task)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no runtime")
	}
}

func TestTimeSharedFlushCostOrdering(t *testing.T) {
	// tile-granularity flushing must cost more than 5-layer flushing,
	// which must cost more than no flushing at all.
	run := func(gran spad.FlushGranularity) sim.Cycle {
		d, n := testSetup(t)
		core, _ := n.Core(0)
		t1, err := d.Submit(smallWorkload("a"), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := d.Submit(smallWorkload("b"), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.RunTimeShared(core, []*Task{t1, t2}, gran, true)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan()
	}
	none := run(spad.FlushNone)
	five := run(spad.FlushPer5Layers)
	tile := run(spad.FlushPerTile)
	// Finer flushing costs more; no-flush tile sharing is cheapest at
	// the same (tile) switching granularity.
	if !(none < tile && five < tile) {
		t.Fatalf("flush ordering violated: none=%d 5layer=%d tile=%d", none, five, tile)
	}
}

func TestTimeSharedBothFinish(t *testing.T) {
	d, n := testSetup(t)
	core, _ := n.Core(0)
	t1, _ := d.Submit(smallWorkload("a"), 0, false)
	t2, _ := d.Submit(smallWorkload("b"), 0, false)
	res, err := d.RunTimeShared(core, []*Task{t1, t2}, spad.FlushPerLayer, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Finish {
		if f <= 0 {
			t.Fatalf("task %d never finished", i)
		}
	}
	if res.Switches == 0 {
		t.Fatal("no context switches in a time-shared run")
	}
	if res.FlushCycles <= 0 {
		t.Fatal("no flush cost recorded")
	}
	if err := func() error { _, err := d.RunTimeShared(core, nil, spad.FlushNone, false); return err }(); err == nil {
		t.Fatal("empty task list accepted")
	}
}

func TestSpatialStaticVsDynamic(t *testing.T) {
	cfg := npu.DefaultConfig()
	stats := sim.NewStats()
	n, err := npu.New(cfg, mem.NewPhysical(), stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := smallWorkload("a"), smallWorkload("b")
	var static []SpatialResult
	for _, pol := range StaticPartitions() {
		n.ResetTiming()
		r, err := RunSpatialPair(n, a, b, pol, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.CyclesA <= 0 || r.CyclesB <= 0 {
			t.Fatalf("%s: zero runtime", pol.Name)
		}
		static = append(static, r)
	}
	n.ResetTiming()
	dyn, err := RunSpatialPair(n, a, b, DynamicPolicy(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic policy searches splits including the static ones, so
	// its objective is never worse than the best static choice.
	for _, s := range static {
		if dyn.Objective() > s.Objective() {
			t.Fatalf("dynamic objective %v worse than %s %v", dyn.Objective(), s.Policy, s.Objective())
		}
	}
}

func TestSpatialResultMakespan(t *testing.T) {
	r := SpatialResult{CyclesA: 10, CyclesB: 20}
	if r.Makespan() != 20 {
		t.Fatal("makespan")
	}
	r = SpatialResult{CyclesA: 30, CyclesB: 20}
	if r.Makespan() != 30 {
		t.Fatal("makespan")
	}
}
