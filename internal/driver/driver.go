// Package driver is the *untrusted* NPU software stack: it allocates
// DMA buffer chunks from NPU-reserved memory (the ION/CMA analogue),
// compiles workloads into op streams, maps them for the access-control
// hardware, and schedules tasks onto cores — time-shared at op-kernel
// granularity or spatially across cores.
//
// Nothing in this package is in the TCB (the untrusted software of
// the paper's §III threat model). Secure tasks flow through the
// NPU Monitor (internal/monitor) instead; the driver merely transports
// them (the trampoline's untrusted end).
package driver

import (
	"fmt"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Task is one submitted inference job.
type Task struct {
	ID      int
	Model   workload.Workload
	Program *npu.Program
	Secure  bool
	// Chunk is the task's DMA buffer in NPU-reserved memory.
	Chunk     mem.PhysAddr
	ChunkSize uint64
}

// Driver is the untrusted NPU driver instance.
type Driver struct {
	cfg      npu.Config
	reserved *mem.ContigAlloc
	nextID   int
	stats    *sim.Stats
}

// New builds a driver over the NPU-reserved memory range.
func New(cfg npu.Config, reservedBase mem.PhysAddr, reservedSize uint64, stats *sim.Stats) *Driver {
	return &Driver{
		cfg:      cfg,
		reserved: mem.NewContigAlloc(reservedBase, reservedSize),
		nextID:   1,
		stats:    stats,
	}
}

// Reset returns the driver to its freshly constructed state: the
// reserved-memory allocator is emptied and task IDs restart at 1, so
// a recycled System submits tasks with the same IDs, layouts, and
// chunk addresses a fresh boot would — the determinism half of the
// pooling contract.
func (d *Driver) Reset() {
	d.reserved.Reset()
	d.nextID = 1
}

// Reserved exposes the reserved-memory allocator.
func (d *Driver) Reserved() *mem.ContigAlloc { return d.reserved }

// Submit compiles a workload under the given scratchpad budget (0 =
// whole scratchpad) and allocates its DMA chunk. Each task gets its
// own IOVA range (4 GiB apart) so concurrently mapped tasks never
// alias in the access-control hardware.
func (d *Driver) Submit(w workload.Workload, spadBudget int, secure bool) (*Task, error) {
	layout := LayoutFor(d.nextID)
	prog, _, err := npu.CompileCached(w, d.cfg, spadBudget, layout)
	if err != nil {
		return nil, err
	}
	lo, hi := prog.VASpan()
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PageAlignDown(mem.PhysAddr(lo)))
	chunk, err := d.reserved.Alloc(size, mem.PageSize)
	if err != nil {
		return nil, fmt.Errorf("driver: allocating %d-byte chunk: %w", size, err)
	}
	t := &Task{
		ID:        d.nextID,
		Model:     w,
		Program:   prog,
		Secure:    secure,
		Chunk:     chunk,
		ChunkSize: size,
	}
	d.nextID++
	return t, nil
}

// Release frees a task's chunk.
func (d *Driver) Release(t *Task) error {
	return d.reserved.Free(t.Chunk)
}

// LayoutFor is the per-task VA layout Submit would compile task `id`
// under: each id gets its own 4 GiB-apart IOVA range so concurrently
// mapped tasks never alias in the access-control hardware. Exposed so
// callers that compile programs out-of-band (the scheduler's parallel
// prepare phase) produce the same non-aliasing spans.
func LayoutFor(id int) npu.Layout {
	return npu.Layout{WeightBase: npu.DefaultLayout.WeightBase + mem.VirtAddr(uint64(id)<<32)}
}

// SubmitProgram registers an externally compiled program as a task,
// allocating only its DMA chunk. Compilation is pure, so callers may
// run it on a worker pool and then register results here sequentially
// — chunk addresses stay deterministic because the allocator sees one
// fixed registration order. The caller owns VA-span uniqueness (use
// LayoutFor).
func (d *Driver) SubmitProgram(w workload.Workload, prog *npu.Program, secure bool) (*Task, error) {
	lo, hi := prog.VASpan()
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PageAlignDown(mem.PhysAddr(lo)))
	chunk, err := d.reserved.Alloc(size, mem.PageSize)
	if err != nil {
		return nil, fmt.Errorf("driver: allocating %d-byte chunk: %w", size, err)
	}
	t := &Task{
		ID:        d.nextID,
		Model:     w,
		Program:   prog,
		Secure:    secure,
		Chunk:     chunk,
		ChunkSize: size,
	}
	d.nextID++
	return t, nil
}

// MapTask installs the IOMMU mappings for a task's VA span onto its
// chunk (the TrustZone-NPU path; with a Guarder, the monitor's context
// setter programs translation registers instead).
func (d *Driver) MapTask(u *iommu.IOMMU, t *Task) error {
	lo, _ := t.Program.VASpan()
	base := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
	return u.Table().MapRange(base, t.Chunk, t.ChunkSize, mem.PermRW, t.Secure)
}

// RunSolo executes one task alone on a core and reports its runtime.
func (d *Driver) RunSolo(core *npu.Core, t *Task) (sim.Cycle, error) {
	ex := npu.NewExec(core, t.Program, t.ID)
	return ex.Run(0)
}

// RunSoloTraced is RunSolo with a timeline recorder attached.
func (d *Driver) RunSoloTraced(core *npu.Core, t *Task, rec *trace.Recorder) (sim.Cycle, error) {
	ex := npu.NewExec(core, t.Program, t.ID)
	ex.Trace = rec
	return ex.Run(0)
}

// TimeShareResult reports a time-shared run.
type TimeShareResult struct {
	// Finish[i] is the cycle task i's program completed.
	Finish []sim.Cycle
	// Switches is the number of context switches taken.
	Switches int
	// FlushCycles is the total cycles spent saving/restoring
	// scratchpad context across switches.
	FlushCycles sim.Cycle
}

// Makespan is the last finish time.
func (r TimeShareResult) Makespan() sim.Cycle {
	var m sim.Cycle
	for _, f := range r.Finish {
		if f > m {
			m = f
		}
	}
	return m
}

// RunTimeShared round-robins the tasks on one core, switching at the
// given granularity and — when flush is true — paying the
// save/restore cost of each switch (Fig. 14). flush=false at the same
// granularity is sNPU's ID-isolated sharing: switches still happen,
// but no scrubbing is needed for security, so they cost nothing.
// gran == FlushNone selects tile-granularity switching with no flush
// regardless of the flag.
func (d *Driver) RunTimeShared(core *npu.Core, tasks []*Task, gran spad.FlushGranularity, flush bool) (TimeShareResult, error) {
	if gran == spad.FlushNone {
		flush = false
	}
	if len(tasks) == 0 {
		return TimeShareResult{}, fmt.Errorf("driver: no tasks")
	}
	execs := make([]*npu.Exec, len(tasks))
	bounds := make([]npu.Boundary, len(tasks))
	for i, t := range tasks {
		execs[i] = npu.NewExec(core, t.Program, t.ID)
		bounds[i] = boundaryFor(gran)
	}
	res := TimeShareResult{Finish: make([]sim.Cycle, len(tasks))}
	var now sim.Cycle
	remaining := len(tasks)
	cur := 0
	for remaining > 0 {
		if execs[cur].Done() {
			cur = (cur + 1) % len(tasks)
			continue
		}
		// Without flushing (sNPU's ID isolation) a switch needs no
		// pipeline drain: the incoming task's ops simply queue behind
		// the core's in-flight work, so the slice starts unclamped.
		// With flushing the core must drain and scrub first, so the
		// slice resumes no earlier than the post-flush cycle.
		from := sim.Cycle(0)
		if flush {
			from = now
		}
		end, err := execs[cur].RunUntil(from, bounds[cur])
		if err != nil {
			return TimeShareResult{}, err
		}
		now = end
		if execs[cur].Done() {
			res.Finish[cur] = now
			remaining--
		}
		// Switch to the next runnable task, paying the flush.
		next := nextRunnable(execs, cur)
		if next != cur && next >= 0 {
			if flush {
				cost := spad.FlushCost(npu.FlushLiveBytes(tasks[cur].Program),
					d.cfg.DRAMBytesPerCycle, d.cfg.DRAMLatency, d.stats)
				now += cost
				res.FlushCycles += cost
			}
			res.Switches++
			if d.stats != nil {
				d.stats.Inc(sim.CtrCtxSwitches)
			}
			cur = next
		}
	}
	return res, nil
}

func boundaryFor(gran spad.FlushGranularity) npu.Boundary {
	switch gran {
	case spad.FlushPerLayer:
		return npu.BoundaryLayers(1)
	case spad.FlushPer5Layers:
		return npu.BoundaryLayers(5)
	default: // tile granularity, also used for FlushNone
		return npu.BoundaryTile
	}
}

func nextRunnable(execs []*npu.Exec, cur int) int {
	for off := 1; off <= len(execs); off++ {
		i := (cur + off) % len(execs)
		if !execs[i].Done() {
			return i
		}
	}
	if !execs[cur].Done() {
		return cur
	}
	return -1
}
