package driver

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
)

// This file quantifies Table I's SLA column: how long a high-priority
// (secure) task waits before it starts computing when it arrives while
// a low-priority task occupies the core. The scheduler can only switch
// at its boundary granularity, and flushing mechanisms additionally
// pay the save/restore before the newcomer may touch the scratchpad —
// coarse flushing is cheap per Fig. 14 but cannot preempt in time,
// which is exactly the trade-off the paper describes.

// PreemptionResult reports one preemption probe.
type PreemptionResult struct {
	// ArrivalCycle is when the high-priority task became runnable.
	ArrivalCycle sim.Cycle
	// StartCycle is when it first ran on the core.
	StartCycle sim.Cycle
}

// Latency is the SLA metric: arrival-to-start delay.
func (r PreemptionResult) Latency() sim.Cycle { return r.StartCycle - r.ArrivalCycle }

// MeasurePreemption runs `low` on the core, lets `high` arrive at the
// given cycle, and reports when high actually starts. The scheduler
// honours the boundary granularity (gran; FlushNone = tile boundaries)
// and pays the flush when flush is true.
func (d *Driver) MeasurePreemption(core *npu.Core, low, high *Task, arrival sim.Cycle, gran spad.FlushGranularity, flush bool) (PreemptionResult, error) {
	if gran == spad.FlushNone {
		flush = false
	}
	lowExec := npu.NewExec(core, low.Program, low.ID)
	bound := boundaryFor(gran)
	var now sim.Cycle
	for !lowExec.Done() && now < arrival {
		// As in RunTimeShared: with ID isolation slices queue behind
		// the pipeline without draining; flushing clamps to the
		// post-drain point.
		from := sim.Cycle(0)
		if flush {
			from = now
		}
		end, err := lowExec.RunUntil(from, bound)
		if err != nil {
			return PreemptionResult{}, err
		}
		now = end
	}
	// now is the first boundary at (or after) the arrival — the
	// earliest legal switch point. If the low task finished before the
	// arrival, the core is simply idle until then.
	start := now
	if start < arrival {
		start = arrival
	}
	if flush && !lowExec.Done() {
		start += spad.FlushCost(npu.FlushLiveBytes(low.Program),
			d.cfg.DRAMBytesPerCycle, d.cfg.DRAMLatency, d.stats)
	}
	if d.stats != nil {
		d.stats.Inc(sim.CtrCtxSwitches)
	}
	// The high-priority task's first op-kernel marks its start; we
	// only need the scheduling delay, not its full runtime.
	highExec := npu.NewExec(core, high.Program, high.ID)
	if _, err := highExec.RunUntil(start, npu.BoundaryTile); err != nil {
		return PreemptionResult{}, err
	}
	return PreemptionResult{ArrivalCycle: arrival, StartCycle: start}, nil
}

// SLAProbe is a convenience wrapper: submit two copies of a model,
// measure the preemption latency at a mid-run arrival point.
func (d *Driver) SLAProbe(core *npu.Core, model *Task, gran spad.FlushGranularity, flush bool, arrival sim.Cycle) (PreemptionResult, error) {
	if model == nil {
		return PreemptionResult{}, fmt.Errorf("driver: nil task")
	}
	high, err := d.Submit(model.Model, 0, true)
	if err != nil {
		return PreemptionResult{}, err
	}
	defer func() { _ = d.Release(high) }()
	return d.MeasurePreemption(core, model, high, arrival, gran, flush)
}
