// Package schedgen is the shared schedule generator behind the random
// property suite and the coverage-guided fuzz campaign (test
// infrastructure, beyond the paper). Both suites draw tenants, requests,
// arrival spacing, and policy knobs from one distribution, through one
// Source abstraction — a *rand.Rand for the property tests, a finite
// fuzz-input ByteSource for the campaign decoder — so the two
// explorations of the sched×monitor×fault space cannot drift apart.
package schedgen

import (
	"encoding/binary"
	"fmt"

	snpu "repro"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Source is the entropy a schedule draw consumes. *rand.Rand satisfies
// it directly; ByteSource adapts a fuzz input.
type Source interface {
	Intn(n int) int
	Int63n(n int64) int64
	Float64() float64
}

// ByteSource reads draws from a finite byte string, yielding zeros
// once exhausted. It is the decoder half of the campaign's bytes →
// scenario mapping: the same bytes always replay the same schedule,
// and any byte string (including empty) decodes to a valid one.
type ByteSource struct {
	buf []byte
	off int
}

// NewByteSource wraps b. The source never mutates b.
func NewByteSource(b []byte) *ByteSource { return &ByteSource{buf: b} }

// Next returns the next raw byte (zero once exhausted).
func (s *ByteSource) Next() byte {
	if s.off >= len(s.buf) {
		return 0
	}
	b := s.buf[s.off]
	s.off++
	return b
}

// Exhausted reports whether every input byte has been consumed.
func (s *ByteSource) Exhausted() bool { return s.off >= len(s.buf) }

// Uint16 reads two bytes big-endian.
func (s *ByteSource) Uint16() uint16 { return uint16(s.Next())<<8 | uint16(s.Next()) }

// Uint32 reads four bytes big-endian.
func (s *ByteSource) Uint32() uint32 {
	return uint32(s.Uint16())<<16 | uint32(s.Uint16())
}

// Uint64 reads eight bytes big-endian.
func (s *ByteSource) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Intn maps one byte (two for large n) onto [0, n).
func (s *ByteSource) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	if n <= 256 {
		return int(s.Next()) % n
	}
	return int(s.Uint16()) % n
}

// Int63n maps four bytes onto [0, n).
func (s *ByteSource) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.Uint32()) % n
}

// Float64 maps two bytes onto [0, 1).
func (s *ByteSource) Float64() float64 { return float64(s.Uint16()) / 65536.0 }

// Models is the model pool both suites schedule from.
var Models = []string{"mobilenet", "yololite"}

// Profile bounds a schedule draw. The zero value is not useful; start
// from DefaultProfile (the property suite's historical distribution).
type Profile struct {
	MaxCores         int     // cores drawn as 1 + Intn(MaxCores)
	MaxTenants       int     // tenants drawn as 1 + Intn(MaxTenants)
	MinRequests      int     // requests drawn as MinRequests + Intn(MaxExtraRequests)
	MaxExtraRequests int
	SecureFrac       float64 // probability a request is secure
	DeadlineFrac     float64 // probability a request carries a deadline
	ArrivalSpread    int64   // inter-arrival gap drawn as Int63n(ArrivalSpread)
	Models           []string
}

// DefaultProfile is the distribution the ~200-schedule property suite
// has always used (and that caught the admit-early bug).
func DefaultProfile() Profile {
	return Profile{
		MaxCores:         3,
		MaxTenants:       3,
		MinRequests:      3,
		MaxExtraRequests: 6,
		SecureFrac:       0.6,
		DeadlineFrac:     0.25,
		ArrivalSpread:    2_000_000,
		Models:           Models,
	}
}

// Cores draws the core set: 1 + Intn(MaxCores) consecutive cores.
func Cores(src Source, p Profile) []int {
	n := 1 + src.Intn(p.MaxCores)
	cores := make([]int, n)
	for i := range cores {
		cores[i] = i
	}
	return cores
}

// Tenants draws the tenant count: 1 + Intn(MaxTenants).
func Tenants(src Source, p Profile) int { return 1 + src.Intn(p.MaxTenants) }

// Config draws scheduler policy knobs with the property suite's
// distribution: batch width always, restart budget on half the draws,
// per-tenant queue bound on a third.
func Config(src Source, cores []int) sched.Config {
	cfg := sched.Config{Cores: cores, MaxBatch: 1 + src.Intn(4)}
	if src.Intn(2) == 0 {
		cfg.MaxRestarts = 1 + src.Intn(2)
	}
	if src.Intn(3) == 0 {
		cfg.MaxQueuePerTenant = 2 + src.Intn(3)
	}
	return cfg
}

// Requests draws the request schedule: MinRequests + Intn(extra)
// requests with monotone arrivals, tenant/model/priority per draw,
// SecureFrac of them sealed under their tenant key, DeadlineFrac with
// a feasible-looking deadline. sealedBy maps TenantKeyID(i) to the
// sealed blob a secure request of tenant i ships.
func Requests(src Source, p Profile, tenants int, sealedBy map[string][]byte) []sched.Request {
	nReq := p.MinRequests + src.Intn(p.MaxExtraRequests)
	reqs := make([]sched.Request, 0, nReq)
	var arrival int64
	for id := 1; id <= nReq; id++ {
		arrival += src.Int63n(p.ArrivalSpread)
		ti := src.Intn(tenants)
		r := sched.Request{
			ID:       id,
			Tenant:   fmt.Sprintf("t%d", ti),
			Model:    p.Models[src.Intn(len(p.Models))],
			Priority: sched.Priority(src.Intn(3)),
			Arrival:  sim.Cycle(arrival),
		}
		if src.Float64() < p.SecureFrac {
			r.Secure = true
			r.KeyID = TenantKeyID(ti)
			r.Sealed = sealedBy[r.KeyID]
		}
		if src.Float64() < p.DeadlineFrac {
			r.Deadline = r.Arrival + 1_000_000 + sim.Cycle(src.Int63n(10_000_000))
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// TenantKeyID is the conventional key identifier for tenant i; it
// matches the tenant naming in Requests and in snpu.ServeTrace.
func TenantKeyID(ti int) string { return fmt.Sprintf("t%d-key", ti) }

// TenantKey derives tenant i's sealing key from the schedule seed.
func TenantKey(seed int64, ti int) []byte { return snpu.ChaosKey(seed*31 + int64(ti)) }

// ProvisionKeys provisions TenantKey-derived keys for tenants 0..n-1
// on a freshly booted System.
func ProvisionKeys(sys *snpu.System, seed int64, tenants int) error {
	for ti := 0; ti < tenants; ti++ {
		if err := sys.ProvisionKey(TenantKeyID(ti), TenantKey(seed, ti)); err != nil {
			return err
		}
	}
	return nil
}

// SealedSet seals payload under every tenant key without touching a
// System: differential tests reuse one sealed set across fresh
// Systems so every leg submits the exact same bytes.
func SealedSet(seed int64, tenants int, payload []byte) (map[string][]byte, error) {
	out := make(map[string][]byte, tenants)
	for ti := 0; ti < tenants; ti++ {
		blob, err := snpu.SealModel(TenantKey(seed, ti), payload)
		if err != nil {
			return nil, err
		}
		out[TenantKeyID(ti)] = blob
	}
	return out, nil
}

// ProvisionTenants provisions keys for tenants 0..n-1 and seals a
// per-tenant payload under each, returning the sealed blobs keyed by
// TenantKeyID.
func ProvisionTenants(sys *snpu.System, seed int64, tenants int, payload func(ti int) []byte) (map[string][]byte, error) {
	if err := ProvisionKeys(sys, seed, tenants); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, tenants)
	for ti := 0; ti < tenants; ti++ {
		blob, err := snpu.SealModel(TenantKey(seed, ti), payload(ti))
		if err != nil {
			return nil, err
		}
		out[TenantKeyID(ti)] = blob
	}
	return out, nil
}

// AppendUint32 / AppendUint64 are the encoder duals of ByteSource's
// readers, for building corpus seeds that decode to a chosen scenario.
func AppendUint32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendUint64 appends v big-endian.
func AppendUint64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
