package npu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/xlate"
)

// NPU is the full accelerator: all cores, the NoC mesh connecting
// them, and the shared DRAM channel. Translators are per-core and
// swappable so experiments can compare access-control mechanisms.
type NPU struct {
	cfg     Config
	cores   []*Core
	mesh    *noc.Mesh
	channel *sim.Resource
	phys    *mem.Physical
	stats   *sim.Stats
	l2      *cache.L2 // non-nil when cfg.UseL2
}

// New assembles the NPU. Each core gets its own instance from
// makeXlate (an IOMMU or Guarder is per-NPU-core hardware).
func New(cfg Config, phys *mem.Physical, stats *sim.Stats, makeXlate func(core int) xlate.Translator) (*NPU, error) {
	if cfg.Tiles <= 0 {
		return nil, fmt.Errorf("npu: no tiles configured")
	}
	if cfg.MeshW*cfg.MeshH < cfg.Tiles {
		return nil, fmt.Errorf("npu: %dx%d mesh cannot host %d tiles", cfg.MeshW, cfg.MeshH, cfg.Tiles)
	}
	mesh, err := noc.NewMesh(noc.DefaultConfig(cfg.MeshW, cfg.MeshH, cfg.Peephole), stats)
	if err != nil {
		return nil, err
	}
	n := &NPU{
		cfg:     cfg,
		mesh:    mesh,
		channel: sim.NewResource("dram-channel"),
		phys:    phys,
		stats:   stats,
	}
	if cfg.UseL2 {
		l2, err := cache.New(cache.DefaultConfig())
		if err != nil {
			return nil, err
		}
		n.l2 = l2
	}
	for i := 0; i < cfg.Tiles; i++ {
		coord := noc.Coord{X: i % cfg.MeshW, Y: i / cfg.MeshW}
		var xl xlate.Translator
		if makeXlate != nil {
			xl = makeXlate(i)
		} else {
			xl = xlate.NewIdentity(stats)
		}
		core, err := NewCore(i, coord, cfg, n.channel, phys, xl, mesh, stats)
		if err != nil {
			return nil, err
		}
		if n.l2 != nil {
			core.DMA().AttachL2(n.l2)
		}
		n.cores = append(n.cores, core)
	}
	// The mesh authenticates against the cores' live ID states.
	mesh.IDSource = func(c noc.Coord) spad.DomainID {
		for _, core := range n.cores {
			if core.coord == c {
				return core.domain
			}
		}
		return spad.NonSecure
	}
	return n, nil
}

// Config returns the NPU configuration.
func (n *NPU) Config() Config { return n.cfg }

// AttachInjector arms the whole SoC with one fault injector: the mesh
// and every tile (scratchpads, DMA engines, translators).
func (n *NPU) AttachInjector(inj *fault.Injector) {
	n.mesh.AttachInjector(inj)
	for _, c := range n.cores {
		c.AttachInjector(inj)
	}
}

// AttachObserver wires the whole accelerator into an observability
// layer: the NoC mesh and every tile (DMA engines, translators,
// compute histograms). Nil detaches.
func (n *NPU) AttachObserver(o *obs.Observer) {
	n.mesh.AttachObserver(o)
	for _, c := range n.cores {
		c.AttachObserver(o)
	}
}

// Cores returns the core list.
func (n *NPU) Cores() []*Core { return n.cores }

// Core returns core i.
func (n *NPU) Core(i int) (*Core, error) {
	if i < 0 || i >= len(n.cores) {
		return nil, fmt.Errorf("npu: core %d out of range (%d cores)", i, len(n.cores))
	}
	return n.cores[i], nil
}

// validateCores rejects duplicate or out-of-range core IDs up front,
// before any run claims channel or pipeline resources. A duplicate
// would silently double-claim one core's pipeline (two executors
// interleaving on the same cursor), producing plausible-looking but
// meaningless cycle counts.
func (n *NPU) validateCores(coreIDs []int) error {
	seen := make(map[int]bool, len(coreIDs))
	for _, ci := range coreIDs {
		if ci < 0 || ci >= len(n.cores) {
			return fmt.Errorf("npu: core %d out of range (%d cores)", ci, len(n.cores))
		}
		if seen[ci] {
			return fmt.Errorf("npu: core %d listed twice", ci)
		}
		seen[ci] = true
	}
	return nil
}

// Mesh returns the NoC fabric.
func (n *NPU) Mesh() *noc.Mesh { return n.mesh }

// Channel returns the shared DRAM channel resource.
func (n *NPU) Channel() *sim.Resource { return n.channel }

// ResetTiming returns all timing resources to idle — the shared DRAM
// channel and every core's pipeline — so independent experiment runs
// on one NPU instance do not contend with history.
func (n *NPU) ResetTiming() {
	n.channel.Reset()
	for _, c := range n.cores {
		c.ResetPipeline()
	}
	if n.l2 != nil {
		n.l2.Reset()
	}
}

// L2 returns the shared cache (nil unless Config.UseL2).
func (n *NPU) L2() *cache.L2 { return n.l2 }

// Reset power-cycles the whole accelerator for arena-style reuse:
// timing resources (DRAM channel, pipelines, L2), every tile's
// security and scratchpad state, and the mesh's locks, inboxes, and
// fault state. After Reset the NPU is observably identical to a
// freshly assembled one with the same configuration — the pooled
// SoC contract the fresh-vs-pooled differential pins.
func (n *NPU) Reset() {
	n.channel.Reset()
	if n.l2 != nil {
		n.l2.Reset()
	}
	for _, c := range n.cores {
		c.Reset()
	}
	n.mesh.Reset()
}

// SetCoreDomains programs a set of cores into a domain via the secure
// instruction path.
func (n *NPU) SetCoreDomains(ctx tee.Context, cores []int, d spad.DomainID) error {
	for _, i := range cores {
		c, err := n.Core(i)
		if err != nil {
			return err
		}
		if err := c.SetDomain(ctx, d); err != nil {
			return err
		}
	}
	return nil
}

// TransferMode selects how pipelined stages exchange activations
// (Fig. 16/17).
type TransferMode uint8

const (
	// TransferNoC moves activations core-to-core over the mesh.
	TransferNoC TransferMode = iota
	// TransferSharedMemory is the "software NoC": store to a shared
	// DRAM buffer, reload on the consumer core.
	TransferSharedMemory
)

func (m TransferMode) String() string {
	if m == TransferNoC {
		return "noc"
	}
	return "shared-memory"
}

// Stage is one segment of a pipeline mapping: a program slice bound to
// a core.
type Stage struct {
	Core    int
	Program *Program
	// ActOutBytes is the activation volume handed to the next stage.
	ActOutBytes uint64
}

// PipelineResult reports one pipelined run.
type PipelineResult struct {
	TotalCycles    sim.Cycle
	TransferCycles sim.Cycle
	Batches        int
}

// RunPipeline streams `batches` inferences through the staged cores,
// moving inter-stage activations per mode. Stage s of batch b starts
// when (a) stage s finished batch b-1 and (b) stage s-1's batch-b
// output arrived. This is the Fig. 17 experiment harness.
func (n *NPU) RunPipeline(stages []Stage, batches int, mode TransferMode, shmVA mem.VirtAddr) (PipelineResult, error) {
	if len(stages) == 0 || batches <= 0 {
		return PipelineResult{}, fmt.Errorf("npu: empty pipeline")
	}
	stageCores := make([]int, len(stages))
	for i, st := range stages {
		stageCores[i] = st.Core
	}
	if err := n.validateCores(stageCores); err != nil {
		return PipelineResult{}, err
	}
	coreFree := make([]sim.Cycle, len(stages))
	var res PipelineResult
	var prevStageDone []sim.Cycle = make([]sim.Cycle, len(stages))

	for b := 0; b < batches; b++ {
		var upstreamReady sim.Cycle
		for s, st := range stages {
			core, err := n.Core(st.Core)
			if err != nil {
				return PipelineResult{}, err
			}
			start := coreFree[s]
			if upstreamReady > start {
				start = upstreamReady
			}
			ex := NewExec(core, st.Program, 1000+st.Core)
			done, err := ex.Run(start)
			if err != nil {
				return PipelineResult{}, err
			}
			// Hand activations to the next stage.
			if s+1 < len(stages) && st.ActOutBytes > 0 {
				next, err := n.Core(stages[s+1].Core)
				if err != nil {
					return PipelineResult{}, err
				}
				tDone, tCycles, err := n.transfer(core, next, st.ActOutBytes, mode, shmVA, done)
				if err != nil {
					return PipelineResult{}, err
				}
				res.TransferCycles += tCycles
				upstreamReady = tDone
			} else {
				upstreamReady = done
			}
			coreFree[s] = done
			prevStageDone[s] = done
		}
	}
	for _, d := range prevStageDone {
		if d > res.TotalCycles {
			res.TotalCycles = d
		}
	}
	res.Batches = batches
	return res, nil
}

// transfer moves bytes from src to dst starting at `at`, returning the
// arrival cycle and the transfer's own duration.
func (n *NPU) transfer(src, dst *Core, bytes uint64, mode TransferMode, shmVA mem.VirtAddr, at sim.Cycle) (sim.Cycle, sim.Cycle, error) {
	switch mode {
	case TransferNoC:
		flits := int((bytes + noc.FlitBytes - 1) / noc.FlitBytes)
		done, err := src.router.Transfer(dst.coord, flits, nil, at)
		if err != nil {
			return 0, 0, err
		}
		return done, done - at, nil
	case TransferSharedMemory:
		// Producer stores to the shared DRAM buffer, consumer reloads:
		// two DRAM round trips through the (permission-restricted)
		// shared region, both on the contended channel.
		storeDone, err := src.dmaEng.DoPipelined(storeLoad(shmVA, bytes, true, src), nil, src.domain, at)
		if err != nil {
			return 0, 0, err
		}
		loadDone, err := dst.dmaEng.DoPipelined(storeLoad(shmVA, bytes, false, dst), nil, dst.domain, storeDone)
		if err != nil {
			return 0, 0, err
		}
		return loadDone, loadDone - at, nil
	default:
		return 0, 0, fmt.Errorf("npu: unknown transfer mode %d", mode)
	}
}
