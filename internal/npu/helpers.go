package npu

import (
	"repro/internal/dma"
	"repro/internal/mem"
)

// storeLoad builds the DMA request list for one side of a
// shared-memory (software NoC) transfer.
func storeLoad(va mem.VirtAddr, bytes uint64, store bool, core *Core) []dma.Request {
	dir := dma.ToScratchpad
	if store {
		dir = dma.ToMemory
	}
	return []dma.Request{{
		VA:     va,
		Bytes:  bytes,
		Dir:    dir,
		World:  core.World(),
		TaskID: 1000 + core.id,
	}}
}
