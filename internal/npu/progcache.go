package npu

import (
	"hash/fnv"
	"sync"

	"repro/internal/workload"
)

// Compiled programs are immutable after Compile returns (execution,
// measurement, and validation only read them), so identical compile
// requests can share one *Program. The experiment suite compiles the
// same handful of models hundreds of times — once per cell, sometimes
// twice per cell — and each alexnet-class op stream is tens of MB, so
// sharing turns the dominant allocation source of the suite into a
// near-free map lookup.
//
// The cache key covers everything Compile's output depends on: a
// structural fingerprint of the workload (name plus every GEMM's
// dimensions and efficiency — not just the name, so user-built
// workloads that happen to collide on Name still compile correctly),
// the comparable Config value, the scratchpad budget, and the Layout.

type progKey struct {
	name   string
	fp     uint64
	cfg    Config
	budget int
	layout Layout
}

type progEntry struct {
	prog  *Program
	stats CompileStats
}

// progCacheMax bounds the cache. The suite uses ~10 distinct
// (model, cfg, layout) combinations; scheduler-driven compiles use
// per-task layouts (driver.LayoutFor) whose IDs grow without bound, so
// on overflow the whole map is dropped — deterministic, and correctness
// never depends on residency.
const progCacheMax = 128

var progCache = struct {
	sync.Mutex
	m      map[progKey]progEntry
	hits   uint64
	misses uint64
}{m: make(map[progKey]progEntry)}

// fingerprintWorkload hashes the structure Compile consumes: layer
// partitioning and every GEMM's name, dimensions, and efficiency.
func fingerprintWorkload(w workload.Workload) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(w.Name))
	for _, l := range w.Layers {
		h.Write([]byte{0xff})
		h.Write([]byte(l.Name))
		for _, g := range l.GEMMs {
			h.Write([]byte{0xfe})
			h.Write([]byte(g.Name))
			wr(uint64(g.M))
			wr(uint64(g.K))
			wr(uint64(g.N))
			wr(uint64(int64(g.Efficiency * 1e9)))
		}
	}
	return h.Sum64()
}

// CompileCached is Compile behind a process-wide cache of immutable
// programs. Callers MUST treat the returned Program as read-only — it
// may be shared with concurrent experiment cells. Code that intends to
// mutate the op stream (slicing per-core partitions, decoded task
// images) must keep calling Compile.
func CompileCached(w workload.Workload, cfg Config, spadBudget int, layout Layout) (*Program, CompileStats, error) {
	key := progKey{name: w.Name, fp: fingerprintWorkload(w), cfg: cfg, budget: spadBudget, layout: layout}

	progCache.Lock()
	if e, ok := progCache.m[key]; ok {
		progCache.hits++
		progCache.Unlock()
		return e.prog, e.stats, nil
	}
	progCache.misses++
	progCache.Unlock()

	// Compile outside the lock: concurrent cells missing on different
	// keys should not serialize behind one big compile.
	p, st, err := Compile(w, cfg, spadBudget, layout)
	if err != nil {
		return nil, CompileStats{}, err
	}

	progCache.Lock()
	if e, ok := progCache.m[key]; ok {
		// A racing cell compiled the same key; keep the first entry so
		// every caller shares one instance.
		progCache.Unlock()
		return e.prog, e.stats, nil
	}
	if len(progCache.m) >= progCacheMax {
		progCache.m = make(map[progKey]progEntry)
	}
	progCache.m[key] = progEntry{prog: p, stats: st}
	progCache.Unlock()
	return p, st, nil
}

// ProgCacheCounters reports lifetime cache hits and misses.
func ProgCacheCounters() (hits, misses uint64) {
	progCache.Lock()
	defer progCache.Unlock()
	return progCache.hits, progCache.misses
}

// ResetProgCache drops every cached program (tests, memory pressure).
func ResetProgCache() {
	progCache.Lock()
	defer progCache.Unlock()
	progCache.m = make(map[progKey]progEntry)
	progCache.hits = 0
	progCache.misses = 0
}
