package npu

import (
	"testing"

	"repro/internal/workload"
)

// twoGemmWorkload builds a one-layer workload whose op stream is
// insensitive to the GEMM name — renaming a GEMM changes the source
// but not a single emitted op.
func twoGemmWorkload(name, gemmName string) workload.Workload {
	return workload.Workload{
		Name: name,
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: gemmName, M: 32, K: 64, N: 32}}},
		},
	}
}

// Compile stamps the workload's canonical digest into the program, and
// Measurement covers it: two workloads that compile to the *identical
// op stream* but differ in source (a renamed GEMM) must attest
// differently — the quote binds the compiled graph, not just the
// op-level behavior.
func TestMeasurementBindsSourceDigest(t *testing.T) {
	cfg := DefaultConfig()
	pa, _, err := Compile(twoGemmWorkload("m", "g_original"), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := Compile(twoGemmWorkload("m", "g_renamed"), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Ops) != len(pb.Ops) {
		t.Fatalf("op streams diverged (%d vs %d ops) — rename was supposed to be op-neutral", len(pa.Ops), len(pb.Ops))
	}
	for i := range pa.Ops {
		if pa.Ops[i] != pb.Ops[i] {
			t.Fatalf("op %d differs — rename was supposed to be op-neutral", i)
		}
	}
	if pa.SourceDigest == pb.SourceDigest {
		t.Fatal("different sources share a digest")
	}
	if pa.Measurement() == pb.Measurement() {
		t.Fatal("identical op streams from different sources share a measurement")
	}
	if pa.SourceDigest != workload.Digest(twoGemmWorkload("m", "g_original")) {
		t.Fatal("program digest is not the workload's canonical digest")
	}
	if pa.SourceDigest == ([32]byte{}) {
		t.Fatal("zero source digest")
	}
}

// The digest survives the model-parallel path: a sliced workload's
// compiled program keeps its source digest through the on-chip
// activation strip, and each slice's digest is the digest of that
// slice's source (what actually runs on the core).
func TestSourceDigestSurvivesSlicing(t *testing.T) {
	w, err := workload.Lookup("yololite")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for i := 0; i < 2; i++ {
		slice := sliceWorkload(w, i, 2, cfg.SystolicDim)
		prog, _, err := CompileCached(slice, cfg, 0, DefaultLayout)
		if err != nil {
			t.Fatal(err)
		}
		if prog.SourceDigest != workload.Digest(slice) {
			t.Fatalf("slice %d digest is not its source digest", i)
		}
		stripped := stripOnChipActivations(prog)
		if stripped.SourceDigest != prog.SourceDigest {
			t.Fatalf("slice %d lost the digest in stripOnChipActivations", i)
		}
	}
}
