package npu

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

// TestCompileCachedSharesPrograms pins the cache contract: identical
// (workload, cfg, budget, layout) requests share one *Program, any
// differing key component compiles fresh, and the compiled output is
// identical to an uncached Compile.
func TestCompileCachedSharesPrograms(t *testing.T) {
	ResetProgCache()
	w, err := workload.ByName("yololite")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	p1, st1, err := CompileCached(w, cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := CompileCached(w, cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical requests returned distinct programs")
	}
	if hits, misses := ProgCacheCounters(); hits != 1 || misses != 1 {
		t.Errorf("counters = %d hits / %d misses, want 1/1", hits, misses)
	}

	direct, stDirect, err := Compile(w, cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Ops) != len(p1.Ops) || st1 != stDirect {
		t.Errorf("cached compile diverges from direct: %d vs %d ops, stats %+v vs %+v",
			len(p1.Ops), len(direct.Ops), st1, stDirect)
	}

	// Any key component change must miss: layout...
	p3, _, err := CompileCached(w, cfg, 0, Layout{WeightBase: 0x4000_0000})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different layout shared a program")
	}
	// ...and workload structure, even at an identical Name.
	clone := w
	clone.Layers = append([]workload.Layer(nil), w.Layers...)
	clone.Layers[0].GEMMs = append([]workload.GEMM(nil), w.Layers[0].GEMMs...)
	clone.Layers[0].GEMMs[0].M++
	p4, _, err := CompileCached(clone, cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("structurally different workload with the same Name shared a program")
	}
}

// TestCompileCachedEviction fills the cache past its bound and checks
// the wholesale drop: no entry count ever exceeds progCacheMax, and a
// dropped key simply recompiles.
func TestCompileCachedEviction(t *testing.T) {
	ResetProgCache()
	defer ResetProgCache()
	w, err := workload.ByName("mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for i := 0; i < progCacheMax+4; i++ {
		layout := Layout{WeightBase: mem.VirtAddr(0x1000_0000 + i*0x10_0000)}
		if _, _, err := CompileCached(w, cfg, 0, layout); err != nil {
			t.Fatal(err)
		}
		progCache.Lock()
		n := len(progCache.m)
		progCache.Unlock()
		if n > progCacheMax {
			t.Fatalf("cache grew to %d entries (bound %d)", n, progCacheMax)
		}
	}
	if _, _, err := CompileCached(w, cfg, 0, Layout{WeightBase: 0x1000_0000}); err != nil {
		t.Fatalf("recompile after eviction: %v", err)
	}
}

// TestCompileCachedConcurrent hammers one key from many goroutines;
// under -race this doubles as the data-race check for the
// compile-outside-the-lock window. All callers must end up with the
// same program instance (first entry wins).
func TestCompileCachedConcurrent(t *testing.T) {
	ResetProgCache()
	defer ResetProgCache()
	w, err := workload.ByName("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	const n = 8
	progs := make([]*Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := CompileCached(w, cfg, 0, DefaultLayout)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	// The instance every caller holds must be the one now cached.
	cached, _, err := CompileCached(w, cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p != cached {
			t.Fatalf("goroutine %d holds a non-canonical program", i)
		}
	}
}

// TestCompileOpCountExact pins the zero-growth property of the op
// stream: countOps presizes the Ops slice exactly, so compilation
// performs one allocation for the stream and append never regrows it.
func TestCompileOpCountExact(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range []string{"alexnet", "yololite", "mobilenet"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, layout := range []Layout{DefaultLayout, {WeightBase: 0x4000_0000}} {
			p, _, err := Compile(w, cfg, 0, layout)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Ops) != cap(p.Ops) {
				t.Errorf("%s: ops len %d != cap %d — countOps mispredicted", name, len(p.Ops), cap(p.Ops))
			}
		}
	}
}
