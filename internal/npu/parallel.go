package npu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the Fig. 17 execution mode: model-parallel
// multi-core inference. Each layer's output channels are partitioned
// across the participating cores; after every layer the cores exchange
// their activation slices (every core needs the full activation as the
// next layer's input). The exchange rides either the direct NoC or the
// "software NoC" (a permission-restricted shared-memory buffer), which
// is exactly the comparison the paper's Fig. 17 makes.

// ModelParallelResult reports one multi-core run.
type ModelParallelResult struct {
	TotalCycles    sim.Cycle
	TransferCycles sim.Cycle
	Layers         int
}

// sliceWorkload builds core `part` of `parts`' share of w: every GEMM
// keeps M and K but computes only its slice of N (rounded to the
// systolic dimension so slices stay array-friendly).
func sliceWorkload(w workload.Workload, part, parts, dim int) workload.Workload {
	out := workload.Workload{Name: fmt.Sprintf("%s-p%d", w.Name, part)}
	for _, l := range w.Layers {
		var gs []workload.GEMM
		for _, g := range l.GEMMs {
			n := sliceOfN(g.N, part, parts, dim)
			if n == 0 {
				// Tiny layers still need a presence on every core so the
				// layer structure (and exchange points) stays aligned.
				n = 1
			}
			gs = append(gs, workload.GEMM{
				Name: g.Name, M: g.M, K: g.K, N: n, Efficiency: g.Efficiency,
			})
		}
		out.Layers = append(out.Layers, workload.Layer{Name: l.Name, GEMMs: gs})
	}
	return out
}

// sliceOfN splits N into `parts` dim-aligned chunks; earlier parts get
// the remainder.
func sliceOfN(n, part, parts, dim int) int {
	blocks := (n + dim - 1) / dim
	per := blocks / parts
	extra := blocks % parts
	b := per
	if part < extra {
		b++
	}
	s := b * dim
	// The final slice may exceed the true remainder; clamp the total.
	used := 0
	for p := 0; p < part; p++ {
		pb := per
		if p < extra {
			pb++
		}
		used += pb * dim
	}
	if used >= n {
		return 0
	}
	if used+s > n {
		s = n - used
	}
	return s
}

// stripOnChipActivations removes the DRAM traffic that the NoC
// carries instead in the model-parallel mapping: activation loads of
// every layer after the first (inputs arrive over the exchange and sit
// in the scratchpad) and activation stores of every layer before the
// last (outputs leave over the exchange). Weight loads always stream
// from DRAM.
func stripOnChipActivations(p *Program) *Program {
	out := *p
	out.Ops = make([]Op, 0, len(p.Ops))
	for _, op := range p.Ops {
		switch op.Kind {
		case OpLoad:
			if !op.Weight && op.Layer > 0 {
				continue
			}
		case OpStore:
			if !op.Weight && op.Layer < p.Layers-1 {
				continue
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return &out
}

// layerOutBytes is the activation volume a core's slice of a layer
// produces (what it must send to every peer).
func layerOutBytes(l workload.Layer) uint64 {
	var total uint64
	for _, g := range l.GEMMs {
		total += uint64(g.OutputBytes())
	}
	return total
}

// MapWindow installs access-control state for one core's compiled
// slice before a model-parallel run: on a protected system the
// monitor's context setter programs the core's Guarder; unprotected
// systems pass nil.
type MapWindow func(coreID int, prog *Program) error

// RunModelParallel executes one inference of w split across the given
// cores, exchanging activation slices after every layer per mode.
// shmVA is the software-NoC bounce buffer (identity/guarder-translated
// into the shared region); mapWindow (optional) installs each core's
// translation window before execution.
func (n *NPU) RunModelParallel(w workload.Workload, coreIDs []int, mode TransferMode, shmVA mem.VirtAddr, mapWindow MapWindow) (ModelParallelResult, error) {
	parts := len(coreIDs)
	if parts == 0 {
		return ModelParallelResult{}, fmt.Errorf("npu: no cores for model-parallel run")
	}
	if err := n.validateCores(coreIDs); err != nil {
		return ModelParallelResult{}, err
	}
	dim := n.cfg.SystolicDim
	cores := make([]*Core, parts)
	execs := make([]*Exec, parts)
	slices := make([]workload.Workload, parts)
	for i, ci := range coreIDs {
		c, err := n.Core(ci)
		if err != nil {
			return ModelParallelResult{}, err
		}
		cores[i] = c
		slices[i] = sliceWorkload(w, i, parts, dim)
		prog, _, err := CompileCached(slices[i], n.cfg, 0, DefaultLayout)
		if err != nil {
			return ModelParallelResult{}, err
		}
		stripped := stripOnChipActivations(prog)
		if mapWindow != nil {
			if err := mapWindow(ci, stripped); err != nil {
				return ModelParallelResult{}, err
			}
		}
		execs[i] = NewExec(c, stripped, 2000+ci)
	}

	var res ModelParallelResult
	res.Layers = len(w.Layers)
	start := sim.Cycle(0)
	now := make([]sim.Cycle, parts)
	for li := 0; li < len(w.Layers); li++ {
		// Each core computes its slice of the layer. Cores advance
		// tile-by-tile in virtual-time order so their DRAM-channel
		// claims interleave the way concurrently running hardware
		// would, instead of serializing whole layers.
		for i := range now {
			now[i] = start
		}
		inLayer := make([]bool, parts)
		remaining := 0
		for i := range execs {
			if !execs[i].Done() && execs[i].CurrentLayer() == li {
				inLayer[i] = true
				remaining++
			}
		}
		for remaining > 0 {
			// Pick the laggard still working on this layer.
			sel := -1
			for i := range execs {
				if inLayer[i] && (sel < 0 || now[i] < now[sel]) {
					sel = i
				}
			}
			end, err := execs[sel].RunUntil(now[sel], BoundaryTile)
			if err != nil {
				return ModelParallelResult{}, err
			}
			now[sel] = end
			if execs[sel].Done() || execs[sel].CurrentLayer() > li {
				inLayer[sel] = false
				remaining--
			}
		}
		var layerEnd sim.Cycle = start
		for i := range now {
			if now[i] > layerEnd {
				layerEnd = now[i]
			}
		}
		// All-gather the activation slices (skip after the last layer —
		// the final output stays wherever the classifier ran).
		if li == len(w.Layers)-1 {
			start = layerEnd
			break
		}
		exchangeDone := layerEnd
		for i := range cores {
			bytes := layerOutBytes(slices[i].Layers[li])
			if bytes == 0 {
				continue
			}
			done, err := n.allGatherFrom(cores, i, bytes, mode, shmVA, layerEnd)
			if err != nil {
				return ModelParallelResult{}, err
			}
			if done > exchangeDone {
				exchangeDone = done
			}
		}
		res.TransferCycles += exchangeDone - layerEnd
		start = exchangeDone
	}
	res.TotalCycles = start
	return res, nil
}

// ExchangeTxnLines is the streaming-transaction size of an inter-core
// exchange: consumers compute on activation tiles as they arrive, so
// slices move in bursts of this many scratchpad lines (1 KB), not as
// one bulk copy. The direct NoC pays per-hop latency per burst; the
// software NoC pays a DRAM round trip per burst — that latency gap is
// Fig. 16's small-transaction regime, and it is what the application
// test (Fig. 17) aggregates.
const ExchangeTxnLines = 64

// allGatherFrom broadcasts core src's slice to every peer in
// streaming transactions.
func (n *NPU) allGatherFrom(cores []*Core, src int, bytes uint64, mode TransferMode, shmVA mem.VirtAddr, at sim.Cycle) (sim.Cycle, error) {
	s := cores[src]
	txnBytes := uint64(ExchangeTxnLines * noc.FlitBytes)
	var last sim.Cycle = at
	switch mode {
	case TransferNoC:
		for j, d := range cores {
			if j == src {
				continue
			}
			t := at
			for off := uint64(0); off < bytes; off += txnBytes {
				b := txnBytes
				if off+b > bytes {
					b = bytes - off
				}
				flits := int((b + noc.FlitBytes - 1) / noc.FlitBytes)
				done, err := s.router.Transfer(d.coord, flits, nil, t)
				if err != nil {
					return 0, err
				}
				t = done
			}
			if t > last {
				last = t
			}
		}
	case TransferSharedMemory:
		// Each burst bounces through the shared DRAM buffer: one store
		// by the producer, one load per consumer, every one paying the
		// DRAM access latency on the shared channel.
		t := at
		for off := uint64(0); off < bytes; off += txnBytes {
			b := txnBytes
			if off+b > bytes {
				b = bytes - off
			}
			storeDone, err := s.dmaEng.DoPipelined(storeLoad(shmVA+mem.VirtAddr(off), b, true, s), nil, s.domain, t)
			if err != nil {
				return 0, err
			}
			burstDone := storeDone
			for j, d := range cores {
				if j == src {
					continue
				}
				done, err := d.dmaEng.DoPipelined(storeLoad(shmVA+mem.VirtAddr(off), b, false, d), nil, d.domain, storeDone)
				if err != nil {
					return 0, err
				}
				if done > burstDone {
					burstDone = done
				}
			}
			t = burstDone
		}
		last = t
	default:
		return 0, fmt.Errorf("npu: unknown transfer mode %d", mode)
	}
	return last, nil
}
