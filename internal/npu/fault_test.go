package npu

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestCoreHangSurfacesHangError(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.CoreHang},
	}}, nil)
	n.AttachInjector(inj)

	core, _ := n.Core(0)
	_, err = NewExec(core, prog, 1).Run(0)
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("err = %v, want HangError", err)
	}
	if hang.Core != 0 {
		t.Fatalf("hang on core %d", hang.Core)
	}
	// The watchdog notices the hang one watchdog period after the op
	// that wedged, so detection is strictly later than the hang itself.
	if hang.Detected < DefaultHangWatchdog {
		t.Fatalf("detected at %d, before a full watchdog period", hang.Detected)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}
}

func TestHangWatchdogConfigurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HangWatchdog = 123
	n := testNPU(t, cfg, nil)
	prog, _, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.CoreHang},
	}}, sim.NewStats())
	n.AttachInjector(inj)
	core, _ := n.Core(0)
	_, err = NewExec(core, prog, 1).Run(0)
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("err = %v, want HangError", err)
	}
	// Detected = first compute end + the configured watchdog; with a
	// tiny watchdog it lands well before the default one would.
	if hang.Detected >= DefaultHangWatchdog {
		t.Fatalf("detected at %d with a 123-cycle watchdog", hang.Detected)
	}
}

// An armed-but-empty injector must not change execution at all — the
// zero-overhead-when-off invariant at the core level.
func TestEmptyInjectorDoesNotPerturbExec(t *testing.T) {
	run := func(attach bool) sim.Cycle {
		n := testNPU(t, DefaultConfig(), nil)
		prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			n.AttachInjector(fault.NewInjector(fault.Plan{}, sim.NewStats()))
		}
		core, _ := n.Core(0)
		end, err := NewExec(core, prog, 1).Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if plain, armed := run(false), run(true); plain != armed {
		t.Fatalf("empty injector changed cycles: %d vs %d", plain, armed)
	}
}
