package npu

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OpKind enumerates the NPU's op-level ISA. The compiler lowers each
// GEMM tile iteration into mvin (load), matmul (compute), and mvout
// (store) ops; multi-core mappings add NoC send/receive ops.
type OpKind uint8

const (
	// OpLoad moves data DRAM -> scratchpad (mvin).
	OpLoad OpKind = iota
	// OpStore moves data scratchpad -> DRAM (mvout).
	OpStore
	// OpCompute runs the systolic array for Cycles.
	OpCompute
	// OpSend transfers Flits scratchpad lines to core Peer over the NoC.
	OpSend
	// OpRecv blocks until the matching OpSend from core Peer lands.
	OpRecv
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "mvin"
	case OpStore:
		return "mvout"
	case OpCompute:
		return "matmul"
	case OpSend:
		return "noc.send"
	case OpRecv:
		return "noc.recv"
	default:
		return "unknown"
	}
}

// Op is one NPU instruction.
type Op struct {
	Kind OpKind
	// VA and Bytes describe the DRAM side of a load/store.
	VA    mem.VirtAddr
	Bytes uint64
	// Cycles is the array occupancy of a compute op.
	Cycles sim.Cycle
	// Flits and Peer describe a NoC transfer.
	Flits int
	Peer  int
	// Layer is the index of the layer this op belongs to (drives
	// flush-granularity and pipeline-mapping decisions).
	Layer int
	// Tile marks compute ops as op-kernel boundaries for scheduling.
	Tile bool
	// Weight marks loads of the weight (B) matrix; false on loads and
	// stores of activations. Multi-core mappings strip activation
	// traffic that arrives over the NoC instead of DRAM.
	Weight bool
	// MACs is the multiply-accumulate count of a compute op (energy
	// accounting).
	MACs int64
}

// Program is a compiled workload: a linear op stream for one core.
type Program struct {
	Name string
	Ops  []Op
	// Layers is the layer count (boundaries usable for flushing).
	Layers int
	// TotalMACs is the arithmetic work, for utilization reporting.
	TotalMACs int64
	// IdealComputeCycles is the peak-rate lower bound on one core.
	IdealComputeCycles int64
	// SpadBytes is the scratchpad budget the program was tiled for.
	SpadBytes int
	// LiveSpadBytes approximates the occupied footprint while running
	// (the double-buffered peak working set).
	LiveSpadBytes uint64
	// AccTileBytes is the largest accumulator (output) tile — the
	// dirty state a context-switch flush must save and restore.
	AccTileBytes uint64
	// SourceDigest is the SHA-256 of the canonical serialization of
	// the lowered workload this program was compiled from
	// (workload.Digest). Folding it into Measurement binds the
	// attestation quote to the exact compiled graph — layer names,
	// GEMM shapes, efficiencies — not just the op stream and model
	// name, so two graphs that happen to tile to the same ops still
	// attest distinctly.
	SourceDigest [sha256.Size]byte
}

// Measurement hashes the source digest and the op stream — the
// code-integrity measurement the NPU Monitor's code verifier checks
// before loading a secure task, and the value an attestation quote
// binds.
func (p *Program) Measurement() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(p.Name))
	h.Write(p.SourceDigest[:])
	for _, op := range p.Ops {
		write(uint64(op.Kind))
		write(uint64(op.VA))
		write(op.Bytes)
		write(uint64(op.Cycles))
		write(uint64(op.Flits))
		write(uint64(op.Peer))
		write(uint64(op.Layer))
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Validate statically checks a program's structure: layer indices in
// range and non-decreasing (the flush/pipeline machinery depends on
// monotonic layers), op kinds known, loads/stores non-empty, compute
// ops carrying positive occupancy, and NoC ops carrying positive flit
// counts. The NPU Monitor runs this on decoded task images before
// accepting them — a malformed stream is rejected rather than executed.
func (p *Program) Validate() error {
	if p.Layers <= 0 {
		return fmt.Errorf("npu: program %q has %d layers", p.Name, p.Layers)
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("npu: program %q has no ops", p.Name)
	}
	prevLayer := 0
	for i, op := range p.Ops {
		if op.Layer < 0 || op.Layer >= p.Layers {
			return fmt.Errorf("npu: op %d layer %d out of range [0,%d)", i, op.Layer, p.Layers)
		}
		if op.Layer < prevLayer {
			return fmt.Errorf("npu: op %d layer %d after layer %d (must be non-decreasing)", i, op.Layer, prevLayer)
		}
		prevLayer = op.Layer
		switch op.Kind {
		case OpLoad, OpStore:
			if op.Bytes == 0 {
				return fmt.Errorf("npu: op %d: empty %s", i, op.Kind)
			}
		case OpCompute:
			if op.Cycles <= 0 {
				return fmt.Errorf("npu: op %d: compute with %d cycles", i, op.Cycles)
			}
		case OpSend, OpRecv:
			if op.Flits <= 0 {
				return fmt.Errorf("npu: op %d: %s with %d flits", i, op.Kind, op.Flits)
			}
		default:
			return fmt.Errorf("npu: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// Layout fixes the virtual-address plan of a compiled task: the
// driver allocates chunks (weights, activations) in NPU-reserved
// memory and the compiler places tiles inside them.
type Layout struct {
	// WeightBase is the VA of the packed weight chunk.
	WeightBase mem.VirtAddr
	// ActBase is the VA of the activation (input/output) chunk. Zero
	// means "place it page-aligned right after the weights", keeping
	// the task's VA window compact.
	ActBase mem.VirtAddr
}

// DefaultLayout is the conventional task address plan: a compact
// window starting at 1 MiB with activations following the weights.
var DefaultLayout = Layout{WeightBase: 0x10_0000}

// CompileStats summarizes what the compiler produced.
type CompileStats struct {
	Ops          int
	TileIters    int
	WeightBytes  int64
	TrafficBytes int64
}

// Compile lowers a workload into a Program for one core: every GEMM is
// tiled for the scratchpad budget, and each tile iteration becomes
// mvin/matmul/mvout ops. Matrices are assumed packed in tile order by
// the driver (the usual NPU weight layout), so each DMA descriptor
// covers SystolicDim rows of a tile contiguously.
func Compile(w workload.Workload, cfg Config, spadBudget int, layout Layout) (*Program, CompileStats, error) {
	if err := w.Validate(); err != nil {
		return nil, CompileStats{}, err
	}
	if spadBudget <= 0 {
		spadBudget = cfg.SpadBytes
	}
	dim := cfg.SystolicDim
	p := &Program{Name: w.Name, Layers: len(w.Layers), SpadBytes: spadBudget,
		SourceDigest: workload.Digest(w)}
	var st CompileStats
	weightOff := uint64(0)
	actOff := uint64(0)
	var maxLive uint64

	// First pass: tile every GEMM and total the packed weight bytes so
	// the activation region can sit compactly after the weights.
	var tilings []workload.Tiling
	var weightTotal uint64
	for _, layer := range w.Layers {
		for _, g := range layer.GEMMs {
			tl, err := workload.ChooseTiling(g, spadBudget, dim)
			if err != nil {
				return nil, CompileStats{}, fmt.Errorf("npu: tiling %s/%s: %w", w.Name, g.Name, err)
			}
			tilings = append(tilings, tl)
			_, kc, nc := tl.Counts()
			weightTotal += uint64(kc * nc * tl.Kt * tl.Nt)
		}
	}
	if layout.ActBase == 0 {
		layout.ActBase = layout.WeightBase + mem.VirtAddr(mem.PageAlignUp(mem.PhysAddr(weightTotal)))
	}

	// Size the op stream exactly before emitting: append-growth on
	// multi-million-op streams dominated the whole suite's allocation
	// profile (~90% of fig1's bytes), and a right-sized slice is also a
	// precondition for sharing compiled programs via the compile cache.
	p.Ops = make([]Op, 0, countOps(w, tilings, dim))

	gemmIdx := 0
	for li, layer := range w.Layers {
		for _, g := range layer.GEMMs {
			tl := tilings[gemmIdx]
			gemmIdx++
			mc, kc, nc := tl.Counts()
			st.TileIters += mc * kc * nc
			st.TrafficBytes += tl.DRAMTrafficBytes()
			p.TotalMACs += g.MACs()
			p.IdealComputeCycles += workload.IdealComputeCycles(g, dim)
			if live := uint64(2*(tl.Mt*tl.Kt+tl.Kt*tl.Nt) + tl.Mt*tl.Nt); live > maxLive {
				maxLive = live
			}
			if acc := uint64(tl.Mt * tl.Nt); acc > p.AccTileBytes {
				p.AccTileBytes = acc
			}

			// Packed-tile chunk sizes (full tile slots, edges padded).
			aPacked := uint64(mc * kc * tl.Mt * tl.Kt)
			bPacked := uint64(kc * nc * tl.Kt * tl.Nt)
			cPacked := uint64(mc * nc * tl.Mt * tl.Nt)
			aBase := layout.ActBase + mem.VirtAddr(actOff)
			bBase := layout.WeightBase + mem.VirtAddr(weightOff)
			cBase := aBase + mem.VirtAddr(aPacked)

			for mi := 0; mi < mc; mi++ {
				mt := tileSize(g.M, tl.Mt, mi, mc)
				for ni := 0; ni < nc; ni++ {
					nt := tileSize(g.N, tl.Nt, ni, nc)
					for ki := 0; ki < kc; ki++ {
						kt := tileSize(g.K, tl.Kt, ki, kc)
						// mvin A tile (mi,ki): descriptors of dim rows.
						aTileVA := aBase + mem.VirtAddr((mi*kc+ki)*(tl.Mt*tl.Kt))
						emitDescriptors(p, OpLoad, aTileVA, mt, kt, dim, tl.Kt, li, false)
						// mvin B tile (ki,ni).
						bTileVA := bBase + mem.VirtAddr((ki*nc+ni)*(tl.Kt*tl.Nt))
						emitDescriptors(p, OpLoad, bTileVA, kt, nt, dim, tl.Nt, li, true)
						// matmul.
						passes := int64(ceilDiv(mt, dim)) * int64(ceilDiv(nt, dim))
						cycles := float64(passes*int64(kt+2*dim)) / g.Eff()
						p.Ops = append(p.Ops, Op{
							Kind: OpCompute, Cycles: sim.Cycle(cycles), Layer: li, Tile: true,
							MACs: int64(mt) * int64(kt) * int64(nt),
						})
					}
					// mvout C tile (mi,ni).
					cTileVA := cBase + mem.VirtAddr((mi*nc+ni)*(tl.Mt*tl.Nt))
					emitDescriptors(p, OpStore, cTileVA, mt, nt, dim, tl.Nt, li, false)
				}
			}
			weightOff += bPacked
			actOff += aPacked + cPacked
		}
	}
	p.LiveSpadBytes = maxLive
	st.Ops = len(p.Ops)
	st.WeightBytes = int64(weightOff)
	return p, st, nil
}

// tileSize is the edge-aware extent of tile idx out of count covering
// total elements with full tiles of size tile.
func tileSize(total, tile, idx, count int) int {
	if idx == count-1 {
		return total - tile*(count-1)
	}
	return tile
}

// countOps walks the same tile loops as the emit pass and returns the
// exact number of ops Compile will produce, so p.Ops can be allocated
// once at final size (no append doubling, no slack).
func countOps(w workload.Workload, tilings []workload.Tiling, dim int) int {
	total := 0
	gi := 0
	for _, layer := range w.Layers {
		for _, g := range layer.GEMMs {
			tl := tilings[gi]
			gi++
			mc, kc, nc := tl.Counts()
			for mi := 0; mi < mc; mi++ {
				mt := tileSize(g.M, tl.Mt, mi, mc)
				aDesc := ceilDiv(mt, dim)
				// Per (mi,ni): kc iterations of (A descriptors + B
				// descriptors + 1 matmul), then the C mvout descriptors.
				inner := 0
				for ki := 0; ki < kc; ki++ {
					kt := tileSize(g.K, tl.Kt, ki, kc)
					inner += aDesc + ceilDiv(kt, dim) + 1
				}
				total += nc * (inner + aDesc)
			}
		}
	}
	return total
}

// emitDescriptors appends the mvin/mvout descriptors for a rows x cols
// tile stored packed with row stride strideCols: one descriptor per
// dim-row block, each contiguous in the packed layout.
func emitDescriptors(p *Program, kind OpKind, base mem.VirtAddr, rows, cols, dim, strideCols, layer int, weight bool) {
	for r := 0; r < rows; r += dim {
		blockRows := dim
		if r+blockRows > rows {
			blockRows = rows - r
		}
		va := base + mem.VirtAddr(r*strideCols)
		p.Ops = append(p.Ops, Op{
			Kind:   kind,
			VA:     va,
			Bytes:  uint64(blockRows * cols * workload.ElemBytes),
			Layer:  layer,
			Weight: weight,
		})
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// VASpan reports the lowest VA and one past the highest VA the
// program's loads/stores touch — the window the driver must map (and
// the monitor must cover with translation registers).
func (p *Program) VASpan() (lo, hi mem.VirtAddr) {
	first := true
	for _, op := range p.Ops {
		if op.Kind != OpLoad && op.Kind != OpStore {
			continue
		}
		if first || op.VA < lo {
			lo = op.VA
		}
		if end := op.VA + mem.VirtAddr(op.Bytes); first || end > hi {
			hi = end
		}
		first = false
	}
	return lo, hi
}
