// Package npu assembles the NPU itself: systolic-array cores with ID
// state, the op-level ISA the compiler lowers workloads into, a
// double-buffered execution engine, and the multi-core fabric
// connecting cores over the NoC. It is a Gemmini/AuRORA-style design
// (§VI-A) with the sNPU security extensions attached.
package npu

import (
	"repro/internal/dma"
	"repro/internal/sim"
)

// Config is the SoC configuration of Table II.
type Config struct {
	// SystolicDim is the systolic array dimension per tile (16).
	SystolicDim int
	// SpadBytes is the scratchpad capacity per tile (256 KB).
	SpadBytes int
	// SpadLineBytes is the input/output scratchpad wordline (128 b).
	SpadLineBytes int
	// AccLineBytes is the accumulator wordline (512 b).
	AccLineBytes int
	// Tiles is the number of accelerator tiles (cores) in the SoC.
	Tiles int
	// MeshW and MeshH arrange the cores on the NoC.
	MeshW, MeshH int
	// DRAMBytesPerCycle is the memory bandwidth (16 GB/s at 1 GHz).
	DRAMBytesPerCycle uint64
	// DRAMLatency is the fixed per-batch DRAM access latency.
	DRAMLatency sim.Cycle
	// Isolated enables the sNPU scratchpad/NoC protections; false is
	// the unprotected baseline.
	Isolated bool
	// Peephole enables NoC authentication.
	Peephole bool
	// IDBits is the per-line domain-tag width (1 = two worlds).
	IDBits int
	// UseL2 routes DMA traffic through the shared L2 (Table II: 2 MB,
	// 8 banks). Off by default: the headline experiments model the
	// NPU's DMA as bypassing the cache hierarchy, as Gemmini's does;
	// the L2 ablation bench turns it on.
	UseL2 bool
	// HangWatchdog is how long a wedged core runs undetected before
	// the per-core watchdog fires (0 = DefaultHangWatchdog).
	HangWatchdog sim.Cycle
}

// DefaultHangWatchdog is the per-core hang-detection latency used when
// Config.HangWatchdog is zero.
const DefaultHangWatchdog sim.Cycle = 50000

// DefaultConfig mirrors Table II: 16-wide systolic arrays, 256 KB
// scratchpads, 10 tiles (arranged 5x2), 16 GB/s DRAM at 1 GHz.
func DefaultConfig() Config {
	return Config{
		SystolicDim:       16,
		SpadBytes:         256 << 10,
		SpadLineBytes:     16,
		AccLineBytes:      64,
		Tiles:             10,
		MeshW:             5,
		MeshH:             2,
		DRAMBytesPerCycle: 16,
		DRAMLatency:       100,
		Isolated:          true,
		Peephole:          true,
		IDBits:            1,
	}
}

// DMAConfig derives the DMA engine parameters.
func (c Config) DMAConfig() dma.Config {
	return dma.Config{BytesPerCycle: c.DRAMBytesPerCycle, RequestLatency: c.DRAMLatency}
}

// SpadLines is the wordline count of one tile's scratchpad.
func (c Config) SpadLines() int { return c.SpadBytes / c.SpadLineBytes }

// KVSpadLines is the wordline count of one tile's KV partition: the
// top quarter of the scratchpad, reserved by the monitor for resident
// KV-cache windows that survive context switches (monitor/kv.go).
func (c Config) KVSpadLines() int { return c.SpadLines() / 4 }

// PeakMACsPerCycle is the full-SoC peak compute rate.
func (c Config) PeakMACsPerCycle() int64 {
	return int64(c.Tiles) * int64(c.SystolicDim) * int64(c.SystolicDim)
}
