package npu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/spad"
	"repro/internal/tee"
)

func randomMatrix(rng *rand.Rand, rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = int8(rng.Intn(256) - 128)
	}
	return m
}

func TestMatMulRefKnownAnswer(t *testing.T) {
	a := Matrix{Rows: 2, Cols: 3, Data: []int8{1, 2, 3, 4, 5, 6}}
	b := Matrix{Rows: 3, Cols: 2, Data: []int8{7, 8, 9, 10, 11, 12}}
	got, err := MatMulRef(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{58, 64, 139, 154}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMatMulRefDimChecks(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2) // mismatched inner dim
	if _, err := MatMulRef(a, b); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	bad := Matrix{Rows: 2, Cols: 2, Data: []int8{1}}
	if _, err := MatMulRef(bad, NewMatrix(2, 2)); err == nil {
		t.Fatal("invalid backing slice accepted")
	}
}

func TestFunctionalGEMMMatchesReference(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	core, _ := n.Core(0)
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 16, 32)
	b := randomMatrix(rng, 32, 16)
	got, err := core.FunctionalGEMM(a, b, 0x8000_0000, 0x8002_0000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMulRef(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: the scratchpad-routed GEMM agrees with the reference for
// random shapes and data.
func TestFunctionalGEMMProperty(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	core, _ := n.Core(1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(24) + 1
		k := rng.Intn(24) + 1
		nn := rng.Intn(24) + 1
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, nn)
		got, err := core.FunctionalGEMM(a, b, 0x8000_0000, 0x8004_0000)
		if err != nil {
			return false
		}
		want, err := MatMulRef(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalGEMMTooBigForScratchpad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpadBytes = 1024 // tiny scratchpad
	n := testNPU(t, cfg, nil)
	core, _ := n.Core(0)
	a := NewMatrix(64, 64)
	b := NewMatrix(64, 64)
	if _, err := core.FunctionalGEMM(a, b, 0x8000_0000, 0x8001_0000); err == nil {
		t.Fatal("oversized operands accepted")
	}
}

// A victim's functional compute succeeds while a co-resident attacker
// cannot read the staged operands out of the same scratchpad — the
// functional path exercises the real isolation rules, with real data.
func TestFunctionalGEMMSecureVictimAttackerDenied(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	machine := tee.NewMachine(mem.NewPhysical())
	core, _ := n.Core(0)
	if err := core.SetDomain(machine.SecureContext(), spad.SecureDomain); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 8, 8)
	b := randomMatrix(rng, 8, 8)
	got, err := core.FunctionalGEMM(a, b, 0x8000_0000, 0x8001_0000)
	if err != nil {
		t.Fatalf("secure victim's own compute failed: %v", err)
	}
	want, _ := MatMulRef(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("secure compute wrong")
		}
	}
	// Attacker (non-secure) probes the victim's operand lines.
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, 0, buf); err == nil {
		t.Fatal("attacker read the victim's staged operands")
	}
}
