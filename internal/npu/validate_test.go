package npu

import (
	"strings"
	"testing"
)

// Regression: RunModelParallel used to accept a duplicated core ID and
// silently interleave two executors on the same pipeline cursor. It
// must refuse before any channel resource is claimed.
func TestRunModelParallelRejectsDuplicateCores(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	_, err := n.RunModelParallel(smallWorkload(), []int{0, 1, 0}, TransferNoC, 0x8100_0000, nil)
	if err == nil {
		t.Fatal("duplicate core list accepted")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate-core rejection", err)
	}
	if got := n.Channel().NextFree(); got != 0 {
		t.Fatalf("channel claimed to %d before validation", got)
	}
}

func TestRunModelParallelRejectsOutOfRangeCores(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	for _, cores := range [][]int{{-1}, {0, 99}, {0, 1, n.Config().Tiles}} {
		if _, err := n.RunModelParallel(smallWorkload(), cores, TransferNoC, 0x8100_0000, nil); err == nil {
			t.Fatalf("cores %v accepted", cores)
		}
	}
}

// Regression: RunPipeline tracked core availability per *stage*, so a
// stage list reusing one core double-claimed its pipeline. Duplicates
// and out-of-range stage cores must be rejected up front.
func TestRunPipelineRejectsBadStageCores(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	dup := []Stage{{Core: 0, Program: prog}, {Core: 0, Program: prog}}
	if _, err := n.RunPipeline(dup, 2, TransferNoC, 0x8100_0000); err == nil {
		t.Fatal("duplicate stage cores accepted")
	}
	oor := []Stage{{Core: 0, Program: prog}, {Core: n.Config().Tiles, Program: prog}}
	if _, err := n.RunPipeline(oor, 2, TransferNoC, 0x8100_0000); err == nil {
		t.Fatal("out-of-range stage core accepted")
	}
	if got := n.Channel().NextFree(); got != 0 {
		t.Fatalf("channel claimed to %d before validation", got)
	}
}

// Distinct, in-range cores still run.
func TestRunModelParallelValidCoresStillRun(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	res, err := n.RunModelParallel(smallWorkload(), []int{0, 1}, TransferNoC, 0x8100_0000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 {
		t.Fatalf("total cycles = %d", res.TotalCycles)
	}
}
