package npu

import (
	"testing"

	"repro/internal/workload"
)

func TestSliceOfNCoversExactly(t *testing.T) {
	for _, c := range []struct {
		n, parts, dim int
	}{
		{64, 4, 16}, {65, 4, 16}, {16, 4, 16}, {1, 4, 16}, {1000, 3, 16}, {48, 2, 16},
	} {
		total := 0
		for p := 0; p < c.parts; p++ {
			s := sliceOfN(c.n, p, c.parts, c.dim)
			if s < 0 {
				t.Fatalf("n=%d parts=%d part=%d: negative slice", c.n, c.parts, p)
			}
			total += s
		}
		if total != c.n {
			t.Fatalf("n=%d parts=%d: slices sum to %d", c.n, c.parts, total)
		}
	}
}

func TestSliceWorkloadPreservesStructure(t *testing.T) {
	w := smallWorkload()
	var totalMACs int64
	for p := 0; p < 4; p++ {
		s := sliceWorkload(w, p, 4, 16)
		if len(s.Layers) != len(w.Layers) {
			t.Fatalf("part %d: %d layers", p, len(s.Layers))
		}
		totalMACs += s.MACs()
	}
	// Slice MACs sum to at least the original (padding slices of tiny
	// N may add a little).
	if totalMACs < w.MACs() {
		t.Fatalf("slices lost work: %d < %d", totalMACs, w.MACs())
	}
}

func TestStripOnChipActivations(t *testing.T) {
	prog, _, err := Compile(smallWorkload(), DefaultConfig(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	stripped := stripOnChipActivations(prog)
	for i, op := range stripped.Ops {
		switch op.Kind {
		case OpLoad:
			if !op.Weight && op.Layer > 0 {
				t.Fatalf("op %d: activation load survived in layer %d", i, op.Layer)
			}
		case OpStore:
			if !op.Weight && op.Layer < prog.Layers-1 {
				t.Fatalf("op %d: activation store survived in layer %d", i, op.Layer)
			}
		}
	}
	// Weight loads all survive.
	count := func(p *Program, weight bool) int {
		n := 0
		for _, op := range p.Ops {
			if op.Kind == OpLoad && op.Weight == weight {
				n++
			}
		}
		return n
	}
	if count(stripped, true) != count(prog, true) {
		t.Fatal("weight loads were stripped")
	}
	if count(stripped, false) >= count(prog, false) {
		t.Fatal("no activation loads were stripped")
	}
	// Original untouched.
	if len(prog.Ops) == len(stripped.Ops) {
		t.Fatal("nothing stripped at all")
	}
}

func TestRunModelParallelValidation(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	w := smallWorkload()
	if _, err := n.RunModelParallel(w, nil, TransferNoC, 0, nil); err == nil {
		t.Fatal("empty core list accepted")
	}
	if _, err := n.RunModelParallel(w, []int{99}, TransferNoC, 0, nil); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestRunModelParallelMapWindowFailurePropagates(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	called := 0
	_, err := n.RunModelParallel(smallWorkload(), []int{0, 1}, TransferNoC, 0,
		func(coreID int, prog *Program) error {
			called++
			return errTest
		})
	if err == nil {
		t.Fatal("mapWindow failure swallowed")
	}
	if called == 0 {
		t.Fatal("mapWindow never called")
	}
}

var errTest = workload.Workload{}.Validate() // any non-nil error

func TestRunModelParallelSingleCoreDegeneratesToSolo(t *testing.T) {
	w := smallWorkload()
	n1 := testNPU(t, DefaultConfig(), nil)
	res, err := n1.RunModelParallel(w, []int{0}, TransferNoC, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One core: no exchanges at all.
	if res.TransferCycles != 0 {
		t.Fatalf("single-core run exchanged %d cycles", res.TransferCycles)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestRunPipelineSharedMemoryMode(t *testing.T) {
	prog, _, err := Compile(smallWorkload(), DefaultConfig(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	n := testNPU(t, DefaultConfig(), nil)
	stages := []Stage{
		{Core: 0, Program: prog, ActOutBytes: 4096},
		{Core: 1, Program: prog},
	}
	res, err := n.RunPipeline(stages, 2, TransferSharedMemory, 0x8000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 2 || res.TransferCycles <= 0 {
		t.Fatalf("result %+v", res)
	}
	// Unknown transfer mode rejected.
	if _, err := n.RunPipeline(stages, 1, TransferMode(9), 0); err == nil {
		t.Fatal("unknown transfer mode accepted")
	}
}

func TestExecRejectsNoCOpsStandalone(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	core, _ := n.Core(0)
	prog := &Program{Name: "noc", Layers: 1, Ops: []Op{{Kind: OpSend, Flits: 4, Layer: 0}}}
	if _, err := NewExec(core, prog, 1).Run(0); err == nil {
		t.Fatal("standalone exec ran a NoC op")
	}
	prog = &Program{Name: "noc", Layers: 1, Ops: []Op{{Kind: OpRecv, Flits: 4, Layer: 0}}}
	if _, err := NewExec(core, prog, 1).Run(0); err == nil {
		t.Fatal("standalone exec ran a recv op")
	}
	prog = &Program{Name: "bad", Layers: 1, Ops: []Op{{Kind: OpKind(77), Layer: 0}}}
	if _, err := NewExec(core, prog, 1).Run(0); err == nil {
		t.Fatal("unknown op executed")
	}
}
