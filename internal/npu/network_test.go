package npu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
)

// buildTestNet constructs a small quantized 2-layer MLP with weights
// drawn from rng and quantization parameters derived from the actual
// value ranges.
func buildTestNet(t *testing.T, rng *rand.Rand, in, hidden, out int) *Network {
	t.Helper()
	mk := func(rows, cols int) (Matrix, quant.Params) {
		w := NewMatrix(rows, cols)
		vals := make([]float64, rows*cols)
		for i := range vals {
			vals[i] = (rng.Float64() - 0.5) * 0.5
		}
		p, err := quant.ChooseFor(vals)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			w.Data[i] = p.Quantize(v)
		}
		return w, p
	}
	w1, p1 := mk(hidden, in)
	w2, p2 := mk(out, hidden)
	inParams, err := quant.Choose(-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	hidParams, err := quant.Choose(0, 4) // post-ReLU activations
	if err != nil {
		t.Fatal(err)
	}
	outParams, err := quant.Choose(-8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &Network{Layers: []DenseLayer{
		{Weights: w1, InParams: inParams, WParams: p1, OutParams: hidParams, ReLU: true},
		{Weights: w2, InParams: hidParams, WParams: p2, OutParams: outParams},
	}}
}

func TestNetworkValidate(t *testing.T) {
	if err := (&Network{}).Validate(); err == nil {
		t.Fatal("empty network validated")
	}
	bad := &Network{Layers: []DenseLayer{
		{Weights: NewMatrix(4, 8)},
		{Weights: NewMatrix(3, 5)}, // 5 != 4
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched chaining validated")
	}
}

func TestQuantizedInferenceTracksFloatReference(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	core, _ := n.Core(0)
	rng := rand.New(rand.NewSource(11))
	net := buildTestNet(t, rng, 16, 24, 8)

	inParams := net.Layers[0].InParams
	input := make([]int8, 16)
	for i := range input {
		input[i] = inParams.Quantize((rng.Float64() - 0.5) * 2)
	}
	gotQ, err := net.Infer(core, input, 0x8000_0000)
	if err != nil {
		t.Fatal(err)
	}
	wantF, err := net.InferFloat(input)
	if err != nil {
		t.Fatal(err)
	}
	outParams := net.Layers[len(net.Layers)-1].OutParams
	for i := range wantF {
		got := outParams.Dequantize(gotQ[i])
		// Quantization noise accumulates across two layers; a few
		// output steps of tolerance is the expected regime.
		if math.Abs(got-wantF[i]) > 6*outParams.Scale {
			t.Fatalf("output %d: quantized %v vs float %v (scale %v)",
				i, got, wantF[i], outParams.Scale)
		}
	}
}

func TestNetworkInputLengthChecked(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	core, _ := n.Core(0)
	rng := rand.New(rand.NewSource(1))
	net := buildTestNet(t, rng, 8, 8, 4)
	if _, err := net.Infer(core, make([]int8, 5), 0x8000_0000); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := Matrix{Rows: 2, Cols: 3, Data: []int8{1, 2, 3, 4, 5, 6}}
	tr := transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(0, 0) != 1 || tr.At(0, 1) != 4 || tr.At(2, 1) != 6 {
		t.Fatalf("transpose = %v", tr.Data)
	}
}
