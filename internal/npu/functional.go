package npu

import (
	"fmt"

	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/xlate"
)

// This file is the functional (data-carrying) execution path: real
// int8 x int8 -> int32 matrix multiplication through the core's
// scratchpad, with every byte moved by the DMA engine and every
// scratchpad access subject to the ID-state isolation rules. It exists
// for two reasons: end-to-end correctness tests (the simulator computes
// real answers, checked against a reference), and security tests with
// real data (an attacker reading a victim's scratchpad must fail while
// the victim's own compute succeeds).

// Matrix is a row-major int8 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []int8
}

// NewMatrix allocates a zeroed matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]int8, rows*cols)}
}

// At reads element (r, c).
func (m Matrix) At(r, c int) int8 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m Matrix) Set(r, c int, v int8) { m.Data[r*m.Cols+c] = v }

// Valid reports whether the backing slice matches the dimensions.
func (m Matrix) Valid() bool { return len(m.Data) == m.Rows*m.Cols }

// MatMulRef is the plain reference implementation the functional path
// is checked against in tests.
func MatMulRef(a, b Matrix) ([]int32, error) {
	if !a.Valid() || !b.Valid() || a.Cols != b.Rows {
		return nil, fmt.Errorf("npu: bad matmul dims %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := make([]int32, a.Rows*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc int32
			for k := 0; k < a.Cols; k++ {
				acc += int32(a.At(i, k)) * int32(b.At(k, j))
			}
			out[i*b.Cols+j] = acc
		}
	}
	return out, nil
}

// FunctionalGEMM computes A (MxK) * B (KxN) on the core: the driver
// writes A and B into DRAM at the given virtual addresses, the DMA
// engine moves them into the scratchpad (through the core's
// access-control unit, functionally, line by line), the systolic model
// reads them back out of the scratchpad under the core's current
// domain, and the int32 result lands in the accumulator order
// (row-major). Matrices must fit the scratchpad.
func (c *Core) FunctionalGEMM(a, b Matrix, aVA, bVA mem.VirtAddr) ([]int32, error) {
	if !a.Valid() || !b.Valid() || a.Cols != b.Rows {
		return nil, fmt.Errorf("npu: bad matmul dims %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	lineBytes := c.sp.LineBytes()
	aLines := (len(a.Data) + lineBytes - 1) / lineBytes
	bLines := (len(b.Data) + lineBytes - 1) / lineBytes
	if aLines+bLines > c.sp.Lines() {
		return nil, fmt.Errorf("npu: matrices need %d scratchpad lines, have %d", aLines+bLines, c.sp.Lines())
	}

	// Stage operands in DRAM (what the driver's allocator would have
	// done) and mvin them functionally.
	c.stageBytes(aVA, int8ToBytes(a.Data))
	c.stageBytes(bVA, int8ToBytes(b.Data))
	if _, err := c.dmaEng.Do(dma.Request{
		VA: aVA, Bytes: uint64(len(a.Data)), Dir: dma.ToScratchpad,
		SpadLine: 0, World: c.World(), Functional: true,
	}, c.sp, c.domain, 0); err != nil {
		return nil, err
	}
	if _, err := c.dmaEng.Do(dma.Request{
		VA: bVA, Bytes: uint64(len(b.Data)), Dir: dma.ToScratchpad,
		SpadLine: aLines, World: c.World(), Functional: true,
	}, c.sp, c.domain, 0); err != nil {
		return nil, err
	}

	// Read the operands back out of the scratchpad under the core's
	// domain — this is where a mis-tagged line would fault — and run
	// the MAC array.
	aBytes, err := c.readSpad(0, len(a.Data))
	if err != nil {
		return nil, err
	}
	bBytes, err := c.readSpad(aLines, len(b.Data))
	if err != nil {
		return nil, err
	}
	av := Matrix{Rows: a.Rows, Cols: a.Cols, Data: bytesToInt8(aBytes)}
	bv := Matrix{Rows: b.Rows, Cols: b.Cols, Data: bytesToInt8(bBytes)}
	return MatMulRef(av, bv)
}

// stageBytes plants operand bytes in physical memory at the VA's
// translated location. The functional tests use identity or
// guarder-translated windows, so we translate through the core's own
// unit to find the backing PA.
func (c *Core) stageBytes(va mem.VirtAddr, data []byte) {
	res, err := c.dmaEng.Translator().Translate(translateProbe(va, uint64(len(data)), c), 0)
	if err != nil {
		// Leave memory unstaged; the subsequent DMA will surface the
		// denial to the caller.
		return
	}
	phys := c.dmaEng.Phys()
	if phys != nil {
		phys.Write(res.PA, data)
	}
}

// readSpad pulls n bytes starting at the given line, enforcing the ID
// rules for the core's domain.
func (c *Core) readSpad(fromLine, n int) ([]byte, error) {
	lineBytes := c.sp.LineBytes()
	out := make([]byte, 0, n)
	buf := make([]byte, lineBytes)
	for line := fromLine; len(out) < n; line++ {
		if err := c.sp.Read(c.domain, line, buf); err != nil {
			return nil, err
		}
		take := lineBytes
		if len(out)+take > n {
			take = n - len(out)
		}
		out = append(out, buf[:take]...)
	}
	return out, nil
}

// translateProbe builds the access-control request used to locate a
// VA's backing physical memory for operand staging.
func translateProbe(va mem.VirtAddr, bytes uint64, c *Core) xlate.Request {
	return xlate.Request{VA: va, Bytes: bytes, Need: mem.PermRead, World: c.World(), TaskID: 9000 + c.id}
}

func int8ToBytes(in []int8) []byte {
	out := make([]byte, len(in))
	for i, v := range in {
		out[i] = byte(v)
	}
	return out
}

func bytesToInt8(in []byte) []int8 {
	out := make([]int8, len(in))
	for i, v := range in {
		out[i] = int8(v)
	}
	return out
}
